examples/multilevel_qaoa.mli:
