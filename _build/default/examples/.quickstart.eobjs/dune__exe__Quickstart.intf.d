examples/quickstart.mli:
