examples/scaling.ml: List Printf Qcr_arch Qcr_circuit Qcr_core Qcr_swapnet Qcr_util Qcr_workloads
