examples/scaling.mli:
