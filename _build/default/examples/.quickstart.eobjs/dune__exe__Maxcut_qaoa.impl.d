examples/maxcut_qaoa.ml: Array Printf Qcr_arch Qcr_baselines Qcr_circuit Qcr_core Qcr_graph Qcr_sim Qcr_util
