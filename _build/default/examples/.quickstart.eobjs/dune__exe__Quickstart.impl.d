examples/quickstart.ml: Filename Printf Qcr_arch Qcr_circuit Qcr_core Qcr_graph Qcr_util
