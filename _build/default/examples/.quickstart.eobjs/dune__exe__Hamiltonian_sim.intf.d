examples/hamiltonian_sim.mli:
