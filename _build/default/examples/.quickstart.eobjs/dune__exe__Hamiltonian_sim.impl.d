examples/hamiltonian_sim.ml: Printf Qcr_arch Qcr_baselines Qcr_core Qcr_util Qcr_workloads
