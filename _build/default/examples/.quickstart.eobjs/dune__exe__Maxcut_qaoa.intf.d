examples/maxcut_qaoa.mli:
