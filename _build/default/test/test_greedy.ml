module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Circuit = Qcr_circuit.Circuit
module Gate = Qcr_circuit.Gate
module Program = Qcr_circuit.Program
module Mapping = Qcr_circuit.Mapping
module Greedy = Qcr_core.Greedy
module Config = Qcr_core.Config
module Prng = Qcr_util.Prng

let engine ?(config = Config.pure_greedy) ?noise graph arch =
  let program = Program.make graph Program.Bare_cz in
  let init =
    Mapping.identity ~logical:(Graph.vertex_count graph) ~physical:(Arch.qubit_count arch)
  in
  Greedy.create ~config ?noise ~arch ~program ~init ()

(* Within one engine cycle, committed operations must be qubit-disjoint. *)
let test_cycle_ops_disjoint () =
  let rng = Prng.create 41 in
  let graph = Generate.erdos_renyi rng ~n:16 ~density:0.4 in
  let arch = Arch.grid ~rows:4 ~cols:4 in
  let e = engine graph arch in
  let seen = ref 0 in
  while not (Greedy.finished e) do
    ignore (Greedy.step e);
    let gates = Circuit.gates (Greedy.circuit e) in
    let fresh = List.filteri (fun i _ -> i >= !seen) gates in
    seen := List.length gates;
    let used = Hashtbl.create 16 in
    List.iter
      (fun g ->
        List.iter
          (fun q ->
            Alcotest.(check bool) "qubit used once per cycle" false (Hashtbl.mem used q);
            Hashtbl.replace used q ())
          (Gate.qubits g))
      fresh
  done

let test_remaining_decreases_monotonically () =
  let rng = Prng.create 42 in
  let graph = Generate.erdos_renyi rng ~n:12 ~density:0.5 in
  let arch = Arch.smallest_for Arch.Heavy_hex 12 in
  let e = engine graph arch in
  let prev = ref (Greedy.remaining_gate_count e) in
  while not (Greedy.finished e) do
    ignore (Greedy.step e);
    let now = Greedy.remaining_gate_count e in
    Alcotest.(check bool) "monotone" true (now <= !prev);
    prev := now
  done;
  Alcotest.(check int) "ends at zero" 0 !prev

let test_swap_count_matches_circuit () =
  let rng = Prng.create 43 in
  let graph = Generate.erdos_renyi rng ~n:12 ~density:0.3 in
  let arch = Arch.grid ~rows:4 ~cols:3 in
  let e = engine graph arch in
  Greedy.run_to_completion e;
  let circuit_swaps =
    List.length
      (List.filter (function Gate.Swap _ -> true | _ -> false)
         (Circuit.gates (Greedy.circuit e)))
  in
  Alcotest.(check int) "swap counter" circuit_swaps (Greedy.swaps e)

let test_run_until_respects_limit () =
  let graph = Graph.complete 9 in
  let arch = Arch.grid ~rows:3 ~cols:3 in
  let e = engine graph arch in
  Greedy.run_until e 3;
  Alcotest.(check bool) "stopped at limit" true (Greedy.cycle e <= 3 || Greedy.finished e)

let test_isolated_vertices_ok () =
  (* vertices with no edges must not confuse the engine *)
  let graph = Graph.create 6 in
  Graph.add_edge graph 0 5;
  let arch = Arch.line 6 in
  let e = engine graph arch in
  Greedy.run_to_completion e;
  Alcotest.(check int) "one gate" 0 (Greedy.remaining_gate_count e)

let test_empty_program () =
  let graph = Graph.create 4 in
  let arch = Arch.line 4 in
  let e = engine graph arch in
  Alcotest.(check bool) "immediately finished" true (Greedy.finished e);
  Alcotest.(check int) "no cycles" 0 (Greedy.cycle e)

let test_noise_aware_prefers_good_links () =
  (* on a line with one catastrophic link, noise-aware routing should use
     fewer swaps across that link than across good ones on average; smoke
     check: it completes and the circuit is valid *)
  let arch = Arch.line 8 in
  let noise = Qcr_arch.Noise.sampled ~seed:31 arch in
  let rng = Prng.create 44 in
  let graph = Generate.erdos_renyi rng ~n:8 ~density:0.4 in
  let config = { Config.pure_greedy with Config.noise_aware = true } in
  let e = engine ~config ~noise graph arch in
  Greedy.run_to_completion e;
  Alcotest.(check bool) "valid" true
    (Circuit.validate_coupling arch (Greedy.circuit e) = Ok ())

let suite =
  [
    Alcotest.test_case "cycle ops disjoint" `Quick test_cycle_ops_disjoint;
    Alcotest.test_case "remaining monotone" `Quick test_remaining_decreases_monotonically;
    Alcotest.test_case "swap count" `Quick test_swap_count_matches_circuit;
    Alcotest.test_case "run_until limit" `Quick test_run_until_respects_limit;
    Alcotest.test_case "isolated vertices" `Quick test_isolated_vertices_ok;
    Alcotest.test_case "empty program" `Quick test_empty_program;
    Alcotest.test_case "noise-aware smoke" `Quick test_noise_aware_prefers_good_links;
  ]
