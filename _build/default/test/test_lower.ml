module Circuit = Qcr_circuit.Circuit
module Gate = Qcr_circuit.Gate
module Lower = Qcr_circuit.Lower
module Sv = Qcr_sim.Statevector
module Prng = Qcr_util.Prng

(* Lowering must preserve the unitary (up to global phase) and the CX
   accounting: [cx_count] of the original equals the number of literal Cx
   gates after lowering. *)

let count_cx c =
  List.length (List.filter (function Gate.Cx _ -> true | _ -> false) (Circuit.gates c))

let random_state rng n =
  (* prepare a random product-ish state so diagonal gates are visible *)
  let prep = Circuit.create n in
  for q = 0 to n - 1 do
    Circuit.add prep (Gate.H q);
    Circuit.add prep (Gate.Rz (q, Prng.float rng 3.0));
    Circuit.add prep (Gate.Rx (q, Prng.float rng 3.0))
  done;
  prep

let check_gate_equiv rng g =
  let n = 3 in
  let prep = random_state rng n in
  let with_gate gates =
    let c = Circuit.create n in
    Circuit.add_list c (Circuit.gates prep);
    Circuit.add_list c gates;
    Sv.run c
  in
  let reference = with_gate [ g ] in
  let lowered = with_gate (Lower.gate g) in
  let f = Sv.fidelity reference lowered in
  Alcotest.(check bool)
    (Printf.sprintf "lowering of %s preserves unitary (fid %.9f)" (Gate.to_string g) f)
    true
    (f > 1.0 -. 1e-9)

let test_each_gate_equivalent () =
  let rng = Prng.create 71 in
  for _ = 1 to 5 do
    let theta = Prng.float rng 6.0 -. 3.0 in
    List.iter (check_gate_equiv rng)
      [
        Gate.Cz (0, 1);
        Gate.Cphase (0, 1, theta);
        Gate.Cphase (1, 0, theta);
        Gate.Rzz (0, 2, theta);
        Gate.Swap (1, 2);
        Gate.Swap_interact (0, 1, theta);
        Gate.Swap_interact (2, 0, theta);
        Gate.Swap_rzz (0, 1, theta);
        Gate.Swap_rzz (1, 2, theta);
      ]
  done

let test_cx_accounting_identity () =
  let rng = Prng.create 5 in
  for _ = 1 to 10 do
    let c = Circuit.create 4 in
    for _ = 1 to 20 do
      let a = Prng.int rng 4 in
      let b = (a + 1 + Prng.int rng 3) mod 4 in
      let theta = Prng.float rng 3.0 in
      match Prng.int rng 7 with
      | 0 -> Circuit.add c (Gate.Cz (a, b))
      | 1 -> Circuit.add c (Gate.Cphase (a, b, theta))
      | 2 -> Circuit.add c (Gate.Rzz (a, b, theta))
      | 3 -> Circuit.add c (Gate.Swap (a, b))
      | 4 -> Circuit.add c (Gate.Swap_interact (a, b, theta))
      | 5 -> Circuit.add c (Gate.Swap_rzz (a, b, theta))
      | _ -> Circuit.add c (Gate.H a)
    done;
    Alcotest.(check int) "cx_count = literal CX after lowering" (Circuit.cx_count c)
      (count_cx (Lower.circuit c))
  done

let test_whole_circuit_equivalence () =
  let rng = Prng.create 83 in
  for _ = 1 to 10 do
    let c = Circuit.create 4 in
    Circuit.add_list c (Circuit.gates (random_state rng 4));
    for _ = 1 to 15 do
      let a = Prng.int rng 4 in
      let b = (a + 1 + Prng.int rng 3) mod 4 in
      let theta = Prng.float rng 3.0 in
      match Prng.int rng 6 with
      | 0 -> Circuit.add c (Gate.Cz (a, b))
      | 1 -> Circuit.add c (Gate.Cphase (a, b, theta))
      | 2 -> Circuit.add c (Gate.Rzz (a, b, theta))
      | 3 -> Circuit.add c (Gate.Swap (a, b))
      | 4 -> Circuit.add c (Gate.Swap_interact (a, b, theta))
      | _ -> Circuit.add c (Gate.Swap_rzz (a, b, theta))
    done;
    let f = Sv.fidelity (Sv.run c) (Sv.run (Lower.circuit c)) in
    Alcotest.(check bool) "whole circuit equivalence" true (f > 1.0 -. 1e-9)
  done

let test_passthrough_gates () =
  List.iter
    (fun g -> Alcotest.(check (list (testable Gate.pp Gate.equal))) "passthrough" [ g ] (Lower.gate g))
    [ Gate.H 0; Gate.X 1; Gate.Rx (0, 0.3); Gate.Rz (1, 0.2); Gate.Cx (0, 1); Gate.Barrier ]

let suite =
  [
    Alcotest.test_case "each gate equivalent" `Quick test_each_gate_equivalent;
    Alcotest.test_case "cx accounting identity" `Quick test_cx_accounting_identity;
    Alcotest.test_case "whole circuit equivalence" `Quick test_whole_circuit_equivalence;
    Alcotest.test_case "passthrough" `Quick test_passthrough_gates;
  ]
