(* Coverage for small API corners not exercised elsewhere. *)

module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Paths = Qcr_graph.Paths
module Components = Qcr_graph.Components
module Circuit = Qcr_circuit.Circuit
module Gate = Qcr_circuit.Gate
module Mapping = Qcr_circuit.Mapping
module Arch = Qcr_arch.Arch
module Bitset = Qcr_util.Bitset
module Pqueue = Qcr_util.Pqueue
module Prng = Qcr_util.Prng
module Stats = Qcr_util.Stats

let test_two_qubit_gates () =
  let c = Circuit.create 4 in
  Circuit.add c (Gate.H 0);
  Circuit.add c (Gate.Cx (0, 1));
  Circuit.add c (Gate.Rz (2, 0.5));
  Circuit.add c (Gate.Swap (2, 3));
  Alcotest.(check (list (pair int int))) "pairs in order" [ (0, 1); (2, 3) ]
    (Circuit.two_qubit_gates c)

let test_component_labels () =
  let g = Graph.create 5 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 3 4;
  let labels = Components.component_labels g in
  Alcotest.(check int) "same component" labels.(0) labels.(1);
  Alcotest.(check int) "same component" labels.(3) labels.(4);
  Alcotest.(check bool) "distinct components" true (labels.(0) <> labels.(3));
  Alcotest.(check bool) "singleton distinct" true
    (labels.(2) <> labels.(0) && labels.(2) <> labels.(3))

let test_eccentricity () =
  let g = Generate.path 5 in
  Alcotest.(check int) "end eccentricity" 4 (Paths.eccentricity g 0);
  Alcotest.(check int) "center eccentricity" 2 (Paths.eccentricity g 2)

let test_arch_coupled () =
  let a = Arch.line 4 in
  Alcotest.(check bool) "adjacent" true (Arch.coupled a 1 2);
  Alcotest.(check bool) "not adjacent" false (Arch.coupled a 0 3)

let test_density_edge_cases () =
  Alcotest.(check (float 1e-9)) "empty graph" 0.0 (Graph.density (Graph.create 0));
  Alcotest.(check (float 1e-9)) "single vertex" 0.0 (Graph.density (Graph.create 1));
  Alcotest.(check (float 1e-9)) "two disconnected" 0.0 (Graph.density (Graph.create 2))

let test_max_degree () =
  let g = Generate.star 6 in
  Alcotest.(check int) "star max degree" 5 (Graph.max_degree g);
  Alcotest.(check int) "empty max degree" 0 (Graph.max_degree (Graph.create 3))

let test_mapping_phys_array () =
  let m = Mapping.identity ~logical:2 ~physical:4 in
  Mapping.apply_swap m 0 3;
  let a = Mapping.phys_array m in
  Alcotest.(check int) "logical 0 moved" 3 a.(0);
  (* the returned array is a copy *)
  a.(0) <- 99;
  Alcotest.(check int) "copy semantics" 3 (Mapping.phys_of_log m 0)

let test_bitset_fold_and_key () =
  let b = Bitset.create 20 in
  Bitset.add b 3;
  Bitset.add b 17;
  Alcotest.(check int) "fold sum" 20 (Bitset.fold ( + ) b 0);
  let b' = Bitset.copy b in
  Alcotest.(check string) "hash key equal" (Bitset.hash_key b) (Bitset.hash_key b');
  Bitset.add b' 0;
  Alcotest.(check bool) "hash key differs" true (Bitset.hash_key b <> Bitset.hash_key b');
  Alcotest.(check bool) "equal detects" false (Bitset.equal b b')

let test_pqueue_clear () =
  let q = Pqueue.create () in
  Pqueue.push q ~prio:1 "x";
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q);
  Pqueue.push q ~prio:2 "y";
  Alcotest.(check (pair int string)) "usable after clear" (2, "y") (Pqueue.pop_exn q)

let test_prng_pick_and_copy () =
  let rng = Prng.create 8 in
  let snapshot = Prng.copy rng in
  let a = Prng.pick rng [| 10; 20; 30 |] in
  let b = Prng.pick snapshot [| 10; 20; 30 |] in
  Alcotest.(check int) "copy replays the stream" a b;
  Alcotest.(check bool) "picked element" true (List.mem a [ 10; 20; 30 ])

let test_stats_mean_int () =
  Alcotest.(check (float 1e-9)) "mean_int" 2.0 (Stats.mean_int [| 1; 2; 3 |])

let test_circuit_layers_skip_barrier () =
  let c = Circuit.create 2 in
  Circuit.add c (Gate.Cx (0, 1));
  Circuit.add c Gate.Barrier;
  Circuit.add c (Gate.Measure 0);
  let layers = Circuit.layers c in
  (* barrier dropped; cx and measure in separate layers *)
  Alcotest.(check int) "two layers" 2 (List.length layers)

let test_graph_pp_and_gate_pp () =
  let g = Generate.cycle 4 in
  let s = Format.asprintf "%a" Graph.pp g in
  Alcotest.(check bool) "graph pp" true (String.length s > 0);
  Alcotest.(check string) "gate to_string" "cx q0,q1" (Gate.to_string (Gate.Cx (0, 1)))

let suite =
  [
    Alcotest.test_case "two_qubit_gates" `Quick test_two_qubit_gates;
    Alcotest.test_case "component labels" `Quick test_component_labels;
    Alcotest.test_case "eccentricity" `Quick test_eccentricity;
    Alcotest.test_case "arch coupled" `Quick test_arch_coupled;
    Alcotest.test_case "density edges" `Quick test_density_edge_cases;
    Alcotest.test_case "max degree" `Quick test_max_degree;
    Alcotest.test_case "mapping phys_array" `Quick test_mapping_phys_array;
    Alcotest.test_case "bitset fold/key" `Quick test_bitset_fold_and_key;
    Alcotest.test_case "pqueue clear" `Quick test_pqueue_clear;
    Alcotest.test_case "prng pick/copy" `Quick test_prng_pick_and_copy;
    Alcotest.test_case "stats mean_int" `Quick test_stats_mean_int;
    Alcotest.test_case "layers skip barrier" `Quick test_circuit_layers_skip_barrier;
    Alcotest.test_case "pp functions" `Quick test_graph_pp_and_gate_pp;
  ]
