module Graph = Qcr_graph.Graph
module Hamiltonian = Qcr_workloads.Hamiltonian
module Suite = Qcr_workloads.Suite
module Program = Qcr_circuit.Program

let test_nnn_1d_ising () =
  let g = Hamiltonian.nnn_1d_ising 8 in
  (* (n-1) nearest + (n-2) next-nearest *)
  Alcotest.(check int) "edges" (7 + 6) (Graph.edge_count g);
  Alcotest.(check bool) "has nn" true (Graph.has_edge g 0 1);
  Alcotest.(check bool) "has nnn" true (Graph.has_edge g 0 2);
  Alcotest.(check bool) "no long range" false (Graph.has_edge g 0 3)

let test_nnn_2d_xy () =
  let g = Hamiltonian.nnn_2d_xy ~rows:3 ~cols:3 in
  (* horizontals 3*2=6, verticals 6, diagonals 2*2*2=8 *)
  Alcotest.(check int) "edges" 20 (Graph.edge_count g);
  Alcotest.(check int) "vertices" 9 (Graph.vertex_count g);
  Alcotest.(check bool) "diag" true (Graph.has_edge g 0 4)

let test_nnn_3d_heisenberg () =
  let g = Hamiltonian.nnn_3d_heisenberg ~dim:3 in
  Alcotest.(check int) "vertices" 27 (Graph.vertex_count g);
  (* axis edges: 3 * 3*3*2 = 54; face diagonals: 3 * 2*2*3 = 36 *)
  Alcotest.(check int) "edges" (54 + 36) (Graph.edge_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_trotter_program () =
  let p = Hamiltonian.trotter_step ~theta:0.3 (Hamiltonian.nnn_1d_ising 6) in
  match Program.interaction p with
  | Program.Two_local { theta } -> Alcotest.(check (float 1e-12)) "theta" 0.3 theta
  | _ -> Alcotest.fail "wrong interaction"

let test_suite_determinism () =
  let a = Suite.random_instances ~cases:3 ~n:20 ~density:0.3 () in
  let b = Suite.random_instances ~cases:3 ~n:20 ~density:0.3 () in
  List.iter2
    (fun x y ->
      Alcotest.(check int) "same seed" x.Suite.seed y.Suite.seed;
      Alcotest.(check (list (pair int int)))
        "same graph" (Graph.edges x.Suite.graph) (Graph.edges y.Suite.graph))
    a b

let test_suite_labels_and_count () =
  let xs = Suite.random_instances ~cases:10 ~n:64 ~density:0.5 () in
  Alcotest.(check int) "ten cases" 10 (List.length xs);
  List.iter
    (fun x -> Alcotest.(check string) "label" "rand-64-0.5" x.Suite.label)
    xs

let test_regular_by_degree () =
  let xs = Suite.regular_by_degree ~cases:2 ~n:32 ~degree:4 () in
  List.iter
    (fun x ->
      for v = 0 to 31 do
        Alcotest.(check int) "degree 4" 4 (Graph.degree x.Suite.graph v)
      done)
    xs

let test_program_of () =
  let x = List.hd (Suite.random_instances ~cases:1 ~n:10 ~density:0.4 ()) in
  let p = Suite.program_of x in
  Alcotest.(check int) "qubits" 10 (Program.qubit_count p)

let suite =
  [
    Alcotest.test_case "nnn 1d ising" `Quick test_nnn_1d_ising;
    Alcotest.test_case "nnn 2d xy" `Quick test_nnn_2d_xy;
    Alcotest.test_case "nnn 3d heisenberg" `Quick test_nnn_3d_heisenberg;
    Alcotest.test_case "trotter program" `Quick test_trotter_program;
    Alcotest.test_case "suite determinism" `Quick test_suite_determinism;
    Alcotest.test_case "suite labels" `Quick test_suite_labels_and_count;
    Alcotest.test_case "regular by degree" `Quick test_regular_by_degree;
    Alcotest.test_case "program_of" `Quick test_program_of;
  ]
