module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Arch = Qcr_arch.Arch
module Schedule = Qcr_swapnet.Schedule
module Permute = Qcr_swapnet.Permute
module Mapping = Qcr_circuit.Mapping
module Prng = Qcr_util.Prng

let check_routes g target =
  let n = Graph.vertex_count g in
  let sched = Permute.route g ~target in
  (match Schedule.validate g sched with Ok () -> () | Error m -> Alcotest.fail m);
  let final = Schedule.final_positions ~n sched in
  Array.iteri
    (fun token pos ->
      Alcotest.(check int) (Printf.sprintf "token %d delivered" token) target.(token) pos)
    final

let test_identity () =
  let g = Generate.path 5 in
  let sched = Permute.route g ~target:(Array.init 5 (fun i -> i)) in
  Alcotest.(check int) "no swaps" 0 (Schedule.cycle_count sched)

let test_reversal_on_line () =
  let n = 8 in
  let g = Generate.path n in
  check_routes g (Array.init n (fun i -> n - 1 - i))

let test_rotation_cycle () =
  (* a full rotation is the hardest case for pure-greedy token swapping *)
  let n = 6 in
  let g = Generate.cycle n in
  check_routes g (Array.init n (fun i -> (i + 1) mod n))

let test_random_permutations () =
  let rng = Prng.create 13 in
  List.iter
    (fun arch ->
      let g = Arch.graph arch in
      let n = Graph.vertex_count g in
      for _ = 1 to 5 do
        let target = Array.init n (fun i -> i) in
        Prng.shuffle rng target;
        check_routes g target
      done)
    [ Arch.grid ~rows:4 ~cols:4; Arch.heavy_hex ~rows:2 ~row_len:7; Arch.sycamore ~rows:4 ~cols:3 ]

let prop_random_routes =
  QCheck.Test.make ~name:"token swapping delivers every permutation" ~count:30
    QCheck.(pair (int_bound 10000) (int_range 4 14))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Arch.graph (Arch.smallest_for Arch.Grid n) in
      let m = Graph.vertex_count g in
      let target = Array.init m (fun i -> i) in
      Prng.shuffle rng target;
      let sched = Permute.route g ~target in
      Schedule.final_positions ~n:m sched = target)

let test_restore_cycles () =
  let arch = Arch.grid ~rows:3 ~cols:3 in
  let rng = Prng.create 3 in
  let current = Mapping.random rng ~logical:6 ~physical:9 in
  let desired = Mapping.identity ~logical:6 ~physical:9 in
  let sched =
    Permute.restore_cycles ~coupling:(Arch.graph arch) ~current ~desired
  in
  (* replay the swaps over [current]: must land on [desired] *)
  let replay = Mapping.copy current in
  List.iter
    (fun cycle ->
      List.iter
        (function
          | Schedule.Swap (p, q) -> Mapping.apply_swap replay p q
          | Schedule.Touch _ -> ())
        cycle)
    sched;
  for l = 0 to 8 do
    Alcotest.(check int) "restored" (Mapping.phys_of_log desired l) (Mapping.phys_of_log replay l)
  done

let test_reversal_swap_budget () =
  (* reversal on a line needs n(n-1)/2 swaps; the router must not blow
     far past that *)
  let n = 16 in
  let g = Generate.path n in
  let sched = Permute.route g ~target:(Array.init n (fun i -> n - 1 - i)) in
  Alcotest.(check bool)
    (Printf.sprintf "swaps %d <= n^2" (Schedule.swap_count sched))
    true
    (Schedule.swap_count sched <= n * n)

let suite =
  [
    Alcotest.test_case "identity" `Quick test_identity;
    Alcotest.test_case "line reversal" `Quick test_reversal_on_line;
    Alcotest.test_case "rotation cycle" `Quick test_rotation_cycle;
    Alcotest.test_case "random permutations" `Quick test_random_permutations;
    QCheck_alcotest.to_alcotest prop_random_routes;
    Alcotest.test_case "restore cycles" `Quick test_restore_cycles;
    Alcotest.test_case "reversal swap budget" `Quick test_reversal_swap_budget;
  ]
