module Arch = Qcr_arch.Arch
module Noise = Qcr_arch.Noise
module Graph = Qcr_graph.Graph

let check_path_coupled arch path =
  let g = Arch.graph arch in
  Array.iteri
    (fun i q ->
      if i + 1 < Array.length path then
        Alcotest.(check bool)
          (Printf.sprintf "path hop %d-%d coupled" q path.(i + 1))
          true
          (Graph.has_edge g q path.(i + 1)))
    path

let check_units_partition arch =
  let units = Arch.units arch in
  let n = Arch.qubit_count arch in
  let seen = Array.make n 0 in
  Array.iter (fun unit -> Array.iter (fun q -> seen.(q) <- seen.(q) + 1) unit) units;
  if Array.length units > 0 then
    Array.iteri
      (fun q c -> Alcotest.(check int) (Printf.sprintf "qubit %d in one unit" q) 1 c)
      seen

let check_pair_paths arch =
  let units = Arch.units arch in
  for i = 0 to Array.length units - 2 do
    match Arch.pair_path arch i with
    | None -> Alcotest.fail "missing pair path"
    | Some path ->
        check_path_coupled arch path;
        let members = List.sort compare (Array.to_list path) in
        let expected =
          List.sort compare (Array.to_list units.(i) @ Array.to_list units.(i + 1))
        in
        Alcotest.(check (list int)) "pair path covers both units" expected members
  done

let test_line () =
  let a = Arch.line 7 in
  Alcotest.(check int) "qubits" 7 (Arch.qubit_count a);
  Alcotest.(check int) "edges" 6 (Graph.edge_count (Arch.graph a));
  Alcotest.(check int) "distance ends" 6 (Arch.distance a 0 6);
  check_path_coupled a (Arch.long_path a)

let test_grid () =
  let a = Arch.grid ~rows:4 ~cols:5 in
  Alcotest.(check int) "qubits" 20 (Arch.qubit_count a);
  (* edges: rows*(cols-1) + cols*(rows-1) *)
  Alcotest.(check int) "edges" ((4 * 4) + (5 * 3)) (Graph.edge_count (Arch.graph a));
  check_units_partition a;
  check_pair_paths a;
  check_path_coupled a (Arch.long_path a);
  Alcotest.(check int) "long path Hamiltonian" 20 (Array.length (Arch.long_path a))

let test_grid3d () =
  let a = Arch.grid3d ~nx:3 ~ny:3 ~nz:3 in
  Alcotest.(check int) "qubits" 27 (Arch.qubit_count a);
  (* 3 * nz*(ny-1)*nx + ... : axis edges = 3 * 3*3*2 = 54 *)
  Alcotest.(check int) "edges" 54 (Qcr_graph.Graph.edge_count (Arch.graph a));
  check_units_partition a;
  check_pair_paths a;
  check_path_coupled a (Arch.long_path a);
  Alcotest.(check int) "long path Hamiltonian" 27 (Array.length (Arch.long_path a))

let test_sycamore () =
  let a = Arch.sycamore ~rows:6 ~cols:4 in
  Alcotest.(check int) "qubits" 24 (Arch.qubit_count a);
  check_units_partition a;
  check_pair_paths a;
  (* no intra-row couplings *)
  let g = Arch.graph a in
  Array.iter
    (fun unit ->
      Array.iteri
        (fun i q ->
          if i + 1 < Array.length unit then
            Alcotest.(check bool) "no intra-row edge" false (Graph.has_edge g q unit.(i + 1)))
        unit)
    (Arch.units a)

let test_sycamore_degrees () =
  (* interior qubits of the rotated lattice have degree 4 *)
  let a = Arch.sycamore ~rows:6 ~cols:6 in
  let g = Arch.graph a in
  let id r c = (r * 6) + c in
  Alcotest.(check int) "interior degree" 4 (Graph.degree g (id 2 2));
  Alcotest.(check int) "interior degree" 4 (Graph.degree g (id 3 3))

let test_heavy_hex () =
  let a = Arch.heavy_hex ~rows:3 ~row_len:7 in
  (* 3 rows of 7 + 2 gaps x 2 bridges each (cols 0,4 / 2,6) *)
  Alcotest.(check int) "qubits" ((3 * 7) + 4) (Arch.qubit_count a);
  check_path_coupled a (Arch.long_path a);
  (* off-path plus path partition the device *)
  let on = Array.length (Arch.long_path a) and off = Array.length (Arch.off_path a) in
  Alcotest.(check int) "partition" (Arch.qubit_count a) (on + off);
  (* snake covers all row qubits and the two turn bridges *)
  Alcotest.(check int) "snake length" ((3 * 7) + 2) on

let test_heavy_hex_bridge_degree () =
  let a = Arch.heavy_hex ~rows:3 ~row_len:7 in
  let g = Arch.graph a in
  Array.iter
    (fun b -> Alcotest.(check int) "bridge degree 2" 2 (Graph.degree g b))
    (Arch.off_path a)

let test_hexagon () =
  let a = Arch.hexagon ~rows:6 ~cols:5 in
  Alcotest.(check int) "qubits" 30 (Arch.qubit_count a);
  check_units_partition a;
  check_pair_paths a;
  (* honeycomb: interior degree 3 *)
  let g = Arch.graph a in
  let id r c = (r * 5) + c in
  Alcotest.(check int) "interior degree 3" 3 (Graph.degree g (id 2 2))

let test_hexagon_rejects_odd_rows () =
  Alcotest.check_raises "odd rows rejected"
    (Invalid_argument "Arch.hexagon: rows must be even and >= 2") (fun () ->
      ignore (Arch.hexagon ~rows:5 ~cols:4))

let test_mumbai () =
  let a = Arch.mumbai_like () in
  Alcotest.(check int) "27 qubits" 27 (Arch.qubit_count a);
  Alcotest.(check int) "28 couplings" 28 (Graph.edge_count (Arch.graph a));
  Alcotest.(check bool) "connected" true (Graph.is_connected (Arch.graph a))

let test_smallest_for () =
  List.iter
    (fun kind ->
      List.iter
        (fun n ->
          let a = Arch.smallest_for kind n in
          Alcotest.(check bool)
            (Printf.sprintf "%s holds %d" (Arch.name a) n)
            true
            (Arch.qubit_count a >= n))
        [ 10; 64; 128; 200 ])
    [ Arch.Line; Arch.Grid; Arch.Grid3d; Arch.Sycamore; Arch.Hexagon; Arch.Heavy_hex ]

let test_distances_cached_and_symmetric () =
  let a = Arch.grid ~rows:3 ~cols:3 in
  Alcotest.(check int) "corner distance" 4 (Arch.distance a 0 8);
  Alcotest.(check int) "symmetric" (Arch.distance a 2 6) (Arch.distance a 6 2);
  Alcotest.(check int) "self" 0 (Arch.distance a 4 4)

let test_noise_models () =
  let a = Arch.grid ~rows:3 ~cols:3 in
  let ideal = Noise.ideal a in
  Alcotest.(check (float 1e-12)) "ideal cx error" 0.0 (Noise.cx_error ideal 0 1);
  Alcotest.(check (float 1e-12)) "ideal log success" 0.0 (Noise.log_success_cx ideal 0 1);
  let sampled = Noise.sampled ~seed:3 a in
  let e = Noise.cx_error sampled 0 1 in
  Alcotest.(check bool) "sampled in range" true (e >= 1e-4 && e <= 0.15);
  let sampled' = Noise.sampled ~seed:3 a in
  Alcotest.(check (float 1e-12)) "seeded deterministic" e (Noise.cx_error sampled' 0 1);
  let uni = Noise.uniform a ~cx_error:0.01 in
  Alcotest.(check (float 1e-12)) "uniform" 0.01 (Noise.cx_error uni 3 4)

let test_noise_rejects_uncoupled () =
  let a = Arch.grid ~rows:3 ~cols:3 in
  let m = Noise.ideal a in
  Alcotest.check_raises "uncoupled pair"
    (Invalid_argument "Noise.cx_error: qubits not coupled") (fun () ->
      ignore (Noise.cx_error m 0 8))

let suite =
  [
    Alcotest.test_case "line" `Quick test_line;
    Alcotest.test_case "grid" `Quick test_grid;
    Alcotest.test_case "grid3d" `Quick test_grid3d;
    Alcotest.test_case "sycamore" `Quick test_sycamore;
    Alcotest.test_case "sycamore degrees" `Quick test_sycamore_degrees;
    Alcotest.test_case "heavy-hex" `Quick test_heavy_hex;
    Alcotest.test_case "heavy-hex bridges" `Quick test_heavy_hex_bridge_degree;
    Alcotest.test_case "hexagon" `Quick test_hexagon;
    Alcotest.test_case "hexagon odd rows" `Quick test_hexagon_rejects_odd_rows;
    Alcotest.test_case "mumbai-like" `Quick test_mumbai;
    Alcotest.test_case "smallest_for" `Quick test_smallest_for;
    Alcotest.test_case "distances" `Quick test_distances_cached_and_symmetric;
    Alcotest.test_case "noise models" `Quick test_noise_models;
    Alcotest.test_case "noise rejects uncoupled" `Quick test_noise_rejects_uncoupled;
  ]
