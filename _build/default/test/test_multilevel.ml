module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Circuit = Qcr_circuit.Circuit
module Mapping = Qcr_circuit.Mapping
module Multilevel = Qcr_core.Multilevel
module Pipeline = Qcr_core.Pipeline
module Sv = Qcr_sim.Statevector
module Maxcut = Qcr_sim.Maxcut
module Prng = Qcr_util.Prng

let angles2 = [| (0.41, 0.27); (0.19, 0.63) |]

let test_logical_gate_count () =
  let g = Generate.cycle 6 in
  let c = Multilevel.logical_circuit g ~angles:angles2 in
  (* one H wall (6) + per level: 6 edges + 6 rz + 6 rx *)
  Alcotest.(check int) "gate count" (6 + (2 * (6 + 6 + 6))) (Circuit.gate_count c)

let test_compiled_equivalence_p2 () =
  let rng = Prng.create 7 in
  List.iter
    (fun (arch, g) ->
      let r = Multilevel.compile arch g ~angles:angles2 in
      Alcotest.(check bool) "coupling" true
        (Circuit.validate_coupling arch r.Pipeline.circuit = Ok ());
      let sv_log = Sv.extract_logical (Sv.run r.Pipeline.circuit) ~final:r.Pipeline.final in
      let reference = Sv.run (Multilevel.logical_circuit g ~angles:angles2) in
      Alcotest.(check bool) "p=2 equivalence" true (Sv.fidelity sv_log reference > 1.0 -. 1e-7))
    [
      (Arch.line 5, Generate.erdos_renyi rng ~n:5 ~density:0.5);
      (Arch.grid ~rows:2 ~cols:3, Generate.cycle 6);
      (Arch.heavy_hex ~rows:2 ~row_len:3, Generate.erdos_renyi rng ~n:7 ~density:0.35);
    ]

let test_p3_runs () =
  let g = Generate.cycle 8 in
  let arch = Arch.grid ~rows:3 ~cols:3 in
  let r =
    Multilevel.compile arch g ~angles:[| (0.4, 0.3); (0.3, 0.2); (0.2, 0.1) |]
  in
  Alcotest.(check bool) "has gates" true (r.Pipeline.cx > 0);
  (* three levels of 8 interactions each *)
  let interactions =
    List.length
      (List.filter
         (function
           | Qcr_circuit.Gate.Cphase _ | Qcr_circuit.Gate.Swap_interact _ -> true
           | _ -> false)
         (Circuit.gates r.Pipeline.circuit))
  in
  Alcotest.(check int) "3 x 8 interactions" 24 interactions

let test_p2_energy_beats_p1 () =
  (* on a ring, optimized p=2 reaches a strictly better ideal energy than
     optimized p=1 (classic QAOA hierarchy); compare best-of-grid *)
  let g = Generate.cycle 6 in
  let energy angles =
    let c = Multilevel.logical_circuit g ~angles in
    Maxcut.expectation_value g (Sv.probabilities (Sv.run c))
  in
  let grid = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7 ] in
  let best1 =
    List.fold_left
      (fun acc ga ->
        List.fold_left (fun acc be -> min acc (energy [| (ga, be) |])) acc grid)
      infinity grid
  in
  (* seed p=2 with the best p=1 angles found plus a second-level sweep *)
  let best2 =
    List.fold_left
      (fun acc ga ->
        List.fold_left
          (fun acc be ->
            List.fold_left
              (fun acc ga2 ->
                List.fold_left
                  (fun acc be2 -> min acc (energy [| (ga, be); (ga2, be2) |]))
                  acc [ 0.2; 0.4 ])
              acc [ 0.2; 0.4 ])
          acc grid)
      infinity grid
  in
  Alcotest.(check bool)
    (Printf.sprintf "p=2 (%.3f) <= p=1 (%.3f)" best2 best1)
    true (best2 <= best1 +. 1e-9)

let test_restore_option () =
  let g = Generate.cycle 8 in
  let arch = Arch.grid ~rows:3 ~cols:3 in
  let r = Multilevel.compile ~restore:true arch g ~angles:angles2 in
  Alcotest.(check bool) "final = initial" true
    (Mapping.equal r.Pipeline.final r.Pipeline.initial);
  Alcotest.(check bool) "still valid" true
    (Circuit.validate_coupling arch r.Pipeline.circuit = Ok ());
  (* restored circuit remains equivalent: extract through the (restored)
     final mapping *)
  let sv_log = Sv.extract_logical (Sv.run r.Pipeline.circuit) ~final:r.Pipeline.final in
  let reference = Sv.run (Multilevel.logical_circuit g ~angles:angles2) in
  Alcotest.(check bool) "restored equivalence" true
    (Sv.fidelity sv_log reference > 1.0 -. 1e-7)

let test_rejects_empty_angles () =
  let g = Generate.cycle 4 in
  let arch = Arch.line 4 in
  Alcotest.check_raises "empty angles"
    (Invalid_argument "Multilevel.compile: no angles") (fun () ->
      ignore (Multilevel.compile arch g ~angles:[||]))

let suite =
  [
    Alcotest.test_case "logical gate count" `Quick test_logical_gate_count;
    Alcotest.test_case "p=2 equivalence" `Quick test_compiled_equivalence_p2;
    Alcotest.test_case "p=3 runs" `Quick test_p3_runs;
    Alcotest.test_case "p=2 energy <= p=1" `Slow test_p2_energy_beats_p1;
    Alcotest.test_case "restore option" `Quick test_restore_option;
    Alcotest.test_case "rejects empty" `Quick test_rejects_empty_angles;
  ]
