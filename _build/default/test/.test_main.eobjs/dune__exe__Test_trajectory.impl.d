test/test_trajectory.ml: Alcotest Array List Qcr_arch Qcr_circuit Qcr_core Qcr_graph Qcr_sim Qcr_util
