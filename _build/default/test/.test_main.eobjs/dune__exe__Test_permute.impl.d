test/test_permute.ml: Alcotest Array List Printf QCheck QCheck_alcotest Qcr_arch Qcr_circuit Qcr_graph Qcr_swapnet Qcr_util
