test/test_lower.ml: Alcotest List Printf Qcr_circuit Qcr_sim Qcr_util
