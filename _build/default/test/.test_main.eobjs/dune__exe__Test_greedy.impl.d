test/test_greedy.ml: Alcotest Hashtbl List Qcr_arch Qcr_circuit Qcr_core Qcr_graph Qcr_util
