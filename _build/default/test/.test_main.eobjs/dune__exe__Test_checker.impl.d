test/test_checker.ml: Alcotest List Qcr_arch Qcr_baselines Qcr_circuit Qcr_core Qcr_graph Qcr_util String
