test/test_asciiplot.ml: Alcotest Qcr_util String
