test/test_circuit.ml: Alcotest List Qcr_arch Qcr_circuit Qcr_graph Qcr_sim Qcr_util String
