test/test_predict.ml: Alcotest List Qcr_arch Qcr_circuit Qcr_core Qcr_graph Qcr_swapnet Qcr_util
