test/test_graph.ml: Alcotest Array List QCheck QCheck_alcotest Qcr_graph Qcr_util
