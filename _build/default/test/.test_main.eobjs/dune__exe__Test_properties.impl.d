test/test_properties.ml: Alcotest Array List QCheck QCheck_alcotest Qcr_arch Qcr_circuit Qcr_core Qcr_graph Qcr_swapnet Qcr_util
