test/test_multilevel.ml: Alcotest List Printf Qcr_arch Qcr_circuit Qcr_core Qcr_graph Qcr_sim Qcr_util
