test/test_placement.ml: Alcotest List Qcr_arch Qcr_circuit Qcr_core Qcr_graph Qcr_util
