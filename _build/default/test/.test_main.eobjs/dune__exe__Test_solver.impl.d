test/test_solver.ml: Alcotest List Printf Qcr_arch Qcr_circuit Qcr_graph Qcr_solver Qcr_swapnet Qcr_util
