test/test_qasm_extra.ml: Alcotest Filename List Printf Qcr_arch Qcr_circuit Qcr_core Qcr_graph Qcr_sim Qcr_util String Sys
