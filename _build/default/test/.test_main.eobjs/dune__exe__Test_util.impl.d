test/test_util.ml: Alcotest Array List QCheck QCheck_alcotest Qcr_util String
