test/test_sim.ml: Alcotest Array Float QCheck QCheck_alcotest Qcr_arch Qcr_circuit Qcr_core Qcr_graph Qcr_sim Qcr_util
