test/test_api_surface.ml: Alcotest Array Format List Qcr_arch Qcr_circuit Qcr_graph Qcr_util String
