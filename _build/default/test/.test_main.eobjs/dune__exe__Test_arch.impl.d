test/test_arch.ml: Alcotest Array List Printf Qcr_arch Qcr_graph
