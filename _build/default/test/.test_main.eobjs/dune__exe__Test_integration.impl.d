test/test_integration.ml: Alcotest List QCheck QCheck_alcotest Qcr_arch Qcr_circuit Qcr_core Qcr_graph Qcr_sim Qcr_solver Qcr_swapnet Qcr_util String
