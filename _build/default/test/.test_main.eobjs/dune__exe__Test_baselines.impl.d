test/test_baselines.ml: Alcotest List Qcr_arch Qcr_baselines Qcr_circuit Qcr_core Qcr_graph Qcr_sim Qcr_util
