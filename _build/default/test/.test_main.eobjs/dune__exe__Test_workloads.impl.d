test/test_workloads.ml: Alcotest List Qcr_circuit Qcr_graph Qcr_workloads
