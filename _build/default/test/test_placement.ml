module Arch = Qcr_arch.Arch
module Noise = Qcr_arch.Noise
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Mapping = Qcr_circuit.Mapping
module Program = Qcr_circuit.Program
module Placement = Qcr_core.Placement
module Prng = Qcr_util.Prng

let program_of g = Program.make g Program.Bare_cz

let test_quadratic_cost () =
  let arch = Arch.line 4 in
  let problem = Generate.path 4 in
  let identity = Mapping.identity ~logical:4 ~physical:4 in
  (* a path placed on a line in order: every edge at distance 1 *)
  Alcotest.(check int) "identity path cost" 3 (Placement.quadratic_cost arch problem identity);
  let reversed = Mapping.of_phys_of_log ~logical:4 [| 3; 2; 1; 0 |] in
  Alcotest.(check int) "reversal preserves path cost" 3
    (Placement.quadratic_cost arch problem reversed);
  let scrambled = Mapping.of_phys_of_log ~logical:4 [| 0; 2; 1; 3 |] in
  Alcotest.(check bool) "scramble costs more" true
    (Placement.quadratic_cost arch problem scrambled > 3)

let test_anneal_improves () =
  let rng = Prng.create 3 in
  let arch = Arch.grid ~rows:5 ~cols:5 in
  let problem = Generate.erdos_renyi rng ~n:25 ~density:0.12 in
  let identity = Mapping.identity ~logical:25 ~physical:25 in
  let annealed = Placement.anneal ~seed:5 arch problem in
  Alcotest.(check bool) "anneal no worse than identity" true
    (Placement.quadratic_cost arch problem annealed
    <= Placement.quadratic_cost arch problem identity)

let test_anneal_deterministic () =
  let arch = Arch.grid ~rows:4 ~cols:4 in
  let problem = Generate.cycle 16 in
  let a = Placement.anneal ~seed:11 arch problem in
  let b = Placement.anneal ~seed:11 arch problem in
  Alcotest.(check bool) "same seed, same placement" true (Mapping.equal a b)

let test_anneal_is_bijection () =
  let arch = Arch.heavy_hex ~rows:2 ~row_len:7 in
  let problem = Generate.cycle 10 in
  let m = Placement.anneal ~seed:2 arch problem in
  let n_phys = Arch.qubit_count arch in
  for p = 0 to n_phys - 1 do
    Alcotest.(check int) "bijective" p (Mapping.phys_of_log m (Mapping.log_of_phys m p))
  done

let test_candidates_nonempty_sorted () =
  let arch = Arch.grid ~rows:4 ~cols:4 in
  let problem = Generate.cycle 12 in
  let cs = Placement.candidates arch (program_of problem) in
  Alcotest.(check bool) "at least one candidate" true (List.length cs >= 1);
  (* first candidate carries the best quadratic cost *)
  let costs = List.map (fun m -> Placement.quadratic_cost arch problem m) cs in
  Alcotest.(check bool) "head is minimal" true
    (List.for_all (fun c -> List.hd costs <= c) costs)

let test_candidates_empty_program () =
  let arch = Arch.line 5 in
  let cs = Placement.candidates arch (program_of (Graph.create 5)) in
  Alcotest.(check int) "single identity candidate" 1 (List.length cs)

let test_noise_aware_anneal_avoids_bad_links () =
  (* two-segment line where the middle link is terrible: a 2-qubit
     program should be placed away from it *)
  let arch = Arch.line 6 in
  let noise = Noise.uniform arch ~cx_error:0.001 in
  (* uniform has no variability; instead build variability by hand via
     sampled with a seed that we probe *)
  ignore noise;
  let noise = Noise.sampled ~seed:3 arch in
  let problem = Graph.of_edges 2 [ (0, 1) ] in
  let m = Placement.anneal ~seed:4 ~noise arch problem in
  let p0 = Mapping.phys_of_log m 0 and p1 = Mapping.phys_of_log m 1 in
  Alcotest.(check bool) "pair adjacent" true (Graph.has_edge (Arch.graph arch) p0 p1);
  (* the chosen link should be at most the median error *)
  let errors =
    List.map (fun (u, v) -> Noise.cx_error noise u v) (Graph.edges (Arch.graph arch))
  in
  let sorted = List.sort compare errors in
  let median = List.nth sorted (List.length sorted / 2) in
  Alcotest.(check bool) "placed on a good link" true
    (Noise.cx_error noise p0 p1 <= median +. 1e-12)

let test_auto_covers_density_regimes () =
  let arch = Arch.grid ~rows:4 ~cols:4 in
  List.iter
    (fun density ->
      let rng = Prng.create 9 in
      let g = Generate.erdos_renyi rng ~n:16 ~density in
      let m = Placement.auto arch (program_of g) in
      Alcotest.(check int) "physical count" 16 (Mapping.physical_count m))
    [ 0.05; 0.3; 0.8 ]

let suite =
  [
    Alcotest.test_case "quadratic cost" `Quick test_quadratic_cost;
    Alcotest.test_case "anneal improves" `Quick test_anneal_improves;
    Alcotest.test_case "anneal deterministic" `Quick test_anneal_deterministic;
    Alcotest.test_case "anneal bijection" `Quick test_anneal_is_bijection;
    Alcotest.test_case "candidates sorted" `Quick test_candidates_nonempty_sorted;
    Alcotest.test_case "candidates empty program" `Quick test_candidates_empty_program;
    Alcotest.test_case "noise-aware anneal" `Quick test_noise_aware_anneal_avoids_bad_links;
    Alcotest.test_case "auto density regimes" `Quick test_auto_covers_density_regimes;
  ]
