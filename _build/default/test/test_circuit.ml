module Gate = Qcr_circuit.Gate
module Circuit = Qcr_circuit.Circuit
module Mapping = Qcr_circuit.Mapping
module Program = Qcr_circuit.Program
module Qasm = Qcr_circuit.Qasm
module Graph = Qcr_graph.Graph
module Arch = Qcr_arch.Arch
module Prng = Qcr_util.Prng

let test_gate_costs () =
  Alcotest.(check int) "cx cost" 1 (Gate.cx_cost (Gate.Cx (0, 1)));
  Alcotest.(check int) "cz cost" 1 (Gate.cx_cost (Gate.Cz (0, 1)));
  Alcotest.(check int) "cphase cost" 2 (Gate.cx_cost (Gate.Cphase (0, 1, 0.3)));
  Alcotest.(check int) "rzz cost" 2 (Gate.cx_cost (Gate.Rzz (0, 1, 0.3)));
  Alcotest.(check int) "swap cost" 3 (Gate.cx_cost (Gate.Swap (0, 1)));
  Alcotest.(check int) "merged cost" 3 (Gate.cx_cost (Gate.Swap_interact (0, 1, 0.3)));
  Alcotest.(check int) "1q cost" 0 (Gate.cx_cost (Gate.H 0))

let test_gate_qubits () =
  Alcotest.(check (list int)) "2q" [ 0; 3 ] (Gate.qubits (Gate.Cx (0, 3)));
  Alcotest.(check (list int)) "1q" [ 2 ] (Gate.qubits (Gate.Rz (2, 0.1)));
  Alcotest.(check (list int)) "barrier" [] (Gate.qubits Gate.Barrier)

let test_circuit_depth () =
  let c = Circuit.create 3 in
  Circuit.add c (Gate.Cx (0, 1));
  Circuit.add c (Gate.Cx (1, 2));
  Circuit.add c (Gate.Cx (0, 1));
  Alcotest.(check int) "serial depth" 3 (Circuit.depth c);
  let p = Circuit.create 4 in
  Circuit.add p (Gate.Cx (0, 1));
  Circuit.add p (Gate.Cx (2, 3));
  Alcotest.(check int) "parallel depth" 1 (Circuit.depth p)

let test_depth2q_ignores_1q () =
  let c = Circuit.create 2 in
  Circuit.add c (Gate.H 0);
  Circuit.add c (Gate.H 1);
  Circuit.add c (Gate.Cx (0, 1));
  Alcotest.(check int) "2q depth" 1 (Circuit.depth2q c);
  Alcotest.(check int) "full depth" 2 (Circuit.depth c)

let test_layers () =
  let c = Circuit.create 4 in
  Circuit.add c (Gate.Cx (0, 1));
  Circuit.add c (Gate.Cx (2, 3));
  Circuit.add c (Gate.Cx (1, 2));
  let layers = Circuit.layers c in
  Alcotest.(check int) "two layers" 2 (List.length layers);
  Alcotest.(check int) "first layer size" 2 (List.length (List.hd layers))

let test_cx_count () =
  let c = Circuit.create 3 in
  Circuit.add c (Gate.Cphase (0, 1, 0.5));
  Circuit.add c (Gate.Swap (1, 2));
  Circuit.add c (Gate.H 0);
  Alcotest.(check int) "cx count" 5 (Circuit.cx_count c)

let test_merge_swaps_counts () =
  let c = Circuit.create 3 in
  Circuit.add c (Gate.Cphase (0, 1, 0.5));
  Circuit.add c (Gate.Swap (0, 1));
  Circuit.add c (Gate.Cphase (1, 2, 0.5));
  Circuit.add c (Gate.H 1);
  Circuit.add c (Gate.Swap (1, 2));
  let merged = Circuit.merge_swaps c in
  (* first pair fuses (5 -> 3 CX); second does not (H intervenes) *)
  Alcotest.(check int) "merged cx" (3 + 2 + 3) (Circuit.cx_count merged);
  Alcotest.(check int) "gate count shrinks" 4 (Circuit.gate_count merged)

let test_merge_swaps_no_false_fusion () =
  let c = Circuit.create 3 in
  Circuit.add c (Gate.Cphase (0, 1, 0.5));
  Circuit.add c (Gate.Cx (1, 2));
  Circuit.add c (Gate.Swap (0, 1));
  let merged = Circuit.merge_swaps c in
  Alcotest.(check int) "no fusion across interposer" 3 (Circuit.gate_count merged)

let test_merge_swaps_semantics () =
  (* random circuits: merged and unmerged are the same unitary *)
  let rng = Prng.create 23 in
  for _ = 1 to 20 do
    let c = Circuit.create 4 in
    for _ = 1 to 25 do
      let a = Prng.int rng 4 in
      let b = (a + 1 + Prng.int rng 3) mod 4 in
      match Prng.int rng 4 with
      | 0 -> Circuit.add c (Gate.Cphase (a, b, Prng.float rng 3.0))
      | 1 -> Circuit.add c (Gate.Swap (a, b))
      | 2 -> Circuit.add c (Gate.H a)
      | _ -> Circuit.add c (Gate.Rzz (a, b, Prng.float rng 3.0))
    done;
    let sv1 = Qcr_sim.Statevector.run c in
    let sv2 = Qcr_sim.Statevector.run (Circuit.merge_swaps c) in
    let f = Qcr_sim.Statevector.fidelity sv1 sv2 in
    Alcotest.(check bool) "merge preserves semantics" true (f > 1.0 -. 1e-9)
  done

let test_validate_coupling () =
  let arch = Arch.line 3 in
  let good = Circuit.create 3 in
  Circuit.add good (Gate.Cx (0, 1));
  Alcotest.(check bool) "valid" true (Circuit.validate_coupling arch good = Ok ());
  let bad = Circuit.create 3 in
  Circuit.add bad (Gate.Cx (0, 2));
  Alcotest.(check bool) "invalid" true (Circuit.validate_coupling arch bad <> Ok ())

let test_log_fidelity () =
  let arch = Arch.line 3 in
  let noise = Qcr_arch.Noise.uniform arch ~cx_error:0.01 in
  let c = Circuit.create 3 in
  Circuit.add c (Gate.Swap (0, 1));
  (* 3 CX at 1% error *)
  Alcotest.(check (float 1e-9)) "log fid" (3.0 *. log 0.99) (Circuit.log_fidelity noise c)

let test_mapping_basics () =
  let m = Mapping.identity ~logical:3 ~physical:5 in
  Alcotest.(check int) "phys of log" 2 (Mapping.phys_of_log m 2);
  Alcotest.(check bool) "dummy" true (Mapping.is_dummy m 4);
  Alcotest.(check bool) "not dummy" false (Mapping.is_dummy m 2);
  Mapping.apply_swap m 0 4;
  Alcotest.(check int) "after swap" 4 (Mapping.phys_of_log m 0);
  Alcotest.(check int) "inverse" 0 (Mapping.log_of_phys m 4 |> fun l -> Mapping.phys_of_log m l |> fun p -> if p = 4 then 0 else 1)

let test_mapping_rejects_non_permutation () =
  Alcotest.check_raises "not a permutation" (Invalid_argument "Mapping: not a permutation")
    (fun () -> ignore (Mapping.of_phys_of_log ~logical:2 [| 0; 0 |]))

let test_mapping_random_bijection () =
  let rng = Prng.create 9 in
  let m = Mapping.random rng ~logical:5 ~physical:8 in
  for l = 0 to 7 do
    Alcotest.(check int) "round trip" l (Mapping.log_of_phys m (Mapping.phys_of_log m l))
  done

let test_program_logical_circuit () =
  let g = Graph.complete 4 in
  let p = Program.make g (Program.Qaoa_maxcut { gamma = 0.4; beta = 0.3 }) in
  let c = Program.logical_circuit p in
  (* 4 H + 6 edges + 4 rz + 4 rx *)
  Alcotest.(check int) "gate count" (4 + 6 + 4 + 4) (Circuit.gate_count c);
  let two_local = Program.make g (Program.Two_local { theta = 0.2 }) in
  Alcotest.(check int) "bare edges" 6 (Circuit.gate_count (Program.logical_circuit two_local))

let test_program_angles () =
  let g = Graph.complete 3 in
  let p = Program.make g (Program.Qaoa_maxcut { gamma = 0.1; beta = 0.2 }) in
  let p' = Program.with_angles p ~gamma:0.5 ~beta:0.6 in
  match Program.interaction p' with
  | Program.Qaoa_maxcut { gamma; beta } ->
      Alcotest.(check (float 1e-12)) "gamma" 0.5 gamma;
      Alcotest.(check (float 1e-12)) "beta" 0.6 beta
  | _ -> Alcotest.fail "wrong interaction"

let test_qasm_output () =
  let c = Circuit.create 2 in
  Circuit.add c (Gate.H 0);
  Circuit.add c (Gate.Cx (0, 1));
  Circuit.add c (Gate.Swap_interact (0, 1, 0.5));
  let s = Qasm.to_string c in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec scan i = i + nl <= sl && (String.sub s i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "header" true (contains "OPENQASM 2.0");
  Alcotest.(check bool) "h gate" true (contains "h q[0];");
  Alcotest.(check bool) "cx gate" true (contains "cx q[0],q[1];");
  Alcotest.(check bool) "merged lowered" true (contains "swap q[0],q[1];")

let suite =
  [
    Alcotest.test_case "gate costs" `Quick test_gate_costs;
    Alcotest.test_case "gate qubits" `Quick test_gate_qubits;
    Alcotest.test_case "circuit depth" `Quick test_circuit_depth;
    Alcotest.test_case "depth2q" `Quick test_depth2q_ignores_1q;
    Alcotest.test_case "layers" `Quick test_layers;
    Alcotest.test_case "cx count" `Quick test_cx_count;
    Alcotest.test_case "merge swaps counts" `Quick test_merge_swaps_counts;
    Alcotest.test_case "merge swaps guard" `Quick test_merge_swaps_no_false_fusion;
    Alcotest.test_case "merge swaps semantics" `Quick test_merge_swaps_semantics;
    Alcotest.test_case "validate coupling" `Quick test_validate_coupling;
    Alcotest.test_case "log fidelity" `Quick test_log_fidelity;
    Alcotest.test_case "mapping basics" `Quick test_mapping_basics;
    Alcotest.test_case "mapping rejects" `Quick test_mapping_rejects_non_permutation;
    Alcotest.test_case "mapping random" `Quick test_mapping_random_bijection;
    Alcotest.test_case "program logical circuit" `Quick test_program_logical_circuit;
    Alcotest.test_case "program angles" `Quick test_program_angles;
    Alcotest.test_case "qasm output" `Quick test_qasm_output;
  ]
