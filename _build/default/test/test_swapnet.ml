module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Schedule = Qcr_swapnet.Schedule
module Linear = Qcr_swapnet.Linear
module Bipartite = Qcr_swapnet.Bipartite
module Two_level = Qcr_swapnet.Two_level
module Heavyhex = Qcr_swapnet.Heavyhex
module Ata = Qcr_swapnet.Ata
module Mapping = Qcr_circuit.Mapping
module Program = Qcr_circuit.Program
module Circuit = Qcr_circuit.Circuit
module Gate = Qcr_circuit.Gate
module Prng = Qcr_util.Prng

let check_valid arch sched =
  match Schedule.validate (Arch.graph arch) sched with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let check_full_coverage arch sched =
  check_valid arch sched;
  let n = Arch.qubit_count arch in
  Alcotest.(check (list (pair int int))) "all pairs touched" []
    (Schedule.uncovered_pairs ~n sched)

let test_linear_coverage () =
  List.iter
    (fun n ->
      let arch = Arch.line n in
      check_full_coverage arch (Linear.pattern (Arch.long_path arch)))
    [ 2; 3; 4; 5; 6; 9 ]

let test_linear_reversal () =
  (* after the full k-round pattern the token order is exactly reversed *)
  List.iter
    (fun n ->
      let path = Array.init n (fun i -> i) in
      let final = Schedule.final_positions ~n (Linear.pattern path) in
      Array.iteri
        (fun token pos ->
          Alcotest.(check int) (Printf.sprintf "token %d reversed" token) (n - 1 - token) pos)
        final)
    [ 2; 4; 5; 8 ]

let test_linear_cycle_count () =
  (* 2k cycles: k touch layers + k swap layers (paper: n CPHASE layers,
     n - 2 SWAP layers before the final two reversal layers) *)
  let n = 6 in
  Alcotest.(check int) "cycles" (2 * n)
    (Schedule.cycle_count (Linear.pattern (Array.init n (fun i -> i))))

let test_linear_touch_exactly_once () =
  let n = 7 in
  let sched = Linear.pattern (Array.init n (fun i -> i)) in
  Alcotest.(check int) "touch count = pairs" (n * (n - 1) / 2) (Schedule.touch_count sched)

let test_fig7_variant_covers () =
  (* the paper's literal Fig 6/7 structure: n interaction layers + n-2
     swap layers = 2n-2 cycles, which equals the A* optimum for the
     clique-on-a-line (test_solver checks that equality directly) *)
  List.iter
    (fun n ->
      let path = Array.init n (fun i -> i) in
      let sched = Linear.pattern_fig7 path in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "fig7 n=%d covers" n)
        []
        (Schedule.uncovered_pairs ~n sched);
      Alcotest.(check int)
        (Printf.sprintf "fig7 n=%d touches each pair once" n)
        (n * (n - 1) / 2)
        (Schedule.touch_count sched);
      Alcotest.(check int)
        (Printf.sprintf "fig7 n=%d cycles = 2n-2" n)
        ((2 * n) - 2)
        (Schedule.cycle_count sched))
    [ 3; 4; 5; 6; 9; 12 ]

let test_fig7_matches_solver_optimum () =
  (* the structured pattern's 2n-2 equals the depth-optimal solver's
     answer for the clique on a line (paper: the solver discovered the
     pattern) *)
  List.iter
    (fun n ->
      let sched = Linear.pattern_fig7 (Array.init n (fun i -> i)) in
      let init = Mapping.identity ~logical:n ~physical:n in
      match
        Qcr_solver.Astar.solve ~problem:(Graph.complete n)
          ~coupling:(Qcr_graph.Generate.path n) ~init ()
      with
      | Some o ->
          Alcotest.(check int)
            (Printf.sprintf "n=%d pattern = optimal" n)
            o.Qcr_solver.Astar.depth (Schedule.cycle_count sched)
      | None -> Alcotest.fail "solver failed")
    [ 3; 4; 5 ]

let test_bipartite_coverage_and_rows () =
  let arch = Arch.grid ~rows:2 ~cols:5 in
  let units = Arch.units arch in
  let sched = Bipartite.pattern ~a:units.(0) ~b:units.(1) in
  check_valid arch sched;
  let n = 10 in
  let met, final = Schedule.coverage ~n sched in
  (* every cross pair met exactly via touch; rows preserved as sets *)
  for a = 0 to 4 do
    for b = 5 to 9 do
      Alcotest.(check bool)
        (Printf.sprintf "cross pair %d-%d" a b)
        true
        (Qcr_util.Bitset.mem met ((a * n) + b))
    done
  done;
  Array.iteri
    (fun token pos ->
      Alcotest.(check bool) "row preserved" true ((token < 5) = (pos < 5)))
    final

let test_bipartite_cycle_count () =
  let arch = Arch.grid ~rows:2 ~cols:4 in
  let units = Arch.units arch in
  Alcotest.(check int) "2k-1 cycles" 7
    (Schedule.cycle_count (Bipartite.pattern ~a:units.(0) ~b:units.(1)))

let test_exchange_cycle () =
  let arch = Arch.grid ~rows:2 ~cols:3 in
  let units = Arch.units arch in
  let sched = [ Bipartite.exchange_cycle ~a:units.(0) ~b:units.(1) ] in
  let final = Schedule.final_positions ~n:6 sched in
  Alcotest.(check (array int)) "rows exchanged" [| 3; 4; 5; 0; 1; 2 |] final

let test_grid_ata () =
  List.iter
    (fun (r, c) -> check_full_coverage (Arch.grid ~rows:r ~cols:c) (Ata.schedule (Arch.grid ~rows:r ~cols:c)))
    [ (2, 2); (3, 3); (4, 4); (4, 5); (5, 4); (6, 6) ]

let test_sycamore_ata () =
  List.iter
    (fun (r, c) ->
      let arch = Arch.sycamore ~rows:r ~cols:c in
      check_full_coverage arch (Ata.schedule arch))
    [ (2, 3); (4, 4); (6, 5) ]

let test_hexagon_ata () =
  List.iter
    (fun (r, c) ->
      let arch = Arch.hexagon ~rows:r ~cols:c in
      check_full_coverage arch (Ata.schedule arch))
    [ (4, 3); (6, 5); (4, 6) ]

let test_grid3d_ata () =
  List.iter
    (fun (x, y, z) ->
      let arch = Arch.grid3d ~nx:x ~ny:y ~nz:z in
      check_full_coverage arch (Ata.schedule arch))
    [ (2, 2, 2); (3, 3, 3); (2, 3, 4) ]

let test_heavyhex_ata () =
  List.iter
    (fun (rows, len) ->
      let arch = Arch.heavy_hex ~rows ~row_len:len in
      check_full_coverage arch (Ata.schedule arch))
    [ (2, 3); (3, 7); (4, 11) ]

let test_mumbai_ata () =
  let arch = Arch.mumbai_like () in
  check_full_coverage arch (Ata.schedule arch)

let test_ata_linear_depth () =
  (* cycle count scales linearly with qubit count across sizes *)
  let per_qubit kind n =
    let arch = Arch.smallest_for kind n in
    float_of_int (Schedule.cycle_count (Ata.schedule arch))
    /. float_of_int (Arch.qubit_count arch)
  in
  List.iter
    (fun kind ->
      let small = per_qubit kind 64 and large = per_qubit kind 400 in
      Alcotest.(check bool)
        "cycles/qubit roughly constant" true
        (large < 2.5 *. small +. 4.0))
    [ Arch.Grid; Arch.Sycamore; Arch.Hexagon; Arch.Heavy_hex ]

let test_heavyhex_passes_partial () =
  (* one pass alone covers all path-token pairs but not everything *)
  let arch = Arch.heavy_hex ~rows:3 ~row_len:7 in
  let one = Heavyhex.passes arch 1 in
  let n = Arch.qubit_count arch in
  let missing = Schedule.uncovered_pairs ~n one in
  Alcotest.(check bool) "one pass incomplete" true (missing <> []);
  let path = Arch.long_path arch in
  let on_path = Array.make n false in
  Array.iter (fun q -> on_path.(q) <- true) path;
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) "missing pairs involve off-path tokens" true
        ((not on_path.(a)) || not on_path.(b)))
    missing

let test_grid_merged_saves_prologue () =
  List.iter
    (fun (r, c) ->
      let arch = Arch.grid ~rows:r ~cols:c in
      let n = Arch.qubit_count arch in
      let merged = Two_level.grid_merged arch in
      check_valid arch merged;
      Alcotest.(check (list (pair int int))) "merged covers" []
        (Schedule.uncovered_pairs ~n merged);
      Alcotest.(check bool) "merged no longer than specialized" true
        (Schedule.cycle_count merged
        <= Schedule.cycle_count (Two_level.grid_specialized arch)))
    [ (2, 2); (3, 3); (4, 5); (6, 6); (7, 3) ]

let test_two_level_unified_grid () =
  (* the unified scheme also works on the grid (superset of couplings) *)
  let arch = Arch.grid ~rows:4 ~cols:4 in
  check_valid arch (Two_level.unified arch);
  let n = Arch.qubit_count arch in
  Alcotest.(check (list (pair int int))) "unified grid covers" []
    (Schedule.uncovered_pairs ~n (Two_level.unified arch))

let test_schedule_par_disjoint () =
  let a = [ [ Schedule.Touch (0, 1) ]; [ Schedule.Swap (0, 1) ] ] in
  let b = [ [ Schedule.Touch (2, 3) ] ] in
  let z = Schedule.par a b in
  Alcotest.(check int) "zip length" 2 (Schedule.cycle_count z);
  Alcotest.(check int) "ops merged" 2 (List.length (List.hd z))

let test_validate_catches_conflicts () =
  let g = Qcr_graph.Generate.path 3 in
  let bad = [ [ Schedule.Touch (0, 1); Schedule.Swap (1, 2) ] ] in
  Alcotest.(check bool) "conflict detected" true (Schedule.validate g bad <> Ok ());
  let bad2 = [ [ Schedule.Touch (0, 2) ] ] in
  Alcotest.(check bool) "uncoupled detected" true (Schedule.validate g bad2 <> Ok ())

let test_render () =
  let sched = Linear.pattern [| 0; 1; 2; 3 |] in
  let out = Qcr_swapnet.Render.schedule ~n:4 sched in
  Alcotest.(check bool) "mentions qubits" true
    (String.length out > 0 && String.sub out 0 2 = "q0");
  let toks = Qcr_swapnet.Render.tokens ~n:4 sched in
  Alcotest.(check bool) "token view renders" true (String.length toks > 0)

(* --- realization --- *)

let realize_all arch program =
  let n_phys = Arch.qubit_count arch in
  let mapping = Mapping.identity ~logical:(Program.qubit_count program) ~physical:n_phys in
  let r = Schedule.realize ~program ~mapping ~n_phys (Ata.schedule arch) in
  (r, mapping)

let test_realize_clique () =
  let arch = Arch.grid ~rows:3 ~cols:3 in
  let program = Program.make (Graph.complete 9) Program.Bare_cz in
  let r, _ = realize_all arch program in
  Alcotest.(check int) "all 36 gates emitted" 36 (List.length r.Schedule.emitted);
  Alcotest.(check bool) "coupling valid" true
    (Circuit.validate_coupling arch r.Schedule.circuit = Ok ())

let test_realize_sparse_skips () =
  let arch = Arch.grid ~rows:3 ~cols:3 in
  let g = Qcr_graph.Generate.path 9 in
  let program = Program.make g Program.Bare_cz in
  let r, _ = realize_all arch program in
  Alcotest.(check int) "exactly the path edges" 8 (List.length r.Schedule.emitted);
  let clique_r, _ = realize_all arch (Program.make (Graph.complete 9) Program.Bare_cz) in
  Alcotest.(check bool) "sparse uses fewer swaps" true
    (r.Schedule.swaps_used <= clique_r.Schedule.swaps_used)

let test_realize_dummy_wires () =
  (* fewer logical than physical: gates only on real tokens *)
  let arch = Arch.grid ~rows:3 ~cols:3 in
  let program = Program.make (Graph.complete 4) Program.Bare_cz in
  let r, mapping = realize_all arch program in
  Alcotest.(check int) "6 gates" 6 (List.length r.Schedule.emitted);
  (* mapping stays a bijection *)
  for p = 0 to 8 do
    Alcotest.(check int) "bijection" p (Mapping.phys_of_log mapping (Mapping.log_of_phys mapping p))
  done

let test_estimate_matches_realize () =
  let arch = Arch.grid ~rows:3 ~cols:3 in
  let rng = Prng.create 31 in
  for _ = 1 to 5 do
    let g = Qcr_graph.Generate.erdos_renyi rng ~n:9 ~density:0.4 in
    let program = Program.make g Program.Bare_cz in
    let n_phys = 9 in
    let mapping = Mapping.identity ~logical:9 ~physical:n_phys in
    let est = Schedule.estimate ~remaining:g ~mapping (Ata.schedule arch) in
    let r = Schedule.realize ~program ~mapping:(Mapping.copy mapping) ~n_phys (Ata.schedule arch) in
    match est with
    | None -> Alcotest.fail "estimate failed"
    | Some (cycles, swaps, merged) ->
        Alcotest.(check int) "cycles agree" r.Schedule.cycles_used cycles;
        Alcotest.(check int) "swaps agree" r.Schedule.swaps_used swaps;
        (* merged count matches what the merge pass actually fuses *)
        let fused_count =
          let before = Qcr_circuit.Circuit.gate_count r.Schedule.circuit in
          let after =
            Qcr_circuit.Circuit.gate_count (Qcr_circuit.Circuit.merge_swaps r.Schedule.circuit)
          in
          before - after
        in
        Alcotest.(check int) "merged agrees with merge pass" fused_count merged
  done

let test_region_schedule () =
  let arch = Arch.grid ~rows:6 ~cols:6 in
  (* qubits confined to rows 0-1, cols 0-2 *)
  match Ata.region_schedule arch [ 0; 1; 2; 6; 7; 8 ] with
  | None -> Alcotest.fail "expected a region"
  | Some (sched, members) ->
      check_valid arch sched;
      Alcotest.(check (list int)) "members" [ 0; 1; 2; 6; 7; 8 ] members;
      (* region schedule never leaves its members *)
      List.iter
        (fun cycle ->
          List.iter
            (fun op ->
              let p, q = match op with Schedule.Swap (p, q) | Schedule.Touch (p, q) -> (p, q) in
              Alcotest.(check bool) "op inside region" true
                (List.mem p members && List.mem q members))
            cycle)
        sched

let test_region_whole_device_is_none () =
  let arch = Arch.grid ~rows:4 ~cols:4 in
  Alcotest.(check bool) "whole device -> None" true
    (Ata.region_schedule arch (List.init 16 Fun.id) = None)

let suite =
  [
    Alcotest.test_case "linear coverage" `Quick test_linear_coverage;
    Alcotest.test_case "linear reversal" `Quick test_linear_reversal;
    Alcotest.test_case "linear cycle count" `Quick test_linear_cycle_count;
    Alcotest.test_case "linear touch once" `Quick test_linear_touch_exactly_once;
    Alcotest.test_case "fig7 literal loop" `Quick test_fig7_variant_covers;
    Alcotest.test_case "fig7 = solver optimum" `Slow test_fig7_matches_solver_optimum;
    Alcotest.test_case "bipartite coverage+rows" `Quick test_bipartite_coverage_and_rows;
    Alcotest.test_case "bipartite cycles" `Quick test_bipartite_cycle_count;
    Alcotest.test_case "exchange cycle" `Quick test_exchange_cycle;
    Alcotest.test_case "grid ATA" `Quick test_grid_ata;
    Alcotest.test_case "sycamore ATA" `Quick test_sycamore_ata;
    Alcotest.test_case "hexagon ATA" `Quick test_hexagon_ata;
    Alcotest.test_case "3D-grid ATA" `Quick test_grid3d_ata;
    Alcotest.test_case "heavy-hex ATA" `Quick test_heavyhex_ata;
    Alcotest.test_case "mumbai ATA" `Quick test_mumbai_ata;
    Alcotest.test_case "ATA linear depth" `Slow test_ata_linear_depth;
    Alcotest.test_case "heavy-hex single pass" `Quick test_heavyhex_passes_partial;
    Alcotest.test_case "grid merged pattern" `Quick test_grid_merged_saves_prologue;
    Alcotest.test_case "unified on grid" `Quick test_two_level_unified_grid;
    Alcotest.test_case "schedule par" `Quick test_schedule_par_disjoint;
    Alcotest.test_case "validate conflicts" `Quick test_validate_catches_conflicts;
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "realize clique" `Quick test_realize_clique;
    Alcotest.test_case "realize sparse skips" `Quick test_realize_sparse_skips;
    Alcotest.test_case "realize dummies" `Quick test_realize_dummy_wires;
    Alcotest.test_case "estimate = realize" `Quick test_estimate_matches_realize;
    Alcotest.test_case "region schedule" `Quick test_region_schedule;
    Alcotest.test_case "region whole device" `Quick test_region_whole_device_is_none;
  ]
