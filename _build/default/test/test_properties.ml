(* Property-based tests over the core invariants. *)

module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Circuit = Qcr_circuit.Circuit
module Gate = Qcr_circuit.Gate
module Program = Qcr_circuit.Program
module Mapping = Qcr_circuit.Mapping
module Schedule = Qcr_swapnet.Schedule
module Ata = Qcr_swapnet.Ata
module Config = Qcr_core.Config
module Pipeline = Qcr_core.Pipeline
module Prng = Qcr_util.Prng

(* The ATA property holds for arbitrary rectangle shapes of each lattice
   family (not just the sizes unit tests pin down). *)
let prop_ata_coverage_random_shapes =
  QCheck.Test.make ~name:"ATA schedules cover all pairs on random shapes" ~count:12
    QCheck.(triple (int_range 2 5) (int_range 2 5) (int_bound 3))
    (fun (a, b, kind_pick) ->
      let arch =
        match kind_pick with
        | 0 -> Arch.grid ~rows:a ~cols:b
        | 1 -> Arch.sycamore ~rows:(2 * a) ~cols:b
        | 2 -> Arch.hexagon ~rows:(2 * a) ~cols:b
        | _ -> Arch.heavy_hex ~rows:a ~row_len:(max 3 ((4 * (b / 2)) + 3))
      in
      let sched = Ata.schedule arch in
      let n = Arch.qubit_count arch in
      Schedule.validate (Arch.graph arch) sched = Ok ()
      && Schedule.covers_all_pairs ~n sched)

(* The linear pattern touches each pair exactly once, for any length. *)
let prop_linear_touch_once =
  QCheck.Test.make ~name:"linear pattern touches each pair exactly once" ~count:30
    QCheck.(int_range 2 40)
    (fun n ->
      let sched = Qcr_swapnet.Linear.pattern (Array.init n (fun i -> i)) in
      Schedule.touch_count sched = n * (n - 1) / 2
      && Schedule.covers_all_pairs ~n sched)

(* Realization against random sparse programs: the emitted edge set equals
   the program edge set. *)
let prop_realize_exact_edges =
  QCheck.Test.make ~name:"realize emits exactly the program edges" ~count:25
    QCheck.(pair (int_bound 10000) (int_range 4 16))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Generate.erdos_renyi rng ~n ~density:0.35 in
      let arch = Arch.smallest_for Arch.Grid n in
      let program = Program.make g Program.Bare_cz in
      let mapping =
        Mapping.identity ~logical:n ~physical:(Arch.qubit_count arch)
      in
      let r =
        Schedule.realize ~program ~mapping ~n_phys:(Arch.qubit_count arch)
          (Ata.schedule arch)
      in
      let emitted = List.sort_uniq compare (List.map (fun (u, v) -> (min u v, max u v)) r.Schedule.emitted) in
      emitted = Graph.edges g)

(* Crosstalk-aware scheduling: within each greedy cycle, no two scheduled
   interaction gates sit on adjacent coupling sites.  (ASAP re-layering of
   the final circuit may re-pack cycles, so the invariant is checked on
   the engine's own cycles.) *)
let test_crosstalk_layers_clean () =
  let rng = Prng.create 12 in
  let g = Generate.erdos_renyi rng ~n:12 ~density:0.4 in
  let arch = Arch.grid ~rows:4 ~cols:3 in
  let config = { Config.default with Config.crosstalk_aware = true; use_selector = false } in
  let program = Program.make g Program.Bare_cz in
  let init = Mapping.identity ~logical:12 ~physical:12 in
  let engine = Qcr_core.Greedy.create ~config ~arch ~program ~init () in
  let device = Arch.graph arch in
  let adjacent (p1, q1) (p2, q2) =
    Graph.has_edge device p1 p2 || Graph.has_edge device p1 q2 || Graph.has_edge device q1 p2
    || Graph.has_edge device q1 q2
  in
  let seen = ref 0 in
  while not (Qcr_core.Greedy.finished engine) do
    ignore (Qcr_core.Greedy.step engine);
    let gates = Circuit.gates (Qcr_core.Greedy.circuit engine) in
    let fresh = List.filteri (fun i _ -> i >= !seen) gates in
    seen := List.length gates;
    let sites =
      List.filter_map (function Gate.Cz (a, b) -> Some (a, b) | _ -> None) fresh
    in
    let rec pairwise = function
      | [] -> ()
      | s :: rest ->
          List.iter
            (fun s' ->
              Alcotest.(check bool) "no crosstalk-adjacent parallel gates" false
                (adjacent s s'))
            rest;
          pairwise rest
    in
    pairwise sites
  done

(* Determinism of the full pipeline across architectures. *)
let prop_compile_deterministic =
  QCheck.Test.make ~name:"compilation is deterministic" ~count:10
    QCheck.(pair (int_bound 10000) (int_range 6 14))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Generate.erdos_renyi rng ~n ~density:0.3 in
      let arch = Arch.smallest_for Arch.Heavy_hex n in
      let program = Program.make g Program.Bare_cz in
      let a = Pipeline.compile arch program and b = Pipeline.compile arch program in
      a.Pipeline.depth = b.Pipeline.depth && a.Pipeline.cx = b.Pipeline.cx)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_ata_coverage_random_shapes;
    QCheck_alcotest.to_alcotest prop_linear_touch_once;
    QCheck_alcotest.to_alcotest prop_realize_exact_edges;
    Alcotest.test_case "crosstalk layers clean" `Quick test_crosstalk_layers_clean;
    QCheck_alcotest.to_alcotest prop_compile_deterministic;
  ]
