module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Mapping = Qcr_circuit.Mapping
module Circuit = Qcr_circuit.Circuit
module Gate = Qcr_circuit.Gate
module Program = Qcr_circuit.Program
module Predict = Qcr_core.Predict
module Prng = Qcr_util.Prng

(* Further predictor checks beyond the basics in test_core: the estimate
   must agree with the circuit the same completion materializes. *)

let count_interactions circuit =
  List.length
    (List.filter
       (function
         | Gate.Cz _ | Gate.Cphase _ | Gate.Rzz _ | Gate.Swap_interact _ | Gate.Swap_rzz _ ->
             true
         | _ -> false)
       (Circuit.gates circuit))

let count_swaps circuit =
  List.length
    (List.filter (function Gate.Swap _ -> true | _ -> false) (Circuit.gates circuit))

let test_estimate_swaps_match_materialize () =
  let rng = Prng.create 44 in
  List.iter
    (fun use_regions ->
      let arch = Arch.grid ~rows:5 ~cols:5 in
      let g = Generate.erdos_renyi rng ~n:25 ~density:0.25 in
      let program = Program.make g Program.Bare_cz in
      let mapping = Mapping.identity ~logical:25 ~physical:25 in
      let est = Predict.estimate ~use_regions ~arch ~remaining:g ~mapping () in
      let c =
        Predict.materialize ~use_regions ~arch ~program ~remaining:(Graph.copy g)
          ~mapping:(Mapping.copy mapping) ()
      in
      Alcotest.(check int) "gate estimate exact" (count_interactions c) est.Predict.gates;
      Alcotest.(check int) "swap estimate exact" (count_swaps c) est.Predict.swaps)
    [ true; false ]

let test_materialize_mutates_mapping_consistently () =
  let arch = Arch.grid ~rows:3 ~cols:3 in
  let g = Generate.cycle 9 in
  let program = Program.make g Program.Bare_cz in
  let mapping = Mapping.identity ~logical:9 ~physical:9 in
  let c = Predict.materialize ~arch ~program ~remaining:(Graph.copy g) ~mapping () in
  (* replay the circuit's swaps over a fresh mapping: must equal [mapping] *)
  let replay = Mapping.identity ~logical:9 ~physical:9 in
  List.iter
    (fun gate ->
      match gate with
      | Gate.Swap (p, q) -> Mapping.apply_swap replay p q
      | _ -> ())
    (Circuit.gates c);
  Alcotest.(check bool) "final mapping consistent" true (Mapping.equal replay mapping)

let test_disjoint_components_parallel () =
  (* two components in opposite corners of a big grid: materialized
     circuits act on disjoint qubits, so ASAP depth ~= max of the parts *)
  let arch = Arch.grid ~rows:8 ~cols:8 in
  let g = Graph.create 64 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 8;
  Graph.add_edge g 62 63;
  Graph.add_edge g 55 63;
  let program = Program.make g Program.Bare_cz in
  let mapping = Mapping.identity ~logical:64 ~physical:64 in
  let c =
    Predict.materialize ~use_regions:true ~arch ~program ~remaining:(Graph.copy g) ~mapping ()
  in
  Alcotest.(check bool) "parallel depth small" true (Circuit.depth2q c <= 6);
  Alcotest.(check int) "all gates" 4 (count_interactions c)

let test_heavyhex_estimate () =
  let arch = Arch.heavy_hex ~rows:3 ~row_len:7 in
  let n = Arch.qubit_count arch in
  let g = Generate.cycle n in
  let mapping = Mapping.identity ~logical:n ~physical:n in
  let est = Predict.estimate ~arch ~remaining:g ~mapping () in
  Alcotest.(check int) "gates" n est.Predict.gates;
  Alcotest.(check bool) "cycles bounded by full schedule" true
    (est.Predict.cycles
    <= Qcr_swapnet.Schedule.cycle_count (Qcr_swapnet.Ata.schedule arch))

let suite =
  [
    Alcotest.test_case "estimate = materialize" `Quick test_estimate_swaps_match_materialize;
    Alcotest.test_case "mapping consistency" `Quick test_materialize_mutates_mapping_consistently;
    Alcotest.test_case "disjoint components parallel" `Quick test_disjoint_components_parallel;
    Alcotest.test_case "heavy-hex estimate" `Quick test_heavyhex_estimate;
  ]
