module Asciiplot = Qcr_util.Asciiplot

let contains s needle =
  let nl = String.length needle and sl = String.length s in
  let rec scan i = i + nl <= sl && (String.sub s i nl = needle || scan (i + 1)) in
  scan 0

let test_bars_render () =
  let out = Asciiplot.bars [ ("alpha", [ 1.0; 0.5 ]); ("beta", [ 0.25 ]) ] in
  Alcotest.(check bool) "labels present" true (contains out "alpha" && contains out "beta");
  Alcotest.(check bool) "bars drawn" true (contains out "#");
  Alcotest.(check bool) "values printed" true (contains out "1.00" && contains out "0.25")

let test_bars_scale () =
  let out = Asciiplot.bars ~width:10 [ ("x", [ 2.0 ]); ("y", [ 1.0 ]) ] in
  (* the max bar fills the width, the half bar roughly half *)
  Alcotest.(check bool) "full bar" true (contains out (String.make 10 '#'));
  Alcotest.(check bool) "half bar" true (contains out (String.make 5 '#'))

let test_series_render () =
  let out =
    Asciiplot.series ~width:20 ~height:6 ~names:[ "a"; "b" ]
      [ [| 0.0; 1.0; 2.0; 3.0 |]; [| 3.0; 2.0; 1.0; 0.0 |] ]
  in
  Alcotest.(check bool) "glyphs present" true (contains out "*" && contains out "o");
  Alcotest.(check bool) "legend" true (contains out "= a" && contains out "= b");
  Alcotest.(check bool) "axis values" true (contains out "3.00" && contains out "0.00")

let test_series_flat () =
  (* constant series must not divide by zero *)
  let out = Asciiplot.series ~names:[ "flat" ] [ [| 1.0; 1.0; 1.0 |] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_series_empty () =
  Alcotest.(check string) "empty input" "" (Asciiplot.series ~names:[] [])

let suite =
  [
    Alcotest.test_case "bars render" `Quick test_bars_render;
    Alcotest.test_case "bars scale" `Quick test_bars_scale;
    Alcotest.test_case "series render" `Quick test_series_render;
    Alcotest.test_case "series flat" `Quick test_series_flat;
    Alcotest.test_case "series empty" `Quick test_series_empty;
  ]
