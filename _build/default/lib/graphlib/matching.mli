(** Weighted matchings on general graphs.

    The compiler's SWAP-insertion sub-module selects a set of simultaneous,
    qubit-disjoint SWAPs by solving a weighted matching over candidate swap
    edges (paper §6.2, "minimal weight perfect matching").  We implement a
    greedy maximal matching plus a single augmenting improvement sweep; on
    the sparse candidate graphs that arise per cycle this matches the exact
    optimum in the vast majority of cases while staying near-linear, which
    is what the compiler's near-linear scaling (Fig 26) requires.  See
    DESIGN.md (substitutions) for the Blossom-algorithm note. *)

type weighted_edge = { u : int; v : int; weight : float }

val maximum_weight_matching : int -> weighted_edge list -> weighted_edge list
(** Greedy-by-weight maximal matching on [n] vertices, then one local-swap
    improvement pass (replace a matched edge by two adjacent unmatched ones
    when that increases total weight). Higher weight = more preferred. *)

val matching_weight : weighted_edge list -> float

val is_matching : int -> weighted_edge list -> bool
(** No two edges share a vertex. *)
