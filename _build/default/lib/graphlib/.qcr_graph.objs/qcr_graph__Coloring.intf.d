lib/graphlib/coloring.mli: Graph
