lib/graphlib/matching.mli:
