lib/graphlib/generate.mli: Graph Qcr_util
