lib/graphlib/generate.ml: Array Float Graph Qcr_util
