lib/graphlib/components.ml: Array Graph Hashtbl List Qcr_util
