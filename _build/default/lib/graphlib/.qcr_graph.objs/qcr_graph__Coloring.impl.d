lib/graphlib/coloring.ml: Array Graph List
