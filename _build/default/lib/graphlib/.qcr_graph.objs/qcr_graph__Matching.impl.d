lib/graphlib/matching.ml: Array List
