type weighted_edge = { u : int; v : int; weight : float }

let matching_weight edges = List.fold_left (fun acc e -> acc +. e.weight) 0.0 edges

let is_matching n edges =
  let used = Array.make n false in
  let rec check = function
    | [] -> true
    | { u; v; _ } :: rest ->
        if used.(u) || used.(v) then false
        else begin
          used.(u) <- true;
          used.(v) <- true;
          check rest
        end
  in
  check edges

(* Sort by decreasing weight (ties by vertex ids for determinism), take
   greedily, then try to improve: for every unmatched edge pair (a,b),(c,d)
   that together conflict with exactly one matched edge of lower combined
   weight, swap them in. *)
let maximum_weight_matching n edges =
  let sorted =
    List.sort
      (fun a b ->
        match compare b.weight a.weight with
        | 0 -> compare (a.u, a.v) (b.u, b.v)
        | c -> c)
      edges
  in
  let matched_with = Array.make n (-1) in
  let take e =
    matched_with.(e.u) <- e.v;
    matched_with.(e.v) <- e.u
  in
  let free e = matched_with.(e.u) = -1 && matched_with.(e.v) = -1 in
  let chosen = ref [] in
  List.iter
    (fun e ->
      if free e then begin
        take e;
        chosen := e :: !chosen
      end)
    sorted;
  (* Improvement sweep: for each matched edge m, look for two disjoint
     unmatched edges each conflicting only with m whose combined weight
     exceeds m's. *)
  let conflicts_only_with m e =
    let blocked_by x = x = m.u || x = m.v in
    let endpoint_free x = matched_with.(x) = -1 || blocked_by x in
    endpoint_free e.u && endpoint_free e.v
    && (blocked_by e.u || blocked_by e.v)
  in
  let improved = ref [] in
  let final =
    List.fold_left
      (fun kept m ->
        let candidates = List.filter (fun e -> conflicts_only_with m e) sorted in
        (* pick the best disjoint pair among candidates, one touching m.u
           side and one touching m.v side *)
        let touches x e = e.u = x || e.v = x in
        let best_for x =
          List.fold_left
            (fun acc e ->
              if touches x e && not (touches (if x = m.u then m.v else m.u) e) then
                match acc with
                | Some b when b.weight >= e.weight -> acc
                | _ -> Some e
              else acc)
            None candidates
        in
        match (best_for m.u, best_for m.v) with
        | Some a, Some b
          when a.u <> b.u && a.u <> b.v && a.v <> b.u && a.v <> b.v
               && a.weight +. b.weight > m.weight ->
            matched_with.(m.u) <- -1;
            matched_with.(m.v) <- -1;
            take a;
            take b;
            improved := a :: b :: !improved;
            kept
        | _ -> m :: kept)
      [] !chosen
  in
  !improved @ final
