(** Connected components.

    The ATA range detector (paper §6.3, Fig 19) splits the remaining
    problem graph into disjoint "interacting-qubit-sets" — its connected
    components — and predicts the ATA pattern per component region. *)

val components : Graph.t -> int list list
(** Vertex lists of each connected component, each sorted increasingly;
    components ordered by smallest member. *)

val component_labels : Graph.t -> int array
(** Label per vertex; labels are dense starting at 0. *)

val count : Graph.t -> int

val nontrivial_components : Graph.t -> int list list
(** Components that contain at least one edge (singletons dropped):
    isolated vertices carry no remaining gates and need no region. *)
