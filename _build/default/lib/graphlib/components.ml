module Union_find = Qcr_util.Union_find

let component_labels g =
  let n = Graph.vertex_count g in
  let uf = Union_find.create n in
  Graph.iter_edges (fun u v -> Union_find.union uf u v) g;
  let label_of_root = Hashtbl.create 16 in
  let next = ref 0 in
  Array.init n (fun v ->
      let root = Union_find.find uf v in
      match Hashtbl.find_opt label_of_root root with
      | Some l -> l
      | None ->
          let l = !next in
          incr next;
          Hashtbl.replace label_of_root root l;
          l)

let components g =
  let labels = component_labels g in
  let k = Array.fold_left (fun acc l -> max acc (l + 1)) 0 labels in
  let buckets = Array.make k [] in
  for v = Array.length labels - 1 downto 0 do
    buckets.(labels.(v)) <- v :: buckets.(labels.(v))
  done;
  Array.to_list buckets

let count g =
  let labels = component_labels g in
  Array.fold_left (fun acc l -> max acc (l + 1)) 0 labels

let nontrivial_components g =
  List.filter
    (function
      | [ v ] -> Graph.degree g v > 0
      | [] -> false
      | _ -> true)
    (components g)
