(* Adjacency is a per-vertex sorted int list plus a hashed edge set for O(1)
   membership tests; vertex counts in this project stay <= a few thousand so
   lists keep the code simple without hurting the benchmarks. *)

type t = {
  n : int;
  adjacency : int list array;
  edge_set : (int, unit) Hashtbl.t;
  mutable edge_count : int;
}

let edge_key n u v =
  let lo = min u v and hi = max u v in
  (lo * n) + hi

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; adjacency = Array.make n []; edge_set = Hashtbl.create 64; edge_count = 0 }

let vertex_count t = t.n

let edge_count t = t.edge_count

let check_vertex t v =
  if v < 0 || v >= t.n then invalid_arg "Graph: vertex out of range"

let has_edge t u v =
  check_vertex t u;
  check_vertex t v;
  Hashtbl.mem t.edge_set (edge_key t.n u v)

let insert_sorted v l =
  let rec go = function
    | [] -> [ v ]
    | x :: _ as rest when v < x -> v :: rest
    | x :: rest -> x :: go rest
  in
  go l

let add_edge t u v =
  check_vertex t u;
  check_vertex t v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if has_edge t u v then invalid_arg "Graph.add_edge: duplicate edge";
  Hashtbl.replace t.edge_set (edge_key t.n u v) ();
  t.adjacency.(u) <- insert_sorted v t.adjacency.(u);
  t.adjacency.(v) <- insert_sorted u t.adjacency.(v);
  t.edge_count <- t.edge_count + 1

let of_edges n edge_list =
  let t = create n in
  List.iter (fun (u, v) -> add_edge t u v) edge_list;
  t

let neighbors t v =
  check_vertex t v;
  t.adjacency.(v)

let degree t v = List.length (neighbors t v)

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    let pairs = List.filter_map (fun v -> if u < v then Some (u, v) else None) t.adjacency.(u) in
    acc := pairs @ !acc
  done;
  !acc

let iter_edges f t =
  for u = 0 to t.n - 1 do
    List.iter (fun v -> if u < v then f u v) t.adjacency.(u)
  done

let density t =
  if t.n < 2 then 0.0
  else begin
    let pairs = float_of_int t.n *. float_of_int (t.n - 1) /. 2.0 in
    float_of_int t.edge_count /. pairs
  end

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    best := max !best (degree t v)
  done;
  !best

let copy t =
  {
    n = t.n;
    adjacency = Array.copy t.adjacency;
    edge_set = Hashtbl.copy t.edge_set;
    edge_count = t.edge_count;
  }

let remove_edge t u v =
  check_vertex t u;
  check_vertex t v;
  if has_edge t u v then begin
    Hashtbl.remove t.edge_set (edge_key t.n u v);
    t.adjacency.(u) <- List.filter (fun x -> x <> v) t.adjacency.(u);
    t.adjacency.(v) <- List.filter (fun x -> x <> u) t.adjacency.(v);
    t.edge_count <- t.edge_count - 1
  end

let subgraph_on t vs =
  let vs = List.sort_uniq compare vs in
  let old_of_new = Array.of_list vs in
  let new_of_old = Hashtbl.create (Array.length old_of_new) in
  Array.iteri (fun i v -> Hashtbl.replace new_of_old v i) old_of_new;
  let sub = create (Array.length old_of_new) in
  iter_edges
    (fun u v ->
      match (Hashtbl.find_opt new_of_old u, Hashtbl.find_opt new_of_old v) with
      | Some u', Some v' -> add_edge sub u' v'
      | _ -> ())
    t;
  (sub, old_of_new)

let is_connected t =
  if t.n = 0 then true
  else begin
    let seen = Array.make t.n false in
    let queue = Queue.create () in
    Queue.push 0 queue;
    seen.(0) <- true;
    let visited = ref 1 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            incr visited;
            Queue.push v queue
          end)
        t.adjacency.(u)
    done;
    !visited = t.n
  end

let complete n =
  let t = create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      add_edge t u v
    done
  done;
  t

let pp fmt t =
  Format.fprintf fmt "graph(n=%d, m=%d)" t.n t.edge_count
