(** Simple undirected graphs over vertices [0 .. n-1].

    This is the shared substrate for both problem graphs (a QAOA program is
    a graph: vertex = qubit, edge = two-qubit operator, paper §2.1) and
    hardware coupling graphs (vertex = physical qubit, edge = allowed
    two-qubit-gate site). *)

type t

val create : int -> t
(** [create n] is an edgeless graph on [n] vertices. *)

val of_edges : int -> (int * int) list -> t
(** Build from an edge list; duplicate edges and self-loops are rejected. *)

val vertex_count : t -> int

val edge_count : t -> int

val add_edge : t -> int -> int -> unit
(** @raise Invalid_argument on self-loops or duplicate edges. *)

val has_edge : t -> int -> int -> bool

val neighbors : t -> int -> int list
(** Neighbors in increasing order. *)

val degree : t -> int -> int

val edges : t -> (int * int) list
(** All edges with [u < v], lexicographically ordered. *)

val iter_edges : (int -> int -> unit) -> t -> unit

val density : t -> float
(** [edge_count / (n choose 2)]. *)

val max_degree : t -> int

val copy : t -> t

val remove_edge : t -> int -> int -> unit
(** No-op if the edge is absent. *)

val subgraph_on : t -> int list -> t * int array
(** [subgraph_on g vs] is the induced subgraph on [vs], plus the array
    mapping new vertex ids to original ids. *)

val is_connected : t -> bool

val complete : int -> t
(** The [n]-clique (the paper's special "clique-circuit" input, Def. 1). *)

val pp : Format.formatter -> t -> unit
