(** Greedy graph coloring.

    The compiler's gate-scheduling sub-module builds a conflict graph over
    hardware-compliant gates (edges = shared qubit or crosstalk) and
    schedules the largest color class (paper §6.2). *)

val greedy : Graph.t -> int array
(** Color per vertex, using the largest-degree-first greedy heuristic.
    Adjacent vertices always receive distinct colors. *)

val color_classes : int array -> int list array
(** Group vertices by color; index = color. *)

val largest_class : int array -> int list
(** Vertices of the most populous color (ties broken by lowest color). *)

val count_colors : int array -> int
