module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Paths = Qcr_graph.Paths
module Mapping = Qcr_circuit.Mapping
module Circuit = Qcr_circuit.Circuit
module Program = Qcr_circuit.Program
module Gate = Qcr_circuit.Gate
module Pipeline = Qcr_core.Pipeline

(* Connectivity-aware placement: highest-degree logical qubits onto
   highest-degree physical qubits (ties by id for determinism). *)
let placement arch program =
  let n_phys = Arch.qubit_count arch in
  let n_log = Program.qubit_count program in
  let problem = Program.graph program in
  let by_degree count degree =
    let order = Array.init count (fun i -> i) in
    Array.sort
      (fun a b ->
        match compare (degree b) (degree a) with 0 -> compare a b | c -> c)
      order;
    order
  in
  let log_order = by_degree n_log (Graph.degree problem) in
  let phys_order = by_degree n_phys (Graph.degree (Arch.graph arch)) in
  let p_of_l = Array.make n_phys (-1) in
  Array.iteri (fun rank l -> p_of_l.(l) <- phys_order.(rank)) log_order;
  (* dummies fill the leftover physical slots *)
  let used = Array.make n_phys false in
  Array.iteri (fun l p -> if l < n_log then used.(p) <- true) p_of_l;
  let free = ref (List.filter (fun p -> not used.(p)) (List.init n_phys (fun i -> i))) in
  for l = n_log to n_phys - 1 do
    match !free with
    | p :: rest ->
        p_of_l.(l) <- p;
        free := rest
    | [] -> failwith "Qaim_like.placement: impossible"
  done;
  Mapping.of_phys_of_log ~logical:n_log p_of_l

let compile ?noise ?init arch program =
  let t0 = Sys.time () in
  let n_phys = Arch.qubit_count arch in
  let initial = match init with Some m -> m | None -> placement arch program in
  let mapping = Mapping.copy initial in
  let remaining = Graph.copy (Program.graph program) in
  let dists = Arch.distances arch in
  let graph = Arch.graph arch in
  let body = Circuit.create n_phys in
  let n_log = Program.qubit_count program in
  let remaining_count = ref (Graph.edge_count remaining) in
  let emit_gate u v =
    Graph.remove_edge remaining u v;
    decr remaining_count;
    Circuit.add body
      (Gate.map_qubits (fun l -> Mapping.phys_of_log mapping l) (Program.edge_gate program u v))
  in
  let guard = ref 0 in
  let stalled = ref 0 in
  let max_cycles = (400 * n_phys) + 20000 in
  while !remaining_count > 0 && !guard < max_cycles do
    incr guard;
    (* schedule all compliant gates (first-fit disjoint) *)
    let busy = Array.make n_phys false in
    let progressed = ref false in
    Graph.iter_edges
      (fun p q ->
        let a = Mapping.log_of_phys mapping p and b = Mapping.log_of_phys mapping q in
        if
          a < n_log && b < n_log && (not busy.(p)) && (not busy.(q))
          && Graph.has_edge remaining a b
        then begin
          busy.(p) <- true;
          busy.(q) <- true;
          progressed := true;
          emit_gate a b
        end)
      graph;
    if !progressed then stalled := 0 else incr stalled;
    (* gate-less cycles can ping-pong the per-pair swap rule; after a few
       of them, route the closest pair straight down a shortest path
       (strictly decreasing distance, so a gate is eventually reached) *)
    if !remaining_count > 0 && !stalled >= 3 then begin
      let best = ref None in
      Graph.iter_edges
        (fun u v ->
          let d =
            Paths.distance dists (Mapping.phys_of_log mapping u) (Mapping.phys_of_log mapping v)
          in
          match !best with
          | Some (d', _, _) when d' <= d -> ()
          | _ -> best := Some (d, u, v))
        remaining;
      match !best with
      | Some (_, u, v) -> begin
          let pu = Mapping.phys_of_log mapping u and pv = Mapping.phys_of_log mapping v in
          match Paths.shortest_path graph pu pv with
          | _ :: next :: _ :: _ ->
              Mapping.apply_swap mapping pu next;
              Circuit.add body (Gate.Swap (pu, next))
          | _ -> ()
        end
      | None -> ()
    end
    else if !remaining_count > 0 then begin
      let pairs =
        Graph.edges remaining
        |> List.map (fun (u, v) ->
               let d =
                 Paths.distance dists (Mapping.phys_of_log mapping u)
                   (Mapping.phys_of_log mapping v)
               in
               (d, u, v))
        |> List.filter (fun (d, _, _) -> d > 1)
        |> List.sort compare
      in
      List.iter
        (fun (d, u, v) ->
          let pu = Mapping.phys_of_log mapping u and pv = Mapping.phys_of_log mapping v in
          if (not busy.(pu)) && not busy.(pv) then begin
            (* best neighbor of pu toward pv *)
            let candidates =
              List.filter (fun w -> (not busy.(w)) && Paths.distance dists w pv < d)
                (Graph.neighbors graph pu)
            in
            match candidates with
            | [] -> ()
            | w :: rest ->
                let best =
                  List.fold_left
                    (fun acc x ->
                      if Paths.distance dists x pv < Paths.distance dists acc pv then x else acc)
                    w rest
                in
                busy.(pu) <- true;
                busy.(best) <- true;
                progressed := true;
                Mapping.apply_swap mapping pu best;
                Circuit.add body (Gate.Swap (pu, best))
          end)
        pairs;
      (* forced progress: never let a cycle idle *)
      if not !progressed then begin
        match pairs with
        | (_, u, v) :: _ -> begin
            let pu = Mapping.phys_of_log mapping u and pv = Mapping.phys_of_log mapping v in
            match Paths.shortest_path graph pu pv with
            | _ :: next :: _ :: _ ->
                Mapping.apply_swap mapping pu next;
                Circuit.add body (Gate.Swap (pu, next))
            | _ -> ()
          end
        | [] -> ()
      end
    end
  done;
  if !remaining_count > 0 then failwith "Qaim_like.compile: did not converge";
  Pipeline.finalize_body ~arch ~program ~noise ~initial ~final:mapping
    ~strategy:Pipeline.Pure_greedy ~seconds:(Sys.time () -. t0) body
