(** Paulihedral-style baseline (paper §7.1, [19]).

    Paulihedral schedules commuting Pauli strings block-wise in a chosen
    order and routes each block with SWAP chains; it does not exploit
    hardware regularity.  Our reimplementation keeps its core strategy:
    order the interaction terms by a BFS sweep over the problem graph
    (lexicographic block order), then schedule layer by layer: each round
    a qubit's earliest pending term either executes (endpoints adjacent)
    or takes one locally-best SWAP step toward its partner.  No matching,
    no coloring, no regularity knowledge: on dense inputs this reproduces
    the depth/gate inflation the paper reports for Paulihedral. *)

val compile :
  ?noise:Qcr_arch.Noise.t ->
  ?init:Qcr_circuit.Mapping.t ->
  Qcr_arch.Arch.t ->
  Qcr_circuit.Program.t ->
  Qcr_core.Pipeline.result
