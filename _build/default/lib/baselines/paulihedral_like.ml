module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Paths = Qcr_graph.Paths
module Mapping = Qcr_circuit.Mapping
module Circuit = Qcr_circuit.Circuit
module Program = Qcr_circuit.Program
module Gate = Qcr_circuit.Gate
module Pipeline = Qcr_core.Pipeline

(* BFS sweep over the problem graph: terms incident to already-visited
   vertices come first, mimicking Paulihedral's block-wise lexicographic
   ordering of commuting Pauli strings. *)
let term_order problem =
  let n = Graph.vertex_count problem in
  let visited = Array.make n false in
  let emitted : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let emit u v =
    let pair = (min u v, max u v) in
    if not (Hashtbl.mem emitted pair) then begin
      Hashtbl.replace emitted pair ();
      order := pair :: !order
    end
  in
  let queue = Queue.create () in
  for seed = 0 to n - 1 do
    if (not visited.(seed)) && Graph.degree problem seed > 0 then begin
      visited.(seed) <- true;
      Queue.push seed queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun v ->
            emit u v;
            if not visited.(v) then begin
              visited.(v) <- true;
              Queue.push v queue
            end)
          (Graph.neighbors problem u)
      done
    end
  done;
  List.rev !order

(* Layer-by-layer scheduling in the fixed lexicographic term order: each
   round every logical qubit may act once — its earliest pending term
   either executes (endpoints adjacent) or takes one SWAP step toward the
   partner.  No matching, no coloring, no regularity knowledge: routing is
   strictly local, which reproduces Paulihedral's depth/gate inflation on
   dense inputs while still extracting natural layer parallelism. *)
let compile ?noise ?init arch program =
  let t0 = Sys.time () in
  let n_phys = Arch.qubit_count arch in
  let n_log = Program.qubit_count program in
  let initial =
    match init with
    | Some m -> m
    | None -> Mapping.identity ~logical:n_log ~physical:n_phys
  in
  let mapping = Mapping.copy initial in
  let dists = Arch.distances arch in
  let graph = Arch.graph arch in
  let body = Circuit.create n_phys in
  (* per-qubit queues of terms, in global lexicographic order *)
  let terms = Array.of_list (term_order (Program.graph program)) in
  let total = Array.length terms in
  let executed = Array.make total false in
  let queue_of = Array.make n_log [] in
  Array.iteri
    (fun i (u, v) ->
      queue_of.(u) <- i :: queue_of.(u);
      queue_of.(v) <- i :: queue_of.(v))
    terms;
  Array.iteri (fun q l -> queue_of.(q) <- List.rev l) queue_of;
  let remaining = ref total in
  let emit i =
    let u, v = terms.(i) in
    executed.(i) <- true;
    decr remaining;
    Circuit.add body
      (Gate.map_qubits (fun l -> Mapping.phys_of_log mapping l) (Program.edge_gate program u v))
  in
  let head q =
    let rec drop = function
      | i :: rest when executed.(i) -> begin
          queue_of.(q) <- rest;
          drop rest
        end
      | l -> l
    in
    match drop queue_of.(q) with [] -> None | i :: _ -> Some i
  in
  let busy = Array.make n_phys false in
  while !remaining > 0 do
    Array.fill busy 0 n_phys false;
    for u = 0 to n_log - 1 do
      match head u with
      | None -> ()
      | Some i ->
          let a, b = terms.(i) in
          let pa = Mapping.phys_of_log mapping a and pb = Mapping.phys_of_log mapping b in
          if (not busy.(pa)) && not busy.(pb) then begin
            if Graph.has_edge graph pa pb then begin
              busy.(pa) <- true;
              busy.(pb) <- true;
              emit i
            end
            else begin
              (* one swap step of u's token toward the partner *)
              let pu = Mapping.phys_of_log mapping u in
              let pv = if u = a then pb else pa in
              let d = Paths.distance dists pu pv in
              let step =
                List.fold_left
                  (fun acc w ->
                    if busy.(w) then acc
                    else begin
                      let dw = Paths.distance dists w pv in
                      match acc with
                      | Some (_, best) when best <= dw -> acc
                      | _ when dw < d -> Some (w, dw)
                      | _ -> acc
                    end)
                  None (Graph.neighbors graph pu)
              in
              match step with
              | Some (w, _) ->
                  busy.(pu) <- true;
                  busy.(w) <- true;
                  Mapping.apply_swap mapping pu w;
                  Circuit.add body (Gate.Swap (pu, w))
              | None -> ()
            end
          end
    done
  done;
  Pipeline.finalize_body ~arch ~program ~noise ~initial ~final:mapping
    ~strategy:Pipeline.Pure_greedy ~seconds:(Sys.time () -. t0) body
