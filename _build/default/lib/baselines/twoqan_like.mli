(** 2QAN-style baseline (paper §7.1, [16]).

    2QAN spends a quadratic-time placement search minimizing the total
    coupling distance over all program pairs, then routes with SWAP/gate
    unification.  We reimplement that strategy: simulated-annealing
    placement over the quadratic objective (the source of 2QAN's >1-day
    compile times at 256 qubits, reproduced here as an O(n^2)-per-move
    cost), followed by the shared greedy router with SWAP+interaction
    merging.  Strong on small instances, unusable at scale — matching the
    paper's Table 1 blanks. *)

val compile :
  ?seed:int ->
  ?anneal_moves:int ->
  ?noise:Qcr_arch.Noise.t ->
  Qcr_arch.Arch.t ->
  Qcr_circuit.Program.t ->
  Qcr_core.Pipeline.result

val placement_cost :
  Qcr_arch.Arch.t -> Qcr_circuit.Program.t -> Qcr_circuit.Mapping.t -> int
(** Sum over program edges of the coupling distance between the mapped
    endpoints (the quadratic objective). *)

val anneal_placement :
  ?seed:int ->
  ?moves:int ->
  Qcr_arch.Arch.t ->
  Qcr_circuit.Program.t ->
  Qcr_circuit.Mapping.t
