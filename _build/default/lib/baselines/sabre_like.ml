module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Paths = Qcr_graph.Paths
module Mapping = Qcr_circuit.Mapping
module Circuit = Qcr_circuit.Circuit
module Program = Qcr_circuit.Program
module Gate = Qcr_circuit.Gate
module Pipeline = Qcr_core.Pipeline

let compile ?noise ?init ?(decay = 0.92) arch program =
  let t0 = Sys.time () in
  let n_phys = Arch.qubit_count arch in
  let n_log = Program.qubit_count program in
  let initial =
    match init with
    | Some m -> m
    | None -> Mapping.identity ~logical:n_log ~physical:n_phys
  in
  let mapping = Mapping.copy initial in
  let remaining = Graph.copy (Program.graph program) in
  let remaining_count = ref (Graph.edge_count remaining) in
  let dists = Arch.distances arch in
  let device = Arch.graph arch in
  let body = Circuit.create n_phys in
  let decay_factor = Array.make n_phys 1.0 in
  let emit u v =
    Graph.remove_edge remaining u v;
    decr remaining_count;
    Circuit.add body
      (Gate.map_qubits (fun l -> Mapping.phys_of_log mapping l) (Program.edge_gate program u v))
  in
  (* SABRE front-layer objective restricted to a token: summed distance to
     every remaining partner *)
  let summed a =
    List.fold_left
      (fun acc v ->
        acc
        + Paths.distance dists (Mapping.phys_of_log mapping a) (Mapping.phys_of_log mapping v))
      0 (Graph.neighbors remaining a)
  in
  let steps = ref 0 in
  let stalled = ref 0 in
  let max_steps = (100 * n_phys * n_phys) + 10_000 in
  while !remaining_count > 0 && !steps < max_steps do
    incr steps;
    (* execute every compliant gate *)
    let progressed = ref true in
    while !progressed do
      progressed := false;
      Graph.iter_edges
        (fun p q ->
          let a = Mapping.log_of_phys mapping p and b = Mapping.log_of_phys mapping q in
          if a < n_log && b < n_log && Graph.has_edge remaining a b then begin
            progressed := true;
            stalled := 0;
            emit a b
          end)
        device
    done;
    incr stalled;
    if !remaining_count > 0 && !stalled > 2 * n_phys then begin
      (* heuristic thrash guard: walk the closest separated pair straight
         down a shortest path *)
      let best = ref None in
      Graph.iter_edges
        (fun u v ->
          let d =
            Paths.distance dists (Mapping.phys_of_log mapping u) (Mapping.phys_of_log mapping v)
          in
          match !best with Some (d', _, _) when d' <= d -> () | _ -> best := Some (d, u, v))
        remaining;
      match !best with
      | Some (_, u, v) -> begin
          let pu = Mapping.phys_of_log mapping u and pv = Mapping.phys_of_log mapping v in
          match Paths.shortest_path device pu pv with
          | _ :: next :: _ :: _ ->
              Mapping.apply_swap mapping pu next;
              Circuit.add body (Gate.Swap (pu, next))
          | _ -> ()
        end
      | None -> ()
    end
    else if !remaining_count > 0 then begin
      (* candidate swaps: device edges touching a token that still owes a
         gate; objective = post-swap nearest-partner distances of both
         moved tokens, scaled by decay *)
      let best = ref None in
      Graph.iter_edges
        (fun p q ->
          let a = Mapping.log_of_phys mapping p and b = Mapping.log_of_phys mapping q in
          let owes l = l < n_log && Graph.degree remaining l > 0 in
          if owes a || owes b then begin
            let cost l = if l < n_log then summed l else 0 in
            let before = float_of_int (cost a + cost b) in
            Mapping.apply_swap mapping p q;
            let after = float_of_int (cost a + cost b) in
            Mapping.apply_swap mapping p q;
            (* negative = improvement; decay penalizes recently moved wires:
               dividing a negative score by a growing factor shrinks the
               improvement, steering the search elsewhere *)
            let score = (after -. before) /. (decay_factor.(p) *. decay_factor.(q)) in
            match !best with
            | Some (s, _, _) when s <= score -> ()
            | _ -> best := Some (score, p, q)
          end)
        device;
      match !best with
      | Some (_, p, q) ->
          Mapping.apply_swap mapping p q;
          Circuit.add body (Gate.Swap (p, q));
          decay_factor.(p) <- decay_factor.(p) /. decay;
          decay_factor.(q) <- decay_factor.(q) /. decay;
          (* periodically relax the decay *)
          if !steps mod 8 = 0 then Array.fill decay_factor 0 n_phys 1.0
      | None -> ()
    end
  done;
  if !remaining_count > 0 then failwith "Sabre_like.compile: did not converge";
  Pipeline.finalize_body ~arch ~program ~noise ~initial ~final:mapping
    ~strategy:Pipeline.Pure_greedy ~seconds:(Sys.time () -. t0) body
