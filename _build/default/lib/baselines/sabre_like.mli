(** SABRE-style generic router (the paper's reference class [18]: generic
    qubit mapping with no commutativity or regularity awareness beyond the
    free gate order).

    Strategy: keep the whole commuting front; execute every compliant
    gate, then commit the single SWAP minimizing the SABRE objective — the
    summed distance of the nearest-future gates of the two moved tokens,
    with a per-qubit decay factor discouraging thrash.  No matching, no
    structured fallback, single swap per step (parallelism re-emerges only
    through ASAP layering). *)

val compile :
  ?noise:Qcr_arch.Noise.t ->
  ?init:Qcr_circuit.Mapping.t ->
  ?decay:float ->
  Qcr_arch.Arch.t ->
  Qcr_circuit.Program.t ->
  Qcr_core.Pipeline.result
