lib/baselines/paulihedral_like.mli: Qcr_arch Qcr_circuit Qcr_core
