lib/baselines/twoqan_like.ml: Qcr_arch Qcr_circuit Qcr_core Qcr_graph Qcr_util Sys
