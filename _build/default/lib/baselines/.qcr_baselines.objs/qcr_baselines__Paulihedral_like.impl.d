lib/baselines/paulihedral_like.ml: Array Hashtbl List Qcr_arch Qcr_circuit Qcr_core Qcr_graph Queue Sys
