lib/baselines/qaim_like.ml: Array List Qcr_arch Qcr_circuit Qcr_core Qcr_graph Sys
