(** QAIM-style baseline (paper §7.1, [3]).

    QAIM ("instruction parallelism/connectivity-aware mapping") places
    logical qubits by interaction count onto well-connected physical
    qubits, then iterates layer by layer: schedule every currently
    compliant gate, then for each still-separated pair greedily commit the
    single best distance-reducing SWAP (a bin-packing-flavoured rule),
    without matching, coloring, or any architecture-regularity knowledge. *)

val compile :
  ?noise:Qcr_arch.Noise.t ->
  ?init:Qcr_circuit.Mapping.t ->
  Qcr_arch.Arch.t ->
  Qcr_circuit.Program.t ->
  Qcr_core.Pipeline.result
