(** Admissible priority function of the depth-optimal solver (paper §4.2).

    [pair_cost] is Definition 3 as established by the Lemma 4.1 proof: with
    [d] the device distance between the current homes of logical qubits
    [qi] and [qj] and [deg] their remaining problem-graph degrees,

    cost(qi, qj) = min over x in 0..d-1 of
                     max (deg qi + x, deg qj + (d - 1 - x))

    — qi absorbs [x] of the mandatory [d-1] SWAP steps and qj the rest,
    and each qubit still owes [deg] computation cycles; the slower side
    dominates.  [h] (Definition 4) maximizes the pair cost over remaining
    edges, which Theorem 1 shows lower-bounds all completions. *)

val pair_cost : deg_i:int -> deg_j:int -> dist:int -> int

val h :
  remaining:(int * int) list ->
  degree:int array ->
  dist:(int -> int -> int) ->
  phys_of_log:int array ->
  int
(** Max pair cost over the remaining edges, with [dist] measured between
    the current physical homes. *)
