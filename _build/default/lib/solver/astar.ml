module Graph = Qcr_graph.Graph
module Paths = Qcr_graph.Paths
module Mapping = Qcr_circuit.Mapping
module Bitset = Qcr_util.Bitset
module Pqueue = Qcr_util.Pqueue

type action =
  | Do_gate of int * int
  | Do_swap of int * int

type outcome = {
  depth : int;
  cycles : action list list;
  swap_total : int;
  expanded : int;
  optimal : bool;
}

type node = {
  g : int;
  swaps_so_far : int;
  l_of_p : int array; (* physical -> logical (incl. dummies) *)
  remaining : Bitset.t; (* bit u*n_log + v for u < v *)
  degree : int array; (* remaining degree per logical *)
  parent : node option;
  via : action list; (* actions of the cycle leading here *)
}

let pair_bit n_log u v =
  let lo = min u v and hi = max u v in
  (lo * n_log) + hi

let key_of node =
  let b = Buffer.create 32 in
  Array.iter (fun l -> Buffer.add_char b (Char.chr (l land 0xff))) node.l_of_p;
  Buffer.add_string b (Bitset.hash_key node.remaining);
  Buffer.contents b

let solve ?(node_budget = 2_000_000) ?time_budget ?(weight = 1.0) ~problem ~coupling ~init () =
  let started = Sys.time () in
  let out_of_time () =
    match time_budget with None -> false | Some limit -> Sys.time () -. started > limit
  in
  let n_log = Graph.vertex_count problem in
  let n_phys = Graph.vertex_count coupling in
  if n_log > Mapping.logical_count init then invalid_arg "Astar.solve: mapping too small";
  if n_phys > 255 then invalid_arg "Astar.solve: solver is for small devices";
  let dists = Paths.all_pairs coupling in
  let dist p q = Paths.distance dists p q in
  let edges = Array.of_list (Graph.edges coupling) in
  let root_remaining = Bitset.create (n_log * n_log) in
  Graph.iter_edges (fun u v -> Bitset.add root_remaining (pair_bit n_log u v)) problem;
  let root_degree = Array.init n_log (fun v -> Graph.degree problem v) in
  let root =
    {
      g = 0;
      swaps_so_far = 0;
      l_of_p = Array.init n_phys (fun p -> Mapping.log_of_phys init p);
      remaining = root_remaining;
      degree = root_degree;
      parent = None;
      via = [];
    }
  in
  let heuristic node =
    let phys_of_log = Array.make n_log (-1) in
    Array.iteri (fun p l -> if l < n_log then phys_of_log.(l) <- p) node.l_of_p;
    let best = ref 0 in
    Bitset.iter
      (fun bit ->
        let u = bit / n_log and v = bit mod n_log in
        let d = max 1 (dist phys_of_log.(u) phys_of_log.(v)) in
        let c = Heuristic.pair_cost ~deg_i:node.degree.(u) ~deg_j:node.degree.(v) ~dist:d in
        if c > !best then best := c)
      node.remaining;
    !best
  in
  (* Depth is the primary objective (the admissible f = g + h); among
     equal-depth candidates, fewer SWAPs so far break the tie, which keeps
     depth-optimality while curbing gratuitous parallel SWAPs. *)
  let priority node =
    let f = node.g + int_of_float (ceil (weight *. float_of_int (heuristic node))) in
    (f * 4096) + min node.swaps_so_far 4095
  in
  let queue = Pqueue.create () in
  let closed : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  Pqueue.push queue ~prio:(priority root) root;
  Hashtbl.replace closed (key_of root) 0;
  let expanded = ref 0 in
  let solution = ref None in
  let budget_hit = ref false in
  (* Enumerate one cycle's action sets: per coupling edge choose idle /
     swap / gate (gate only when the logical pair owes one), endpoints
     disjoint; prune non-gate-maximal leaves and the all-idle leaf. *)
  let expand node =
    let used = Array.make n_phys false in
    let children = ref [] in
    let rec go i acc =
      if i = Array.length edges then begin
        if acc <> [] then begin
          (* gate-maximality: adding a compatible executable gate never
             hurts depth, so any leaf leaving one on the table is
             dominated *)
          let maximal =
            Array.for_all
              (fun (p, q) ->
                used.(p) || used.(q)
                ||
                let a = node.l_of_p.(p) and b = node.l_of_p.(q) in
                not
                  (a < n_log && b < n_log
                  && Bitset.mem node.remaining (pair_bit n_log a b)))
              edges
          in
          if maximal then children := acc :: !children
        end
      end
      else begin
        let p, q = edges.(i) in
        if used.(p) || used.(q) then go (i + 1) acc
        else begin
          (* idle *)
          go (i + 1) acc;
          used.(p) <- true;
          used.(q) <- true;
          (* swap *)
          go (i + 1) (Do_swap (p, q) :: acc);
          (* gate *)
          let a = node.l_of_p.(p) and b = node.l_of_p.(q) in
          if a < n_log && b < n_log && Bitset.mem node.remaining (pair_bit n_log a b)
          then go (i + 1) (Do_gate (a, b) :: acc);
          used.(p) <- false;
          used.(q) <- false
        end
      end
    in
    go 0 [];
    !children
  in
  let apply node actions =
    let l_of_p = Array.copy node.l_of_p in
    let remaining = Bitset.copy node.remaining in
    let degree = Array.copy node.degree in
    List.iter
      (fun a ->
        match a with
        | Do_swap (p, q) ->
            let x = l_of_p.(p) in
            l_of_p.(p) <- l_of_p.(q);
            l_of_p.(q) <- x
        | Do_gate (u, v) ->
            Bitset.remove remaining (pair_bit n_log u v);
            degree.(u) <- degree.(u) - 1;
            degree.(v) <- degree.(v) - 1)
      actions;
    let swaps_here =
      List.length (List.filter (function Do_swap _ -> true | Do_gate _ -> false) actions)
    in
    {
      g = node.g + 1;
      swaps_so_far = node.swaps_so_far + swaps_here;
      l_of_p;
      remaining;
      degree;
      parent = Some node;
      via = actions;
    }
  in
  (try
     while !solution = None do
       match Pqueue.pop queue with
       | None -> raise Exit
       | Some (_, node) ->
           if Bitset.is_empty node.remaining then solution := Some node
           else begin
             incr expanded;
             if !expanded > node_budget || (!expanded mod 256 = 0 && out_of_time ()) then begin
               budget_hit := true;
               raise Exit
             end;
             List.iter
               (fun actions ->
                 let child = apply node actions in
                 let key = key_of child in
                 match Hashtbl.find_opt closed key with
                 | Some g when g <= child.g -> ()
                 | _ ->
                     Hashtbl.replace closed key child.g;
                     Pqueue.push queue ~prio:(priority child) child)
               (expand node)
           end
     done
   with Exit -> ());
  match !solution with
  | None -> None
  | Some goal ->
      let rec unwind node acc =
        match node.parent with
        | None -> acc
        | Some parent -> unwind parent (node.via :: acc)
      in
      let cycles = unwind goal [] in
      let swap_total =
        List.fold_left
          (fun acc cycle ->
            acc
            + List.length (List.filter (function Do_swap _ -> true | Do_gate _ -> false) cycle))
          0 cycles
      in
      Some
        {
          depth = goal.g;
          cycles;
          swap_total;
          expanded = !expanded;
          optimal = (not !budget_hit) && weight <= 1.0;
        }

let schedule_of_outcome outcome ~init =
  let mapping = Mapping.copy init in
  List.map
    (fun cycle ->
      let swaps = ref [] and touches = ref [] in
      List.iter
        (fun a ->
          match a with
          | Do_gate (u, v) ->
              touches :=
                Qcr_swapnet.Schedule.Touch (Mapping.phys_of_log mapping u, Mapping.phys_of_log mapping v)
                :: !touches
          | Do_swap (p, q) -> swaps := (p, q) :: !swaps)
        cycle;
      List.iter (fun (p, q) -> Mapping.apply_swap mapping p q) !swaps;
      !touches @ List.map (fun (p, q) -> Qcr_swapnet.Schedule.Swap (p, q)) !swaps)
    outcome.cycles
