let pair_cost ~deg_i ~deg_j ~dist =
  if dist < 1 then invalid_arg "Heuristic.pair_cost: dist must be >= 1";
  let best = ref max_int in
  for x = 0 to dist - 1 do
    let candidate = max (deg_i + x) (deg_j + (dist - 1 - x)) in
    if candidate < !best then best := candidate
  done;
  !best

let h ~remaining ~degree ~dist ~phys_of_log =
  List.fold_left
    (fun acc (u, v) ->
      let d = dist phys_of_log.(u) phys_of_log.(v) in
      max acc (pair_cost ~deg_i:degree.(u) ~deg_j:degree.(v) ~dist:(max d 1)))
    0 remaining
