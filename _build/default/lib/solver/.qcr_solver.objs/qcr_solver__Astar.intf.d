lib/solver/astar.mli: Qcr_circuit Qcr_graph Qcr_swapnet
