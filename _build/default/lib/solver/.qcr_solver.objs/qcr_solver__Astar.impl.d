lib/solver/astar.ml: Array Buffer Char Hashtbl Heuristic List Qcr_circuit Qcr_graph Qcr_swapnet Qcr_util Sys
