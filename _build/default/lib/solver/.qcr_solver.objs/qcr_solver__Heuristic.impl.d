lib/solver/heuristic.ml: Array List
