lib/solver/heuristic.mli:
