(** Small descriptive-statistics helpers used by the benchmark harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val geomean : float array -> float
(** Geometric mean of positive values; 0 for an empty array. *)

val stddev : float array -> float
(** Population standard deviation. *)

val median : float array -> float

val minimum : float array -> float

val maximum : float array -> float

val mean_int : int array -> float

val normalize : baseline:float array -> float array -> float array
(** Pointwise ratio [value /. baseline] (the paper's "normalized to the
    greedy version" presentation). *)
