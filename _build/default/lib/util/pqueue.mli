(** Mutable binary min-heap priority queue.

    Used by the A* depth-optimal solver and by shortest-path routines.
    Priorities are [int]; ties are broken by insertion order so that runs
    are deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> prio:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-priority element. *)

val pop_exn : 'a t -> int * 'a
(** @raise Invalid_argument on an empty queue. *)

val peek : 'a t -> (int * 'a) option

val clear : 'a t -> unit
