(** Minimal ASCII charts for the benchmark harness, so the paper's figures
    render as figures (bars, line series) and not just tables. *)

val bars : ?width:int -> (string * float list) list -> string
(** Grouped horizontal bar chart: each entry is a label with one bar per
    series value.  Values are scaled to the maximum. *)

val series :
  ?width:int -> ?height:int -> names:string list -> float array list -> string
(** Multiple line series over a shared x (index) axis, e.g. the
    energy-vs-round curves of Figs 24-25.  Series are drawn with distinct
    glyphs and a small legend. *)
