(* Binary min-heap over (priority, tiebreak, value). The tiebreak counter
   makes pop order deterministic for equal priorities. *)

type 'a entry = { prio : int; tie : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable counter : int;
}

let create () = { data = [||]; size = 0; counter = 0 }

let length t = t.size

let is_empty t = t.size = 0

let less a b = a.prio < b.prio || (a.prio = b.prio && a.tie < b.tie)

let grow t entry =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let capacity' = max 16 (2 * capacity) in
    let data' = Array.make capacity' entry in
    Array.blit t.data 0 data' 0 t.size;
    t.data <- data'
  end

let push t ~prio value =
  let entry = { prio; tie = t.counter; value } in
  t.counter <- t.counter + 1;
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less t.data.(!i) t.data.(parent) then begin
      let tmp = t.data.(!i) in
      t.data.(!i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      i := parent
    end
    else continue := false
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let left = (2 * !i) + 1 and right = (2 * !i) + 2 in
    let smallest = ref !i in
    if left < t.size && less t.data.(left) t.data.(!smallest) then smallest := left;
    if right < t.size && less t.data.(right) t.data.(!smallest) then smallest := right;
    if !smallest <> !i then begin
      let tmp = t.data.(!i) in
      t.data.(!i) <- t.data.(!smallest);
      t.data.(!smallest) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t
    end;
    Some (top.prio, top.value)
  end

let pop_exn t =
  match pop t with
  | Some result -> result
  | None -> invalid_arg "Pqueue.pop_exn: empty queue"

let peek t = if t.size = 0 then None else Some (t.data.(0).prio, t.data.(0).value)

let clear t =
  t.size <- 0;
  t.counter <- 0
