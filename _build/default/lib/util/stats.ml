let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let geomean a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let log_sum = Array.fold_left (fun acc x -> acc +. log x) 0.0 a in
    exp (log_sum /. float_of_int n)
  end

let stddev a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let m = mean a in
    let var = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    sqrt (var /. float_of_int n)
  end

let median a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy a in
    Array.sort compare sorted;
    if n mod 2 = 1 then sorted.(n / 2)
    else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.0
  end

let minimum a = Array.fold_left min infinity a

let maximum a = Array.fold_left max neg_infinity a

let mean_int a = mean (Array.map float_of_int a)

let normalize ~baseline a =
  Array.mapi (fun i x -> if baseline.(i) = 0.0 then 0.0 else x /. baseline.(i)) a
