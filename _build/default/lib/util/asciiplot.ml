let bars ?(width = 40) rows =
  let max_value =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left (fun acc v -> max acc v) acc vs)
      1e-12 rows
  in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  let buffer = Buffer.create 256 in
  List.iter
    (fun (label, values) ->
      let fills = [| '#'; '='; '-'; '.' |] in
      List.iteri
        (fun i v ->
          let cells = int_of_float (Float.round (v /. max_value *. float_of_int width)) in
          let tag = if i = 0 then label else "" in
          Buffer.add_string buffer
            (Printf.sprintf "%-*s |%s %.2f\n" label_width tag
               (String.make (max cells 0) fills.(i mod Array.length fills))
               v))
        values;
      if List.length values > 1 then Buffer.add_char buffer '\n')
    rows;
  Buffer.contents buffer

let series ?(width = 60) ?(height = 14) ~names data =
  match data with
  | [] -> ""
  | _ ->
      let glyphs = [| '*'; 'o'; '+'; 'x' |] in
      let all = List.concat_map Array.to_list data in
      let lo = List.fold_left min infinity all and hi = List.fold_left max neg_infinity all in
      let span = if hi -. lo < 1e-12 then 1.0 else hi -. lo in
      let canvas = Array.make_matrix height width ' ' in
      let max_len = List.fold_left (fun acc a -> max acc (Array.length a)) 1 data in
      List.iteri
        (fun si arr ->
          let glyph = glyphs.(si mod Array.length glyphs) in
          Array.iteri
            (fun i v ->
              let x =
                if max_len <= 1 then 0
                else i * (width - 1) / (max_len - 1)
              in
              let y = int_of_float ((v -. lo) /. span *. float_of_int (height - 1)) in
              let y = (height - 1) - max 0 (min (height - 1) y) in
              canvas.(y).(x) <- glyph)
            arr)
        data;
      let buffer = Buffer.create (height * (width + 12)) in
      Array.iteri
        (fun row line ->
          let axis_value = hi -. (float_of_int row /. float_of_int (height - 1) *. span) in
          Buffer.add_string buffer (Printf.sprintf "%8.2f |" axis_value);
          Buffer.add_string buffer (String.init width (fun i -> line.(i)));
          Buffer.add_char buffer '\n')
        canvas;
      Buffer.add_string buffer (Printf.sprintf "%8s +%s\n" "" (String.make width '-'));
      List.iteri
        (fun si name ->
          Buffer.add_string buffer
            (Printf.sprintf "%8s%c = %s\n" "" glyphs.(si mod Array.length glyphs) name))
        names;
      Buffer.contents buffer
