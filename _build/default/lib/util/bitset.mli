(** Fixed-capacity mutable bitsets.

    The A* solver encodes the set of remaining problem-graph edges as a
    bitset; the swap-network coverage checker uses one bit per qubit pair. *)

type t

val create : int -> t
(** [create n] is an empty set over universe [\[0, n)]. *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val cardinal : t -> int

val is_empty : t -> bool

val copy : t -> t

val equal : t -> t -> bool

val iter : (int -> unit) -> t -> unit
(** Iterate set members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list

val hash_key : t -> string
(** Raw payload usable as a hash-table key. *)
