(** Plain-text table rendering for the benchmark harness.

    Every table/figure reproduction prints through this module so that
    [bench/main.exe] output lines up with the paper's rows. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells. *)

val render : t -> string

val print : t -> unit
(** [render] followed by [print_string], with a trailing newline. *)

val cell_int : int -> string

val cell_float : ?decimals:int -> float -> string

val cell_ratio : float -> string
(** Two-decimal ratio, e.g. for normalized results. *)
