type t = { words : Bytes.t; n : int }

let words_for n = (n + 7) / 8

let create n = { words = Bytes.make (words_for n) '\000'; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let w = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (w lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let w = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (w land lnot (1 lsl (i land 7)) land 0xff))

let popcount_byte b =
  let b = Char.code b in
  let rec count b acc = if b = 0 then acc else count (b lsr 1) (acc + (b land 1)) in
  count b 0

let cardinal t =
  let total = ref 0 in
  Bytes.iter (fun b -> total := !total + popcount_byte b) t.words;
  !total

let is_empty t =
  let result = ref true in
  Bytes.iter (fun b -> if b <> '\000' then result := false) t.words;
  !result

let copy t = { words = Bytes.copy t.words; n = t.n }

let equal a b = a.n = b.n && Bytes.equal a.words b.words

let iter f t =
  for i = 0 to t.n - 1 do
    if Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0 then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let hash_key t = Bytes.to_string t.words
