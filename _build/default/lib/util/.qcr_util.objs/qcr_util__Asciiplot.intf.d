lib/util/asciiplot.mli:
