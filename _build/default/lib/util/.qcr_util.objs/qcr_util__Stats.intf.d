lib/util/stats.mli:
