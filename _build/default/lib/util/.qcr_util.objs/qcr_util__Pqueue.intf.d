lib/util/pqueue.mli:
