lib/util/bitset.mli:
