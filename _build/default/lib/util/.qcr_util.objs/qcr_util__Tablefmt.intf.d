lib/util/tablefmt.mli:
