lib/util/prng.mli:
