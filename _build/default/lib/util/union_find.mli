(** Disjoint-set forest with path compression and union by rank.

    Used for connected-component detection in the ATA range detector and in
    the random-regular-graph generator's connectivity check. *)

type t

val create : int -> t

val find : t -> int -> int

val union : t -> int -> int -> unit

val same : t -> int -> int -> bool

val count : t -> int
(** Number of distinct components. *)
