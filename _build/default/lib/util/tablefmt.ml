type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let pad_to width s =
  let len = String.length s in
  if len >= width then s else s ^ String.make (width - len) ' '

let render t =
  let rows = List.rev t.rows in
  let columns = List.length t.headers in
  let normalized_rows =
    let pad_row row =
      let len = List.length row in
      if len >= columns then row else row @ List.init (columns - len) (fun _ -> "")
    in
    List.map pad_row rows
  in
  let widths = Array.of_list (List.map String.length t.headers) in
  let widen row = List.iteri (fun i cell ->
      if i < columns then widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter widen normalized_rows;
  let buffer = Buffer.create 256 in
  let emit_row row =
    List.iteri (fun i cell ->
        if i > 0 then Buffer.add_string buffer "  ";
        Buffer.add_string buffer (pad_to widths.(i) cell)) row;
    Buffer.add_char buffer '\n'
  in
  emit_row t.headers;
  let rule = List.init columns (fun i -> String.make widths.(i) '-') in
  emit_row rule;
  List.iter emit_row normalized_rows;
  Buffer.contents buffer

let print t = print_string (render t)

let cell_int = string_of_int

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_ratio x = Printf.sprintf "%.2f" x
