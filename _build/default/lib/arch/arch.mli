(** Hardware coupling architectures (paper §1 Fig 1, §3, §7.1).

    Each architecture bundles a coupling graph with the structural
    decomposition the compiler exploits: its unit partition (rows/columns),
    per-unit-pair Hamiltonian paths, a global long path, and planar
    coordinates (used by the ATA range detector to bound regions). *)

type kind =
  | Line
  | Grid
  | Grid3d
  | Sycamore
  | Heavy_hex
  | Hexagon
  | Custom

type t

val kind : t -> kind

val name : t -> string

val graph : t -> Qcr_graph.Graph.t

val qubit_count : t -> int

val distances : t -> Qcr_graph.Paths.distances
(** All-pairs hop distances, computed once and cached. *)

val distance : t -> int -> int -> int

val coupled : t -> int -> int -> bool

val units : t -> int array array
(** Unit decomposition (paper §3: rows for grid/Sycamore, columns for
    hexagon).  Each inner array lists the unit's physical qubits in
    geometric order.  Empty for architectures compiled without units
    (line, heavy-hex, custom). *)

val pair_path : t -> int -> int array option
(** [pair_path arch i] is a Hamiltonian path through units [i] and [i+1]
    (both units' qubits, consecutive path elements coupled), used by the
    unified two-level ATA scheme; [None] when not applicable. *)

val long_path : t -> int array
(** A long simple path through the architecture: the full Hamiltonian
    boustrophedon for line/grid/Sycamore, the heavy-hex "longest path" of
    §5.1 Fig 16 (off-path bridge qubits excluded), or a heuristic path for
    custom graphs. *)

val off_path : t -> int array
(** Qubits not on [long_path] (heavy-hex bridge qubits; empty elsewhere). *)

val coords : t -> (float * float) array
(** Planar coordinates per qubit for region bounding boxes (§6.3). *)

(** {1 Constructors} *)

val line : int -> t

val grid : rows:int -> cols:int -> t
(** 2D lattice with horizontal and vertical couplings; qubit id of
    (r, c) is [r * cols + c]. *)

val grid3d : nx:int -> ny:int -> nz:int -> t
(** 3D lattice (the Fig 13 discussion: the high-level idea extends beyond
    two dimensions).  Units are the [nx] planes; adjacent planes join
    through a Hamiltonian slab path, so the unified two-level ATA scheme
    applies unchanged.  Qubit id of (x, y, z) is [(x*ny + y)*nz + z]. *)

val sycamore : rows:int -> cols:int -> t
(** Rotated square lattice: row [r], column [c] couples down to
    [(r+1, c)] and diagonally to [(r+1, c+1)] (even [r]) or [(r+1, c-1)]
    (odd [r]); no intra-row couplings.  [rows] must be even. *)

val heavy_hex : rows:int -> row_len:int -> t
(** IBM heavy-hex: [rows] horizontal lines of [row_len] qubits joined by
    bridge qubits every 4 columns, staggered by 2 between successive gaps
    (Fig 16 layout). *)

val hexagon : rows:int -> cols:int -> t
(** Honeycomb "dragged into a square" (Fig 12): full vertical coupling
    within each column, horizontal couplings on alternating rows.
    [rows] must be even. *)

val mumbai_like : unit -> t
(** 27-qubit heavy-hex device with the IBM Falcon coupling map, standing in
    for IBM Mumbai (§7.4). *)

val custom : name:string -> Qcr_graph.Graph.t -> t

val smallest_for : kind -> int -> t
(** [smallest_for kind n] is the smallest instance of [kind] (kept near
    square, as in §7.1) with at least [n] qubits. *)
