module Graph = Qcr_graph.Graph
module Prng = Qcr_util.Prng

type t = {
  arch : Arch.t;
  cx : (int, float) Hashtbl.t; (* key = lo * n + hi *)
  sq : float array;
  readout : float array;
}

let key t u v =
  let n = Arch.qubit_count t.arch in
  let lo = min u v and hi = max u v in
  (lo * n) + hi

let ideal arch =
  let n = Arch.qubit_count arch in
  let cx = Hashtbl.create 64 in
  Graph.iter_edges
    (fun u v -> Hashtbl.replace cx ((min u v * n) + max u v) 0.0)
    (Arch.graph arch);
  { arch; cx; sq = Array.make n 0.0; readout = Array.make n 0.0 }

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let sampled ?(seed = 17) arch =
  let rng = Prng.create seed in
  let n = Arch.qubit_count arch in
  let cx = Hashtbl.create 64 in
  Graph.iter_edges
    (fun u v ->
      (* log-normal-ish spread around a 6e-3 median CX error *)
      let e = 0.006 *. exp (Prng.gaussian rng ~mu:0.0 ~sigma:0.45) in
      Hashtbl.replace cx ((min u v * n) + max u v) (clamp 1e-4 0.15 e))
    (Arch.graph arch);
  let sq = Array.init n (fun _ -> clamp 1e-5 0.01 (0.0003 *. exp (Prng.gaussian rng ~mu:0.0 ~sigma:0.4))) in
  let readout = Array.init n (fun _ -> clamp 1e-3 0.2 (0.015 *. exp (Prng.gaussian rng ~mu:0.0 ~sigma:0.5))) in
  { arch; cx; sq; readout }

let uniform arch ~cx_error =
  let n = Arch.qubit_count arch in
  let cx = Hashtbl.create 64 in
  Graph.iter_edges
    (fun u v -> Hashtbl.replace cx ((min u v * n) + max u v) cx_error)
    (Arch.graph arch);
  { arch; cx; sq = Array.make n 0.0; readout = Array.make n 0.0 }

let cx_error t u v =
  match Hashtbl.find_opt t.cx (key t u v) with
  | Some e -> e
  | None -> invalid_arg "Noise.cx_error: qubits not coupled"

let sq_error t q = t.sq.(q)

let readout_error t q = t.readout.(q)

let log_success_cx t u v = log (1.0 -. cx_error t u v)

let arch t = t.arch

let decoherence_log_fidelity ~depth ~qubits = -0.002 *. float_of_int (depth * qubits)
