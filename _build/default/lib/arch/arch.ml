module Graph = Qcr_graph.Graph
module Paths = Qcr_graph.Paths

type kind =
  | Line
  | Grid
  | Grid3d
  | Sycamore
  | Heavy_hex
  | Hexagon
  | Custom

type t = {
  kind : kind;
  name : string;
  graph : Graph.t;
  units : int array array;
  pair_paths : int array array; (* pair_paths.(i) joins units i and i+1 *)
  long_path : int array;
  off_path : int array;
  coords : (float * float) array;
  mutable dists : Paths.distances option;
}

let kind t = t.kind

let name t = t.name

let graph t = t.graph

let qubit_count t = Graph.vertex_count t.graph

let distances t =
  match t.dists with
  | Some d -> d
  | None ->
      let d = Paths.all_pairs t.graph in
      t.dists <- Some d;
      d

let distance t u v = Paths.distance (distances t) u v

let coupled t u v = Graph.has_edge t.graph u v

let units t = t.units

let pair_path t i =
  if i >= 0 && i < Array.length t.pair_paths then Some t.pair_paths.(i) else None

let long_path t = t.long_path

let off_path t = t.off_path

let coords t = t.coords

let make ~kind ~name ~graph ~units ~pair_paths ~long_path ~off_path ~coords =
  { kind; name; graph; units; pair_paths; long_path; off_path; coords; dists = None }

(* ------------------------------------------------------------------ *)
(* Line *)

let line n =
  let graph = Qcr_graph.Generate.path n in
  let all = Array.init n (fun i -> i) in
  make ~kind:Line
    ~name:(Printf.sprintf "line-%d" n)
    ~graph ~units:[| all |] ~pair_paths:[||] ~long_path:all ~off_path:[||]
    ~coords:(Array.init n (fun i -> (0.0, float_of_int i)))

(* ------------------------------------------------------------------ *)
(* 2D grid: qubit (r, c) = r * cols + c, full horizontal+vertical edges. *)

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Arch.grid: empty";
  let id r c = (r * cols) + c in
  let graph = Graph.create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then Graph.add_edge graph (id r c) (id r (c + 1));
      if r + 1 < rows then Graph.add_edge graph (id r c) (id (r + 1) c)
    done
  done;
  let units = Array.init rows (fun r -> Array.init cols (fun c -> id r c)) in
  (* Pair path over rows r, r+1: row r left-to-right then row r+1
     right-to-left; consecutive elements are coupled (one vertical hop at
     the right edge). *)
  let pair_paths =
    Array.init (max 0 (rows - 1)) (fun r ->
        Array.init (2 * cols) (fun i ->
            if i < cols then id r i else id (r + 1) ((2 * cols) - 1 - i)))
  in
  (* Global boustrophedon Hamiltonian path. *)
  let long_path =
    Array.init (rows * cols) (fun i ->
        let r = i / cols and j = i mod cols in
        let c = if r mod 2 = 0 then j else cols - 1 - j in
        id r c)
  in
  make ~kind:Grid
    ~name:(Printf.sprintf "grid-%dx%d" rows cols)
    ~graph ~units ~pair_paths ~long_path ~off_path:[||]
    ~coords:
      (Array.init (rows * cols) (fun i ->
           (float_of_int (i / cols), float_of_int (i mod cols))))

(* ------------------------------------------------------------------ *)
(* 3D grid (Fig 13): planes along x are the units; a pair path snakes
   through plane x (boustrophedon over its y-rows), hops to plane x+1 at
   the ending coordinate, and snakes back in reverse, giving a Hamiltonian
   slab path whose reversal exchanges the two planes. *)

let grid3d ~nx ~ny ~nz =
  if nx < 1 || ny < 1 || nz < 1 then invalid_arg "Arch.grid3d: empty";
  let id x y z = (((x * ny) + y) * nz) + z in
  let n = nx * ny * nz in
  let graph = Graph.create n in
  for x = 0 to nx - 1 do
    for y = 0 to ny - 1 do
      for z = 0 to nz - 1 do
        if x + 1 < nx then Graph.add_edge graph (id x y z) (id (x + 1) y z);
        if y + 1 < ny then Graph.add_edge graph (id x y z) (id x (y + 1) z);
        if z + 1 < nz then Graph.add_edge graph (id x y z) (id x y (z + 1))
      done
    done
  done;
  (* boustrophedon order through one plane: y rows alternate z direction *)
  let plane_snake x =
    Array.init (ny * nz) (fun i ->
        let y = i / nz and j = i mod nz in
        let z = if y mod 2 = 0 then j else nz - 1 - j in
        id x y z)
  in
  let units = Array.init nx plane_snake in
  let pair_paths =
    Array.init (max 0 (nx - 1)) (fun x ->
        let a = plane_snake x and b = plane_snake (x + 1) in
        let k = ny * nz in
        (* plane x in snake order, then plane x+1 in reverse snake order;
           the plane hop happens at equal (y, z), a valid x-edge *)
        Array.init (2 * k) (fun i -> if i < k then a.(i) else b.((2 * k) - 1 - i)))
  in
  let long_path =
    (* global boustrophedon: planes traversed alternately forward/back *)
    Array.init n (fun i ->
        let x = i / (ny * nz) and j = i mod (ny * nz) in
        let snake = plane_snake x in
        if x mod 2 = 0 then snake.(j) else snake.((ny * nz) - 1 - j))
  in
  make ~kind:Grid3d
    ~name:(Printf.sprintf "grid3d-%dx%dx%d" nx ny nz)
    ~graph ~units ~pair_paths ~long_path ~off_path:[||]
    ~coords:
      (Array.init n (fun i ->
           let x = i / (ny * nz) and rest = i mod (ny * nz) in
           (float_of_int ((x * ny) + (rest / nz)), float_of_int (rest mod nz))))

(* ------------------------------------------------------------------ *)
(* Google Sycamore: rotated square lattice.  Row r couples vertically to
   row r+1 at the same column, and diagonally to column c+1 (even r) or
   c-1 (odd r).  There are no intra-row couplings, which is what makes the
   2xUnit problem interesting (paper Fig 10). *)

let sycamore ~rows ~cols =
  if rows < 2 || cols < 1 then invalid_arg "Arch.sycamore: too small";
  let id r c = (r * cols) + c in
  let graph = Graph.create (rows * cols) in
  for r = 0 to rows - 2 do
    for c = 0 to cols - 1 do
      Graph.add_edge graph (id r c) (id (r + 1) c);
      if r mod 2 = 0 then begin
        if c + 1 < cols then Graph.add_edge graph (id r c) (id (r + 1) (c + 1))
      end
      else if c - 1 >= 0 then Graph.add_edge graph (id r c) (id (r + 1) (c - 1))
    done
  done;
  let units = Array.init rows (fun r -> Array.init cols (fun c -> id r c)) in
  (* Pair path (zig-zag through the vertical and diagonal couplings).
     Even r: B0 A0 B1 A1 ... (A = row r, B = row r+1) using A_c-B_c and
     A_c-B_(c+1).  Odd r: A0 B0 A1 B1 ... using A_c-B_c and A_(c+1)-B_c. *)
  let pair_paths =
    Array.init (rows - 1) (fun r ->
        Array.init (2 * cols) (fun i ->
            let c = i / 2 in
            if r mod 2 = 0 then begin
              if i mod 2 = 0 then id (r + 1) c else id r c
            end
            else if i mod 2 = 0 then id r c
            else id (r + 1) c))
  in
  (* No global Hamiltonian path is constructed for Sycamore; the ATA
     schedule uses the two-level unit scheme, so [long_path] is only a
     diagnostic heuristic here. *)
  let long_path = Array.of_list (Paths.longest_path_heuristic graph) in
  make ~kind:Sycamore
    ~name:(Printf.sprintf "sycamore-%dx%d" rows cols)
    ~graph ~units ~pair_paths ~long_path ~off_path:[||]
    ~coords:
      (Array.init (rows * cols) (fun i ->
           let r = i / cols and c = i mod cols in
           (float_of_int r, float_of_int c +. if r mod 2 = 0 then 0.0 else 0.5)))

(* ------------------------------------------------------------------ *)
(* IBM heavy-hex: horizontal rows of length L joined by bridge qubits.
   Gap g (between rows g and g+1) carries bridges at columns 0, 4, 8, ...
   when g is even and 2, 6, 10, ... when g is odd.  With L = 4m+3 the even
   gaps reach column 0 and the odd gaps reach column L-1, so the snake of
   §5.1 Fig 16 descends at alternating ends; every other bridge is an
   off-path node. *)

let heavy_hex ~rows ~row_len =
  if rows < 1 || row_len < 1 then invalid_arg "Arch.heavy_hex: empty";
  let bridge_cols g =
    let offset = if g mod 2 = 0 then 0 else 2 in
    let rec collect c acc = if c >= row_len then List.rev acc else collect (c + 4) (c :: acc) in
    collect offset []
  in
  let bridges =
    List.concat
      (List.init (max 0 (rows - 1)) (fun g -> List.map (fun c -> (g, c)) (bridge_cols g)))
  in
  let n_row_qubits = rows * row_len in
  let n = n_row_qubits + List.length bridges in
  let id r c = (r * row_len) + c in
  let graph = Graph.create n in
  for r = 0 to rows - 1 do
    for c = 0 to row_len - 2 do
      Graph.add_edge graph (id r c) (id r (c + 1))
    done
  done;
  let bridge_ids = Hashtbl.create 16 in
  List.iteri
    (fun i (g, c) ->
      let b = n_row_qubits + i in
      Hashtbl.replace bridge_ids (g, c) b;
      Graph.add_edge graph b (id g c);
      Graph.add_edge graph b (id (g + 1) c))
    bridges;
  (* Snake: row 0 right-to-left, down the column-0 bridge of gap 0 (if it
     exists), row 1 left-to-right, down the column-(L-1) bridge of gap 1,
     and so on.  Bridges at the turn column join the path; if a gap lacks a
     bridge at the turning column (row_len mod 4 <> 3) we fall back to the
     nearest bridge and the columns beyond it become off-path tails, which
     the cleanup pass handles. *)
  let path = ref [] in
  let add q = path := q :: !path in
  let turn_col g right =
    let cols = bridge_cols g in
    if right then List.fold_left max (-1) cols else if List.mem 0 cols then 0 else -1
  in
  let current_dir = ref false (* false = traverse right-to-left *) in
  for r = 0 to rows - 1 do
    let dir_right = !current_dir in
    if dir_right then
      for c = 0 to row_len - 1 do
        add (id r c)
      done
    else
      for c = row_len - 1 downto 0 do
        add (id r c)
      done;
    if r + 1 < rows then begin
      (* After a right-to-left sweep we sit at column 0, wanting a bridge
         at column 0; after left-to-right, at column L-1. *)
      let want_col = if dir_right then row_len - 1 else 0 in
      let bridge_col = turn_col r dir_right in
      if bridge_col = want_col then begin
        match Hashtbl.find_opt bridge_ids (r, bridge_col) with
        | Some b -> add b
        | None -> ()
      end
    end;
    current_dir := not !current_dir
  done;
  let snake = Array.of_list (List.rev !path) in
  (* Validate consecutive coupling; truncate at the first break (only
     possible for irregular row_len). *)
  let valid_len = ref (Array.length snake) in
  (try
     for i = 0 to Array.length snake - 2 do
       if not (Graph.has_edge graph snake.(i) snake.(i + 1)) then begin
         valid_len := i + 1;
         raise Exit
       end
     done
   with Exit -> ());
  let snake = Array.sub snake 0 !valid_len in
  let on_path = Array.make n false in
  Array.iter (fun q -> on_path.(q) <- true) snake;
  let off = Array.of_list (List.filter (fun q -> not on_path.(q)) (List.init n (fun i -> i))) in
  let coords =
    Array.init n (fun q ->
        if q < n_row_qubits then (2.0 *. float_of_int (q / row_len), float_of_int (q mod row_len))
        else begin
          let g, c = List.nth bridges (q - n_row_qubits) in
          ((2.0 *. float_of_int g) +. 1.0, float_of_int c)
        end)
  in
  make ~kind:Heavy_hex
    ~name:(Printf.sprintf "heavyhex-%dx%d" rows row_len)
    ~graph ~units:[||] ~pair_paths:[||] ~long_path:snake ~off_path:off ~coords

(* ------------------------------------------------------------------ *)
(* Hexagon (honeycomb dragged square, Fig 12): full vertical coupling in
   each column; horizontal coupling (r,c)-(r,c+1) exactly when r + c is
   even, giving internal degree 3.  Units are columns.  [rows] must be
   even so that every adjacent column pair has an end-row link. *)

let hexagon ~rows ~cols =
  if rows < 2 || rows mod 2 <> 0 then invalid_arg "Arch.hexagon: rows must be even and >= 2";
  if cols < 1 then invalid_arg "Arch.hexagon: empty";
  let id r c = (r * cols) + c in
  let graph = Graph.create (rows * cols) in
  for c = 0 to cols - 1 do
    for r = 0 to rows - 2 do
      Graph.add_edge graph (id r c) (id (r + 1) c)
    done
  done;
  for r = 0 to rows - 1 do
    for c = 0 to cols - 2 do
      if (r + c) mod 2 = 0 then Graph.add_edge graph (id r c) (id r (c + 1))
    done
  done;
  let units = Array.init cols (fun c -> Array.init rows (fun r -> id r c)) in
  (* Pair path for columns c, c+1: even c crosses at row 0 (link exists
     since 0 + c is even), odd c crosses at row rows-1 (rows even makes
     rows-1 + c even). *)
  let pair_paths =
    Array.init (cols - 1) (fun c ->
        if c mod 2 = 0 then
          Array.init (2 * rows) (fun i ->
              if i < rows then id (rows - 1 - i) c else id (i - rows) (c + 1))
        else
          Array.init (2 * rows) (fun i ->
              if i < rows then id i c else id ((2 * rows) - 1 - i) (c + 1)))
  in
  let long_path = Array.of_list (Paths.longest_path_heuristic graph) in
  make ~kind:Hexagon
    ~name:(Printf.sprintf "hexagon-%dx%d" rows cols)
    ~graph ~units ~pair_paths ~long_path ~off_path:[||]
    ~coords:
      (Array.init (rows * cols) (fun i ->
           (float_of_int (i / cols), float_of_int (i mod cols))))

(* ------------------------------------------------------------------ *)
(* 27-qubit Falcon coupling map (ibmq_mumbai-class device). *)

let falcon_27_edges =
  [
    (0, 1); (1, 2); (1, 4); (2, 3); (3, 5); (4, 7); (5, 8); (6, 7); (7, 10);
    (8, 9); (8, 11); (10, 12); (11, 14); (12, 13); (12, 15); (13, 14);
    (14, 16); (15, 18); (16, 19); (17, 18); (18, 21); (19, 20); (19, 22);
    (21, 23); (22, 25); (23, 24); (24, 25); (25, 26);
  ]

let custom ~name graph =
  let long_path = Array.of_list (Paths.longest_path_heuristic graph) in
  let n = Graph.vertex_count graph in
  let on_path = Array.make n false in
  Array.iter (fun q -> on_path.(q) <- true) long_path;
  let off = Array.of_list (List.filter (fun q -> not on_path.(q)) (List.init n (fun i -> i))) in
  make ~kind:Custom ~name ~graph ~units:[||] ~pair_paths:[||] ~long_path ~off_path:off
    ~coords:(Array.init n (fun i -> (0.0, float_of_int i)))

let mumbai_like () =
  let graph = Graph.of_edges 27 falcon_27_edges in
  let t = custom ~name:"mumbai-like" graph in
  { t with kind = Heavy_hex }

(* ------------------------------------------------------------------ *)

let rec int_sqrt_up n k = if k * k >= n then k else int_sqrt_up n (k + 1)

let smallest_for target_kind n =
  if n < 1 then invalid_arg "Arch.smallest_for: n must be positive";
  match target_kind with
  | Line -> line n
  | Custom -> invalid_arg "Arch.smallest_for: custom has no parametric family"
  | Grid3d ->
      let rec cube k = if k * k * k >= n then k else cube (k + 1) in
      let k = cube 1 in
      grid3d ~nx:k ~ny:k ~nz:k
  | Grid ->
      let s = int_sqrt_up n 1 in
      let rows = s in
      let cols = (n + rows - 1) / rows in
      grid ~rows ~cols
  | Sycamore ->
      let s = int_sqrt_up n 1 in
      let rows = if s mod 2 = 0 then s else s + 1 in
      let rows = max rows 2 in
      let cols = max 1 ((n + rows - 1) / rows) in
      sycamore ~rows ~cols
  | Hexagon ->
      let s = int_sqrt_up n 1 in
      let rows = if s mod 2 = 0 then s else s + 1 in
      let rows = max rows 2 in
      let cols = max 1 ((n + rows - 1) / rows) in
      hexagon ~rows ~cols
  | Heavy_hex ->
      (* Pick row_len = 4m+3 near sqrt(n), then grow rows until the device
         holds n qubits. *)
      let s = int_sqrt_up n 1 in
      let m = max 0 ((s - 3 + 3) / 4) in
      let row_len = (4 * m) + 3 in
      let bridges_per_gap = ((row_len - 1) / 4) + 1 in
      let rec fit rows =
        let count = (rows * row_len) + (max 0 (rows - 1) * bridges_per_gap) in
        if count >= n then rows else fit (rows + 1)
      in
      heavy_hex ~rows:(fit 1) ~row_len
