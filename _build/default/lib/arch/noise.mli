(** Device noise model (paper §5.3, §7.4).

    Real IBM machines exhibit qubit/link error variability; the compiler's
    SWAP-insertion matching weights links by their two-qubit error rate and
    the fidelity estimator multiplies per-gate success probabilities.  We
    generate per-device calibration data from a seeded distribution with
    magnitudes matching published IBM calibrations (see DESIGN.md). *)

type t

val ideal : Arch.t -> t
(** Noiseless model: every error rate is zero. *)

val sampled : ?seed:int -> Arch.t -> t
(** Calibration-like noise: CX error per coupling edge (log-normal around
    ~6e-3), single-qubit error (~3e-4) and readout error (~1.5e-2) per
    qubit. *)

val uniform : Arch.t -> cx_error:float -> t
(** Same CX error on every link, no 1q/readout error. *)

val cx_error : t -> int -> int -> float
(** Error rate of a CX/CZ on a coupling edge (symmetric).
    @raise Invalid_argument if the qubits are not coupled. *)

val sq_error : t -> int -> float

val readout_error : t -> int -> float

val log_success_cx : t -> int -> int -> float
(** [log (1 - cx_error)], the additive fidelity contribution. *)

val arch : t -> Arch.t

val decoherence_log_fidelity : depth:int -> qubits:int -> float
(** Idle-decoherence contribution to a circuit's log-fidelity:
    [-0.002 * depth * qubits].  Circuit duration scales with the 2q-gate
    critical path; the rate matches a ~300 ns gate against ~150 us
    coherence.  This is what makes depth reduction pay off in the
    end-to-end experiments (§7.1: "circuit depth ... is correlated with
    the circuit duration"). *)
