lib/arch/arch.mli: Qcr_graph
