lib/arch/arch.ml: Array Hashtbl List Printf Qcr_graph
