lib/arch/noise.ml: Arch Array Hashtbl Qcr_graph Qcr_util
