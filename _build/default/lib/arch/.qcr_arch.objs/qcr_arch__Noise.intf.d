lib/arch/noise.mli: Arch
