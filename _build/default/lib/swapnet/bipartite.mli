(** The 2xUnit bipartite pattern (paper §3.1, Figs 8–9).

    Two adjacent rows [a] and [b] of equal length with vertical couplings
    [a.(i) - b.(i)] and intra-row couplings: each round touches all
    columns, then row [a] swaps pairs of one parity while row [b] swaps
    pairs of the other parity, the parities alternating per round.  After
    [k] rounds every token of [a] has met every token of [b] exactly once,
    and tokens never leave their row (so rows are preserved as sets). *)

val pattern : a:int array -> b:int array -> Schedule.t
(** Full k-round schedule ([k = Array.length a]); the last round emits no
    swap cycle, giving [2k - 1] cycles. *)

val exchange_cycle : a:int array -> b:int array -> Schedule.cycle
(** One cycle swapping the two rows wholesale via the vertical links — the
    grid "unit exchange" (Fig 5b). *)
