(** Two-level ATA composition (paper §3: reduce the full problem to 1xUnit
    and 2xUnit sub-problems).

    Top level: odd-even transposition over the architecture's units, for
    [#units] rounds.  In round [r], every adjacent unit pair of parity
    [r mod 2] is processed in parallel.

    Processing a pair either
    - runs the linear pattern along the pair's Hamiltonian path (covers all
      pairs inside the union AND exchanges the two units as sets, by the
      reversal property) — the "unified" scheme used for Sycamore and
      hexagon where intra-unit couplings are absent or partial; or
    - runs the grid-specialized 2xUnit bipartite pattern followed by a
      one-cycle unit exchange, after a prologue in which every unit covers
      its intra-unit pairs with the 1xUnit pattern in parallel (Fig 5). *)

val unified : Qcr_arch.Arch.t -> Schedule.t
(** For any architecture with [units] and [pair_path] (grid, Sycamore,
    hexagon). *)

val grid_specialized : Qcr_arch.Arch.t -> Schedule.t
(** For architectures whose units are internally coupled lines with full
    vertical links between adjacent units (2D grid). *)

val grid_merged : Qcr_arch.Arch.t -> Schedule.t
(** Appendix-A-style optimization of [grid_specialized]: instead of a
    standalone intra-unit prologue, each unit runs its 1xUnit pattern
    during a round in which it idles at a boundary position (every unit
    set reaches a wall of the odd-even transposition at least once, and a
    round is exactly as long as the intra pattern).  Units that never get
    an idle slot (possible for tiny unit counts) append their pattern at
    the end.  Saves the 2N-cycle prologue. *)
