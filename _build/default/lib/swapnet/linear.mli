(** The 1xUnit linear pattern (paper §3.1, Figs 6–7).

    Alternating odd-even rounds over a line of positions: round [r]
    touches every adjacent pair whose left index has parity [r mod 2] and
    then swaps the same pairs.  After [k] rounds (k = line length) every
    pair of tokens has been touched exactly once and the token order is
    exactly reversed — the property the two-level composition uses as a
    free unit exchange. *)

val pattern : int array -> Schedule.t
(** [pattern path]: full k-round schedule over the physical qubits listed
    in [path] (consecutive entries must be coupled).  [2k] cycles. *)

val rounds : int array -> int -> Schedule.t
(** First [r] rounds only. *)

val touch_cycle : int array -> parity:int -> Schedule.cycle

val swap_cycle : int array -> parity:int -> Schedule.cycle

val pattern_fig7 : int array -> Schedule.t
(** The paper's literal Fig 7 loop: an initial interaction layer on even
    pairs, then alternating SWAP-then-interact layers (odd, even, ...),
    stopping after all pairs have met — n interaction layers and n-2 swap
    layers, i.e. two cycles shorter than {!pattern} but without the
    reversal guarantee the two-level composition relies on.  Used by the
    heavy-hex passes indirectly and kept as the faithful reference form;
    coverage equivalence with {!pattern} is a unit test. *)
