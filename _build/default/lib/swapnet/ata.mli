(** All-to-all schedule dispatch (paper §3 + §5.1) and region restriction
    (§6.3 range detection).

    [schedule] picks the structured pattern for an architecture kind:
    - line: 1xUnit linear pattern,
    - 2D grid: the specialized row composition with the Appendix-A
      intra-unit merge (Fig 5 / App A),
    - Sycamore, hexagon: the unified two-level scheme,
    - heavy-hex: the multi-pass longest-path scheme (§5.1),
    - custom: linear pattern on a heuristic long path plus greedy cleanup.

    Schedules are memoized per architecture value. *)

val schedule : Qcr_arch.Arch.t -> Schedule.t

val region_schedule : Qcr_arch.Arch.t -> int list -> (Schedule.t * int list) option
(** [region_schedule arch qubits]: a schedule restricted to a sub-device
    region enclosing [qubits] with the same shape (a row/column band of the
    lattice), together with the physical qubits of that region.  [None]
    when the architecture kind has no band structure (then use the full
    [schedule]).  Tokens inside the region never leave it, so disjoint
    regions run in parallel. *)
