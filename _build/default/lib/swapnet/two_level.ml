module Arch = Qcr_arch.Arch

(* Parallel composition of per-pair schedules within a round: pair indices
   of equal parity are disjoint in qubits, so their cycles zip together. *)
let round_of_pairs per_pair pair_indices =
  List.fold_left (fun acc i -> Schedule.par acc (per_pair i)) [] pair_indices

let unit_pair_indices ~unit_count ~parity =
  let rec collect i acc =
    if i + 1 >= unit_count then List.rev acc else collect (i + 2) (i :: acc)
  in
  collect parity []

let top_level ~unit_count ~per_pair =
  List.concat
    (List.init unit_count (fun r ->
         round_of_pairs per_pair (unit_pair_indices ~unit_count ~parity:(r mod 2))))

let unified arch =
  let units = Arch.units arch in
  let unit_count = Array.length units in
  if unit_count = 0 then invalid_arg "Two_level.unified: architecture has no units";
  if unit_count = 1 then Linear.pattern units.(0)
  else begin
    let per_pair i =
      match Arch.pair_path arch i with
      | Some path -> Linear.pattern path
      | None -> invalid_arg "Two_level.unified: missing pair path"
    in
    top_level ~unit_count ~per_pair
  end

let grid_specialized arch =
  let units = Arch.units arch in
  let unit_count = Array.length units in
  if unit_count = 0 then invalid_arg "Two_level.grid_specialized: no units";
  if unit_count = 1 then Linear.pattern units.(0)
  else begin
    (* Prologue: intra-unit all-to-all in every unit simultaneously.  Unit
       contents are only permuted within units afterwards, and the unit
       exchanges below move units wholesale, so intra-pairs stay covered. *)
    let prologue =
      Array.fold_left (fun acc u -> Schedule.par acc (Linear.pattern u)) [] units
    in
    let per_pair i =
      let a = units.(i) and b = units.(i + 1) in
      Schedule.concat (Bipartite.pattern ~a ~b) [ Bipartite.exchange_cycle ~a ~b ]
    in
    Schedule.concat prologue (top_level ~unit_count ~per_pair)
  end

(* Appendix-A-flavoured merge: intra-unit 1xUnit patterns run in the slots
   where a unit idles (boundary positions of the odd-even transposition).
   A paired round costs 2N cycles (bipartite 2N-1 + exchange 1) and the
   intra pattern costs exactly 2N, so an idle unit fits its whole pattern
   inside one round. *)
let grid_merged arch =
  let units = Arch.units arch in
  let unit_count = Array.length units in
  if unit_count = 0 then invalid_arg "Two_level.grid_merged: no units";
  if unit_count = 1 then Linear.pattern units.(0)
  else begin
    let set_at = Array.init unit_count (fun i -> i) in
    let intra_done = Array.make unit_count false in
    let rounds = ref [] in
    for r = 0 to unit_count - 1 do
      let parity = r mod 2 in
      let paired = Array.make unit_count false in
      let pair_heads = unit_pair_indices ~unit_count ~parity in
      List.iter
        (fun i ->
          paired.(i) <- true;
          paired.(i + 1) <- true)
        pair_heads;
      let pair_scheds =
        List.map
          (fun i ->
            Schedule.concat
              (Bipartite.pattern ~a:units.(i) ~b:units.(i + 1))
              [ Bipartite.exchange_cycle ~a:units.(i) ~b:units.(i + 1) ])
          pair_heads
      in
      let idle_scheds = ref [] in
      for pos = 0 to unit_count - 1 do
        if (not paired.(pos)) && not intra_done.(set_at.(pos)) then begin
          intra_done.(set_at.(pos)) <- true;
          idle_scheds := Linear.pattern units.(pos) :: !idle_scheds
        end
      done;
      let round =
        List.fold_left Schedule.par [] (pair_scheds @ !idle_scheds)
      in
      rounds := round :: !rounds;
      List.iter
        (fun i ->
          let tmp = set_at.(i) in
          set_at.(i) <- set_at.(i + 1);
          set_at.(i + 1) <- tmp)
        pair_heads
    done;
    (* leftovers: units whose set never idled run their pattern now, all in
       parallel (distinct positions) *)
    let leftovers = ref [] in
    for pos = 0 to unit_count - 1 do
      if not intra_done.(set_at.(pos)) then begin
        intra_done.(set_at.(pos)) <- true;
        leftovers := Linear.pattern units.(pos) :: !leftovers
      end
    done;
    let tail = List.fold_left Schedule.par [] !leftovers in
    List.concat (List.rev !rounds) @ tail
  end
