lib/swapnet/two_level.mli: Qcr_arch Schedule
