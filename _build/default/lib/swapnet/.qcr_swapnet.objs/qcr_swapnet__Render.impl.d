lib/swapnet/render.ml: Array Buffer Hashtbl List Printf Schedule String
