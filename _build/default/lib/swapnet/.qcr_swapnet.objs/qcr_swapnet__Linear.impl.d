lib/swapnet/linear.ml: Array List Schedule
