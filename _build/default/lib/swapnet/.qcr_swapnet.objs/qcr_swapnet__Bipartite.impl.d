lib/swapnet/bipartite.ml: Array Linear List Schedule
