lib/swapnet/schedule.ml: Array Hashtbl List Printf Qcr_circuit Qcr_graph Qcr_util
