lib/swapnet/permute.ml: Array List Qcr_circuit Qcr_graph Queue Schedule
