lib/swapnet/heavyhex.ml: Array Hashtbl Linear List Qcr_arch Qcr_graph Qcr_util Schedule
