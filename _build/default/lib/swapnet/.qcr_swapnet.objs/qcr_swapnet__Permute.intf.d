lib/swapnet/permute.mli: Qcr_circuit Qcr_graph Schedule
