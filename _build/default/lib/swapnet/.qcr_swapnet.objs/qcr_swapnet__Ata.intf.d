lib/swapnet/ata.mli: Qcr_arch Schedule
