lib/swapnet/two_level.ml: Array Bipartite Linear List Qcr_arch Schedule
