lib/swapnet/schedule.mli: Qcr_circuit Qcr_graph Qcr_util
