lib/swapnet/linear.mli: Schedule
