lib/swapnet/heavyhex.mli: Qcr_arch Schedule
