lib/swapnet/ata.ml: Array Hashtbl Heavyhex Linear List Printf Qcr_arch Schedule Two_level
