lib/swapnet/bipartite.mli: Schedule
