lib/swapnet/render.mli: Schedule
