(** Text rendering of swap-network schedules, in the style of the paper's
    Fig 6: one row per physical qubit, one column per cycle, with [g]
    marking an interaction opportunity and [x]/[|] marking the two ends of
    a SWAP. *)

val schedule : ?qubits:int list -> ?max_cycles:int -> n:int -> Schedule.t -> string
(** [schedule ~n sched] draws the first [max_cycles] (default 40) cycles
    over qubits [0..n-1] (or the given subset). *)

val tokens : n:int -> Schedule.t -> string
(** Token trajectories: each row shows which token occupies the position
    after every cycle — the "qubit movement" view of Fig 8. *)
