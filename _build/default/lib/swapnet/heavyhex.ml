module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Paths = Qcr_graph.Paths
module Bitset = Qcr_util.Bitset

(* Mutable schedule builder that tracks token placement and met pairs as
   cycles are appended, so pass-boundary decisions (which neighbor a bridge
   exchanges with) and the final cleanup can inspect live state. *)
type builder = {
  graph : Graph.t;
  n : int;
  mutable rev_cycles : Schedule.cycle list;
  token_at : int array; (* physical position -> token *)
  pos_of : int array;   (* token -> physical position *)
  met : Bitset.t;
}

let builder_create graph =
  let n = Graph.vertex_count graph in
  {
    graph;
    n;
    rev_cycles = [];
    token_at = Array.init n (fun i -> i);
    pos_of = Array.init n (fun i -> i);
    met = Bitset.create (n * n);
  }

let mark_met b x y =
  let lo = min x y and hi = max x y in
  Bitset.add b.met ((lo * b.n) + hi)

let push b cycle =
  if cycle <> [] then begin
    List.iter
      (fun o ->
        match o with
        | Schedule.Touch (p, q) -> mark_met b b.token_at.(p) b.token_at.(q)
        | Schedule.Swap (p, q) ->
            let x = b.token_at.(p) and y = b.token_at.(q) in
            b.token_at.(p) <- y;
            b.token_at.(q) <- x;
            b.pos_of.(x) <- q;
            b.pos_of.(y) <- p)
      cycle;
    b.rev_cycles <- cycle :: b.rev_cycles
  end

let bridges_with_neighbors arch =
  let graph = Arch.graph arch in
  Array.to_list (Arch.off_path arch)
  |> List.map (fun bridge -> (bridge, Graph.neighbors graph bridge))

(* One pass: full linear pattern on the snake with a bridge-interaction
   cycle inserted between every touch and swap cycle. *)
let add_pass b arch bridges =
  let path = Arch.long_path arch in
  let k = Array.length path in
  for r = 0 to k - 1 do
    push b (Linear.touch_cycle path ~parity:(r mod 2));
    let used = Hashtbl.create 16 in
    let bridge_touches =
      List.filter_map
        (fun (bridge, neighbors) ->
          match neighbors with
          | [] -> None
          | _ ->
              let pick = List.nth neighbors (r mod List.length neighbors) in
              if Hashtbl.mem used pick || Hashtbl.mem used bridge then None
              else begin
                Hashtbl.replace used pick ();
                Hashtbl.replace used bridge ();
                Some (Schedule.Touch (bridge, pick))
              end)
        bridges
    in
    push b bridge_touches;
    push b (Linear.swap_cycle path ~parity:(r mod 2))
  done

(* Exchange every bridge token with a path neighbor whose token is not in
   [avoid]; bridges whose neighbors are all unavailable skip (cleanup
   covers the fallout). Returns the newly parked token cohort. *)
let add_exchange b bridges ~avoid =
  let touches = ref [] and swaps = ref [] and parked = ref [] in
  let used = Hashtbl.create 16 in
  List.iter
    (fun (bridge, neighbors) ->
      let candidate =
        List.find_opt
          (fun p -> (not (List.mem b.token_at.(p) avoid)) && not (Hashtbl.mem used p))
          neighbors
      in
      match candidate with
      | Some p ->
          Hashtbl.replace used p ();
          parked := b.token_at.(p) :: !parked;
          touches := Schedule.Touch (bridge, p) :: !touches;
          swaps := Schedule.Swap (bridge, p) :: !swaps
      | None -> ())
    bridges;
  push b !touches;
  push b !swaps;
  !parked

let add_passes b arch count =
  let bridges = bridges_with_neighbors arch in
  let parked = ref (List.map fst bridges |> List.map (fun p -> b.token_at.(p))) in
  for pass = 1 to count do
    add_pass b arch bridges;
    if pass < count then begin
      let fresh = add_exchange b bridges ~avoid:!parked in
      parked := fresh @ !parked
    end
  done

(* Route token [a] next to token [b] along a shortest position path, one
   swap per cycle, then touch.  Only used for the rare pairs the passes
   miss, so the sequential cycles do not affect asymptotic depth. *)
let cleanup_pair b a_token b_token =
  let pa = b.pos_of.(a_token) and pb = b.pos_of.(b_token) in
  if not (Graph.has_edge b.graph pa pb) then begin
    let route = Paths.shortest_path b.graph pa pb in
    let rec walk = function
      | x :: y :: rest when rest <> [] ->
          push b [ Schedule.Swap (x, y) ];
          walk (y :: rest)
      | _ -> ()
    in
    walk route
  end;
  let pa = b.pos_of.(a_token) and pb = b.pos_of.(b_token) in
  assert (Graph.has_edge b.graph pa pb);
  push b [ Schedule.Touch (pa, pb) ]

let add_cleanup b =
  for x = 0 to b.n - 1 do
    for y = x + 1 to b.n - 1 do
      if not (Bitset.mem b.met ((x * b.n) + y)) then cleanup_pair b x y
    done
  done

let passes arch count =
  let b = builder_create (Arch.graph arch) in
  add_passes b arch count;
  List.rev b.rev_cycles

let pattern arch =
  let b = builder_create (Arch.graph arch) in
  add_passes b arch 3;
  add_cleanup b;
  List.rev b.rev_cycles
