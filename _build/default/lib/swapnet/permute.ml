module Graph = Qcr_graph.Graph
module Paths = Qcr_graph.Paths
module Mapping = Qcr_circuit.Mapping

(* Two phases.
   Phase 1 (parallel): rounds of disjoint strictly-improving swaps (total
   token-to-destination distance decreases every round), which handles the
   bulk of a typical permutation with good parallelism.
   Phase 2 (sequential, guaranteed): leaf-locking on a spanning structure —
   repeatedly pick a position whose removal keeps the unlocked region
   connected (a leaf of a BFS tree of that region), bring its destined
   token there through unlocked positions, and lock it.  Every iteration
   locks one position, so termination is unconditional; this is the
   classic token-swapping completion that the pure greedy (which stalls on
   zero-gain plateaus like a full reversal) lacks. *)

let route g ~target =
  let n = Graph.vertex_count g in
  if Array.length target <> n then invalid_arg "Permute.route: size mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun t ->
      if t < 0 || t >= n || seen.(t) then invalid_arg "Permute.route: not a permutation";
      seen.(t) <- true)
    target;
  let dists = Paths.all_pairs g in
  let dist p q = Paths.distance dists p q in
  let token_at = Array.init n (fun p -> p) in
  let pos_of = Array.init n (fun t -> t) in
  let dest t = target.(t) in
  let cycles = ref [] in
  let apply_swap p q =
    let a = token_at.(p) and b = token_at.(q) in
    token_at.(p) <- b;
    token_at.(q) <- a;
    pos_of.(a) <- q;
    pos_of.(b) <- p
  in
  let gain p q =
    let a = token_at.(p) and b = token_at.(q) in
    dist p (dest a) + dist q (dest b) - (dist q (dest a) + dist p (dest b))
  in
  (* phase 1 *)
  let progressing = ref true in
  while !progressing do
    progressing := false;
    let candidates = ref [] in
    Graph.iter_edges
      (fun p q ->
        let gn = gain p q in
        if gn > 0 then candidates := (gn, p, q) :: !candidates)
      g;
    let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare b a) !candidates in
    let used = Array.make n false in
    let cycle = ref [] in
    List.iter
      (fun (_, p, q) ->
        if (not used.(p)) && not used.(q) then begin
          used.(p) <- true;
          used.(q) <- true;
          apply_swap p q;
          cycle := Schedule.Swap (p, q) :: !cycle
        end)
      sorted;
    if !cycle <> [] then begin
      progressing := true;
      cycles := !cycle :: !cycles
    end
  done;
  (* phase 2: leaf-locking completion over the unlocked region *)
  let locked = Array.make n false in
  let unlocked_count = ref n in
  (* BFS within unlocked positions from [source]; returns parent array *)
  let bfs_unlocked source =
    let parent = Array.make n (-2) in
    let queue = Queue.create () in
    parent.(source) <- -1;
    Queue.push source queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if (not locked.(v)) && parent.(v) = -2 then begin
            parent.(v) <- u;
            Queue.push v queue
          end)
        (Graph.neighbors g u)
    done;
    parent
  in
  while !unlocked_count > 0 do
    (* a root among unlocked positions *)
    let root = ref (-1) in
    for p = n - 1 downto 0 do
      if not locked.(p) then root := p
    done;
    let parent = bfs_unlocked !root in
    (* a BFS-tree leaf: an unlocked position that is no one's parent *)
    let is_parent = Array.make n false in
    Array.iteri (fun _v p -> if p >= 0 then is_parent.(p) <- true) parent;
    let leaf = ref (-1) in
    for p = 0 to n - 1 do
      if (not locked.(p)) && parent.(p) <> -2 && (not is_parent.(p)) && !leaf = -1 then
        leaf := p
    done;
    let leaf = if !leaf = -1 then !root else !leaf in
    (* the token destined for [leaf] *)
    let t = ref (-1) in
    for tok = 0 to n - 1 do
      if dest tok = leaf then t := tok
    done;
    let t = !t in
    if t >= 0 && pos_of.(t) <> leaf then begin
      (* walk t to leaf through unlocked positions: path from leaf back via
         BFS parents from t's position *)
      let path_parent = bfs_unlocked pos_of.(t) in
      if path_parent.(leaf) = -2 then failwith "Permute.route: unlocked region disconnected";
      let rec build p acc = if p = pos_of.(t) then p :: acc else build path_parent.(p) (p :: acc) in
      let path = build leaf [] in
      let rec hop = function
        | a :: b :: rest ->
            apply_swap a b;
            cycles := [ Schedule.Swap (a, b) ] :: !cycles;
            hop (b :: rest)
        | _ -> ()
      in
      hop path
    end;
    locked.(leaf) <- true;
    decr unlocked_count
  done;
  (* sanity: everything delivered *)
  Array.iteri
    (fun tok p -> if p <> dest tok then failwith "Permute.route: delivery failed")
    pos_of;
  List.rev !cycles

let restore_cycles ~coupling ~current ~desired =
  let n = Graph.vertex_count coupling in
  if Mapping.physical_count current <> n || Mapping.physical_count desired <> n then
    invalid_arg "Permute.restore_cycles: size mismatch";
  (* the token at wire p is the logical qubit [log_of_phys current p]; it
     must end on [phys_of_log desired] of that qubit *)
  let target =
    Array.init n (fun p -> Mapping.phys_of_log desired (Mapping.log_of_phys current p))
  in
  route coupling ~target
