let pairs path ~parity =
  let k = Array.length path in
  let rec collect i acc =
    if i + 1 >= k then List.rev acc else collect (i + 2) ((path.(i), path.(i + 1)) :: acc)
  in
  collect (parity land 1) []

let touch_cycle path ~parity =
  List.map (fun (p, q) -> Schedule.Touch (p, q)) (pairs path ~parity)

let swap_cycle path ~parity =
  List.map (fun (p, q) -> Schedule.Swap (p, q)) (pairs path ~parity)

let rounds path r =
  List.concat
    (List.init r (fun i ->
         [ touch_cycle path ~parity:(i mod 2); swap_cycle path ~parity:(i mod 2) ]))

let pattern path = rounds path (Array.length path)

(* Fig 7 / Fig 6 verbatim structure: interaction layers come in even/odd
   pairs (c1 c2), separated by swap-layer pairs odd-then-even (s1 s2),
   ending on an interaction pair: n interaction layers and n-2 swap layers
   = 2n-2 cycles (the two swap layers [pattern] appends for the reversal
   guarantee are omitted).  Empty layers (tiny n) are skipped. *)
let pattern_fig7 path =
  let k = Array.length path in
  if k < 2 then []
  else begin
    let cycles = ref [] in
    let push c = if c <> [] then cycles := c :: !cycles in
    let c_emitted = ref 0 and s_emitted = ref 0 in
    while !c_emitted < k do
      push (touch_cycle path ~parity:0);
      incr c_emitted;
      if !c_emitted < k then begin
        push (touch_cycle path ~parity:1);
        incr c_emitted
      end;
      if !c_emitted < k then begin
        if !s_emitted < k - 2 then begin
          push (swap_cycle path ~parity:1);
          incr s_emitted
        end;
        if !s_emitted < k - 2 then begin
          push (swap_cycle path ~parity:0);
          incr s_emitted
        end
      end
    done;
    List.rev !cycles
  end
