let schedule ?qubits ?(max_cycles = 40) ~n sched =
  let rows = match qubits with Some qs -> qs | None -> List.init n (fun i -> i) in
  let visible = List.filteri (fun i _ -> i >= 0) rows in
  let cycles = List.filteri (fun i _ -> i < max_cycles) sched in
  let width = List.length cycles in
  let index_of = Hashtbl.create 16 in
  List.iteri (fun i q -> Hashtbl.replace index_of q i) visible;
  let canvas = Array.make_matrix (List.length visible) width '.' in
  List.iteri
    (fun col cycle ->
      List.iter
        (fun op ->
          let mark p q ch =
            (match Hashtbl.find_opt index_of p with
            | Some r -> canvas.(r).(col) <- ch
            | None -> ());
            match Hashtbl.find_opt index_of q with
            | Some r -> canvas.(r).(col) <- ch
            | None -> ()
          in
          match op with
          | Schedule.Touch (p, q) -> mark p q 'g'
          | Schedule.Swap (p, q) -> mark p q 'x')
        cycle)
    cycles;
  let buffer = Buffer.create 256 in
  List.iteri
    (fun r q ->
      Buffer.add_string buffer (Printf.sprintf "q%-3d " q);
      Buffer.add_string buffer (String.init width (fun c -> canvas.(r).(c)));
      Buffer.add_char buffer '\n')
    visible;
  if List.length sched > max_cycles then
    Buffer.add_string buffer
      (Printf.sprintf "     ... (%d more cycles)\n" (List.length sched - max_cycles));
  Buffer.contents buffer

let tokens ~n sched =
  let token_at = Array.init n (fun i -> i) in
  let buffer = Buffer.create 256 in
  let emit_column () =
    Array.iter (fun t -> Buffer.add_string buffer (Printf.sprintf "%3d" t)) token_at;
    Buffer.add_char buffer '\n'
  in
  Buffer.add_string buffer "cycle 0 (positions left-to-right):\n";
  emit_column ();
  List.iteri
    (fun i cycle ->
      let swapped = ref false in
      List.iter
        (fun op ->
          match op with
          | Schedule.Swap (p, q) ->
              swapped := true;
              let t = token_at.(p) in
              token_at.(p) <- token_at.(q);
              token_at.(q) <- t
          | Schedule.Touch _ -> ())
        cycle;
      if !swapped then begin
        Buffer.add_string buffer (Printf.sprintf "after cycle %d:\n" (i + 1));
        emit_column ()
      end)
    sched;
  Buffer.contents buffer
