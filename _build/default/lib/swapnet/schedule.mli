(** Swap-network schedules.

    A schedule is a list of cycles over *physical* qubits; each cycle holds
    qubit-disjoint operations.  [Touch (p, q)] is an interaction
    opportunity: when the schedule is realized against a concrete problem
    graph, a touch emits the program's two-qubit gate iff the logical
    tokens currently at [p] and [q] still owe each other a gate (non-clique
    inputs simply skip, paper §5.2).  [Swap (p, q)] exchanges the tokens.

    The all-to-all (ATA) property of a schedule — every pair of tokens is
    touched at least once — is machine-checked by [coverage]. *)

type op = Swap of int * int | Touch of int * int

type cycle = op list

type t = cycle list

val cycle_count : t -> int

val op_count : t -> int

val swap_count : t -> int

val touch_count : t -> int

val validate : Qcr_graph.Graph.t -> t -> (unit, string) result
(** Every op on a coupling edge; ops within a cycle qubit-disjoint. *)

val coverage : n:int -> t -> Qcr_util.Bitset.t * int array
(** Simulate from the identity placement of [n] tokens on [n] positions.
    Returns the set of touched token pairs (bit [lo * n + hi]) and the
    final array [position_of_token]. *)

val covers_all_pairs : n:int -> t -> bool

val uncovered_pairs : n:int -> t -> (int * int) list
(** Token pairs never touched. *)

val final_positions : n:int -> t -> int array

val concat : t -> t -> t

val par : t -> t -> t
(** Zip two schedules cycle-by-cycle (they must act on disjoint qubits for
    the result to be valid); the shorter one is padded with empty cycles. *)

type realization = {
  circuit : Qcr_circuit.Circuit.t;
  cycles_used : int;
  swaps_used : int;
  emitted : (int * int) list;
      (** logical pairs whose program gate was emitted, in order *)
}

val realize :
  program:Qcr_circuit.Program.t ->
  mapping:Qcr_circuit.Mapping.t ->
  n_phys:int ->
  t ->
  realization
(** Generate the compiled interaction block by walking the schedule.
    [mapping] is mutated to the final placement.  Gate-saving rules applied:
    touches whose pair owes no gate emit nothing; swaps where neither token
    still owes any gate are dropped; the walk stops once every program edge
    has been emitted.  Emitted gates are [Cphase]/[Rzz] and [Swap]; run
    {!Qcr_circuit.Circuit.merge_swaps} afterwards to fuse
    interaction+swap pairs. *)

val estimate :
  remaining:Qcr_graph.Graph.t ->
  mapping:Qcr_circuit.Mapping.t ->
  t ->
  (int * int * int) option
(** [(cycles, swaps, merged)] the realization would use to finish
    [remaining] from [mapping] (mapping not mutated), or [None] if the
    schedule cannot finish it.  [merged] counts interaction+swap pairs the
    merge pass will fuse (saving 2 CX each).  This is the cheap core of
    the ATA pattern predictor (paper §6.3): no circuit is materialized. *)
