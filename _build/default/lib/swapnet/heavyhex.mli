(** Heavy-hex ATA via repeated passes of the longest-path linear pattern
    (paper §5.1, Appendix C).

    The device splits into the snake [Arch.long_path] and the off-path
    bridge qubits.  Each pass runs the 1xUnit linear pattern along the
    snake, covering all pairs of tokens currently on it, with opportunistic
    bridge-interaction cycles inserted after every round (the paper's
    "pause the pattern and schedule the path-2-off-path gate").  Between
    passes every bridge exchanges its token with a path neighbor.

    We run three passes with pairwise-disjoint parked cohorts: any token
    pair can be parked in at most two of the three passes, so all pairs are
    covered — a machine-checked strengthening of the appendix's two-pass
    argument (DESIGN.md, substitutions).  A final greedy cleanup sweeps any
    pair missed when cohort disjointness cannot be honored locally. *)

val pattern : Qcr_arch.Arch.t -> Schedule.t
(** Full ATA schedule; O(path length) passes so O(n) cycles overall. *)

val passes : Qcr_arch.Arch.t -> int -> Schedule.t
(** First [k] passes without cleanup (for experiments on pass coverage). *)
