let pattern ~a ~b =
  let k = Array.length a in
  if Array.length b <> k then invalid_arg "Bipartite.pattern: row length mismatch";
  List.concat
    (List.init k (fun r ->
         let touch =
           List.init k (fun i -> Schedule.Touch (a.(i), b.(i)))
         in
         if r = k - 1 then [ touch ]
         else begin
           let swap =
             Linear.swap_cycle a ~parity:(r mod 2) @ Linear.swap_cycle b ~parity:(1 - (r mod 2))
           in
           [ touch; swap ]
         end))

let exchange_cycle ~a ~b =
  let k = Array.length a in
  if Array.length b <> k then invalid_arg "Bipartite.exchange_cycle: row length mismatch";
  List.init k (fun i -> Schedule.Swap (a.(i), b.(i)))
