(** Permutation routing (parallel token swapping).

    Routes an arbitrary relabeling of tokens on a coupling graph with
    parallel SWAP layers: repeatedly commit a maximal set of disjoint
    swaps that strictly reduce the summed token-to-destination distance,
    breaking plateaus by walking the farthest token one step along a
    shortest path.  This is the classic greedy token-swapping heuristic
    (the qubit-allocation literature the paper builds on frames routing as
    token swapping); it is used to restore an initial mapping after
    compilation, e.g. between repetitions of an experiment. *)

val route :
  Qcr_graph.Graph.t -> target:int array -> Schedule.t
(** [route g ~target] produces swap cycles such that the token starting at
    position [p] ends at position [target.(p)].  [target] must be a
    permutation.  The result contains only [Swap] ops and is validated by
    construction (ops on edges, disjoint per cycle). *)

val restore_cycles :
  coupling:Qcr_graph.Graph.t ->
  current:Qcr_circuit.Mapping.t ->
  desired:Qcr_circuit.Mapping.t ->
  Schedule.t
(** Swap cycles that transform [current] into [desired] (both bijections
    over the same wire count). *)
