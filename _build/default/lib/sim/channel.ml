module Noise = Qcr_arch.Noise
module Mapping = Qcr_circuit.Mapping
module Prng = Qcr_util.Prng

let depolarize ~fidelity p =
  let f = max 0.0 (min 1.0 fidelity) in
  let u = 1.0 /. float_of_int (Array.length p) in
  Array.map (fun x -> (f *. x) +. ((1.0 -. f) *. u)) p

let with_readout noise ~final p =
  let n_log = Mapping.logical_count final in
  let size = Array.length p in
  if size <> 1 lsl n_log then invalid_arg "Channel.with_readout: size mismatch";
  let current = ref (Array.copy p) in
  for l = 0 to n_log - 1 do
    let e = Noise.readout_error noise (Mapping.phys_of_log final l) in
    if e > 0.0 then begin
      let next = Array.make size 0.0 in
      Array.iteri
        (fun i x ->
          let flipped = i lxor (1 lsl l) in
          next.(i) <- next.(i) +. (x *. (1.0 -. e));
          next.(flipped) <- next.(flipped) +. (x *. e))
        !current;
      current := next
    end
  done;
  !current

let tvd p q =
  if Array.length p <> Array.length q then invalid_arg "Channel.tvd: size mismatch";
  let total = ref 0.0 in
  Array.iteri (fun i x -> total := !total +. abs_float (x -. q.(i))) p;
  0.5 *. !total

let sample_counts rng ~shots p =
  let size = Array.length p in
  let counts = Array.make size 0.0 in
  let cumulative = Array.make size 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      acc := !acc +. x;
      cumulative.(i) <- !acc)
    p;
  for _ = 1 to shots do
    let target = Prng.float rng 1.0 in
    (* binary search the cumulative distribution *)
    let lo = ref 0 and hi = ref (size - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) < target then lo := mid + 1 else hi := mid
    done;
    counts.(!lo) <- counts.(!lo) +. 1.0
  done;
  Array.map (fun c -> c /. float_of_int shots) counts
