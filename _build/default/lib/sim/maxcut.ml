module Graph = Qcr_graph.Graph

let cut_value g bits =
  let cut = ref 0 in
  Graph.iter_edges
    (fun u v -> if (bits lsr u) land 1 <> (bits lsr v) land 1 then incr cut)
    g;
  !cut

let best_cut_brute_force g =
  let n = Graph.vertex_count g in
  if n > 24 then invalid_arg "Maxcut.best_cut_brute_force: too many vertices";
  let best = ref 0 in
  for bits = 0 to (1 lsl n) - 1 do
    best := max !best (cut_value g bits)
  done;
  !best

let expected_cut g dist =
  let total = ref 0.0 in
  Array.iteri (fun bits p -> total := !total +. (p *. float_of_int (cut_value g bits))) dist;
  !total

let expectation_value g dist = -.expected_cut g dist
