module Graph = Qcr_graph.Graph
module Circuit = Qcr_circuit.Circuit
module Gate = Qcr_circuit.Gate
module Program = Qcr_circuit.Program
module Mapping = Qcr_circuit.Mapping
module Noise = Qcr_arch.Noise
module Prng = Qcr_util.Prng

type evaluation = {
  distribution : float array;
  energy : float;
  fidelity : float;
}

(* Recover the QAOA angles embedded in a compiled circuit: the first
   Cphase/Swap_interact carries 2*gamma, the first Rx carries 2*beta. *)
let angles_of_compiled compiled =
  let gamma = ref None and beta = ref None in
  List.iter
    (fun g ->
      match g with
      | Gate.Cphase (_, _, t) | Gate.Swap_interact (_, _, t) ->
          if !gamma = None then gamma := Some (t /. 2.0)
      | Gate.Rx (_, t) -> if !beta = None then beta := Some (t /. 2.0)
      | _ -> ())
    (Circuit.gates compiled);
  (Option.value ~default:0.0 !gamma, Option.value ~default:0.0 !beta)

let evaluate ?noise ?shots ?rng ~graph ~compiled ~final () =
  let gamma, beta = angles_of_compiled compiled in
  let program = Program.make graph (Program.Qaoa_maxcut { gamma; beta }) in
  let ideal = Statevector.run (Program.logical_circuit program) in
  let probs = Statevector.probabilities ideal in
  let fidelity =
    match noise with
    | Some model ->
        let gate_log = Circuit.log_fidelity model compiled in
        let idle_log =
          Noise.decoherence_log_fidelity ~depth:(Circuit.depth2q compiled)
            ~qubits:(Graph.vertex_count graph)
        in
        exp (gate_log +. idle_log)
    | None -> 1.0
  in
  let dist = Channel.depolarize ~fidelity probs in
  let dist =
    match noise with
    | Some model -> Channel.with_readout model ~final dist
    | None -> dist
  in
  let dist =
    match (shots, rng) with
    | Some s, Some r -> Channel.sample_counts r ~shots:s dist
    | _ -> dist
  in
  { distribution = dist; energy = Maxcut.expectation_value graph dist; fidelity }

type driver_result = {
  energies : float array;
  best_gamma : float;
  best_beta : float;
  best_energy : float;
  optimum_cut : int;
}

let run_driver ?(rounds = 30) ?(shots = 8000) ?(seed = 11) ?noise ~graph ~compile () =
  let rng = Prng.create seed in
  let objective angles =
    let gamma = angles.(0) and beta = angles.(1) in
    let program = Program.make graph (Program.Qaoa_maxcut { gamma; beta }) in
    let compiled, final = compile program in
    let e = evaluate ?noise ~shots ~rng ~graph ~compiled ~final () in
    e.energy
  in
  (* Seed the simplex from a coarse angle grid (as one would on hardware:
     a handful of cheap scans before the optimizer takes over), so the
     local search starts inside the productive p=1 angle basin. *)
  let gammas = [ 0.1; 0.3; 0.5 ] and betas = [ 0.15; 0.35 ] in
  let init =
    List.concat_map (fun g -> List.map (fun b -> [| g; b |]) betas) gammas
    |> List.map (fun p -> (objective p, p))
    |> List.fold_left (fun (bv, bp) (v, p) -> if v < bv then (v, p) else (bv, bp)) (infinity, [| 0.4; 0.35 |])
    |> snd
  in
  let best_point, best_value, trace =
    Optimizer.nelder_mead ~max_rounds:rounds ~init_step:0.15 ~f:objective ~init ()
  in
  {
    energies = trace.Optimizer.round_best;
    best_gamma = best_point.(0);
    best_beta = best_point.(1);
    best_energy = best_value;
    optimum_cut = Maxcut.best_cut_brute_force graph;
  }
