(** Output-distribution noise channel and total variation distance.

    A full density-matrix simulation of a 27-qubit device is infeasible;
    per DESIGN.md we model aggregate gate noise as a depolarizing mixture:
    the noisy output distribution is

      p_noisy = f * p_ideal + (1 - f) * uniform

    where [f = exp (log_fidelity circuit)] is the circuit's estimated
    success probability under the device calibration.  Compiled circuits
    with fewer CX / lower depth have a larger [f] and therefore lower TVD
    and better energy — exactly the effect §7.4 measures. *)

val depolarize : fidelity:float -> float array -> float array
(** Mix a distribution with uniform noise; [fidelity] clamped to [0, 1]. *)

val with_readout :
  Qcr_arch.Noise.t -> final:Qcr_circuit.Mapping.t -> float array -> float array
(** Apply independent per-qubit readout bit-flips (logical qubit [l] read
    on its final physical wire). *)

val tvd : float array -> float array -> float
(** Total variation distance: [0.5 * sum |p - q|]. *)

val sample_counts :
  Qcr_util.Prng.t -> shots:int -> float array -> float array
(** Empirical distribution of [shots] samples — the shot noise of a real
    run. *)
