module Gate = Qcr_circuit.Gate
module Circuit = Qcr_circuit.Circuit
module Mapping = Qcr_circuit.Mapping
module Prng = Qcr_util.Prng

type t = { n : int; re : float array; im : float array }

let create n =
  if n < 0 || n > 24 then invalid_arg "Statevector.create: supports 0..24 qubits";
  let size = 1 lsl n in
  let re = Array.make size 0.0 and im = Array.make size 0.0 in
  re.(0) <- 1.0;
  { n; re; im }

let qubit_count t = t.n

let amplitude t i = (t.re.(i), t.im.(i))

(* Single-qubit unitary [[a b];[c d]] with complex entries (ar+i*ai ...) *)
let apply_1q t q (ar, ai) (br, bi) (cr, ci) (dr, di) =
  let size = 1 lsl t.n in
  let bit = 1 lsl q in
  let re = t.re and im = t.im in
  let i = ref 0 in
  while !i < size do
    if !i land bit = 0 then begin
      let j = !i lor bit in
      let xr = re.(!i) and xi = im.(!i) in
      let yr = re.(j) and yi = im.(j) in
      re.(!i) <- (ar *. xr) -. (ai *. xi) +. (br *. yr) -. (bi *. yi);
      im.(!i) <- (ar *. xi) +. (ai *. xr) +. (br *. yi) +. (bi *. yr);
      re.(j) <- (cr *. xr) -. (ci *. xi) +. (dr *. yr) -. (di *. yi);
      im.(j) <- (cr *. xi) +. (ci *. xr) +. (dr *. yi) +. (di *. yr)
    end;
    incr i
  done

let phase_on_mask t ~mask ~value (pr, pi) =
  let size = 1 lsl t.n in
  let re = t.re and im = t.im in
  for i = 0 to size - 1 do
    if i land mask = value then begin
      let xr = re.(i) and xi = im.(i) in
      re.(i) <- (pr *. xr) -. (pi *. xi);
      im.(i) <- (pr *. xi) +. (pi *. xr)
    end
  done

let swap_amps t pa pb =
  let size = 1 lsl t.n in
  let re = t.re and im = t.im in
  for i = 0 to size - 1 do
    let ba = (i lsr pa) land 1 and bb = (i lsr pb) land 1 in
    if ba = 1 && bb = 0 then begin
      let j = i lxor ((1 lsl pa) lor (1 lsl pb)) in
      let xr = re.(i) and xi = im.(i) in
      re.(i) <- re.(j);
      im.(i) <- im.(j);
      re.(j) <- xr;
      im.(j) <- xi
    end
  done

let cx t control target =
  let size = 1 lsl t.n in
  let re = t.re and im = t.im in
  let cbit = 1 lsl control and tbit = 1 lsl target in
  for i = 0 to size - 1 do
    if i land cbit <> 0 && i land tbit = 0 then begin
      let j = i lor tbit in
      let xr = re.(i) and xi = im.(i) in
      re.(i) <- re.(j);
      im.(i) <- im.(j);
      re.(j) <- xr;
      im.(j) <- xi
    end
  done

let inv_sqrt2 = 1.0 /. sqrt 2.0

let rec apply t g =
  match g with
  | Gate.H q ->
      apply_1q t q (inv_sqrt2, 0.0) (inv_sqrt2, 0.0) (inv_sqrt2, 0.0) (-.inv_sqrt2, 0.0)
  | Gate.X q -> apply_1q t q (0.0, 0.0) (1.0, 0.0) (1.0, 0.0) (0.0, 0.0)
  | Gate.Rx (q, theta) ->
      let c = cos (theta /. 2.0) and s = sin (theta /. 2.0) in
      apply_1q t q (c, 0.0) (0.0, -.s) (0.0, -.s) (c, 0.0)
  | Gate.Rz (q, theta) ->
      let c = cos (theta /. 2.0) and s = sin (theta /. 2.0) in
      apply_1q t q (c, -.s) (0.0, 0.0) (0.0, 0.0) (c, s)
  | Gate.Cx (a, b) -> cx t a b
  | Gate.Cz (a, b) ->
      let mask = (1 lsl a) lor (1 lsl b) in
      phase_on_mask t ~mask ~value:mask (-1.0, 0.0)
  | Gate.Cphase (a, b, theta) ->
      let mask = (1 lsl a) lor (1 lsl b) in
      phase_on_mask t ~mask ~value:mask (cos theta, sin theta)
  | Gate.Rzz (a, b, theta) ->
      (* exp(-i theta/2 Z Z): phase e^{-i theta/2} on equal bits, e^{+i
         theta/2} on differing bits *)
      let size = 1 lsl t.n in
      let re = t.re and im = t.im in
      let c = cos (theta /. 2.0) and s = sin (theta /. 2.0) in
      for i = 0 to size - 1 do
        let ba = (i lsr a) land 1 and bb = (i lsr b) land 1 in
        let pr, pi = if ba = bb then (c, -.s) else (c, s) in
        let xr = re.(i) and xi = im.(i) in
        re.(i) <- (pr *. xr) -. (pi *. xi);
        im.(i) <- (pr *. xi) +. (pi *. xr)
      done
  | Gate.Swap (a, b) -> swap_amps t a b
  | Gate.Swap_interact (a, b, theta) ->
      apply t (Gate.Cphase (a, b, theta));
      apply t (Gate.Swap (a, b))
  | Gate.Swap_rzz (a, b, theta) ->
      apply t (Gate.Rzz (a, b, theta));
      apply t (Gate.Swap (a, b))
  | Gate.Measure _ | Gate.Barrier -> ()

let run circuit =
  let t = create (Circuit.qubit_count circuit) in
  List.iter (apply t) (Circuit.gates circuit);
  t

let probabilities t =
  Array.init (1 lsl t.n) (fun i -> (t.re.(i) *. t.re.(i)) +. (t.im.(i) *. t.im.(i)))

let norm t = Array.fold_left ( +. ) 0.0 (probabilities t)

let fidelity a b =
  if a.n <> b.n then invalid_arg "Statevector.fidelity: size mismatch";
  let dr = ref 0.0 and di = ref 0.0 in
  for i = 0 to (1 lsl a.n) - 1 do
    (* <a|b> = sum conj(a_i) b_i *)
    dr := !dr +. ((a.re.(i) *. b.re.(i)) +. (a.im.(i) *. b.im.(i)));
    di := !di +. ((a.re.(i) *. b.im.(i)) -. (a.im.(i) *. b.re.(i)))
  done;
  (!dr *. !dr) +. (!di *. !di)

let sample rng t =
  let probs = probabilities t in
  let target = Prng.float rng 1.0 in
  let acc = ref 0.0 and found = ref (Array.length probs - 1) in
  (try
     Array.iteri
       (fun i p ->
         acc := !acc +. p;
         if !acc >= target then begin
           found := i;
           raise Exit
         end)
       probs
   with Exit -> ());
  !found

let extract_logical t ~final =
  let n_log = Mapping.logical_count final in
  let out = create n_log in
  out.re.(0) <- 0.0;
  let size = 1 lsl t.n in
  let leaked = ref 0.0 in
  for i = 0 to size - 1 do
    let p = (t.re.(i) *. t.re.(i)) +. (t.im.(i) *. t.im.(i)) in
    if p > 0.0 then begin
      (* dummy wires must be 0 *)
      let ok = ref true in
      for phys = 0 to t.n - 1 do
        if Mapping.is_dummy final (Mapping.log_of_phys final phys) && (i lsr phys) land 1 = 1
        then ok := false
      done;
      if !ok then begin
        let j = ref 0 in
        for l = 0 to n_log - 1 do
          if (i lsr Mapping.phys_of_log final l) land 1 = 1 then j := !j lor (1 lsl l)
        done;
        out.re.(!j) <- t.re.(i);
        out.im.(!j) <- t.im.(i)
      end
      else leaked := !leaked +. p
    end
  done;
  if !leaked > 1e-9 then failwith "Statevector.extract_logical: dummy wires not |0>";
  out
