(** Derivative-free classical optimizer for QAOA angles.

    Nelder–Mead simplex, standing in for Qiskit's default COBYLA (both are
    gradient-free local searches; see DESIGN.md substitutions).  The
    [trace] records the best objective value seen after each evaluation
    round, which is exactly the x-axis of Figs 24–25. *)

type trace = { round_best : float array; evaluations : int }

val nelder_mead :
  ?max_rounds:int ->
  ?init_step:float ->
  f:(float array -> float) ->
  init:float array ->
  unit ->
  float array * float * trace
(** Minimizes [f].  Returns (best point, best value, trace).  One "round"
    is one simplex iteration (reflect/expand/contract/shrink), matching
    one optimizer step of the real-machine loop. *)
