(** Max-Cut objective helpers (the QAOA application of §7.4). *)

val cut_value : Qcr_graph.Graph.t -> int -> int
(** [cut_value g bits]: edges of [g] whose endpoints get different bits in
    the basis-state index [bits]. *)

val best_cut_brute_force : Qcr_graph.Graph.t -> int
(** Exact optimum by enumeration (n <= 24). *)

val expected_cut : Qcr_graph.Graph.t -> float array -> float
(** Expectation of the cut value under an output distribution. *)

val expectation_value : Qcr_graph.Graph.t -> float array -> float
(** The paper's plotted quantity: the *negated* expected cut (smaller is
    better, Figs 24–25). *)
