(** Dense state-vector simulator (up to ~22 qubits).

    Substrate for the real-machine experiments of §7.4: QAOA energies,
    output distributions, TVD — and for the compiled-vs-logical
    equivalence tests that certify the compiler preserves semantics. *)

type t

val create : int -> t
(** |0...0> on [n] qubits.  [n] must be <= 24. *)

val qubit_count : t -> int

val apply : t -> Qcr_circuit.Gate.t -> unit
(** Apply one gate in place.  [Measure]/[Barrier] are no-ops (measurement
    is modelled by reading the final distribution). *)

val run : Qcr_circuit.Circuit.t -> t
(** Fresh simulation of a whole circuit. *)

val amplitude : t -> int -> float * float
(** (re, im) of a basis state. *)

val probabilities : t -> float array
(** Probability per basis state; sums to 1 up to float error. *)

val fidelity : t -> t -> float
(** |<a|b>|^2. *)

val norm : t -> float

val sample : Qcr_util.Prng.t -> t -> int
(** Draw one basis state from the output distribution. *)

val extract_logical :
  t -> final:Qcr_circuit.Mapping.t -> t
(** Project a compiled-circuit state on physical wires down to the logical
    wires: logical bit [l] is read from physical wire
    [Mapping.phys_of_log final l]; all dummy wires must be |0> (they only
    ever participate in SWAPs), which is checked. *)
