(** End-to-end QAOA driver (paper §7.4): compiled circuit -> simulator ->
    noise channel -> expected Max-Cut energy -> classical optimizer loop.

    [run_driver] mirrors the paper's real-machine experiment: the circuit
    structure (two-qubit blocks, SWAPs) is compiled once; only the rotation
    angles change between optimizer rounds, so each evaluation rebuilds the
    gate parameters on the fixed structure. *)

val angles_of_compiled : Qcr_circuit.Circuit.t -> float * float
(** Recover (gamma, beta) from a compiled QAOA circuit's first interaction
    and mixer gates (used by the evaluation helpers). *)

type evaluation = {
  distribution : float array;  (** noisy output distribution over 2^n *)
  energy : float;              (** negated expected cut (smaller better) *)
  fidelity : float;            (** exp of the compiled circuit's log-fidelity *)
}

val evaluate :
  ?noise:Qcr_arch.Noise.t ->
  ?shots:int ->
  ?rng:Qcr_util.Prng.t ->
  graph:Qcr_graph.Graph.t ->
  compiled:Qcr_circuit.Circuit.t ->
  final:Qcr_circuit.Mapping.t ->
  unit ->
  evaluation
(** Simulate a compiled QAOA circuit.  The simulation runs the *logical*
    equivalent (ideal statevector of the logical circuit implied by
    [graph] + the compiled angles) — semantics equality is certified
    separately in tests — with the compiled circuit determining the
    depolarizing fidelity.  With [shots] the distribution carries shot
    noise. *)

type driver_result = {
  energies : float array;      (** best-so-far energy after each round *)
  best_gamma : float;
  best_beta : float;
  best_energy : float;
  optimum_cut : int;           (** brute-force max cut, for reference *)
}

val run_driver :
  ?rounds:int ->
  ?shots:int ->
  ?seed:int ->
  ?noise:Qcr_arch.Noise.t ->
  graph:Qcr_graph.Graph.t ->
  compile:
    (Qcr_circuit.Program.t ->
    Qcr_circuit.Circuit.t * Qcr_circuit.Mapping.t) ->
  unit ->
  driver_result
(** Full optimization loop: [compile] maps a parameterized program to a
    compiled circuit + final mapping (called once per evaluation with
    fresh angles; structure is deterministic).  Uses Nelder–Mead
    (COBYLA substitute). *)
