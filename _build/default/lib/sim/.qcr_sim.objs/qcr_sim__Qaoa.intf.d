lib/sim/qaoa.mli: Qcr_arch Qcr_circuit Qcr_graph Qcr_util
