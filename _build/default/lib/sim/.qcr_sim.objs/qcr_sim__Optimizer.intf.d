lib/sim/optimizer.mli:
