lib/sim/maxcut.ml: Array Qcr_graph
