lib/sim/trajectory.ml: Array Channel Float List Qaoa Qcr_arch Qcr_circuit Qcr_util Statevector
