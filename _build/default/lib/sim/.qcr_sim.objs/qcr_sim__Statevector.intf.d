lib/sim/statevector.mli: Qcr_circuit Qcr_util
