lib/sim/optimizer.ml: Array
