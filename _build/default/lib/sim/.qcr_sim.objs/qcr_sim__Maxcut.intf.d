lib/sim/maxcut.mli: Qcr_graph
