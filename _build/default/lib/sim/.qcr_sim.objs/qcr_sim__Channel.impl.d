lib/sim/channel.ml: Array Qcr_arch Qcr_circuit Qcr_util
