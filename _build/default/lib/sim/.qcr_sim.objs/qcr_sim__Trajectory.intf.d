lib/sim/trajectory.mli: Qcr_arch Qcr_circuit Qcr_graph Statevector
