lib/sim/statevector.ml: Array List Qcr_circuit Qcr_util
