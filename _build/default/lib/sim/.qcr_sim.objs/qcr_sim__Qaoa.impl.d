lib/sim/qaoa.ml: Array Channel List Maxcut Optimizer Option Qcr_arch Qcr_circuit Qcr_graph Qcr_util Statevector
