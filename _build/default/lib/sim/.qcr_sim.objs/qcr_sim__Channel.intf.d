lib/sim/channel.mli: Qcr_arch Qcr_circuit Qcr_util
