(** 2-local Hamiltonian simulation benchmarks (paper §7.1, §7.5).

    The paper uses next-nearest-neighbor (NNN) interaction graphs from
    2QAN: 1D Ising chains, 2D XY lattices, and 3D Heisenberg lattices,
    each with both nearest- and next-nearest-neighbor couplings.  These
    functions build the interaction graphs; the Trotter-step circuit is a
    permutable-RZZ program over the graph. *)

val nnn_1d_ising : int -> Qcr_graph.Graph.t
(** Chain of [n] spins, edges (i, i+1) and (i, i+2). *)

val nnn_2d_xy : rows:int -> cols:int -> Qcr_graph.Graph.t
(** 2D lattice, nearest (axis) plus next-nearest (diagonal) neighbors. *)

val nnn_3d_heisenberg : dim:int -> Qcr_graph.Graph.t
(** [dim]^3 cubic lattice, axis neighbors plus face diagonals. *)

val trotter_step : ?theta:float -> Qcr_graph.Graph.t -> Qcr_circuit.Program.t
(** One first-order Trotter step: RZZ(theta) on every interaction edge
    (all terms commute in the ZZ model; for XY/Heisenberg the paper
    compiles the dominant two-qubit block the same way). *)
