(** Benchmark suite descriptions matching the paper's §7.1 setup:
    random graphs with densities {0.3, 0.5}, regular graphs with matching
    density, sizes 64..1024, 10 seeds per point (averaged). *)

type instance = {
  label : string;       (** e.g. "rand-128-0.3" *)
  seed : int;
  graph : Qcr_graph.Graph.t;
}

val random_instances :
  ?cases:int -> n:int -> density:float -> unit -> instance list
(** [cases] seeds (default 10) of an Erdős–Rényi graph. *)

val regular_instances :
  ?cases:int -> n:int -> density:float -> unit -> instance list

val regular_by_degree :
  ?cases:int -> n:int -> degree:int -> unit -> instance list
(** The paper's "1024-320"-style rows: n vertices, fixed degree. *)

val program_of : instance -> Qcr_circuit.Program.t
(** QAOA interaction block at reference angles. *)
