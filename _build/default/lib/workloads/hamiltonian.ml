module Graph = Qcr_graph.Graph
module Program = Qcr_circuit.Program

let nnn_1d_ising n =
  let g = Graph.create n in
  for i = 0 to n - 2 do
    Graph.add_edge g i (i + 1)
  done;
  for i = 0 to n - 3 do
    Graph.add_edge g i (i + 2)
  done;
  g

let nnn_2d_xy ~rows ~cols =
  let g = Graph.create (rows * cols) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then Graph.add_edge g (id r c) (id r (c + 1));
      if r + 1 < rows then Graph.add_edge g (id r c) (id (r + 1) c);
      if r + 1 < rows && c + 1 < cols then Graph.add_edge g (id r c) (id (r + 1) (c + 1));
      if r + 1 < rows && c - 1 >= 0 then Graph.add_edge g (id r c) (id (r + 1) (c - 1))
    done
  done;
  g

let nnn_3d_heisenberg ~dim =
  let g = Graph.create (dim * dim * dim) in
  let id x y z = (((x * dim) + y) * dim) + z in
  let in_range v = v >= 0 && v < dim in
  let add (x, y, z) (x', y', z') =
    if in_range x' && in_range y' && in_range z' then begin
      let a = id x y z and b = id x' y' z' in
      if a < b && not (Graph.has_edge g a b) then Graph.add_edge g a b
      else if b < a && not (Graph.has_edge g a b) then Graph.add_edge g b a
    end
  in
  for x = 0 to dim - 1 do
    for y = 0 to dim - 1 do
      for z = 0 to dim - 1 do
        (* axis neighbors *)
        add (x, y, z) (x + 1, y, z);
        add (x, y, z) (x, y + 1, z);
        add (x, y, z) (x, y, z + 1);
        (* face diagonals (next-nearest) *)
        add (x, y, z) (x + 1, y + 1, z);
        add (x, y, z) (x + 1, y, z + 1);
        add (x, y, z) (x, y + 1, z + 1)
      done
    done
  done;
  g

let trotter_step ?(theta = 0.2) g = Program.make g (Program.Two_local { theta })
