lib/workloads/suite.ml: List Printf Qcr_circuit Qcr_graph Qcr_util
