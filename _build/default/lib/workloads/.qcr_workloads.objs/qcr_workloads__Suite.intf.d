lib/workloads/suite.mli: Qcr_circuit Qcr_graph
