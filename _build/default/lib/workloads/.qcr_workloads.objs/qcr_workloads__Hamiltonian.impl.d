lib/workloads/hamiltonian.ml: Qcr_circuit Qcr_graph
