lib/workloads/hamiltonian.mli: Qcr_circuit Qcr_graph
