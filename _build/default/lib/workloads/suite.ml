module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Program = Qcr_circuit.Program
module Prng = Qcr_util.Prng

type instance = {
  label : string;
  seed : int;
  graph : Graph.t;
}

(* Base seed chosen once; every instance derives deterministically from
   (kind, n, density, case index). *)
let seed_of ~tag ~n ~case =
  (tag * 1_000_003) + (n * 9176) + (case * 389) + 12345

let random_instances ?(cases = 10) ~n ~density () =
  List.init cases (fun case ->
      let seed = seed_of ~tag:1 ~n ~case in
      let rng = Prng.create seed in
      {
        label = Printf.sprintf "rand-%d-%g" n density;
        seed;
        graph = Generate.erdos_renyi rng ~n ~density;
      })

let regular_instances ?(cases = 10) ~n ~density () =
  List.init cases (fun case ->
      let seed = seed_of ~tag:2 ~n ~case in
      let rng = Prng.create seed in
      {
        label = Printf.sprintf "reg-%d-%g" n density;
        seed;
        graph = Generate.regular_with_density rng ~n ~density;
      })

let regular_by_degree ?(cases = 10) ~n ~degree () =
  List.init cases (fun case ->
      let seed = seed_of ~tag:3 ~n ~case in
      let rng = Prng.create seed in
      {
        label = Printf.sprintf "reg-%d-%d" n degree;
        seed;
        graph = Generate.random_regular rng ~n ~degree;
      })

let program_of instance =
  Program.make ~name:instance.label instance.graph
    (Program.Qaoa_maxcut { gamma = 0.4; beta = 0.35 })
