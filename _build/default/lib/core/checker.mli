(** Independent compilation certificates.

    [certify] re-validates a compilation result from first principles,
    without trusting the compiler that produced it:

    - every two-qubit gate acts on a coupled pair;
    - replaying the circuit's SWAPs from the initial mapping reproduces the
      claimed final mapping;
    - tracking logical positions through the replay, the interaction gates
      realize exactly the program's edge multiset (each edge once, on the
      right logical pair);
    - prologue/epilogue single-qubit gates act on the wires their logical
      qubits occupy at that point;
    - the reported depth and CX metrics match the circuit.

    This gives the same assurance as simulator equivalence but scales to
    circuits far beyond state-vector reach (e.g. 1024-qubit compilations),
    so large benchmark outputs can be certified too. *)

type violation = string

val certify :
  arch:Qcr_arch.Arch.t ->
  program:Qcr_circuit.Program.t ->
  Pipeline.result ->
  (unit, violation list) Stdlib.result

val certify_exn :
  arch:Qcr_arch.Arch.t -> program:Qcr_circuit.Program.t -> Pipeline.result -> unit
(** @raise Failure listing the violations. *)
