type candidate = {
  checkpoint_cycle : int;
  depth : int;
  cx : int;
  log_fid : float;
}

let err_geomean ~cx ~log_fid =
  if cx = 0 then 0.0 else 1.0 -. exp (log_fid /. float_of_int cx)

let score ~alpha ~ref_depth ~ref_cx ~ref_log_fid c =
  let depth_term =
    if ref_depth = 0 then 0.0 else float_of_int c.depth /. float_of_int ref_depth
  in
  let quality_term =
    if c.log_fid < 0.0 || ref_log_fid < 0.0 then begin
      let ref_err = err_geomean ~cx:ref_cx ~log_fid:ref_log_fid in
      if ref_err <= 0.0 then 0.0 else err_geomean ~cx:c.cx ~log_fid:c.log_fid /. ref_err
    end
    else if ref_cx = 0 then 0.0
    else float_of_int c.cx /. float_of_int ref_cx
  in
  (alpha *. depth_term) +. ((1.0 -. alpha) *. quality_term)

let best ~alpha ~greedy_depth ~greedy_cx ~greedy_log_fid candidates =
  let score_vs_greedy =
    score ~alpha ~ref_depth:(max greedy_depth 1) ~ref_cx:(max greedy_cx 1)
      ~ref_log_fid:greedy_log_fid
  in
  let greedy_as_candidate =
    { checkpoint_cycle = max_int; depth = greedy_depth; cx = greedy_cx; log_fid = greedy_log_fid }
  in
  let greedy_score = score_vs_greedy greedy_as_candidate in
  let winner =
    List.fold_left
      (fun (best_score, best_choice) c ->
        let s = score_vs_greedy c in
        if s < best_score then (s, `Hybrid c) else (best_score, best_choice))
      (greedy_score, `Greedy) candidates
  in
  snd winner
