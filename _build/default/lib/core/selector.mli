(** Compiled-circuits selector (paper §6.4).

    The pipeline records, at mapping-changing cycles, the predicted total
    cost of "greedy prefix so far + rigid ATA completion for the rest".
    At the end it compares every recorded hybrid against the pure-greedy
    result under the cost

      F = alpha * (depth / ref_depth) + (1 - alpha) * (quality / ref_quality)

    (smaller is better), where quality is the geometric-mean per-CX error
    — [fidelity ** (1/fG)] in the paper's notation — when a noise model is
    present, and the CX count otherwise.  Both terms are normalized to the
    reference circuit so they weigh comparably.  Because the checkpoint at
    cycle 0 is the pure ATA completion [cc0], the winner is never worse
    than rigidly following the clique pattern (Theorem 6.1). *)

type candidate = {
  checkpoint_cycle : int;  (** 0 = pure ATA *)
  depth : int;             (** predicted 2q depth of the full circuit *)
  cx : int;                (** predicted CX count *)
  log_fid : float;         (** predicted log-fidelity (0 when no noise) *)
}

val err_geomean : cx:int -> log_fid:float -> float
(** [1 - exp (log_fid / cx)]: the geometric-mean per-CX error rate. *)

val score :
  alpha:float -> ref_depth:int -> ref_cx:int -> ref_log_fid:float -> candidate -> float

val best :
  alpha:float ->
  greedy_depth:int ->
  greedy_cx:int ->
  greedy_log_fid:float ->
  candidate list ->
  [ `Greedy | `Hybrid of candidate ]
(** Compare the greedy result with all hybrids under F (normalized to the
    greedy result); ties favor greedy. *)
