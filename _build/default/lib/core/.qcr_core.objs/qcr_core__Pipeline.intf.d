lib/core/pipeline.mli: Config Qcr_arch Qcr_circuit
