lib/core/greedy.ml: Array Config Hashtbl List Qcr_arch Qcr_circuit Qcr_graph
