lib/core/config.ml:
