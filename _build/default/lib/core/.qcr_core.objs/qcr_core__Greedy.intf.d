lib/core/greedy.mli: Config Qcr_arch Qcr_circuit Qcr_graph
