lib/core/multilevel.mli: Config Pipeline Qcr_arch Qcr_circuit Qcr_graph
