lib/core/config.mli:
