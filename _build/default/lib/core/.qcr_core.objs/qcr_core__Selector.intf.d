lib/core/selector.mli:
