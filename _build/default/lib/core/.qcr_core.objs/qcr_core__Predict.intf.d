lib/core/predict.mli: Qcr_arch Qcr_circuit Qcr_graph
