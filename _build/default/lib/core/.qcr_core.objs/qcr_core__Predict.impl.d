lib/core/predict.ml: Array Fun Lazy List Qcr_arch Qcr_circuit Qcr_graph Qcr_swapnet
