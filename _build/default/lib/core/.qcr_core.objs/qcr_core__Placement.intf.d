lib/core/placement.mli: Qcr_arch Qcr_circuit Qcr_graph
