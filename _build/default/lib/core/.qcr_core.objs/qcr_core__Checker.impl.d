lib/core/checker.ml: List Pipeline Printf Qcr_arch Qcr_circuit Qcr_graph String
