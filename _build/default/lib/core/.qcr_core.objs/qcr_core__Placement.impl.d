lib/core/placement.ml: Array List Qcr_arch Qcr_circuit Qcr_graph Qcr_util
