lib/core/multilevel.ml: Array List Pipeline Qcr_arch Qcr_circuit Qcr_graph Qcr_swapnet Sys
