lib/core/checker.mli: Pipeline Qcr_arch Qcr_circuit Stdlib
