lib/core/selector.ml: List
