lib/core/pipeline.ml: Config Greedy List Placement Predict Qcr_arch Qcr_circuit Qcr_graph Qcr_swapnet Selector Sys
