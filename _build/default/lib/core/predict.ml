module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Components = Qcr_graph.Components
module Mapping = Qcr_circuit.Mapping
module Circuit = Qcr_circuit.Circuit
module Program = Qcr_circuit.Program
module Schedule = Qcr_swapnet.Schedule
module Ata = Qcr_swapnet.Ata

type estimate = {
  cycles : int;
  swaps : int;
  merged : int;
  gates : int;
}

(* A region group: the remaining-graph components it covers and the
   schedule + physical member set that encloses their current footprint.
   Groups whose member sets intersect are merged until pairwise disjoint
   (overlapping regions cannot run in parallel, paper §6.3). *)
type group = {
  logical : int list; (* logical vertices with remaining gates *)
  members : int list; (* physical qubits of the region, sorted *)
  sched : Schedule.t option; (* None = needs full-device schedule *)
}

let footprint mapping logical = List.map (fun l -> Mapping.phys_of_log mapping l) logical

let rec disjoint_sorted a b =
  match (a, b) with
  | [], _ | _, [] -> true
  | x :: xs, y :: ys ->
      if x = y then false else if x < y then disjoint_sorted xs b else disjoint_sorted a ys

let merge_sorted a b = List.sort_uniq compare (a @ b)

let build_group arch mapping logical =
  let positions = footprint mapping logical in
  match Ata.region_schedule arch positions with
  | Some (sched, members) -> { logical; members; sched = Some sched }
  | None -> { logical; members = List.sort compare positions; sched = None }

(* Merge groups until pairwise member-disjoint.  A merged group gets a
   fresh (larger) region. *)
let rec merge_groups arch mapping groups =
  let rec find_overlap = function
    | [] | [ _ ] -> None
    | g :: rest -> begin
        match List.find_opt (fun g' -> not (disjoint_sorted g.members g'.members)) rest with
        | Some g' -> Some (g, g')
        | None -> begin
            match find_overlap rest with
            | Some pair -> Some pair
            | None -> None
          end
      end
  in
  match find_overlap groups with
  | None -> groups
  | Some (a, b) ->
      let rest = List.filter (fun g -> g != a && g != b) groups in
      let merged = build_group arch mapping (merge_sorted a.logical b.logical) in
      (* ensure progress: the merged footprint strictly contains both *)
      merge_groups arch mapping (merged :: rest)

let subgraph_of_component remaining component =
  let n = Graph.vertex_count remaining in
  let inside = Array.make n false in
  List.iter (fun v -> inside.(v) <- true) component;
  let g = Graph.create n in
  Graph.iter_edges (fun u v -> if inside.(u) && inside.(v) then Graph.add_edge g u v) remaining;
  g

let groups_of ~use_regions arch remaining mapping =
  if not use_regions then
    [ { logical = List.init (Graph.vertex_count remaining) Fun.id; members = []; sched = None } ]
  else begin
    let components = Components.nontrivial_components remaining in
    match components with
    | [] -> []
    | _ -> merge_groups arch mapping (List.map (build_group arch mapping) components)
  end

let estimate ?(use_regions = true) ~arch ~remaining ~mapping () =
  let gates = Graph.edge_count remaining in
  if gates = 0 then { cycles = 0; swaps = 0; merged = 0; gates = 0 }
  else begin
    let groups = groups_of ~use_regions arch remaining mapping in
    let full = lazy (Ata.schedule arch) in
    let cycles = ref 0 and swaps = ref 0 and merged = ref 0 in
    List.iter
      (fun g ->
        let sub = subgraph_of_component remaining g.logical in
        let sched = match g.sched with Some s -> s | None -> Lazy.force full in
        match Schedule.estimate ~remaining:sub ~mapping sched with
        | Some (c, s, m) ->
            (match g.sched with
            | Some _ -> cycles := max !cycles c
            | None ->
                (* full-device schedules share qubits: serialize *)
                cycles := !cycles + c);
            swaps := !swaps + s;
            merged := !merged + m
        | None -> begin
            (* region pattern could not finish (should not happen; the
               full schedule is the checked fallback) *)
            match Schedule.estimate ~remaining:sub ~mapping (Lazy.force full) with
            | Some (c, s, m) ->
                cycles := !cycles + c;
                swaps := !swaps + s;
                merged := !merged + m
            | None -> failwith "Predict.estimate: full ATA schedule failed to cover"
          end)
      groups;
    { cycles = !cycles; swaps = !swaps; merged = !merged; gates }
  end

let materialize ?(use_regions = true) ~arch ~program ~remaining ~mapping () =
  let n_phys = Arch.qubit_count arch in
  let circuit = Circuit.create n_phys in
  if Graph.edge_count remaining = 0 then circuit
  else begin
    let groups = groups_of ~use_regions arch remaining mapping in
    let full = lazy (Ata.schedule arch) in
    List.iter
      (fun g ->
        let sub = subgraph_of_component remaining g.logical in
        if Graph.edge_count sub > 0 then begin
          let restricted = Program.make sub (Program.interaction program) in
          let sched = match g.sched with Some s -> s | None -> Lazy.force full in
          let r = Schedule.realize ~program:restricted ~mapping ~n_phys sched in
          List.iter (Circuit.add circuit) (Circuit.gates r.circuit);
          if List.length r.emitted < Graph.edge_count sub then begin
            (* region schedule fell short (misaligned box, etc.): finish
               the leftover edges on the checked full-device schedule *)
            let leftover = Graph.copy sub in
            List.iter (fun (u, v) -> Graph.remove_edge leftover u v) r.emitted;
            let rest = Program.make leftover (Program.interaction program) in
            let r2 = Schedule.realize ~program:rest ~mapping ~n_phys (Lazy.force full) in
            List.iter (Circuit.add circuit) (Circuit.gates r2.circuit);
            if List.length r2.emitted < Graph.edge_count leftover then
              failwith "Predict.materialize: ATA completion incomplete"
          end
        end)
      groups;
    circuit
  end
