(** Compiler configuration.

    The defaults reproduce the paper's full system ("ours"); the flags
    exist for the §5.4-style ablations and the pure-greedy / pure-ATA
    arms of Fig 17. *)

type t = {
  use_coloring : bool;
      (** schedule executable gates from a conflict-graph independent set
          (§6.2); the conflict graph is also how crosstalk constraints
          enter, so [crosstalk_aware] implies this path.  Off (default) =
          first-fit maximal set, which measures slightly better when
          crosstalk is not modelled (see the ablation bench) *)
  use_matching : bool;
      (** commit a qubit-disjoint set of simultaneous SWAPs per cycle via
          greedy weighted matching (§6.2); off = only the single heaviest
          candidate SWAP per cycle (the per-gate style of the simpler
          baselines) *)
  use_selector : bool;
      (** record greedy-prefix + ATA-completion checkpoints and pick the
          best final circuit (§6.4, Theorem 6.1) *)
  use_regions : bool;  (** range detection in ATA prediction (§6.3) *)
  noise_aware : bool;
      (** weight candidate SWAPs by link error rates (§5.3); needs a
          noise model *)
  crosstalk_aware : bool;
      (** add crosstalk conflicts (adjacent parallel 2q gates) to the
          scheduling conflict graph (§6.2) *)
  alpha : float;  (** depth weight in the selector cost F (§6.4) *)
  predict_stride : int option;
      (** predict every k mapping-changing cycles; [None] = automatic
          (n/8, at least 1) *)
  max_greedy_cycles : int option;
      (** abort greedy and fall back to the ATA completion after this many
          cycles; [None] = automatic *)
}

val default : t

val pure_greedy : t
(** Selector off: the "greedy" arm. *)

val no_noise : t -> t
