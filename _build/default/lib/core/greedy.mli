(** Greedy processing component (paper §6.2).

    Cycle loop: (1) collect hardware-compliant gates by scanning coupling
    edges, pick a conflict-free set via graph coloring (largest color
    class); (2) propose candidate SWAPs that move separated frontier pairs
    closer, weighted by distance gain and (optionally) link error rate, and
    commit a qubit-disjoint subset via weighted matching; (3) if a cycle
    makes no progress, force one SWAP along the shortest path of the
    closest separated pair.

    The engine exposes a [step] interface so the pipeline can interleave
    ATA predictions and take checkpoints. *)

type t

val create :
  ?config:Config.t ->
  ?noise:Qcr_arch.Noise.t ->
  arch:Qcr_arch.Arch.t ->
  program:Qcr_circuit.Program.t ->
  init:Qcr_circuit.Mapping.t ->
  unit ->
  t

val finished : t -> bool

val step : t -> bool
(** Advance one cycle.  Returns [true] if the qubit mapping changed. *)

val cycle : t -> int

val swaps : t -> int

val remaining : t -> Qcr_graph.Graph.t
(** Live view (do not mutate). *)

val remaining_gate_count : t -> int

val mapping : t -> Qcr_circuit.Mapping.t
(** Live view (do not mutate). *)

val circuit : t -> Qcr_circuit.Circuit.t
(** Gates committed so far, physical wires, unmerged. *)

val run_to_completion : t -> unit

val run_until : t -> int -> unit
(** Step until [cycle t >= limit] or finished. *)
