type t = {
  use_coloring : bool;
  use_matching : bool;
  use_selector : bool;
  use_regions : bool;
  noise_aware : bool;
  crosstalk_aware : bool;
  alpha : float;
  predict_stride : int option;
  max_greedy_cycles : int option;
}

let default =
  {
    use_coloring = false;
    use_matching = true;
    use_selector = true;
    use_regions = true;
    noise_aware = true;
    crosstalk_aware = false;
    alpha = 0.5;
    predict_stride = None;
    max_greedy_cycles = None;
  }

let pure_greedy = { default with use_selector = false }

let no_noise t = { t with noise_aware = false }
