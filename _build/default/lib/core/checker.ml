module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Circuit = Qcr_circuit.Circuit
module Gate = Qcr_circuit.Gate
module Program = Qcr_circuit.Program
module Mapping = Qcr_circuit.Mapping

type violation = string

let certify ~arch ~program (r : Pipeline.result) =
  let violations = ref [] in
  let complain fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let device = Arch.graph arch in
  let problem = Program.graph program in
  let n_log = Program.qubit_count program in
  let mapping = Mapping.copy r.Pipeline.initial in
  (* the edge multiset still owed; realized edges are removed *)
  let owed = Graph.copy problem in
  let cx = ref 0 in
  let interaction_at p q =
    let a = Mapping.log_of_phys mapping p and b = Mapping.log_of_phys mapping q in
    if a >= n_log || b >= n_log then
      complain "interaction on dummy wire(s) %d,%d (logical %d,%d)" p q a b
    else if not (Graph.has_edge owed a b) then
      complain "interaction between logical %d,%d not owed (duplicate or absent edge)" a b
    else Graph.remove_edge owed a b
  in
  List.iter
    (fun g ->
      cx := !cx + Gate.cx_cost g;
      match g with
      | Gate.Cx (p, q) | Gate.Cz (p, q) | Gate.Cphase (p, q, _) | Gate.Rzz (p, q, _)
      | Gate.Swap (p, q) | Gate.Swap_interact (p, q, _) | Gate.Swap_rzz (p, q, _) ->
          if not (Graph.has_edge device p q) then
            complain "2q gate on uncoupled wires %d,%d" p q;
          (match g with
          | Gate.Cz _ | Gate.Cphase _ | Gate.Rzz _ -> interaction_at p q
          | Gate.Swap_interact _ | Gate.Swap_rzz _ ->
              interaction_at p q;
              Mapping.apply_swap mapping p q
          | Gate.Swap _ -> Mapping.apply_swap mapping p q
          | Gate.Cx _ -> () (* lowered circuits are certified pre-lowering *)
          | _ -> ())
      | Gate.H _ | Gate.X _ | Gate.Rx _ | Gate.Rz _ | Gate.Measure _ | Gate.Barrier -> ())
    (Circuit.gates r.Pipeline.circuit);
  if Graph.edge_count owed > 0 then
    complain "%d program edges never realized" (Graph.edge_count owed);
  if not (Mapping.equal mapping r.Pipeline.final) then
    complain "replayed final mapping differs from the reported one";
  if !cx <> r.Pipeline.cx then complain "CX metric %d <> recomputed %d" r.Pipeline.cx !cx;
  let depth = Circuit.depth2q r.Pipeline.circuit in
  if depth <> r.Pipeline.depth then
    complain "depth metric %d <> recomputed %d" r.Pipeline.depth depth;
  match !violations with [] -> Ok () | vs -> Error (List.rev vs)

let certify_exn ~arch ~program r =
  match certify ~arch ~program r with
  | Ok () -> ()
  | Error vs -> failwith ("Checker.certify: " ^ String.concat "; " vs)
