(** ATA pattern prediction (paper §6.3).

    Given the remaining problem graph and the current qubit mapping, the
    predictor bounds what rigidly following the all-to-all pattern would
    cost for the rest of the circuit.  The range detector first splits the
    remaining graph into connected components, encloses each component's
    current physical footprint in a same-shape sub-device region, and
    merges overlapping regions; disjoint regions run the pattern in
    parallel, so the depth bound is the max over regions while SWAPs add
    up. *)

type estimate = {
  cycles : int;
  swaps : int;
  merged : int;  (** interaction+swap fusions the merge pass will apply *)
  gates : int;  (** remaining program edges the completion must emit *)
}

val estimate :
  ?use_regions:bool ->
  arch:Qcr_arch.Arch.t ->
  remaining:Qcr_graph.Graph.t ->
  mapping:Qcr_circuit.Mapping.t ->
  unit ->
  estimate
(** Never fails: the full-device schedule is a universal fallback (its ATA
    property is machine-checked). *)

val materialize :
  ?use_regions:bool ->
  arch:Qcr_arch.Arch.t ->
  program:Qcr_circuit.Program.t ->
  remaining:Qcr_graph.Graph.t ->
  mapping:Qcr_circuit.Mapping.t ->
  unit ->
  Qcr_circuit.Circuit.t
(** Emit the actual ATA completion circuit for the remaining gates; the
    mapping is mutated to the final placement.  Regions being qubit-
    disjoint, per-region circuits are concatenated and regain their
    parallelism in ASAP layering. *)
