(** Initial qubit placement (the "Initial mapping" stage of Fig 18).

    For clique-like inputs every initial mapping behaves the same (§4,
    Discussion), so the pipeline keeps the identity.  For sparse inputs a
    locality-aware placement pays for itself; [anneal] minimizes the total
    coupling distance over program edges by simulated annealing over
    physical-slot exchanges (the quadratic objective 2QAN popularized). *)

val quadratic_cost :
  Qcr_arch.Arch.t -> Qcr_graph.Graph.t -> Qcr_circuit.Mapping.t -> int
(** Sum over problem edges of the device distance between endpoints. *)

val anneal :
  ?seed:int ->
  ?moves:int ->
  ?noise:Qcr_arch.Noise.t ->
  Qcr_arch.Arch.t ->
  Qcr_graph.Graph.t ->
  Qcr_circuit.Mapping.t
(** Annealed placement; [moves] defaults to [300 * n].  Deterministic for
    a fixed seed.  With [noise], hop costs are error-weighted (a link of
    error [e] costs [1 + 30 e] hops), steering the placement toward
    low-error regions of the device (§5.3). *)

val candidates :
  ?noise:Qcr_arch.Noise.t ->
  Qcr_arch.Arch.t -> Qcr_circuit.Program.t -> Qcr_circuit.Mapping.t list
(** The identity plus a few annealed restarts (deduplicated), ordered by
    quadratic cost.  The pipeline compiles each when a noise model makes
    the final choice fidelity-dependent (§5.3). *)

val auto :
  ?noise:Qcr_arch.Noise.t ->
  Qcr_arch.Arch.t -> Qcr_circuit.Program.t -> Qcr_circuit.Mapping.t
(** The pipeline default: the best of the identity and a few annealed
    restarts under the quadratic cost (more restarts for sparse problems,
    where placement matters most). *)
