(** Multilevel (p > 1) QAOA compilation.

    A p-level QAOA circuit repeats the permutable interaction block p
    times, with fresh (gamma, beta) angles per level and mixers between.
    Because every block's operators commute internally, each block is
    compiled independently: level l starts from level l-1's final mapping
    (no extra SWAPs to restore positions are needed — the next block is
    order-free, another payoff of permutability).  The paper evaluates
    p = 1; this extends the compiler naturally. *)

val compile :
  ?config:Config.t ->
  ?noise:Qcr_arch.Noise.t ->
  ?init:Qcr_circuit.Mapping.t ->
  ?restore:bool ->
  Qcr_arch.Arch.t ->
  Qcr_graph.Graph.t ->
  angles:(float * float) array ->
  Pipeline.result
(** [angles.(l) = (gamma_l, beta_l)]; must be non-empty.  The returned
    result's [strategy] is the first level's.  With [restore] (default
    false), token-swapping cycles are appended so the final mapping equals
    the initial one — useful when downstream tooling expects qubit [i] on
    its starting wire. *)

val logical_circuit :
  Qcr_graph.Graph.t -> angles:(float * float) array -> Qcr_circuit.Circuit.t
(** Reference (unrouted) p-level circuit, for simulation and tests. *)
