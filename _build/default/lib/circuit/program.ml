module Graph = Qcr_graph.Graph

type interaction =
  | Qaoa_maxcut of { gamma : float; beta : float }
  | Qaoa_level of { gamma : float; beta : float }
  | Two_local of { theta : float }
  | Bare_cz

type t = { name : string; graph : Graph.t; interaction : interaction }

let make ?(name = "program") graph interaction = { name; graph; interaction }

let graph t = t.graph

let interaction t = t.interaction

let name t = t.name

let qubit_count t = Graph.vertex_count t.graph

let edge_count t = Graph.edge_count t.graph

let edge_gate t u v =
  match t.interaction with
  | Qaoa_maxcut { gamma; _ } | Qaoa_level { gamma; _ } -> Gate.Cphase (u, v, 2.0 *. gamma)
  | Two_local { theta } -> Gate.Rzz (u, v, theta)
  | Bare_cz -> Gate.Cz (u, v)

let prologue t =
  match t.interaction with
  | Qaoa_maxcut _ -> List.init (qubit_count t) (fun q -> Gate.H q)
  | Qaoa_level _ | Two_local _ | Bare_cz -> []

let epilogue t =
  match t.interaction with
  | Qaoa_maxcut { gamma; beta } | Qaoa_level { gamma; beta } ->
      (* The maxcut phase separator e^{-i gamma (1-Z_u Z_v)/2} per edge is
         CPHASE(2 gamma) plus Rz(-gamma) on both endpoints (up to global
         phase); the Rz corrections commute with everything diagonal, so
         we fold them here and the edge gates stay single two-qubit
         operators. *)
      let rz =
        List.concat_map
          (fun q ->
            let d = float_of_int (Graph.degree t.graph q) in
            if d = 0.0 then [] else [ Gate.Rz (q, -.gamma *. d) ])
          (List.init (qubit_count t) (fun q -> q))
      in
      rz @ List.init (qubit_count t) (fun q -> Gate.Rx (q, 2.0 *. beta))
  | Two_local _ | Bare_cz -> []

let logical_circuit t =
  let c = Circuit.create (qubit_count t) in
  Circuit.add_list c (prologue t);
  Graph.iter_edges (fun u v -> Circuit.add c (edge_gate t u v)) t.graph;
  Circuit.add_list c (epilogue t);
  c

let with_angles t ~gamma ~beta =
  match t.interaction with
  | Qaoa_maxcut _ -> { t with interaction = Qaoa_maxcut { gamma; beta } }
  | Qaoa_level _ -> { t with interaction = Qaoa_level { gamma; beta } }
  | Two_local _ | Bare_cz -> t
