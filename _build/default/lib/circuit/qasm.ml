let gate_line buffer g =
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer s; Buffer.add_char buffer '\n') fmt in
  match g with
  | Gate.H q -> p "h q[%d];" q
  | Gate.X q -> p "x q[%d];" q
  | Gate.Rx (q, t) -> p "rx(%.12g) q[%d];" t q
  | Gate.Rz (q, t) -> p "rz(%.12g) q[%d];" t q
  | Gate.Cx (a, b) -> p "cx q[%d],q[%d];" a b
  | Gate.Cz (a, b) -> p "cz q[%d],q[%d];" a b
  | Gate.Cphase (a, b, t) -> p "cp(%.12g) q[%d],q[%d];" t a b
  | Gate.Rzz (a, b, t) ->
      (* rzz = cx; rz; cx *)
      p "cx q[%d],q[%d];" a b;
      p "rz(%.12g) q[%d];" t b;
      p "cx q[%d],q[%d];" a b
  | Gate.Swap (a, b) -> p "swap q[%d],q[%d];" a b
  | Gate.Swap_interact (a, b, t) ->
      (* cp followed by swap; QASM has no fused primitive *)
      p "cp(%.12g) q[%d],q[%d];" t a b;
      p "swap q[%d],q[%d];" a b
  | Gate.Swap_rzz (a, b, t) ->
      p "cx q[%d],q[%d];" a b;
      p "rz(%.12g) q[%d];" t b;
      p "cx q[%d],q[%d];" a b;
      p "swap q[%d],q[%d];" a b
  | Gate.Measure q -> p "measure q[%d] -> c[%d];" q q
  | Gate.Barrier -> p "barrier q;"

let to_string circuit =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  Buffer.add_string buffer
    (Printf.sprintf "qreg q[%d];\ncreg c[%d];\n" (Circuit.qubit_count circuit)
       (Circuit.qubit_count circuit));
  List.iter (gate_line buffer) (Circuit.gates circuit);
  Buffer.contents buffer

let write_file path circuit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string circuit))

(* ------------------------------------------------------------------ *)
(* Import: a small recursive-descent parser for the dialect emitted
   above.  One quantum register, the qelib1 gates we use, no gate
   definitions or classical control. *)

let strip_comment line =
  match String.index_opt line '/' with
  | Some i when i + 1 < String.length line && line.[i + 1] = '/' -> String.sub line 0 i
  | _ -> line

let trim = String.trim

(* "q[3]" -> 3 *)
let parse_qubit token =
  let token = trim token in
  try Scanf.sscanf token "q[%d]" (fun i -> Ok i)
  with Scanf.Scan_failure _ | Failure _ | End_of_file ->
    Error (Printf.sprintf "bad qubit reference %S" token)

let parse_angle text =
  (* angles are printed with %.12g; also accept "pi"-style multiples *)
  let text = trim text in
  match float_of_string_opt text with
  | Some f -> Ok f
  | None -> begin
      let pi = Float.pi in
      match text with
      | "pi" -> Ok pi
      | "-pi" -> Ok (-.pi)
      | "pi/2" -> Ok (pi /. 2.0)
      | "-pi/2" -> Ok (-.pi /. 2.0)
      | "pi/4" -> Ok (pi /. 4.0)
      | _ -> Error (Printf.sprintf "bad angle %S" text)
    end

let split_args text = List.map trim (String.split_on_char ',' text)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let parse_statement ~line_no stmt =
  let stmt = trim stmt in
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" line_no m)) fmt in
  let with_args name rest k =
    ignore name;
    k (split_args rest)
  in
  let one_qubit ctor rest =
    with_args "" rest (function
      | [ q ] ->
          let* q = parse_qubit q in
          Ok (Some (ctor q))
      | _ -> fail "expected one qubit")
  in
  let two_qubit ctor rest =
    with_args "" rest (function
      | [ a; b ] ->
          let* a = parse_qubit a in
          let* b = parse_qubit b in
          Ok (Some (ctor a b))
      | _ -> fail "expected two qubits")
  in
  let rotation ctor params rest =
    let* theta = parse_angle params in
    one_qubit (fun q -> ctor q theta) rest
  in
  if stmt = "" then Ok None
  else if stmt = "barrier q" then Ok (Some Gate.Barrier)
  else begin
    (* split "name(params) args" or "name args" *)
    match String.index_opt stmt ' ' with
    | None -> fail "missing operands in %S" stmt
    | Some space -> begin
        let head = String.sub stmt 0 space in
        let rest = String.sub stmt (space + 1) (String.length stmt - space - 1) in
        let name, params =
          match String.index_opt head '(' with
          | Some lp when String.length head > 0 && head.[String.length head - 1] = ')' ->
              ( String.sub head 0 lp,
                String.sub head (lp + 1) (String.length head - lp - 2) )
          | _ -> (head, "")
        in
        match name with
        | "OPENQASM" | "include" | "qreg" | "creg" -> Ok None
        | "h" -> one_qubit (fun q -> Gate.H q) rest
        | "x" -> one_qubit (fun q -> Gate.X q) rest
        | "rx" -> rotation (fun q t -> Gate.Rx (q, t)) params rest
        | "rz" -> rotation (fun q t -> Gate.Rz (q, t)) params rest
        | "cx" -> two_qubit (fun a b -> Gate.Cx (a, b)) rest
        | "cz" -> two_qubit (fun a b -> Gate.Cz (a, b)) rest
        | "cp" ->
            let* theta = parse_angle params in
            two_qubit (fun a b -> Gate.Cphase (a, b, theta)) rest
        | "swap" -> two_qubit (fun a b -> Gate.Swap (a, b)) rest
        | "measure" -> begin
            (* "q[i] -> c[i]" *)
            match String.split_on_char '-' rest with
            | q :: _ ->
                let* q = parse_qubit (trim q) in
                Ok (Some (Gate.Measure q))
            | [] -> fail "bad measure"
          end
        | other -> fail "unsupported gate %S" other
      end
  end

let of_string text =
  let lines = String.split_on_char '\n' text in
  (* first pass: find the register size *)
  let size = ref None in
  List.iter
    (fun line ->
      let line = trim (strip_comment line) in
      try Scanf.sscanf line "qreg q[%d];" (fun n -> size := Some n)
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> ())
    lines;
  match !size with
  | None -> Error "no qreg declaration found"
  | Some n -> begin
      let circuit = Circuit.create n in
      let error = ref None in
      List.iteri
        (fun idx line ->
          if !error = None then begin
            let line = trim (strip_comment line) in
            (* statements end with ';'; several may share a line *)
            let statements = String.split_on_char ';' line in
            List.iter
              (fun stmt ->
                if !error = None then
                  match parse_statement ~line_no:(idx + 1) stmt with
                  | Ok (Some g) -> Circuit.add circuit g
                  | Ok None -> ()
                  | Error e -> error := Some e)
              statements
          end)
        lines;
      match !error with None -> Ok circuit | Some e -> Error e
    end

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
