(* All two-qubit gates in the IR are permutations-with-phases up to the H
   conjugation in CZ, so lowering only needs CX + Rz (+ H).  The fused
   SWAP gates use 3 CX with interleaved Rz: writing the circuit's action
   on basis state (a, b), phases contributed on wires between the CXs are
   p*a + r*b + t*(a xor b) with a xor b = a + b - 2ab; choosing t kills or
   creates the ab term and p, r absorb the linear residue.  Global phases
   are dropped (Rz vs the phase gate P differ by one). *)

let gate g =
  match g with
  | Gate.Cz (a, b) -> [ Gate.H b; Gate.Cx (a, b); Gate.H b ]
  | Gate.Cphase (a, b, theta) ->
      (* phase theta * ab: P_a(t/2) P_b(t/2) . CX Rz_b(-t/2)-as-P CX *)
      [
        Gate.Cx (a, b);
        Gate.Rz (b, -.theta /. 2.0);
        Gate.Cx (a, b);
        Gate.Rz (a, theta /. 2.0);
        Gate.Rz (b, theta /. 2.0);
      ]
  | Gate.Rzz (a, b, theta) -> [ Gate.Cx (a, b); Gate.Rz (b, theta); Gate.Cx (a, b) ]
  | Gate.Swap (a, b) -> [ Gate.Cx (a, b); Gate.Cx (b, a); Gate.Cx (a, b) ]
  | Gate.Swap_interact (a, b, theta) ->
      (* SWAP . CPHASE(theta): t = -theta/2, p = r = theta/2 *)
      [
        Gate.Cx (a, b);
        Gate.Rz (a, theta /. 2.0);
        Gate.Rz (b, -.theta /. 2.0);
        Gate.Cx (b, a);
        Gate.Rz (a, theta /. 2.0);
        Gate.Cx (a, b);
      ]
  | Gate.Swap_rzz (a, b, theta) ->
      (* SWAP . RZZ(theta): t = theta, p = r = 0 *)
      [ Gate.Cx (a, b); Gate.Rz (b, theta); Gate.Cx (b, a); Gate.Cx (a, b) ]
  | Gate.H _ | Gate.X _ | Gate.Rx _ | Gate.Rz _ | Gate.Cx _ | Gate.Measure _ | Gate.Barrier ->
      [ g ]

let circuit c =
  let out = Circuit.create (Circuit.qubit_count c) in
  List.iter (fun g -> Circuit.add_list out (gate g)) (Circuit.gates c);
  out
