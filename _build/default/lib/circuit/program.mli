(** Input-dependent permutable-operator programs (paper §2.1).

    A program is a problem graph plus the kind of two-qubit interaction
    applied on every edge; all interactions commute, so the compiler may
    schedule edges in any order.  [logical_circuit] materializes one valid
    (arbitrary-order) circuit, e.g. for the fixed-order baselines or the
    simulator. *)

type interaction =
  | Qaoa_maxcut of { gamma : float; beta : float }
      (** one QAOA level: H on all wires, CPHASE(2*gamma)+Rz per edge,
          RX(2*beta) mixer *)
  | Qaoa_level of { gamma : float; beta : float }
      (** an inner QAOA level: like [Qaoa_maxcut] but without the H wall
          (levels 2..p of a multilevel circuit) *)
  | Two_local of { theta : float }  (** RZZ(theta) per edge *)
  | Bare_cz  (** structural CZ per edge; used by pure mapping benchmarks *)

type t

val make : ?name:string -> Qcr_graph.Graph.t -> interaction -> t

val graph : t -> Qcr_graph.Graph.t

val interaction : t -> interaction

val name : t -> string

val qubit_count : t -> int

val edge_count : t -> int

val edge_gate : t -> int -> int -> Gate.t
(** The two-qubit gate this program places on edge (u, v). *)

val prologue : t -> Gate.t list
(** Gates before the interaction block (H wall for QAOA). *)

val epilogue : t -> Gate.t list
(** Gates after the interaction block (RX mixer + measures for QAOA). *)

val logical_circuit : t -> Circuit.t
(** Prologue, every edge gate in lexicographic edge order, epilogue. *)

val with_angles : t -> gamma:float -> beta:float -> t
(** Replace QAOA angles (no-op for other interactions). *)
