(** Lowering to the native {CX, 1q} basis (paper §7.1: "we decompose the
    compiled circuit into single-qubit basis gates and CX gates").

    The decompositions used (all standard):
    - CZ          = H(t) CX H(t)
    - CPHASE(θ)   = Rz(θ/2) on both + CX Rz(-θ/2) CX        (2 CX)
    - RZZ(θ)      = CX Rz(θ) CX                              (2 CX)
    - SWAP        = CX CX CX                                 (3 CX)
    - SWAP∘CPHASE = CX Rz CX Rz-corrections CX               (3 CX)
    - SWAP∘RZZ    likewise                                   (3 CX)

    [Circuit.cx_count] of the input equals the number of [Cx] gates in the
    output (that identity is tested), and the lowered circuit is verified
    unitary-equivalent in the test suite. *)

val circuit : Circuit.t -> Circuit.t
(** Lower every gate; [H]/[X]/[Rx]/[Rz]/[Cx]/[Measure]/[Barrier] pass
    through unchanged. *)

val gate : Gate.t -> Gate.t list
