(** OpenQASM 2.0 export and import.

    Export lowers the fused gates to their primitive sequences (QASM has
    no fused SWAP+interaction).  Import parses the dialect this module
    emits — the common single-register subset of OpenQASM 2.0 with the
    qelib1 gates used here (h, x, rx, rz, cx, cz, cp, swap, measure,
    barrier) — enabling round trips and external-circuit loading. *)

val to_string : Circuit.t -> string

val write_file : string -> Circuit.t -> unit

val of_string : string -> (Circuit.t, string) result
(** Parse a QASM program.  Errors carry the offending line. *)

val read_file : string -> (Circuit.t, string) result
