lib/circuit/circuit.ml: Array Float Format Gate Hashtbl List Option Printf Qcr_arch Qcr_graph
