lib/circuit/program.ml: Circuit Gate List Qcr_graph
