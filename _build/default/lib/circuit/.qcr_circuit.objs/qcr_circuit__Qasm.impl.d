lib/circuit/qasm.ml: Buffer Circuit Float Fun Gate List Printf Scanf String
