lib/circuit/lower.mli: Circuit Gate
