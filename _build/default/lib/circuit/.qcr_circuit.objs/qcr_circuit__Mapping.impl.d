lib/circuit/mapping.ml: Array Qcr_util
