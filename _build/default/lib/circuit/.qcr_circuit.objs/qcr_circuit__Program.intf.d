lib/circuit/program.mli: Circuit Gate Qcr_graph
