lib/circuit/circuit.mli: Format Gate Qcr_arch
