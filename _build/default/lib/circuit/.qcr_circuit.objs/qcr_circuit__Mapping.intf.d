lib/circuit/mapping.mli: Qcr_util
