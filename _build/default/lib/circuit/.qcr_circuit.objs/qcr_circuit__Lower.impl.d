lib/circuit/lower.ml: Circuit Gate List
