type t =
  | H of int
  | X of int
  | Rx of int * float
  | Rz of int * float
  | Cx of int * int
  | Cz of int * int
  | Cphase of int * int * float
  | Rzz of int * int * float
  | Swap of int * int
  | Swap_interact of int * int * float
  | Swap_rzz of int * int * float
  | Measure of int
  | Barrier

let qubits = function
  | H q | X q | Rx (q, _) | Rz (q, _) | Measure q -> [ q ]
  | Cx (a, b) | Cz (a, b) | Cphase (a, b, _) | Rzz (a, b, _) | Swap (a, b)
  | Swap_interact (a, b, _) | Swap_rzz (a, b, _) ->
      [ a; b ]
  | Barrier -> []

let is_two_qubit = function
  | Cx _ | Cz _ | Cphase _ | Rzz _ | Swap _ | Swap_interact _ | Swap_rzz _ -> true
  | H _ | X _ | Rx _ | Rz _ | Measure _ | Barrier -> false

let cx_cost = function
  | Cx _ | Cz _ -> 1
  | Cphase _ | Rzz _ -> 2
  | Swap _ | Swap_interact _ | Swap_rzz _ -> 3
  | H _ | X _ | Rx _ | Rz _ | Measure _ | Barrier -> 0

let map_qubits f = function
  | H q -> H (f q)
  | X q -> X (f q)
  | Rx (q, t) -> Rx (f q, t)
  | Rz (q, t) -> Rz (f q, t)
  | Cx (a, b) -> Cx (f a, f b)
  | Cz (a, b) -> Cz (f a, f b)
  | Cphase (a, b, t) -> Cphase (f a, f b, t)
  | Rzz (a, b, t) -> Rzz (f a, f b, t)
  | Swap (a, b) -> Swap (f a, f b)
  | Swap_interact (a, b, t) -> Swap_interact (f a, f b, t)
  | Swap_rzz (a, b, t) -> Swap_rzz (f a, f b, t)
  | Measure q -> Measure (f q)
  | Barrier -> Barrier

let equal a b = a = b

let pp fmt = function
  | H q -> Format.fprintf fmt "h q%d" q
  | X q -> Format.fprintf fmt "x q%d" q
  | Rx (q, t) -> Format.fprintf fmt "rx(%g) q%d" t q
  | Rz (q, t) -> Format.fprintf fmt "rz(%g) q%d" t q
  | Cx (a, b) -> Format.fprintf fmt "cx q%d,q%d" a b
  | Cz (a, b) -> Format.fprintf fmt "cz q%d,q%d" a b
  | Cphase (a, b, t) -> Format.fprintf fmt "cp(%g) q%d,q%d" t a b
  | Rzz (a, b, t) -> Format.fprintf fmt "rzz(%g) q%d,q%d" t a b
  | Swap (a, b) -> Format.fprintf fmt "swap q%d,q%d" a b
  | Swap_interact (a, b, t) -> Format.fprintf fmt "swap+cp(%g) q%d,q%d" t a b
  | Swap_rzz (a, b, t) -> Format.fprintf fmt "swap+rzz(%g) q%d,q%d" t a b
  | Measure q -> Format.fprintf fmt "measure q%d" q
  | Barrier -> Format.fprintf fmt "barrier"

let to_string g = Format.asprintf "%a" pp g
