(** Quantum gates.

    The permutable-operator programs of the paper (QAOA, 2-local
    Hamiltonian simulation) need only a small native set: single-qubit
    rotations/H, CX/CZ, the parameterized two-qubit interaction (CPHASE or
    RZZ), SWAP, and the merged SWAP+interaction that the structured
    patterns produce (a SWAP immediately following a CPHASE on the same
    pair costs 3 CX total, Fig 6/7). *)

type t =
  | H of int
  | X of int
  | Rx of int * float
  | Rz of int * float
  | Cx of int * int
  | Cz of int * int
  | Cphase of int * int * float  (** controlled-phase; the QAOA ZZ term *)
  | Rzz of int * int * float     (** exp(-i t Z⊗Z/2), 2-local simulation *)
  | Swap of int * int
  | Swap_interact of int * int * float
      (** merged SWAP ∘ CPHASE(theta) on the same pair: 3 CX *)
  | Swap_rzz of int * int * float
      (** merged SWAP ∘ RZZ(theta) on the same pair: 3 CX *)
  | Measure of int
  | Barrier

val qubits : t -> int list
(** Qubits touched, in gate order ([] for [Barrier]). *)

val is_two_qubit : t -> bool

val cx_cost : t -> int
(** CX gates after decomposition to the {CX, 1q} basis:
    CX/CZ = 1, CPHASE/RZZ = 2, SWAP = 3, SWAP+interact = 3, 1q = 0. *)

val map_qubits : (int -> int) -> t -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
