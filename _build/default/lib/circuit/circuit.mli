(** Quantum circuits: an ordered gate sequence over [qubit_count] wires.

    Compiled circuits hold physical qubit indices; program circuits hold
    logical indices.  Metrics follow the paper's §7.1 definitions: depth is
    the critical-path length with each gate taking one cycle, and the gate
    count is the CX count after decomposing to the {CX, 1q} basis. *)

type t

val create : int -> t
(** Empty circuit on [n] wires. *)

val qubit_count : t -> int

val add : t -> Gate.t -> unit
(** Append a gate.
    @raise Invalid_argument if a qubit index is out of range. *)

val add_list : t -> Gate.t list -> unit

val gates : t -> Gate.t list
(** Gates in program order. *)

val gate_count : t -> int

val two_qubit_gates : t -> (int * int) list
(** Unordered qubit pairs of every 2q gate in order. *)

val cx_count : t -> int
(** Total CX after decomposition (§7.1 "two-qubit gate count"). *)

val depth : t -> int
(** Critical path over all gates except barriers/measures. *)

val depth2q : t -> int
(** Critical path counting only two-qubit gates (the swap-network cycle
    count used throughout §3). *)

val layers : t -> Gate.t list list
(** ASAP layering: greedy partition into cycles of disjoint gates
    respecting program order. *)

val map_qubits : (int -> int) -> t -> t
(** Relabel wires (e.g. apply an initial mapping). *)

val concat : t -> t -> t
(** New circuit running [a] then [b]; wire counts must agree. *)

val merge_swaps : t -> t
(** Fuse each [Cphase]/[Cz]/[Rzz] immediately followed by a [Swap] on the
    same pair (no intervening gate on either qubit) into
    [Swap_interact]/[Swap_rzz], saving 2 CX per fusion — the pattern the
    structured ATA schedules produce at every computation+swap step
    ([Cz] fuses as [Swap_interact] at angle pi). *)

val validate_coupling : Qcr_arch.Arch.t -> t -> (unit, string) result
(** Check every 2q gate acts on a coupled pair. *)

val log_fidelity : Qcr_arch.Noise.t -> t -> float
(** Sum over gates of [log (1 - error)]: 2q gates contribute
    [cx_cost * log(1 - cx_error(edge))], 1q gates their 1q error.
    [exp] of this is the estimated success probability (ESP). *)

val copy : t -> t

val pp : Format.formatter -> t -> unit
