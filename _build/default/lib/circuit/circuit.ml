module Arch = Qcr_arch.Arch
module Noise = Qcr_arch.Noise

type t = { n : int; mutable rev_gates : Gate.t list; mutable count : int }

let create n =
  if n < 0 then invalid_arg "Circuit.create: negative wire count";
  { n; rev_gates = []; count = 0 }

let qubit_count t = t.n

let add t g =
  List.iter
    (fun q -> if q < 0 || q >= t.n then invalid_arg "Circuit.add: qubit out of range")
    (Gate.qubits g);
  t.rev_gates <- g :: t.rev_gates;
  t.count <- t.count + 1

let add_list t gs = List.iter (add t) gs

let gates t = List.rev t.rev_gates

let gate_count t = t.count

let two_qubit_gates t =
  List.filter_map
    (fun g ->
      if Gate.is_two_qubit g then
        match Gate.qubits g with
        | [ a; b ] -> Some (a, b)
        | _ -> None
      else None)
    (gates t)

let cx_count t = List.fold_left (fun acc g -> acc + Gate.cx_cost g) 0 (gates t)

let depth_with ~counts t =
  let busy_until = Array.make (max t.n 1) 0 in
  let total = ref 0 in
  List.iter
    (fun g ->
      match g with
      | Gate.Barrier | Gate.Measure _ -> ()
      | _ ->
          let qs = Gate.qubits g in
          if counts g then begin
            let start = List.fold_left (fun acc q -> max acc busy_until.(q)) 0 qs in
            let finish = start + 1 in
            List.iter (fun q -> busy_until.(q) <- finish) qs;
            total := max !total finish
          end)
    (gates t);
  !total

let depth t = depth_with ~counts:(fun _ -> true) t

let depth2q t = depth_with ~counts:Gate.is_two_qubit t

let layers t =
  let busy_until = Array.make (max t.n 1) 0 in
  let buckets : (int, Gate.t list) Hashtbl.t = Hashtbl.create 64 in
  let deepest = ref 0 in
  List.iter
    (fun g ->
      match g with
      | Gate.Barrier -> ()
      | _ ->
          let qs = Gate.qubits g in
          let start = List.fold_left (fun acc q -> max acc busy_until.(q)) 0 qs in
          List.iter (fun q -> busy_until.(q) <- start + 1) qs;
          deepest := max !deepest (start + 1);
          let existing = Option.value ~default:[] (Hashtbl.find_opt buckets start) in
          Hashtbl.replace buckets start (g :: existing))
    (gates t);
  List.init !deepest (fun i ->
      List.rev (Option.value ~default:[] (Hashtbl.find_opt buckets i)))

let map_qubits f t =
  let t' = create t.n in
  List.iter (fun g -> add t' (Gate.map_qubits f g)) (gates t);
  t'

let concat a b =
  if a.n <> b.n then invalid_arg "Circuit.concat: wire counts differ";
  let t = create a.n in
  List.iter (add t) (gates a);
  List.iter (add t) (gates b);
  t

(* A Cphase/Rzz followed by a Swap on the same pair — with nothing touching
   either qubit in between — fuses into Swap_interact (3 CX instead of 5).
   Single pass over program order, remembering the pending interaction per
   qubit pair. *)
let merge_swaps t =
  let arr = Array.of_list (gates t) in
  let len = Array.length arr in
  let removed = Array.make len false in
  let last_touch = Array.make (max t.n 1) (-1) in
  (* pending.(pair) = index of a fusable interaction *)
  let pending : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let norm a b = (min a b, max a b) in
  for i = 0 to len - 1 do
    match arr.(i) with
    | Gate.Cphase (a, b, _) | Gate.Rzz (a, b, _) | Gate.Cz (a, b) ->
        Hashtbl.replace pending (norm a b) i;
        last_touch.(a) <- i;
        last_touch.(b) <- i
    | Gate.Swap (a, b) -> begin
        let pair = norm a b in
        (match Hashtbl.find_opt pending pair with
        | Some j when last_touch.(a) = j && last_touch.(b) = j -> begin
            match arr.(j) with
            | Gate.Cphase (_, _, theta) ->
                arr.(j) <- Gate.Swap_interact (a, b, theta);
                removed.(i) <- true
            | Gate.Cz _ ->
                (* CZ = CPHASE(pi), so CZ+SWAP also fuses to 3 CX *)
                arr.(j) <- Gate.Swap_interact (a, b, Float.pi);
                removed.(i) <- true
            | Gate.Rzz (_, _, theta) ->
                arr.(j) <- Gate.Swap_rzz (a, b, theta);
                removed.(i) <- true
            | _ -> ()
          end
        | _ -> ());
        Hashtbl.remove pending pair;
        last_touch.(a) <- i;
        last_touch.(b) <- i
      end
    | g -> List.iter (fun q -> last_touch.(q) <- i) (Gate.qubits g)
  done;
  let t' = create t.n in
  Array.iteri (fun i g -> if not removed.(i) then add t' g) arr;
  t'

let validate_coupling arch t =
  let graph = Arch.graph arch in
  let bad = ref None in
  List.iter
    (fun g ->
      if !bad = None && Gate.is_two_qubit g then
        match Gate.qubits g with
        | [ a; b ] when not (Qcr_graph.Graph.has_edge graph a b) ->
            bad := Some (Printf.sprintf "gate %s on uncoupled pair" (Gate.to_string g))
        | _ -> ())
    (gates t);
  match !bad with None -> Ok () | Some msg -> Error msg

let log_fidelity noise t =
  List.fold_left
    (fun acc g ->
      match Gate.qubits g with
      | [ a; b ] when Gate.is_two_qubit g ->
          acc +. (float_of_int (Gate.cx_cost g) *. Noise.log_success_cx noise a b)
      | [ q ] -> begin
          match g with
          | Gate.Measure _ -> acc +. log (1.0 -. Noise.readout_error noise q)
          | _ -> acc +. log (1.0 -. Noise.sq_error noise q)
        end
      | _ -> acc)
    0.0 (gates t)

let copy t = { n = t.n; rev_gates = t.rev_gates; count = t.count }

let pp fmt t =
  Format.fprintf fmt "circuit(%d qubits, %d gates, depth %d)" t.n t.count (depth t)
