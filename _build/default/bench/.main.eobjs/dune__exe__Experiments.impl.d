bench/experiments.ml: Array Common List Printf Qcr_arch Qcr_baselines Qcr_circuit Qcr_core Qcr_graph Qcr_sim Qcr_solver Qcr_util Qcr_workloads Unix
