bench/main.ml: Arg Bechamel_suite Cmd Cmdliner Common Experiments List Printf Term Unix
