bench/main.mli:
