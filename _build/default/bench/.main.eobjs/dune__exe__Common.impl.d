bench/common.ml: Array List Printf Qcr_arch Qcr_baselines Qcr_circuit Qcr_core Qcr_graph Qcr_util Qcr_workloads
