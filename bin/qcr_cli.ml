(* Command-line front end.

   qcr_cli compile --arch heavyhex --n 64 --density 0.3 [--qasm out.qasm]
   qcr_cli ata     --arch sycamore --n 256
   qcr_cli solve   --line 5
   qcr_cli qaoa    --n 10 --rounds 20
   qcr_cli batch   jobs.json --out replies.json --repeat 2
   qcr_cli serve   [--batch jobs.json] [--listen HOST:PORT]   # JSONL protocol on stdio/TCP *)

open Cmdliner
module Arch = Qcr_arch.Arch
module Noise = Qcr_arch.Noise
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Program = Qcr_circuit.Program
module Qasm = Qcr_circuit.Qasm
module Mapping = Qcr_circuit.Mapping
module Schedule = Qcr_swapnet.Schedule
module Ata = Qcr_swapnet.Ata
module Pipeline = Qcr_core.Pipeline
module Prng = Qcr_util.Prng
module Fault = Qcr_fault.Fault

let arch_kind_of_string = function
  | "line" -> Ok Arch.Line
  | "grid" -> Ok Arch.Grid
  | "sycamore" -> Ok Arch.Sycamore
  | "grid3d" -> Ok Arch.Grid3d
  | "heavyhex" | "heavy-hex" -> Ok Arch.Heavy_hex
  | "hexagon" -> Ok Arch.Hexagon
  | s -> Error (Printf.sprintf "unknown architecture %S" s)

let arch_conv =
  let parse s =
    match arch_kind_of_string s with Ok k -> Ok k | Error e -> Error (`Msg e)
  in
  let print fmt k =
    Format.pp_print_string fmt
      (match k with
      | Arch.Line -> "line"
      | Arch.Grid -> "grid"
      | Arch.Grid3d -> "grid3d"
      | Arch.Sycamore -> "sycamore"
      | Arch.Heavy_hex -> "heavyhex"
      | Arch.Hexagon -> "hexagon"
      | Arch.Custom -> "custom")
  in
  Arg.conv (parse, print)

let arch_arg =
  Arg.(value & opt arch_conv Arch.Heavy_hex & info [ "arch" ] ~docv:"ARCH"
         ~doc:"Target architecture: line, grid, sycamore, heavyhex, hexagon.")

let n_arg =
  Arg.(value & opt int 64 & info [ "n" ] ~docv:"N" ~doc:"Problem-graph vertex count.")

let density_arg =
  Arg.(value & opt float 0.3 & info [ "density" ] ~docv:"D" ~doc:"Problem-graph density.")

let seed_arg = Arg.(value & opt int 2023 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

(* Telemetry flags, shared by every subcommand: --trace FILE captures the
   run as Chrome trace-event JSON; --metrics prints the summary tables. *)
let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write compiler telemetry as Chrome trace-event JSON to $(docv) \
               (load it in Perfetto at ui.perfetto.dev or in about://tracing).")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print the telemetry summary (per-phase spans, counters, histograms) after the run.")

let domains_arg =
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
         ~doc:"Size of the domain pool parallel kernels, trajectory sampling and the \
               portfolio compiler fan out over (default: $(b,QCR_DOMAINS), else the \
               hardware thread count). 1 runs everything sequentially; results are \
               identical for every value.")

let fault_spec_conv =
  let parse s =
    match Fault.spec_of_string s with Ok spec -> Ok spec | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun fmt spec -> Format.pp_print_string fmt (Fault.spec_to_string spec))

let inject_arg =
  Arg.(value & opt (some fault_spec_conv) None & info [ "inject" ] ~docv:"SPEC"
         ~doc:"Arm deterministic fault injection for this run. $(docv) is \
               $(b,seed=N,point:action[:trigger],...) with actions $(b,crash), \
               $(b,delay=S), $(b,corrupt) and triggers $(b,always), $(b,p=F), \
               $(b,nth=K), $(b,every=K) — e.g. \
               $(b,seed=7,service.tier:crash:p=0.1,cache.get:corrupt:nth=3). \
               Overrides $(b,QCR_FAULTS).")

(* Run [f] with the telemetry sink enabled when either flag asks for it —
   inside a root span named after the subcommand, so every trace carries
   at least the end-to-end command timing — then emit the requested
   outputs.  [--inject] arms its fault spec for the whole run (replacing
   whatever QCR_FAULTS armed at startup). *)
let with_telemetry ~cmd trace metrics domains inject f =
  Option.iter Fault.arm inject;
  Option.iter Qcr_par.Pool.set_default_domains domains;
  if trace <> None || metrics then Qcr_obs.Obs.enable ();
  let result = Qcr_obs.Obs.with_span ~cat:"cli" ("cli." ^ cmd) f in
  Option.iter
    (fun file ->
      Qcr_obs.Trace_json.write_file file;
      Printf.printf "wrote trace %s\n" file)
    trace;
  if metrics then print_string (Qcr_obs.Summary.render ());
  result

let compile_cmd =
  let qasm_arg =
    Arg.(value & opt (some string) None & info [ "qasm" ] ~docv:"FILE"
           ~doc:"Write the compiled circuit as OpenQASM 2.0.")
  in
  let noisy_arg =
    Arg.(value & flag & info [ "noise" ] ~doc:"Use a sampled calibration noise model.")
  in
  let portfolio_arg =
    Arg.(value & flag & info [ "portfolio" ]
           ~doc:"Race the ours/greedy/ata/astar compiler arms across the domain pool \
                 and keep the best circuit under the selector metric.")
  in
  let run kind n density seed qasm noisy portfolio trace metrics domains inject =
    with_telemetry ~cmd:"compile" trace metrics domains inject @@ fun () ->
    let rng = Prng.create seed in
    let graph = Generate.erdos_renyi rng ~n ~density in
    let program = Program.make graph (Program.Qaoa_maxcut { gamma = 0.4; beta = 0.35 }) in
    let arch = Arch.smallest_for kind n in
    let noise = if noisy then Some (Noise.sampled arch) else None in
    let strategy_name r =
      match r.Pipeline.strategy with
      | Pipeline.Pure_greedy -> "greedy"
      | Pipeline.Pure_ata -> "ata"
      | Pipeline.Hybrid c -> Printf.sprintf "hybrid@%d" c
    in
    Printf.printf "arch=%s qubits=%d | problem n=%d m=%d\n" (Arch.name arch)
      (Arch.qubit_count arch) n (Graph.edge_count graph);
    let r =
      if portfolio then begin
        let p = Pipeline.run_portfolio_exn (Pipeline.Request.make ?noise arch program) in
        List.iter
          (fun (name, r) ->
            Printf.printf "arm %-6s depth=%d cx=%d swaps=%d\n" name r.Pipeline.depth
              r.Pipeline.cx r.Pipeline.swap_count)
          p.Pipeline.arms;
        Printf.printf "winner=%s\n" p.Pipeline.winner_arm;
        p.Pipeline.winner
      end
      else Pipeline.run_exn (Pipeline.Request.make ?noise arch program)
    in
    Printf.printf "depth=%d cx=%d swaps=%d compile=%.3fs strategy=%s\n" r.Pipeline.depth
      r.Pipeline.cx r.Pipeline.swap_count r.Pipeline.compile_seconds (strategy_name r);
    if noisy then Printf.printf "estimated success probability: %.4f\n" (exp r.Pipeline.log_fidelity);
    Option.iter
      (fun file ->
        Qasm.write_file file r.Pipeline.circuit;
        Printf.printf "wrote %s\n" file)
      qasm
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a random QAOA instance.")
    Term.(
      const run $ arch_arg $ n_arg $ density_arg $ seed_arg $ qasm_arg $ noisy_arg
      $ portfolio_arg $ trace_arg $ metrics_arg $ domains_arg $ inject_arg)

let ata_cmd =
  let show_arg =
    Arg.(value & flag & info [ "show" ] ~doc:"Draw the schedule (one row per qubit, g = interaction, x = swap).")
  in
  let run kind n show trace metrics domains inject =
    with_telemetry ~cmd:"ata" trace metrics domains inject @@ fun () ->
    let arch = Arch.smallest_for kind n in
    let sched = Ata.schedule arch in
    let qubits = Arch.qubit_count arch in
    let missing = Schedule.uncovered_pairs ~n:qubits sched in
    Printf.printf "arch=%s qubits=%d cycles=%d swaps=%d touches=%d uncovered-pairs=%d\n"
      (Arch.name arch) qubits (Schedule.cycle_count sched) (Schedule.swap_count sched)
      (Schedule.touch_count sched) (List.length missing);
    if show then print_string (Qcr_swapnet.Render.schedule ~n:qubits sched)
  in
  Cmd.v
    (Cmd.info "ata" ~doc:"Print the structured all-to-all schedule statistics.")
    Term.(
      const run $ arch_arg $ n_arg $ show_arg $ trace_arg $ metrics_arg $ domains_arg
      $ inject_arg)

let solve_cmd =
  let line_arg =
    Arg.(value & opt int 4 & info [ "line" ] ~docv:"N" ~doc:"Clique size on an N-qubit line.")
  in
  let run n trace metrics domains inject =
    with_telemetry ~cmd:"solve" trace metrics domains inject @@ fun () ->
    let problem = Graph.complete n in
    let coupling = Generate.path n in
    let init = Mapping.identity ~logical:n ~physical:n in
    match Qcr_solver.Astar.solve ~problem ~coupling ~init () with
    | None -> print_endline "no solution found"
    | Some o ->
        Printf.printf "line-%d clique: optimal depth=%d swaps=%d (expanded %d states)\n" n
          o.Qcr_solver.Astar.depth o.Qcr_solver.Astar.swap_total o.Qcr_solver.Astar.expanded;
        List.iteri
          (fun i cycle ->
            let show = function
              | Qcr_solver.Astar.Do_gate (u, v) -> Printf.sprintf "g(%d,%d)" u v
              | Qcr_solver.Astar.Do_swap (p, q) -> Printf.sprintf "s(%d,%d)" p q
            in
            Printf.printf "  cycle %2d: %s\n" (i + 1) (String.concat " " (List.map show cycle)))
          o.Qcr_solver.Astar.cycles
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Run the depth-optimal A* solver on a small clique instance.")
    Term.(const run $ line_arg $ trace_arg $ metrics_arg $ domains_arg $ inject_arg)

let qaoa_cmd =
  let rounds_arg =
    Arg.(value & opt int 20 & info [ "rounds" ] ~docv:"R" ~doc:"Optimizer rounds.")
  in
  let run n density seed rounds trace metrics domains inject =
    with_telemetry ~cmd:"qaoa" trace metrics domains inject @@ fun () ->
    let rng = Prng.create seed in
    let graph = Generate.erdos_renyi rng ~n ~density in
    let arch = Arch.mumbai_like () in
    let noise = Noise.sampled ~seed:9 arch in
    let compile p =
      let r = Pipeline.run_exn (Pipeline.Request.make ~noise arch p) in
      (r.Pipeline.circuit, r.Pipeline.final)
    in
    let d = Qcr_sim.Qaoa.run_driver ~rounds ~noise ~graph ~compile () in
    Array.iteri (fun i e -> Printf.printf "round %2d: %.4f\n" (i + 1) e) d.Qcr_sim.Qaoa.energies;
    Printf.printf "best energy %.4f (max cut = %d)\n" d.Qcr_sim.Qaoa.best_energy
      d.Qcr_sim.Qaoa.optimum_cut
  in
  Cmd.v
    (Cmd.info "qaoa" ~doc:"Run the end-to-end QAOA loop on the Mumbai-like device.")
    Term.(
      const run $ n_arg $ density_arg $ seed_arg $ rounds_arg $ trace_arg $ metrics_arg
      $ domains_arg $ inject_arg)

(* ---------- compilation service: batch + serve ---------- *)

module Service = Qcr_service.Service
module Cache_store = Qcr_service.Cache_store
module Compile_request = Qcr_service.Compile_request
module Compile_reply = Qcr_service.Compile_reply
module Protocol = Qcr_service.Protocol
module Json = Qcr_obs.Json
module Registry = Qcr_obs.Registry
module Eventlog = Qcr_obs.Eventlog

(* Exit-code discipline (documented under EXIT STATUS in --help): 1 for
   runtime failures, 2 for usage and command-line parse errors. *)
let die fmt = Printf.ksprintf (fun msg -> prerr_endline ("qcr: " ^ msg); exit 1) fmt

let die_usage fmt = Printf.ksprintf (fun msg -> prerr_endline ("qcr: " ^ msg); exit 2) fmt

let load_batch file =
  match Json.of_file file with
  | Error e -> die "cannot read %s: %s" file e
  | Ok j -> (
      match Service.requests_of_json j with
      | Error e -> die "%s: %s" file e
      | Ok reqs -> reqs)

(* Observability flags shared by batch and serve: --metrics-out keeps a
   registry snapshot file fresh (rewritten atomically after each pass /
   request), --eventlog captures the bounded slow-request and error
   channels as JSONL at exit. *)
let metrics_out_arg =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Keep a JSON metrics snapshot (schema $(b,qcr-metrics/v1): counters, \
               gauges, per-tier latency quantiles) in $(docv), rewritten atomically \
               after every batch pass / served request and once more at exit.  \
               Implies the telemetry sink is enabled.")

let eventlog_arg =
  Arg.(value & opt (some string) None & info [ "eventlog" ] ~docv:"FILE"
         ~doc:"Write the bounded structured event log (schema $(b,qcr-eventlog/v1), \
               JSON lines: slow requests over the $(b,--slow-ms) threshold plus \
               sampled errors) to $(docv) at exit.")

let slow_ms_arg =
  Arg.(value & opt float Qcr_obs.Eventlog.default_slow_threshold_ms
       & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"Slow-request threshold for $(b,--eventlog): requests slower than \
                 $(docv) milliseconds enter the slow channel.")

let make_eventlog eventlog slow_ms =
  match eventlog with
  | None -> None
  | Some _ -> Some (Eventlog.create ~slow_threshold_ms:slow_ms ())

(* Snapshot writes are best-effort: losing one periodic snapshot should
   never kill a serving loop, so failures are warnings on stderr — but
   counted, so a wedged snapshot path shows up in the metrics and the
   stats op instead of only scrolling by. *)
let c_metrics_out_failed = Qcr_obs.Obs.counter "cli.metrics_out_failed"

let write_metrics_out = function
  | None -> ()
  | Some path -> (
      match Registry.write_snapshot_file path with
      | Ok () -> ()
      | Error e ->
          Qcr_obs.Obs.incr c_metrics_out_failed;
          Printf.eprintf "qcr: warning: cannot write %s: %s\n%!" path e)

let write_eventlog log path =
  match (log, path) with
  | Some log, Some path -> (
      match Eventlog.write log path with
      | Ok n -> Printf.printf "wrote %s (%d events)\n%!" path n
      | Error e -> Printf.eprintf "qcr: warning: cannot write %s: %s\n%!" path e)
  | _ -> ()

let cache_dir_arg =
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Persist the compile cache under $(docv) (created if missing): the cache \
               warm-starts from the validated entries on disk and new entries are \
               flushed back as a crash-safe segment, so a restarted process answers \
               repeat requests from the cache, bit-identically.")

let open_store = function
  | None -> None
  | Some dir -> (
      match Cache_store.open_dir dir with
      | Ok store -> Some store
      | Error e -> die "cannot open cache dir: %s" e)

(* Flush the cache back to its store (if any); [on_error] decides whether
   a failed flush is fatal (batch) or a warning (serve's EOF path). *)
let flush_store ~on_error service =
  match Service.flush service with
  | Ok 0 -> ()
  | Ok n -> Printf.printf "persisted %d cache entries\n%!" n
  | Error e -> on_error e

let pass_summary label (d : Service.stats) =
  Printf.printf
    "%s: %d requests | %d hits %d misses | ok=%d degraded=%d timeouts=%d errors=%d \
     retries=%d trips=%d corrupt=%d\n\
     %!"
    label d.Service.requests d.Service.cache_hits d.Service.cache_misses d.Service.served_ok
    d.Service.degraded d.Service.timeouts d.Service.errors d.Service.retries
    d.Service.breaker_trips d.Service.cache_corrupt

let batch_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Batch file: {\"schema\": \"qcr-service-batch/v1\", \"requests\": [...]}.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Write the replies (last pass) and per-pass stats as JSON to $(docv).")
  in
  let repeat_arg =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Run the batch $(docv) times through the same service; later passes \
                 exercise the compile cache.")
  in
  let run file out repeat cache_dir metrics_out eventlog slow_ms trace metrics domains
      inject =
    with_telemetry ~cmd:"batch" trace metrics domains inject @@ fun () ->
    if metrics_out <> None then Qcr_obs.Obs.enable ();
    let reqs = load_batch file in
    let log = make_eventlog eventlog slow_ms in
    let service = Service.create ?store:(open_store cache_dir) ?eventlog:log () in
    let passes = ref [] in
    let last_replies = ref [] in
    for pass = 1 to max 1 repeat do
      let before = Service.stats service in
      last_replies := Service.run_batch service reqs;
      let delta = Service.stats_sub (Service.stats service) before in
      passes := delta :: !passes;
      pass_summary (Printf.sprintf "pass %d" pass) delta;
      write_metrics_out metrics_out
    done;
    flush_store ~on_error:(fun e -> die "cache flush failed: %s" e) service;
    write_metrics_out metrics_out;
    write_eventlog log eventlog;
    let json =
      Service.replies_to_json ~passes:(List.rev !passes)
        ~breakers:(Service.breaker_states service)
        ~domains:(Qcr_par.Pool.default_domain_count ())
        ~stats:(Service.stats service) !last_replies
    in
    match out with
    | Some path ->
        Json.to_file path json;
        Printf.printf "wrote %s\n" path
    | None -> print_endline (Json.to_string json)
  in
  Cmd.v
    (Cmd.info "batch" ~doc:"Run a batch job file through the compilation service.")
    Term.(
      const run $ file_arg $ out_arg $ repeat_arg $ cache_dir_arg $ metrics_out_arg
      $ eventlog_arg $ slow_ms_arg $ trace_arg $ metrics_arg $ domains_arg $ inject_arg)

let serve_cmd =
  let batch_arg =
    Arg.(value & opt (some file) None & info [ "batch" ] ~docv:"FILE"
           ~doc:"Process this batch file first (replies on stdout, one JSON per line), \
                 warming the compile cache, then serve.")
  in
  let listen_arg =
    Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"HOST:PORT"
           ~doc:"Serve the same wire protocol over TCP instead of stdio: concurrent \
                 connections, one JSONL request/reply stream each, async job ops \
                 included.  PORT 0 binds an ephemeral port (printed on startup).  \
                 SIGTERM/SIGINT drain gracefully: queued jobs finish, waiters are \
                 notified, buffers flush, then the cache is persisted.")
  in
  let max_queue_arg =
    Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N"
           ~doc:"Admission control for the async job API: at most $(docv) jobs queued \
                 at once; beyond that, $(b,submit) answers with a typed overloaded \
                 error instead of queueing unbounded work.")
  in
  let journal_dir_arg =
    Arg.(value & opt (some string) None & info [ "journal-dir" ] ~docv:"DIR"
           ~doc:"Write-ahead job journal: every admitted $(b,submit) is recorded in \
                 $(docv) before its ack, and its terminal outcome after.  On startup \
                 the journal is replayed — finished jobs are restored as done, \
                 admitted-but-unfinished jobs are re-enqueued and recomputed (warm \
                 via $(b,--cache-dir)), so acked work survives even $(b,kill -9).  \
                 Resubmits carrying the same \"idem\" key dedupe to the original \
                 job across restarts.")
  in
  let run batch listen max_queue journal_dir cache_dir metrics_out eventlog slow_ms trace
      metrics domains inject =
    with_telemetry ~cmd:"serve" trace metrics domains inject @@ fun () ->
    (* A server always runs with the sink on: the {"op":"metrics"} line
       and --metrics-out must see live meters, whatever the CLI flags. *)
    Qcr_obs.Obs.enable ();
    let log = make_eventlog eventlog slow_ms in
    let service = Service.create ?store:(open_store cache_dir) ?eventlog:log () in
    let journal =
      Option.map
        (fun dir ->
          match Qcr_net.Journal.open_dir dir with
          | Ok j -> j
          | Error e -> die "cannot open job journal: %s" e)
        journal_dir
    in
    let emit j =
      print_endline (Json.to_string j);
      flush stdout
    in
    Option.iter
      (fun file ->
        List.iter
          (fun r -> emit (Protocol.with_version (Compile_reply.to_json r)))
          (Service.run_batch service (load_batch file)))
      batch;
    (* The EOF/shutdown path persists the cache with the same
       fatal-on-failure policy as batch: losing the flush is data loss,
       not a warning. *)
    let finish () =
      Option.iter Qcr_net.Journal.close journal;
      flush_store ~on_error:(fun e -> die "cache flush failed: %s" e) service;
      write_metrics_out metrics_out;
      write_eventlog log eventlog;
      pass_summary "served" (Service.stats service)
    in
    match listen with
    | Some hostport ->
        let host, port =
          match Qcr_net.Server.parse_listen hostport with
          | Ok hp -> hp
          | Error e -> die_usage "--listen: %s" e
        in
        let config = { Qcr_net.Server.default_config with host; port; max_queue } in
        let stop_flag = ref false in
        let on_stop_signal = Sys.Signal_handle (fun _ -> stop_flag := true) in
        (try Sys.set_signal Sys.sigterm on_stop_signal with Invalid_argument _ -> ());
        (try Sys.set_signal Sys.sigint on_stop_signal with Invalid_argument _ -> ());
        (* [stop] is polled once per loop pass — piggyback the periodic
           metrics snapshot on it (throttled to ~1s). *)
        let last_snapshot = ref 0.0 in
        let stop () =
          if metrics_out <> None && Unix.gettimeofday () -. !last_snapshot > 1.0 then begin
            last_snapshot := Unix.gettimeofday ();
            write_metrics_out metrics_out
          end;
          !stop_flag
        in
        Qcr_net.Server.serve ~config ?journal
          ~on_listen:(fun p -> Printf.printf "listening on %s:%d\n%!" host p)
          ~stop service;
        finish ()
    | None ->
        (* stdio: one implicit client on stdin/stdout, same protocol.
           The job queue drains between lines, so a submit is running by
           the time the next poll arrives, and wait drives the queue
           inline until its job is terminal. *)
        let jobs = Qcr_net.Jobs.create ~max_queue ?journal ~submit:(Service.submit service) () in
        let session = Qcr_net.Session.create ~service ~jobs () in
        (* recovered jobs run before the first input line is read *)
        while Qcr_net.Jobs.run_next jobs <> None do
          ()
        done;
        let emit_reaction = function
          | Qcr_net.Session.Reply j -> emit j
          | Qcr_net.Session.Wait_for id ->
              let rec drive () =
                match Qcr_net.Jobs.find jobs id with
                | Some st when Qcr_net.Jobs.is_terminal st ->
                    emit (Qcr_net.Session.job_state_reply id st)
                | Some _ ->
                    ignore (Qcr_net.Jobs.run_next jobs);
                    drive ()
                | None ->
                    emit
                      (Protocol.job_error_reply ~kind:"unknown_job" ~job:id
                         ~message:(Printf.sprintf "job %S vanished while waiting" id))
              in
              drive ()
        in
        (try
           while true do
             let line = input_line stdin in
             if String.trim line <> "" then begin
               emit_reaction (Qcr_net.Session.handle session ~client:0 line);
               while Qcr_net.Jobs.run_next jobs <> None do
                 ()
               done;
               (* span buffers are per-request; counters, histograms and
                  meters keep accumulating across the loop *)
               Qcr_obs.Obs.clear_spans ();
               write_metrics_out metrics_out
             end
           done
         with End_of_file -> ());
        finish ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve compile requests as JSON lines — version-2 typed wire protocol \
             (README \"Serving\" has the spec) — over stdio, or over TCP with \
             $(b,--listen).  Synchronous ops: bare request objects or \
             {\"op\":\"compile\"}; async job ops: {\"op\":\"submit\"} answers with a \
             job id immediately and $(b,poll)/$(b,wait)/$(b,cancel)/$(b,result) \
             retrieve status and replies; control ops $(b,health), $(b,stats), \
             $(b,metrics) (registry snapshot as JSON plus Prometheus text) and \
             $(b,flush) (persist the cache to $(b,--cache-dir) immediately; it is \
             also flushed at EOF/shutdown).  $(b,--journal-dir) adds a write-ahead \
             job journal: admitted submits survive crashes — even $(b,kill -9) — \
             and are restored or recomputed on restart, with \"idem\" keys deduping \
             resubmits to the original job ({\"op\":\"jobs\"} lists the live table). \
             Version-1 lines (no \"v\" field) are still accepted; every reply is \
             stamped with \"v\":2.")
    Term.(const run $ batch_arg $ listen_arg $ max_queue_arg $ journal_dir_arg
          $ cache_dir_arg $ metrics_out_arg $ eventlog_arg $ slow_ms_arg $ trace_arg
          $ metrics_arg $ domains_arg $ inject_arg)

let () =
  (* QCR_FAULTS arms process-wide fault injection before any command
     runs; --inject (parsed later by cmdliner) overrides it. *)
  (match Fault.arm_from_env () with
  | Ok _ -> ()
  | Error e -> die_usage "QCR_FAULTS: %s" e);
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"on success.";
      Cmd.Exit.info 1 ~doc:"on runtime failure: malformed input files, I/O errors.";
      Cmd.Exit.info 2
        ~doc:"on usage errors: unknown options or commands, nonexistent file arguments, \
              malformed option values (including $(b,--inject) and $(b,QCR_FAULTS) \
              fault specs).";
    ]
  in
  let info = Cmd.info "qcr_cli" ~exits ~doc:"Regular-architecture quantum compiler tools." in
  let code =
    Cmd.eval (Cmd.group info [ compile_cmd; ata_cmd; solve_cmd; qaoa_cmd; batch_cmd; serve_cmd ])
  in
  (* cmdliner reports CLI parse errors as 124; fold that into the
     documented usage code. *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
