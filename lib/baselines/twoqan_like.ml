module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Paths = Qcr_graph.Paths
module Mapping = Qcr_circuit.Mapping
module Program = Qcr_circuit.Program
module Pipeline = Qcr_core.Pipeline
module Prng = Qcr_util.Prng

let placement_cost arch program mapping =
  Qcr_core.Placement.quadratic_cost arch (Program.graph program) mapping

(* The quadratic-objective annealed placement lives in the core library
   (Placement); 2QAN's signature trait is the much heavier search budget,
   the source of its >1-day compile times at 256 qubits. *)
let anneal_placement ?(seed = 7) ?(moves = 20000) arch program =
  Qcr_core.Placement.anneal ~seed ~moves arch (Program.graph program)

let compile ?seed ?anneal_moves ?noise arch program =
  let t0 = Sys.time () in
  let n_log = Program.qubit_count program in
  let moves =
    match anneal_moves with
    | Some m -> m
    | None -> 300 * n_log (* quadratic-flavoured budget *)
  in
  let init = anneal_placement ?seed ~moves arch program in
  (* Route with the shared greedy engine (no ATA, no selector): 2QAN's
     edge is the placement plus SWAP/gate unification, which the shared
     merge pass applies in finalize. *)
  (* 2QAN's strengths are the placement and SWAP/gate unification; its
     router packs parallel swaps but has no coloring/crosstalk model. *)
  let config =
    {
      Qcr_core.Config.pure_greedy with
      Qcr_core.Config.noise_aware = noise <> None;
      use_coloring = false;
    }
  in
  let r = Pipeline.run_exn
    (Pipeline.Request.make ~config ?noise ~init ~mode:Pipeline.Request.Greedy arch program) in
  { r with Pipeline.compile_seconds = Sys.time () -. t0 }
