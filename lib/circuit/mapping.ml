type t = { logical : int; p_of_l : int array; l_of_p : int array }

let check_permutation a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.iter
    (fun x ->
      if x < 0 || x >= n || seen.(x) then invalid_arg "Mapping: not a permutation";
      seen.(x) <- true)
    a

let of_phys_of_log ~logical a =
  check_permutation a;
  if logical > Array.length a then invalid_arg "Mapping: more logical than physical";
  let n = Array.length a in
  let l_of_p = Array.make n 0 in
  Array.iteri (fun l p -> l_of_p.(p) <- l) a;
  { logical; p_of_l = Array.copy a; l_of_p }

let identity ~logical ~physical =
  of_phys_of_log ~logical (Array.init physical (fun i -> i))

let logical_count t = t.logical

let physical_count t = Array.length t.p_of_l

let phys_of_log t l = t.p_of_l.(l)

let log_of_phys t p = t.l_of_p.(p)

let is_dummy t l = l >= t.logical

let apply_swap t p q =
  let lp = t.l_of_p.(p) and lq = t.l_of_p.(q) in
  t.l_of_p.(p) <- lq;
  t.l_of_p.(q) <- lp;
  t.p_of_l.(lp) <- q;
  t.p_of_l.(lq) <- p

let copy t = { logical = t.logical; p_of_l = Array.copy t.p_of_l; l_of_p = Array.copy t.l_of_p }

let phys_array t = Array.copy t.p_of_l

let phys_backing t = t.p_of_l

let random rng ~logical ~physical =
  let a = Array.init physical (fun i -> i) in
  Qcr_util.Prng.shuffle rng a;
  of_phys_of_log ~logical a

let equal a b = a.logical = b.logical && a.p_of_l = b.p_of_l
