(** Bijection between logical and physical qubits.

    A mapping carries [phys_of_log] and its inverse; applying a hardware
    SWAP on two physical qubits exchanges which logical qubits live there
    (paper §2.2).  When the device has more physical qubits than the
    program has logical ones, the surplus physical qubits host "dummy"
    logical indices [>= logical_count] so the mapping stays a bijection. *)

type t

val identity : logical:int -> physical:int -> t
(** Logical qubit [i] starts on physical qubit [i]. *)

val of_phys_of_log : logical:int -> int array -> t
(** [of_phys_of_log ~logical a]: [a.(l)] is the physical home of logical
    [l]; [a] must be a permutation of [0 .. length-1] and cover at least
    [logical] entries (extra entries are dummies). *)

val logical_count : t -> int
(** Real (non-dummy) logical qubits. *)

val physical_count : t -> int

val phys_of_log : t -> int -> int

val log_of_phys : t -> int -> int
(** May return a dummy index [>= logical_count]. *)

val is_dummy : t -> int -> bool
(** [is_dummy t l] for a logical index. *)

val apply_swap : t -> int -> int -> unit
(** Swap the logical occupants of two physical qubits, in place. *)

val copy : t -> t

val phys_array : t -> int array
(** Fresh copy of the [phys_of_log] array (including dummies). *)

val phys_backing : t -> int array
(** The live [phys_of_log] backing store, NOT a copy: [apply_swap] updates
    it in place and the array identity is stable for the mapping's
    lifetime, so hot loops can hoist it once.  Callers must not mutate. *)

val random : Qcr_util.Prng.t -> logical:int -> physical:int -> t

val equal : t -> t -> bool
