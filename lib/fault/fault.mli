(** Deterministic, seeded fault injection.

    The serving stack declares named {e injection points} (the pool
    worker body, the compile tiers, cache get/put, the persistent cache
    store's load/flush paths, JSON decode, clock reads); a {e spec} arms
    crash/delay/corrupt faults at those points.
    Disarmed — the default — every probe is a single [Atomic.get], the
    same zero-cost pattern as the [Qcr_obs] sink, so production code
    pays nothing for being injectable.

    All firing decisions flow from one seed: each point derives its own
    splitmix64 stream from [spec.seed] and the point name, so a given
    spec produces the same fault pattern at a given point on every run,
    independent of how other points interleave.  Chaos tests and the
    [bench chaos] soak rely on this to replay failures exactly.

    {b Spec grammar} (the [QCR_FAULTS] environment variable and the CLI
    [--inject] flag):

    {v
    spec    := item (',' item)*
    item    := 'seed=' INT | rule
    rule    := POINT ':' action [':' trigger]
    action  := 'crash' | 'delay=' FLOAT | 'corrupt'
    trigger := 'always' | 'p=' FLOAT | 'nth=' INT | 'every=' INT   (default: always)
    v}

    Example:
    [seed=7,pool.worker:crash:p=0.2,cache.get:corrupt:nth=3,service.tier:delay=0.001:every=2].

    Actions mean, per probe kind: [crash] raises {!Injected} at the
    point; [delay=s] sleeps [s] seconds at {!fire}/{!corrupt} and skews
    a {!skew}ed reading forward by [s]; [corrupt] flips one
    deterministically chosen byte of a {!corrupt}ed payload and jumps a
    {!skew}ed reading far forward. *)

exception Injected of string
(** Raised by an armed [crash] fault; the payload is the point name.
    Deliberately {e not} a typed error: boundary code must treat it like
    any other unexpected exception. *)

(** {1 Specs} *)

type action =
  | Crash
  | Delay of float  (** seconds *)
  | Corrupt

type trigger =
  | Always
  | Prob of float  (** fire on each hit with this probability *)
  | Nth of int  (** fire on exactly the [n]-th hit of the point (1-based) *)
  | Every of int  (** fire on every [k]-th hit *)

type rule = { point : string; action : action; trigger : trigger }

type spec = { seed : int; rules : rule list }

val spec_to_string : spec -> string
(** Canonical form; floats print with enough digits to reparse exactly,
    so [spec_of_string (spec_to_string s) = Ok s] for every valid spec
    with finite floats. *)

val spec_of_string : string -> (spec, string) result

val valid_point_name : string -> bool
(** Non-empty, and free of the grammar's meta characters [',' ':' '='
    ] and whitespace. *)

(** {1 Arming} *)

val arm : spec -> unit
(** Install the spec and enable injection.  Resets all per-point hit and
    fire counts, so arming the same spec twice replays the same fault
    pattern. *)

val disarm : unit -> unit
(** Disable injection (specs are forgotten; probes return to the
    zero-cost path).  Idempotent. *)

val armed : unit -> bool

val arm_from_env : unit -> (bool, string) result
(** Arm from [QCR_FAULTS] when the variable is set and non-empty.
    [Ok true] if a spec was armed, [Ok false] if the variable is absent
    or empty, [Error _] on a malformed spec (nothing armed). *)

(** {1 Injection points} *)

type point
(** An interned injection point; creating the same name twice returns
    the same point.  Creation is cheap and thread-safe — declare points
    at module top level like [Qcr_obs] counters. *)

val point : string -> point
(** @raise Invalid_argument on a name {!valid_point_name} rejects. *)

val fire : point -> unit
(** Probe the point.  Disarmed: nothing.  Armed: count the hit and apply
    every triggered rule — [Crash] raises {!Injected}, [Delay s] sleeps,
    [Corrupt] is a no-op for this probe kind. *)

val corrupt : point -> string -> string
(** Probe with a payload.  [Corrupt] returns the payload with one byte
    flipped at a seeded position; [Crash] raises; [Delay] sleeps.
    Disarmed, returns the payload unchanged (physically equal). *)

val skew : point -> float -> float
(** Probe with a reading (clock injection).  [Delay s] returns
    [reading +. s] (a forward clock jump — nothing actually sleeps);
    [Corrupt] returns [reading +. 1e6]; [Crash] raises.  Disarmed,
    returns the reading unchanged. *)

(** {1 Accounting} *)

val hits : point -> int
(** Probes observed at this point since the last {!arm}. *)

val fired : point -> int
(** Faults actually applied at this point since the last {!arm}. *)

val snapshot : unit -> (string * int * int) list
(** [(name, hits, fired)] for every point with at least one hit, sorted
    by name — the [bench chaos] report's fault table. *)
