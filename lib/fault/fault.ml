module Prng = Qcr_util.Prng

exception Injected of string

type action =
  | Crash
  | Delay of float
  | Corrupt

type trigger =
  | Always
  | Prob of float
  | Nth of int
  | Every of int

type rule = { point : string; action : action; trigger : trigger }

type spec = { seed : int; rules : rule list }

(* ---------- spec grammar ---------- *)

let valid_point_name name =
  name <> ""
  && String.for_all
       (fun c -> not (c = ',' || c = ':' || c = '=' || c = ' ' || c = '\t' || c = '\n' || c = '\r'))
       name

(* Shortest float representation that reparses exactly (the same trick
   as the Json emitter), so specs round-trip through their string form. *)
let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else begin
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let action_to_string = function
  | Crash -> "crash"
  | Delay s -> "delay=" ^ float_to_string s
  | Corrupt -> "corrupt"

let trigger_to_string = function
  | Always -> ""
  | Prob p -> ":p=" ^ float_to_string p
  | Nth n -> ":nth=" ^ string_of_int n
  | Every k -> ":every=" ^ string_of_int k

let rule_to_string r =
  Printf.sprintf "%s:%s%s" r.point (action_to_string r.action) (trigger_to_string r.trigger)

let spec_to_string s =
  String.concat "," (Printf.sprintf "seed=%d" s.seed :: List.map rule_to_string s.rules)

let ( let* ) r f = Result.bind r f

let parse_float what s =
  match float_of_string_opt s with
  | Some f when Float.is_finite f -> Ok f
  | _ -> Error (Printf.sprintf "%s: expected a finite number, got %S" what s)

let parse_int what s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" what s)

let parse_action s =
  match s with
  | "crash" -> Ok Crash
  | "corrupt" -> Ok Corrupt
  | _ -> (
      match String.index_opt s '=' with
      | Some i when String.sub s 0 i = "delay" ->
          let* d =
            parse_float "delay" (String.sub s (i + 1) (String.length s - i - 1))
          in
          if d < 0.0 then Error "delay: must be non-negative" else Ok (Delay d)
      | _ -> Error (Printf.sprintf "unknown action %S (want crash, delay=S or corrupt)" s))

let parse_trigger s =
  if s = "always" then Ok Always
  else
    match String.index_opt s '=' with
  | Some i -> (
      let key = String.sub s 0 i and v = String.sub s (i + 1) (String.length s - i - 1) in
      match key with
      | "p" ->
          let* p = parse_float "p" v in
          if p < 0.0 || p > 1.0 then Error "p: must be in [0, 1]" else Ok (Prob p)
      | "nth" ->
          let* n = parse_int "nth" v in
          if n < 1 then Error "nth: must be >= 1" else Ok (Nth n)
      | "every" ->
          let* k = parse_int "every" v in
          if k < 1 then Error "every: must be >= 1" else Ok (Every k)
      | _ -> Error (Printf.sprintf "unknown trigger %S (want p=, nth= or every=)" s))
  | None -> Error (Printf.sprintf "unknown trigger %S (want p=, nth= or every=)" s)

let parse_rule s =
  match String.split_on_char ':' s with
  | [ point; action ] | [ point; action; "" ] ->
      if not (valid_point_name point) then Error (Printf.sprintf "invalid point name %S" point)
      else
        let* action = parse_action action in
        Ok { point; action; trigger = Always }
  | [ point; action; trigger ] ->
      if not (valid_point_name point) then Error (Printf.sprintf "invalid point name %S" point)
      else
        let* action = parse_action action in
        let* trigger = parse_trigger trigger in
        Ok { point; action; trigger }
  | _ -> Error (Printf.sprintf "malformed rule %S (want POINT:ACTION[:TRIGGER])" s)

let spec_of_string s =
  let items = String.split_on_char ',' s |> List.map String.trim in
  let rec go seed rules = function
    | [] -> (
        match rules with
        | [] -> Error "empty fault spec (no rules)"
        | rules -> Ok { seed; rules = List.rev rules })
    | "" :: rest -> go seed rules rest
    | item :: rest ->
        if String.length item > 5 && String.sub item 0 5 = "seed=" then
          let* v = parse_int "seed" (String.sub item 5 (String.length item - 5)) in
          go v rules rest
        else
          let* r = parse_rule item in
          go seed (r :: rules) rest
  in
  go 0 [] items

(* ---------- runtime registry ----------

   [on] gates every probe ([Atomic.get] and return when disarmed).  Each
   interned point owns its hit/fire counts, its active rules and a
   splitmix64 stream derived from the spec seed and the point name, all
   behind a per-point mutex: firing decisions at a point form one
   deterministic sequence regardless of which domain probes it. *)

let on = Atomic.make false

type state = {
  name : string;
  lock : Mutex.t;
  mutable hits : int;
  mutable fired : int;
  mutable rules : rule list;
  mutable rng : Prng.t;
}

type point = state

let registry : (string, state) Hashtbl.t = Hashtbl.create 16

let registry_lock = Mutex.create ()

let current_spec : spec option ref = ref None

(* Independent stream per (seed, point): fold the name into the seed
   with an FNV-style mix, then let splitmix64 do the real scrambling. *)
let rng_for seed name =
  let h = ref (seed lxor 0x100001b3) in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land max_int) name;
  Prng.create !h

let bind_rules st =
  match !current_spec with
  | None ->
      st.rules <- [];
      st.rng <- Prng.create 0
  | Some spec ->
      st.rules <- List.filter (fun r -> r.point = st.name) spec.rules;
      st.rng <- rng_for spec.seed st.name;
      st.hits <- 0;
      st.fired <- 0

let point name =
  if not (valid_point_name name) then invalid_arg ("Fault.point: invalid name " ^ name);
  Mutex.lock registry_lock;
  let st =
    match Hashtbl.find_opt registry name with
    | Some st -> st
    | None ->
        let st =
          { name; lock = Mutex.create (); hits = 0; fired = 0; rules = []; rng = Prng.create 0 }
        in
        bind_rules st;
        Hashtbl.add registry name st;
        st
  in
  Mutex.unlock registry_lock;
  st

let arm spec =
  Mutex.lock registry_lock;
  current_spec := Some spec;
  Hashtbl.iter (fun _ st -> bind_rules st) registry;
  Mutex.unlock registry_lock;
  Atomic.set on true

let disarm () =
  Atomic.set on false;
  Mutex.lock registry_lock;
  current_spec := None;
  Hashtbl.iter (fun _ st -> bind_rules st) registry;
  Mutex.unlock registry_lock

let armed () = Atomic.get on

let arm_from_env () =
  match Sys.getenv_opt "QCR_FAULTS" with
  | None -> Ok false
  | Some s when String.trim s = "" -> Ok false
  | Some s -> (
      match spec_of_string s with
      | Ok spec ->
          arm spec;
          Ok true
      | Error e -> Error (Printf.sprintf "QCR_FAULTS: %s" e))

(* ---------- probes ---------- *)

(* Decide triggers and apply [Corrupt] (a pure payload transform needing
   the point's PRNG) under the point lock, so every random draw at a
   point forms one deterministic sequence; crash and delay run after the
   unlock, so a raise never leaves the lock held and a sleep never
   blocks other domains' probes.  Returns the (possibly transformed)
   payload and the triggered rules. *)
let decide st ~on_corrupt payload =
  Mutex.lock st.lock;
  st.hits <- st.hits + 1;
  let hit = st.hits in
  let triggered =
    List.filter
      (fun r ->
        match r.trigger with
        | Always -> true
        | Prob p -> Prng.float st.rng 1.0 < p
        | Nth n -> hit = n
        | Every k -> hit mod k = 0)
      st.rules
  in
  st.fired <- st.fired + List.length triggered;
  let payload =
    List.fold_left
      (fun payload r ->
        match r.action with Corrupt -> on_corrupt st.rng payload | Crash | Delay _ -> payload)
      payload triggered
  in
  Mutex.unlock st.lock;
  (payload, triggered)

let probe st ~on_corrupt payload =
  if not (Atomic.get on) then payload
  else begin
    let payload, triggered = decide st ~on_corrupt payload in
    List.iter
      (fun r -> match r.action with Delay s when s > 0.0 -> Unix.sleepf s | _ -> ())
      triggered;
    if List.exists (fun r -> r.action = Crash) triggered then raise (Injected st.name);
    payload
  end

let fire st = probe st ~on_corrupt:(fun _ () -> ()) ()

let flip_byte rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let i = Prng.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
    Bytes.to_string b
  end

let corrupt st payload = probe st ~on_corrupt:flip_byte payload

(* Clock probes never sleep: a [Delay] rule shows up as a forward jump
   of the reading instead, which simulates skew without slowing tests. *)
let skew st reading =
  if not (Atomic.get on) then reading
  else begin
    let reading, triggered = decide st ~on_corrupt:(fun _ r -> r) reading in
    let reading =
      List.fold_left
        (fun reading r ->
          match r.action with
          | Delay s -> reading +. s
          | Corrupt -> reading +. 1e6
          | Crash -> reading)
        reading triggered
    in
    if List.exists (fun r -> r.action = Crash) triggered then raise (Injected st.name);
    reading
  end

(* ---------- accounting ---------- *)

let locked st f =
  Mutex.lock st.lock;
  let v = f () in
  Mutex.unlock st.lock;
  v

let hits st = locked st (fun () -> st.hits)

let fired st = locked st (fun () -> st.fired)

let snapshot () =
  Mutex.lock registry_lock;
  let states = Hashtbl.fold (fun _ st acc -> st :: acc) registry [] in
  Mutex.unlock registry_lock;
  states
  |> List.filter_map (fun st ->
         let h, f = locked st (fun () -> (st.hits, st.fired)) in
         if h = 0 then None else Some (st.name, h, f))
  |> List.sort compare
