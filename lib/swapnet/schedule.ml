module Graph = Qcr_graph.Graph
module Bitset = Qcr_util.Bitset
module Circuit = Qcr_circuit.Circuit
module Program = Qcr_circuit.Program
module Mapping = Qcr_circuit.Mapping
module Gate = Qcr_circuit.Gate
module Obs = Qcr_obs.Obs

let c_realizations = Obs.counter "swapnet.realizations"

let c_cycles_realized = Obs.counter "swapnet.cycles_realized"

let c_swaps_inserted = Obs.counter "swapnet.swaps_inserted"

let c_gates_emitted = Obs.counter "swapnet.gates_emitted"

let c_estimates = Obs.counter "swapnet.estimates"

type op = Swap of int * int | Touch of int * int

type cycle = op list

type t = cycle list

let cycle_count = List.length

let op_count t = List.fold_left (fun acc c -> acc + List.length c) 0 t

let swap_count t =
  List.fold_left
    (fun acc c ->
      acc + List.length (List.filter (function Swap _ -> true | Touch _ -> false) c))
    0 t

let touch_count t = op_count t - swap_count t

let validate graph t =
  let n = Graph.vertex_count graph in
  let stamp = Array.make n (-1) in
  let error = ref None in
  List.iteri
    (fun i c ->
      List.iter
        (fun o ->
          let p, q = match o with Swap (p, q) | Touch (p, q) -> (p, q) in
          if !error = None then begin
            if p < 0 || p >= n || q < 0 || q >= n then
              error := Some (Printf.sprintf "cycle %d: qubit out of range" i)
            else if not (Graph.has_edge graph p q) then
              error := Some (Printf.sprintf "cycle %d: op on uncoupled pair (%d,%d)" i p q)
            else if stamp.(p) = i || stamp.(q) = i then
              error := Some (Printf.sprintf "cycle %d: qubit used twice" i)
            else begin
              stamp.(p) <- i;
              stamp.(q) <- i
            end
          end)
        c)
    t;
  match !error with None -> Ok () | Some m -> Error m

let coverage ~n t =
  let token_at = Array.init n (fun i -> i) in
  let pos_of = Array.init n (fun i -> i) in
  let met = Bitset.create (n * n) in
  List.iter
    (fun c ->
      List.iter
        (fun o ->
          match o with
          | Touch (p, q) ->
              let a = token_at.(p) and b = token_at.(q) in
              let lo = min a b and hi = max a b in
              Bitset.add met ((lo * n) + hi)
          | Swap (p, q) ->
              let a = token_at.(p) and b = token_at.(q) in
              token_at.(p) <- b;
              token_at.(q) <- a;
              pos_of.(a) <- q;
              pos_of.(b) <- p)
        c)
    t;
  (met, pos_of)

let uncovered_pairs ~n t =
  let met, _ = coverage ~n t in
  let missing = ref [] in
  for a = n - 1 downto 0 do
    for b = n - 1 downto a + 1 do
      if not (Bitset.mem met ((a * n) + b)) then missing := (a, b) :: !missing
    done
  done;
  !missing

let covers_all_pairs ~n t = uncovered_pairs ~n t = []

let final_positions ~n t = snd (coverage ~n t)

let concat a b = a @ b

let par a b =
  let rec zip a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | ca :: ta, cb :: tb -> (ca @ cb) :: zip ta tb
  in
  zip a b

type realization = {
  circuit : Qcr_circuit.Circuit.t;
  cycles_used : int;
  swaps_used : int;
  emitted : (int * int) list;
}

(* Shared walk used by both [realize] and [estimate].  [remaining_degree]
   counts, per logical token, the problem edges not yet emitted; swaps in
   which neither token owes a gate are dropped.  [emit_swap] receives
   [~fused:true] when the swap immediately follows the interaction it will
   merge with (same pair, no intervening op on either qubit). *)
let walk ~graph ~mapping ~emit_gate ~emit_swap =
  let logical = Mapping.logical_count mapping in
  let remaining = ref (Graph.edge_count graph) in
  let emitted = Hashtbl.create (max 16 !remaining) in
  let degree = Array.make (max logical 1) 0 in
  Graph.iter_edges
    (fun u v ->
      degree.(u) <- degree.(u) + 1;
      degree.(v) <- degree.(v) + 1)
    graph;
  let owes l = l < logical && degree.(l) > 0 in
  let norm a b = (min a b, max a b) in
  (* fusion tracking mirrors Circuit.merge_swaps: the op counter stamps the
     last op per physical wire; a gate emission remembers its stamp per
     physical pair *)
  let op_counter = ref 0 in
  let last_touch = Array.make (Mapping.physical_count mapping) (-1) in
  let pending : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let pnorm p q = (min p q, max p q) in
  let step_op o =
    match o with
    | Touch (p, q) ->
        let a = Mapping.log_of_phys mapping p and b = Mapping.log_of_phys mapping q in
        if a < logical && b < logical then begin
          let pair = norm a b in
          if Graph.has_edge graph (fst pair) (snd pair) && not (Hashtbl.mem emitted pair)
          then begin
            Hashtbl.replace emitted pair ();
            degree.(a) <- degree.(a) - 1;
            degree.(b) <- degree.(b) - 1;
            decr remaining;
            incr op_counter;
            Hashtbl.replace pending (pnorm p q) !op_counter;
            last_touch.(p) <- !op_counter;
            last_touch.(q) <- !op_counter;
            emit_gate ~log_pair:pair ~phys:(p, q)
          end
        end
    | Swap (p, q) ->
        let a = Mapping.log_of_phys mapping p and b = Mapping.log_of_phys mapping q in
        if owes a || owes b then begin
          Mapping.apply_swap mapping p q;
          let fused =
            match Hashtbl.find_opt pending (pnorm p q) with
            | Some stamp -> last_touch.(p) = stamp && last_touch.(q) = stamp
            | None -> false
          in
          Hashtbl.remove pending (pnorm p q);
          incr op_counter;
          last_touch.(p) <- !op_counter;
          last_touch.(q) <- !op_counter;
          emit_swap ~phys:(p, q) ~fused
        end
  in
  let done_ () = !remaining = 0 in
  (step_op, done_)

let realize ~program ~mapping ~n_phys t =
  Obs.with_span ~cat:"swapnet" "swapnet.realize" @@ fun () ->
  let graph = Program.graph program in
  let circuit = Circuit.create n_phys in
  let swaps = ref 0 in
  let cycles = ref 0 in
  let mapping_ref = mapping in
  let emitted = ref [] in
  let emit_gate ~log_pair:(u, v) ~phys:_ =
    (* edge_gate is defined on logical ids; remap onto physical wires *)
    let gate =
      Gate.map_qubits (fun l -> Mapping.phys_of_log mapping_ref l) (Program.edge_gate program u v)
    in
    emitted := (u, v) :: !emitted;
    Circuit.add circuit gate
  in
  let emit_swap ~phys:(p, q) ~fused:_ =
    incr swaps;
    Circuit.add circuit (Gate.Swap (p, q))
  in
  let step_op, finished = walk ~graph ~mapping ~emit_gate ~emit_swap in
  (try
     List.iter
       (fun c ->
         if finished () then raise Exit;
         incr cycles;
         List.iter step_op c)
       t
   with Exit -> ());
  Obs.incr c_realizations;
  Obs.add c_cycles_realized !cycles;
  Obs.add c_swaps_inserted !swaps;
  Obs.add c_gates_emitted (List.length !emitted);
  { circuit; cycles_used = !cycles; swaps_used = !swaps; emitted = List.rev !emitted }

let estimate ~remaining ~mapping t =
  Obs.incr c_estimates;
  let mapping = Mapping.copy mapping in
  let swaps = ref 0 in
  let merged = ref 0 in
  let cycles = ref 0 in
  let emit_gate ~log_pair:_ ~phys:_ = () in
  let emit_swap ~phys:_ ~fused =
    incr swaps;
    if fused then incr merged
  in
  let step_op, finished = walk ~graph:remaining ~mapping ~emit_gate ~emit_swap in
  (try
     List.iter
       (fun c ->
         if finished () then raise Exit;
         incr cycles;
         List.iter step_op c)
       t
   with Exit -> ());
  if finished () then Some (!cycles, !swaps, !merged) else None
