module Arch = Qcr_arch.Arch

(* Both memo tables are keyed by architecture name and shared across
   domains (the portfolio compiler races arms in parallel).  The lock
   only guards table access, never the schedule construction itself:
   [region_schedule] re-enters [schedule] for the sub-device and OCaml
   mutexes are not reentrant.  Racing domains may build the same
   schedule twice; [Hashtbl.replace] keeps the table consistent. *)
let cache_lock = Mutex.create ()

let locked f =
  Mutex.lock cache_lock;
  let r = f () in
  Mutex.unlock cache_lock;
  r

let cache : (string, Schedule.t) Hashtbl.t = Hashtbl.create 8

let build arch =
  match Arch.kind arch with
  | Arch.Line -> Linear.pattern (Arch.long_path arch)
  | Arch.Grid -> Two_level.grid_merged arch
  | Arch.Grid3d | Arch.Sycamore | Arch.Hexagon -> Two_level.unified arch
  | Arch.Heavy_hex | Arch.Custom -> Heavyhex.pattern arch

let schedule arch =
  let key = Arch.name arch in
  match locked (fun () -> Hashtbl.find_opt cache key) with
  | Some s -> s
  | None ->
      let s = build arch in
      locked (fun () -> Hashtbl.replace cache key s);
      s

let remap_schedule f s =
  List.map
    (List.map (function
      | Schedule.Swap (p, q) -> Schedule.Swap (f p, f q)
      | Schedule.Touch (p, q) -> Schedule.Touch (f p, f q)))
    s

let region_cache : (string, Schedule.t * int list) Hashtbl.t = Hashtbl.create 8

(* Bounding box of the given qubits in lattice coordinates, aligned so the
   sub-lattice has the same local edge rules as the full one. *)
let bounding_box arch qubits =
  let coords = Arch.coords arch in
  let r0 = ref max_int and r1 = ref min_int and c0 = ref max_int and c1 = ref min_int in
  List.iter
    (fun q ->
      let r, c = coords.(q) in
      let r = int_of_float r and c = int_of_float c in
      r0 := min !r0 r;
      r1 := max !r1 r;
      c0 := min !c0 c;
      c1 := max !c1 c)
    qubits;
  (!r0, !r1, !c0, !c1)

let region_schedule arch qubits =
  match (Arch.kind arch, qubits) with
  | (Arch.Line | Arch.Grid3d | Arch.Heavy_hex | Arch.Custom), _ | _, [] -> None
  | (Arch.Grid | Arch.Sycamore | Arch.Hexagon), _ -> begin
      let units = Arch.units arch in
      let unit_count = Array.length units in
      let unit_len = if unit_count = 0 then 0 else Array.length units.(0) in
      if unit_count = 0 then None
      else begin
        let r0, r1, c0, c1 = bounding_box arch qubits in
        (* Units are rows for grid/Sycamore and columns for hexagon; in the
           coords convention rows are the first coordinate for all three,
           so hexagon unit index = column. *)
        let u0, u1, k0, k1 =
          match Arch.kind arch with
          | Arch.Hexagon -> (c0, c1, r0, r1)
          | _ -> (r0, r1, c0, c1)
        in
        (* Alignment: Sycamore diagonals flip with row parity, hexagon
           horizontal links depend on r + c parity; keep parities intact by
           extending the box downward/leftward. *)
        let u0, k0 =
          match Arch.kind arch with
          | Arch.Sycamore -> ((u0 / 2) * 2, k0)
          | Arch.Hexagon -> (u0, if (k0 + u0) mod 2 = 0 then k0 else max 0 (k0 - 1))
          | _ -> (u0, k0)
        in
        (* Hexagon sub-columns must have even length. *)
        let k1 =
          match Arch.kind arch with
          | Arch.Hexagon -> if (k1 - k0 + 1) mod 2 = 0 then k1 else min (unit_len - 1) (k1 + 1)
          | _ -> k1
        in
        let k0 =
          match Arch.kind arch with
          | Arch.Hexagon -> if (k1 - k0 + 1) mod 2 = 0 then k0 else max 0 (k0 - 1)
          | _ -> k0
        in
        let su = u1 - u0 + 1 and sk = k1 - k0 + 1 in
        if su = unit_count && sk = unit_len then None (* whole device: no gain *)
        else begin
          let key = Printf.sprintf "%s[%d-%d,%d-%d]" (Arch.name arch) u0 u1 k0 k1 in
          match locked (fun () -> Hashtbl.find_opt region_cache key) with
          | Some result -> Some result
          | None -> begin
              let sub =
                match Arch.kind arch with
                | Arch.Grid -> Some (Arch.grid ~rows:su ~cols:sk)
                | Arch.Sycamore when su >= 2 -> Some (Arch.sycamore ~rows:su ~cols:sk)
                | Arch.Hexagon when sk >= 2 && sk mod 2 = 0 ->
                    Some (Arch.hexagon ~rows:sk ~cols:su)
                | _ -> None
              in
              match sub with
              | None -> None
              | Some sub_arch -> begin
                  (* Map sub-device ids back to physical ids of the region.
                     All three lattices index qubits as r * cols + c. *)
                  let remap =
                    match Arch.kind arch with
                    | Arch.Hexagon ->
                        fun i ->
                          let r_sub = i / su and c_sub = i mod su in
                          ((r_sub + k0) * unit_count) + (c_sub + u0)
                    | _ ->
                        fun i ->
                          let r_sub = i / sk and c_sub = i mod sk in
                          ((r_sub + u0) * unit_len) + (c_sub + k0)
                  in
                  let sched = remap_schedule remap (schedule sub_arch) in
                  let members =
                    List.init (Arch.qubit_count sub_arch) remap |> List.sort compare
                  in
                  let result = (sched, members) in
                  locked (fun () -> Hashtbl.replace region_cache key result);
                  Some result
                end
            end
        end
      end
    end
