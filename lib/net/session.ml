module Service = Qcr_service.Service
module Protocol = Qcr_service.Protocol
module Reply = Qcr_service.Compile_reply
module Json = Qcr_obs.Json
module Registry = Qcr_obs.Registry
module Obs = Qcr_obs.Obs

let c_wire_errors = Obs.counter "net.wire_errors"

type t = {
  service : Service.t;
  jobs : Jobs.t;
  extra_stats : unit -> (string * Json.t) list;
}

let create ?(extra_stats = fun () -> []) ~service ~jobs () = { service; jobs; extra_stats }

let jobs t = t.jobs
let service t = t.service

type reaction =
  | Reply of Json.t
  | Wait_for of string

let job_state_reply id state =
  let base = [ ("job", Json.Str id); ("state", Json.Str (Jobs.state_name state)) ] in
  match state with
  | Jobs.Done r | Jobs.Canceled r ->
      Protocol.ok_reply (base @ [ ("reply", Protocol.with_version (Reply.to_json r)) ])
  | Jobs.Queued | Jobs.Running -> Protocol.ok_reply base

let unknown_job id =
  Protocol.job_error_reply ~kind:"unknown_job" ~job:id
    ~message:(Printf.sprintf "no such job %S (never submitted, or already evicted)" id)

let handle_op t ~client op =
  match op with
  | Protocol.Op.Compile req ->
      Reply (Protocol.with_version (Reply.to_json (Service.submit t.service req)))
  | Protocol.Op.Submit (req, idem) -> (
      match Jobs.submit t.jobs ~client ?idem req with
      | Ok (Jobs.Admitted id) ->
          Reply (Protocol.ok_reply [ ("job", Json.Str id); ("state", Json.Str "queued") ])
      | Ok (Jobs.Deduped id) ->
          (* the idempotency key matched an existing job: answer with
             that job's id and current state, flagged so the client can
             tell a dedupe from a fresh admission *)
          let state =
            match Jobs.find t.jobs id with
            | Some st -> Jobs.state_name st
            | None -> "queued" (* unreachable: dedupe checks liveness *)
          in
          Reply
            (Protocol.ok_reply
               [ ("job", Json.Str id); ("state", Json.Str state); ("dedup", Json.Bool true) ])
      | Error reply ->
          (* the typed Overloaded / journal-failure refusal — same
             envelope as any failed compile reply *)
          Reply (Protocol.with_version (Reply.to_json reply)))
  | Protocol.Op.Poll id -> (
      match Jobs.find t.jobs id with
      | None -> Reply (unknown_job id)
      | Some st -> Reply (job_state_reply id st))
  | Protocol.Op.Wait id -> (
      match Jobs.find t.jobs id with
      | None -> Reply (unknown_job id)
      | Some st when Jobs.is_terminal st -> Reply (job_state_reply id st)
      | Some _ -> Wait_for id)
  | Protocol.Op.Cancel id -> (
      match Jobs.cancel t.jobs id with
      | None -> Reply (unknown_job id)
      | Some st -> Reply (job_state_reply id st))
  | Protocol.Op.Result id -> (
      match Jobs.take t.jobs id with
      | None -> Reply (unknown_job id)
      | Some st when Jobs.is_terminal st -> Reply (job_state_reply id st)
      | Some st ->
          Reply
            (Protocol.job_error_reply ~kind:"not_finished" ~job:id
               ~message:(Printf.sprintf "job %s is still %s" id (Jobs.state_name st))))
  | Protocol.Op.Jobs ->
      Reply
        (Protocol.ok_reply
           [ ("jobs", Jobs.list_json t.jobs); ("counts", Jobs.stats_json t.jobs) ])
  | Protocol.Op.Health ->
      Reply
        (Protocol.ok_reply
           [
             ("requests", Json.Num (float_of_int (Service.stats t.service).Service.requests));
             ("queued", Json.Num (float_of_int (Jobs.queued t.jobs)));
           ])
  | Protocol.Op.Stats ->
      Reply
        (Protocol.ok_reply
           ([
              ( "stats",
                Service.stats_to_json
                  ~breakers:(Service.breaker_states t.service)
                  ~cache:(Service.cache_info t.service)
                  (Service.stats t.service) );
              ("jobs", Jobs.stats_json t.jobs);
            ]
           @ t.extra_stats ()))
  | Protocol.Op.Metrics ->
      Reply
        (Protocol.ok_reply
           [
             ("metrics", Service.metrics_json t.service);
             ("prometheus", Json.Str (Registry.prometheus (Registry.snapshot ())));
           ])
  | Protocol.Op.Flush -> (
      match Service.flush t.service with
      | Ok n -> Reply (Protocol.ok_reply [ ("persisted", Json.Num (float_of_int n)) ])
      | Error e ->
          Reply
            (Protocol.with_version
               (Json.Obj
                  [
                    ("status", Json.Str "error");
                    ( "error",
                      Json.Obj
                        [
                          ("kind", Json.Str "flush_failed");
                          ("message", Json.Str ("cache flush failed: " ^ e));
                        ] );
                  ])))

let handle t ~client line =
  match Protocol.decode line with
  | Error e ->
      Obs.incr c_wire_errors;
      Reply (Protocol.error_reply e)
  | Ok op -> (
      try handle_op t ~client op
      with
      | (Out_of_memory | Stack_overflow) as e -> raise e
      | e ->
          Reply
            (Protocol.with_version
               (Json.Obj
                  [
                    ("status", Json.Str "error");
                    ( "error",
                      Json.Obj
                        [
                          ("kind", Json.Str "internal");
                          ( "message",
                            Json.Str ("uncaught exception: " ^ Printexc.to_string e) );
                        ] );
                  ])))
