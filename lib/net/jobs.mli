(** Transport-independent async job table.

    [submit] admits a compile request into a bounded queue and returns a
    job id immediately; {!run_next} executes exactly one queued job
    (round-robin across clients, FIFO within a client) through the
    function the table was created with — the single-threaded event loop
    calls it between I/O rounds, so replies stay bit-identical to the
    synchronous path.

    Admission control: when [max_queue] jobs are already queued, [submit]
    refuses with a ready-made [Overloaded] error reply instead of
    queueing — bounded latency beats unbounded memory.  Terminal jobs
    (done or canceled) are retained for [retain_done] ids {e and} at most
    [retain_bytes] serialized-reply bytes so late [poll]/[result] calls
    can find them, then evicted oldest-first.

    {b Durability} (optional): with a {!Journal}, every admission is
    journaled {e before} its ack (a failed append refuses the job with a
    typed [Internal] error) and every terminal outcome after; at
    {!create} the journal's replayed entries are restored — terminal
    jobs come back retained under their original ids, unfinished ones
    re-enqueue under the reserved recovery client [0] and recompute.
    Job numbering resumes above the highest replayed sequence.

    {b Idempotency}: a [submit] carrying an idempotency key dedupes to
    the existing job with that key (fresh or replayed) instead of
    admitting a duplicate — the server half of the reconnect-and-
    resubmit contract ({!Client.submit_idempotent}).  A key whose job
    was already evicted from retention admits afresh. *)

type state =
  | Queued
  | Running
  | Done of Qcr_service.Compile_reply.t
  | Canceled of Qcr_service.Compile_reply.t
      (** the reply is a [Failed Canceled] built at cancel time *)

val state_name : state -> string
(** ["queued"], ["running"], ["done"] or ["canceled"]. *)

val is_terminal : state -> bool

type admission =
  | Admitted of string  (** fresh job id, queued *)
  | Deduped of string
      (** an idempotency key matched this existing (possibly already
          terminal) job — nothing was admitted *)

type t

val create :
  ?max_queue:int ->
  ?retain_done:int ->
  ?retain_bytes:int ->
  ?journal:Journal.t ->
  submit:(Qcr_service.Compile_request.t -> Qcr_service.Compile_reply.t) ->
  unit ->
  t
(** Defaults: [max_queue 64], [retain_done 256], [retain_bytes 64 MiB].
    With [?journal], replays it (see above); the journal must have been
    opened by the caller, who keeps ownership of {!Journal.close}. *)

val submit :
  t ->
  client:int ->
  ?idem:string ->
  Qcr_service.Compile_request.t ->
  (admission, Qcr_service.Compile_reply.t) result
(** [Ok (Admitted id)] (ids are ["j-1"], ["j-2"], ... in admission
    order), [Ok (Deduped id)] for a known idempotency key, or
    [Error reply] — a typed [Overloaded] failure when the queue is full,
    or a typed [Internal] failure when the journal append failed. *)

val find : t -> string -> state option

val cancel : t -> string -> state option
(** Cancel a [Queued] job (running or terminal jobs are unaffected);
    returns the state after the attempt, [None] for unknown ids. *)

val take : t -> string -> state option
(** Like {!find}, but a terminal job is evicted from the table — the
    [result] op's fetch-and-forget. *)

val run_next : t -> (string * int * Qcr_service.Compile_reply.t) option
(** Execute the next queued job (fair order); [None] when idle.  Returns
    the job id, owning client, and reply. *)

val drop_client : t -> int -> int
(** Cancel every queued job owned by a disconnected client; returns how
    many were canceled.  Its terminal jobs stay retained. *)

val queued : t -> int
(** Live queued jobs — the admission-control gauge. *)

val pending : t -> bool

val client_active : t -> int -> bool
(** Whether this client owns any queued or running job — such clients
    are exempt from the server's idle-timeout disconnect (closing them
    would cancel admitted work). *)

val recovered : t -> int
(** Admitted-but-unfinished jobs re-enqueued from the journal at
    {!create}. *)

val retained_bytes : t -> int
(** Serialized-reply bytes currently held by retained terminal jobs —
    the [net.retained_bytes] gauge. *)

val list_json : t -> Qcr_obs.Json.t
(** The [{"op":"jobs"}] introspection payload: every live job as
    [{"job","state","id","idem"?}], in admission order. *)

val stats_json : t -> Qcr_obs.Json.t
(** [{"submitted":..,"completed":..,"canceled":..,"shed":..,"deduped":..,
    "recovered":..,"queued":..,"limit":..,"retained_bytes":..}] —
    cumulative counts for the [stats] op. *)
