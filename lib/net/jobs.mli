(** Transport-independent async job table.

    [submit] admits a compile request into a bounded queue and returns a
    job id immediately; {!run_next} executes exactly one queued job
    (round-robin across clients, FIFO within a client) through the
    function the table was created with — the single-threaded event loop
    calls it between I/O rounds, so replies stay bit-identical to the
    synchronous path.

    Admission control: when [max_queue] jobs are already queued, [submit]
    refuses with a ready-made [Overloaded] error reply instead of
    queueing — bounded latency beats unbounded memory.  Terminal jobs
    (done or canceled) are retained for [retain_done] ids so late
    [poll]/[result] calls can find them, then evicted oldest-first. *)

type state =
  | Queued
  | Running
  | Done of Qcr_service.Compile_reply.t
  | Canceled of Qcr_service.Compile_reply.t
      (** the reply is a [Failed Canceled] built at cancel time *)

val state_name : state -> string
(** ["queued"], ["running"], ["done"] or ["canceled"]. *)

val is_terminal : state -> bool

type t

val create :
  ?max_queue:int ->
  ?retain_done:int ->
  submit:(Qcr_service.Compile_request.t -> Qcr_service.Compile_reply.t) ->
  unit ->
  t
(** Defaults: [max_queue 64], [retain_done 256]. *)

val submit :
  t -> client:int -> Qcr_service.Compile_request.t -> (string, Qcr_service.Compile_reply.t) result
(** [Ok id] (ids are ["j-1"], ["j-2"], ... in admission order) or
    [Error reply] where [reply] is a typed [Overloaded] failure carrying
    the queue depth and limit. *)

val find : t -> string -> state option

val cancel : t -> string -> state option
(** Cancel a [Queued] job (running or terminal jobs are unaffected);
    returns the state after the attempt, [None] for unknown ids. *)

val take : t -> string -> state option
(** Like {!find}, but a terminal job is evicted from the table — the
    [result] op's fetch-and-forget. *)

val run_next : t -> (string * int * Qcr_service.Compile_reply.t) option
(** Execute the next queued job (fair order); [None] when idle.  Returns
    the job id, owning client, and reply. *)

val drop_client : t -> int -> int
(** Cancel every queued job owned by a disconnected client; returns how
    many were canceled.  Its terminal jobs stay retained. *)

val queued : t -> int
(** Live queued jobs — the admission-control gauge. *)

val pending : t -> bool

val stats_json : t -> Qcr_obs.Json.t
(** [{"submitted":..,"completed":..,"canceled":..,"shed":..,"queued":..,
    "limit":..}] — cumulative counts for the [stats] op. *)
