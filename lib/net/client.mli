(** Minimal blocking JSONL client for the TCP front-end — the test,
    bench and chaos harnesses drive servers through this.  One line out,
    one line back; [recv*] take a deadline so a dead server fails the
    caller instead of hanging it. *)

type t

val connect : ?host:string -> port:int -> unit -> t
(** @raise Unix.Unix_error when the server is not listening. *)

val close : t -> unit

val fd : t -> Unix.file_descr
(** For callers multiplexing several clients over [Unix.select]. *)

val send_line : t -> string -> unit
val send : t -> Qcr_obs.Json.t -> unit

val recv_line : ?timeout_s:float -> t -> (string, string) result
(** Next full line (LF-terminated, terminator stripped).  [Error "eof"]
    when the server closed the connection, [Error "timeout"] after
    [timeout_s] (default 30s) without a full line. *)

val recv : ?timeout_s:float -> t -> (Qcr_obs.Json.t, string) result

val request : ?timeout_s:float -> t -> Qcr_obs.Json.t -> (Qcr_obs.Json.t, string) result
(** [send] then [recv]. *)

val try_recv_line : t -> string option
(** Non-blocking: a buffered or immediately readable full line, else
    [None].  @raise End_of_file when the server closed the
    connection. *)

val submit_idempotent :
  ?host:string ->
  port:int ->
  ?attempts:int ->
  ?timeout_s:float ->
  idem:string ->
  Qcr_service.Compile_request.t ->
  (Qcr_obs.Json.t, string) result
(** The reconnect-and-resubmit half of the idempotent retry contract:
    (re)connect, [submit] the request with the idempotency key [idem],
    and [wait] the acked job to terminal; on {e any} failure — refused
    connect, mid-stream disconnect (e.g. the server was killed), a
    timeout, or an [Overloaded] refusal — reconnect with exponential
    backoff and resubmit with the {e same} key, which the server (with a
    journal, even across restarts) dedupes to the original job instead
    of duplicating it.  Submitting at least once plus server-side
    dedupe yields an exactly-once {e outcome}.  [Ok] carries the
    terminal job-state reply ([{"job":..,"state":"done"|"canceled",
    "reply":{...}}]); [Error] only after [attempts] (default 8) rounds
    all failed. *)
