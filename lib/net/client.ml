module Json = Qcr_obs.Json

type t = { fd : Unix.file_descr; buf : Buffer.t; scratch : Bytes.t }

let connect ?(host = "127.0.0.1") ~port () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; buf = Buffer.create 256; scratch = Bytes.create 65536 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let fd t = t.fd

let send_line t line =
  let payload = line ^ "\n" in
  let len = String.length payload in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write_substring t.fd payload !written (len - !written)
  done

let send t j = send_line t (Json.to_string j)

(* Pop one full line off the buffer, if present. *)
let take_line t =
  let s = Buffer.contents t.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear t.buf;
      Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
      Some (if line <> "" && line.[String.length line - 1] = '\r' then
              String.sub line 0 (String.length line - 1)
            else line)

let recv_line ?(timeout_s = 30.0) t =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match take_line t with
    | Some line -> Ok line
    | None -> (
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then Error "timeout"
        else
          match Unix.select [ t.fd ] [] [] remaining with
          | [], _, _ -> go ()
          | _ -> (
              match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
              | 0 -> if Buffer.length t.buf = 0 then Error "eof" else Error "eof mid-line"
              | n ->
                  Buffer.add_subbytes t.buf t.scratch 0 n;
                  go ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
              | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)))
  in
  go ()

let recv ?timeout_s t =
  match recv_line ?timeout_s t with
  | Error _ as e -> e
  | Ok line -> Json.of_string line

let request ?timeout_s t j =
  send t j;
  recv ?timeout_s t

(* ---------- idempotent retry ---------- *)

let member k = function Json.Obj fields -> List.assoc_opt k fields | _ -> None

let submit_line ~idem req =
  Json.to_string
    (Qcr_service.Protocol.encode (Qcr_service.Protocol.Op.Submit (req, Some idem)))

(* One attempt of the retry contract: (re)connect, submit with the
   idempotency key, then wait the acked job to terminal.  Every failure
   mode — refused connect, mid-stream disconnect, timeout, an error
   reply such as Overloaded — surfaces as [Error] so the caller can
   retry; the server dedupes the resubmit to the original job, so a job
   that was admitted before a crash is waited on, not duplicated. *)
let attempt ~host ~port ~timeout_s ~idem req =
  match connect ~host ~port () with
  | exception e -> Error ("connect: " ^ Printexc.to_string e)
  | c ->
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          match
            send_line c (submit_line ~idem req);
            recv ~timeout_s c
          with
          | exception e -> Error ("submit: " ^ Printexc.to_string e)
          | Error e -> Error ("submit: " ^ e)
          | Ok ack -> (
              match (member "status" ack, member "job" ack) with
              | Some (Json.Str "ok"), Some (Json.Str id) -> (
                  match
                    send c (Json.Obj [ ("v", Json.Num 2.0); ("op", Json.Str "wait");
                                       ("job", Json.Str id) ]);
                    recv ~timeout_s c
                  with
                  | exception e -> Error ("wait: " ^ Printexc.to_string e)
                  | Error e -> Error ("wait: " ^ e)
                  | Ok fin -> (
                      match (member "status" fin, member "state" fin) with
                      | Some (Json.Str "ok"), Some (Json.Str ("done" | "canceled")) -> Ok fin
                      | _ -> Error ("wait: unexpected reply " ^ Json.to_string fin)))
              | _ -> Error ("submit refused: " ^ Json.to_string ack)))

let submit_idempotent ?(host = "127.0.0.1") ~port ?(attempts = 8) ?(timeout_s = 30.0) ~idem req
    =
  let rec go n last_err =
    if n >= attempts then Error (Printf.sprintf "gave up after %d attempts: %s" attempts last_err)
    else begin
      if n > 0 then Unix.sleepf (Float.min 0.5 (0.02 *. float_of_int (1 lsl n)));
      match attempt ~host ~port ~timeout_s ~idem req with
      | Ok fin -> Ok fin
      | Error e -> go (n + 1) e
    end
  in
  go 0 "no attempts made"

let try_recv_line t =
  match take_line t with
  | Some line -> Some line
  | None -> (
      match Unix.select [ t.fd ] [] [] 0.0 with
      | [], _, _ -> None
      | _ -> (
          match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
          | 0 -> raise End_of_file
          | n ->
              Buffer.add_subbytes t.buf t.scratch 0 n;
              take_line t
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> None))
