module Request = Qcr_service.Compile_request
module Reply = Qcr_service.Compile_reply
module Pipeline = Qcr_core.Pipeline
module Json = Qcr_obs.Json
module Obs = Qcr_obs.Obs

let c_submitted = Obs.counter "jobs.submitted"
let c_completed = Obs.counter "jobs.completed"
let c_canceled = Obs.counter "jobs.canceled"
let c_shed = Obs.counter "jobs.shed"
let c_deduped = Obs.counter "jobs.deduped"
let c_recovered = Obs.counter "jobs.recovered"

type state =
  | Queued
  | Running
  | Done of Reply.t
  | Canceled of Reply.t

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done _ -> "done"
  | Canceled _ -> "canceled"

let is_terminal = function Done _ | Canceled _ -> true | Queued | Running -> false

type admission =
  | Admitted of string
  | Deduped of string

type job = {
  j_id : string;
  j_client : int;
  j_request : Request.t;
  j_idem : string option;
  mutable j_state : state;
  mutable j_weight : int;  (* serialized reply bytes once terminal *)
}

type t = {
  submit_fn : Request.t -> Reply.t;
  journal : Journal.t option;
  max_queue : int;
  retain_done : int;
  retain_bytes : int;
  jobs : (string, job) Hashtbl.t;
  queues : (int, job Queue.t) Hashtbl.t;  (* per-client FIFO of queued jobs *)
  rr : int Queue.t;  (* clients with a physically non-empty queue, dequeue order *)
  finished : string Queue.t;  (* terminal ids in completion order, for eviction *)
  idem_tbl : (string, string) Hashtbl.t;  (* idempotency key -> job id *)
  active : (int, int) Hashtbl.t;  (* client -> queued + running jobs *)
  mutable n_queued : int;  (* live [Queued] jobs only *)
  mutable n_finished : int;
  mutable finished_bytes : int;  (* reply bytes of retained terminal jobs *)
  mutable next_id : int;
  mutable submitted : int;
  mutable completed : int;
  mutable canceled : int;
  mutable shed : int;
  mutable deduped : int;
  mutable recovered : int;  (* admitted-but-unfinished jobs re-enqueued at replay *)
}

let seq_of_id id =
  match String.index_opt id '-' with
  | Some 1 when id.[0] = 'j' ->
      int_of_string_opt (String.sub id 2 (String.length id - 2)) |> Option.value ~default:0
  | _ -> 0

let failed_reply (req : Request.t) error =
  {
    Reply.id = req.Request.id;
    key = "";
    requested_mode = req.Request.mode;
    outcome = Reply.Failed error;
    cached = false;
    compile_ms = 0.0;
    trace = None;
  }

let bump_active t client d =
  let n = Option.value ~default:0 (Hashtbl.find_opt t.active client) + d in
  if n <= 0 then Hashtbl.remove t.active client else Hashtbl.replace t.active client n

let client_active t client = Hashtbl.mem t.active client

(* A terminal job enters the retention window, bounded both by count and
   by total serialized-reply bytes — one giant reply cannot be hidden
   behind a generous count.  The oldest fall out first, so a server that
   never sees a [result] op cannot grow without bound.  Ids already
   [take]n are simply absent. *)
let finish t (j : job) =
  (match j.j_state with
  | Done r | Canceled r -> j.j_weight <- String.length (Json.to_string (Reply.to_json r))
  | Queued | Running -> ());
  Queue.push j.j_id t.finished;
  t.n_finished <- t.n_finished + 1;
  t.finished_bytes <- t.finished_bytes + j.j_weight;
  while
    (t.n_finished > t.retain_done || t.finished_bytes > t.retain_bytes) && t.n_finished > 0
  do
    let id = Queue.pop t.finished in
    t.n_finished <- t.n_finished - 1;
    match Hashtbl.find_opt t.jobs id with
    | None -> ()
    | Some evicted ->
        t.finished_bytes <- t.finished_bytes - evicted.j_weight;
        Hashtbl.remove t.jobs id
  done

let enqueue t (j : job) =
  Hashtbl.add t.jobs j.j_id j;
  let q =
    match Hashtbl.find_opt t.queues j.j_client with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add t.queues j.j_client q;
        q
  in
  if Queue.is_empty q then Queue.push j.j_client t.rr;
  Queue.push j q;
  t.n_queued <- t.n_queued + 1;
  bump_active t j.j_client 1

(* Journal replay: completed jobs come back terminal (and retained, so
   late polls and idempotent resubmits find them); admitted-but-
   unfinished jobs re-enqueue under the reserved recovery client 0 and
   recompute — warm via the persistent compile cache.  Job numbering
   resumes above the highest replayed sequence. *)
let restore t (e : Journal.entry) =
  let id = Printf.sprintf "j-%d" e.Journal.e_seq in
  if not (Hashtbl.mem t.jobs id) then begin
    (match e.Journal.e_outcome with
    | Some (state, reply) ->
        let st = if state = "canceled" then Canceled reply else Done reply in
        let j =
          { j_id = id; j_client = 0; j_request = e.Journal.e_request; j_idem = e.Journal.e_idem;
            j_state = st; j_weight = 0 }
        in
        Hashtbl.add t.jobs id j;
        finish t j
    | None ->
        let j =
          { j_id = id; j_client = 0; j_request = e.Journal.e_request; j_idem = e.Journal.e_idem;
            j_state = Queued; j_weight = 0 }
        in
        enqueue t j;
        t.recovered <- t.recovered + 1;
        Obs.incr c_recovered);
    Option.iter (fun k -> Hashtbl.replace t.idem_tbl k id) e.Journal.e_idem;
    t.next_id <- max t.next_id e.Journal.e_seq
  end

let create ?(max_queue = 64) ?(retain_done = 256) ?(retain_bytes = 64 * 1024 * 1024) ?journal
    ~submit () =
  let t =
    {
      submit_fn = submit;
      journal;
      max_queue = max 1 max_queue;
      retain_done = max 1 retain_done;
      retain_bytes = max 1 retain_bytes;
      jobs = Hashtbl.create 64;
      queues = Hashtbl.create 16;
      rr = Queue.create ();
      finished = Queue.create ();
      idem_tbl = Hashtbl.create 16;
      active = Hashtbl.create 16;
      n_queued = 0;
      n_finished = 0;
      finished_bytes = 0;
      next_id = 0;
      submitted = 0;
      completed = 0;
      canceled = 0;
      shed = 0;
      deduped = 0;
      recovered = 0;
    }
  in
  Option.iter (fun jl -> List.iter (restore t) (Journal.entries jl)) journal;
  t

let journal_outcome t (j : job) =
  match (t.journal, j.j_state) with
  | Some jl, (Done r | Canceled r) ->
      (* non-fatal: the reply exists in memory; on the next replay the
         job merely recomputes, warm via the compile cache *)
      ignore (Journal.outcome jl ~seq:(seq_of_id j.j_id) ~state:(state_name j.j_state) r)
  | _ -> ()

let submit t ~client ?idem (req : Request.t) =
  let dedup =
    match idem with
    | None -> None
    | Some k -> (
        match Hashtbl.find_opt t.idem_tbl k with
        | Some id when Hashtbl.mem t.jobs id -> Some id
        | _ -> None (* never seen, or evicted from retention: admit afresh *))
  in
  match dedup with
  | Some id ->
      t.deduped <- t.deduped + 1;
      Obs.incr c_deduped;
      Ok (Deduped id)
  | None ->
      if t.n_queued >= t.max_queue then begin
        t.shed <- t.shed + 1;
        Obs.incr c_shed;
        Error (failed_reply req (Pipeline.Overloaded { queued = t.n_queued; limit = t.max_queue }))
      end
      else begin
        let seq = t.next_id + 1 in
        let journaled =
          match t.journal with
          | None -> Ok ()
          | Some jl -> Journal.admit jl ~seq ?idem req
        in
        match journaled with
        | Error e ->
            (* the ack would promise durability the journal cannot
               deliver, so the job is refused instead *)
            Error (failed_reply req (Pipeline.Internal ("journal append failed: " ^ e)))
        | Ok () ->
            t.next_id <- seq;
            let id = Printf.sprintf "j-%d" seq in
            let j =
              { j_id = id; j_client = client; j_request = req; j_idem = idem; j_state = Queued;
                j_weight = 0 }
            in
            enqueue t j;
            Option.iter (fun k -> Hashtbl.replace t.idem_tbl k id) idem;
            t.submitted <- t.submitted + 1;
            Obs.incr c_submitted;
            Ok (Admitted id)
      end

let find t id = Option.map (fun j -> j.j_state) (Hashtbl.find_opt t.jobs id)

let cancel t id =
  match Hashtbl.find_opt t.jobs id with
  | None -> None
  | Some j ->
      (match j.j_state with
      | Queued ->
          (* lazily: the job stays in its client queue and is skipped at
             dequeue time *)
          j.j_state <- Canceled (failed_reply j.j_request Pipeline.Canceled);
          t.n_queued <- t.n_queued - 1;
          t.canceled <- t.canceled + 1;
          bump_active t j.j_client (-1);
          Obs.incr c_canceled;
          journal_outcome t j;
          finish t j
      | Running | Done _ | Canceled _ -> ());
      Some j.j_state

let take t id =
  match Hashtbl.find_opt t.jobs id with
  | None -> None
  | Some j ->
      if is_terminal j.j_state then begin
        Hashtbl.remove t.jobs id;
        t.finished_bytes <- t.finished_bytes - j.j_weight
      end;
      Some j.j_state

(* Round-robin across clients, FIFO within a client.  The [rr] invariant:
   a client id is enqueued exactly once iff its queue is physically
   non-empty (canceled entries included), so each iteration below removes
   at least one queue or rr entry and the recursion terminates. *)
let rec run_next t =
  match Queue.take_opt t.rr with
  | None -> None
  | Some c -> (
      match Hashtbl.find_opt t.queues c with
      | None -> run_next t (* client dropped; stale rr entry *)
      | Some q ->
          let rec next_live () =
            match Queue.take_opt q with
            | None -> None
            | Some j -> if j.j_state = Queued then Some j else next_live ()
          in
          let found = next_live () in
          if not (Queue.is_empty q) then Queue.push c t.rr;
          (match found with
          | None -> run_next t
          | Some j ->
              j.j_state <- Running;
              t.n_queued <- t.n_queued - 1;
              let reply = t.submit_fn j.j_request in
              j.j_state <- Done reply;
              t.completed <- t.completed + 1;
              bump_active t j.j_client (-1);
              Obs.incr c_completed;
              journal_outcome t j;
              finish t j;
              Some (j.j_id, j.j_client, reply)))

let drop_client t client =
  let dropped = ref 0 in
  (match Hashtbl.find_opt t.queues client with
  | None -> ()
  | Some q ->
      Queue.iter
        (fun j ->
          if j.j_state = Queued then begin
            ignore (cancel t j.j_id);
            incr dropped
          end)
        q;
      Hashtbl.remove t.queues client);
  !dropped

let queued t = t.n_queued

let pending t = t.n_queued > 0

let recovered t = t.recovered

let retained_bytes t = t.finished_bytes

let list_json t =
  Hashtbl.fold (fun _ j acc -> j :: acc) t.jobs []
  |> List.sort (fun a b -> compare (seq_of_id a.j_id) (seq_of_id b.j_id))
  |> List.map (fun j ->
         Json.Obj
           ([
              ("job", Json.Str j.j_id);
              ("state", Json.Str (state_name j.j_state));
              ("id", Json.Str j.j_request.Request.id);
            ]
           @ match j.j_idem with None -> [] | Some k -> [ ("idem", Json.Str k) ]))
  |> fun l -> Json.Arr l

let stats_json t =
  Json.Obj
    [
      ("submitted", Json.Num (float_of_int t.submitted));
      ("completed", Json.Num (float_of_int t.completed));
      ("canceled", Json.Num (float_of_int t.canceled));
      ("shed", Json.Num (float_of_int t.shed));
      ("deduped", Json.Num (float_of_int t.deduped));
      ("recovered", Json.Num (float_of_int t.recovered));
      ("queued", Json.Num (float_of_int t.n_queued));
      ("limit", Json.Num (float_of_int t.max_queue));
      ("retained_bytes", Json.Num (float_of_int t.finished_bytes));
    ]
