module Request = Qcr_service.Compile_request
module Reply = Qcr_service.Compile_reply
module Pipeline = Qcr_core.Pipeline
module Json = Qcr_obs.Json
module Obs = Qcr_obs.Obs

let c_submitted = Obs.counter "jobs.submitted"
let c_completed = Obs.counter "jobs.completed"
let c_canceled = Obs.counter "jobs.canceled"
let c_shed = Obs.counter "jobs.shed"

type state =
  | Queued
  | Running
  | Done of Reply.t
  | Canceled of Reply.t

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done _ -> "done"
  | Canceled _ -> "canceled"

let is_terminal = function Done _ | Canceled _ -> true | Queued | Running -> false

type job = {
  j_id : string;
  j_client : int;
  j_request : Request.t;
  mutable j_state : state;
}

type t = {
  submit_fn : Request.t -> Reply.t;
  max_queue : int;
  retain_done : int;
  jobs : (string, job) Hashtbl.t;
  queues : (int, job Queue.t) Hashtbl.t;  (* per-client FIFO of queued jobs *)
  rr : int Queue.t;  (* clients with a physically non-empty queue, dequeue order *)
  finished : string Queue.t;  (* terminal ids in completion order, for eviction *)
  mutable n_queued : int;  (* live [Queued] jobs only *)
  mutable n_finished : int;
  mutable next_id : int;
  mutable submitted : int;
  mutable completed : int;
  mutable canceled : int;
  mutable shed : int;
}

let create ?(max_queue = 64) ?(retain_done = 256) ~submit () =
  {
    submit_fn = submit;
    max_queue = max 1 max_queue;
    retain_done = max 1 retain_done;
    jobs = Hashtbl.create 64;
    queues = Hashtbl.create 16;
    rr = Queue.create ();
    finished = Queue.create ();
    n_queued = 0;
    n_finished = 0;
    next_id = 0;
    submitted = 0;
    completed = 0;
    canceled = 0;
    shed = 0;
  }

let failed_reply (req : Request.t) error =
  {
    Reply.id = req.Request.id;
    key = "";
    requested_mode = req.Request.mode;
    outcome = Reply.Failed error;
    cached = false;
    compile_ms = 0.0;
    trace = None;
  }

(* A terminal job enters the bounded retention window; the oldest fall
   out so a server that never sees a [result] op cannot grow without
   bound.  Ids already [take]n are simply absent. *)
let finish t (j : job) =
  Queue.push j.j_id t.finished;
  t.n_finished <- t.n_finished + 1;
  while t.n_finished > t.retain_done do
    let id = Queue.pop t.finished in
    t.n_finished <- t.n_finished - 1;
    Hashtbl.remove t.jobs id
  done

let submit t ~client (req : Request.t) =
  if t.n_queued >= t.max_queue then begin
    t.shed <- t.shed + 1;
    Obs.incr c_shed;
    Error (failed_reply req (Pipeline.Overloaded { queued = t.n_queued; limit = t.max_queue }))
  end
  else begin
    t.next_id <- t.next_id + 1;
    let id = Printf.sprintf "j-%d" t.next_id in
    let j = { j_id = id; j_client = client; j_request = req; j_state = Queued } in
    Hashtbl.add t.jobs id j;
    let q =
      match Hashtbl.find_opt t.queues client with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.add t.queues client q;
          q
    in
    if Queue.is_empty q then Queue.push client t.rr;
    Queue.push j q;
    t.n_queued <- t.n_queued + 1;
    t.submitted <- t.submitted + 1;
    Obs.incr c_submitted;
    Ok id
  end

let find t id = Option.map (fun j -> j.j_state) (Hashtbl.find_opt t.jobs id)

let cancel t id =
  match Hashtbl.find_opt t.jobs id with
  | None -> None
  | Some j ->
      (match j.j_state with
      | Queued ->
          (* lazily: the job stays in its client queue and is skipped at
             dequeue time *)
          j.j_state <- Canceled (failed_reply j.j_request Pipeline.Canceled);
          t.n_queued <- t.n_queued - 1;
          t.canceled <- t.canceled + 1;
          Obs.incr c_canceled;
          finish t j
      | Running | Done _ | Canceled _ -> ());
      Some j.j_state

let take t id =
  match Hashtbl.find_opt t.jobs id with
  | None -> None
  | Some j ->
      if is_terminal j.j_state then Hashtbl.remove t.jobs id;
      Some j.j_state

(* Round-robin across clients, FIFO within a client.  The [rr] invariant:
   a client id is enqueued exactly once iff its queue is physically
   non-empty (canceled entries included), so each iteration below removes
   at least one queue or rr entry and the recursion terminates. *)
let rec run_next t =
  match Queue.take_opt t.rr with
  | None -> None
  | Some c -> (
      match Hashtbl.find_opt t.queues c with
      | None -> run_next t (* client dropped; stale rr entry *)
      | Some q ->
          let rec next_live () =
            match Queue.take_opt q with
            | None -> None
            | Some j -> if j.j_state = Queued then Some j else next_live ()
          in
          let found = next_live () in
          if not (Queue.is_empty q) then Queue.push c t.rr;
          (match found with
          | None -> run_next t
          | Some j ->
              j.j_state <- Running;
              t.n_queued <- t.n_queued - 1;
              let reply = t.submit_fn j.j_request in
              j.j_state <- Done reply;
              t.completed <- t.completed + 1;
              Obs.incr c_completed;
              finish t j;
              Some (j.j_id, j.j_client, reply)))

let drop_client t client =
  let dropped = ref 0 in
  (match Hashtbl.find_opt t.queues client with
  | None -> ()
  | Some q ->
      Queue.iter
        (fun j ->
          if j.j_state = Queued then begin
            ignore (cancel t j.j_id);
            incr dropped
          end)
        q;
      Hashtbl.remove t.queues client);
  !dropped

let queued t = t.n_queued

let pending t = t.n_queued > 0

let stats_json t =
  Json.Obj
    [
      ("submitted", Json.Num (float_of_int t.submitted));
      ("completed", Json.Num (float_of_int t.completed));
      ("canceled", Json.Num (float_of_int t.canceled));
      ("shed", Json.Num (float_of_int t.shed));
      ("queued", Json.Num (float_of_int t.n_queued));
      ("limit", Json.Num (float_of_int t.max_queue));
    ]
