module Service = Qcr_service.Service
module Json = Qcr_obs.Json
module Obs = Qcr_obs.Obs
module Registry = Qcr_obs.Registry
module Fault = Qcr_fault.Fault

let fp_accept = Fault.point "net.accept"
let fp_read = Fault.point "net.read"
let fp_write = Fault.point "net.write"

let c_accepted = Obs.counter "net.accepted"
let c_closed = Obs.counter "net.closed"
let c_lines = Obs.counter "net.lines"
let c_idle_closed = Obs.counter "net.idle_closed"
let c_oversize = Obs.counter "net.oversize_lines"
let c_read_faults = Obs.counter "net.read_faults"
let c_write_faults = Obs.counter "net.write_faults"
let c_accept_faults = Obs.counter "net.accept_faults"
let m_request_ms = Registry.meter "net.request_ms"

type config = {
  host : string;
  port : int;
  backlog : int;
  max_queue : int;
  max_line_bytes : int;
  idle_timeout_s : float;
  tick_s : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7117;
    backlog = 64;
    max_queue = 64;
    max_line_bytes = 8 * 1024 * 1024;
    idle_timeout_s = 300.0;
    tick_s = 0.05;
  }

let parse_listen s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "bad listen address %S: expected HOST:PORT" s)
  | Some i -> (
      let host = String.sub s 0 i in
      let port_s = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port_s with
      | Some port when port >= 0 && port <= 65535 ->
          Ok ((if host = "" then "0.0.0.0" else host), port)
      | _ -> Error (Printf.sprintf "bad listen port %S" port_s))

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> raise Not_found
      | h -> h.Unix.h_addr_list.(0))

type conn = {
  fd : Unix.file_descr;
  client : int;
  rbuf : Buffer.t;
  mutable out : string;  (* bytes accepted for write, not yet written *)
  mutable last_activity : float;
  mutable waits : string list;  (* job ids parked by the wait op *)
}

let serve ?(config = default_config) ?journal ?on_listen ?(stop = fun () -> false) service =
  (* a peer closing mid-write must surface as EPIPE, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (resolve_host config.host, config.port));
  Unix.listen lfd config.backlog;
  let bound_port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  Option.iter (fun f -> f bound_port) on_listen;
  let jobs = Jobs.create ~max_queue:config.max_queue ?journal ~submit:(Service.submit service) () in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let session =
    Session.create ~service ~jobs
      ~extra_stats:(fun () ->
        [ ("connections", Json.Num (float_of_int (Hashtbl.length conns))) ])
      ()
  in
  Registry.register_probe "net.connections" (fun () -> float_of_int (Hashtbl.length conns));
  Registry.register_probe "net.queue_depth" (fun () -> float_of_int (Jobs.queued jobs));
  Registry.register_probe "net.retained_bytes" (fun () ->
      float_of_int (Jobs.retained_bytes jobs));
  Registry.set_gauge (Registry.gauge "net.recovered_jobs")
    (float_of_int (Jobs.recovered jobs));
  let next_client = ref 0 in
  let close_conn ?(drop = true) conn =
    if Hashtbl.mem conns conn.fd then begin
      Hashtbl.remove conns conn.fd;
      if drop then ignore (Jobs.drop_client jobs conn.client);
      Obs.incr c_closed;
      try Unix.close conn.fd with Unix.Unix_error _ -> ()
    end
  in
  let enqueue_reply conn j =
    conn.out <- conn.out ^ Json.to_string j ^ "\n";
    conn.last_activity <- Unix.gettimeofday ()
  in
  (* Writes are opportunistic (every loop pass, not only on select
     writability) — at this request rate the buffer is almost always
     writable, and the select watch below covers the rare full one.  A
     [Crash] rule on net.write ships half the pending bytes and then
     hard-closes: a mid-frame disconnect as the client sees it. *)
  let flush_out conn =
    if conn.out <> "" then begin
      match Fault.fire fp_write with
      | exception Fault.Injected _ ->
          Obs.incr c_write_faults;
          let half = String.length conn.out / 2 in
          (try ignore (Unix.write_substring conn.fd conn.out 0 half)
           with Unix.Unix_error _ -> ());
          close_conn conn
      | () -> (
          match Unix.write_substring conn.fd conn.out 0 (String.length conn.out) with
          | n -> conn.out <- String.sub conn.out n (String.length conn.out - n)
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            -> ()
          | exception Unix.Unix_error _ -> close_conn conn)
    end
  in
  let handle_line conn line =
    if String.trim line <> "" then begin
      Obs.incr c_lines;
      let t0 = Unix.gettimeofday () in
      (match Session.handle session ~client:conn.client line with
      | Session.Reply j -> enqueue_reply conn j
      | Session.Wait_for id -> conn.waits <- conn.waits @ [ id ]);
      Registry.observe m_request_ms ((Unix.gettimeofday () -. t0) *. 1000.0);
      (* span buffers are per-request; counters and meters accumulate *)
      Obs.clear_spans ()
    end
  in
  let drain_lines conn =
    let continue = ref true in
    while !continue do
      let s = Buffer.contents conn.rbuf in
      match String.index_opt s '\n' with
      | None ->
          if Buffer.length conn.rbuf > config.max_line_bytes then begin
            Obs.incr c_oversize;
            enqueue_reply conn
              (Qcr_service.Protocol.error_reply
                 (Qcr_service.Protocol.Malformed
                    (Printf.sprintf "line exceeds %d bytes" config.max_line_bytes)));
            flush_out conn;
            close_conn conn
          end;
          continue := false
      | Some i ->
          let line = String.sub s 0 i in
          let line =
            if line <> "" && line.[String.length line - 1] = '\r' then
              String.sub line 0 (String.length line - 1)
            else line
          in
          Buffer.clear conn.rbuf;
          Buffer.add_substring conn.rbuf s (i + 1) (String.length s - i - 1);
          handle_line conn line;
          if not (Hashtbl.mem conns conn.fd) then continue := false
    done
  in
  let read_chunk = Bytes.create 65536 in
  let handle_readable conn =
    match Fault.fire fp_read with
    | exception Fault.Injected _ ->
        Obs.incr c_read_faults;
        close_conn conn (* injected connection reset *)
    | () -> (
        match Unix.read conn.fd read_chunk 0 (Bytes.length read_chunk) with
        | 0 -> close_conn conn (* EOF: client is gone; queued jobs cancel *)
        | n ->
            let chunk = Fault.corrupt fp_read (Bytes.sub_string read_chunk 0 n) in
            Buffer.add_string conn.rbuf chunk;
            conn.last_activity <- Unix.gettimeofday ();
            drain_lines conn
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            ()
        | exception Unix.Unix_error _ -> close_conn conn)
  in
  let accept_ready () =
    match Unix.accept lfd with
    | fd, _addr -> (
        match Fault.fire fp_accept with
        | exception Fault.Injected _ ->
            Obs.incr c_accept_faults;
            (try Unix.close fd with Unix.Unix_error _ -> ())
        | () ->
            Unix.set_nonblock fd;
            incr next_client;
            Obs.incr c_accepted;
            Hashtbl.replace conns fd
              {
                fd;
                client = !next_client;
                rbuf = Buffer.create 256;
                out = "";
                last_activity = Unix.gettimeofday ();
                waits = [];
              })
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  let run_one_job () = ignore (Jobs.run_next jobs) in
  (* Wake parked waits whose job turned terminal — by completing, by a
     cancel op, or by the submitting client disconnecting.  An id that
     vanished (evicted, or bogus) unparks with unknown_job rather than
     hanging the connection forever. *)
  let check_waits () =
    Hashtbl.iter
      (fun _ conn ->
        if conn.waits <> [] then
          let still_parked =
            List.filter
              (fun id ->
                match Jobs.find jobs id with
                | Some st when Jobs.is_terminal st ->
                    enqueue_reply conn (Session.job_state_reply id st);
                    false
                | Some _ -> true
                | None ->
                    enqueue_reply conn
                      (Qcr_service.Protocol.job_error_reply ~kind:"unknown_job" ~job:id
                         ~message:(Printf.sprintf "job %S vanished while waiting" id));
                    false)
              conn.waits
          in
          conn.waits <- still_parked)
      conns
  in
  let sweep_idle now =
    if config.idle_timeout_s > 0.0 then
      Hashtbl.fold (fun _ c acc -> c :: acc) conns []
      |> List.iter (fun conn ->
             (* a connection with parked waits, pending output, or
                admitted work (queued/running jobs) is not idle — closing
                the latter would cancel jobs the server already acked *)
             if
               conn.waits = [] && conn.out = ""
               && (not (Jobs.client_active jobs conn.client))
               && now -. conn.last_activity > config.idle_timeout_s
             then begin
               Obs.incr c_idle_closed;
               close_conn conn
             end)
  in
  let conn_list () = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
  (* main loop *)
  (try
     while not (stop ()) do
       let rfds = lfd :: List.map (fun c -> c.fd) (conn_list ()) in
       let wfds =
         List.filter_map (fun c -> if c.out <> "" then Some c.fd else None) (conn_list ())
       in
       let timeout = if Jobs.pending jobs then 0.0 else config.tick_s in
       let readable, writable, _ =
         try Unix.select rfds wfds [] timeout
         with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
       in
       if List.mem lfd readable then accept_ready ();
       List.iter
         (fun fd ->
           if fd <> lfd then
             match Hashtbl.find_opt conns fd with
             | Some conn -> handle_readable conn
             | None -> ())
         readable;
       run_one_job ();
       check_waits ();
       List.iter
         (fun fd ->
           match Hashtbl.find_opt conns fd with
           | Some conn -> flush_out conn
           | None -> ())
         writable;
       (* opportunistic flush for replies enqueued this pass *)
       List.iter (fun c -> flush_out c) (conn_list ());
       sweep_idle (Unix.gettimeofday ())
     done
   with
  | (Out_of_memory | Stack_overflow) as e -> raise e
  | Fault.Injected _ -> ());
  (* graceful drain: no new connections, run what was admitted, notify
     waiters, flush buffers (bounded), close everything *)
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  while Jobs.pending jobs do
    run_one_job ()
  done;
  check_waits ();
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec flush_all () =
    let dirty = List.filter (fun c -> c.out <> "") (conn_list ()) in
    if dirty <> [] && Unix.gettimeofday () < deadline then begin
      (match Unix.select [] (List.map (fun c -> c.fd) dirty) [] 0.05 with
      | _, writable, _ ->
          List.iter
            (fun fd ->
              match Hashtbl.find_opt conns fd with
              | Some conn -> flush_out conn
              | None -> ())
            writable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      flush_all ()
    end
  in
  flush_all ();
  List.iter (fun c -> close_conn ~drop:false c) (conn_list ())
