(** One protocol dispatcher for every transport.

    A session binds a {!Qcr_service.Service.t} and a {!Jobs.t} and turns
    raw wire lines into reply JSON via {!Qcr_service.Protocol} — the
    stdio loop and the TCP server share this code verbatim, which is
    what makes their replies bit-identical.

    The only op a transport must interpret itself is [wait]: a
    {!Wait_for} reaction means the job is not terminal yet, and the
    transport decides whether to park the connection (TCP) or drive the
    job queue inline (stdio). *)

type t

val create :
  ?extra_stats:(unit -> (string * Qcr_obs.Json.t) list) ->
  service:Qcr_service.Service.t ->
  jobs:Jobs.t ->
  unit ->
  t
(** [extra_stats] lets a transport append fields (e.g. connection
    counts) to the [stats] reply. *)

val jobs : t -> Jobs.t
val service : t -> Qcr_service.Service.t

type reaction =
  | Reply of Qcr_obs.Json.t  (** emit this line *)
  | Wait_for of string  (** park: answer with {!job_state_reply} once terminal *)

val handle : t -> client:int -> string -> reaction
(** Decode and execute one wire line.  Never raises (the service
    boundary catches; wire errors become typed error replies). *)

val job_state_reply : string -> Jobs.state -> Qcr_obs.Json.t
(** The reply for [poll]/[wait]/[cancel]/[result]: job id, state, and —
    when terminal — the full compile reply under ["reply"]. *)
