module Json = Qcr_obs.Json
module Obs = Qcr_obs.Obs
module Registry = Qcr_obs.Registry
module Request = Qcr_service.Compile_request
module Reply = Qcr_service.Compile_reply
module Store = Qcr_service.Cache_store
module Fault = Qcr_fault.Fault

(* Injection points mirroring the cache store's: [journal.append] probes
   every record as it is written (a corrupt rule flips a byte that lands
   on disk and is skipped at the next replay; a crash rule fails the
   append), [journal.replay] probes every record read back. *)
let append_point = Fault.point "journal.append"

let replay_point = Fault.point "journal.replay"

let c_appends = Obs.counter "net.journal_appends"
let c_append_failed = Obs.counter "net.journal_append_failed"
let c_replayed = Obs.counter "net.journal_replayed"
let c_skipped = Obs.counter "net.journal_skipped"
let g_bytes = Registry.gauge "net.journal_bytes"

let index_schema = "qcr-journal/v1"

let index_file = "index.json"

let segment_name gen = Printf.sprintf "jrn-%06d.qcj" gen

type entry = {
  e_seq : int;
  e_idem : string option;
  e_request : Request.t;
  mutable e_outcome : (string * Reply.t) option;
}

type t = {
  dir : string;
  mutable fd : Unix.file_descr option;  (* live segment of this incarnation *)
  mutable entries : entry list;  (* replayed, admission order *)
  mutable max_seq : int;
  mutable bytes : int;  (* validated bytes on disk via this handle *)
  mutable corrupt_skipped : int;
  mutable appends : int;
  mutable append_failed : int;
}

let dir t = t.dir

let entries t = t.entries

let max_seq t = t.max_seq

let bytes t = t.bytes

let corrupt_skipped t = t.corrupt_skipped

let appends t = t.appends

let append_failed t = t.append_failed

(* ---------- record bodies (JSON inside a Cache_store record) ---------- *)

let admit_key = "a"

let outcome_key = "o"

let admit_body ~seq ?idem req =
  let idem_field = match idem with None -> [] | Some k -> [ ("idem", Json.Str k) ] in
  Json.to_string
    (Json.Obj
       (( "seq", Json.Num (float_of_int seq) )
        :: (idem_field @ [ ("request", Request.to_json req) ])))

let outcome_body ~seq ~state reply =
  Json.to_string
    (Json.Obj
       [
         ("seq", Json.Num (float_of_int seq));
         ("state", Json.Str state);
         ("reply", Reply.to_json reply);
       ])

let seq_of j =
  match Json.member "seq" j with
  | Some (Json.Num f) when Float.is_integer f && f >= 1.0 -> Some (int_of_float f)
  | _ -> None

let parse_admit j =
  match (seq_of j, Json.member "request" j) with
  | Some seq, Some rj -> (
      match Request.of_json rj with
      | Error _ -> None
      | Ok req ->
          let idem = match Json.member "idem" j with Some (Json.Str k) -> Some k | _ -> None in
          Some (seq, idem, req))
  | _ -> None

let parse_outcome j =
  match (seq_of j, Json.member "state" j, Json.member "reply" j) with
  | Some seq, Some (Json.Str state), Some rj when state = "done" || state = "canceled" -> (
      match Reply.of_json rj with Error _ -> None | Ok r -> Some (seq, state, r))
  | _ -> None

(* ---------- replay ---------- *)

let skip t =
  t.corrupt_skipped <- t.corrupt_skipped + 1;
  Obs.incr c_skipped

(* One segment: same discipline as [Cache_store.scan_segment] — the
   first undecodable record abandons the segment's tail (boundaries
   cannot be trusted past a corruption), an injected corruption fails
   the digest re-check and skips just that record, and any exception
   (I/O, injected crash) abandons the segment too.  Returns validated
   bytes so truncated tails are not counted as durable. *)
let scan_segment t by_seq order path =
  match
    let s = Store.read_file path in
    let len = String.length s in
    let ok_bytes = ref 0 in
    let rec go pos =
      if pos >= len then ()
      else
        match Store.decode_record s ~pos with
        | Error _ -> skip t
        | Ok (key, body, next) ->
            let body' = Fault.corrupt replay_point body in
            if body' <> body then begin
              skip t;
              go next
            end
            else begin
              (match () with
              | () when key = admit_key -> (
                  match Option.bind (Result.to_option (Json.of_string body)) parse_admit with
                  | None -> skip t
                  | Some (seq, idem, req) ->
                      if not (Hashtbl.mem by_seq seq) then begin
                        let e = { e_seq = seq; e_idem = idem; e_request = req; e_outcome = None } in
                        Hashtbl.add by_seq seq e;
                        order := seq :: !order;
                        Obs.incr c_replayed
                      end)
              | () when key = outcome_key -> (
                  match Option.bind (Result.to_option (Json.of_string body)) parse_outcome with
                  | None -> skip t
                  | Some (seq, state, reply) -> (
                      (* an outcome whose admit record was lost is an
                         orphan: without the request there is nothing to
                         restore, so it is skipped, not trusted *)
                      match Hashtbl.find_opt by_seq seq with
                      | None -> skip t
                      | Some e -> e.e_outcome <- Some (state, reply)))
              | () -> skip t);
              ok_bytes := next - pos + !ok_bytes;
              go next
            end
    in
    go 0;
    !ok_bytes
  with
  | n -> n
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception _ ->
      skip t;
      0

let index_json ~next_gen ~segments =
  Json.Obj
    [
      ("schema", Json.Str index_schema);
      ("next_seq", Json.Num (float_of_int next_gen));
      ("segments", Json.Arr (List.map (fun s -> Json.Str s) segments));
    ]

let parse_index j =
  match (Json.member "schema" j, Json.member "next_seq" j, Json.member "segments" j) with
  | Some (Json.Str s), Some (Json.Num seq), Some (Json.Arr segs)
    when s = index_schema && Float.is_integer seq ->
      let rec names acc = function
        | [] -> Some (List.rev acc)
        | Json.Str n :: rest when Filename.basename n = n -> names (n :: acc) rest
        | _ -> None
      in
      Option.map (fun segs -> (int_of_float seq, segs)) (names [] segs)
  | _ -> None

let open_dir path =
  match
    Store.mkdir_p path;
    if not (Sys.is_directory path) then Error (path ^ ": not a directory")
    else begin
      let t =
        {
          dir = path;
          fd = None;
          entries = [];
          max_seq = 0;
          bytes = 0;
          corrupt_skipped = 0;
          appends = 0;
          append_failed = 0;
        }
      in
      let index_path = Filename.concat path index_file in
      let next_gen = ref 1 in
      let segments = ref [] in
      if Sys.file_exists index_path then begin
        match Option.bind (Result.to_option (Json.of_file index_path)) parse_index with
        | Some (gen, segs) ->
            next_gen := gen;
            segments := segs
        | None -> skip t
      end;
      let by_seq = Hashtbl.create 64 in
      let order = ref [] in
      let live =
        List.filter
          (fun seg ->
            let seg_path = Filename.concat path seg in
            match Unix.stat seg_path with
            | exception Unix.Unix_error _ ->
                skip t;
                false
            | st when st.Unix.st_size = 0 ->
                (* an incarnation that never admitted anything: prune *)
                (try Sys.remove seg_path with Sys_error _ -> ());
                false
            | _ ->
                t.bytes <- t.bytes + scan_segment t by_seq order seg_path;
                true)
          !segments
      in
      t.entries <-
        List.rev_map (fun seq -> Hashtbl.find by_seq seq) !order
        |> List.sort (fun a b -> compare a.e_seq b.e_seq);
      t.max_seq <- List.fold_left (fun acc e -> max acc e.e_seq) 0 t.entries;
      (* Open this incarnation's live segment: create it empty and
         atomically, publish it in the index (temp + rename), then
         append records to the open fd.  A crash between the two writes
         leaves an unreferenced file the next incarnation overwrites —
         the same window [Cache_store.append] has. *)
      let seg = segment_name !next_gen in
      let seg_path = Filename.concat path seg in
      Store.write_atomic seg_path "";
      Store.write_atomic index_path
        (Json.to_string (index_json ~next_gen:(!next_gen + 1) ~segments:(live @ [ seg ])) ^ "\n");
      t.fd <- Some (Unix.openfile seg_path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644);
      Registry.set_gauge g_bytes (float_of_int t.bytes);
      Ok t
    end
  with
  | r -> r
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception e -> Error (path ^ ": " ^ Printexc.to_string e)

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

(* ---------- append ---------- *)

(* A record is durable once the single [Unix.write] returns: the bytes
   are in the kernel regardless of what the process does next, which is
   exactly the kill -9 window the chaos soak certifies.  (Media-level
   durability would need fsync; that trade is documented in the
   README.) *)
let append_record t ~key body =
  match t.fd with
  | None -> Error "journal is closed"
  | Some fd -> (
      match
        let record = Fault.corrupt append_point (Store.encode_record ~key body) in
        let len = String.length record in
        let written = ref 0 in
        while !written < len do
          written := !written + Unix.write_substring fd record !written (len - !written)
        done;
        t.bytes <- t.bytes + len;
        t.appends <- t.appends + 1;
        Obs.incr c_appends;
        Registry.set_gauge g_bytes (float_of_int t.bytes)
      with
      | () -> Ok ()
      | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
      | exception e ->
          t.append_failed <- t.append_failed + 1;
          Obs.incr c_append_failed;
          Error (Printexc.to_string e))

let admit t ~seq ?idem req =
  if seq <= t.max_seq then Error (Printf.sprintf "journal sequence %d not monotone" seq)
  else
    match append_record t ~key:admit_key (admit_body ~seq ?idem req) with
    | Error _ as e -> e
    | Ok () ->
        t.max_seq <- seq;
        Ok ()

let outcome t ~seq ~state reply =
  append_record t ~key:outcome_key (outcome_body ~seq ~state reply)
