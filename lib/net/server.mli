(** Dependency-free TCP front-end: a single-domain [Unix.select] event
    loop speaking the JSONL wire protocol ({!Qcr_service.Protocol}) over
    concurrent connections.

    Concurrency model: all I/O is multiplexed in one domain, and queued
    jobs run one per loop tick through {!Jobs.run_next} — requests hit
    the underlying {!Qcr_service.Service.t} strictly sequentially, so
    every reply is bit-identical to the stdio loop serving the same
    lines.  (Parallelism lives below, in the service's portfolio arms
    over [Qcr_par.Pool]; the transport adds none of its own.)

    Robustness:
    - admission control: a full job queue answers with a typed
      [Overloaded] reply (see {!Jobs});
    - per-client fairness: round-robin dequeue across connections;
    - a client disconnect (EOF, reset, or broken write) cancels that
      client's queued jobs;
    - idle connections are closed after [idle_timeout_s] — but a
      connection with parked waits, pending output, or queued/running
      jobs is never idle-closed (closing it would cancel admitted
      work);
    - durability (optional): with [?journal], every admission is
      journaled before its ack and replayed at startup — see
      {!Journal} and {!Jobs};
    - oversized lines (beyond [max_line_bytes] without a newline) get an
      error reply and the connection is closed — framing cannot resync;
    - graceful drain: when [stop] turns true (e.g. from a SIGTERM
      handler) the server stops accepting, runs the jobs already
      queued, notifies waiters, flushes write buffers and exits.

    Fault points (chaos drills): [net.accept] fires per accepted
    connection, [net.read] per read with the payload corruptible
    (malformed lines), [net.write] per write burst — a [Crash] rule on
    read or write closes that connection mid-stream, which is exactly
    the mid-frame disconnect a real peer produces.  Faults never escape
    the loop. *)

type config = {
  host : string;
  port : int;  (** 0 binds an ephemeral port, reported via [on_listen] *)
  backlog : int;
  max_queue : int;  (** admission-control bound on queued jobs *)
  max_line_bytes : int;
  idle_timeout_s : float;
  tick_s : float;  (** select timeout when idle; bounds stop latency *)
}

val default_config : config
(** [{host = "127.0.0.1"; port = 7117; backlog = 64; max_queue = 64;
    max_line_bytes = 8 MiB; idle_timeout_s = 300.; tick_s = 0.05}] *)

val parse_listen : string -> (string * int, string) result
(** Parse a ["HOST:PORT"] option value ([":PORT"] means all
    interfaces). *)

val serve :
  ?config:config ->
  ?journal:Journal.t ->
  ?on_listen:(int -> unit) ->
  ?stop:(unit -> bool) ->
  Qcr_service.Service.t ->
  unit
(** Run the accept loop until [stop] returns true.  [on_listen] is
    called once with the bound port (useful with [port = 0]).
    [?journal] makes the job table durable (the caller keeps ownership
    of {!Journal.close}).  Exports [net.connections], [net.queue_depth]
    and [net.retained_bytes] registry probes, the [net.recovered_jobs]
    gauge, plus [net.*] counters and a [net.request_ms] meter while
    running. *)
