(** Write-ahead job journal: every admitted async job and its terminal
    outcome, durable across [kill -9].

    A journal is a directory of append-only segment files (one per
    server incarnation) plus the same temp+rename JSON index the cache
    store uses:

    {v
    journal-dir/
      index.json          {"schema": "qcr-journal/v1",
                           "next_seq": 3,
                           "segments": ["jrn-000001.qcj", "jrn-000002.qcj"]}
      jrn-000001.qcj      Cache_store records, appended one per event
      jrn-000002.qcj
    v}

    Records reuse {!Qcr_service.Cache_store.encode_record} (magic,
    lengths, {!Qcr_util.Digest64} over the body) with two keys:
    key ["a"] is an {e admission} — body
    [{"seq":N, "idem":KEY?, "request":{...}}] — and key ["o"] is a
    {e terminal outcome} — body
    [{"seq":N, "state":"done"|"canceled", "reply":{...}}].  [seq] is the
    monotone admission sequence; job ["j-N"] on the wire is sequence
    [N] in the journal.

    {b Durability.}  {!admit} is called before the submit ack leaves the
    server, and an append is durable once its [write(2)] returns: the
    record survives any subsequent process death (the kill -9 window the
    chaos soak certifies).  No fsync is issued, so an OS/power crash can
    still lose the page cache — the same trade the cache store makes.

    {b Replay.}  {!open_dir} validates every record; a flipped byte, a
    truncated tail, a bad magic or a malformed body is skipped (counted
    in {!corrupt_skipped}) and never replayed.  The first undecodable
    record abandons that segment's tail, because record boundaries
    cannot be trusted past a corruption.  An outcome without its
    admission is an orphan and is skipped too.

    {b Fault points.}  [journal.append] probes each record as written (a
    [corrupt] rule flips a byte that lands on disk and is rejected at
    the next replay; a [crash] rule fails the append so admission is
    refused), [journal.replay] probes each record read back.

    {b Metrics.}  [net.journal_appends], [net.journal_append_failed],
    [net.journal_replayed], [net.journal_skipped] counters and the
    [net.journal_bytes] registry gauge. *)

type t

type entry = {
  e_seq : int;  (** admission sequence; wire job id is ["j-<seq>"] *)
  e_idem : string option;  (** client-supplied idempotency key *)
  e_request : Qcr_service.Compile_request.t;
  mutable e_outcome : (string * Qcr_service.Compile_reply.t) option;
      (** [Some (state, reply)] with [state] ["done"] or ["canceled"]
          once terminal; [None] for admitted-but-unfinished jobs, which
          recovery re-enqueues *)
}

val open_dir : string -> (t, string) result
(** Open (creating the directory if needed), replay existing segments,
    and start this incarnation's live segment.  [Error] only on hard I/O
    failures; corrupt {e content} is skipped and counted instead. *)

val close : t -> unit
(** Close the live segment fd; further appends fail.  Idempotent. *)

val dir : t -> string

val entries : t -> entry list
(** Validated entries replayed by {!open_dir}, in sequence order.
    Appends through this handle are {e not} reflected here. *)

val max_seq : t -> int
(** Highest sequence replayed or admitted; 0 for a fresh journal.  Job
    numbering resumes above this. *)

val admit : t -> seq:int -> ?idem:string -> Qcr_service.Compile_request.t -> (unit, string) result
(** Append an admission record.  Must be called {e before} the submit
    ack is sent: [Error] (I/O failure, injected [journal.append] crash,
    or non-monotone [seq]) means the job must be refused, because its
    durability cannot be promised. *)

val outcome : t -> seq:int -> state:string -> Qcr_service.Compile_reply.t -> (unit, string) result
(** Append a terminal-outcome record.  A failure here is non-fatal for
    serving (the in-memory reply still exists); the job merely
    recomputes — warm via the compile cache — on the next replay. *)

val bytes : t -> int
(** Validated bytes replayed plus bytes appended — the
    [net.journal_bytes] gauge. *)

val corrupt_skipped : t -> int

val appends : t -> int

val append_failed : t -> int
