module Arch = Qcr_arch.Arch
module Noise = Qcr_arch.Noise
module Graph = Qcr_graph.Graph
module Paths = Qcr_graph.Paths
module Mapping = Qcr_circuit.Mapping
module Program = Qcr_circuit.Program
module Prng = Qcr_util.Prng
module Pqueue = Qcr_util.Pqueue

let quadratic_cost arch problem mapping =
  let dists = Arch.distances arch in
  let total = ref 0 in
  Graph.iter_edges
    (fun u v ->
      total :=
        !total
        + Paths.distance dists (Mapping.phys_of_log mapping u) (Mapping.phys_of_log mapping v))
    problem;
  !total

(* Error-weighted all-pairs distances: a hop across a link of error e
   costs 1 + 30e in fixed point (x1024), so routing distance still
   dominates while noisy regions are penalized (§5.3).  One Dijkstra per
   source; only computed at the device sizes where noise-aware placement
   engages. *)
let error_weighted_distances arch noise =
  let g = Arch.graph arch in
  let n = Graph.vertex_count g in
  let matrix = Array.make (n * n) max_int in
  let hop_cost u v = 1024 + int_of_float (30.0 *. 1024.0 *. Noise.cx_error noise u v) in
  for source = 0 to n - 1 do
    let dist = Array.make n max_int in
    let queue = Pqueue.create () in
    dist.(source) <- 0;
    Pqueue.push queue ~prio:0 source;
    let rec drain () =
      match Pqueue.pop queue with
      | None -> ()
      | Some (d, u) ->
          if d <= dist.(u) then
            Graph.iter_neighbors g u (fun v ->
                let nd = d + hop_cost u v in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  Pqueue.push queue ~prio:nd v
                end);
          drain ()
    in
    drain ();
    Array.blit dist 0 matrix (source * n) n
  done;
  matrix

let anneal ?(seed = 7) ?moves ?noise arch problem =
  let n_phys = Arch.qubit_count arch in
  let n_log = Graph.vertex_count problem in
  let moves =
    match moves with
    | Some m -> m
    | None ->
        (* each move costs O(avg degree); bound total work so dense
           1024-qubit problems do not spend longer placing than routing *)
        let avg_deg = 1 + (2 * Graph.edge_count problem / max 1 n_log) in
        min (300 * n_phys) (max 10_000 (25_000_000 / avg_deg))
  in
  let rng = Prng.create seed in
  (* Both cost models are a row-major [n_phys^2] int matrix; working on
     the raw array lets the inner fold hoist the row base and skip a
     closure call per neighbor. *)
  let cost_matrix =
    match noise with
    | None -> Paths.matrix (Arch.distances arch)
    | Some model -> error_weighted_distances arch model
  in
  let mapping = Mapping.identity ~logical:n_log ~physical:n_phys in
  let pol = Mapping.phys_backing mapping in
  (* Direct row walk with the token's own position hoisted: the anneal
     evaluates this four times per move, so it dominates placement time on
     dense problems — no closure call or list cell per neighbor. *)
  let incident_cost l =
    if l >= n_log then 0
    else begin
      let base = pol.(l) * n_phys in
      let row, deg = Graph.adj_row problem l in
      let total = ref 0 in
      for i = 0 to deg - 1 do
        let v = Array.unsafe_get row i in
        total := !total + Array.unsafe_get cost_matrix (base + Array.unsafe_get pol v)
      done;
      !total
    end
  in
  (* the fixed-point costs are 1024x larger, so temperature scales too *)
  let scale = match noise with None -> 1.0 | Some _ -> 1024.0 in
  let temperature i =
    let frac = float_of_int i /. float_of_int (max moves 1) in
    2.0 *. scale *. exp (-4.0 *. frac)
  in
  for i = 0 to moves - 1 do
    let p = Prng.int rng n_phys and q = Prng.int rng n_phys in
    if p <> q then begin
      let a = Mapping.log_of_phys mapping p and b = Mapping.log_of_phys mapping q in
      let before = incident_cost a + incident_cost b in
      Mapping.apply_swap mapping p q;
      let after = incident_cost a + incident_cost b in
      let delta = float_of_int (after - before) in
      let accept =
        delta <= 0.0 || Prng.float rng 1.0 < exp (-.delta /. max (temperature i) 1e-9)
      in
      if not accept then Mapping.apply_swap mapping p q
    end
  done;
  mapping

(* Restart the anneal from a few seeds; even at density 0.3-0.5 a better
   placement buys a few percent of depth for a cost that is small next to
   routing. *)
let candidates ?noise arch program =
  let problem = Program.graph program in
  let identity =
    Mapping.identity ~logical:(Graph.vertex_count problem) ~physical:(Arch.qubit_count arch)
  in
  if Graph.edge_count problem = 0 then [ identity ]
  else begin
    let seeds = if Graph.density problem >= 0.15 then [ 7; 13 ] else [ 7; 13; 29 ] in
    let annealed = List.map (fun seed -> anneal ~seed ?noise arch problem) seeds in
    (* a couple of short anneals diversify the pool: they stop at different
       local optima, which matters once link errors drive the final pick.
       Like the main anneal's budget, total work (moves x avg degree) is
       capped so dense thousand-qubit problems do not go quadratic; the
       cap is far above the budget at device sizes the ≤27-qubit suite
       uses, so small-device results are unchanged. *)
    let avg_deg =
      1 + (2 * Graph.edge_count problem / max 1 (Graph.vertex_count problem))
    in
    let short_budget =
      max 1000 (min (100 * Arch.qubit_count arch) (5_000_000 / avg_deg))
    in
    let short =
      List.map (fun seed -> anneal ~seed ~moves:short_budget ?noise arch problem) [ 7; 13 ]
    in
    let all = (identity :: annealed) @ short in
    let scored = List.map (fun m -> (quadratic_cost arch problem m, m)) all in
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) scored in
    (* drop exact duplicates (anneals often converge to the same layout) *)
    let rec dedup = function
      | (_, m) :: ((_, m') :: _ as rest) when Mapping.equal m m' -> dedup rest
      | (_, m) :: rest -> m :: dedup rest
      | [] -> []
    in
    dedup sorted
  end

let auto ?noise arch program =
  match candidates ?noise arch program with
  | best :: _ -> best
  | [] -> assert false
