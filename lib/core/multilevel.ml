module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Circuit = Qcr_circuit.Circuit
module Program = Qcr_circuit.Program
module Mapping = Qcr_circuit.Mapping

let level_program graph ~level ~gamma ~beta =
  let interaction =
    if level = 0 then Program.Qaoa_maxcut { gamma; beta } else Program.Qaoa_level { gamma; beta }
  in
  Program.make graph interaction

let logical_circuit graph ~angles =
  if Array.length angles = 0 then invalid_arg "Multilevel.logical_circuit: no angles";
  let c = Circuit.create (Graph.vertex_count graph) in
  Array.iteri
    (fun level (gamma, beta) ->
      let p = level_program graph ~level ~gamma ~beta in
      List.iter (Circuit.add c) (Circuit.gates (Program.logical_circuit p)))
    angles;
  c

let compile ?config ?noise ?init ?(restore = false) arch graph ~angles =
  if Array.length angles = 0 then invalid_arg "Multilevel.compile: no angles";
  Qcr_obs.Obs.with_span ~cat:"pipeline"
    ~args:[ ("levels", string_of_int (Array.length angles)) ]
    "multilevel.compile"
  @@ fun () ->
  let t0 = Sys.time () in
  let results = ref [] in
  let current_init = ref init in
  Array.iteri
    (fun level (gamma, beta) ->
      let program = level_program graph ~level ~gamma ~beta in
      let r =
        Qcr_obs.Obs.with_span ~cat:"pipeline"
          ~args:[ ("level", string_of_int level) ]
          "multilevel.level"
          (fun () -> Pipeline.run_exn (Pipeline.Request.make ?config ?noise ?init:!current_init arch program))
      in
      current_init := Some r.Pipeline.final;
      results := r :: !results)
    angles;
  let results = List.rev !results in
  let first = List.hd results and last = List.nth results (List.length results - 1) in
  let circuit =
    List.fold_left
      (fun acc (r : Pipeline.result) -> Circuit.concat acc r.Pipeline.circuit)
      (Circuit.create (Arch.qubit_count arch))
      results
  in
  let final = Mapping.copy last.Pipeline.final in
  let circuit =
    if restore && not (Mapping.equal final first.Pipeline.initial) then begin
      let cycles =
        Qcr_swapnet.Permute.restore_cycles ~coupling:(Arch.graph arch) ~current:final
          ~desired:first.Pipeline.initial
      in
      List.iter
        (fun cycle ->
          List.iter
            (function
              | Qcr_swapnet.Schedule.Swap (p, q) ->
                  Mapping.apply_swap final p q;
                  Circuit.add circuit (Qcr_circuit.Gate.Swap (p, q))
              | Qcr_swapnet.Schedule.Touch _ -> ())
            cycle)
        cycles;
      circuit
    end
    else circuit
  in
  {
    Pipeline.circuit;
    initial = first.Pipeline.initial;
    final;
    depth = Circuit.depth2q circuit;
    cx = Circuit.cx_count circuit;
    swap_count = List.fold_left (fun acc r -> acc + r.Pipeline.swap_count) 0 results;
    log_fidelity = List.fold_left (fun acc r -> acc +. r.Pipeline.log_fidelity) 0.0 results;
    strategy = first.Pipeline.strategy;
    compile_seconds = Sys.time () -. t0;
  }
