(** The full compiler workflow (paper §6.1, Fig 18), behind one
    request/reply entry point.

    {!run} takes a {!Request.t} naming the target device, the program and
    the compilation mode, and returns either a {!result} or a typed
    {!error} — the single code path every mode-specific entry point (and
    the [Qcr_service] compile server) goes through.

    For the default [Ours] mode, the engine runs greedy cycle by cycle;
    whenever the mapping changes (throttled on large devices) it records
    an ATA-completion prediction.  When no candidate gate remains, the
    selector compares the pure-greedy circuit against every recorded
    hybrid under the cost F and the winner is materialized: greedy is
    replayed deterministically up to the winning checkpoint and the rigid
    ATA completion is appended.  The checkpoint at cycle 0 is the pure
    solver-guided circuit cc0, so the output is never worse than rigidly
    following the clique pattern (Theorem 6.1) while beating it on sparse
    inputs.

    Compilation operates on the program's interaction block; the prologue
    and epilogue are attached verbatim around the routed block by
    {!finalize_body}, so no pre-stripping pass is needed (the former
    [interaction_only] helper was the identity and has been removed). *)

type strategy =
  | Pure_greedy
  | Pure_ata
  | Hybrid of int  (** greedy prefix length in cycles *)

type result = {
  circuit : Qcr_circuit.Circuit.t;  (** merged, physical wires *)
  initial : Qcr_circuit.Mapping.t;
  final : Qcr_circuit.Mapping.t;
  depth : int;      (** 2q critical path *)
  cx : int;         (** decomposed CX count *)
  swap_count : int;
  log_fidelity : float;  (** 0.0 without a noise model *)
  strategy : strategy;
  compile_seconds : float;
}

(** {1 The unified request/reply API} *)

module Request : sig
  type mode =
    | Ours  (** the full system: greedy + checkpointed ATA hybrids (§6.1) *)
    | Greedy  (** pure greedy arm (Fig 17 "greedy"); selector forced off *)
    | Ata
        (** rigid solver-guided pattern (Fig 17 "solver"): realize the
            clique ATA schedule from the initial mapping, skipping absent
            gates *)
    | Portfolio of { astar_budget : int }
        (** race ours/greedy/ata (and, on devices of at most 16 qubits,
            an anytime weighted-A* arm with [astar_budget] node
            expansions) over the domain pool and keep the best circuit
            under the selector metric; see {!compile_portfolio} for the
            arms-exposing variant *)

  type t = {
    id : string;
        (** request id propagated into the ["pipeline.run"] span (arg
            ["req"]) so traces can be sliced per request; [""] when
            anonymous *)
    arch : Qcr_arch.Arch.t;
    program : Qcr_circuit.Program.t;
    config : Config.t;
    noise : Qcr_arch.Noise.t option;
    init : Qcr_circuit.Mapping.t option;
    mode : mode;
  }

  val make :
    ?id:string ->
    ?config:Config.t ->
    ?noise:Qcr_arch.Noise.t ->
    ?init:Qcr_circuit.Mapping.t ->
    ?mode:mode ->
    Qcr_arch.Arch.t ->
    Qcr_circuit.Program.t ->
    t
  (** Defaults: [id ""], [Config.default], no noise model, automatic
      placement, mode [Ours]. *)

  val mode_name : mode -> string
  (** ["ours"], ["greedy"], ["ata"] or ["portfolio"]. *)
end

type error =
  | Timeout of { deadline_s : float }
      (** produced by deadline-enforcing callers such as the
          [Qcr_service] compile server; {!run} itself never times out *)
  | Invalid_request of string  (** the request fails validation *)
  | Internal of string  (** an unexpected exception, captured *)
  | Overloaded of { queued : int; limit : int }
      (** produced by admission-controlled front-ends ([Qcr_net]) when
          the bounded job queue is full; {!run} itself never sheds load *)
  | Canceled
      (** produced by the async job API when a queued job is canceled
          (explicitly or by its client disconnecting) before it ran *)

val error_to_string : error -> string

val run : Request.t -> (result, error) Stdlib.result
(** Validate the request (program fits the device, mapping and noise
    model match it), dispatch on the mode, and capture any unexpected
    exception as [Internal] — the only exceptions that escape are
    [Out_of_memory] and [Stack_overflow]. *)

val run_exn : Request.t -> result
(** [run] with the exception-based contract: [Invalid_request] raises
    [Invalid_argument], every other error raises [Failure].  Convenience
    for tests, benches and examples that treat errors as fatal. *)

val finalize_body :
  arch:Qcr_arch.Arch.t ->
  program:Qcr_circuit.Program.t ->
  noise:Qcr_arch.Noise.t option ->
  initial:Qcr_circuit.Mapping.t ->
  final:Qcr_circuit.Mapping.t ->
  strategy:strategy ->
  seconds:float ->
  Qcr_circuit.Circuit.t ->
  result
(** Wrap a routed interaction block with the program prologue/epilogue,
    merge interaction+swap pairs, and compute metrics.  Shared by the
    baseline compilers so every compiler is measured identically. *)

(** {1 Parallel compiler portfolio} *)

type portfolio = {
  winner : result;
  winner_arm : string;  (** "ours", "greedy", "ata", or "astar" *)
  arms : (string * result) list;
      (** every arm that completed, in fixed arm order *)
}

val run_portfolio : Request.t -> (portfolio, error) Stdlib.result
(** The arms-exposing sibling of [run ~mode:(Portfolio _)]: race the full
    system, pure greedy, rigid ATA, and (on devices of at most 16 qubits)
    an anytime weighted-A* arm with the request's [astar_budget] node
    expansions (30000 when the request mode is not [Portfolio]) across
    the default [Qcr_par.Pool], and keep the circuit with the best
    {!Selector.score} normalized to the greedy arm (ties favor the
    earlier arm).  Arms that cannot complete (the A* arm on large devices
    or with an exhausted budget) are dropped.  Every arm is
    deterministic, so the winner is identical for any [QCR_DOMAINS]
    value.  [winner.compile_seconds] is the whole portfolio's CPU time. *)

val run_portfolio_exn : Request.t -> portfolio
(** {!run_portfolio} with the exception-based contract of {!run_exn}. *)
