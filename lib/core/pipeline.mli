(** The full compiler workflow (paper §6.1, Fig 18).

    [compile] runs the greedy engine cycle by cycle; whenever the mapping
    changes (throttled on large devices) it records an ATA-completion
    prediction.  When no candidate gate remains, the selector compares the
    pure-greedy circuit against every recorded hybrid under the cost F and
    the winner is materialized: greedy is replayed deterministically up to
    the winning checkpoint and the rigid ATA completion is appended.

    The checkpoint at cycle 0 is the pure solver-guided circuit cc0, so the
    output is never worse than rigidly following the clique pattern
    (Theorem 6.1) while beating it on sparse inputs. *)

type strategy =
  | Pure_greedy
  | Pure_ata
  | Hybrid of int  (** greedy prefix length in cycles *)

type result = {
  circuit : Qcr_circuit.Circuit.t;  (** merged, physical wires *)
  initial : Qcr_circuit.Mapping.t;
  final : Qcr_circuit.Mapping.t;
  depth : int;      (** 2q critical path *)
  cx : int;         (** decomposed CX count *)
  swap_count : int;
  log_fidelity : float;  (** 0.0 without a noise model *)
  strategy : strategy;
  compile_seconds : float;
}

val compile :
  ?config:Config.t ->
  ?noise:Qcr_arch.Noise.t ->
  ?init:Qcr_circuit.Mapping.t ->
  Qcr_arch.Arch.t ->
  Qcr_circuit.Program.t ->
  result
(** The full system ("ours"). *)

val compile_greedy :
  ?config:Config.t ->
  ?noise:Qcr_arch.Noise.t ->
  ?init:Qcr_circuit.Mapping.t ->
  Qcr_arch.Arch.t ->
  Qcr_circuit.Program.t ->
  result
(** Pure greedy arm (Fig 17 "greedy"). *)

val compile_ata :
  ?noise:Qcr_arch.Noise.t ->
  ?init:Qcr_circuit.Mapping.t ->
  Qcr_arch.Arch.t ->
  Qcr_circuit.Program.t ->
  result
(** Rigid solver-guided pattern (Fig 17 "solver"): realize the clique ATA
    schedule from the initial mapping, skipping absent gates. *)

val finalize_body :
  arch:Qcr_arch.Arch.t ->
  program:Qcr_circuit.Program.t ->
  noise:Qcr_arch.Noise.t option ->
  initial:Qcr_circuit.Mapping.t ->
  final:Qcr_circuit.Mapping.t ->
  strategy:strategy ->
  seconds:float ->
  Qcr_circuit.Circuit.t ->
  result
(** Wrap a routed interaction block with the program prologue/epilogue,
    merge interaction+swap pairs, and compute metrics.  Shared by the
    baseline compilers so every compiler is measured identically. *)

val interaction_only : Qcr_circuit.Program.t -> Qcr_circuit.Program.t
(** Strip prologue/epilogue concerns: compilation operates on the
    interaction block; this helper is the identity today and exists for
    API clarity in examples. *)

(** {1 Parallel compiler portfolio} *)

type portfolio = {
  winner : result;
  winner_arm : string;  (** "ours", "greedy", "ata", or "astar" *)
  arms : (string * result) list;
      (** every arm that completed, in fixed arm order *)
}

val compile_portfolio :
  ?config:Config.t ->
  ?noise:Qcr_arch.Noise.t ->
  ?init:Qcr_circuit.Mapping.t ->
  ?astar_budget:int ->
  Qcr_arch.Arch.t ->
  Qcr_circuit.Program.t ->
  portfolio
(** Race the full system, pure greedy, rigid ATA, and (on devices of at
    most 16 qubits) an anytime weighted-A* arm with [astar_budget] node
    expansions (default 30000) across the default [Qcr_par.Pool], and
    keep the circuit with the best {!Selector.score} normalized to the
    greedy arm (ties favor the earlier arm).  Arms that cannot complete
    (the A* arm on large devices or with an exhausted budget) are
    dropped.  Every arm is deterministic, so the winner is identical for
    any [QCR_DOMAINS] value.  [winner.compile_seconds] is the whole
    portfolio's CPU time. *)
