module Arch = Qcr_arch.Arch
module Noise = Qcr_arch.Noise
module Graph = Qcr_graph.Graph
module Mapping = Qcr_circuit.Mapping
module Circuit = Qcr_circuit.Circuit
module Program = Qcr_circuit.Program
module Gate = Qcr_circuit.Gate
module Schedule = Qcr_swapnet.Schedule
module Ata = Qcr_swapnet.Ata
module Obs = Qcr_obs.Obs

let c_compiles = Obs.counter "pipeline.compiles"

let c_checkpoints = Obs.counter "pipeline.checkpoints_recorded"

let c_placements_tried = Obs.counter "pipeline.placements_tried"

let c_strategy_greedy = Obs.counter "pipeline.strategy.greedy"

let c_strategy_ata = Obs.counter "pipeline.strategy.ata"

let c_strategy_hybrid = Obs.counter "pipeline.strategy.hybrid"

(* Scale gauges: last-compile device size and throughput, exposed through
   Qcr_obs.Registry so {"op":"metrics"} reports compiler throughput at
   1000-qubit scale without any extra plumbing. *)
let g_device_qubits = Qcr_obs.Registry.gauge "pipeline.device_qubits"

let g_gates_per_second = Qcr_obs.Registry.gauge "pipeline.gates_per_second"

type strategy =
  | Pure_greedy
  | Pure_ata
  | Hybrid of int

type result = {
  circuit : Circuit.t;
  initial : Mapping.t;
  final : Mapping.t;
  depth : int;
  cx : int;
  swap_count : int;
  log_fidelity : float;
  strategy : strategy;
  compile_seconds : float;
}

(* finalize is defined below and re-exported as finalize_body *)

let count_swaps circuit =
  List.fold_left
    (fun acc g ->
      match g with Gate.Swap _ | Gate.Swap_interact _ -> acc + 1 | _ -> acc)
    0 (Circuit.gates circuit)

(* Wrap a routed interaction block with the program's prologue (under the
   initial mapping) and epilogue (under the final mapping). *)
let finalize ~arch ~program ~noise ~initial ~final ~strategy ~seconds body =
  Obs.with_span ~cat:"pipeline" "pipeline.finalize" @@ fun () ->
  Obs.incr
    (match strategy with
    | Pure_greedy -> c_strategy_greedy
    | Pure_ata -> c_strategy_ata
    | Hybrid _ -> c_strategy_hybrid);
  let n_phys = Arch.qubit_count arch in
  let circuit = Circuit.create n_phys in
  let place mapping gate = Gate.map_qubits (fun l -> Mapping.phys_of_log mapping l) gate in
  List.iter (fun g -> Circuit.add circuit (place initial g)) (Program.prologue program);
  List.iter (Circuit.add circuit) (Circuit.gates body);
  List.iter (fun g -> Circuit.add circuit (place final g)) (Program.epilogue program);
  let circuit = Circuit.merge_swaps circuit in
  Qcr_obs.Registry.set_gauge g_device_qubits (float_of_int n_phys);
  if seconds > 0.0 then
    Qcr_obs.Registry.set_gauge g_gates_per_second
      (float_of_int (List.length (Circuit.gates circuit)) /. seconds);
  {
    circuit;
    initial;
    final;
    depth = Circuit.depth2q circuit;
    cx = Circuit.cx_count circuit;
    swap_count = count_swaps circuit;
    log_fidelity = (match noise with Some m -> Circuit.log_fidelity m circuit | None -> 0.0);
    strategy;
    compile_seconds = seconds;
  }

let default_init arch program = Placement.auto arch program

let ata_impl ?noise ?init arch program =
  Obs.with_span ~cat:"pipeline" "pipeline.compile_ata" @@ fun () ->
  let t0 = Sys.time () in
  let initial =
    match init with
    | Some m -> m
    | None -> Obs.with_span ~cat:"pipeline" "pipeline.placement" (fun () -> default_init arch program)
  in
  let mapping = Mapping.copy initial in
  let body =
    Obs.with_span ~cat:"pipeline" "pipeline.ata_materialize" @@ fun () ->
    Predict.materialize ~use_regions:false ~arch ~program
      ~remaining:(Graph.copy (Program.graph program)) ~mapping ()
  in
  finalize ~arch ~program ~noise ~initial ~final:mapping ~strategy:Pure_ata
    ~seconds:(Sys.time () -. t0) body

let greedy_impl ?(config = Config.pure_greedy) ?noise ?init arch program =
  Obs.with_span ~cat:"pipeline" "pipeline.compile_greedy" @@ fun () ->
  let t0 = Sys.time () in
  let config = { config with Config.use_selector = false } in
  let initial =
    match init with
    | Some m -> m
    | None -> Obs.with_span ~cat:"pipeline" "pipeline.placement" (fun () -> default_init arch program)
  in
  let engine = Greedy.create ~config ?noise ~arch ~program ~init:initial () in
  Obs.with_span ~cat:"pipeline" "pipeline.greedy" (fun () -> Greedy.run_to_completion engine);
  finalize ~arch ~program ~noise ~initial ~final:(Greedy.mapping engine) ~strategy:Pure_greedy
    ~seconds:(Sys.time () -. t0)
    (Greedy.circuit engine)

(* Cheap cost projection of "greedy prefix + ATA completion": depth uses
   the committed prefix depth plus the prediction's cycles; CX counts
   2 per remaining interaction and 3 per predicted swap, minus the 2-CX
   credit for each predicted interaction+swap fusion; fidelity uses the
   device's mean link error. *)
let project ~noise ~prefix_depth ~prefix_cx ~prefix_logfid ~mean_log_success
    (p : Predict.estimate) ~checkpoint_cycle =
  let added_cx =
    (2 * p.Predict.gates) + (3 * p.Predict.swaps) - (2 * p.Predict.merged)
  in
  let cx = prefix_cx + added_cx in
  let log_fid =
    match noise with
    | Some _ -> prefix_logfid +. (float_of_int added_cx *. mean_log_success)
    | None -> 0.0
  in
  {
    Selector.checkpoint_cycle;
    depth = prefix_depth + p.Predict.cycles;
    cx;
    log_fid;
  }

let mean_log_success_of ~noise ~arch =
  match noise with
  | None -> 0.0
  | Some m ->
      let total = ref 0.0 and count = ref 0 in
      Graph.iter_edges
        (fun u v ->
          total := !total +. Noise.log_success_cx m u v;
          incr count)
        (Arch.graph arch);
      if !count = 0 then 0.0 else !total /. float_of_int !count

let rec ours_impl ?(config = Config.default) ?noise ?init arch program =
  Obs.incr c_compiles;
  match (init, noise) with
  | None, Some _ when Arch.qubit_count arch <= 128 && config.Config.use_selector ->
      (* Qubit error variability (§5.3): on device sizes where a real run
         is plausible, compile each candidate placement and keep the best
         final circuit under the selector cost F. *)
      Obs.with_span ~cat:"pipeline" "pipeline.placement_selection" @@ fun () ->
      let t0 = Sys.time () in
      (* Candidate placements compile independently; fan them out over the
         pool.  Each compilation is deterministic and the best-of fold
         below runs in candidate order, so the winner does not depend on
         the pool size. *)
      let results =
        Array.to_list
          (Qcr_par.Pool.map
             (Qcr_par.Pool.default ())
             (fun candidate ->
               Obs.incr c_placements_tried;
               ours_impl ~config ?noise ~init:candidate arch program)
             (Array.of_list (Placement.candidates ?noise arch program)))
      in
      (* Expected fidelity of a run: gate errors (log_fidelity) plus the
         idle-decoherence term (duration x active qubits).  Larger is
         better. *)
      let n_log = Program.qubit_count program in
      let expected_log_fid r =
        r.log_fidelity +. Noise.decoherence_log_fidelity ~depth:r.depth ~qubits:n_log
      in
      let best =
        match results with
        | [] -> assert false
        | first :: rest ->
            List.fold_left
              (fun acc r -> if expected_log_fid r > expected_log_fid acc then r else acc)
              first rest
      in
      { best with compile_seconds = Sys.time () -. t0 }
  | _ -> compile_one ~config ?noise ?init arch program

and compile_one ?(config = Config.default) ?noise ?init arch program =
  Obs.with_span ~cat:"pipeline" "pipeline.compile" @@ fun () ->
  let t0 = Sys.time () in
  let initial =
    match init with
    | Some m -> m
    | None -> Obs.with_span ~cat:"pipeline" "pipeline.placement" (fun () -> default_init arch program)
  in
  let n_phys = Arch.qubit_count arch in
  let stride =
    match config.Config.predict_stride with
    | Some s -> max 1 s
    | None -> max 1 (n_phys / 8)
  in
  let cycle_cap =
    match config.Config.max_greedy_cycles with
    | Some c -> c
    | None -> (20 * n_phys) + 200
  in
  let engine = Greedy.create ~config ?noise ~arch ~program ~init:initial () in
  let mean_log_success = mean_log_success_of ~noise ~arch in
  let use_regions = config.Config.use_regions in
  let checkpoints = ref [] in
  let record () =
    Obs.with_span ~cat:"pipeline" "pipeline.checkpoint_predict" @@ fun () ->
    Obs.incr c_checkpoints;
    let prefix = Greedy.circuit engine in
    let prediction =
      Predict.estimate ~use_regions ~arch ~remaining:(Greedy.remaining engine)
        ~mapping:(Greedy.mapping engine) ()
    in
    let candidate =
      project ~noise
        ~prefix_depth:(Circuit.depth2q prefix)
        ~prefix_cx:(Circuit.cx_count prefix)
        ~prefix_logfid:
          (match noise with Some m -> Circuit.log_fidelity m prefix | None -> 0.0)
        ~mean_log_success prediction ~checkpoint_cycle:(Greedy.cycle engine)
    in
    checkpoints := candidate :: !checkpoints
  in
  if config.Config.use_selector then record (); (* cc0: pure ATA *)
  let last_recorded = ref 0 in
  let aborted = ref false in
  Obs.with_span ~cat:"pipeline" "pipeline.greedy" (fun () ->
      while (not (Greedy.finished engine)) && not !aborted do
        let mapping_changed = Greedy.step engine in
        if Greedy.cycle engine > cycle_cap then aborted := true
        else if
          config.Config.use_selector && mapping_changed
          && Greedy.cycle engine - !last_recorded >= stride
          && not (Greedy.finished engine)
        then begin
          last_recorded := Greedy.cycle engine;
          record ()
        end
      done);
  if !aborted then record ();
  let greedy_body = Greedy.circuit engine in
  let greedy_depth = Circuit.depth2q greedy_body in
  let greedy_cx = Circuit.cx_count greedy_body in
  let greedy_log_fid =
    match noise with Some m -> Circuit.log_fidelity m greedy_body | None -> 0.0
  in
  let choice =
    if !aborted then begin
      (* greedy did not converge within the linear-depth budget: take the
         best hybrid (cc0 exists, so one is always available) *)
      match
        List.sort (fun a b -> compare a.Selector.checkpoint_cycle b.Selector.checkpoint_cycle)
          !checkpoints
      with
      | [] -> `Greedy
      | cs ->
          let score_of =
            Selector.score ~alpha:config.Config.alpha ~ref_depth:(max greedy_depth 1)
              ~ref_cx:(max greedy_cx 1) ~ref_log_fid:greedy_log_fid
          in
          `Hybrid
            (List.fold_left
               (fun best c -> if score_of c < score_of best then c else best)
               (List.hd cs) cs)
    end
    else if config.Config.use_selector then
      Selector.best ~alpha:config.Config.alpha ~greedy_depth ~greedy_cx ~greedy_log_fid
        !checkpoints
    else `Greedy
  in
  match choice with
  | `Greedy ->
      finalize ~arch ~program ~noise ~initial ~final:(Greedy.mapping engine)
        ~strategy:Pure_greedy
        ~seconds:(Sys.time () -. t0)
        greedy_body
  | `Hybrid candidate ->
      (* Replay greedy deterministically up to the checkpoint, then append
         the materialized ATA completion. *)
      let cut = candidate.Selector.checkpoint_cycle in
      let engine2 = Greedy.create ~config ?noise ~arch ~program ~init:initial () in
      Obs.with_span ~cat:"pipeline" "pipeline.greedy_replay" (fun () ->
          Greedy.run_until engine2 cut);
      let mapping = Mapping.copy (Greedy.mapping engine2) in
      let completion =
        Obs.with_span ~cat:"pipeline" "pipeline.ata_materialize" @@ fun () ->
        Predict.materialize ~use_regions ~arch ~program
          ~remaining:(Graph.copy (Greedy.remaining engine2))
          ~mapping ()
      in
      let body = Circuit.concat (Greedy.circuit engine2) completion in
      let strategy = if cut = 0 then Pure_ata else Hybrid cut in
      finalize ~arch ~program ~noise ~initial ~final:mapping ~strategy
        ~seconds:(Sys.time () -. t0)
        body

let finalize_body = finalize

(* ---------- parallel compiler portfolio ---------- *)

type portfolio = {
  winner : result;
  winner_arm : string;
  arms : (string * result) list;
}

let c_portfolios = Obs.counter "pipeline.portfolios"

(* Depth-optimal (or anytime weighted) A* arm.  Only viable on small
   devices: each search edge enumerates vertex-disjoint action sets, so
   the branching factor explodes with the coupling width.  [None] when
   the device is too large or the node budget exhausts. *)
let astar_arm ?noise ?init ~node_budget arch program =
  if Arch.qubit_count arch > 16 then None
  else begin
    let t0 = Sys.time () in
    let initial =
      match init with Some m -> m | None -> default_init arch program
    in
    match
      Qcr_solver.Astar.solve ~node_budget ~weight:1.5
        ~problem:(Program.graph program) ~coupling:(Arch.graph arch)
        ~init:initial ()
    with
    | None -> None
    | Some o ->
        let sched = Qcr_solver.Astar.schedule_of_outcome o ~init:initial in
        let mapping = Mapping.copy initial in
        let r =
          Schedule.realize ~program ~mapping ~n_phys:(Arch.qubit_count arch) sched
        in
        Some
          (finalize ~arch ~program ~noise ~initial ~final:mapping
             ~strategy:Pure_ata
             ~seconds:(Sys.time () -. t0)
             r.Schedule.circuit)
  end

let portfolio_impl ?(config = Config.default) ?noise ?init
    ?(astar_budget = 30_000) arch program =
  Obs.with_span ~cat:"pipeline" "pipeline.compile_portfolio" @@ fun () ->
  Obs.incr c_portfolios;
  let t0 = Sys.time () in
  let arms =
    [|
      ("ours", fun () -> Some (ours_impl ~config ?noise ?init arch program));
      ("greedy", fun () -> Some (greedy_impl ?noise ?init arch program));
      ("ata", fun () -> Some (ata_impl ?noise ?init arch program));
      ("astar", fun () -> astar_arm ?noise ?init ~node_budget:astar_budget arch program);
    |]
  in
  let completed =
    Qcr_par.Pool.map
      (Qcr_par.Pool.default ())
      (fun (name, run) -> Option.map (fun r -> (name, r)) (run ()))
    arms
    |> Array.to_list |> List.filter_map Fun.id
  in
  (* Every arm is deterministic on its own, [Pool.map] preserves arm
     order, and the fold below takes a later arm only on a strict
     improvement — so the winner is independent of the pool size. *)
  let reference =
    match List.assoc_opt "greedy" completed with
    | Some r -> r
    | None -> snd (List.hd completed)
  in
  let score r =
    Selector.score ~alpha:config.Config.alpha
      ~ref_depth:(Stdlib.max reference.depth 1)
      ~ref_cx:(Stdlib.max reference.cx 1)
      ~ref_log_fid:reference.log_fidelity
      {
        Selector.checkpoint_cycle = 0;
        depth = r.depth;
        cx = r.cx;
        log_fid = r.log_fidelity;
      }
  in
  let winner_arm, winner =
    match completed with
    | [] -> assert false (* "ours"/"greedy"/"ata" always complete *)
    | first :: rest ->
        List.fold_left
          (fun ((_, best) as acc) ((_, r) as cand) ->
            if score r < score best then cand else acc)
          first rest
  in
  { winner = { winner with compile_seconds = Sys.time () -. t0 }; winner_arm; arms = completed }

(* ---------- unified request/reply entry point ---------- *)

module Request = struct
  type mode =
    | Ours
    | Greedy
    | Ata
    | Portfolio of { astar_budget : int }

  type t = {
    id : string; (* request id propagated into spans; "" when anonymous *)
    arch : Arch.t;
    program : Program.t;
    config : Config.t;
    noise : Noise.t option;
    init : Mapping.t option;
    mode : mode;
  }

  let make ?(id = "") ?(config = Config.default) ?noise ?init ?(mode = Ours) arch program =
    { id; arch; program; config; noise; init; mode }

  let mode_name = function
    | Ours -> "ours"
    | Greedy -> "greedy"
    | Ata -> "ata"
    | Portfolio _ -> "portfolio"
end

type error =
  | Timeout of { deadline_s : float }
  | Invalid_request of string
  | Internal of string
  | Overloaded of { queued : int; limit : int }
  | Canceled

let error_to_string = function
  | Timeout { deadline_s } -> Printf.sprintf "deadline of %gs expired" deadline_s
  | Invalid_request msg -> "invalid request: " ^ msg
  | Internal msg -> "internal error: " ^ msg
  | Overloaded { queued; limit } ->
      Printf.sprintf "overloaded: %d jobs queued (limit %d)" queued limit
  | Canceled -> "canceled"

let validate (req : Request.t) =
  let n_log = Program.qubit_count req.Request.program in
  let n_phys = Arch.qubit_count req.Request.arch in
  if n_log > n_phys then
    Error
      (Invalid_request
         (Printf.sprintf "program needs %d qubits but %s has only %d" n_log
            (Arch.name req.Request.arch) n_phys))
  else
    match req.Request.init with
    | Some m when Mapping.physical_count m <> n_phys ->
        Error
          (Invalid_request
             (Printf.sprintf "initial mapping covers %d physical qubits, device has %d"
                (Mapping.physical_count m) n_phys))
    | Some m when Mapping.logical_count m < n_log ->
        Error
          (Invalid_request
             (Printf.sprintf "initial mapping covers %d logical qubits, program has %d"
                (Mapping.logical_count m) n_log))
    | _ -> (
        match req.Request.noise with
        | Some nm when Arch.qubit_count (Noise.arch nm) <> n_phys ->
            Error (Invalid_request "noise model was sampled for a different device")
        | _ -> Ok ())

let run (req : Request.t) =
  match validate req with
  | Error _ as e -> e
  | Ok () -> (
      let { Request.id; arch; program; config; noise; init; mode } = req in
      let args =
        let mode_arg = ("mode", Request.mode_name mode) in
        if id = "" then [ mode_arg ] else [ ("req", id); mode_arg ]
      in
      Obs.with_span ~cat:"pipeline" ~args "pipeline.run" @@ fun () ->
      try
        Ok
          (match mode with
          | Request.Ours -> ours_impl ~config ?noise ?init arch program
          | Request.Greedy -> greedy_impl ~config ?noise ?init arch program
          | Request.Ata -> ata_impl ?noise ?init arch program
          | Request.Portfolio { astar_budget } ->
              (portfolio_impl ~config ?noise ?init ~astar_budget arch program).winner)
      with
      | (Out_of_memory | Stack_overflow) as e -> raise e
      | e -> Error (Internal (Printexc.to_string e)))

(* Exception-raising conveniences over [run]: a typed error surfaces as
   [Invalid_argument] or [Failure].  Callers that care about the error
   constructor use [run] / [run_portfolio] directly. *)

let unwrap = function
  | Ok r -> r
  | Error (Invalid_request msg) -> invalid_arg ("Pipeline: " ^ msg)
  | Error e -> failwith ("Pipeline: " ^ error_to_string e)

let run_exn req = unwrap (run req)

let run_portfolio (req : Request.t) =
  match validate req with
  | Error _ as e -> e
  | Ok () -> (
      let { Request.arch; program; config; noise; init; mode; _ } = req in
      let astar_budget =
        match mode with Request.Portfolio { astar_budget } -> astar_budget | _ -> 30_000
      in
      try Ok (portfolio_impl ~config ?noise ?init ~astar_budget arch program) with
      | (Out_of_memory | Stack_overflow) as e -> raise e
      | e -> Error (Internal (Printexc.to_string e)))

let run_portfolio_exn req =
  match run_portfolio req with
  | Ok p -> p
  | Error (Invalid_request msg) -> invalid_arg ("Pipeline: " ^ msg)
  | Error e -> failwith ("Pipeline: " ^ error_to_string e)
