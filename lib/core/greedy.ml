module Arch = Qcr_arch.Arch
module Noise = Qcr_arch.Noise
module Graph = Qcr_graph.Graph
module Paths = Qcr_graph.Paths
module Matching = Qcr_graph.Matching
module Mapping = Qcr_circuit.Mapping
module Circuit = Qcr_circuit.Circuit
module Program = Qcr_circuit.Program
module Gate = Qcr_circuit.Gate
module Obs = Qcr_obs.Obs

let c_cycles = Obs.counter "greedy.cycles"

let c_gates = Obs.counter "greedy.gates_committed"

let c_swaps = Obs.counter "greedy.swaps_committed"

let c_forced = Obs.counter "greedy.forced_moves"

let c_stall_recoveries = Obs.counter "greedy.stall_recoveries"

let h_gates_per_cycle = Obs.histogram "greedy.gates_per_cycle"

type t = {
  arch : Arch.t;
  config : Config.t;
  noise : Noise.t option;
  program : Program.t;
  remaining : Graph.t;
  mapping : Mapping.t;
  circuit : Circuit.t;
  dists : Paths.distances;
  coupling_edges : (int * int) array;
  n_log : int;
  mutable cycle : int;
  mutable swaps : int;
  mutable remaining_gates : int;
  mutable stalled : int; (* consecutive cycles without a gate execution *)
  last_swap_cycle : (int, int) Hashtbl.t; (* physical-edge key -> cycle *)
  partner_cache : int array; (* logical -> cached closest remaining partner *)
  partner_age : int array; (* cycle at which the cache entry was computed *)
  gain : float array; (* scratch: per-physical-edge swap gain, cleared per cycle *)
}

let edge_key t p q =
  let n = Arch.qubit_count t.arch in
  (min p q * n) + max p q

let create ?(config = Config.default) ?noise ~arch ~program ~init () =
  let remaining = Graph.copy (Program.graph program) in
  {
    arch;
    config;
    noise;
    program;
    remaining;
    mapping = Mapping.copy init;
    circuit = Circuit.create (Arch.qubit_count arch);
    dists = Arch.distances arch;
    coupling_edges = Array.of_list (Graph.edges (Arch.graph arch));
    n_log = Program.qubit_count program;
    cycle = 0;
    swaps = 0;
    remaining_gates = Graph.edge_count remaining;
    stalled = 0;
    last_swap_cycle = Hashtbl.create 256;
    partner_cache = Array.make (max (Program.qubit_count program) 1) (-1);
    partner_age = Array.make (max (Program.qubit_count program) 1) min_int;
    gain = Array.make (Arch.qubit_count arch * Arch.qubit_count arch) 0.0;
  }

let finished t = t.remaining_gates = 0

let cycle t = t.cycle

let swaps t = t.swaps

let remaining t = t.remaining

let remaining_gate_count t = t.remaining_gates

let mapping t = t.mapping

let circuit t = t.circuit

let dist t p q = Paths.distance t.dists p q

(* Hardware-compliant gates this cycle: scan the coupling edges once
   (O(device edges), independent of the program size). *)
let executable_gates t =
  Array.to_list t.coupling_edges
  |> List.filter_map (fun (p, q) ->
         let a = Mapping.log_of_phys t.mapping p and b = Mapping.log_of_phys t.mapping q in
         if a < t.n_log && b < t.n_log && Graph.has_edge t.remaining a b then
           Some ((a, b), (p, q))
         else None)

(* Crosstalk conflict: two parallel 2q gates whose sites are adjacent on
   the device (§5.3). *)
let crosstalk_conflict t (p1, q1) (p2, q2) =
  let g = Arch.graph t.arch in
  Graph.has_edge g p1 p2 || Graph.has_edge g p1 q2 || Graph.has_edge g q1 p2
  || Graph.has_edge g q1 q2

(* Choose a disjoint subset of the executable gates.  With coloring on we
   build the conflict graph (shared qubit, optionally crosstalk) and take
   the largest color class (§6.2); otherwise first-fit. *)
let choose_gates t candidates =
  let conflict_path = t.config.Config.use_coloring || t.config.Config.crosstalk_aware in
  match candidates with
  | [] -> []
  | _ when not conflict_path ->
      let used = Hashtbl.create 16 in
      List.filter
        (fun (_, (p, q)) ->
          if Hashtbl.mem used p || Hashtbl.mem used q then false
          else begin
            Hashtbl.replace used p ();
            Hashtbl.replace used q ();
            true
          end)
        candidates
  | _ ->
      let arr = Array.of_list candidates in
      let k = Array.length arr in
      let conflict = Graph.create k in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          let _, (p1, q1) = arr.(i) and _, (p2, q2) = arr.(j) in
          let share = p1 = p2 || p1 = q2 || q1 = p2 || q1 = q2 in
          let cross =
            t.config.Config.crosstalk_aware
            && (not share)
            && crosstalk_conflict t (p1, q1) (p2, q2)
          in
          if share || cross then Graph.add_edge conflict i j
        done
      done;
      (* schedule the largest conflict-free class: greedy maximum
         independent set by minimum degree (the color class a good
         coloring would surface, §6.2) *)
      let degree = Array.init k (fun i -> Graph.degree conflict i) in
      let alive = Array.make k true in
      let chosen = ref [] in
      let remaining = ref k in
      while !remaining > 0 do
        let best = ref (-1) in
        for i = 0 to k - 1 do
          if alive.(i) && (!best = -1 || degree.(i) < degree.(!best)) then best := i
        done;
        let i = !best in
        chosen := i :: !chosen;
        alive.(i) <- false;
        decr remaining;
        List.iter
          (fun j ->
            if alive.(j) then begin
              alive.(j) <- false;
              decr remaining;
              List.iter
                (fun l -> if alive.(l) then degree.(l) <- degree.(l) - 1)
                (Graph.neighbors conflict j)
            end)
          (Graph.neighbors conflict i)
      done;
      List.rev_map (fun i -> arr.(i)) !chosen

let commit_gate t ((a, b), (_p, _q)) =
  Graph.remove_edge t.remaining a b;
  if t.partner_cache.(a) = b then t.partner_cache.(a) <- -1;
  if t.partner_cache.(b) = a then t.partner_cache.(b) <- -1;
  t.remaining_gates <- t.remaining_gates - 1;
  let gate =
    Gate.map_qubits (fun l -> Mapping.phys_of_log t.mapping l) (Program.edge_gate t.program a b)
  in
  Circuit.add t.circuit gate

(* Candidate SWAPs: for every remaining separated pair we cannot afford to
   scan (dense graphs have ~n^2 edges), so we scan per logical qubit: the
   closest remaining partner of each token defines its desired direction.
   A coupling edge (p, q) gets weight = distance gained for the tokens at p
   and q, divided by the link error when noise-aware.

   The closest-partner scan is O(remaining degree), so doing it for every
   qubit every cycle costs O(program edges) per cycle — the dominant term
   on dense 1024-qubit inputs.  A cached partner (refreshed when its edge
   is consumed or every [cache_ttl] cycles; distances to it are always
   recomputed exactly) brings a cycle down to O(device size) with no
   measurable quality change. *)
let cache_ttl = 4

let recompute_partner t a =
  let pa = Mapping.phys_of_log t.mapping a in
  let best = ref None in
  List.iter
    (fun v ->
      let d = dist t pa (Mapping.phys_of_log t.mapping v) in
      match !best with
      | Some (_, d') when d' <= d -> ()
      | _ -> best := Some (v, d))
    (Graph.neighbors t.remaining a);
  (match !best with
  | Some (v, _) ->
      t.partner_cache.(a) <- v;
      t.partner_age.(a) <- t.cycle
  | None -> t.partner_cache.(a) <- -1);
  !best

let closest_partner t a =
  let cached = t.partner_cache.(a) in
  if
    cached >= 0
    && Graph.has_edge t.remaining a cached
    && t.cycle - t.partner_age.(a) < cache_ttl
  then begin
    let d = dist t (Mapping.phys_of_log t.mapping a) (Mapping.phys_of_log t.mapping cached) in
    Some (cached, d)
  end
  else recompute_partner t a

let candidate_swaps t ~busy =
  let gain = t.gain in
  let touched = ref [] in
  (* per logical token with remaining gates, reward coupling moves that
     reduce the distance to its closest partner *)
  for a = 0 to t.n_log - 1 do
    if Graph.degree t.remaining a > 0 then begin
      match closest_partner t a with
      | Some (_, 1) | None -> () (* already adjacent: gate, not swap *)
      | Some (v, d) ->
          let pa = Mapping.phys_of_log t.mapping a in
          let pv = Mapping.phys_of_log t.mapping v in
          if not busy.(pa) then
            List.iter
              (fun w ->
                if not busy.(w) then begin
                  let d' = dist t w pv in
                  if d' < d then begin
                    let key = edge_key t pa w in
                    if gain.(key) = 0.0 then touched := (min pa w, max pa w) :: !touched;
                    gain.(key) <- gain.(key) +. float_of_int (d - d')
                  end
                end)
              (Graph.neighbors (Arch.graph t.arch) pa)
    end
  done;
  let result = List.filter_map
    (fun (p, q) ->
      let base = gain.(edge_key t p q) in
      if base <= 0.0 then None
      else begin
        (* discourage immediate ping-pong on the same link *)
        let recent =
          match Hashtbl.find_opt t.last_swap_cycle (edge_key t p q) with
          | Some c -> t.cycle - c <= 1
          | None -> false
        in
        if recent then None
        else begin
          let weight =
            match (t.config.Config.noise_aware, t.noise) with
            | true, Some noise ->
                (* low-error links preferred: scale gain by link quality *)
                base *. (1.0 -. Noise.cx_error noise p q) ** 3.0
            | _ -> base
          in
          Some { Matching.u = p; v = q; weight }
        end
      end)
    !touched
  in
  (* clear only the entries written this cycle *)
  List.iter (fun (p, q) -> gain.(edge_key t p q) <- 0.0) !touched;
  result

(* With matching on, a qubit-disjoint set of simultaneous SWAPs is chosen
   greedily by descending weight (a maximal weighted matching; the exact
   MWPM sweep in Qcr_graph.Matching optimizes total weight, which adds
   marginal swaps and hurts circuits, so the compiler uses the greedy
   matching).  With matching off only the single heaviest candidate SWAP
   commits per cycle, the per-gate style of the simpler baselines. *)
let choose_swaps t candidates =
  let sorted =
    List.sort
      (fun a b ->
        match compare b.Matching.weight a.Matching.weight with
        | 0 -> compare (a.Matching.u, a.Matching.v) (b.Matching.u, b.Matching.v)
        | c -> c)
      candidates
  in
  match sorted with
  | [] -> []
  | first :: _ when not t.config.Config.use_matching -> [ first ]
  | _ ->
      let used = Hashtbl.create 16 in
      List.filter
        (fun { Matching.u; v; _ } ->
          if Hashtbl.mem used u || Hashtbl.mem used v then false
          else begin
            Hashtbl.replace used u ();
            Hashtbl.replace used v ();
            true
          end)
        sorted

let commit_swap t p q =
  (* moving a token invalidates its cached direction *)
  let a = Mapping.log_of_phys t.mapping p and b = Mapping.log_of_phys t.mapping q in
  if a < t.n_log then t.partner_cache.(a) <- -1;
  if b < t.n_log then t.partner_cache.(b) <- -1;
  Mapping.apply_swap t.mapping p q;
  Hashtbl.replace t.last_swap_cycle (edge_key t p q) t.cycle;
  t.swaps <- t.swaps + 1;
  Obs.incr c_swaps;
  Circuit.add t.circuit (Gate.Swap (p, q))

(* Forced progress: move the closest separated pair one step along a
   shortest path.  Only runs on cycles that would otherwise idle. *)
let force_progress t =
  let best = ref None in
  for a = 0 to t.n_log - 1 do
    if Graph.degree t.remaining a > 0 then begin
      match closest_partner t a with
      | Some (v, d) -> begin
          match !best with
          | Some (_, _, d') when d' <= d -> ()
          | _ -> best := Some (a, v, d)
        end
      | None -> ()
    end
  done;
  match !best with
  | None -> false
  | Some (a, v, _) ->
      let pa = Mapping.phys_of_log t.mapping a and pv = Mapping.phys_of_log t.mapping v in
      (match Paths.shortest_path (Arch.graph t.arch) pa pv with
      | _ :: next :: _ -> commit_swap t pa next
      | _ -> failwith "Greedy.force_progress: no path");
      Obs.incr c_forced;
      true

(* Two consecutive gate-less cycles switch the engine into direct-routing
   mode: heuristic swap scoring can oscillate (e.g. two tokens each
   "improving" by undoing the other's move), whereas walking the closest
   separated pair straight down a shortest path strictly shrinks its
   distance every cycle and so always reaches a gate. *)
let stall_threshold = 2

let step t =
  if finished t then false
  else begin
    t.cycle <- t.cycle + 1;
    Obs.incr c_cycles;
    let gates = choose_gates t (executable_gates t) in
    List.iter (commit_gate t) gates;
    Obs.add c_gates (List.length gates);
    Obs.observe h_gates_per_cycle (float_of_int (List.length gates));
    if gates = [] then t.stalled <- t.stalled + 1 else t.stalled <- 0;
    let busy = Array.make (Arch.qubit_count t.arch) false in
    List.iter
      (fun (_, (p, q)) ->
        busy.(p) <- true;
        busy.(q) <- true)
      gates;
    let swaps_before = t.swaps in
    if t.stalled >= stall_threshold then begin
      Obs.incr c_stall_recoveries;
      if not (finished t) then ignore (force_progress t)
    end
    else begin
      let swaps = choose_swaps t (candidate_swaps t ~busy) in
      List.iter (fun { Matching.u; v; _ } -> commit_swap t u v) swaps;
      if gates = [] && swaps = [] && not (finished t) then ignore (force_progress t)
    end;
    t.swaps > swaps_before
  end

let run_to_completion t =
  while not (finished t) do
    ignore (step t)
  done

let run_until t limit =
  while (not (finished t)) && t.cycle < limit do
    ignore (step t)
  done
