module Arch = Qcr_arch.Arch
module Noise = Qcr_arch.Noise
module Graph = Qcr_graph.Graph
module Paths = Qcr_graph.Paths
module Matching = Qcr_graph.Matching
module Mapping = Qcr_circuit.Mapping
module Circuit = Qcr_circuit.Circuit
module Program = Qcr_circuit.Program
module Gate = Qcr_circuit.Gate
module Obs = Qcr_obs.Obs
module Bitset = Qcr_util.Bitset

let c_cycles = Obs.counter "greedy.cycles"

let c_gates = Obs.counter "greedy.gates_committed"

let c_swaps = Obs.counter "greedy.swaps_committed"

let c_forced = Obs.counter "greedy.forced_moves"

let c_stall_recoveries = Obs.counter "greedy.stall_recoveries"

let h_gates_per_cycle = Obs.histogram "greedy.gates_per_cycle"

type t = {
  arch : Arch.t;
  config : Config.t;
  noise : Noise.t option;
  program : Program.t;
  remaining : Graph.t;
  mapping : Mapping.t;
  circuit : Circuit.t;
  dists : Paths.distances;
  (* Distances repacked as uint16 (2 bytes/entry instead of a boxed-word
     int): the partner scans hit this table ~100M times on dense
     1024-qubit inputs, and the 4x smaller footprint keeps whole rows in
     L1.  [None] when some pair is unreachable or a distance overflows
     16 bits (pathological devices); [dist] then falls back to the exact
     matrix. *)
  dist16 : (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t option;
  n_phys : int;
  cgraph : Graph.t; (* device coupling graph *)
  coupling_edges : (int * int) array;
  (* Incremental frontier: bit [i] is set iff coupling edge [i] currently
     hosts an executable gate (both endpoints carry logical tokens with a
     remaining program edge between them).  Maintained by [commit_gate]
     (the host edge deactivates — a logical pair occupies exactly one
     physical edge) and [commit_swap] (only edges incident to the two
     moved vertices can change).  [executable_gates] then walks the set
     members in increasing index order, which is exactly the coupling-edge
     scan order of the full rescan it replaces. *)
  active : Bitset.t;
  incident : int array array; (* physical vertex -> coupling edge indices *)
  edge_u : int array; (* flat coupling edge endpoints, edge_u.(i) < edge_v.(i) *)
  edge_v : int array;
  n_log : int;
  mutable cycle : int;
  mutable swaps : int;
  mutable remaining_gates : int;
  mutable stalled : int; (* consecutive cycles without a gate execution *)
  last_swap : int array; (* coupling edge index -> cycle of last swap there *)
  partner_cache : int array; (* logical -> cached closest remaining partner *)
  partner_age : int array; (* cycle at which the cache entry was computed *)
  swap_used : bool array; (* scratch: matching's per-cycle used-vertex set *)
  gain : float array; (* scratch: per-coupling-edge swap gain, cleared per cycle *)
  wgt : float array; (* scratch: final (noise-scaled) weight of kept candidates *)
}

(* Index of the coupling edge (p, q), by scanning the (bounded-degree)
   incidence row of [p] — no hashing.  The edge must exist. *)
let edge_idx t p q =
  let lo = min p q and hi = max p q in
  let row = t.incident.(lo) in
  let rec find i =
    let e = row.(i) in
    if t.edge_u.(e) = lo && t.edge_v.(e) = hi then e else find (i + 1)
  in
  find 0

let create ?(config = Config.default) ?noise ~arch ~program ~init () =
  let remaining = Graph.copy (Program.graph program) in
  let cgraph = Arch.graph arch in
  let coupling_edges = Array.of_list (Graph.edges cgraph) in
  let n_phys = Arch.qubit_count arch in
  let n_log = Program.qubit_count program in
  let mapping = Mapping.copy init in
  let m = Array.length coupling_edges in
  let incident = Array.make n_phys [||] in
  let fill = Array.make n_phys 0 in
  Array.iter
    (fun (p, q) ->
      fill.(p) <- fill.(p) + 1;
      fill.(q) <- fill.(q) + 1)
    coupling_edges;
  Array.iteri (fun v c -> incident.(v) <- Array.make c 0) fill;
  Array.fill fill 0 n_phys 0;
  Array.iteri
    (fun i (p, q) ->
      incident.(p).(fill.(p)) <- i;
      fill.(p) <- fill.(p) + 1;
      incident.(q).(fill.(q)) <- i;
      fill.(q) <- fill.(q) + 1)
    coupling_edges;
  let edge_u = Array.make (max m 1) 0 and edge_v = Array.make (max m 1) 0 in
  Array.iteri
    (fun i (p, q) ->
      edge_u.(i) <- p;
      edge_v.(i) <- q)
    coupling_edges;
  let active = Bitset.create (max m 1) in
  Array.iteri
    (fun i (p, q) ->
      let a = Mapping.log_of_phys mapping p and b = Mapping.log_of_phys mapping q in
      if a < n_log && b < n_log && Graph.has_edge remaining a b then Bitset.add active i)
    coupling_edges;
  let dists = Arch.distances arch in
  let dist16 =
    let size = n_phys * n_phys in
    let t16 =
      Bigarray.Array1.create Bigarray.int16_unsigned Bigarray.c_layout (max size 1)
    in
    let ok = ref true in
    (try
       for p = 0 to n_phys - 1 do
         for q = 0 to n_phys - 1 do
           let d = Paths.distance dists p q in
           if d < 0 || d >= 65536 then raise Exit;
           Bigarray.Array1.unsafe_set t16 ((p * n_phys) + q) d
         done
       done
     with Exit -> ok := false);
    if !ok then Some t16 else None
  in
  {
    arch;
    config;
    noise;
    program;
    remaining;
    mapping;
    circuit = Circuit.create n_phys;
    dists;
    dist16;
    n_phys;
    cgraph;
    coupling_edges;
    active;
    incident;
    edge_u;
    edge_v;
    n_log;
    cycle = 0;
    swaps = 0;
    remaining_gates = Graph.edge_count remaining;
    stalled = 0;
    last_swap = Array.make (max m 1) (min_int / 2);
    partner_cache = Array.make (max n_log 1) (-1);
    partner_age = Array.make (max n_log 1) min_int;
    swap_used = Array.make n_phys false;
    gain = Array.make (max m 1) 0.0;
    wgt = Array.make (max m 1) 0.0;
  }

let finished t = t.remaining_gates = 0

let cycle t = t.cycle

let swaps t = t.swaps

let remaining t = t.remaining

let remaining_gate_count t = t.remaining_gates

let mapping t = t.mapping

let circuit t = t.circuit

let dist t p q =
  match t.dist16 with
  | Some t16 -> Bigarray.Array1.unsafe_get t16 ((p * t.n_phys) + q)
  | None -> Paths.distance t.dists p q

(* Hardware-compliant gates this cycle: walk the incrementally maintained
   active-edge set (O(executable gates), independent of both the program
   size and the device size).  Members come out in increasing edge index,
   the same order as a full coupling scan. *)
let executable_gates t =
  let acc = ref [] in
  Bitset.iter
    (fun i ->
      let p = t.edge_u.(i) and q = t.edge_v.(i) in
      let a = Mapping.log_of_phys t.mapping p and b = Mapping.log_of_phys t.mapping q in
      acc := ((a, b), (p, q)) :: !acc)
    t.active;
  List.rev !acc

(* Re-derive the activity bit of coupling edge [i] from the mapping and
   the remaining program edges. *)
let refresh_edge t i =
  let p = t.edge_u.(i) and q = t.edge_v.(i) in
  let a = Mapping.log_of_phys t.mapping p and b = Mapping.log_of_phys t.mapping q in
  if a < t.n_log && b < t.n_log && Graph.has_edge t.remaining a b then Bitset.add t.active i
  else Bitset.remove t.active i

(* Crosstalk conflict: two parallel 2q gates whose sites are adjacent on
   the device (§5.3). *)
let crosstalk_conflict t (p1, q1) (p2, q2) =
  let g = t.cgraph in
  Graph.has_edge g p1 p2 || Graph.has_edge g p1 q2 || Graph.has_edge g q1 p2
  || Graph.has_edge g q1 q2

(* Choose a disjoint subset of the executable gates.  With coloring on we
   build the conflict graph (shared qubit, optionally crosstalk) and take
   the largest color class (§6.2); otherwise first-fit. *)
let choose_gates t candidates =
  let conflict_path = t.config.Config.use_coloring || t.config.Config.crosstalk_aware in
  match candidates with
  | [] -> []
  | _ when not conflict_path ->
      let used = Hashtbl.create 16 in
      List.filter
        (fun (_, (p, q)) ->
          if Hashtbl.mem used p || Hashtbl.mem used q then false
          else begin
            Hashtbl.replace used p ();
            Hashtbl.replace used q ();
            true
          end)
        candidates
  | _ ->
      let arr = Array.of_list candidates in
      let k = Array.length arr in
      let conflict = Graph.create k in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          let _, (p1, q1) = arr.(i) and _, (p2, q2) = arr.(j) in
          let share = p1 = p2 || p1 = q2 || q1 = p2 || q1 = q2 in
          let cross =
            t.config.Config.crosstalk_aware
            && (not share)
            && crosstalk_conflict t (p1, q1) (p2, q2)
          in
          if share || cross then Graph.add_edge conflict i j
        done
      done;
      (* schedule the largest conflict-free class: greedy maximum
         independent set by minimum degree (the color class a good
         coloring would surface, §6.2) *)
      let degree = Array.init k (fun i -> Graph.degree conflict i) in
      let alive = Array.make k true in
      let chosen = ref [] in
      let remaining = ref k in
      while !remaining > 0 do
        let best = ref (-1) in
        for i = 0 to k - 1 do
          if alive.(i) && (!best = -1 || degree.(i) < degree.(!best)) then best := i
        done;
        let i = !best in
        chosen := i :: !chosen;
        alive.(i) <- false;
        decr remaining;
        List.iter
          (fun j ->
            if alive.(j) then begin
              alive.(j) <- false;
              decr remaining;
              List.iter
                (fun l -> if alive.(l) then degree.(l) <- degree.(l) - 1)
                (Graph.neighbors conflict j)
            end)
          (Graph.neighbors conflict i)
      done;
      List.rev_map (fun i -> arr.(i)) !chosen

let commit_gate t ((a, b), (p, q)) =
  Graph.remove_edge t.remaining a b;
  (* the consumed pair occupied exactly this physical edge *)
  Bitset.remove t.active (edge_idx t p q);
  if t.partner_cache.(a) = b then t.partner_cache.(a) <- -1;
  if t.partner_cache.(b) = a then t.partner_cache.(b) <- -1;
  t.remaining_gates <- t.remaining_gates - 1;
  let gate =
    Gate.map_qubits (fun l -> Mapping.phys_of_log t.mapping l) (Program.edge_gate t.program a b)
  in
  Circuit.add t.circuit gate

(* Candidate SWAPs: for every remaining separated pair we cannot afford to
   scan (dense graphs have ~n^2 edges), so we scan per logical qubit: the
   closest remaining partner of each token defines its desired direction.
   A coupling edge (p, q) gets weight = distance gained for the tokens at p
   and q, divided by the link error when noise-aware.

   The closest-partner scan is O(remaining degree), so doing it for every
   qubit every cycle costs O(program edges) per cycle — the dominant term
   on dense 1024-qubit inputs.  A cached partner (refreshed when its edge
   is consumed or every [cache_ttl] cycles; distances to it are always
   recomputed exactly) brings a cycle down to O(device size) with no
   measurable quality change. *)
let cache_ttl = 4

(* Allocation-free argmin over the remaining neighbors (increasing vertex
   order, first minimum wins — same choice as a left-to-right scan).  This
   runs for every token whose cache was invalidated, i.e. after every
   move, so it is the single hottest loop on dense thousand-qubit inputs:
   it iterates the adjacency row and the mapping backing store directly,
   with no closure call per neighbor. *)
let recompute_partner t a =
  let pol = Mapping.phys_backing t.mapping in
  let pa = pol.(a) in
  let row, deg = Graph.adj_row t.remaining a in
  let best_v = ref (-1) and best_d = ref max_int in
  (match t.dist16 with
  | Some t16 ->
      let base = pa * t.n_phys in
      for i = 0 to deg - 1 do
        let v = Array.unsafe_get row i in
        let d =
          Bigarray.Array1.unsafe_get t16 (base + Array.unsafe_get pol v)
        in
        if d < !best_d then begin
          best_v := v;
          best_d := d
        end
      done
  | None ->
      for i = 0 to deg - 1 do
        let v = Array.unsafe_get row i in
        let d = Paths.distance t.dists pa pol.(v) in
        if d < !best_d then begin
          best_v := v;
          best_d := d
        end
      done);
  if !best_v >= 0 then begin
    t.partner_cache.(a) <- !best_v;
    t.partner_age.(a) <- t.cycle;
    Some (!best_v, !best_d)
  end
  else begin
    t.partner_cache.(a) <- -1;
    None
  end

let closest_partner t a =
  let cached = t.partner_cache.(a) in
  if
    cached >= 0
    && Graph.has_edge t.remaining a cached
    && t.cycle - t.partner_age.(a) < cache_ttl
  then begin
    let d = dist t (Mapping.phys_of_log t.mapping a) (Mapping.phys_of_log t.mapping cached) in
    Some (cached, d)
  end
  else recompute_partner t a

let candidate_swaps t ~busy =
  let gain = t.gain in
  let touched = ref [] in (* coupling edge indices with positive raw gain *)
  (* per logical token with remaining gates, reward coupling moves that
     reduce the distance to its closest partner *)
  for a = 0 to t.n_log - 1 do
    if Graph.degree t.remaining a > 0 then begin
      match closest_partner t a with
      | Some (_, 1) | None -> () (* already adjacent: gate, not swap *)
      | Some (v, d) ->
          let pa = Mapping.phys_of_log t.mapping a in
          let pv = Mapping.phys_of_log t.mapping v in
          if not busy.(pa) then
            Graph.iter_neighbors t.cgraph pa (fun w ->
                if not busy.(w) then begin
                  let d' = dist t w pv in
                  if d' < d then begin
                    let e = edge_idx t pa w in
                    if gain.(e) = 0.0 then touched := e :: !touched;
                    gain.(e) <- gain.(e) +. float_of_int (d - d')
                  end
                end)
    end
  done;
  (* Keep candidates as bare coupling-edge indices with the final
     (noise-scaled) weight parked in [t.wgt]: no per-candidate record, so
     the per-cycle sort in [choose_swaps] compares unboxed floats. *)
  let result =
    List.filter_map
      (fun e ->
        let base = gain.(e) in
        if base <= 0.0 then None
        else begin
          (* discourage immediate ping-pong on the same link *)
          if t.cycle - t.last_swap.(e) <= 1 then None
          else begin
            let weight =
              match (t.config.Config.noise_aware, t.noise) with
              | true, Some noise ->
                  (* low-error links preferred: scale gain by link quality *)
                  base
                  *. (1.0 -. Noise.cx_error noise t.edge_u.(e) t.edge_v.(e)) ** 3.0
              | _ -> base
            in
            t.wgt.(e) <- weight;
            Some e
          end
        end)
      !touched
  in
  (* clear only the entries written this cycle *)
  List.iter (fun e -> gain.(e) <- 0.0) !touched;
  result

(* With matching on, a qubit-disjoint set of simultaneous SWAPs is chosen
   greedily by descending weight (a maximal weighted matching; the exact
   MWPM sweep in Qcr_graph.Matching optimizes total weight, which adds
   marginal swaps and hurts circuits, so the compiler uses the greedy
   matching).  With matching off only the single heaviest candidate SWAP
   commits per cycle, the per-gate style of the simpler baselines. *)
let choose_swaps t candidates =
  (* Candidates are distinct coupling-edge indices, and edge indices are
     allocated in (u, v)-lexicographic order, so sorting by (weight desc,
     index asc) reproduces the (weight desc, u asc, v asc) order exactly —
     the order is strict, making the unstable array sort safe.  Comparing
     ints keyed by a flat float array avoids both boxed-float field reads
     and merge-run allocation every cycle. *)
  let w = t.wgt in
  let arr = Array.of_list candidates in
  Array.sort
    (fun e1 e2 ->
      let w1 = Array.unsafe_get w e1 and w2 = Array.unsafe_get w e2 in
      if w1 > w2 then -1 else if w1 < w2 then 1 else Stdlib.compare (e1 : int) e2)
    arr;
  let pair e = (t.edge_u.(e), t.edge_v.(e)) in
  if Array.length arr = 0 then []
  else if not t.config.Config.use_matching then [ pair arr.(0) ]
  else begin
    let used = t.swap_used in
    let picked = ref [] in
    Array.iter
      (fun e ->
        let u = t.edge_u.(e) and v = t.edge_v.(e) in
        if not (used.(u) || used.(v)) then begin
          used.(u) <- true;
          used.(v) <- true;
          picked := (u, v) :: !picked
        end)
      arr;
    let result = List.rev !picked in
    List.iter
      (fun (u, v) ->
        used.(u) <- false;
        used.(v) <- false)
      result;
    result
  end

let commit_swap t p q =
  (* moving a token invalidates its cached direction *)
  let a = Mapping.log_of_phys t.mapping p and b = Mapping.log_of_phys t.mapping q in
  if a < t.n_log then t.partner_cache.(a) <- -1;
  if b < t.n_log then t.partner_cache.(b) <- -1;
  Mapping.apply_swap t.mapping p q;
  (* only edges touching the two moved vertices can change activity *)
  Array.iter (fun i -> refresh_edge t i) t.incident.(p);
  Array.iter (fun i -> refresh_edge t i) t.incident.(q);
  t.last_swap.(edge_idx t p q) <- t.cycle;
  t.swaps <- t.swaps + 1;
  Obs.incr c_swaps;
  Circuit.add t.circuit (Gate.Swap (p, q))

(* Forced progress: move the closest separated pair one step along a
   shortest path.  Only runs on cycles that would otherwise idle. *)
let force_progress t =
  let best = ref None in
  for a = 0 to t.n_log - 1 do
    if Graph.degree t.remaining a > 0 then begin
      match closest_partner t a with
      | Some (v, d) -> begin
          match !best with
          | Some (_, _, d') when d' <= d -> ()
          | _ -> best := Some (a, v, d)
        end
      | None -> ()
    end
  done;
  match !best with
  | None -> false
  | Some (a, v, _) ->
      let pa = Mapping.phys_of_log t.mapping a and pv = Mapping.phys_of_log t.mapping v in
      (match Paths.shortest_path (Arch.graph t.arch) pa pv with
      | _ :: next :: _ -> commit_swap t pa next
      | _ -> failwith "Greedy.force_progress: no path");
      Obs.incr c_forced;
      true

(* Two consecutive gate-less cycles switch the engine into direct-routing
   mode: heuristic swap scoring can oscillate (e.g. two tokens each
   "improving" by undoing the other's move), whereas walking the closest
   separated pair straight down a shortest path strictly shrinks its
   distance every cycle and so always reaches a gate. *)
let stall_threshold = 2

let step t =
  if finished t then false
  else begin
    t.cycle <- t.cycle + 1;
    Obs.incr c_cycles;
    let gates = choose_gates t (executable_gates t) in
    List.iter (commit_gate t) gates;
    Obs.add c_gates (List.length gates);
    Obs.observe h_gates_per_cycle (float_of_int (List.length gates));
    if gates = [] then t.stalled <- t.stalled + 1 else t.stalled <- 0;
    let busy = Array.make (Arch.qubit_count t.arch) false in
    List.iter
      (fun (_, (p, q)) ->
        busy.(p) <- true;
        busy.(q) <- true)
      gates;
    let swaps_before = t.swaps in
    if t.stalled >= stall_threshold then begin
      Obs.incr c_stall_recoveries;
      if not (finished t) then ignore (force_progress t)
    end
    else begin
      let swaps = choose_swaps t (candidate_swaps t ~busy) in
      List.iter (fun (u, v) -> commit_swap t u v) swaps;
      if gates = [] && swaps = [] && not (finished t) then ignore (force_progress t)
    end;
    t.swaps > swaps_before
  end

let run_to_completion t =
  while not (finished t) do
    ignore (step t)
  done

let run_until t limit =
  while (not (finished t)) && t.cycle < limit do
    ignore (step t)
  done
