(** Zobrist hashing: random feature words combined by XOR, so state hashes
    update incrementally in O(1) per toggled feature.

    Used by the A* solver to key its closed set without serializing nodes:
    the mapping contributes feature [slot * stride + value] per physical
    wire, the remaining-edge bitset one feature per set bit.  Tables are
    seeded via {!Prng}, so hashes are deterministic across runs. *)

val table : seed:int -> int -> int array
(** [table ~seed n]: [n] random 62-bit non-negative feature words. *)

val fold_bitset : int array -> Bitset.t -> int
(** XOR of the feature words of every set bit. *)

val fold_array : int array -> stride:int -> int array -> int
(** [fold_array t ~stride a]: XOR over slots of [t.(slot * stride + a.(slot))]
    — the hash of a dense assignment such as a physical→logical mapping. *)
