(** Fixed-capacity LRU map with string keys.

    [find] and [add] are O(1): a hash table holds the entries and an
    intrusive doubly-linked list tracks recency.  When an [add] would
    exceed the capacity the least-recently-used entry is evicted.
    [find] counts as a use; [mem] and [peek] do not.  Capacity 0 is a
    degenerate cache that stores nothing (every [add] is a no-op), which
    lets callers disable caching without a separate code path.

    Not thread-safe: callers that share a cache across domains must
    serialize access (the compile service holds a mutex around it). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Lookup that promotes the entry to most-recently-used. *)

val peek : 'a t -> string -> 'a option
(** Lookup without promoting. *)

val mem : 'a t -> string -> bool

val add : 'a t -> string -> 'a -> unit
(** Insert or replace (either way the entry becomes most-recently-used),
    evicting the LRU entry if the cache is full. *)

val remove : 'a t -> string -> unit
(** No-op if absent. *)

val pop_lru : 'a t -> (string * 'a) option
(** Remove and return the least-recently-used entry; [None] when empty.
    Gives callers that track derived totals (entry bytes, eviction
    counts) a handle on what eviction discards. *)

val clear : 'a t -> unit

val fold : (string -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** Fold over entries from most- to least-recently-used. *)
