(* Zobrist hashing: one uniformly random word per feature; a state's hash
   is the XOR of its active features, so toggling a feature updates the
   hash in O(1).  Tables are drawn from the deterministic Prng so hashes
   are stable across runs and platforms. *)

let table ~seed n =
  let rng = Prng.create seed in
  (* mask to 62 bits so the value fits a non-negative native int *)
  Array.init n (fun _ -> Int64.to_int (Prng.bits64 rng) land max_int)

let fold_bitset table bitset =
  Bitset.fold (fun bit acc -> acc lxor table.(bit)) bitset 0

let fold_array table ~stride values =
  let h = ref 0 in
  Array.iteri (fun slot v -> h := !h lxor table.((slot * stride) + v)) values;
  !h
