type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let child_seed = bits64 t in
  { state = child_seed }

let split_n t n =
  if n < 0 then invalid_arg "Prng.split_n: negative count";
  if n = 0 then [||]
  else begin
    let out = Array.make n t in
    (* explicit loop: children are drawn in index order from [t] *)
    for i = 0 to n - 1 do
      out.(i) <- split t
    done;
    out
  end

let int t bound =
  assert (bound > 0);
  (* mask to the 62 low bits so the 63-bit native int stays non-negative *)
  let r = Int64.to_int (bits64 t) land max_int in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 significant bits, the double mantissa width *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-300 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
