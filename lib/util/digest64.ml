type t = int64

let offset_basis = 0xcbf29ce484222325L

let prime = 0x100000001b3L

let empty = offset_basis

let add_byte (h : t) b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

(* Type tags keep differently-typed fields from colliding. *)
let tag_string = 0x01
let tag_int = 0x02
let tag_float = 0x03
let tag_bool = 0x04
let tag_pairs = 0x05

let add_int64 h x =
  let h = ref h in
  for shift = 0 to 7 do
    h := add_byte !h (Int64.to_int (Int64.shift_right_logical x (shift * 8)))
  done;
  !h

let add_string h s =
  let h = ref (add_int64 (add_byte h tag_string) (Int64.of_int (String.length s))) in
  String.iter (fun c -> h := add_byte !h (Char.code c)) s;
  !h

let add_int h i = add_int64 (add_byte h tag_int) (Int64.of_int i)

let add_float h f = add_int64 (add_byte h tag_float) (Int64.bits_of_float f)

let add_bool h b = add_byte (add_byte h tag_bool) (if b then 1 else 0)

let add_pairs h pairs =
  let h = add_int64 (add_byte h tag_pairs) (Int64.of_int (List.length pairs)) in
  List.fold_left (fun h (u, v) -> add_int (add_int h u) v) h pairs

let to_hex h = Printf.sprintf "%016Lx" h

let to_int h = Int64.to_int h land max_int

let of_string s = to_hex (add_string empty s)
