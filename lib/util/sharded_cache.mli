(** Digest-sharded, thread-safe LRU cache.

    A cache is split into [shards] independent {!Lru} maps, each behind
    its own mutex; the shard for a key is chosen by hashing the key
    ({!Digest64} bits), so concurrent lookups of distinct keys almost
    never contend.  This is the serving-path replacement for a single
    LRU behind one global lock: at high request rates every domain used
    to serialize on that lock, while here contention drops roughly by
    the shard count.

    {b Counters.}  Each shard owns its hit/miss/corrupt/eviction and
    byte counters, mutated only under that shard's lock; {!stats},
    {!length} and {!bytes} merge them at read time.  Totals are
    therefore exact under any interleaving: every {!find} counts exactly
    one hit or one miss, and {!evict_corrupt} reclassifies the lookup
    that found the bad entry (hit becomes miss + corrupt), keeping
    [hits + misses] equal to the number of validated lookups.

    {b Capacity.}  [capacity] is the total entry budget, split evenly
    across shards (rounded up, so a shard never gets capacity 0 unless
    the whole cache has capacity 0).  When [capacity < shards] the shard
    count is clamped down to [capacity], preserving exact global LRU
    behaviour for tiny caches; capacity 0 disables storage entirely. *)

type 'a t

type counters = {
  hits : int;  (** lookups served (after any corruption reclassify) *)
  misses : int;  (** lookups that found nothing servable *)
  corrupt : int;  (** entries evicted by {!evict_corrupt} *)
  evictions : int;  (** entries displaced by capacity pressure *)
}

val create : ?shards:int -> ?weight:('a -> int) -> capacity:int -> unit -> 'a t
(** Defaults: 16 shards (clamped to [capacity] when smaller), weight 0.
    [weight] sizes each value for the {!bytes} gauge — pass e.g. the
    payload length; it is called once per insertion and once per
    removal, so it must be pure.
    @raise Invalid_argument if [capacity < 0] or [shards < 1]. *)

val shard_count : 'a t -> int

val capacity : 'a t -> int
(** The effective total capacity (per-shard capacity times shard count —
    at least the requested capacity, never more than one extra entry per
    shard). *)

val length : 'a t -> int

val bytes : 'a t -> int
(** Sum of [weight v] over all live entries. *)

val find : 'a t -> string -> 'a option
(** Promotes the entry in its shard and counts one hit or one miss. *)

val mem : 'a t -> string -> bool
(** No promotion, no counters. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or replace; evicts that shard's LRU entry when the shard is
    full (counted under [evictions]). *)

val remove : 'a t -> string -> unit
(** No-op if absent; not counted as an eviction. *)

val evict_corrupt : 'a t -> string -> unit
(** Remove a just-found entry that failed validation, and reclassify the
    lookup: the shard's [corrupt] and [misses] counters gain one and
    [hits] loses one.  No-op (no reclassify) if the key is absent. *)

val note_corrupt : 'a t -> string -> unit
(** Count one corrupt entry that never made it into the cache (e.g. a
    record rejected while loading a persisted store); hit/miss counters
    are untouched. *)

val stats : 'a t -> counters
(** Counters merged across shards at read time. *)

val clear : 'a t -> unit
(** Drop all entries; counters are preserved. *)

val fold : (string -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** Fold over all entries, shard by shard (most- to least-recently-used
    within each shard).  Takes each shard's lock in turn; do not call
    cache operations from [f]. *)
