(* Hash table + intrusive doubly-linked recency list.  The list runs from
   [head] (most recent) to [tail] (least recent); promoting an entry
   unlinks and re-links it at the head. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: capacity must be non-negative";
  { cap = capacity; table = Hashtbl.create (max 1 (2 * capacity)); head = None; tail = None }

let capacity t = t.cap

let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let promote t node =
  if t.head != Some node then begin
    unlink t node;
    push_front t node
  end

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node ->
      promote t node;
      Some node.value

let peek t key = Option.map (fun n -> n.value) (Hashtbl.find_opt t.table key)

let mem t key = Hashtbl.mem t.table key

let pop_lru t =
  match t.tail with
  | None -> None
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      Some (node.key, node.value)

let evict_lru t = ignore (pop_lru t)

let add t key value =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      node.value <- value;
      promote t node
  | None ->
      if t.cap = 0 then ()
      else begin
        if Hashtbl.length t.table >= t.cap then evict_lru t;
        let node = { key; value; prev = None; next = None } in
        Hashtbl.replace t.table key node;
        push_front t node
      end

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table key

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let fold f t init =
  let rec go acc = function
    | None -> acc
    | Some node -> go (f node.key node.value acc) node.next
  in
  go init t.head
