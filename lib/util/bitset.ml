type t = { words : Bytes.t; n : int }

let words_for n = (n + 7) / 8

let create n = { words = Bytes.make (words_for n) '\000'; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let w = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (w lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let w = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (w land lnot (1 lsl (i land 7)) land 0xff))

let popcount_byte b =
  let b = Char.code b in
  let rec count b acc = if b = 0 then acc else count (b lsr 1) (acc + (b land 1)) in
  count b 0

let cardinal t =
  let total = ref 0 in
  Bytes.iter (fun b -> total := !total + popcount_byte b) t.words;
  !total

let is_empty t =
  let result = ref true in
  Bytes.iter (fun b -> if b <> '\000' then result := false) t.words;
  !result

let copy t = { words = Bytes.copy t.words; n = t.n }

let equal a b = a.n = b.n && Bytes.equal a.words b.words

(* trailing-zero count for the isolated lowest bit of a byte *)
let tz_of_lsb = [| -1; 0; 1; -1; 2; -1; -1; -1; 3; -1; -1; -1; -1; -1; -1; -1; 4 |]

let tz lsb = if lsb < 17 then tz_of_lsb.(lsb) else if lsb = 32 then 5 else if lsb = 64 then 6 else 7

(* Walk bytes and skip zero ones: iteration cost scales with set bits, not
   capacity — this sits on the A* heuristic's per-child hot path. *)
let iter f t =
  let nbytes = Bytes.length t.words in
  for w = 0 to nbytes - 1 do
    let bits = ref (Char.code (Bytes.unsafe_get t.words w)) in
    if !bits <> 0 then begin
      let base = w lsl 3 in
      while !bits <> 0 do
        let lsb = !bits land - !bits in
        f (base + tz lsb);
        bits := !bits land (!bits - 1)
      done
    end
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let hash_key t = Bytes.to_string t.words
