(** Streaming 64-bit content digest (FNV-1a).

    A dependency-free fingerprint for content-addressed keys: feed fields
    one by one and render the accumulated state as a fixed-width hex
    string.  Every [add_*] mixes a type tag before the payload, so
    [add_int 1] and [add_string "1"] never collide by construction, and
    adjacent variable-length fields cannot run together ([add_string]
    mixes the length).

    This is a fast non-cryptographic hash: fine for cache keys and
    equality witnesses, not for adversarial inputs. *)

type t
(** Immutable digest state; [add_*] return a new state. *)

val empty : t
(** The FNV-1a offset basis. *)

val add_string : t -> string -> t

val add_int : t -> int -> t

val add_float : t -> float -> t
(** Mixes the IEEE-754 bit pattern, so the digest distinguishes [0.0]
    from [-0.0] and is exact for every finite value. *)

val add_bool : t -> bool -> t

val add_pairs : t -> (int * int) list -> t
(** Mixes the list length, then each pair in order. *)

val to_hex : t -> string
(** 16 lowercase hex characters. *)

val to_int : t -> int
(** The low 62 bits as a non-negative OCaml [int] — a well-mixed hash
    for bucket selection (shard indices, hash tables). *)

val of_string : string -> string
(** One-shot convenience: [to_hex (add_string empty s)]. *)
