(* N independent LRUs, each behind its own mutex; the shard for a key is
   a Digest64 hash of the key modulo the shard count.  All counters are
   per-shard and mutated only under the shard lock, so merged totals are
   exact under any interleaving. *)

type 'a shard = {
  lock : Mutex.t;
  lru : 'a Lru.t;
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;
  mutable evictions : int;
  mutable bytes : int;
}

type 'a t = {
  shards : 'a shard array;
  weight : 'a -> int;
  total_capacity : int;
}

type counters = {
  hits : int;
  misses : int;
  corrupt : int;
  evictions : int;
}

let create ?(shards = 16) ?(weight = fun _ -> 0) ~capacity () =
  if capacity < 0 then invalid_arg "Sharded_cache.create: capacity must be non-negative";
  if shards < 1 then invalid_arg "Sharded_cache.create: shards must be positive";
  (* Clamping to [capacity] keeps tiny caches exactly LRU: a capacity-1
     cache must hold one entry total, not one per shard. *)
  let shards = if capacity > 0 && capacity < shards then capacity else shards in
  let per_shard = if capacity = 0 then 0 else (capacity + shards - 1) / shards in
  {
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            lru = Lru.create ~capacity:per_shard;
            hits = 0;
            misses = 0;
            corrupt = 0;
            evictions = 0;
            bytes = 0;
          });
    weight;
    total_capacity = per_shard * shards;
  }

let shard_count t = Array.length t.shards

let capacity t = t.total_capacity

let shard_of t key =
  t.shards.(Digest64.(to_int (add_string empty key)) mod Array.length t.shards)

let locked sh f =
  Mutex.lock sh.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.lock) f

let find t key =
  let sh = shard_of t key in
  locked sh (fun () ->
      match Lru.find sh.lru key with
      | Some v ->
          sh.hits <- sh.hits + 1;
          Some v
      | None ->
          sh.misses <- sh.misses + 1;
          None)

let mem t key =
  let sh = shard_of t key in
  locked sh (fun () -> Lru.mem sh.lru key)

let add t key value =
  let sh = shard_of t key in
  locked sh (fun () ->
      (match Lru.peek sh.lru key with
      | Some old -> sh.bytes <- sh.bytes - t.weight old
      | None ->
          if Lru.capacity sh.lru > 0 && Lru.length sh.lru >= Lru.capacity sh.lru then (
            match Lru.pop_lru sh.lru with
            | Some (_, old) ->
                sh.bytes <- sh.bytes - t.weight old;
                sh.evictions <- sh.evictions + 1
            | None -> ()));
      Lru.add sh.lru key value;
      if Lru.mem sh.lru key then sh.bytes <- sh.bytes + t.weight value)

let remove_under_lock t sh key =
  match Lru.peek sh.lru key with
  | None -> false
  | Some old ->
      Lru.remove sh.lru key;
      sh.bytes <- sh.bytes - t.weight old;
      true

let remove t key =
  let sh = shard_of t key in
  locked sh (fun () -> ignore (remove_under_lock t sh key))

let evict_corrupt t key =
  let sh = shard_of t key in
  locked sh (fun () ->
      if remove_under_lock t sh key then begin
        sh.corrupt <- sh.corrupt + 1;
        sh.hits <- sh.hits - 1;
        sh.misses <- sh.misses + 1
      end)

let note_corrupt t key =
  let sh = shard_of t key in
  locked sh (fun () -> sh.corrupt <- sh.corrupt + 1)

let stats t =
  Array.fold_left
    (fun acc sh ->
      locked sh (fun () ->
          {
            hits = acc.hits + sh.hits;
            misses = acc.misses + sh.misses;
            corrupt = acc.corrupt + sh.corrupt;
            evictions = acc.evictions + sh.evictions;
          }))
    { hits = 0; misses = 0; corrupt = 0; evictions = 0 }
    t.shards

let length t =
  Array.fold_left (fun acc sh -> acc + locked sh (fun () -> Lru.length sh.lru)) 0 t.shards

let bytes t = Array.fold_left (fun acc sh -> acc + locked sh (fun () -> sh.bytes)) 0 t.shards

let clear t =
  Array.iter
    (fun sh ->
      locked sh (fun () ->
          Lru.clear sh.lru;
          sh.bytes <- 0))
    t.shards

let fold f t init =
  Array.fold_left (fun acc sh -> locked sh (fun () -> Lru.fold f sh.lru acc)) init t.shards
