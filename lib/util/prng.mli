(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component in the repository draws from an explicit
    [Prng.t] so that experiments are reproducible bit-for-bit across runs
    and machines.  The stdlib [Random] module is deliberately not used. *)

type t

val create : int -> t
(** [create seed] makes a generator from a 63-bit seed. *)

val copy : t -> t
(** Independent copy sharing the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent child
    generator; use it to hand sub-seeds to sub-experiments. *)

val split_n : t -> int -> t array
(** [split_n t n] draws [n] independent child generators from [t], in
    index order.  Pre-splitting one stream per work item makes the
    randomness of a parallel loop independent of how the items are later
    scheduled across domains. *)

val bits64 : t -> int64
(** Next raw 64 pseudo-random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Box–Muller normal deviate. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
