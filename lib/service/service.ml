module Pipeline = Qcr_core.Pipeline
module Clock = Qcr_obs.Clock
module Obs = Qcr_obs.Obs
module Registry = Qcr_obs.Registry
module Eventlog = Qcr_obs.Eventlog
module Json = Qcr_obs.Json
module Sharded_cache = Qcr_util.Sharded_cache
module Prng = Qcr_util.Prng
module Digest64 = Qcr_util.Digest64
module Pool = Qcr_par.Pool
module Fault = Qcr_fault.Fault
module Request = Compile_request
module Reply = Compile_reply

let c_requests = Obs.counter "service.requests"

let c_hit = Obs.counter "service.cache.hit"

let c_miss = Obs.counter "service.cache.miss"

let c_corrupt = Obs.counter "service.cache.corrupt"

let c_degraded = Obs.counter "service.degraded"

let c_timeout = Obs.counter "service.timeout"

let c_error = Obs.counter "service.error"

let c_attempt = Obs.counter "service.tier_attempts"

let c_retry = Obs.counter "service.retries"

let c_breaker_trip = Obs.counter "service.breaker.trips"

let c_breaker_skip = Obs.counter "service.breaker.skips"

let c_boundary = Obs.counter "service.boundary_catches"

(* Injection points: a [service.tier] crash fails one compile attempt, a
   [cache.get]/[cache.put] corruption flips a byte of the entry bytes
   the digest check guards. *)
let tier_point = Fault.point "service.tier"

let cache_get_point = Fault.point "cache.get"

let cache_put_point = Fault.point "cache.put"

type stats = {
  requests : int;
  cache_hits : int;
  cache_misses : int;
  cache_corrupt : int;
  served_ok : int;
  degraded : int;
  timeouts : int;
  errors : int;
  retries : int;
  breaker_trips : int;
}

let zero_stats =
  {
    requests = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_corrupt = 0;
    served_ok = 0;
    degraded = 0;
    timeouts = 0;
    errors = 0;
    retries = 0;
    breaker_trips = 0;
  }

let stats_sub a b =
  {
    requests = a.requests - b.requests;
    cache_hits = a.cache_hits - b.cache_hits;
    cache_misses = a.cache_misses - b.cache_misses;
    cache_corrupt = a.cache_corrupt - b.cache_corrupt;
    served_ok = a.served_ok - b.served_ok;
    degraded = a.degraded - b.degraded;
    timeouts = a.timeouts - b.timeouts;
    errors = a.errors - b.errors;
    retries = a.retries - b.retries;
    breaker_trips = a.breaker_trips - b.breaker_trips;
  }

let stats_to_json ?breakers ?cache s =
  let int_field n v = (n, Json.Num (float_of_int v)) in
  Json.Obj
    ([
       int_field "requests" s.requests;
       int_field "cache_hits" s.cache_hits;
       int_field "cache_misses" s.cache_misses;
       int_field "cache_corrupt" s.cache_corrupt;
       int_field "served_ok" s.served_ok;
       int_field "degraded" s.degraded;
       int_field "timeouts" s.timeouts;
       int_field "errors" s.errors;
       int_field "retries" s.retries;
       int_field "breaker_trips" s.breaker_trips;
     ]
    @ (match cache with
      | None -> []
      | Some (shards, cache_bytes) ->
          [ int_field "shards" shards; int_field "cache_bytes" cache_bytes ])
    @
    match breakers with
    | None -> []
    | Some states ->
        [ ("breakers", Json.Obj (List.map (fun (tier, st) -> (tier, Json.Str st)) states)) ])

(* Tier indices for the cost model and the circuit breakers. *)
let tier_index = function
  | Request.Portfolio -> 0
  | Request.Ours -> 1
  | Request.Greedy -> 2
  | Request.Ata -> 3

let tier_names = [| "portfolio"; "ours"; "greedy"; "ata" |]

(* Registry meters, registered once at module initialization so the
   metric families exist (empty) before the first request — an idle
   server still exposes stable family names. *)
let m_request_ms = Registry.meter "service.request_ms"

let tier_meters =
  Array.map (fun name -> Registry.meter ~labels:[ ("tier", name) ] "service.compile_ms") tier_names

(* Per-tier circuit breaker.  Closed counts the consecutive-failure
   streak; at [threshold] it opens for [cooldown_s] seconds of the
   service clock, during which the tier is skipped (the ladder moves on
   to cheaper tiers).  Once cooled it half-opens: attempts are admitted
   as probes, one success recloses it, one failure reopens it. *)
type breaker_state =
  | Closed
  | Open of float (* reopens for probing at this clock reading *)
  | Half_open

type breaker = {
  mutable b_state : breaker_state;
  mutable streak : int; (* consecutive failures while closed *)
  mutable trips : int; (* cumulative open transitions *)
}

type entry = {
  e_reply : Reply.t;
  canon : string; (* canonical serialized body, the digested bytes *)
  digest : string;
}

type t = {
  cache : entry Sharded_cache.t;  (* per-shard locks of its own: cache
                                     traffic never touches [lock] *)
  store : Cache_store.t option;  (* disk-backed warm-restart store *)
  lock : Mutex.t;  (* guards [costs], [breakers] and [retry_rng] only;
                      stats mutate on the driver domain only, except
                      [retries_total] (atomic) and the cache counters
                      (per-shard, merged at read time) *)
  clock : Clock.t;
  astar_budget : int;
  on_attempt : Request.mode -> unit;
  costs : float array;  (* EWMA compile seconds per program edge, per tier *)
  breakers : breaker array;
  retries : int;
  backoff_s : float;
  breaker_threshold : int;
  breaker_cooldown_s : float;
  sleep : float -> unit;
  retry_rng : Prng.t; (* jitter stream, seeded: backoff is reproducible *)
  retries_total : int Atomic.t;
  eventlog : Eventlog.t option;
  mutable st : stats;
}

(* A full-quality reply is the only thing worth caching: degraded and
   failed replies depend on the deadline, not just the content key. *)
let cacheable (r : Reply.t) =
  match r.Reply.outcome with
  | Reply.Compiled { mode; _ } -> mode = r.Reply.requested_mode
  | Reply.Failed _ -> false

(* The digested canonical bytes: content only — no id, no timing, no
   cache flag, no per-request trace — so every hit can be checked
   against the digest computed at insertion. *)
let canonical_body (r : Reply.t) =
  Json.to_string
    (Reply.strip_volatile (Reply.to_json { r with Reply.id = ""; cached = false; trace = None }))

let entry_of_reply r =
  let canon = canonical_body r in
  { e_reply = r; canon; digest = Digest64.of_string canon }

let entry_weight e = String.length e.canon + String.length e.digest

(* What a persisted record stores: the full reply JSON with volatile
   fields zeroed, so [Reply.of_json] reconstructs it on a warm restart
   (the canonical digested bytes strip [compile_ms] and cannot be parsed
   back on their own). *)
let persist_body (r : Reply.t) =
  Json.to_string
    (Reply.to_json { r with Reply.id = ""; cached = false; compile_ms = 0.0; trace = None })

(* Warm-start the cache from a store: each validated record must parse
   back into a full-quality reply whose own cache key matches the record
   key; anything else counts as a corrupt entry and is left behind (the
   next flush rewrites it from a fresh compile). *)
let load_store cache store =
  List.iter
    (fun (key, body) ->
      match Json.of_string body with
      | Ok j -> (
          match Reply.of_json j with
          | Ok r when cacheable r && r.Reply.key = key ->
              Sharded_cache.add cache key (entry_of_reply r)
          | _ -> Sharded_cache.note_corrupt cache key)
      | Error _ -> Sharded_cache.note_corrupt cache key)
    (Cache_store.entries store)

(* Registry probes for this instance's gauges.  Probes replace by (name,
   labels), so creating a new service re-points them at the newest
   instance instead of growing the probe table — tests that build many
   services stay bounded. *)
let register_probes t =
  Registry.register_probe "service.cache_bytes" (fun () ->
      float_of_int (Sharded_cache.bytes t.cache));
  Registry.register_probe "service.cache_shards" (fun () ->
      float_of_int (Sharded_cache.shard_count t.cache));
  Registry.register_probe "service.cache_entries" (fun () ->
      float_of_int (Sharded_cache.length t.cache));
  Array.iteri
    (fun i name ->
      Registry.register_probe ~labels:[ ("tier", name) ] "service.breaker_state" (fun () ->
          Mutex.lock t.lock;
          let v =
            match t.breakers.(i).b_state with Closed -> 0.0 | Half_open -> 1.0 | Open _ -> 2.0
          in
          Mutex.unlock t.lock;
          v))
    tier_names

let create ?(cache_capacity = 512) ?(cache_shards = 16) ?store ?(clock = Clock.wall)
    ?(astar_budget = 30_000) ?(on_attempt = fun _ -> ()) ?(retries = 2) ?(backoff_s = 0.005)
    ?(breaker_threshold = 5) ?(breaker_cooldown_s = 30.0) ?(retry_seed = 0x51ee7)
    ?(sleep = fun s -> if s > 0.0 then Unix.sleepf s) ?eventlog () =
  let cache =
    Sharded_cache.create ~shards:cache_shards ~weight:entry_weight ~capacity:cache_capacity ()
  in
  Option.iter (load_store cache) store;
  let t =
    {
      cache;
      store;
      lock = Mutex.create ();
      clock;
      astar_budget;
      on_attempt;
      costs = Array.make 4 0.0;
      breakers = Array.init 4 (fun _ -> { b_state = Closed; streak = 0; trips = 0 });
      retries = max 0 retries;
      backoff_s = Float.max 0.0 backoff_s;
      breaker_threshold = max 1 breaker_threshold;
      breaker_cooldown_s = Float.max 0.0 breaker_cooldown_s;
      sleep;
      retry_rng = Prng.create retry_seed;
      retries_total = Atomic.make 0;
      eventlog;
      st = zero_stats;
    }
  in
  register_probes t;
  t

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let breaker_trips t =
  locked t (fun () -> Array.fold_left (fun acc b -> acc + b.trips) 0 t.breakers)

(* Cache counters merge per-shard (each mutated only under its shard
   lock) plus the store's load-time skips, so they are exact under
   sharding instead of racing one shared record. *)
let stats t =
  let c = Sharded_cache.stats t.cache in
  let store_corrupt =
    match t.store with Some s -> Cache_store.corrupt_skipped s | None -> 0
  in
  {
    t.st with
    cache_hits = c.Sharded_cache.hits;
    cache_misses = c.Sharded_cache.misses;
    cache_corrupt = c.Sharded_cache.corrupt + store_corrupt;
    retries = Atomic.get t.retries_total;
    breaker_trips = breaker_trips t;
  }

let cache_info t = (Sharded_cache.shard_count t.cache, Sharded_cache.bytes t.cache)

let cache_entries t = Sharded_cache.length t.cache

(* Persist every cached entry the store does not hold yet.  Content
   addressing makes this idempotent: a key, once written, is never
   rewritten, so repeated flushes append only what changed. *)
let flush t =
  match t.store with
  | None -> Ok 0
  | Some store ->
      let fresh =
        Sharded_cache.fold
          (fun key e acc ->
            if Cache_store.mem store key then acc else (key, persist_body e.e_reply) :: acc)
          t.cache []
      in
      Cache_store.append store fresh

let state_name = function Closed -> "closed" | Open _ -> "open" | Half_open -> "half_open"

let breaker_states t =
  locked t (fun () ->
      Array.to_list (Array.mapi (fun i b -> (tier_names.(i), state_name b.b_state)) t.breakers))

(* Breaker transitions; [now] is a reading of the service clock. *)
let breaker_admits t tier now =
  locked t (fun () ->
      let b = t.breakers.(tier_index tier) in
      match b.b_state with
      | Closed | Half_open -> true
      | Open until when now >= until ->
          b.b_state <- Half_open;
          true
      | Open _ -> false)

let breaker_success t tier =
  locked t (fun () ->
      let b = t.breakers.(tier_index tier) in
      b.b_state <- Closed;
      b.streak <- 0)

let breaker_failure t tier now =
  locked t (fun () ->
      let b = t.breakers.(tier_index tier) in
      b.streak <- b.streak + 1;
      match b.b_state with
      | Half_open ->
          (* the probe failed: straight back to open *)
          b.b_state <- Open (now +. t.breaker_cooldown_s);
          b.trips <- b.trips + 1;
          Obs.incr c_breaker_trip
      | Closed when b.streak >= t.breaker_threshold ->
          b.b_state <- Open (now +. t.breaker_cooldown_s);
          b.trips <- b.trips + 1;
          b.streak <- 0;
          Obs.incr c_breaker_trip
      | Closed | Open _ -> ())

(* Degradation ladder (portfolio -> full system -> pure greedy); rigid
   ATA requests have no meaningful cheaper tier. *)
let ladder = function
  | Request.Portfolio -> [ Request.Portfolio; Request.Ours; Request.Greedy ]
  | Request.Ours -> [ Request.Ours; Request.Greedy ]
  | Request.Greedy -> [ Request.Greedy ]
  | Request.Ata -> [ Request.Ata ]

let predicted_cost t tier ~edges = locked t (fun () -> t.costs.(tier_index tier)) *. edges

let observe_cost t tier ~edges seconds =
  let per_edge = seconds /. edges in
  locked t (fun () ->
      let i = tier_index tier in
      t.costs.(i) <- (if t.costs.(i) = 0.0 then per_edge else 0.5 *. (t.costs.(i) +. per_edge)))

let backtrace_suffix bt = if bt = "" then "" else "\n" ^ bt

(* One compile attempt behind the [service.tier] fault point; any
   exception (an injected crash, or anything [Pipeline.run]'s own
   capture missed) comes back as a typed [Internal] with the backtrace. *)
let attempt_once pipeline_req =
  try
    Fault.fire tier_point;
    Pipeline.run pipeline_req
  with
  | (Out_of_memory | Stack_overflow) as e -> raise e
  | e ->
      let bt = Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ()) in
      Error (Pipeline.Internal (Printexc.to_string e ^ backtrace_suffix bt))

(* Seeded exponential backoff with full jitter: attempt [k] (0-based)
   waits [backoff_s * 2^k * u], u uniform in [1, 2). *)
let backoff_delay t k =
  let u = locked t (fun () -> 1.0 +. Prng.float t.retry_rng 1.0) in
  t.backoff_s *. Float.of_int (1 lsl k) *. u

(* Walk the ladder.  Admission is predictive: a tier runs only when its
   breaker allows it and the cost model says it fits the remaining
   budget (the first attempt of a tier is always admitted — its cost is
   still unknown).  A tier that completes past its deadline is
   discarded: its timing feeds the model, and the walk continues with
   the cheaper tiers.  Transient ([Internal]) failures retry with
   backoff, feed the breaker, and fall through to the next tier. *)
let error_kind = function
  | Pipeline.Timeout _ -> "timeout"
  | Pipeline.Invalid_request _ -> "invalid_request"
  | Pipeline.Internal _ -> "internal"
  | Pipeline.Overloaded _ -> "overloaded"
  | Pipeline.Canceled -> "canceled"

let compile_cold t (req : Request.t) key =
  let span_args =
    if req.Request.id = "" then [] else [ ("req", req.Request.id) ]
  in
  Obs.with_span ~cat:"service" ~args:span_args "service.compile_cold" @@ fun () ->
  let t0 = Clock.now t.clock in
  let deadline = Option.map (fun d -> t0 +. d) req.Request.deadline_s in
  let edges = float_of_int (max 1 (List.length (Request.canonical_edges req))) in
  (* Phase breakdown, collected in reverse.  The phase sequence and
     every non-timing field are deterministic for a given seed; only the
     [ms] readings vary (and are stripped by [Reply.strip_volatile]). *)
  let phases = ref [] in
  let push ~tier ~outcome ~retries ~ms =
    if req.Request.trace then
      phases :=
        {
          Reply.p_phase = "compile";
          p_detail = tier_names.(tier_index tier);
          p_outcome = outcome;
          p_retries = retries;
          p_ms = ms;
        }
        :: !phases
  in
  let reply outcome =
    {
      Reply.id = req.Request.id;
      key;
      requested_mode = req.Request.mode;
      outcome;
      cached = false;
      compile_ms = (Clock.now t.clock -. t0) *. 1000.0;
      trace = (if req.Request.trace then Some (List.rev !phases) else None);
    }
  in
  let exhausted last_err =
    reply
      (Reply.Failed
         (match last_err with
         | Some e -> e
         | None -> (
             match req.Request.deadline_s with
             | Some deadline_s -> Pipeline.Timeout { deadline_s }
             | None -> Pipeline.Internal "degradation ladder exhausted")))
  in
  let rec attempt last_err = function
    | [] -> exhausted last_err
    | tier :: rest -> (
        let now = Clock.now t.clock in
        if not (breaker_admits t tier now) then begin
          Obs.incr c_breaker_skip;
          push ~tier ~outcome:"breaker_open" ~retries:0 ~ms:0.0;
          attempt last_err rest
        end
        else
          let admitted =
            match deadline with
            | None -> true
            | Some d -> now < d && now +. predicted_cost t tier ~edges <= d
          in
          if not admitted then begin
            push ~tier ~outcome:"not_admitted" ~retries:0 ~ms:0.0;
            attempt last_err rest
          end
          else begin
            let arch = Request.arch_of req in
            let pipeline_req =
              Pipeline.Request.make ~id:req.Request.id ~config:(Request.config_of req)
                ?noise:(Request.noise_of req arch)
                ~mode:(Request.pipeline_mode ~astar_budget:t.astar_budget { req with Request.mode = tier })
                arch (Request.program_of req)
            in
            let tier_start = Clock.now t.clock in
            let rec try_tier k =
              t.on_attempt tier;
              Obs.incr c_attempt;
              let t_start = Clock.now t.clock in
              let outcome = attempt_once pipeline_req in
              let t_end = Clock.now t.clock in
              observe_cost t tier ~edges (t_end -. t_start);
              Registry.observe tier_meters.(tier_index tier) ((t_end -. t_start) *. 1000.0);
              match outcome with
              | Error (Pipeline.Internal _) when k < t.retries ->
                  Obs.incr c_retry;
                  Atomic.incr t.retries_total;
                  t.sleep (backoff_delay t k);
                  try_tier (k + 1)
              | outcome -> (outcome, t_end, k)
            in
            let tier_ms t_end = (t_end -. tier_start) *. 1000.0 in
            match try_tier 0 with
            | Error (Pipeline.Invalid_request _ as e), t_end, k ->
                (* deterministic rejection: no cheaper tier can fix it,
                   and it says nothing about the tier's health *)
                push ~tier ~outcome:(error_kind e) ~retries:k ~ms:(tier_ms t_end);
                reply (Reply.Failed e)
            | Error e, t_end, k ->
                breaker_failure t tier t_end;
                push ~tier ~outcome:(error_kind e) ~retries:k ~ms:(tier_ms t_end);
                attempt (Some e) rest
            | Ok res, t_end, k -> (
                breaker_success t tier;
                match deadline with
                | Some d when t_end > d ->
                    push ~tier ~outcome:"discarded" ~retries:k ~ms:(tier_ms t_end);
                    attempt last_err rest
                | _ ->
                    push ~tier ~outcome:"ok" ~retries:k ~ms:(tier_ms t_end);
                    reply (Reply.Compiled { mode = tier; metrics = Reply.metrics_of_result res }))
          end)
  in
  attempt None (ladder req.Request.mode)

(* Insert through the [cache.put] fault point: a corruption mangles the
   stored bytes so the digest check catches it on the next hit; a crash
   skips caching but never loses the freshly compiled reply. *)
let cache_put t key r =
  if cacheable r then
    try
      (* never cache a trace: it describes one request's journey, not
         the content-addressed circuit *)
      let entry = entry_of_reply { r with Reply.trace = None } in
      let entry = { entry with canon = Fault.corrupt cache_put_point entry.canon } in
      Sharded_cache.add t.cache key entry
    with
    | (Out_of_memory | Stack_overflow) as e -> raise e
    | _ -> ()

(* Look up through the [cache.get] fault point and validate: an entry
   whose bytes no longer match their digest is evicted and the request
   falls through to a fresh compile — a corrupted entry is never
   served.  [evict_corrupt] reclassifies the shard's hit as a miss, so
   the merged hit count stays "replies actually served from cache". *)
let cache_get t key =
  match Sharded_cache.find t.cache key with
  | None -> None
  | Some entry ->
      let canon = Fault.corrupt cache_get_point entry.canon in
      if Digest64.of_string canon = entry.digest then Some entry.e_reply
      else begin
        Sharded_cache.evict_corrupt t.cache key;
        Obs.incr c_corrupt;
        None
      end

let count_outcome t (r : Reply.t) =
  let st = t.st in
  t.st <-
    (match r.Reply.outcome with
    | Reply.Compiled { mode; _ } when mode <> r.Reply.requested_mode ->
        Obs.incr c_degraded;
        { st with degraded = st.degraded + 1 }
    | Reply.Compiled _ -> { st with served_ok = st.served_ok + 1 }
    | Reply.Failed (Pipeline.Timeout _) ->
        Obs.incr c_timeout;
        { st with timeouts = st.timeouts + 1 }
    | Reply.Failed _ ->
        Obs.incr c_error;
        { st with errors = st.errors + 1 })

let trace_phase phase detail outcome ms =
  { Reply.p_phase = phase; p_detail = detail; p_outcome = outcome; p_retries = 0; p_ms = ms }

let invalid_reply (req : Request.t) key msg started =
  fun clock ->
  let ms = (Clock.now clock -. started) *. 1000.0 in
  {
    Reply.id = req.Request.id;
    key;
    requested_mode = req.Request.mode;
    outcome = Reply.Failed (Pipeline.Invalid_request msg);
    cached = false;
    compile_ms = ms;
    trace =
      (if req.Request.trace then Some [ trace_phase "validate" "request" "invalid_request" ms ]
       else None);
  }

let hit_reply (req : Request.t) (cached : Reply.t) started clock =
  let ms = (Clock.now clock -. started) *. 1000.0 in
  {
    cached with
    Reply.id = req.Request.id;
    cached = true;
    compile_ms = ms;
    trace = (if req.Request.trace then Some [ trace_phase "cache" "hit" "hit" ms ] else None);
  }

(* Slow/error events for the bounded event log; a no-op unless the
   service was created with one. *)
let record_events t (req : Request.t) (reply : Reply.t) =
  match t.eventlog with
  | None -> ()
  | Some log ->
      let fields =
        [
          ("key", Json.Str reply.Reply.key);
          ("status", Json.Str (Reply.status_name reply));
          ("mode", Json.Str (Request.mode_name req.Request.mode));
          ("cached", Json.Bool reply.Reply.cached);
        ]
      in
      (match reply.Reply.outcome with
      | Reply.Failed e ->
          Eventlog.record_error log ~id:reply.Reply.id
            (("error_kind", Json.Str (error_kind e)) :: fields)
      | Reply.Compiled _ -> ());
      Eventlog.record_slow log ~id:reply.Reply.id ~ms:reply.Reply.compile_ms fields

(* Serve one request against the cache; [compiled] optionally supplies a
   pre-computed cold reply (the parallel batch path). *)
let serve_exn t (req : Request.t) ~compiled =
  t.st <- { t.st with requests = t.st.requests + 1 };
  Obs.incr c_requests;
  let t0 = Clock.now t.clock in
  let finish reply =
    Registry.observe m_request_ms reply.Reply.compile_ms;
    record_events t req reply;
    reply
  in
  match Request.validate req with
  | Error msg ->
      Obs.incr c_error;
      t.st <- { t.st with errors = t.st.errors + 1 };
      finish (invalid_reply req "" msg t0 t.clock)
  | Ok () -> (
      let key = Request.cache_key req in
      match cache_get t key with
      | Some cached ->
          Obs.incr c_hit;
          finish (hit_reply req cached t0 t.clock)
      | None ->
          Obs.incr c_miss;
          let reply =
            match compiled key with
            | Some r -> { r with Reply.id = req.Request.id }
            | None -> compile_cold t req key
          in
          let reply =
            if req.Request.trace then
              {
                reply with
                Reply.trace =
                  Some
                    (trace_phase "cache" "miss" "miss" 0.0
                    :: Option.value reply.Reply.trace ~default:[]);
              }
            else reply
          in
          cache_put t key reply;
          count_outcome t reply;
          finish reply)

(* The catch-all boundary: whatever slips past the typed paths (an
   injected clock crash, a bug) becomes an [Internal] reply carrying the
   exception and its backtrace — the service never throws at a caller. *)
let boundary_reply (req : Request.t) e =
  let bt = Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ()) in
  {
    Reply.id = req.Request.id;
    key = "";
    requested_mode = req.Request.mode;
    outcome =
      Reply.Failed
        (Pipeline.Internal
           (Printf.sprintf "uncaught exception at service boundary: %s%s" (Printexc.to_string e)
              (backtrace_suffix bt)));
    cached = false;
    compile_ms = 0.0;
    trace = None;
  }

let serve t req ~compiled =
  try serve_exn t req ~compiled
  with
  | (Out_of_memory | Stack_overflow) as e -> raise e
  | e ->
      let reply = boundary_reply req e in
      Obs.incr c_boundary;
      Obs.incr c_error;
      t.st <- { t.st with errors = t.st.errors + 1 };
      record_events t req reply;
      reply

let submit t req = serve t req ~compiled:(fun _ -> None)

let run_batch t reqs =
  (* Phase 1: find the distinct cold keys (first valid occurrence each,
     skipping keys already cached) and compile them in parallel.  Phase 2
     assembles replies sequentially in request order, so cache flags and
     hit/miss counts never depend on the pool size. *)
  let seen = Hashtbl.create 16 in
  let cold =
    List.filter_map
      (fun req ->
        match Request.validate req with
        | Error _ -> None
        | Ok () ->
            let key = Request.cache_key req in
            if Hashtbl.mem seen key || Sharded_cache.mem t.cache key then None
            else begin
              Hashtbl.add seen key ();
              Some (key, req)
            end)
      reqs
  in
  (* Each cold compile is individually fenced, and the pool fan-out has
     an inline fallback: a lost pool never loses a batch. *)
  let compile_one (key, req) =
    ( key,
      try compile_cold t req key
      with
      | (Out_of_memory | Stack_overflow) as e -> raise e
      | e ->
          Obs.incr c_boundary;
          { (boundary_reply req e) with Reply.key = key } )
  in
  let compiled = Hashtbl.create 16 in
  (try Pool.map_list (Pool.default ()) compile_one cold
   with
   | (Out_of_memory | Stack_overflow) as e -> raise e
   | _ -> List.map compile_one cold)
  |> List.iter (fun (key, reply) -> Hashtbl.add compiled key reply);
  List.map
    (fun req ->
      serve t req ~compiled:(fun key ->
          match Hashtbl.find_opt compiled key with
          | Some r ->
              (* consumed by its first occurrence; duplicates either hit
                 the cache (full-quality outcome) or recompile inline *)
              Hashtbl.remove compiled key;
              Some r
          | None -> None))
    reqs

(* ---------- wire format ---------- *)

let batch_schema = "qcr-service-batch/v1"

let replies_schema = "qcr-service-replies/v1"

let requests_of_json j =
  let items =
    match j with
    | Json.Arr items -> Ok items
    | Json.Obj _ -> (
        (match Json.member "schema" j with
        | Some (Json.Str s) when s <> batch_schema ->
            Error (Printf.sprintf "unsupported schema %S (want %S)" s batch_schema)
        | _ -> Ok ())
        |> fun schema_ok ->
        Result.bind schema_ok (fun () ->
            match Json.member "requests" j with
            | Some (Json.Arr items) -> Ok items
            | _ -> Error "missing \"requests\" array"))
    | _ -> Error "batch must be an object or an array"
  in
  Result.bind items (fun items ->
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match Request.of_json item with
            | Ok r -> go (i + 1) (r :: acc) rest
            | Error e -> Error (Printf.sprintf "request %d: %s" i e))
      in
      go 0 [] items)

let requests_to_json reqs =
  Json.Obj
    [
      ("schema", Json.Str batch_schema);
      ("requests", Json.Arr (List.map Request.to_json reqs));
    ]

(* The metrics op: the full registry exposition (counters, gauges and
   probes — pool, cache, breakers — and meters with quantiles) plus this
   instance's wire-stats block, in one object. *)
let metrics_json t =
  match Registry.to_json (Registry.snapshot ()) with
  | Json.Obj fields ->
      Json.Obj
        (fields
        @ [ ("stats", stats_to_json ~breakers:(breaker_states t) ~cache:(cache_info t) (stats t)) ])
  | j -> j

let replies_to_json ?passes ?breakers ~domains ~stats replies =
  Json.Obj
    ([
       ("schema", Json.Str replies_schema);
       ("domains", Json.Num (float_of_int domains));
       ("replies", Json.Arr (List.map Reply.to_json replies));
       ("stats", stats_to_json ?breakers stats);
     ]
    @
    match passes with
    | None -> []
    | Some ps -> [ ("passes", Json.Arr (List.map stats_to_json ps)) ])
