module Pipeline = Qcr_core.Pipeline
module Clock = Qcr_obs.Clock
module Obs = Qcr_obs.Obs
module Json = Qcr_obs.Json
module Lru = Qcr_util.Lru
module Pool = Qcr_par.Pool
module Request = Compile_request
module Reply = Compile_reply

let c_requests = Obs.counter "service.requests"

let c_hit = Obs.counter "service.cache.hit"

let c_miss = Obs.counter "service.cache.miss"

let c_degraded = Obs.counter "service.degraded"

let c_timeout = Obs.counter "service.timeout"

let c_error = Obs.counter "service.error"

let c_attempt = Obs.counter "service.tier_attempts"

type stats = {
  requests : int;
  cache_hits : int;
  cache_misses : int;
  served_ok : int;
  degraded : int;
  timeouts : int;
  errors : int;
}

let zero_stats =
  { requests = 0; cache_hits = 0; cache_misses = 0; served_ok = 0; degraded = 0; timeouts = 0; errors = 0 }

let stats_sub a b =
  {
    requests = a.requests - b.requests;
    cache_hits = a.cache_hits - b.cache_hits;
    cache_misses = a.cache_misses - b.cache_misses;
    served_ok = a.served_ok - b.served_ok;
    degraded = a.degraded - b.degraded;
    timeouts = a.timeouts - b.timeouts;
    errors = a.errors - b.errors;
  }

let stats_to_json s =
  let int_field n v = (n, Json.Num (float_of_int v)) in
  Json.Obj
    [
      int_field "requests" s.requests;
      int_field "cache_hits" s.cache_hits;
      int_field "cache_misses" s.cache_misses;
      int_field "served_ok" s.served_ok;
      int_field "degraded" s.degraded;
      int_field "timeouts" s.timeouts;
      int_field "errors" s.errors;
    ]

(* Tier indices for the cost model. *)
let tier_index = function
  | Request.Portfolio -> 0
  | Request.Ours -> 1
  | Request.Greedy -> 2
  | Request.Ata -> 3

type t = {
  cache : Reply.t Lru.t;
  lock : Mutex.t;  (* guards [cache] and [costs]; stats mutate on the
                      driver domain only *)
  clock : Clock.t;
  astar_budget : int;
  on_attempt : Request.mode -> unit;
  costs : float array;  (* EWMA compile seconds per program edge, per tier *)
  mutable st : stats;
}

let create ?(cache_capacity = 512) ?(clock = Clock.wall) ?(astar_budget = 30_000)
    ?(on_attempt = fun _ -> ()) () =
  {
    cache = Lru.create ~capacity:cache_capacity;
    lock = Mutex.create ();
    clock;
    astar_budget;
    on_attempt;
    costs = Array.make 4 0.0;
    st = zero_stats;
  }

let stats t = t.st

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Degradation ladder (portfolio -> full system -> pure greedy); rigid
   ATA requests have no meaningful cheaper tier. *)
let ladder = function
  | Request.Portfolio -> [ Request.Portfolio; Request.Ours; Request.Greedy ]
  | Request.Ours -> [ Request.Ours; Request.Greedy ]
  | Request.Greedy -> [ Request.Greedy ]
  | Request.Ata -> [ Request.Ata ]

let predicted_cost t tier ~edges = locked t (fun () -> t.costs.(tier_index tier)) *. edges

let observe_cost t tier ~edges seconds =
  let per_edge = seconds /. edges in
  locked t (fun () ->
      let i = tier_index tier in
      t.costs.(i) <- (if t.costs.(i) = 0.0 then per_edge else 0.5 *. (t.costs.(i) +. per_edge)))

(* Walk the ladder.  Admission is predictive: a tier runs only when the
   cost model says it fits the remaining budget (the first attempt of a
   tier is always admitted — its cost is still unknown).  A tier that
   completes past its deadline is discarded: its timing feeds the model,
   and the walk continues with the cheaper tiers. *)
let compile_cold t (req : Request.t) key =
  let t0 = Clock.now t.clock in
  let deadline = Option.map (fun d -> t0 +. d) req.Request.deadline_s in
  let edges = float_of_int (max 1 (List.length (Request.canonical_edges req))) in
  let reply outcome =
    {
      Reply.id = req.Request.id;
      key;
      requested_mode = req.Request.mode;
      outcome;
      cached = false;
      compile_ms = (Clock.now t.clock -. t0) *. 1000.0;
    }
  in
  let rec attempt = function
    | [] ->
        reply
          (Reply.Failed
             (match req.Request.deadline_s with
             | Some deadline_s -> Pipeline.Timeout { deadline_s }
             | None -> Pipeline.Internal "degradation ladder exhausted"))
    | tier :: rest -> (
        let now = Clock.now t.clock in
        let admitted =
          match deadline with
          | None -> true
          | Some d -> now < d && now +. predicted_cost t tier ~edges <= d
        in
        if not admitted then attempt rest
        else begin
          t.on_attempt tier;
          Obs.incr c_attempt;
          let arch = Request.arch_of req in
          let pipeline_req =
            Pipeline.Request.make ~config:(Request.config_of req)
              ?noise:(Request.noise_of req arch)
              ~mode:(Request.pipeline_mode ~astar_budget:t.astar_budget { req with Request.mode = tier })
              arch (Request.program_of req)
          in
          let t_start = Clock.now t.clock in
          let outcome = Pipeline.run pipeline_req in
          let t_end = Clock.now t.clock in
          observe_cost t tier ~edges (t_end -. t_start);
          match outcome with
          | Error e -> reply (Reply.Failed e)
          | Ok res -> (
              match deadline with
              | Some d when t_end > d -> attempt rest
              | _ -> reply (Reply.Compiled { mode = tier; metrics = Reply.metrics_of_result res }))
        end)
  in
  attempt (ladder req.Request.mode)

(* A full-quality reply is the only thing worth caching: degraded and
   failed replies depend on the deadline, not just the content key. *)
let cacheable (r : Reply.t) =
  match r.Reply.outcome with
  | Reply.Compiled { mode; _ } -> mode = r.Reply.requested_mode
  | Reply.Failed _ -> false

let count_outcome t (r : Reply.t) =
  let st = t.st in
  t.st <-
    (match r.Reply.outcome with
    | Reply.Compiled { mode; _ } when mode <> r.Reply.requested_mode ->
        Obs.incr c_degraded;
        { st with degraded = st.degraded + 1 }
    | Reply.Compiled _ -> { st with served_ok = st.served_ok + 1 }
    | Reply.Failed (Pipeline.Timeout _) ->
        Obs.incr c_timeout;
        { st with timeouts = st.timeouts + 1 }
    | Reply.Failed _ ->
        Obs.incr c_error;
        { st with errors = st.errors + 1 })

let invalid_reply (req : Request.t) key msg started =
  fun clock ->
  {
    Reply.id = req.Request.id;
    key;
    requested_mode = req.Request.mode;
    outcome = Reply.Failed (Pipeline.Invalid_request msg);
    cached = false;
    compile_ms = (Clock.now clock -. started) *. 1000.0;
  }

let hit_reply (req : Request.t) (cached : Reply.t) started clock =
  {
    cached with
    Reply.id = req.Request.id;
    cached = true;
    compile_ms = (Clock.now clock -. started) *. 1000.0;
  }

(* Serve one request against the cache; [compiled] optionally supplies a
   pre-computed cold reply (the parallel batch path). *)
let serve t (req : Request.t) ~compiled =
  t.st <- { t.st with requests = t.st.requests + 1 };
  Obs.incr c_requests;
  let t0 = Clock.now t.clock in
  match Request.validate req with
  | Error msg ->
      Obs.incr c_error;
      t.st <- { t.st with errors = t.st.errors + 1 };
      invalid_reply req "" msg t0 t.clock
  | Ok () -> (
      let key = Request.cache_key req in
      match locked t (fun () -> Lru.find t.cache key) with
      | Some cached ->
          Obs.incr c_hit;
          t.st <- { t.st with cache_hits = t.st.cache_hits + 1 };
          hit_reply req cached t0 t.clock
      | None ->
          Obs.incr c_miss;
          t.st <- { t.st with cache_misses = t.st.cache_misses + 1 };
          let reply =
            match compiled key with
            | Some r -> { r with Reply.id = req.Request.id }
            | None -> compile_cold t req key
          in
          if cacheable reply then locked t (fun () -> Lru.add t.cache key reply);
          count_outcome t reply;
          reply)

let submit t req = serve t req ~compiled:(fun _ -> None)

let run_batch t reqs =
  (* Phase 1: find the distinct cold keys (first valid occurrence each,
     skipping keys already cached) and compile them in parallel.  Phase 2
     assembles replies sequentially in request order, so cache flags and
     hit/miss counts never depend on the pool size. *)
  let seen = Hashtbl.create 16 in
  let cold =
    List.filter_map
      (fun req ->
        match Request.validate req with
        | Error _ -> None
        | Ok () ->
            let key = Request.cache_key req in
            if Hashtbl.mem seen key || locked t (fun () -> Lru.mem t.cache key) then None
            else begin
              Hashtbl.add seen key ();
              Some (key, req)
            end)
      reqs
  in
  let compiled = Hashtbl.create 16 in
  Pool.map_list (Pool.default ())
    (fun (key, req) -> (key, compile_cold t req key))
    cold
  |> List.iter (fun (key, reply) -> Hashtbl.add compiled key reply);
  List.map
    (fun req ->
      serve t req ~compiled:(fun key ->
          match Hashtbl.find_opt compiled key with
          | Some r ->
              (* consumed by its first occurrence; duplicates either hit
                 the cache (full-quality outcome) or recompile inline *)
              Hashtbl.remove compiled key;
              Some r
          | None -> None))
    reqs

(* ---------- wire format ---------- *)

let batch_schema = "qcr-service-batch/v1"

let replies_schema = "qcr-service-replies/v1"

let requests_of_json j =
  let items =
    match j with
    | Json.Arr items -> Ok items
    | Json.Obj _ -> (
        (match Json.member "schema" j with
        | Some (Json.Str s) when s <> batch_schema ->
            Error (Printf.sprintf "unsupported schema %S (want %S)" s batch_schema)
        | _ -> Ok ())
        |> fun schema_ok ->
        Result.bind schema_ok (fun () ->
            match Json.member "requests" j with
            | Some (Json.Arr items) -> Ok items
            | _ -> Error "missing \"requests\" array"))
    | _ -> Error "batch must be an object or an array"
  in
  Result.bind items (fun items ->
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match Request.of_json item with
            | Ok r -> go (i + 1) (r :: acc) rest
            | Error e -> Error (Printf.sprintf "request %d: %s" i e))
      in
      go 0 [] items)

let requests_to_json reqs =
  Json.Obj
    [
      ("schema", Json.Str batch_schema);
      ("requests", Json.Arr (List.map Request.to_json reqs));
    ]

let replies_to_json ?passes ~domains ~stats replies =
  Json.Obj
    ([
       ("schema", Json.Str replies_schema);
       ("domains", Json.Num (float_of_int domains));
       ("replies", Json.Arr (List.map Reply.to_json replies));
       ("stats", stats_to_json stats);
     ]
    @
    match passes with
    | None -> []
    | Some ps -> [ ("passes", Json.Arr (List.map stats_to_json ps)) ])
