module Pipeline = Qcr_core.Pipeline
module Circuit = Qcr_circuit.Circuit
module Gate = Qcr_circuit.Gate
module Json = Qcr_obs.Json
module Digest64 = Qcr_util.Digest64

type metrics = {
  depth : int;
  cx : int;
  swap_count : int;
  log_fidelity : float;
  strategy : string;
  circuit_digest : string;
}

type outcome =
  | Compiled of { mode : Compile_request.mode; metrics : metrics }
  | Failed of Pipeline.error

type phase = {
  p_phase : string;
  p_detail : string;
  p_outcome : string;
  p_retries : int;
  p_ms : float;
}

type t = {
  id : string;
  key : string;
  requested_mode : Compile_request.mode;
  outcome : outcome;
  cached : bool;
  compile_ms : float;
  trace : phase list option;
}

let degraded t =
  match t.outcome with
  | Compiled { mode; _ } -> mode <> t.requested_mode
  | Failed _ -> false

let status_name t =
  match t.outcome with
  | Failed _ -> "error"
  | Compiled _ -> if degraded t then "degraded" else "ok"

let strategy_name = function
  | Pipeline.Pure_greedy -> "greedy"
  | Pipeline.Pure_ata -> "ata"
  | Pipeline.Hybrid c -> Printf.sprintf "hybrid@%d" c

let circuit_digest circuit =
  let d = Digest64.add_int Digest64.empty (Circuit.qubit_count circuit) in
  List.fold_left (fun d g -> Digest64.add_string d (Gate.to_string g)) d (Circuit.gates circuit)
  |> Digest64.to_hex

let metrics_of_result (r : Pipeline.result) =
  {
    depth = r.Pipeline.depth;
    cx = r.Pipeline.cx;
    swap_count = r.Pipeline.swap_count;
    log_fidelity = r.Pipeline.log_fidelity;
    strategy = strategy_name r.Pipeline.strategy;
    circuit_digest = circuit_digest r.Pipeline.circuit;
  }

(* ---------- JSON ---------- *)

let error_to_json = function
  | Pipeline.Timeout { deadline_s } ->
      Json.Obj [ ("kind", Json.Str "timeout"); ("deadline_s", Json.Num deadline_s) ]
  | Pipeline.Invalid_request msg ->
      Json.Obj [ ("kind", Json.Str "invalid_request"); ("message", Json.Str msg) ]
  | Pipeline.Internal msg ->
      Json.Obj [ ("kind", Json.Str "internal"); ("message", Json.Str msg) ]
  | Pipeline.Overloaded { queued; limit } ->
      Json.Obj
        [
          ("kind", Json.Str "overloaded");
          ("queued", Json.Num (float_of_int queued));
          ("limit", Json.Num (float_of_int limit));
        ]
  | Pipeline.Canceled -> Json.Obj [ ("kind", Json.Str "canceled") ]

let to_json t =
  let base =
    [
      ("id", Json.Str t.id);
      ("key", Json.Str t.key);
      ("requested_mode", Json.Str (Compile_request.mode_name t.requested_mode));
      ("status", Json.Str (status_name t));
    ]
  in
  let body =
    match t.outcome with
    | Compiled { mode; metrics = m } ->
        [
          ("mode", Json.Str (Compile_request.mode_name mode));
          ("depth", Json.Num (float_of_int m.depth));
          ("cx", Json.Num (float_of_int m.cx));
          ("swaps", Json.Num (float_of_int m.swap_count));
          ("log_fidelity", Json.Num m.log_fidelity);
          ("strategy", Json.Str m.strategy);
          ("circuit_digest", Json.Str m.circuit_digest);
        ]
    | Failed e -> [ ("error", error_to_json e) ]
  in
  let phase_json p =
    Json.Obj
      [
        ("phase", Json.Str p.p_phase);
        ("detail", Json.Str p.p_detail);
        ("outcome", Json.Str p.p_outcome);
        ("retries", Json.Num (float_of_int p.p_retries));
        ("ms", Json.Num p.p_ms);
      ]
  in
  let trace =
    match t.trace with
    | None -> []
    | Some ps -> [ ("trace", Json.Arr (List.map phase_json ps)) ]
  in
  Json.Obj
    (base @ body
    @ [ ("cached", Json.Bool t.cached); ("compile_ms", Json.Num t.compile_ms) ]
    @ trace)

let ( let* ) r f = Result.bind r f

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_str name = function
  | Json.Str s -> Ok s
  | _ -> Error (Printf.sprintf "field %S must be a string" name)

let as_num name = function
  | Json.Num f -> Ok f
  | _ -> Error (Printf.sprintf "field %S must be a number" name)

let as_int name j =
  let* f = as_num name j in
  if Float.is_integer f then Ok (int_of_float f)
  else Error (Printf.sprintf "field %S must be an integer" name)

let as_bool name = function
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let str_field name j = Result.bind (field name j) (as_str name)

let num_field name j = Result.bind (field name j) (as_num name)

let int_field name j = Result.bind (field name j) (as_int name)

let error_of_json j =
  let* kind = str_field "kind" j in
  match kind with
  | "timeout" ->
      let* deadline_s = num_field "deadline_s" j in
      Ok (Pipeline.Timeout { deadline_s })
  | "invalid_request" ->
      let* msg = str_field "message" j in
      Ok (Pipeline.Invalid_request msg)
  | "internal" ->
      let* msg = str_field "message" j in
      Ok (Pipeline.Internal msg)
  | "overloaded" ->
      let* queued = int_field "queued" j in
      let* limit = int_field "limit" j in
      Ok (Pipeline.Overloaded { queued; limit })
  | "canceled" -> Ok Pipeline.Canceled
  | s -> Error (Printf.sprintf "unknown error kind %S" s)

let of_json j =
  let* id = str_field "id" j in
  let* key = str_field "key" j in
  let* requested_mode = Result.bind (str_field "requested_mode" j) Compile_request.mode_of_name in
  let* status = str_field "status" j in
  let* outcome =
    match status with
    | "error" ->
        let* e = Result.bind (field "error" j) error_of_json in
        Ok (Failed e)
    | "ok" | "degraded" ->
        let* mode = Result.bind (str_field "mode" j) Compile_request.mode_of_name in
        let* depth = int_field "depth" j in
        let* cx = int_field "cx" j in
        let* swap_count = int_field "swaps" j in
        let* log_fidelity = num_field "log_fidelity" j in
        let* strategy = str_field "strategy" j in
        let* circuit_digest = str_field "circuit_digest" j in
        Ok (Compiled { mode; metrics = { depth; cx; swap_count; log_fidelity; strategy; circuit_digest } })
    | s -> Error (Printf.sprintf "unknown status %S" s)
  in
  let* cached = Result.bind (field "cached" j) (as_bool "cached") in
  let* compile_ms = num_field "compile_ms" j in
  let* trace =
    match Json.member "trace" j with
    | None | Some Json.Null -> Ok None
    | Some (Json.Arr items) ->
        let rec go acc = function
          | [] -> Ok (Some (List.rev acc))
          | item :: rest ->
              let* p_phase = str_field "phase" item in
              let* p_detail = str_field "detail" item in
              let* p_outcome = str_field "outcome" item in
              let* p_retries = int_field "retries" item in
              let* p_ms = num_field "ms" item in
              go ({ p_phase; p_detail; p_outcome; p_retries; p_ms } :: acc) rest
        in
        go [] items
    | Some _ -> Error "field \"trace\" must be an array"
  in
  Ok { id; key; requested_mode; outcome; cached; compile_ms; trace }

(* Volatile fields are the timing ones: the reply's own [compile_ms] and
   each trace phase's [ms].  Everything else — including the phase
   sequence itself — is deterministic for a given seed and batch, which
   is what the cross-pool-size bit-identity tests check. *)
let rec strip_volatile = function
  | Json.Obj fields ->
      Json.Obj
        (List.filter_map
           (fun (k, v) ->
             if k = "compile_ms" || k = "ms" then None else Some (k, strip_volatile v))
           fields)
  | Json.Arr items -> Json.Arr (List.map strip_volatile items)
  | j -> j
