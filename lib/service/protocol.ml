module Json = Qcr_obs.Json

let version = 2

module Op = struct
  type t =
    | Compile of Compile_request.t
    | Submit of Compile_request.t * string option
    | Poll of string
    | Wait of string
    | Cancel of string
    | Result of string
    | Jobs
    | Health
    | Stats
    | Metrics
    | Flush

  let name = function
    | Compile _ -> "compile"
    | Submit _ -> "submit"
    | Poll _ -> "poll"
    | Wait _ -> "wait"
    | Cancel _ -> "cancel"
    | Result _ -> "result"
    | Jobs -> "jobs"
    | Health -> "health"
    | Stats -> "stats"
    | Metrics -> "metrics"
    | Flush -> "flush"

  let equal a b =
    match (a, b) with
    | Compile ra, Compile rb -> ra = rb
    | Submit (ra, ia), Submit (rb, ib) -> ra = rb && Option.equal String.equal ia ib
    | Poll a, Poll b | Wait a, Wait b | Cancel a, Cancel b | Result a, Result b ->
        String.equal a b
    | Jobs, Jobs | Health, Health | Stats, Stats | Metrics, Metrics | Flush, Flush -> true
    | _ -> false
end

type wire_error =
  | Malformed of string
  | Unknown_op of string
  | Bad_version of int

let wire_error_kind = function
  | Malformed _ -> "malformed"
  | Unknown_op _ -> "unknown_op"
  | Bad_version _ -> "bad_version"

let ( let* ) r f = Result.bind r f

(* Absent "v" is version 1 — the wire format before the version field
   existed.  Both live versions decode identically today; the field earns
   its keep when v3 changes shapes. *)
let version_of j =
  match Json.member "v" j with
  | None -> Ok 1
  | Some (Json.Num f) when Float.is_integer f ->
      let v = int_of_float f in
      if v = 1 || v = 2 then Ok v else Error (Bad_version v)
  | Some _ -> Error (Malformed "field \"v\" must be an integer protocol version")

let decode_json j =
  match j with
  | Json.Obj _ -> (
      let* _v = version_of j in
      match Json.member "op" j with
      | None -> (
          (* v1 shape: the line is the compile request itself. *)
          match Compile_request.of_json j with
          | Ok r -> Ok (Op.Compile r)
          | Error e -> Error (Malformed e))
      | Some (Json.Str op) -> (
          let request () =
            match Json.member "request" j with
            | Some rj -> (
                match Compile_request.of_json rj with
                | Ok r -> Ok r
                | Error e -> Error (Malformed e))
            | None -> Error (Malformed (Printf.sprintf "op %S needs a \"request\" object" op))
          in
          let job () =
            match Json.member "job" j with
            | Some (Json.Str id) -> Ok id
            | Some _ -> Error (Malformed "field \"job\" must be a string")
            | None -> Error (Malformed (Printf.sprintf "op %S needs a \"job\" id" op))
          in
          match op with
          | "compile" ->
              let* r = request () in
              Ok (Op.Compile r)
          | "submit" ->
              let* r = request () in
              let* idem =
                match Json.member "idem" j with
                | None -> Ok None
                | Some (Json.Str k) when k <> "" -> Ok (Some k)
                | Some _ ->
                    Error (Malformed "field \"idem\" must be a non-empty string")
              in
              Ok (Op.Submit (r, idem))
          | "poll" ->
              let* id = job () in
              Ok (Op.Poll id)
          | "wait" ->
              let* id = job () in
              Ok (Op.Wait id)
          | "cancel" ->
              let* id = job () in
              Ok (Op.Cancel id)
          | "result" ->
              let* id = job () in
              Ok (Op.Result id)
          | "jobs" -> Ok Op.Jobs
          | "health" -> Ok Op.Health
          | "stats" -> Ok Op.Stats
          | "metrics" -> Ok Op.Metrics
          | "flush" -> Ok Op.Flush
          | op -> Error (Unknown_op op))
      | Some _ -> Error (Malformed "field \"op\" must be a string"))
  | _ -> Error (Malformed "request must be a JSON object")

let decode line =
  match Json.of_string line with
  | Error e -> Error (Malformed ("bad request: " ^ e))
  | Ok j -> decode_json j

let v_field = ("v", Json.Num (float_of_int version))

let encode op =
  let tag extra = Json.Obj (v_field :: ("op", Json.Str (Op.name op)) :: extra) in
  match op with
  | Op.Compile r -> tag [ ("request", Compile_request.to_json r) ]
  | Op.Submit (r, idem) ->
      tag
        (("request", Compile_request.to_json r)
        :: (match idem with None -> [] | Some k -> [ ("idem", Json.Str k) ]))
  | Op.Poll id | Op.Wait id | Op.Cancel id | Op.Result id -> tag [ ("job", Json.Str id) ]
  | Op.Jobs | Op.Health | Op.Stats | Op.Metrics | Op.Flush -> tag []

let with_version = function
  | Json.Obj fields when not (List.mem_assoc "v" fields) -> Json.Obj (v_field :: fields)
  | j -> j

let ok_reply fields = Json.Obj (v_field :: ("status", Json.Str "ok") :: fields)

let error_body kind fields =
  Json.Obj
    [
      v_field;
      ("status", Json.Str "error");
      ("error", Json.Obj (("kind", Json.Str kind) :: fields));
    ]

let error_reply e =
  let message =
    match e with
    | Malformed msg -> msg
    | Unknown_op op -> Printf.sprintf "unknown op %S" op
    | Bad_version v -> Printf.sprintf "unsupported protocol version %d (this server speaks 1-%d)" v version
  in
  error_body (wire_error_kind e) [ ("message", Json.Str message) ]

let job_error_reply ~kind ~job ~message =
  error_body kind [ ("message", Json.Str message); ("job", Json.Str job) ]
