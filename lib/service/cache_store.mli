(** Disk-backed content-addressed store for compile-cache entries.

    A store is a directory of {e append-only segment files} plus one
    JSON {e index} naming the live segments in order:

    {v
    cache-dir/
      index.json          {"schema": "qcr-cache-store/v1",
                           "next_seq": 3,
                           "segments": ["seg-000001.qcs", "seg-000002.qcs"]}
      seg-000001.qcs      binary records, appended by one flush each
      seg-000002.qcs
    v}

    Each record carries its own {!Qcr_util.Digest64} over the payload
    bytes (see {!encode_record}); {!open_dir} re-validates every record
    and silently skips — never serves, never raises on — anything that
    fails: a flipped byte, a truncated tail, a bad magic, a malformed
    index.  Skips are counted in {!corrupt_skipped} so the service can
    surface them as cache corruption.

    {b Crash safety.}  {!append} writes the new segment to a temp file
    and renames it into place, then rewrites the index the same way.  A
    crash before the segment rename loses only the new entries; a crash
    between the two renames leaves an orphan segment that the (old)
    index never references — the next flush with the same sequence
    number simply overwrites it.  On-disk state referenced by the index
    is never mutated in place.

    {b Content addressing.}  Keys are assumed content-addressed (the
    service uses {!Compile_request.cache_key}): the same key always maps
    to the same payload, so a key already persisted is never rewritten
    and duplicate records across segments are harmless (the latest
    wins on load, and all validate to the same bytes).

    {b Fault points.}  [cache.load] probes each record's payload during
    {!open_dir} (a [corrupt] fault flips a byte, which digest validation
    then catches; a [crash] aborts that segment's scan, counted as one
    skip).  [cache.flush] probes each record while {!append} encodes it
    and fires once between the segment rename and the index rename — the
    kill-between-flush-and-rename window that crash-safety tests arm. *)

type t

val open_dir : string -> (t, string) result
(** Open (creating the directory if needed) and load the store:
    validated entries are available via {!entries}.  [Error] only on
    hard I/O failures (the directory cannot be created or read);
    malformed or corrupt {e content} is skipped and counted instead. *)

val dir : t -> string

val entries : t -> (string * string) list
(** The validated [(key, payload)] pairs found at {!open_dir}, oldest
    first; for duplicate keys the latest record wins. *)

val mem : t -> string -> bool
(** Whether a validated record for this key is on disk (or was appended
    through this handle). *)

val persisted : t -> int
(** Number of distinct keys on disk via this handle. *)

val segment_count : t -> int

val corrupt_skipped : t -> int
(** Records (or whole malformed segments/indexes) rejected during
    {!open_dir} — each adds at least one. *)

val append : t -> (string * string) list -> (int, string) result
(** Persist the [(key, payload)] pairs not already {!mem}: one new
    segment file plus an index rewrite, both write-to-temp + rename.
    Returns the number of records written ([Ok 0] writes nothing).
    [Error] on I/O failure or an injected [cache.flush] crash; the
    in-memory handle and the on-disk index are unchanged on error, so a
    failed flush can simply be retried. *)

(** {1 Record encoding}

    Exposed for property tests: [decode_record s ~pos] inverts
    [encode_record] for every key up to 65535 bytes and any payload.

    {v
    record := "QCRS" keylen:u16be bodylen:u32be digest:16 key body
    v}

    [digest] is {!Qcr_util.Digest64.of_string} of [body]. *)

val encode_record : key:string -> string -> string
(** @raise Invalid_argument if the key exceeds 65535 bytes. *)

val decode_record : string -> pos:int -> (string * string * int, string) result
(** [Ok (key, body, next_pos)], or [Error reason] on truncation, bad
    magic, or digest mismatch. *)

(** {1 Filesystem discipline}

    The crash-safety primitives behind the store, exposed so other
    durable surfaces (the {!Qcr_net} job journal) keep the exact same
    on-disk discipline instead of reinventing it. *)

val mkdir_p : string -> unit

val read_file : string -> string
(** Whole file as bytes.  @raise Sys_error / [Unix.Unix_error] on I/O
    failure. *)

val write_atomic : string -> string -> unit
(** Write-to-temp + rename: the destination either keeps its old content
    or atomically becomes the new content, never a partial write. *)
