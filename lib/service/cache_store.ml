module Json = Qcr_obs.Json
module Digest64 = Qcr_util.Digest64
module Fault = Qcr_fault.Fault

(* Injection points on the disk path: [cache.load] probes every record
   payload read back from a segment (corruption is then caught by the
   digest check), [cache.flush] probes every record being written and
   fires once between the segment rename and the index rename. *)
let load_point = Fault.point "cache.load"

let flush_point = Fault.point "cache.flush"

let index_schema = "qcr-cache-store/v1"

let index_file = "index.json"

let magic = "QCRS"

(* ---------- record encoding (pure, qcheck round-tripped) ---------- *)

let u16be b v =
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let u32be b v =
  for shift = 3 downto 0 do
    Buffer.add_char b (Char.chr ((v lsr (8 * shift)) land 0xff))
  done

let encode_record ~key body =
  if String.length key > 0xffff then invalid_arg "Cache_store.encode_record: key too long";
  let b = Buffer.create (String.length key + String.length body + 32) in
  Buffer.add_string b magic;
  u16be b (String.length key);
  u32be b (String.length body);
  Buffer.add_string b (Digest64.of_string body);
  Buffer.add_string b key;
  Buffer.add_string b body;
  Buffer.contents b

let header_len = 4 + 2 + 4 + 16

let read_u16be s pos = (Char.code s.[pos] lsl 8) lor Char.code s.[pos + 1]

let read_u32be s pos =
  let v = ref 0 in
  for i = 0 to 3 do
    v := (!v lsl 8) lor Char.code s.[pos + i]
  done;
  !v

let decode_record s ~pos =
  let len = String.length s in
  if pos + header_len > len then Error "truncated record header"
  else if String.sub s pos 4 <> magic then Error "bad record magic"
  else begin
    let key_len = read_u16be s (pos + 4) in
    let body_len = read_u32be s (pos + 6) in
    let digest = String.sub s (pos + 10) 16 in
    let data = pos + header_len in
    if data + key_len + body_len > len then Error "truncated record payload"
    else begin
      let key = String.sub s data key_len in
      let body = String.sub s (data + key_len) body_len in
      if Digest64.of_string body <> digest then Error "record digest mismatch"
      else Ok (key, body, data + key_len + body_len)
    end
  end

(* ---------- directory layout ---------- *)

type t = {
  dir : string;
  mutable segments : string list; (* index order, oldest first *)
  mutable next_seq : int;
  persisted_keys : (string, unit) Hashtbl.t;
  mutable loaded : (string * string) list; (* oldest first, duplicates resolved *)
  mutable corrupt_skipped : int;
}

let dir t = t.dir

let entries t = t.loaded

let mem t key = Hashtbl.mem t.persisted_keys key

let persisted t = Hashtbl.length t.persisted_keys

let segment_count t = List.length t.segments

let corrupt_skipped t = t.corrupt_skipped

let segment_name seq = Printf.sprintf "seg-%06d.qcs" seq

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Write-to-temp + rename: the destination either keeps its old content
   or atomically becomes the new content, never a partial write. *)
let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

let index_to_json t =
  Json.Obj
    [
      ("schema", Json.Str index_schema);
      ("next_seq", Json.Num (float_of_int t.next_seq));
      ("segments", Json.Arr (List.map (fun s -> Json.Str s) t.segments));
    ]

(* A malformed index is treated as an empty store (counted as one skip),
   not an error: the worst case is a cold start. *)
let parse_index j =
  match (Json.member "schema" j, Json.member "next_seq" j, Json.member "segments" j) with
  | Some (Json.Str s), Some (Json.Num seq), Some (Json.Arr segs)
    when s = index_schema && Float.is_integer seq ->
      let rec names acc = function
        | [] -> Some (List.rev acc)
        | Json.Str n :: rest when Filename.basename n = n -> names (n :: acc) rest
        | _ -> None
      in
      Option.map (fun segs -> (int_of_float seq, segs)) (names [] segs)
  | _ -> None

(* Scan one segment: records are validated (digest over the payload,
   through the [cache.load] fault point) and accumulated newest-last.
   The first bad record abandons the rest of the segment — record
   boundaries cannot be trusted past a corruption — and any exception
   (I/O, injected crash) counts the same way. *)
let scan_segment t table order path =
  match
    let s = read_file path in
    let len = String.length s in
    let rec go pos =
      if pos >= len then ()
      else
        match decode_record s ~pos with
        | Error _ -> t.corrupt_skipped <- t.corrupt_skipped + 1
        | Ok (key, body, next) ->
            let body = Fault.corrupt load_point body in
            (* decode already checked the digest, so only an injected
               corruption can fail this re-check — and since decode
               validated the record boundary, the scan can skip just
               this record and continue *)
            if Digest64.of_string body <> String.sub s (pos + 10) 16 then begin
              t.corrupt_skipped <- t.corrupt_skipped + 1;
              go next
            end
            else begin
              if not (Hashtbl.mem table key) then order := key :: !order;
              Hashtbl.replace table key body;
              go next
            end
    in
    go 0
  with
  | () -> ()
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception _ -> t.corrupt_skipped <- t.corrupt_skipped + 1

let open_dir path =
  match
    mkdir_p path;
    if not (Sys.is_directory path) then Error (path ^ ": not a directory")
    else begin
      let t =
        {
          dir = path;
          segments = [];
          next_seq = 1;
          persisted_keys = Hashtbl.create 64;
          loaded = [];
          corrupt_skipped = 0;
        }
      in
      let index_path = Filename.concat path index_file in
      if Sys.file_exists index_path then begin
        (match Json.of_file index_path with
        | Ok j -> (
            match parse_index j with
            | Some (next_seq, segments) ->
                t.next_seq <- next_seq;
                t.segments <- segments
            | None -> t.corrupt_skipped <- t.corrupt_skipped + 1)
        | Error _ -> t.corrupt_skipped <- t.corrupt_skipped + 1);
        let table = Hashtbl.create 64 in
        let order = ref [] in
        List.iter
          (fun seg ->
            let seg_path = Filename.concat path seg in
            if Sys.file_exists seg_path then scan_segment t table order seg_path
            else t.corrupt_skipped <- t.corrupt_skipped + 1)
          t.segments;
        t.loaded <-
          List.rev_map (fun key -> (key, Hashtbl.find table key)) !order;
        List.iter (fun (key, _) -> Hashtbl.replace t.persisted_keys key ()) t.loaded
      end;
      Ok t
    end
  with
  | r -> r
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception e -> Error (path ^ ": " ^ Printexc.to_string e)

let append t records =
  let fresh = List.filter (fun (key, _) -> not (mem t key)) records in
  if fresh = [] then Ok 0
  else
    match
      let encoded =
        List.map (fun (key, body) -> Fault.corrupt flush_point (encode_record ~key body)) fresh
      in
      let seg = segment_name t.next_seq in
      write_atomic (Filename.concat t.dir seg) (String.concat "" encoded);
      (* the kill-between-flush-and-rename window: the segment is in
         place but the index does not reference it yet *)
      Fault.fire flush_point;
      let next = { t with segments = t.segments @ [ seg ]; next_seq = t.next_seq + 1 } in
      write_atomic (Filename.concat t.dir index_file) (Json.to_string (index_to_json next) ^ "\n");
      t.segments <- next.segments;
      t.next_seq <- next.next_seq;
      List.iter (fun (key, _) -> Hashtbl.replace t.persisted_keys key ()) fresh;
      List.length fresh
    with
    | n -> Ok n
    | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
    | exception e -> Error (Printexc.to_string e)
