(** The service's answer to one {!Compile_request.t}.

    A reply never carries an exception: failures arrive as the typed
    {!Qcr_core.Pipeline.error} inside {!outcome}.  Successful replies
    carry circuit metrics plus a {!metrics.circuit_digest} — a content
    digest of the gate list — so batch runs can assert full determinism
    across pool sizes without shipping circuits over the wire.

    The wire format (one reply):
    {v
    { "id": "job-1", "key": "91c4...", "requested_mode": "portfolio",
      "status": "ok" | "degraded" | "error",
      "mode": "ours",                      // tier that compiled (ok/degraded)
      "depth": 14, "cx": 52, "swaps": 9,
      "log_fidelity": -0.31, "strategy": "hybrid@4",
      "circuit_digest": "5f21...",
      "error": { "kind": "timeout", "deadline_s": 0.5 },   // status=error
      "cached": true, "compile_ms": 12.25,
      "trace": [ { "phase": "cache", "detail": "miss",     // request had
                   "outcome": "ok", "retries": 0,          // "trace": true
                   "ms": 0.01 },
                 { "phase": "compile", "detail": "ours",
                   "outcome": "ok", "retries": 1, "ms": 12.2 } ] }
    v} *)

type metrics = {
  depth : int;
  cx : int;
  swap_count : int;
  log_fidelity : float;
  strategy : string;  (** ["greedy"], ["ata"] or ["hybrid@<cycle>"] *)
  circuit_digest : string;  (** {!Qcr_util.Digest64} over the gate list *)
}

type outcome =
  | Compiled of { mode : Compile_request.mode; metrics : metrics }
      (** [mode] is the tier that actually produced the circuit; it is
          below the requested mode when the deadline forced degradation *)
  | Failed of Qcr_core.Pipeline.error

type phase = {
  p_phase : string;  (** ["validate"], ["cache"] or ["compile"] *)
  p_detail : string;  (** tier name, or ["hit"]/["miss"] for the cache *)
  p_outcome : string;
      (** ["ok"], ["miss"], ["hit"], ["discarded"] (finished past the
          deadline), ["breaker_open"], ["not_admitted"] (cost model says
          it cannot fit the budget), ["timeout"], ["invalid_request"] or
          ["internal"] *)
  p_retries : int;  (** retries consumed within this phase *)
  p_ms : float;  (** volatile; see {!strip_volatile} *)
}

type t = {
  id : string;
  key : string;  (** the request's cache key *)
  requested_mode : Compile_request.mode;
  outcome : outcome;
  cached : bool;  (** served from the compile cache *)
  compile_ms : float;  (** service-side latency (volatile; see
                           {!strip_volatile}) *)
  trace : phase list option;
      (** per-request phase breakdown, present when the request opted in
          with [Compile_request.trace]; never cached or persisted *)
}

val degraded : t -> bool
(** Compiled, but at a cheaper tier than requested. *)

val status_name : t -> string
(** ["ok"], ["degraded"] or ["error"]. *)

val metrics_of_result : Qcr_core.Pipeline.result -> metrics

val strategy_name : Qcr_core.Pipeline.strategy -> string

val to_json : t -> Qcr_obs.Json.t

val of_json : Qcr_obs.Json.t -> (t, string) result
(** Inverse of {!to_json}: [of_json (to_json r) = Ok r] whenever the
    reply's floats are finite. *)

val strip_volatile : Qcr_obs.Json.t -> Qcr_obs.Json.t
(** Recursively drop timing fields (["compile_ms"], trace-phase ["ms"])
    so replies — including their phase breakdowns — can be compared for
    semantic equality across runs, machines and pool sizes. *)
