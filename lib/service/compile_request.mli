(** A compilation job, as data.

    A request names everything that determines the compiled circuit — a
    device from a parametric family, the problem graph, the interaction,
    the compilation mode and config knobs, plus an optional seeded noise
    model — in plain values that round-trip through JSON.  Two requests
    with the same content produce the same {!cache_key} (the id and
    deadline are excluded), which is what lets the service serve repeats
    from its content-addressed compile cache.

    The wire format (one request):
    {v
    { "id": "job-1",
      "arch": { "kind": "heavyhex", "n": 27 },
      "program": { "qubits": 10,
                   "edges": [[0,1],[1,2],[2,3]],
                   "interaction": { "kind": "qaoa_maxcut",
                                    "gamma": 0.4, "beta": 0.35 } },
      "mode": "ours",
      "alpha": 0.5,            // optional, selector depth weight
      "noise_seed": 7,         // optional, omit for a noiseless device
      "deadline_s": 1.5,       // optional compute budget, seconds
      "trace": true }          // optional, phase breakdown on the reply
    v} *)

type mode =
  | Ours
  | Greedy
  | Ata
  | Portfolio

type t = {
  id : string;
  arch_kind : Qcr_arch.Arch.kind;
  arch_size : int;  (** minimum qubit count; the device is the smallest
                        family member with at least this many qubits *)
  qubits : int;  (** problem-graph vertices *)
  edges : (int * int) list;
  interaction : Qcr_circuit.Program.interaction;
  mode : mode;
  alpha : float option;  (** selector depth weight; [None] = default *)
  noise_seed : int option;  (** [Noise.sampled ~seed]; [None] = noiseless *)
  deadline_s : float option;  (** compute budget (excludes queueing) *)
  trace : bool;
      (** request a per-request phase breakdown on the reply
          ([Compile_reply.trace]); excluded from the cache key *)
}

val make :
  ?id:string ->
  ?arch_size:int ->
  ?interaction:Qcr_circuit.Program.interaction ->
  ?mode:mode ->
  ?alpha:float ->
  ?noise_seed:int ->
  ?deadline_s:float ->
  ?trace:bool ->
  arch_kind:Qcr_arch.Arch.kind ->
  qubits:int ->
  edges:(int * int) list ->
  unit ->
  t
(** Defaults: empty id, [arch_size = qubits], QAOA-MaxCut interaction
    with the gamma 0.4 / beta 0.35 angles used across the benchmarks,
    mode [Ours], no alpha override, noiseless, no deadline, no trace. *)

val validate : t -> (unit, string) result
(** Structural checks only (vertex bounds, no self-loops, positive sizes,
    finite floats, supported arch family) — cheap enough to run on every
    submission. *)

val canonical_edges : t -> (int * int) list
(** Edges normalized to [u < v], sorted lexicographically, deduplicated —
    the canonical program content the cache key digests. *)

val cache_key : t -> string
(** Content-addressed key: a {!Qcr_util.Digest64} over the arch family
    and size, the canonical program (qubit count, canonical edges,
    interaction with exact float bits), the mode, the config fingerprint
    (alpha) and the noise fingerprint (seed or noiseless).  [id],
    [deadline_s] and [trace] do not contribute. *)

(** {1 Realization} *)

val arch_of : t -> Qcr_arch.Arch.t

val program_of : t -> Qcr_circuit.Program.t

val noise_of : t -> Qcr_arch.Arch.t -> Qcr_arch.Noise.t option

val config_of : t -> Qcr_core.Config.t

val pipeline_mode : astar_budget:int -> t -> Qcr_core.Pipeline.Request.mode

(** {1 Names and serialization} *)

val mode_name : mode -> string

val mode_of_name : string -> (mode, string) result

val kind_name : Qcr_arch.Arch.kind -> string

val kind_of_name : string -> (Qcr_arch.Arch.kind, string) result
(** Accepts every parametric family; rejects ["custom"] (no wire form). *)

val to_json : t -> Qcr_obs.Json.t

val of_json : Qcr_obs.Json.t -> (t, string) result
(** Inverse of {!to_json}: [of_json (to_json r) = Ok r] for every
    validating request. *)
