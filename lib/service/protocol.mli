(** The versioned, typed wire protocol shared by every front-end.

    One JSONL line is one operation; one line comes back per operation.
    The protocol is version 2: requests may carry a ["v"] field (absent
    means version 1, which is still accepted in full), and every reply is
    stamped with [("v", 2)].

    Request grammar (v2 canonical form):

    {v
      {"v":2, "op":"compile", "request":{...Compile_request...}}
      {"v":2, "op":"submit",  "request":{...}, "idem":"KEY"?}
      {"v":2, "op":"poll",    "job":"j-1"}
      {"v":2, "op":"wait",    "job":"j-1"}
      {"v":2, "op":"cancel",  "job":"j-1"}
      {"v":2, "op":"result",  "job":"j-1"}
      {"v":2, "op":"jobs" | "health" | "stats" | "metrics" | "flush"}
    v}

    ["idem"] is an optional client-chosen idempotency key: resubmitting
    with the same key dedupes to the original job instead of admitting a
    duplicate (the reconnect-and-resubmit retry contract).  ["jobs"]
    lists every live job — the durability introspection op.  Both are
    additive, so the version stays 2.

    v1 compatibility: a bare request object (no ["op"]) decodes as
    [Compile], and [{"op":"health"}] and friends without ["v"] are
    accepted — exactly the lines the pre-v2 stdio loop understood.

    Decoding never raises: a bad line yields a typed {!wire_error},
    which {!error_reply} renders as a [{"status":"error"}] JSON line so
    transports can answer without killing the connection. *)

module Op : sig
  type t =
    | Compile of Compile_request.t  (** synchronous: reply when compiled *)
    | Submit of Compile_request.t * string option
        (** async: immediate [{"job": id}] reply; the optional
            idempotency key dedupes resubmits *)
    | Poll of string  (** job status without blocking *)
    | Wait of string  (** reply deferred until the job is terminal *)
    | Cancel of string  (** cancel a queued job (running/done: no-op) *)
    | Result of string  (** fetch and evict a terminal job's reply *)
    | Jobs  (** list live jobs (queued, running, retained terminal) *)
    | Health
    | Stats
    | Metrics
    | Flush

  val name : t -> string
  (** The wire ["op"] string. *)

  val equal : t -> t -> bool
end

val version : int
(** Current protocol version: [2]. *)

type wire_error =
  | Malformed of string  (** not JSON, or JSON of the wrong shape *)
  | Unknown_op of string
  | Bad_version of int  (** a ["v"] other than 1 or 2 *)

val wire_error_kind : wire_error -> string
(** ["malformed"], ["unknown_op"] or ["bad_version"]. *)

val decode : string -> (Op.t, wire_error) result
(** Decode one wire line (v1 or v2). *)

val decode_json : Qcr_obs.Json.t -> (Op.t, wire_error) result

val encode : Op.t -> Qcr_obs.Json.t
(** Encode in v2 canonical form; [decode (Json.to_string (encode op))]
    returns [Ok op]. *)

val with_version : Qcr_obs.Json.t -> Qcr_obs.Json.t
(** Stamp [("v", 2)] onto a reply object (idempotent; non-objects are
    returned unchanged).  Every reply emitted by a front-end goes
    through this. *)

val ok_reply : (string * Qcr_obs.Json.t) list -> Qcr_obs.Json.t
(** [{"v":2, "status":"ok", ...fields}]. *)

val error_reply : wire_error -> Qcr_obs.Json.t
(** [{"v":2, "status":"error", "error":{"kind":..., "message":...}}]. *)

val job_error_reply : kind:string -> job:string -> message:string -> Qcr_obs.Json.t
(** Typed job-level error reply, e.g. [kind = "unknown_job"] or
    ["not_finished"], same envelope as {!error_reply}. *)
