module Arch = Qcr_arch.Arch
module Noise = Qcr_arch.Noise
module Graph = Qcr_graph.Graph
module Program = Qcr_circuit.Program
module Config = Qcr_core.Config
module Pipeline = Qcr_core.Pipeline
module Json = Qcr_obs.Json
module Digest64 = Qcr_util.Digest64

type mode =
  | Ours
  | Greedy
  | Ata
  | Portfolio

type t = {
  id : string;
  arch_kind : Arch.kind;
  arch_size : int;
  qubits : int;
  edges : (int * int) list;
  interaction : Program.interaction;
  mode : mode;
  alpha : float option;
  noise_seed : int option;
  deadline_s : float option;
  trace : bool; (* opt-in per-request phase breakdown on the reply *)
}

let default_interaction = Program.Qaoa_maxcut { gamma = 0.4; beta = 0.35 }

let make ?(id = "") ?arch_size ?(interaction = default_interaction) ?(mode = Ours) ?alpha
    ?noise_seed ?deadline_s ?(trace = false) ~arch_kind ~qubits ~edges () =
  {
    id;
    arch_kind;
    arch_size = (match arch_size with Some n -> n | None -> qubits);
    qubits;
    edges;
    interaction;
    mode;
    alpha;
    noise_seed;
    deadline_s;
    trace;
  }

(* ---------- names ---------- *)

let mode_name = function
  | Ours -> "ours"
  | Greedy -> "greedy"
  | Ata -> "ata"
  | Portfolio -> "portfolio"

let mode_of_name = function
  | "ours" -> Ok Ours
  | "greedy" -> Ok Greedy
  | "ata" -> Ok Ata
  | "portfolio" -> Ok Portfolio
  | s -> Error (Printf.sprintf "unknown mode %S" s)

let kind_name = function
  | Arch.Line -> "line"
  | Arch.Grid -> "grid"
  | Arch.Grid3d -> "grid3d"
  | Arch.Sycamore -> "sycamore"
  | Arch.Heavy_hex -> "heavyhex"
  | Arch.Hexagon -> "hexagon"
  | Arch.Custom -> "custom"

let kind_of_name = function
  | "line" -> Ok Arch.Line
  | "grid" -> Ok Arch.Grid
  | "grid3d" -> Ok Arch.Grid3d
  | "sycamore" -> Ok Arch.Sycamore
  | "heavyhex" | "heavy-hex" -> Ok Arch.Heavy_hex
  | "hexagon" -> Ok Arch.Hexagon
  | s -> Error (Printf.sprintf "unknown architecture %S" s)

(* ---------- validation and canonicalization ---------- *)

let validate t =
  let ( let* ) r f = Result.bind r f in
  let check cond msg = if cond then Ok () else Error msg in
  let finite name = function
    | Some f when not (Float.is_finite f) -> Error (name ^ " must be finite")
    | _ -> Ok ()
  in
  let* () = check (t.arch_kind <> Arch.Custom) "custom architectures have no wire form" in
  let* () = check (t.qubits >= 1) "qubits must be positive" in
  let* () = check (t.arch_size >= 1) "arch size must be positive" in
  let* () =
    List.fold_left
      (fun acc (u, v) ->
        let* () = acc in
        let* () = check (u <> v) (Printf.sprintf "self-loop on vertex %d" u) in
        check
          (u >= 0 && v >= 0 && u < t.qubits && v < t.qubits)
          (Printf.sprintf "edge (%d, %d) out of range for %d qubits" u v t.qubits))
      (Ok ()) t.edges
  in
  let* () =
    match t.interaction with
    | Program.Qaoa_maxcut { gamma; beta } | Program.Qaoa_level { gamma; beta } ->
        let* () = finite "gamma" (Some gamma) in
        finite "beta" (Some beta)
    | Program.Two_local { theta } -> finite "theta" (Some theta)
    | Program.Bare_cz -> Ok ()
  in
  let* () = finite "alpha" t.alpha in
  let* () = finite "deadline_s" t.deadline_s in
  match t.deadline_s with
  | Some d when d <= 0.0 -> Error "deadline_s must be positive"
  | _ -> Ok ()

let canonical_edges t =
  t.edges
  |> List.map (fun (u, v) -> if u <= v then (u, v) else (v, u))
  |> List.sort_uniq compare

(* ---------- cache key ---------- *)

let interaction_digest d = function
  | Program.Qaoa_maxcut { gamma; beta } ->
      Digest64.add_float (Digest64.add_float (Digest64.add_string d "qaoa_maxcut") gamma) beta
  | Program.Qaoa_level { gamma; beta } ->
      Digest64.add_float (Digest64.add_float (Digest64.add_string d "qaoa_level") gamma) beta
  | Program.Two_local { theta } -> Digest64.add_float (Digest64.add_string d "two_local") theta
  | Program.Bare_cz -> Digest64.add_string d "bare_cz"

let add_opt add d = function
  | None -> Digest64.add_bool d false
  | Some x -> add (Digest64.add_bool d true) x

(* Content only: [id], [deadline_s] and [trace] are excluded — the same
   content compiles identically regardless of who asked, how urgently,
   or whether they want a phase breakdown. *)
let cache_key t =
  let d = Digest64.add_string Digest64.empty "qcr-service/v1" in
  let d = Digest64.add_string d (kind_name t.arch_kind) in
  let d = Digest64.add_int d (max t.arch_size t.qubits) in
  let d = Digest64.add_int d t.qubits in
  let d = Digest64.add_pairs d (canonical_edges t) in
  let d = interaction_digest d t.interaction in
  let d = Digest64.add_string d (mode_name t.mode) in
  let d = add_opt Digest64.add_float d t.alpha in
  let d = add_opt Digest64.add_int d t.noise_seed in
  Digest64.to_hex d

(* ---------- realization ---------- *)

let arch_of t = Arch.smallest_for t.arch_kind (max t.arch_size t.qubits)

let program_of t =
  let graph = Graph.create t.qubits in
  List.iter (fun (u, v) -> Graph.add_edge graph u v) (canonical_edges t);
  Program.make graph t.interaction

let noise_of t arch = Option.map (fun seed -> Noise.sampled ~seed arch) t.noise_seed

let config_of t =
  match t.alpha with None -> Config.default | Some alpha -> { Config.default with alpha }

let pipeline_mode ~astar_budget t =
  match t.mode with
  | Ours -> Pipeline.Request.Ours
  | Greedy -> Pipeline.Request.Greedy
  | Ata -> Pipeline.Request.Ata
  | Portfolio -> Pipeline.Request.Portfolio { astar_budget }

(* ---------- JSON ---------- *)

let interaction_to_json = function
  | Program.Qaoa_maxcut { gamma; beta } ->
      Json.Obj [ ("kind", Json.Str "qaoa_maxcut"); ("gamma", Json.Num gamma); ("beta", Json.Num beta) ]
  | Program.Qaoa_level { gamma; beta } ->
      Json.Obj [ ("kind", Json.Str "qaoa_level"); ("gamma", Json.Num gamma); ("beta", Json.Num beta) ]
  | Program.Two_local { theta } ->
      Json.Obj [ ("kind", Json.Str "two_local"); ("theta", Json.Num theta) ]
  | Program.Bare_cz -> Json.Obj [ ("kind", Json.Str "bare_cz") ]

let to_json t =
  let opt name f = function Some x -> [ (name, f x) ] | None -> [] in
  Json.Obj
    ([
       ("id", Json.Str t.id);
       ( "arch",
         Json.Obj
           [
             ("kind", Json.Str (kind_name t.arch_kind));
             ("n", Json.Num (float_of_int t.arch_size));
           ] );
       ( "program",
         Json.Obj
           [
             ("qubits", Json.Num (float_of_int t.qubits));
             ( "edges",
               Json.Arr
                 (List.map
                    (fun (u, v) ->
                      Json.Arr [ Json.Num (float_of_int u); Json.Num (float_of_int v) ])
                    t.edges) );
             ("interaction", interaction_to_json t.interaction);
           ] );
       ("mode", Json.Str (mode_name t.mode));
     ]
    @ opt "alpha" (fun a -> Json.Num a) t.alpha
    @ opt "noise_seed" (fun s -> Json.Num (float_of_int s)) t.noise_seed
    @ opt "deadline_s" (fun d -> Json.Num d) t.deadline_s
    @ if t.trace then [ ("trace", Json.Bool true) ] else [])

(* Small decoding helpers over the Json AST; every failure carries the
   field path so batch files are debuggable. *)

let ( let* ) r f = Result.bind r f

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_field name j = Json.member name j

let as_str name = function
  | Json.Str s -> Ok s
  | _ -> Error (Printf.sprintf "field %S must be a string" name)

let as_num name = function
  | Json.Num f -> Ok f
  | _ -> Error (Printf.sprintf "field %S must be a number" name)

let as_int name j =
  let* f = as_num name j in
  if Float.is_integer f then Ok (int_of_float f)
  else Error (Printf.sprintf "field %S must be an integer" name)

let opt_num name j =
  match opt_field name j with
  | None | Some Json.Null -> Ok None
  | Some v ->
      let* f = as_num name v in
      Ok (Some f)

let opt_int name j =
  match opt_field name j with
  | None | Some Json.Null -> Ok None
  | Some v ->
      let* i = as_int name v in
      Ok (Some i)

let interaction_of_json j =
  let* kind = Result.bind (field "kind" j) (as_str "interaction.kind") in
  match kind with
  | "qaoa_maxcut" | "qaoa_level" ->
      let* gamma = Result.bind (field "gamma" j) (as_num "gamma") in
      let* beta = Result.bind (field "beta" j) (as_num "beta") in
      Ok
        (if kind = "qaoa_maxcut" then Program.Qaoa_maxcut { gamma; beta }
         else Program.Qaoa_level { gamma; beta })
  | "two_local" ->
      let* theta = Result.bind (field "theta" j) (as_num "theta") in
      Ok (Program.Two_local { theta })
  | "bare_cz" -> Ok Program.Bare_cz
  | s -> Error (Printf.sprintf "unknown interaction kind %S" s)

let edges_of_json = function
  | Json.Arr items ->
      List.fold_left
        (fun acc item ->
          let* edges = acc in
          match item with
          | Json.Arr [ u; v ] ->
              let* u = as_int "edge endpoint" u in
              let* v = as_int "edge endpoint" v in
              Ok ((u, v) :: edges)
          | _ -> Error "each edge must be a two-element array")
        (Ok []) items
      |> Result.map List.rev
  | _ -> Error "field \"edges\" must be an array"

let of_json j =
  let* id =
    match opt_field "id" j with None -> Ok "" | Some v -> as_str "id" v
  in
  let* arch = field "arch" j in
  let* kind_str = Result.bind (field "kind" arch) (as_str "arch.kind") in
  let* arch_kind = kind_of_name kind_str in
  let* arch_size = Result.bind (field "n" arch) (as_int "arch.n") in
  let* program = field "program" j in
  let* qubits = Result.bind (field "qubits" program) (as_int "program.qubits") in
  let* edges = Result.bind (field "edges" program) edges_of_json in
  let* interaction = Result.bind (field "interaction" program) interaction_of_json in
  let* mode =
    match opt_field "mode" j with
    | None -> Ok Ours
    | Some v -> Result.bind (as_str "mode" v) mode_of_name
  in
  let* alpha = opt_num "alpha" j in
  let* noise_seed = opt_int "noise_seed" j in
  let* deadline_s = opt_num "deadline_s" j in
  let* trace =
    match opt_field "trace" j with
    | None | Some Json.Null -> Ok false
    | Some (Json.Bool b) -> Ok b
    | Some _ -> Error "field \"trace\" must be a boolean"
  in
  Ok
    {
      id;
      arch_kind;
      arch_size;
      qubits;
      edges;
      interaction;
      mode;
      alpha;
      noise_seed;
      deadline_s;
      trace;
    }
