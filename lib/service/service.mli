(** Batched compilation service: the serving substrate over
    {!Qcr_core.Pipeline.run}.

    A service owns a content-addressed LRU compile cache and a
    deadline-degradation policy.  Submitting a {!Compile_request.t}
    yields a {!Compile_reply.t} — always, by construction: validation
    failures, deadline expiry and internal exceptions all come back as
    typed error replies, never as exceptions across this boundary.

    {b Caching.}  Requests are canonicalized into a content-addressed
    {!Compile_request.cache_key}; a repeat is served from the LRU cache
    (hit/miss counts surface both in {!stats} and through the
    [service.cache.hit]/[service.cache.miss] [Qcr_obs] counters).  Only
    full-quality replies — compiled at the requested tier, not degraded —
    are cached, so a cache hit is always bit-identical to what a cold
    deadline-free compile would have produced.

    {b Batching.}  {!run_batch} fans the distinct cold keys of a batch
    over the default {!Qcr_par.Pool} and assembles replies sequentially
    in request order, so replies, cache flags and hit/miss counts are
    identical for every pool size.  Submit from one domain at a time (the
    same single-driver contract as the pool).

    {b Deadlines.}  [deadline_s] bounds a request's compute budget.  The
    service walks the degradation ladder portfolio → ours → greedy (ata
    requests have no cheaper tier), admitting each tier only when a
    per-tier cost model — seconds per program edge, learned online from
    completed compiles — predicts it fits the remaining budget; a tier
    that still overruns its deadline is discarded and the walk continues.
    When no tier fits, the reply is a typed [Timeout].  Replies produced
    under deadline pressure depend on observed timings, so deadlines
    trade reply determinism for bounded latency; deadline-free requests
    stay fully deterministic.  All timing flows through the service's
    {!Qcr_obs.Clock.t}, so the whole ladder is drivable by a fake clock
    in tests. *)

type t

type stats = {
  requests : int;
  cache_hits : int;
  cache_misses : int;
  served_ok : int;  (** compiled cold at the requested tier (cache hits
                        count under [cache_hits] only) *)
  degraded : int;  (** compiled at a cheaper tier under deadline pressure *)
  timeouts : int;
  errors : int;  (** invalid requests and captured internal errors *)
}

val zero_stats : stats

val stats_sub : stats -> stats -> stats
(** Fieldwise [after - before]: the delta of one pass. *)

val stats_to_json : stats -> Qcr_obs.Json.t

val create :
  ?cache_capacity:int ->
  ?clock:Qcr_obs.Clock.t ->
  ?astar_budget:int ->
  ?on_attempt:(Compile_request.mode -> unit) ->
  unit ->
  t
(** Defaults: 512 cached replies, {!Qcr_obs.Clock.wall}, 30000 A* node
    expansions for the portfolio arm.  [on_attempt] runs immediately
    before each tier attempt (after admission) — an instrumentation seam
    that deadline tests use to advance a fake clock by a simulated
    per-tier cost. *)

val submit : t -> Compile_request.t -> Compile_reply.t

val run_batch : t -> Compile_request.t list -> Compile_reply.t list
(** Replies in request order; distinct cold keys compile in parallel. *)

val stats : t -> stats
(** Cumulative over the service's lifetime. *)

(** {1 Wire format}

    A batch file is [{"schema": "qcr-service-batch/v1", "requests":
    [...]}] (a bare request array is also accepted); a reply file is
    [{"schema": "qcr-service-replies/v1", "domains": N, "replies": [...],
    "stats": {...}, "passes": [...]}]. *)

val batch_schema : string

val replies_schema : string

val requests_of_json : Qcr_obs.Json.t -> (Compile_request.t list, string) result

val requests_to_json : Compile_request.t list -> Qcr_obs.Json.t

val replies_to_json :
  ?passes:stats list ->
  domains:int ->
  stats:stats ->
  Compile_reply.t list ->
  Qcr_obs.Json.t
(** [passes] records per-pass stat deltas when the same batch ran several
    times through one service (the CLI's [--repeat]). *)
