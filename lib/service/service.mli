(** Batched compilation service: the serving substrate over
    {!Qcr_core.Pipeline.run}.

    A service owns a content-addressed LRU compile cache and a
    deadline-degradation policy.  Submitting a {!Compile_request.t}
    yields a {!Compile_reply.t} — always, by construction: validation
    failures, deadline expiry and internal exceptions all come back as
    typed error replies, never as exceptions across this boundary.  A
    catch-all at the boundary converts anything that slips past the
    typed paths (including injected faults) into an [Internal] reply
    carrying the exception and its backtrace; only [Out_of_memory] and
    [Stack_overflow] re-raise.

    {b Caching.}  Requests are canonicalized into a content-addressed
    {!Compile_request.cache_key}; a repeat is served from a
    {!Qcr_util.Sharded_cache} — [cache_shards] independent LRU shards,
    each behind its own mutex, selected by digest bits — so cache
    traffic contends per shard, never with the cost-model/breaker lock
    (hit/miss counts merge per-shard counters exactly and surface both
    in {!stats} and through the [service.cache.hit]/[service.cache.miss]
    [Qcr_obs] counters).  Only full-quality replies — compiled at the
    requested tier, not degraded — are cached, so a cache hit is always
    bit-identical to what a cold deadline-free compile would have
    produced.  Entries carry a digest of their canonical bytes,
    validated on every hit: a corrupted entry (e.g. via the
    [cache.get]/[cache.put] {!Qcr_fault.Fault} points) is evicted and
    recompiled, never served.

    {b Persistence.}  Passing [store] (a {!Cache_store.t} opened on a
    cache directory) warm-starts the cache from disk at {!create} —
    every persisted record is digest-validated and must parse back into
    a full-quality reply whose cache key matches, or it is skipped and
    counted under [cache_corrupt] — and {!flush} appends the entries
    compiled since the last flush as a new crash-safe segment.  A
    restarted service with the same directory answers warm traffic
    immediately, bit-identically to the run that filled the cache.

    {b Batching.}  {!run_batch} fans the distinct cold keys of a batch
    over the default {!Qcr_par.Pool} and assembles replies sequentially
    in request order, so replies, cache flags and hit/miss counts are
    identical for every pool size.  Submit from one domain at a time (the
    same single-driver contract as the pool).

    {b Deadlines.}  [deadline_s] bounds a request's compute budget.  The
    service walks the degradation ladder portfolio → ours → greedy (ata
    requests have no cheaper tier), admitting each tier only when a
    per-tier cost model — seconds per program edge, learned online from
    completed compiles — predicts it fits the remaining budget; a tier
    that still overruns its deadline is discarded and the walk continues.
    When no tier fits, the reply is a typed [Timeout].  Replies produced
    under deadline pressure depend on observed timings, so deadlines
    trade reply determinism for bounded latency; deadline-free requests
    stay fully deterministic.  All timing flows through the service's
    {!Qcr_obs.Clock.t}, so the whole ladder is drivable by a fake clock
    in tests.

    {b Resilience.}  Each compile attempt runs behind the [service.tier]
    fault point.  Transient ([Internal]) failures retry up to [retries]
    times with seeded exponential backoff and full jitter before the
    ladder falls through to the next tier, so the backoff schedule is
    reproducible.  Each tier has a circuit breaker: [breaker_threshold]
    consecutive failures open it for [breaker_cooldown_s] seconds of the
    service clock, during which the tier is skipped; after cooling it
    half-opens and a single probe attempt recloses it (success) or
    reopens it (failure).  Breaker states are exported via
    {!breaker_states} and the [breakers] field of {!stats_to_json}. *)

type t

type stats = {
  requests : int;
  cache_hits : int;
  cache_misses : int;
  cache_corrupt : int;  (** digest-validation failures: entries evicted
                            instead of served *)
  served_ok : int;  (** compiled cold at the requested tier (cache hits
                        count under [cache_hits] only) *)
  degraded : int;  (** compiled at a cheaper tier under deadline pressure *)
  timeouts : int;
  errors : int;  (** invalid requests and captured internal errors *)
  retries : int;  (** compile attempts re-run after a transient failure *)
  breaker_trips : int;  (** closed/half-open → open transitions, all tiers *)
}

val zero_stats : stats

val stats_sub : stats -> stats -> stats
(** Fieldwise [after - before]: the delta of one pass. *)

val stats_to_json :
  ?breakers:(string * string) list -> ?cache:int * int -> stats -> Qcr_obs.Json.t
(** [breakers] (as produced by {!breaker_states}) adds a ["breakers"]
    object mapping tier name to ["closed"]/["open"]/["half_open"];
    [cache] (as produced by {!cache_info}) adds the ["shards"] and
    ["cache_bytes"] gauges. *)

val create :
  ?cache_capacity:int ->
  ?cache_shards:int ->
  ?store:Cache_store.t ->
  ?clock:Qcr_obs.Clock.t ->
  ?astar_budget:int ->
  ?on_attempt:(Compile_request.mode -> unit) ->
  ?retries:int ->
  ?backoff_s:float ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_s:float ->
  ?retry_seed:int ->
  ?sleep:(float -> unit) ->
  ?eventlog:Qcr_obs.Eventlog.t ->
  unit ->
  t
(** Defaults: 512 cached replies over 16 shards (clamped down when the
    capacity is smaller), no persistent store, {!Qcr_obs.Clock.wall},
    30000 A* node expansions for the portfolio arm, 2 retries with a
    5 ms backoff base, breakers opening after 5 consecutive failures for
    30 s.  With [store], the cache warm-starts from the store's
    validated entries (capacity permitting) before the first request.
    [on_attempt] runs immediately before each tier attempt (after
    admission), including retries — an instrumentation seam that deadline
    tests use to advance a fake clock by a simulated per-tier cost.
    [sleep] (default [Unix.sleepf]) performs the backoff wait, so tests
    can run retry schedules instantly; [retry_seed] seeds the jitter
    stream.  With [eventlog], every served reply feeds the bounded
    slow-request and error channels ({!Qcr_obs.Eventlog}).

    Creation also (re-)registers the instance's registry probes —
    [service.cache_bytes], [service.cache_shards],
    [service.cache_entries], and [service.breaker_state{tier=...}]
    (0 closed, 1 half-open, 2 open) — pointing at the newest instance. *)

val submit : t -> Compile_request.t -> Compile_reply.t

val run_batch : t -> Compile_request.t list -> Compile_reply.t list
(** Replies in request order; distinct cold keys compile in parallel.
    If the pool itself fails (e.g. {!Qcr_par.Pool.Worker_lost} surfacing
    through a combinator), the batch falls back to compiling inline on
    the submitting domain — a lost pool never loses a batch. *)

val stats : t -> stats
(** Cumulative over the service's lifetime.  Cache counters are merged
    from the per-shard counters (plus the store's load-time skips under
    [cache_corrupt]) at read time, so they are exact under sharding. *)

val cache_info : t -> int * int
(** [(shards, bytes)]: the shard count and the total canonical bytes
    held by the compile cache — the gauges {!stats_to_json}'s [?cache]
    argument exports. *)

val cache_entries : t -> int
(** Live entries in the compile cache. *)

val flush : t -> (int, string) result
(** Persist every cached entry the store does not hold yet as one new
    crash-safe segment; [Ok n] is the number written ([Ok 0] without a
    [store] or when nothing is new).  On [Error] nothing is lost: the
    cache and the on-disk index are unchanged, and the flush can be
    retried. *)

val breaker_states : t -> (string * string) list
(** Current breaker state per tier, [(tier, "closed"|"open"|"half_open")],
    in ladder order portfolio, ours, greedy, ata. *)

val metrics_json : t -> Qcr_obs.Json.t
(** The full {!Qcr_obs.Registry} exposition (schema [qcr-metrics/v1]:
    counters, gauges and probes — pool, cache, breaker states — and
    meters with p50/p90/p99 and trailing rate, including the per-tier
    [service.compile_ms{tier=...}] families) with this instance's
    {!stats_to_json} block appended under ["stats"].  This is what
    [qcr serve]'s [{"op":"metrics"}] control line returns. *)

(** {1 Wire format}

    A batch file is [{"schema": "qcr-service-batch/v1", "requests":
    [...]}] (a bare request array is also accepted); a reply file is
    [{"schema": "qcr-service-replies/v1", "domains": N, "replies": [...],
    "stats": {...}, "passes": [...]}]. *)

val batch_schema : string

val replies_schema : string

val requests_of_json : Qcr_obs.Json.t -> (Compile_request.t list, string) result

val requests_to_json : Compile_request.t list -> Qcr_obs.Json.t

val replies_to_json :
  ?passes:stats list ->
  ?breakers:(string * string) list ->
  domains:int ->
  stats:stats ->
  Compile_reply.t list ->
  Qcr_obs.Json.t
(** [passes] records per-pass stat deltas when the same batch ran several
    times through one service (the CLI's [--repeat]); [breakers] embeds
    the final breaker states in the top-level stats object. *)
