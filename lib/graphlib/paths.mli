(** Shortest paths and distance matrices over unweighted graphs.

    Coupling-graph distances drive both the A* admissible heuristic
    (paper Eq. 2: [d] is "the distance between qi and qj") and the greedy
    SWAP-insertion scoring. *)

type distances
(** Dense all-pairs hop-distance matrix. *)

val bfs : Graph.t -> int -> int array
(** Single-source distances; unreachable vertices get [max_int]. *)

val all_pairs : Graph.t -> distances

val distance : distances -> int -> int -> int

val matrix : distances -> int array
(** Row-major backing store: [distance d u v] is [(matrix d).(u * order d + v)].
    Exposed so hot loops can hoist the row base; unreachable pairs hold
    [max_int].  Do not mutate. *)

val order : distances -> int
(** Number of vertices the matrix covers (its row length). *)

val shortest_path : Graph.t -> int -> int -> int list
(** One shortest path including both endpoints.
    @raise Not_found if disconnected. *)

val eccentricity : Graph.t -> int -> int

val diameter : Graph.t -> int
(** Max finite pairwise distance. *)

val longest_path_heuristic : Graph.t -> int list
(** A long simple path found by repeated double-BFS sweeps plus greedy DFS
    extension.  Used to extract the heavy-hex "longest path" component
    (paper §5.1, Fig 16); not guaranteed maximum, but on heavy-hex lattices
    it recovers the snake the paper draws. *)
