module Prng = Qcr_util.Prng

let erdos_renyi rng ~n ~density =
  if density < 0.0 || density > 1.0 then invalid_arg "erdos_renyi: density not in [0,1]";
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.float rng 1.0 < density then Graph.add_edge g u v
    done
  done;
  g

(* Regular graphs via a deterministic circulant start randomized by
   degree-preserving double-edge switches (the standard MCMC shuffle).
   Unlike the pairing model this never fails, even for dense degrees. *)
let random_regular rng ~n ~degree =
  if degree >= n then invalid_arg "random_regular: degree >= n";
  if n * degree mod 2 <> 0 then invalid_arg "random_regular: n * degree must be even";
  if degree < 0 then invalid_arg "random_regular: negative degree";
  let g = Graph.create n in
  if degree > 0 then begin
    (* circulant: i ~ i +- 1 .. i +- degree/2, plus the antipode when the
       degree is odd (n is then even) *)
    for v = 0 to n - 1 do
      for k = 1 to degree / 2 do
        let w = (v + k) mod n in
        if not (Graph.has_edge g v w) then Graph.add_edge g v w
      done;
      if degree mod 2 = 1 then begin
        let w = (v + (n / 2)) mod n in
        if not (Graph.has_edge g v w) then Graph.add_edge g v w
      end
    done;
    (* randomize: (a,b),(c,d) -> (a,c),(b,d) when legal *)
    let edges = Array.of_list (Graph.edges g) in
    let m = Array.length edges in
    let switches = 10 * m in
    for _ = 1 to switches do
      let i = Prng.int rng m and j = Prng.int rng m in
      if i <> j then begin
        let a, b = edges.(i) and c, d = edges.(j) in
        let c, d = if Prng.bool rng then (c, d) else (d, c) in
        let distinct = a <> c && a <> d && b <> c && b <> d in
        if distinct && (not (Graph.has_edge g a c)) && not (Graph.has_edge g b d) then begin
          Graph.remove_edge g a b;
          Graph.remove_edge g c d;
          Graph.add_edge g a c;
          Graph.add_edge g b d;
          edges.(i) <- ((min a c), (max a c));
          edges.(j) <- ((min b d), (max b d))
        end
      end
    done
  end;
  g

let regular_with_density rng ~n ~density =
  let degree_exact = density *. float_of_int (n - 1) in
  let degree = max 1 (int_of_float (Float.round degree_exact)) in
  let degree = if n * degree mod 2 = 0 then degree else degree + 1 in
  let degree = min degree (n - 1) in
  let degree = if n * degree mod 2 = 0 then degree else degree - 1 in
  random_regular rng ~n ~degree

let path n =
  let g = Graph.create n in
  for v = 0 to n - 2 do
    Graph.add_edge g v (v + 1)
  done;
  g

let cycle n =
  let g = path n in
  if n > 2 then Graph.add_edge g (n - 1) 0;
  g

let star n =
  let g = Graph.create n in
  for v = 1 to n - 1 do
    Graph.add_edge g 0 v
  done;
  g

let lattice ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Generate.lattice: empty lattice";
  let g = Graph.create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = (r * cols) + c in
      if c < cols - 1 then Graph.add_edge g v (v + 1);
      if r < rows - 1 then Graph.add_edge g v (v + cols)
    done
  done;
  g
