(** Benchmark problem-graph generators (NetworkX substitute, paper §7.1).

    All generators are deterministic under the supplied PRNG. *)

val erdos_renyi : Qcr_util.Prng.t -> n:int -> density:float -> Graph.t
(** Random graph where each of the [n choose 2] pairs is an edge with
    probability [density] (the paper's "random graph with density d"). *)

val random_regular : Qcr_util.Prng.t -> n:int -> degree:int -> Graph.t
(** Random [degree]-regular graph: circulant start randomized by
    degree-preserving double-edge switches.
    Requires [n * degree] even and [degree < n]. *)

val regular_with_density : Qcr_util.Prng.t -> n:int -> density:float -> Graph.t
(** Regular graph whose degree approximates the requested density (the
    paper sets regular-graph density "close to 0.3 or 0.5 by varying the
    degree"). *)

val path : int -> Graph.t

val cycle : int -> Graph.t

val star : int -> Graph.t

val lattice : rows:int -> cols:int -> Graph.t
(** Nearest-neighbor 2D lattice problem graph; vertex (r, c) is
    [r * cols + c].  The hardware-native workload for grid devices: the
    interaction graph matches the coupling graph, so routing cost isolates
    compiler overhead from topological mismatch at scale. *)
