(* Adjacency is a per-vertex sorted int array whose live prefix length is
   tracked by a cached degree array.  The arrays keep neighbor iteration
   contiguous, make [degree] O(1), and give [has_edge] a cache-friendly
   binary search; all three matter once devices reach 1000+ qubits, where
   the earlier list-based representation turned the compiler's inner
   loops quadratic.  [Csr] freezes a graph into a flat offsets+adjacency
   pair for read-only hot paths (all-pairs BFS, router coupling scans). *)

type t = {
  n : int;
  adj : int array array; (* sorted neighbors; capacity may exceed deg *)
  deg : int array; (* live prefix length of adj.(v) *)
  mutable edge_count : int;
}

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; adj = Array.make n [||]; deg = Array.make n 0; edge_count = 0 }

let vertex_count t = t.n

let edge_count t = t.edge_count

let check_vertex t v =
  if v < 0 || v >= t.n then invalid_arg "Graph: vertex out of range"

(* Binary search in the sorted live prefix of [t.adj.(u)].  Beats the
   hashed edge set on hot paths: the row was usually just touched, so the
   probes stay in cache, while a hashtable probe of a large edge set is a
   dependent miss. *)
let mem_adj t u v =
  let a = t.adj.(u) in
  let lo = ref 0 and hi = ref (t.deg.(u) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = a.(mid) in
    if x = v then found := true else if x < v then lo := mid + 1 else hi := mid - 1
  done;
  !found

let has_edge t u v =
  check_vertex t u;
  check_vertex t v;
  let du = t.deg.(u) and dv = t.deg.(v) in
  if du <= dv then mem_adj t u v else mem_adj t v u

let degree t v =
  check_vertex t v;
  t.deg.(v)

(* Insert [x] into the sorted live prefix of [t.adj.(u)], growing capacity
   by doubling.  Construction patterns add neighbors in ascending order, so
   the backwards shift is usually empty. *)
let insert_sorted t u x =
  let a = t.adj.(u) and d = t.deg.(u) in
  let a =
    if d < Array.length a then a
    else begin
      let grown = Array.make (max 4 (2 * Array.length a)) 0 in
      Array.blit a 0 grown 0 d;
      t.adj.(u) <- grown;
      grown
    end
  in
  let pos = ref d in
  while !pos > 0 && a.(!pos - 1) > x do
    a.(!pos) <- a.(!pos - 1);
    decr pos
  done;
  a.(!pos) <- x;
  t.deg.(u) <- d + 1

(* Remove [x] from the sorted live prefix; single left shift, no
   reallocation.  The caller guarantees presence. *)
let delete_sorted t u x =
  let a = t.adj.(u) and d = t.deg.(u) in
  (* binary search for the position of x *)
  let lo = ref 0 and hi = ref (d - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  let pos = !lo in
  Array.blit a (pos + 1) a pos (d - 1 - pos);
  t.deg.(u) <- d - 1

let add_edge t u v =
  check_vertex t u;
  check_vertex t v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if has_edge t u v then invalid_arg "Graph.add_edge: duplicate edge";
  insert_sorted t u v;
  insert_sorted t v u;
  t.edge_count <- t.edge_count + 1

let remove_edge t u v =
  check_vertex t u;
  check_vertex t v;
  if u <> v && mem_adj t u v then begin
    delete_sorted t u v;
    delete_sorted t v u;
    t.edge_count <- t.edge_count - 1
  end

let of_edges n edge_list =
  let t = create n in
  List.iter (fun (u, v) -> add_edge t u v) edge_list;
  t

let neighbors t v =
  check_vertex t v;
  let a = t.adj.(v) and d = t.deg.(v) in
  let rec build i acc = if i < 0 then acc else build (i - 1) (a.(i) :: acc) in
  build (d - 1) []

let iter_neighbors t v f =
  check_vertex t v;
  let a = t.adj.(v) in
  for i = 0 to t.deg.(v) - 1 do
    f a.(i)
  done

let fold_neighbors t v f init =
  check_vertex t v;
  let a = t.adj.(v) in
  let acc = ref init in
  for i = 0 to t.deg.(v) - 1 do
    acc := f !acc a.(i)
  done;
  !acc

let adj_row t v =
  check_vertex t v;
  (t.adj.(v), t.deg.(v))

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    let a = t.adj.(u) in
    for i = t.deg.(u) - 1 downto 0 do
      if u < a.(i) then acc := (u, a.(i)) :: !acc
    done
  done;
  !acc

let iter_edges f t =
  for u = 0 to t.n - 1 do
    let a = t.adj.(u) in
    for i = 0 to t.deg.(u) - 1 do
      if u < a.(i) then f u a.(i)
    done
  done

let density t =
  if t.n < 2 then 0.0
  else begin
    let pairs = float_of_int t.n *. float_of_int (t.n - 1) /. 2.0 in
    float_of_int t.edge_count /. pairs
  end

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    best := max !best t.deg.(v)
  done;
  !best

let copy t =
  {
    n = t.n;
    adj = Array.map (fun a -> Array.copy a) t.adj;
    deg = Array.copy t.deg;
    edge_count = t.edge_count;
  }

let subgraph_on t vs =
  let vs = List.sort_uniq compare vs in
  let old_of_new = Array.of_list vs in
  let new_of_old = Hashtbl.create (Array.length old_of_new) in
  Array.iteri (fun i v -> Hashtbl.replace new_of_old v i) old_of_new;
  let sub = create (Array.length old_of_new) in
  iter_edges
    (fun u v ->
      match (Hashtbl.find_opt new_of_old u, Hashtbl.find_opt new_of_old v) with
      | Some u', Some v' -> add_edge sub u' v'
      | _ -> ())
    t;
  (sub, old_of_new)

let is_connected t =
  if t.n = 0 then true
  else begin
    let seen = Array.make t.n false in
    let queue = Queue.create () in
    Queue.push 0 queue;
    seen.(0) <- true;
    let visited = ref 1 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      iter_neighbors t u (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            incr visited;
            Queue.push v queue
          end)
    done;
    !visited = t.n
  end

let complete n =
  let t = create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      add_edge t u v
    done
  done;
  t

let pp fmt t =
  Format.fprintf fmt "graph(n=%d, m=%d)" t.n t.edge_count

(* ------------------------------------------------------------------ *)
(* Immutable CSR snapshot. *)

module Csr = struct
  type graph = t

  type t = {
    n : int;
    row : int array; (* length n + 1: neighbor range of v is [row.(v), row.(v+1)) *)
    col : int array; (* concatenated sorted neighbor lists, length 2 * edges *)
  }

  let of_graph (g : graph) =
    let n = g.n in
    let row = Array.make (n + 1) 0 in
    for v = 0 to n - 1 do
      row.(v + 1) <- row.(v) + g.deg.(v)
    done;
    let col = Array.make row.(n) 0 in
    for v = 0 to n - 1 do
      Array.blit g.adj.(v) 0 col row.(v) g.deg.(v)
    done;
    { n; row; col }

  let vertex_count t = t.n

  let edge_count t = Array.length t.col / 2

  let check_vertex t v =
    if v < 0 || v >= t.n then invalid_arg "Graph.Csr: vertex out of range"

  let degree t v =
    check_vertex t v;
    t.row.(v + 1) - t.row.(v)

  let iter_neighbors t v f =
    check_vertex t v;
    for i = t.row.(v) to t.row.(v + 1) - 1 do
      f t.col.(i)
    done

  let fold_neighbors t v f init =
    check_vertex t v;
    let acc = ref init in
    for i = t.row.(v) to t.row.(v + 1) - 1 do
      acc := f !acc t.col.(i)
    done;
    !acc

  let neighbors t v =
    check_vertex t v;
    let rec build i acc =
      if i < t.row.(v) then acc else build (i - 1) (t.col.(i) :: acc)
    in
    build (t.row.(v + 1) - 1) []
end

let csr t = Csr.of_graph t
