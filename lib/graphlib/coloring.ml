let greedy g =
  let n = Graph.vertex_count g in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare (Graph.degree g b) (Graph.degree g a)) order;
  let color = Array.make n (-1) in
  let forbidden = Array.make (n + 1) (-1) in
  Array.iter
    (fun v ->
      Graph.iter_neighbors g v (fun u ->
          if color.(u) >= 0 then forbidden.(color.(u)) <- v);
      let c = ref 0 in
      while forbidden.(!c) = v do
        incr c
      done;
      color.(v) <- !c)
    order;
  color

let count_colors colors =
  Array.fold_left (fun acc c -> max acc (c + 1)) 0 colors

let color_classes colors =
  let k = count_colors colors in
  let classes = Array.make k [] in
  for v = Array.length colors - 1 downto 0 do
    let c = colors.(v) in
    classes.(c) <- v :: classes.(c)
  done;
  classes

let largest_class colors =
  let classes = color_classes colors in
  let best = ref 0 in
  Array.iteri
    (fun c members ->
      if List.length members > List.length classes.(!best) then best := c)
    classes;
  if Array.length classes = 0 then [] else classes.(!best)
