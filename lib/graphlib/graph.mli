(** Simple undirected graphs over vertices [0 .. n-1].

    This is the shared substrate for both problem graphs (a QAOA program is
    a graph: vertex = qubit, edge = two-qubit operator, paper §2.1) and
    hardware coupling graphs (vertex = physical qubit, edge = allowed
    two-qubit-gate site). *)

type t

val create : int -> t
(** [create n] is an edgeless graph on [n] vertices. *)

val of_edges : int -> (int * int) list -> t
(** Build from an edge list; duplicate edges and self-loops are rejected. *)

val vertex_count : t -> int

val edge_count : t -> int

val add_edge : t -> int -> int -> unit
(** @raise Invalid_argument on self-loops or duplicate edges. *)

val has_edge : t -> int -> int -> bool

val neighbors : t -> int -> int list
(** Neighbors in increasing order. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_neighbors t v f] applies [f] to each neighbor of [v] in
    increasing order, without allocating a list. *)

val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
(** [fold_neighbors t v f init] folds [f] over the neighbors of [v] in
    increasing order, without allocating a list. *)

val adj_row : t -> int -> int array * int
(** [adj_row t v] is the sorted neighbor backing row of [v] and its live
    length (entries beyond it are stale capacity).  Zero-copy escape hatch
    for hot loops that cannot afford a closure per neighbor; the row is
    invalidated by the next [add_edge]/[remove_edge] touching [v].
    Callers must not mutate. *)

val degree : t -> int -> int
(** O(1): degrees are cached and maintained by [add_edge]/[remove_edge]. *)

val edges : t -> (int * int) list
(** All edges with [u < v], lexicographically ordered. *)

val iter_edges : (int -> int -> unit) -> t -> unit

val density : t -> float
(** [edge_count / (n choose 2)]. *)

val max_degree : t -> int

val copy : t -> t

val remove_edge : t -> int -> int -> unit
(** No-op if the edge is absent. *)

val subgraph_on : t -> int list -> t * int array
(** [subgraph_on g vs] is the induced subgraph on [vs], plus the array
    mapping new vertex ids to original ids. *)

val is_connected : t -> bool

val complete : int -> t
(** The [n]-clique (the paper's special "clique-circuit" input, Def. 1). *)

val pp : Format.formatter -> t -> unit

(** Immutable compressed-sparse-row snapshot of a graph: one flat offsets
    array plus one flat adjacency array.  Read-only hot loops (all-pairs
    BFS, router coupling scans) iterate it cache-linearly with zero
    allocation.  Neighbor order is identical to [neighbors] (increasing). *)
module Csr : sig
  type graph := t

  type t

  val of_graph : graph -> t
  (** Snapshot; later mutation of the source graph is not reflected. *)

  val vertex_count : t -> int

  val edge_count : t -> int

  val degree : t -> int -> int

  val neighbors : t -> int -> int list
  (** Neighbors in increasing order — same as [Graph.neighbors]. *)

  val iter_neighbors : t -> int -> (int -> unit) -> unit

  val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
end

val csr : t -> Csr.t
(** [csr t] is [Csr.of_graph t]. *)
