type distances = { n : int; matrix : int array }

let bfs g source =
  let n = Graph.vertex_count g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.push source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v queue
        end)
  done;
  dist

(* All-pairs BFS over a CSR snapshot with a flat int-array queue: no
   per-visit allocation, so 1000+-vertex coupling graphs stay cheap. *)
let all_pairs g =
  let n = Graph.vertex_count g in
  let csr = Graph.csr g in
  let matrix = Array.make (n * n) max_int in
  let queue = Array.make (max n 1) 0 in
  for source = 0 to n - 1 do
    let base = source * n in
    matrix.(base + source) <- 0;
    queue.(0) <- source;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let du = matrix.(base + u) in
      Graph.Csr.iter_neighbors csr u (fun v ->
          if matrix.(base + v) = max_int then begin
            matrix.(base + v) <- du + 1;
            queue.(!tail) <- v;
            incr tail
          end)
    done
  done;
  { n; matrix }

let distance d u v = d.matrix.((u * d.n) + v)

let matrix d = d.matrix

let order d = d.n

let shortest_path g source target =
  let n = Graph.vertex_count g in
  let parent = Array.make n (-1) in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.push source queue;
  while not (Queue.is_empty queue) && dist.(target) = max_int do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.push v queue
        end)
  done;
  if dist.(target) = max_int then raise Not_found;
  let rec build v acc = if v = source then source :: acc else build parent.(v) (v :: acc) in
  build target []

let eccentricity g v =
  let dist = bfs g v in
  Array.fold_left (fun acc d -> if d = max_int then acc else max acc d) 0 dist

let diameter g =
  let n = Graph.vertex_count g in
  let best = ref 0 in
  for v = 0 to n - 1 do
    best := max !best (eccentricity g v)
  done;
  !best

(* Greedy DFS that prefers low-degree neighbors (so that it exits dead ends
   early), extended from a far-apart endpoint pair found by double BFS. *)
let longest_path_heuristic g =
  let n = Graph.vertex_count g in
  if n = 0 then []
  else begin
    let farthest source =
      let dist = bfs g source in
      let best = ref source in
      for v = 0 to n - 1 do
        if dist.(v) <> max_int && dist.(v) > dist.(!best) then best := v
      done;
      !best
    in
    let a = farthest 0 in
    let start = farthest a in
    let visited = Array.make n false in
    let best_path = ref [] in
    let best_len = ref 0 in
    (* Bounded backtracking DFS: explores neighbor orderings by degree, with
       a node-expansion budget so large lattices stay fast. *)
    let budget = ref (50 * n) in
    let rec dfs v path len =
      decr budget;
      if len > !best_len then begin
        best_len := len;
        best_path := path
      end;
      if !budget > 0 then begin
        let next =
          List.filter (fun u -> not visited.(u)) (Graph.neighbors g v)
          |> List.sort (fun u w -> compare (Graph.degree g u) (Graph.degree g w))
        in
        List.iter
          (fun u ->
            if not visited.(u) && !budget > 0 then begin
              visited.(u) <- true;
              dfs u (u :: path) (len + 1);
              visited.(u) <- false
            end)
          next
      end
    in
    visited.(start) <- true;
    dfs start [ start ] 1;
    List.rev !best_path
  end
