(** Benchmark suite descriptions matching the paper's §7.1 setup:
    random graphs with densities {0.3, 0.5}, regular graphs with matching
    density, sizes 64..1024, 10 seeds per point (averaged). *)

type instance = {
  label : string;       (** e.g. "rand-128-0.3" *)
  seed : int;
  graph : Qcr_graph.Graph.t;
}

val random_instances :
  ?cases:int -> n:int -> density:float -> unit -> instance list
(** [cases] seeds (default 10) of an Erdős–Rényi graph. *)

val regular_instances :
  ?cases:int -> n:int -> density:float -> unit -> instance list

val regular_by_degree :
  ?cases:int -> n:int -> degree:int -> unit -> instance list
(** The paper's "1024-320"-style rows: n vertices, fixed degree. *)

val program_of : instance -> Qcr_circuit.Program.t
(** QAOA interaction block at reference angles. *)

(** {1 Thousand-qubit scale suite}

    Deterministic single instances per size for [bench scale] (the
    cross-size compile-time matrix): a random 3-regular Max-Cut QAOA
    problem, a next-nearest-neighbor Ising chain, and a hardware-native
    2D lattice. *)

val scale_sizes : int list
(** [[100; 256; 576; 1024]] — the device sizes of the scale matrix (the
    27-qubit column reuses the existing small suite). *)

val scale_qaoa : n:int -> instance
(** Random 3-regular graph on [n] vertices (rounded down to even when
    [3 n] is odd), fixed seed per size. *)

val scale_ising : n:int -> instance
(** NNN 1D Ising chain on [n] spins ({!Hamiltonian.nnn_1d_ising}). *)

val scale_lattice : n:int -> instance
(** Near-square 2D lattice with at least [n] vertices
    ({!Generate.lattice}): interaction graph = grid coupling graph. *)

val scale_program_of : instance -> Qcr_circuit.Program.t
(** {!program_of} for QAOA-style instances; a Trotter step
    ({!Hamiltonian.trotter_step}) for Ising instances. *)
