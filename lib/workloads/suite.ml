module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Program = Qcr_circuit.Program
module Prng = Qcr_util.Prng

type instance = {
  label : string;
  seed : int;
  graph : Graph.t;
}

(* Base seed chosen once; every instance derives deterministically from
   (kind, n, density, case index). *)
let seed_of ~tag ~n ~case =
  (tag * 1_000_003) + (n * 9176) + (case * 389) + 12345

let random_instances ?(cases = 10) ~n ~density () =
  List.init cases (fun case ->
      let seed = seed_of ~tag:1 ~n ~case in
      let rng = Prng.create seed in
      {
        label = Printf.sprintf "rand-%d-%g" n density;
        seed;
        graph = Generate.erdos_renyi rng ~n ~density;
      })

let regular_instances ?(cases = 10) ~n ~density () =
  List.init cases (fun case ->
      let seed = seed_of ~tag:2 ~n ~case in
      let rng = Prng.create seed in
      {
        label = Printf.sprintf "reg-%d-%g" n density;
        seed;
        graph = Generate.regular_with_density rng ~n ~density;
      })

let regular_by_degree ?(cases = 10) ~n ~degree () =
  List.init cases (fun case ->
      let seed = seed_of ~tag:3 ~n ~case in
      let rng = Prng.create seed in
      {
        label = Printf.sprintf "reg-%d-%d" n degree;
        seed;
        graph = Generate.random_regular rng ~n ~degree;
      })

let program_of instance =
  Program.make ~name:instance.label instance.graph
    (Program.Qaoa_maxcut { gamma = 0.4; beta = 0.35 })

(* ---------- thousand-qubit scale suite (bench scale) ---------- *)

let scale_sizes = [ 100; 256; 576; 1024 ]

let scale_qaoa ~n =
  (* random_regular needs n * degree even; round odd sizes down so the
     27-qubit column of the cross-size matrix still gets an instance *)
  let n = if n * 3 mod 2 = 0 then n else n - 1 in
  let seed = seed_of ~tag:4 ~n ~case:0 in
  {
    label = Printf.sprintf "qaoa3-%d" n;
    seed;
    graph = Generate.random_regular (Prng.create seed) ~n ~degree:3;
  }

let scale_ising ~n =
  { label = Printf.sprintf "ising-%d" n; seed = 0; graph = Hamiltonian.nnn_1d_ising n }

let scale_lattice ~n =
  let rows = int_of_float (sqrt (float_of_int n)) in
  let rows = max 1 rows in
  let cols = (n + rows - 1) / rows in
  {
    label = Printf.sprintf "lattice-%d" (rows * cols);
    seed = 0;
    graph = Generate.lattice ~rows ~cols;
  }

let scale_program_of instance =
  if String.length instance.label >= 5 && String.sub instance.label 0 5 = "ising" then
    Hamiltonian.trotter_step instance.graph
  else program_of instance
