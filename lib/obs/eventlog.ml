(* Bounded structured event log: a drop-oldest ring of slow-request
   events plus an adaptively sampled error channel, serialized as JSONL
   with the same temp+rename crash-safety as Cache_store. *)

type event = {
  ev_kind : string;
  ev_ts : float;
  ev_id : string;
  ev_fields : (string * Json.t) list;
}

type channel = {
  cap : int;
  buf : event option array; (* ring for slow; compacting array for errors *)
  mutable len : int;
  mutable head : int; (* ring head (slow channel only) *)
}

type t = {
  slow : channel;
  errors : channel;
  threshold_ms : float;
  mutable slow_dropped : int;
  mutable errors_seen : int;
  mutable stride : int; (* keep every stride-th error *)
  lock : Mutex.t;
}

let default_slow_capacity = 64

let default_error_capacity = 64

let default_slow_threshold_ms = 100.0

let create ?(slow_capacity = default_slow_capacity) ?(error_capacity = default_error_capacity)
    ?(slow_threshold_ms = default_slow_threshold_ms) () =
  if slow_capacity < 1 then invalid_arg "Qcr_obs.Eventlog.create: slow_capacity must be >= 1";
  if error_capacity < 1 then invalid_arg "Qcr_obs.Eventlog.create: error_capacity must be >= 1";
  {
    slow = { cap = slow_capacity; buf = Array.make slow_capacity None; len = 0; head = 0 };
    errors = { cap = error_capacity; buf = Array.make error_capacity None; len = 0; head = 0 };
    threshold_ms = slow_threshold_ms;
    slow_dropped = 0;
    errors_seen = 0;
    stride = 1;
    lock = Mutex.create ();
  }

let slow_threshold_ms t = t.threshold_ms

let record_slow t ~id ~ms fields =
  if ms > t.threshold_ms then begin
    Mutex.lock t.lock;
    let c = t.slow in
    let ev =
      { ev_kind = "slow"; ev_ts = Obs.now (); ev_id = id; ev_fields = ("ms", Json.Num ms) :: fields }
    in
    if c.len < c.cap then begin
      c.buf.((c.head + c.len) mod c.cap) <- Some ev;
      c.len <- c.len + 1
    end
    else begin
      (* full: overwrite the oldest *)
      c.buf.(c.head) <- Some ev;
      c.head <- (c.head + 1) mod c.cap;
      t.slow_dropped <- t.slow_dropped + 1
    end;
    Mutex.unlock t.lock
  end

let record_error t ~id fields =
  Mutex.lock t.lock;
  t.errors_seen <- t.errors_seen + 1;
  (* Adaptive stride sampling: keep every stride-th error; when the
     buffer fills, compact by dropping every other kept event and double
     the stride, so the channel stays bounded with roughly uniform
     coverage of the whole run. *)
  if (t.errors_seen - 1) mod t.stride = 0 then begin
    let c = t.errors in
    if c.len = c.cap then begin
      let kept = ref 0 in
      for i = 0 to c.len - 1 do
        if i mod 2 = 0 then begin
          c.buf.(!kept) <- c.buf.(i);
          incr kept
        end
      done;
      for i = !kept to c.cap - 1 do
        c.buf.(i) <- None
      done;
      c.len <- !kept;
      t.stride <- t.stride * 2
    end;
    c.buf.(c.len) <-
      Some { ev_kind = "error"; ev_ts = Obs.now (); ev_id = id; ev_fields = fields };
    c.len <- c.len + 1
  end;
  Mutex.unlock t.lock

let slow_events t =
  Mutex.lock t.lock;
  let c = t.slow in
  let out = ref [] in
  for i = c.len - 1 downto 0 do
    match c.buf.((c.head + i) mod c.cap) with Some ev -> out := ev :: !out | None -> ()
  done;
  Mutex.unlock t.lock;
  !out

let error_events t =
  Mutex.lock t.lock;
  let c = t.errors in
  let out = ref [] in
  for i = c.len - 1 downto 0 do
    match c.buf.(i) with Some ev -> out := ev :: !out | None -> ()
  done;
  Mutex.unlock t.lock;
  !out

let slow_dropped t =
  Mutex.lock t.lock;
  let n = t.slow_dropped in
  Mutex.unlock t.lock;
  n

let errors_seen t =
  Mutex.lock t.lock;
  let n = t.errors_seen in
  Mutex.unlock t.lock;
  n

(* ---------- JSONL serialization ---------- *)

let schema = "qcr-eventlog/v1"

let event_json ev =
  Json.Obj
    ([ ("kind", Json.Str ev.ev_kind); ("ts", Json.Num ev.ev_ts); ("id", Json.Str ev.ev_id) ]
    @ ev.ev_fields)

let write t path =
  let slow = slow_events t in
  let errors = error_events t in
  Mutex.lock t.lock;
  let header =
    Json.Obj
      [
        ("schema", Json.Str schema);
        ("slow_threshold_ms", Json.Num t.threshold_ms);
        ("slow_kept", Json.Num (float_of_int t.slow.len));
        ("slow_dropped", Json.Num (float_of_int t.slow_dropped));
        ("errors_seen", Json.Num (float_of_int t.errors_seen));
        ("errors_kept", Json.Num (float_of_int t.errors.len));
      ]
  in
  Mutex.unlock t.lock;
  let b = Buffer.create 1024 in
  Buffer.add_string b (Json.to_string header);
  Buffer.add_char b '\n';
  let n = ref 0 in
  List.iter
    (fun ev ->
      Buffer.add_string b (Json.to_string (event_json ev));
      Buffer.add_char b '\n';
      incr n)
    (slow @ errors);
  match Registry.write_atomic path (Buffer.contents b) with
  | Ok () -> Ok !n
  | Error e -> Error e
