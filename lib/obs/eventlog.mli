(** Bounded structured event log for operational forensics: which
    requests were slow, which errored, without unbounded memory or a
    write on the hot path.

    Two channels:

    - {b slow} — a fixed-capacity drop-oldest ring.  {!record_slow}
      keeps the event only when its duration exceeds the threshold; once
      the ring is full each new event overwrites the oldest (counted in
      {!slow_dropped}).
    - {b errors} — adaptive stride sampling.  Every error is counted;
      every [stride]-th is kept.  When the buffer fills, every other
      kept event is dropped and the stride doubles, so the channel stays
      bounded with roughly uniform coverage of the whole run.

    Timestamps come from {!Obs.now}, so a fake clock makes event times
    deterministic in tests.  All entry points are mutex-guarded.

    {!write} serializes both channels as JSONL — a header line (schema
    ["qcr-eventlog/v1"], threshold, kept/dropped/seen counts) followed
    by one event per line — written crash-safe via temp+rename, the same
    pattern as [Cache_store]. *)

type event = {
  ev_kind : string;  (** ["slow"] or ["error"] *)
  ev_ts : float;
  ev_id : string;  (** request id; [""] when unknown *)
  ev_fields : (string * Json.t) list;
}

type t

val default_slow_capacity : int

val default_error_capacity : int

val default_slow_threshold_ms : float
(** 100.0 *)

val create :
  ?slow_capacity:int -> ?error_capacity:int -> ?slow_threshold_ms:float -> unit -> t
(** Raises [Invalid_argument] when either capacity is < 1. *)

val slow_threshold_ms : t -> float

val record_slow : t -> id:string -> ms:float -> (string * Json.t) list -> unit
(** No-op unless [ms] exceeds the threshold.  The duration is stored as
    an ["ms"] field ahead of the caller's fields. *)

val record_error : t -> id:string -> (string * Json.t) list -> unit

val slow_events : t -> event list
(** Oldest first. *)

val error_events : t -> event list
(** Oldest first. *)

val slow_dropped : t -> int

val errors_seen : t -> int

val schema : string

val write : t -> string -> (int, string) result
(** Write both channels as JSONL to a file (temp+rename).  Returns the
    number of event lines written (excluding the header). *)
