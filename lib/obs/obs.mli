(** Zero-dependency compiler telemetry: hierarchical tracing spans, named
    counters, and histograms behind one global sink.

    The sink is disabled by default and every instrumentation entry point
    ([with_span], [incr], [add], [observe]) is guarded by a single flag
    check, so instrumented hot paths pay one branch and nothing else when
    telemetry is off — no allocation, no clock read, no hashing.

    Handles ([Counter.t], [Histogram.t]) are interned by name at module
    initialization time; incrementing through a handle is a flag check
    plus one [Atomic.fetch_and_add].

    {b Domain safety.}  The sink works under OCaml 5 parallelism (the
    [Qcr_par] pool): counter updates are lock-free atomics, histogram
    observations take a short per-histogram mutex, and each domain
    records spans (with its own nesting depth) into a domain-local
    buffer.  The buffers are merged whenever the sink is read
    ({!spans}, {!snapshot}, and hence trace/summary export), so
    [--trace] and [--metrics] capture work done on every domain.
    Sink control ([enable]/[disable]/[reset]/[set_clock]) should still
    be called from the driver domain, outside parallel regions.

    Timestamps come from a swappable {!Clock.t} (default {!Clock.wall});
    installing a fake clock makes traces, and time-budget behavior routed
    through {!current_clock}, fully deterministic in tests.

    Export: {!Trace_json} renders the recorded spans and counters as
    Chrome trace-event JSON (loadable in Perfetto / [about://tracing]);
    {!Summary} renders a human-readable table. *)

module Counter : sig
  type t

  val name : t -> string

  val value : t -> int
end

module Histogram : sig
  type t

  type summary = {
    count : int;
    sum : float;
    min : float;  (** [infinity] when empty *)
    max : float;  (** [neg_infinity] when empty *)
    buckets : int array;  (** power-of-two buckets, see {!bucket_of} *)
  }

  val bucket_count : int

  val bucket_of : float -> int
  (** Index of the power-of-two bucket a value lands in: bucket [i] holds
      values in [[2^(i-offset), 2^(i-offset+1))], clamped to the table;
      non-positive values land in bucket 0. *)

  val name : t -> string

  val summary : t -> summary

  val empty_summary : summary

  val merge : summary -> summary -> summary
  (** Pointwise merge: counts and sums add, min/max combine, buckets add
      elementwise.  [merge] is associative and commutative with
      [empty_summary] as identity. *)

  val mean : summary -> float
  (** [sum /. count], 0.0 when empty. *)
end

(** {1 Sink control}

    All control entry points ([enable], [disable], [reset],
    [clear_spans], [set_clock]) belong to the driver domain.  Calling
    one inside a parallel region (a pool worker, or a task submitted to
    the pool) raises [Invalid_argument] — the check is installed by
    [Qcr_par.Pool] via {!set_parallel_guard} and defaults to permissive
    when no pool is linked. *)

val enabled : unit -> bool

val enable : ?clock:Clock.t -> unit -> unit
(** Turn the sink on (optionally installing a clock first).  Counters,
    histograms and spans recorded before [enable] are unaffected. *)

val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded spans, zero every counter and histogram, and run
    the registered reset hooks ({!add_reset_hook}).  Handles stay valid
    (they are interned, not cleared). *)

val clear_spans : unit -> unit
(** Drop recorded spans only, leaving counters and histograms intact.
    Long-running loops (e.g. [qcr serve]) call this per request so span
    buffers stay bounded while cumulative metrics keep accumulating. *)

val set_clock : Clock.t -> unit

val set_parallel_guard : (unit -> bool) -> unit
(** Install the predicate consulted by every sink-control entry point;
    when it returns [true] the call raises [Invalid_argument].
    Installed once by [Qcr_par.Pool] ("am I on a worker domain or
    inside a submitted task?").  Not for application use. *)

val add_reset_hook : (unit -> unit) -> unit
(** Register a callback run at the end of every {!reset}.  Used by
    layers that keep derived state (e.g. [Registry] meters) so a sink
    reset clears them too.  Hooks never unregister. *)

val current_clock : unit -> Clock.t

val now : unit -> float
(** Read the currently installed clock (works whether or not the sink is
    enabled — instrumented code uses this for time budgets). *)

(** {1 Instrumentation} *)

val counter : string -> Counter.t
(** Intern a counter; the same name always yields the same handle. *)

val incr : Counter.t -> unit

val add : Counter.t -> int -> unit

val histogram : string -> Histogram.t

val observe : Histogram.t -> float -> unit

val with_span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span.  When the sink is disabled
    this is exactly [f ()].  Spans nest: the span records its depth (root
    spans are depth 0) so exporters can reconstruct the hierarchy.  The
    span is recorded even if [f] raises. *)

(** {1 Inspection and export support} *)

type span = {
  span_name : string;
  span_cat : string;
  span_start : float;  (** clock reading at entry *)
  span_dur : float;
  span_depth : int;  (** 0 = root *)
  span_args : (string * string) list;
}

val spans : unit -> span list
(** All recorded spans in chronological order of their start. *)

type snapshot = {
  snap_counters : (string * int) list;  (** sorted by name, zeros omitted *)
  snap_histograms : (string * Histogram.summary) list;
      (** sorted by name, empties omitted *)
}

val snapshot : unit -> snapshot

val merge_snapshots : snapshot -> snapshot -> snapshot
(** Counters add, histograms merge; the result is sorted by name.  Used
    to aggregate per-case benchmark snapshots into a run total. *)
