(** Minimal JSON values: just enough to emit Chrome trace-event files and
    parse them back for validation, with no external dependency.

    The emitter and parser round-trip: [of_string (to_string v) = Ok v]
    for every value whose floats are finite (numbers print with enough
    digits to reparse exactly; integral floats print without a fractional
    part). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string

val of_string : string -> (t, string) result
(** Strict parser for the JSON subset this module emits (which is all of
    JSON minus extensions): rejects trailing garbage, unterminated
    strings, malformed numbers, and containers nested deeper than
    {!max_depth} (so hostile [\[\[\[\[…] input returns [Error] instead of
    overflowing the stack), with a character position in the error
    message.  Never raises on any input — the only exception to the
    contract is a deliberately armed [json.decode] crash fault
    ({!Qcr_fault.Fault}), which escapes so boundary code can be tested
    against a crashing parser. *)

val max_depth : int
(** Maximum container nesting depth the parser accepts (512). *)

val member : string -> t -> t option
(** [member key (Obj ...)] looks up a field; [None] on missing key or
    non-object. *)

val equal : t -> t -> bool
(** Structural equality; object fields compare in order. *)

val to_file : string -> t -> unit
(** Write [to_string] plus a trailing newline to a file. *)

val of_file : string -> (t, string) result
(** Read and parse a whole file; I/O problems come back as [Error] (with
    the system message), never as an exception. *)
