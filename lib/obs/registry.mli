(** Typed metrics registry on top of the {!Obs} sink.

    Three instrument kinds, all interned by (name, sorted labels):

    - {b meters} — latency/size distributions.  Each meter combines the
      existing power-of-two {!Obs.Histogram} (cheap, mergeable, coarse),
      a fixed-size streaming top-k {!Sketch} (exact tail quantiles while
      the tail fits), and a 60-slot one-second sliding window (trailing
      per-second event rate).  Observation is gated on {!Obs.enabled}
      like every other instrumentation path.
    - {b gauges} — instantaneous values set by the application
      ({!set_gauge}).
    - {b probes} — gauges read on demand from a callback at snapshot
      time ({!register_probe}); registering again under the same name
      and labels replaces the previous probe, so per-instance services
      can re-register freely.  A probe that raises is omitted from the
      snapshot.

    {b Quantile error bound.}  Bucket-derived quantiles ({!quantile})
    use the rank [clamp(ceil(q*count), 1, count)], locate the
    power-of-two bucket containing that rank, and return the midpoint of
    the bucket's lower half clamped into [[min, max]].  For positive
    samples within the table range ([2^-32, 2^32)) the estimate's
    relative error is at most {!quantile_relative_error} (= 0.5): a
    value [x] in bucket [[2^(b-33), 2^(b-32))] is estimated as
    [1.5 * 2^(b-33)], worst off by a factor 0.5 of [x] at the lower
    edge.  Meter snapshots prefer the sketch's exact quantile whenever
    the requested rank falls inside the retained tail and fall back to
    the bucket estimate otherwise.

    {!Obs.reset} clears registry state too (sketches, windows, gauge
    values) via a reset hook installed at module initialization. *)

(** Bounded streaming sketch of the k largest observations.  [merge] is
    associative and commutative (with the empty summary as identity at
    equal capacity): merging keeps the top [min cap_a cap_b] values of
    the union, and [top_k (top_j xs @ ys) = top_k (xs @ ys)] whenever
    [j >= k].  Quantiles are exact whenever the rank-from-the-top
    [n - ceil(q*n) + 1] lands inside the retained tail — for the default
    capacity 128 that keeps p99 exact up to roughly 12 800 observations
    and every quantile exact while [n <= cap]. *)
module Sketch : sig
  type t

  type summary = {
    s_count : int;  (** observations seen, not retained *)
    s_cap : int;
    s_tail : float array;  (** largest values, sorted descending *)
  }

  val default_cap : int
  (** 128 *)

  val create : ?cap:int -> unit -> t
  (** Raises [Invalid_argument] when [cap < 1].  Not thread-safe on its
      own — meters serialize access under their lock. *)

  val observe : t -> float -> unit
  (** NaN observations are counted nowhere and retained nowhere. *)

  val clear : t -> unit

  val summary : t -> summary

  val empty_summary : ?cap:int -> unit -> summary

  val merge : summary -> summary -> summary

  val quantile : summary -> float -> float option
  (** [None] when empty or when the requested rank falls outside the
      retained tail (caller should fall back to {!quantile} on the
      bucket summary). *)
end

val quantile : Obs.Histogram.summary -> float -> float option
(** Bucket-derived quantile estimate; [None] when the summary is empty.
    See the module preamble for the error bound. *)

val quantile_relative_error : float
(** 0.5 — documented worst-case relative error of {!quantile} for
    positive samples within the bucket table range. *)

(** {1 Instruments} *)

type meter

val meter : ?labels:(string * string) list -> string -> meter
(** Intern a meter; same name and label set yields the same handle.
    The backing histogram is interned in the Obs sink under
    [name{k="v",...}] with labels sorted by key. *)

val observe : meter -> float -> unit
(** No-op when the sink is disabled. *)

type gauge

val gauge : ?labels:(string * string) list -> string -> gauge

val set_gauge : gauge -> float -> unit
(** Gauges record instantaneous state, so they are settable whether or
    not the sink is enabled. *)

val register_probe : ?labels:(string * string) list -> string -> (unit -> float) -> unit

(** {1 Snapshot and exposition} *)

type meter_stat = {
  ms_name : string;
  ms_labels : (string * string) list;
  ms_summary : Obs.Histogram.summary;
  ms_p50 : float option;
  ms_p90 : float option;
  ms_p99 : float option;
  ms_rate_1m : float option;
      (** events per second over the trailing 60 s window; [None] for
          plain Obs histograms folded into the snapshot *)
}

type gauge_stat = { gs_name : string; gs_labels : (string * string) list; gs_value : float }

type snapshot = {
  sn_counters : (string * int) list;  (** from {!Obs.snapshot}, zeros omitted *)
  sn_gauges : gauge_stat list;  (** gauges then probes, sorted by (name, labels) *)
  sn_meters : meter_stat list;
      (** every registered meter (empties included, so exposition
          families are stable), plus plain Obs histograms not claimed by
          any meter; sorted by (name, labels) *)
}

val snapshot : unit -> snapshot

val schema : string
(** ["qcr-metrics/v1"] *)

val to_json : snapshot -> Json.t
(** Registry snapshot as JSON (schema {!schema}).  Empty-meter [min] and
    [max] and unavailable quantiles/rates serialize as [null] — never as
    non-finite numbers. *)

val prometheus : snapshot -> string
(** Prometheus-style text: counters, gauges (with labels), and meters as
    summary families ([name{labels,quantile="0.5"}], [_sum], [_count]).
    Metric names are prefixed [qcr_] with non-alphanumerics mapped to
    [_]. *)

val write_snapshot_file : string -> (unit, string) result
(** Serialize the current snapshot as JSON to a file, crash-safe via
    write-to-temp-then-rename. *)

val write_atomic : string -> string -> (unit, string) result
(** [write_atomic path content] — the underlying temp+rename write,
    exposed for other exposition writers. *)
