type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------- emit ---------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else begin
    (* shortest representation that reparses exactly *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> Buffer.add_string b (number_string f)
  | Str s -> escape_string b s
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          emit b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          emit b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

(* ---------- parse ---------- *)

exception Parse_error of int * string

let decode_point = Qcr_fault.Fault.point "json.decode"

(* Containers deeper than this fail with a parse error instead of
   descending further; the parser recurses, so the limit is what turns
   hostile [\[\[\[\[…] input into [Error] rather than [Stack_overflow]. *)
let max_depth = 512

let of_string s =
  let s = Qcr_fault.Fault.corrupt decode_point s in
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = Stdlib.incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 b code =
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xf0 lor (code lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
             let code = hex4 () in
             if code >= 0xd800 && code <= 0xdbff then begin
               (* surrogate pair *)
               if !pos + 2 > n || s.[!pos] <> '\\' || s.[!pos + 1] <> 'u' then
                 fail "lone high surrogate";
               pos := !pos + 2;
               let low = hex4 () in
               if low < 0xdc00 || low > 0xdfff then fail "invalid low surrogate";
               add_utf8 b (0x10000 + ((code - 0xd800) lsl 10) + (low - 0xdc00))
             end
             else add_utf8 b code
         | _ -> fail "unknown escape");
        loop ()
      end
      else begin
        Buffer.add_char b c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    float_of_string (String.sub s start (!pos - start))
  in
  let rec parse_value depth =
    skip_ws ();
    if depth > max_depth then fail (Printf.sprintf "nesting deeper than %d" max_depth);
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) -> Error (Printf.sprintf "at char %d: %s" p msg)
  | exception Failure msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let equal (a : t) (b : t) = a = b

(* ---------- files ---------- *)

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> (
      match of_string contents with
      | Ok v -> Ok v
      | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error e -> Error e
