(* Typed metrics registry layered on the Obs sink: meters (histogram +
   streaming top-k sketch + sliding-window rate), settable gauges, and
   callback probes, with JSON and Prometheus-style exposition.  See
   registry.mli for the quantile error-bound contract. *)

(* ---------- streaming top-k sketch ---------- *)

module Sketch = struct
  let default_cap = 128

  type t = {
    cap : int;
    mutable count : int;
    mutable len : int;
    vals : float array; (* sorted descending prefix of length [len] *)
  }

  type summary = { s_count : int; s_cap : int; s_tail : float array }

  let create ?(cap = default_cap) () =
    if cap < 1 then invalid_arg "Qcr_obs.Registry.Sketch.create: cap must be >= 1";
    { cap; count = 0; len = 0; vals = Array.make cap 0.0 }

  let clear t =
    t.count <- 0;
    t.len <- 0

  let observe t v =
    if not (Float.is_nan v) then begin
      t.count <- t.count + 1;
      if t.len < t.cap then begin
        let i = ref t.len in
        while !i > 0 && t.vals.(!i - 1) < v do
          t.vals.(!i) <- t.vals.(!i - 1);
          decr i
        done;
        t.vals.(!i) <- v;
        t.len <- t.len + 1
      end
      else if v > t.vals.(t.len - 1) then begin
        let i = ref (t.len - 1) in
        while !i > 0 && t.vals.(!i - 1) < v do
          t.vals.(!i) <- t.vals.(!i - 1);
          decr i
        done;
        t.vals.(!i) <- v
      end
    end

  let summary t = { s_count = t.count; s_cap = t.cap; s_tail = Array.sub t.vals 0 t.len }

  let empty_summary ?(cap = default_cap) () = { s_count = 0; s_cap = cap; s_tail = [||] }

  let merge a b =
    let cap = Stdlib.min a.s_cap b.s_cap in
    let all = Array.append a.s_tail b.s_tail in
    Array.sort (fun x y -> compare (y : float) x) all;
    let keep = Stdlib.min cap (Array.length all) in
    { s_count = a.s_count + b.s_count; s_cap = cap; s_tail = Array.sub all 0 keep }

  let rank_of q n = Stdlib.max 1 (Stdlib.min n (int_of_float (Float.ceil (q *. float_of_int n))))

  let quantile s q =
    if s.s_count = 0 then None
    else begin
      let n = s.s_count in
      let from_top = n - rank_of q n + 1 in
      if from_top <= Array.length s.s_tail then Some s.s_tail.(from_top - 1) else None
    end
end

(* ---------- quantile estimation from power-of-two buckets ---------- *)

let quantile_relative_error = 0.5

let quantile (s : Obs.Histogram.summary) q =
  if s.Obs.Histogram.count = 0 then None
  else begin
    let n = s.Obs.Histogram.count in
    let rank = Sketch.rank_of q n in
    let buckets = s.Obs.Histogram.buckets in
    let cum = ref 0 in
    let found = ref (Array.length buckets - 1) in
    (try
       for i = 0 to Array.length buckets - 1 do
         cum := !cum + buckets.(i);
         if !cum >= rank then begin
           found := i;
           raise Exit
         end
       done
     with Exit -> ());
    let b = !found in
    (* Bucket b >= 1 covers [2^(b-33), 2^(b-32)); use the midpoint of the
       lower half (1.5 * 2^(b-33)) and clamp into [min, max].  The true
       rank-th value lies in the same interval, so projecting the
       estimate onto [min, max] never increases the error. *)
    let est = if b = 0 then 0.0 else Float.ldexp 1.5 (b - 33) in
    Some (Float.max s.Obs.Histogram.min (Float.min s.Obs.Histogram.max est))
  end

(* ---------- sliding-window rate ---------- *)

let window_slots = 60

(* ---------- meters, gauges, probes ---------- *)

type meter = {
  mt_name : string;
  mt_labels : (string * string) list;
  mt_hist : Obs.Histogram.t;
  mt_sketch : Sketch.t;
  mt_window_secs : int array; (* which absolute second each slot holds *)
  mt_window_counts : int array;
  mt_lock : Mutex.t;
}

type gauge = { gg_name : string; gg_labels : (string * string) list; gg_value : float Atomic.t }

type probe = { pr_name : string; pr_labels : (string * string) list; pr_fn : unit -> float }

let reg_lock = Mutex.create ()

let meters : (string, meter) Hashtbl.t = Hashtbl.create 32

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let probes : (string, probe) Hashtbl.t = Hashtbl.create 16

let full_name name labels =
  match labels with
  | [] -> name
  | ls ->
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) ls)
      ^ "}"

let sort_labels labels = List.sort compare labels

let meter ?(labels = []) name =
  let labels = sort_labels labels in
  let full = full_name name labels in
  Mutex.lock reg_lock;
  let m =
    match Hashtbl.find_opt meters full with
    | Some m -> m
    | None ->
        let m =
          {
            mt_name = name;
            mt_labels = labels;
            mt_hist = Obs.histogram full;
            mt_sketch = Sketch.create ();
            mt_window_secs = Array.make window_slots min_int;
            mt_window_counts = Array.make window_slots 0;
            mt_lock = Mutex.create ();
          }
        in
        Hashtbl.add meters full m;
        m
  in
  Mutex.unlock reg_lock;
  m

let observe m v =
  Obs.observe m.mt_hist v;
  if Obs.enabled () then begin
    Mutex.lock m.mt_lock;
    Sketch.observe m.mt_sketch v;
    let sec = int_of_float (Float.floor (Obs.now ())) in
    let slot = ((sec mod window_slots) + window_slots) mod window_slots in
    if m.mt_window_secs.(slot) <> sec then begin
      m.mt_window_secs.(slot) <- sec;
      m.mt_window_counts.(slot) <- 0
    end;
    m.mt_window_counts.(slot) <- m.mt_window_counts.(slot) + 1;
    Mutex.unlock m.mt_lock
  end

let window_total m =
  let now_sec = int_of_float (Float.floor (Obs.now ())) in
  let total = ref 0 in
  for i = 0 to window_slots - 1 do
    let sec = m.mt_window_secs.(i) in
    if sec > now_sec - window_slots && sec <= now_sec then total := !total + m.mt_window_counts.(i)
  done;
  !total

let gauge ?(labels = []) name =
  let labels = sort_labels labels in
  let full = full_name name labels in
  Mutex.lock reg_lock;
  let g =
    match Hashtbl.find_opt gauges full with
    | Some g -> g
    | None ->
        let g = { gg_name = name; gg_labels = labels; gg_value = Atomic.make 0.0 } in
        Hashtbl.add gauges full g;
        g
  in
  Mutex.unlock reg_lock;
  g

let set_gauge g v = Atomic.set g.gg_value v

let register_probe ?(labels = []) name fn =
  let labels = sort_labels labels in
  let full = full_name name labels in
  Mutex.lock reg_lock;
  Hashtbl.replace probes full { pr_name = name; pr_labels = labels; pr_fn = fn };
  Mutex.unlock reg_lock

(* ---------- snapshot ---------- *)

type meter_stat = {
  ms_name : string;
  ms_labels : (string * string) list;
  ms_summary : Obs.Histogram.summary;
  ms_p50 : float option;
  ms_p90 : float option;
  ms_p99 : float option;
  ms_rate_1m : float option; (* events/s over the trailing 60 s; None for plain histograms *)
}

type gauge_stat = { gs_name : string; gs_labels : (string * string) list; gs_value : float }

type snapshot = {
  sn_counters : (string * int) list;
  sn_gauges : gauge_stat list;
  sn_meters : meter_stat list;
}

let best_quantile summary sketch q =
  match Sketch.quantile sketch q with Some v -> Some v | None -> quantile summary q

let meter_stat m =
  Mutex.lock m.mt_lock;
  let sk = Sketch.summary m.mt_sketch in
  let wt = window_total m in
  Mutex.unlock m.mt_lock;
  let s = Obs.Histogram.summary m.mt_hist in
  {
    ms_name = m.mt_name;
    ms_labels = m.mt_labels;
    ms_summary = s;
    ms_p50 = best_quantile s sk 0.5;
    ms_p90 = best_quantile s sk 0.9;
    ms_p99 = best_quantile s sk 0.99;
    ms_rate_1m = Some (float_of_int wt /. float_of_int window_slots);
  }

let by_name_labels a b =
  match compare a.ms_name b.ms_name with 0 -> compare a.ms_labels b.ms_labels | c -> c

let snapshot () =
  Mutex.lock reg_lock;
  let meter_handles = Hashtbl.fold (fun full m acc -> (full, m) :: acc) meters [] in
  let gauge_handles = Hashtbl.fold (fun _ g acc -> g :: acc) gauges [] in
  let probe_handles = Hashtbl.fold (fun _ p acc -> p :: acc) probes [] in
  Mutex.unlock reg_lock;
  let obs = Obs.snapshot () in
  let claimed = List.map fst meter_handles in
  let meter_stats = List.map (fun (_, m) -> meter_stat m) meter_handles in
  (* Plain Obs histograms (recorded outside the registry) fold in as
     bucket-only meters: quantile estimates still work, rate does not. *)
  let plain =
    List.filter_map
      (fun (name, s) ->
        if List.mem name claimed then None
        else
          Some
            {
              ms_name = name;
              ms_labels = [];
              ms_summary = s;
              ms_p50 = quantile s 0.5;
              ms_p90 = quantile s 0.9;
              ms_p99 = quantile s 0.99;
              ms_rate_1m = None;
            })
      obs.Obs.snap_histograms
  in
  let gauge_stats =
    List.map
      (fun g -> { gs_name = g.gg_name; gs_labels = g.gg_labels; gs_value = Atomic.get g.gg_value })
      gauge_handles
    @ List.filter_map
        (fun p ->
          match p.pr_fn () with
          | v -> Some { gs_name = p.pr_name; gs_labels = p.pr_labels; gs_value = v }
          | exception _ -> None)
        probe_handles
  in
  let by_gauge a b =
    match compare a.gs_name b.gs_name with 0 -> compare a.gs_labels b.gs_labels | c -> c
  in
  {
    sn_counters = obs.Obs.snap_counters;
    sn_gauges = List.sort by_gauge gauge_stats;
    sn_meters = List.sort by_name_labels (meter_stats @ plain);
  }

(* ---------- JSON exposition ---------- *)

let schema = "qcr-metrics/v1"

let num_or_null f = if Float.is_finite f then Json.Num f else Json.Null

let opt_num = function Some f when Float.is_finite f -> Json.Num f | _ -> Json.Null

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let to_json snap =
  let meter_json m =
    let s = m.ms_summary in
    Json.Obj
      [
        ("name", Json.Str m.ms_name);
        ("labels", labels_json m.ms_labels);
        ("count", Json.Num (float_of_int s.Obs.Histogram.count));
        ("sum", num_or_null s.Obs.Histogram.sum);
        ("mean", num_or_null (Obs.Histogram.mean s));
        ("min", if s.Obs.Histogram.count = 0 then Json.Null else num_or_null s.Obs.Histogram.min);
        ("max", if s.Obs.Histogram.count = 0 then Json.Null else num_or_null s.Obs.Histogram.max);
        ("p50", opt_num m.ms_p50);
        ("p90", opt_num m.ms_p90);
        ("p99", opt_num m.ms_p99);
        ("rate_1m", opt_num m.ms_rate_1m);
      ]
  in
  let gauge_json g =
    Json.Obj
      [
        ("name", Json.Str g.gs_name);
        ("labels", labels_json g.gs_labels);
        ("value", num_or_null g.gs_value);
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Num (float_of_int v))) snap.sn_counters) );
      ("gauges", Json.Arr (List.map gauge_json snap.sn_gauges));
      ("meters", Json.Arr (List.map meter_json snap.sn_meters));
    ]

(* ---------- Prometheus-style text exposition ---------- *)

let prom_name name =
  let mangled =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name
  in
  "qcr_" ^ mangled

let prom_escape v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let prom_labels = function
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) ls)
      ^ "}"

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let prometheus snap =
  let b = Buffer.create 2048 in
  let typed = Hashtbl.create 32 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (n, v) ->
      let pn = prom_name n in
      type_line pn "counter";
      Buffer.add_string b (Printf.sprintf "%s %d\n" pn v))
    snap.sn_counters;
  List.iter
    (fun g ->
      let pn = prom_name g.gs_name in
      type_line pn "gauge";
      Buffer.add_string b
        (Printf.sprintf "%s%s %s\n" pn (prom_labels g.gs_labels) (prom_float g.gs_value)))
    snap.sn_gauges;
  List.iter
    (fun m ->
      let pn = prom_name m.ms_name in
      type_line pn "summary";
      let q_line q v =
        match v with
        | None -> ()
        | Some v ->
            let labels = m.ms_labels @ [ ("quantile", q) ] in
            Buffer.add_string b (Printf.sprintf "%s%s %s\n" pn (prom_labels labels) (prom_float v))
      in
      q_line "0.5" m.ms_p50;
      q_line "0.9" m.ms_p90;
      q_line "0.99" m.ms_p99;
      let ls = prom_labels m.ms_labels in
      Buffer.add_string b
        (Printf.sprintf "%s_sum%s %s\n" pn ls (prom_float m.ms_summary.Obs.Histogram.sum));
      Buffer.add_string b
        (Printf.sprintf "%s_count%s %d\n" pn ls m.ms_summary.Obs.Histogram.count))
    snap.sn_meters;
  Buffer.contents b

(* ---------- crash-safe snapshot files ---------- *)

let write_atomic path content =
  try
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc content);
    Sys.rename tmp path;
    Ok ()
  with Sys_error e -> Error e

let write_snapshot_file path =
  let snap = snapshot () in
  write_atomic path (Json.to_string (to_json snap) ^ "\n")

(* ---------- reset integration ---------- *)

let clear_derived () =
  Mutex.lock reg_lock;
  let ms = Hashtbl.fold (fun _ m acc -> m :: acc) meters [] in
  let gs = Hashtbl.fold (fun _ g acc -> g :: acc) gauges [] in
  Mutex.unlock reg_lock;
  List.iter
    (fun m ->
      Mutex.lock m.mt_lock;
      Sketch.clear m.mt_sketch;
      Array.fill m.mt_window_secs 0 window_slots min_int;
      Array.fill m.mt_window_counts 0 window_slots 0;
      Mutex.unlock m.mt_lock)
    ms;
  List.iter (fun g -> Atomic.set g.gg_value 0.0) gs

let () = Obs.add_reset_hook clear_derived
