(** Time sources for the observability layer.

    Every timestamp the tracer records flows through a [Clock.t], so the
    whole subsystem — and anything instrumented with it, notably the A*
    solver's time budget — can run against a fake clock in tests and
    produce bit-identical traces.  [now] returns seconds as a float; only
    differences of readings are meaningful (the epoch is unspecified). *)

type t

val now : t -> float
(** One reading.  Readings from the same clock are monotone
    non-decreasing for the built-in clocks below.  Every reading passes
    the [clock.read] {!Qcr_fault.Fault} injection point, so chaos specs
    can skew or crash time for everything built on clocks. *)

val make : name:string -> (unit -> float) -> t
(** Wrap an arbitrary time source. *)

val name : t -> string

val wall : t
(** Wall-clock seconds ([Unix.gettimeofday]).  The default tracing clock:
    spans measured with it line up with externally observed latency. *)

val cpu : t
(** Process CPU seconds ([Sys.time]).  Useful to separate time spent
    computing from time spent blocked. *)

type fake

val fake : ?start:float -> ?auto_advance:float -> unit -> fake * t
(** A manually driven clock for tests.  Starts at [start] (default 0.0)
    and additionally advances by [auto_advance] (default 0.0) seconds on
    every [now] reading, which makes "the Nth reading crosses the budget"
    scenarios deterministic without any explicit stepping. *)

val advance : fake -> float -> unit
(** Move the fake clock forward by a non-negative amount. *)

val set : fake -> float -> unit
(** Jump the fake clock to an absolute reading (must not move backwards). *)
