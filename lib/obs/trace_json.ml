let us_of_seconds s = s *. 1e6

let json_of ?(process_name = "qcr") ~spans ~snapshot () =
  let epoch =
    List.fold_left (fun acc sp -> Stdlib.min acc sp.Obs.span_start) infinity spans
  in
  let epoch = if Float.is_finite epoch then epoch else 0.0 in
  let span_event sp =
    let args =
      List.map (fun (k, v) -> (k, Json.Str v)) sp.Obs.span_args
      @ [ ("depth", Json.Num (float_of_int sp.Obs.span_depth)) ]
    in
    Json.Obj
      [
        ("name", Json.Str sp.Obs.span_name);
        ("cat", Json.Str sp.Obs.span_cat);
        ("ph", Json.Str "X");
        ("ts", Json.Num (us_of_seconds (sp.Obs.span_start -. epoch)));
        ("dur", Json.Num (us_of_seconds sp.Obs.span_dur));
        ("pid", Json.Num 1.0);
        ("tid", Json.Num 1.0);
        ("args", Json.Obj args);
      ]
  in
  let trace_end =
    List.fold_left
      (fun acc sp -> Stdlib.max acc (sp.Obs.span_start +. sp.Obs.span_dur -. epoch))
      0.0 spans
  in
  let counter_event (name, value) =
    Json.Obj
      [
        ("name", Json.Str name);
        ("ph", Json.Str "C");
        ("ts", Json.Num (us_of_seconds trace_end));
        ("pid", Json.Num 1.0);
        ("args", Json.Obj [ ("value", Json.Num (float_of_int value)) ]);
      ]
  in
  let metadata =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Num 1.0);
        ("args", Json.Obj [ ("name", Json.Str process_name) ]);
      ]
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.Arr
          ((metadata :: List.map span_event spans)
          @ List.map counter_event snapshot.Obs.snap_counters) );
      ("displayTimeUnit", Json.Str "ms");
    ]

let json () = json_of ~spans:(Obs.spans ()) ~snapshot:(Obs.snapshot ()) ()

let to_string () = Json.to_string (json ())

let write_file path =
  let oc = open_out path in
  output_string oc (to_string ());
  output_char oc '\n';
  close_out oc
