(** Chrome trace-event export.

    Renders the sink's recorded spans as ["X"] (complete) events and the
    final counter values as ["C"] (counter) events in the JSON object
    format, loadable in Perfetto ({{:https://ui.perfetto.dev}ui.perfetto.dev})
    or Chrome's [about://tracing].  Timestamps are microseconds relative
    to the earliest recorded span, so traces from a fake clock are
    deterministic. *)

val json_of : ?process_name:string -> spans:Obs.span list -> snapshot:Obs.snapshot -> unit -> Json.t
(** Pure builder, for tests and custom sinks. *)

val json : unit -> Json.t
(** [json_of] applied to the current global sink state. *)

val to_string : unit -> string

val write_file : string -> unit
(** Write [to_string ()] (plus a trailing newline) to a file. *)
