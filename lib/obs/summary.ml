module Tablefmt = Qcr_util.Tablefmt
module Asciiplot = Qcr_util.Asciiplot

type agg = {
  mutable n : int;
  mutable total : float;
  mutable dmin : float;
  mutable dmax : float;
}

let span_table spans =
  let tbl : (string, agg) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun sp ->
      let a =
        match Hashtbl.find_opt tbl sp.Obs.span_name with
        | Some a -> a
        | None ->
            let a = { n = 0; total = 0.0; dmin = infinity; dmax = neg_infinity } in
            Hashtbl.add tbl sp.Obs.span_name a;
            order := sp.Obs.span_name :: !order;
            a
      in
      a.n <- a.n + 1;
      a.total <- a.total +. sp.Obs.span_dur;
      if sp.Obs.span_dur < a.dmin then a.dmin <- sp.Obs.span_dur;
      if sp.Obs.span_dur > a.dmax then a.dmax <- sp.Obs.span_dur)
    spans;
  let rows =
    List.rev !order
    |> List.map (fun name -> (name, Hashtbl.find tbl name))
    |> List.sort (fun (_, a) (_, b) -> compare b.total a.total)
  in
  let t = Tablefmt.create [ "span"; "calls"; "total ms"; "mean ms"; "min ms"; "max ms" ] in
  List.iter
    (fun (name, a) ->
      let ms x = Tablefmt.cell_float ~decimals:3 (x *. 1000.0) in
      Tablefmt.add_row t
        [
          name;
          Tablefmt.cell_int a.n;
          ms a.total;
          ms (a.total /. float_of_int a.n);
          ms a.dmin;
          ms a.dmax;
        ])
    rows;
  (t, rows <> [])

let counter_table counters =
  let t = Tablefmt.create [ "counter"; "value" ] in
  List.iter (fun (name, v) -> Tablefmt.add_row t [ name; Tablefmt.cell_int v ]) counters;
  (t, counters <> [])

let histogram_section (name, summary) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "histogram %s: count=%d mean=%.3f min=%.3f max=%.3f\n" name
       summary.Obs.Histogram.count
       (Obs.Histogram.mean summary)
       summary.Obs.Histogram.min summary.Obs.Histogram.max);
  (* only the populated buckets, labelled by upper bound exponent (bucket
     0 also catches non-positive values) *)
  let buckets = summary.Obs.Histogram.buckets in
  let bars = ref [] in
  for i = Array.length buckets - 1 downto 0 do
    if buckets.(i) > 0 then begin
      let label = if i = 0 then "<=2^-31" else Printf.sprintf "<2^%d" (i - 32 + 1) in
      bars := (label, [ float_of_int buckets.(i) ]) :: !bars
    end
  done;
  if !bars <> [] then Buffer.add_string b (Asciiplot.bars ~width:40 !bars);
  Buffer.contents b

let render_of ~spans ~snapshot =
  let b = Buffer.create 1024 in
  let spans_t, have_spans = span_table spans in
  if have_spans then begin
    Buffer.add_string b "-- spans --\n";
    Buffer.add_string b (Tablefmt.render spans_t);
    Buffer.add_char b '\n'
  end;
  let counters_t, have_counters = counter_table snapshot.Obs.snap_counters in
  if have_counters then begin
    Buffer.add_string b "-- counters --\n";
    Buffer.add_string b (Tablefmt.render counters_t);
    Buffer.add_char b '\n'
  end;
  List.iter
    (fun h -> Buffer.add_string b (histogram_section h))
    snapshot.Obs.snap_histograms;
  if Buffer.length b = 0 then Buffer.add_string b "(no telemetry recorded)\n";
  Buffer.contents b

let render () = render_of ~spans:(Obs.spans ()) ~snapshot:(Obs.snapshot ())

let print () = print_string (render ())
