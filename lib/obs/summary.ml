module Tablefmt = Qcr_util.Tablefmt
module Asciiplot = Qcr_util.Asciiplot

type agg = {
  mutable n : int;
  mutable total : float;
  mutable dmin : float;
  mutable dmax : float;
}

let span_table spans =
  let tbl : (string, agg) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun sp ->
      let a =
        match Hashtbl.find_opt tbl sp.Obs.span_name with
        | Some a -> a
        | None ->
            let a = { n = 0; total = 0.0; dmin = infinity; dmax = neg_infinity } in
            Hashtbl.add tbl sp.Obs.span_name a;
            order := sp.Obs.span_name :: !order;
            a
      in
      a.n <- a.n + 1;
      a.total <- a.total +. sp.Obs.span_dur;
      if sp.Obs.span_dur < a.dmin then a.dmin <- sp.Obs.span_dur;
      if sp.Obs.span_dur > a.dmax then a.dmax <- sp.Obs.span_dur)
    spans;
  let rows =
    List.rev !order
    |> List.map (fun name -> (name, Hashtbl.find tbl name))
    |> List.sort (fun (_, a) (_, b) -> compare b.total a.total)
  in
  let t = Tablefmt.create [ "span"; "calls"; "total ms"; "mean ms"; "min ms"; "max ms" ] in
  List.iter
    (fun (name, a) ->
      let ms x = Tablefmt.cell_float ~decimals:3 (x *. 1000.0) in
      Tablefmt.add_row t
        [
          name;
          Tablefmt.cell_int a.n;
          ms a.total;
          ms (a.total /. float_of_int a.n);
          ms a.dmin;
          ms a.dmax;
        ])
    rows;
  (t, rows <> [])

let counter_table counters =
  let t = Tablefmt.create [ "counter"; "value" ] in
  List.iter (fun (name, v) -> Tablefmt.add_row t [ name; Tablefmt.cell_int v ]) counters;
  (t, counters <> [])

(* An empty histogram carries min = infinity / max = neg_infinity; print
   those as "-" instead of a garbage column. *)
let fmt_bound count v = if count = 0 then "-" else Printf.sprintf "%.3f" v

let histogram_section (name, summary) =
  let b = Buffer.create 256 in
  let count = summary.Obs.Histogram.count in
  Buffer.add_string b
    (Printf.sprintf "histogram %s: count=%d mean=%.3f min=%s max=%s\n" name count
       (Obs.Histogram.mean summary)
       (fmt_bound count summary.Obs.Histogram.min)
       (fmt_bound count summary.Obs.Histogram.max));
  (* only the populated buckets, labelled by upper bound exponent (bucket
     0 also catches non-positive values) *)
  let buckets = summary.Obs.Histogram.buckets in
  let bars = ref [] in
  for i = Array.length buckets - 1 downto 0 do
    if buckets.(i) > 0 then begin
      let label = if i = 0 then "<=2^-31" else Printf.sprintf "<2^%d" (i - 32 + 1) in
      bars := (label, [ float_of_int buckets.(i) ]) :: !bars
    end
  done;
  if !bars <> [] then Buffer.add_string b (Asciiplot.bars ~width:40 !bars);
  Buffer.contents b

let render_of ~spans ~snapshot =
  let b = Buffer.create 1024 in
  let spans_t, have_spans = span_table spans in
  if have_spans then begin
    Buffer.add_string b "-- spans --\n";
    Buffer.add_string b (Tablefmt.render spans_t);
    Buffer.add_char b '\n'
  end;
  let counters_t, have_counters = counter_table snapshot.Obs.snap_counters in
  if have_counters then begin
    Buffer.add_string b "-- counters --\n";
    Buffer.add_string b (Tablefmt.render counters_t);
    Buffer.add_char b '\n'
  end;
  List.iter
    (fun h -> Buffer.add_string b (histogram_section h))
    snapshot.Obs.snap_histograms;
  if Buffer.length b = 0 then Buffer.add_string b "(no telemetry recorded)\n";
  Buffer.contents b

(* Registry gauges and meters (quantiles + trailing rate); meters that
   merely mirror plain Obs histograms already rendered above are shown
   with their quantile estimates, which the bucket bars cannot give. *)
let render_registry_of (snap : Registry.snapshot) =
  let b = Buffer.create 512 in
  if snap.Registry.sn_gauges <> [] then begin
    let t = Tablefmt.create [ "gauge"; "value" ] in
    List.iter
      (fun g ->
        Tablefmt.add_row t
          [
            g.Registry.gs_name
            ^ (match g.Registry.gs_labels with
              | [] -> ""
              | ls ->
                  "{"
                  ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
                  ^ "}");
            Tablefmt.cell_float ~decimals:3 g.Registry.gs_value;
          ])
      snap.Registry.sn_gauges;
    Buffer.add_string b "-- gauges --\n";
    Buffer.add_string b (Tablefmt.render t);
    Buffer.add_char b '\n'
  end;
  let metered = List.filter (fun m -> m.Registry.ms_rate_1m <> None) snap.Registry.sn_meters in
  if metered <> [] then begin
    let t = Tablefmt.create [ "meter"; "count"; "p50"; "p90"; "p99"; "rate/s" ] in
    let q = function None -> "-" | Some v -> Printf.sprintf "%.3f" v in
    List.iter
      (fun m ->
        Tablefmt.add_row t
          [
            m.Registry.ms_name
            ^ (match m.Registry.ms_labels with
              | [] -> ""
              | ls ->
                  "{"
                  ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
                  ^ "}");
            Tablefmt.cell_int m.Registry.ms_summary.Obs.Histogram.count;
            q m.Registry.ms_p50;
            q m.Registry.ms_p90;
            q m.Registry.ms_p99;
            q m.Registry.ms_rate_1m;
          ])
      metered;
    Buffer.add_string b "-- meters --\n";
    Buffer.add_string b (Tablefmt.render t);
    Buffer.add_char b '\n'
  end;
  Buffer.contents b

let render () =
  let base = render_of ~spans:(Obs.spans ()) ~snapshot:(Obs.snapshot ()) in
  (* registered-but-idle probes and empty meter families are exposition
     detail; a sink that recorded nothing still reports exactly that *)
  if base = "(no telemetry recorded)\n" then base
  else base ^ render_registry_of (Registry.snapshot ())

let print () = print_string (render ())
