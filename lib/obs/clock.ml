type t = { clock_name : string; read : unit -> float }

let read_point = Qcr_fault.Fault.point "clock.read"

(* Every reading passes the [clock.read] injection point: a [delay]
   rule skews it forward by that many seconds, [corrupt] jumps it far
   ahead, [crash] raises — simulating clock trouble for whatever sits on
   top (deadlines, spans, the A* budget) without touching the source. *)
let now t = Qcr_fault.Fault.skew read_point (t.read ())

let make ~name read = { clock_name = name; read }

let name t = t.clock_name

let wall = { clock_name = "wall"; read = Unix.gettimeofday }

let cpu = { clock_name = "cpu"; read = Sys.time }

type fake = { mutable current : float; auto_advance : float }

let fake ?(start = 0.0) ?(auto_advance = 0.0) () =
  let f = { current = start; auto_advance } in
  let read () =
    let reading = f.current in
    f.current <- f.current +. f.auto_advance;
    reading
  in
  (f, { clock_name = "fake"; read })

let advance f delta =
  if delta < 0.0 then invalid_arg "Clock.advance: negative delta";
  f.current <- f.current +. delta

let set f reading =
  if reading < f.current then invalid_arg "Clock.set: moving backwards";
  f.current <- reading
