(** Human-readable telemetry report: spans aggregated by name, counter
    values, and histogram shapes, rendered with [Qcr_util.Tablefmt] (and
    [Qcr_util.Asciiplot] bars for histogram buckets).  This is what
    [qcr_cli --metrics] prints after a run. *)

val render_of : spans:Obs.span list -> snapshot:Obs.snapshot -> string
(** Pure renderer, for tests.  Empty histograms print [min=- max=-]
    rather than the raw infinities. *)

val render_registry_of : Registry.snapshot -> string
(** Pure renderer for the registry sections (gauges table, meters with
    p50/p90/p99 and trailing rate); empty string when the registry has
    nothing to show. *)

val render : unit -> string
(** [render_of] applied to the current global sink state, followed by
    {!render_registry_of} on the current registry snapshot; just the
    placeholder line when the sink recorded nothing at all. *)

val print : unit -> unit
