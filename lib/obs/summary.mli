(** Human-readable telemetry report: spans aggregated by name, counter
    values, and histogram shapes, rendered with [Qcr_util.Tablefmt] (and
    [Qcr_util.Asciiplot] bars for histogram buckets).  This is what
    [qcr_cli --metrics] prints after a run. *)

val render_of : spans:Obs.span list -> snapshot:Obs.snapshot -> string
(** Pure renderer, for tests. *)

val render : unit -> string
(** [render_of] applied to the current global sink state. *)

val print : unit -> unit
