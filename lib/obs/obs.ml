module Counter = struct
  type t = { c_name : string; c_value : int Atomic.t }

  let name c = c.c_name

  let value c = Atomic.get c.c_value
end

module Histogram = struct
  (* Power-of-two buckets spanning 2^-32 .. 2^32: wide enough for both
     sub-microsecond durations and large raw counts without tuning. *)
  let bucket_count = 64

  let offset = 32

  type t = {
    h_name : string;
    h_lock : Mutex.t;
    mutable h_count : int;
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
    h_buckets : int array;
  }

  type summary = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : int array;
  }

  let bucket_of v =
    if v <= 0.0 || Float.is_nan v then 0
    else begin
      let _, e = Float.frexp v in
      Stdlib.min (bucket_count - 1) (Stdlib.max 0 (e + offset))
    end

  let name h = h.h_name

  let summary h =
    Mutex.lock h.h_lock;
    let s =
      {
        count = h.h_count;
        sum = h.h_sum;
        min = h.h_min;
        max = h.h_max;
        buckets = Array.copy h.h_buckets;
      }
    in
    Mutex.unlock h.h_lock;
    s

  let empty_summary =
    {
      count = 0;
      sum = 0.0;
      min = infinity;
      max = neg_infinity;
      buckets = Array.make bucket_count 0;
    }

  let merge a b =
    {
      count = a.count + b.count;
      sum = a.sum +. b.sum;
      min = Stdlib.min a.min b.min;
      max = Stdlib.max a.max b.max;
      buckets = Array.init bucket_count (fun i -> a.buckets.(i) + b.buckets.(i));
    }

  let mean s = if s.count = 0 then 0.0 else s.sum /. float_of_int s.count
end

type span = {
  span_name : string;
  span_cat : string;
  span_start : float;
  span_dur : float;
  span_depth : int;
  span_args : (string * string) list;
}

(* ---------- global sink ----------

   Counters are lock-free ([Atomic.fetch_and_add]); histograms take a
   per-histogram mutex; spans accumulate in per-domain buffers (each
   domain records its own nesting depth) that a global registry merges
   whenever the sink is read.  Interning and registry membership are
   guarded by [intern_lock]. *)

let on = Atomic.make false

let clock = ref Clock.wall

(* One span buffer per domain that has recorded anything.  Buffers stay
   registered after their domain terminates so worker spans survive until
   flush. *)
type span_buffer = {
  mutable sb_spans : span list; (* reverse end order *)
  mutable sb_depth : int;
  sb_lock : Mutex.t;
}

let intern_lock = Mutex.create ()

let buffers : span_buffer list ref = ref []

let buffer_key : span_buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { sb_spans = []; sb_depth = 0; sb_lock = Mutex.create () } in
      Mutex.lock intern_lock;
      buffers := b :: !buffers;
      Mutex.unlock intern_lock;
      b)

let counters : (string, Counter.t) Hashtbl.t = Hashtbl.create 64

let histograms : (string, Histogram.t) Hashtbl.t = Hashtbl.create 16

let enabled () = Atomic.get on

(* Sink control is only legal from the driver domain, outside parallel
   regions.  The guard itself lives here, but the knowledge of "am I
   inside a parallel region?" belongs to [Qcr_par.Pool], which installs
   a predicate at module initialization (obs cannot depend on par). *)
let parallel_guard : (unit -> bool) ref = ref (fun () -> false)

let set_parallel_guard f = parallel_guard := f

let guard_control fn =
  if !parallel_guard () then
    invalid_arg
      (Printf.sprintf "Qcr_obs.Obs.%s: sink control inside a parallel region" fn)

let reset_hooks : (unit -> unit) list ref = ref []

let add_reset_hook f =
  Mutex.lock intern_lock;
  reset_hooks := f :: !reset_hooks;
  Mutex.unlock intern_lock

let set_clock c =
  guard_control "set_clock";
  clock := c

let current_clock () = !clock

let now () = Clock.now !clock

let enable ?clock:c () =
  guard_control "enable";
  Option.iter (fun c -> clock := c) c;
  Atomic.set on true

let disable () =
  guard_control "disable";
  Atomic.set on false

let clear_spans () =
  guard_control "clear_spans";
  Mutex.lock intern_lock;
  let bufs = !buffers in
  Mutex.unlock intern_lock;
  List.iter
    (fun b ->
      Mutex.lock b.sb_lock;
      b.sb_spans <- [];
      b.sb_depth <- 0;
      Mutex.unlock b.sb_lock)
    bufs

let reset () =
  guard_control "reset";
  clear_spans ();
  Mutex.lock intern_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.Counter.c_value 0) counters;
  Hashtbl.iter
    (fun _ h ->
      Mutex.lock h.Histogram.h_lock;
      h.Histogram.h_count <- 0;
      h.Histogram.h_sum <- 0.0;
      h.Histogram.h_min <- infinity;
      h.Histogram.h_max <- neg_infinity;
      Array.fill h.Histogram.h_buckets 0 Histogram.bucket_count 0;
      Mutex.unlock h.Histogram.h_lock)
    histograms;
  let hooks = !reset_hooks in
  Mutex.unlock intern_lock;
  List.iter (fun f -> f ()) hooks

(* ---------- instrumentation ---------- *)

let counter name =
  Mutex.lock intern_lock;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
        let c = { Counter.c_name = name; c_value = Atomic.make 0 } in
        Hashtbl.add counters name c;
        c
  in
  Mutex.unlock intern_lock;
  c

let incr c = if Atomic.get on then ignore (Atomic.fetch_and_add c.Counter.c_value 1)

let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.Counter.c_value n)

let histogram name =
  Mutex.lock intern_lock;
  let h =
    match Hashtbl.find_opt histograms name with
    | Some h -> h
    | None ->
        let h =
          {
            Histogram.h_name = name;
            h_lock = Mutex.create ();
            h_count = 0;
            h_sum = 0.0;
            h_min = infinity;
            h_max = neg_infinity;
            h_buckets = Array.make Histogram.bucket_count 0;
          }
        in
        Hashtbl.add histograms name h;
        h
  in
  Mutex.unlock intern_lock;
  h

let observe h v =
  if Atomic.get on then begin
    Mutex.lock h.Histogram.h_lock;
    h.Histogram.h_count <- h.Histogram.h_count + 1;
    h.Histogram.h_sum <- h.Histogram.h_sum +. v;
    if v < h.Histogram.h_min then h.Histogram.h_min <- v;
    if v > h.Histogram.h_max then h.Histogram.h_max <- v;
    let b = Histogram.bucket_of v in
    h.Histogram.h_buckets.(b) <- h.Histogram.h_buckets.(b) + 1;
    Mutex.unlock h.Histogram.h_lock
  end

let with_span ?(cat = "qcr") ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let buf = Domain.DLS.get buffer_key in
    let start = now () in
    let my_depth = buf.sb_depth in
    buf.sb_depth <- my_depth + 1;
    let record () =
      buf.sb_depth <- my_depth;
      let stop = now () in
      let s =
        {
          span_name = name;
          span_cat = cat;
          span_start = start;
          span_dur = Stdlib.max 0.0 (stop -. start);
          span_depth = my_depth;
          span_args = args;
        }
      in
      Mutex.lock buf.sb_lock;
      buf.sb_spans <- s :: buf.sb_spans;
      Mutex.unlock buf.sb_lock
    in
    Fun.protect ~finally:record f
  end

(* ---------- inspection ---------- *)

let spans () =
  Mutex.lock intern_lock;
  let bufs = !buffers in
  Mutex.unlock intern_lock;
  let all =
    List.concat_map
      (fun b ->
        Mutex.lock b.sb_lock;
        let s = b.sb_spans in
        Mutex.unlock b.sb_lock;
        List.rev s)
      (List.rev bufs)
  in
  List.stable_sort
    (fun a b ->
      match compare a.span_start b.span_start with
      | 0 -> compare a.span_depth b.span_depth
      | c -> c)
    all

type snapshot = {
  snap_counters : (string * int) list;
  snap_histograms : (string * Histogram.summary) list;
}

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot () =
  Mutex.lock intern_lock;
  let counter_handles = Hashtbl.fold (fun name c acc -> (name, c) :: acc) counters [] in
  let histogram_handles =
    Hashtbl.fold (fun name h acc -> (name, h) :: acc) histograms []
  in
  Mutex.unlock intern_lock;
  let cs =
    List.filter_map
      (fun (name, c) ->
        let v = Counter.value c in
        if v = 0 then None else Some (name, v))
      counter_handles
  in
  let hs =
    List.filter_map
      (fun (name, h) ->
        let s = Histogram.summary h in
        if s.Histogram.count = 0 then None else Some (name, s))
      histogram_handles
  in
  { snap_counters = List.sort by_name cs; snap_histograms = List.sort by_name hs }

let merge_snapshots a b =
  let merge_assoc combine xs ys =
    let tbl = Hashtbl.create 32 in
    List.iter (fun (k, v) -> Hashtbl.replace tbl k v) xs;
    List.iter
      (fun (k, v) ->
        match Hashtbl.find_opt tbl k with
        | Some prev -> Hashtbl.replace tbl k (combine prev v)
        | None -> Hashtbl.add tbl k v)
      ys;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort by_name
  in
  {
    snap_counters = merge_assoc ( + ) a.snap_counters b.snap_counters;
    snap_histograms = merge_assoc Histogram.merge a.snap_histograms b.snap_histograms;
  }
