module Counter = struct
  type t = { c_name : string; mutable c_value : int }

  let name c = c.c_name

  let value c = c.c_value
end

module Histogram = struct
  (* Power-of-two buckets spanning 2^-32 .. 2^32: wide enough for both
     sub-microsecond durations and large raw counts without tuning. *)
  let bucket_count = 64

  let offset = 32

  type t = {
    h_name : string;
    mutable h_count : int;
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
    h_buckets : int array;
  }

  type summary = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : int array;
  }

  let bucket_of v =
    if v <= 0.0 || Float.is_nan v then 0
    else begin
      let _, e = Float.frexp v in
      Stdlib.min (bucket_count - 1) (Stdlib.max 0 (e + offset))
    end

  let name h = h.h_name

  let summary h =
    {
      count = h.h_count;
      sum = h.h_sum;
      min = h.h_min;
      max = h.h_max;
      buckets = Array.copy h.h_buckets;
    }

  let empty_summary =
    {
      count = 0;
      sum = 0.0;
      min = infinity;
      max = neg_infinity;
      buckets = Array.make bucket_count 0;
    }

  let merge a b =
    {
      count = a.count + b.count;
      sum = a.sum +. b.sum;
      min = Stdlib.min a.min b.min;
      max = Stdlib.max a.max b.max;
      buckets = Array.init bucket_count (fun i -> a.buckets.(i) + b.buckets.(i));
    }

  let mean s = if s.count = 0 then 0.0 else s.sum /. float_of_int s.count
end

type span = {
  span_name : string;
  span_cat : string;
  span_start : float;
  span_dur : float;
  span_depth : int;
  span_args : (string * string) list;
}

(* ---------- global sink ---------- *)

let on = ref false

let clock = ref Clock.wall

let recorded : span list ref = ref [] (* reverse end order *)

let depth = ref 0

let counters : (string, Counter.t) Hashtbl.t = Hashtbl.create 64

let histograms : (string, Histogram.t) Hashtbl.t = Hashtbl.create 16

let enabled () = !on

let set_clock c = clock := c

let current_clock () = !clock

let now () = Clock.now !clock

let enable ?clock:c () =
  Option.iter set_clock c;
  on := true

let disable () = on := false

let reset () =
  recorded := [];
  depth := 0;
  Hashtbl.iter (fun _ c -> c.Counter.c_value <- 0) counters;
  Hashtbl.iter
    (fun _ h ->
      h.Histogram.h_count <- 0;
      h.Histogram.h_sum <- 0.0;
      h.Histogram.h_min <- infinity;
      h.Histogram.h_max <- neg_infinity;
      Array.fill h.Histogram.h_buckets 0 Histogram.bucket_count 0)
    histograms

(* ---------- instrumentation ---------- *)

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { Counter.c_name = name; c_value = 0 } in
      Hashtbl.add counters name c;
      c

let incr c = if !on then c.Counter.c_value <- c.Counter.c_value + 1

let add c n = if !on then c.Counter.c_value <- c.Counter.c_value + n

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          Histogram.h_name = name;
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
          h_buckets = Array.make Histogram.bucket_count 0;
        }
      in
      Hashtbl.add histograms name h;
      h

let observe h v =
  if !on then begin
    h.Histogram.h_count <- h.Histogram.h_count + 1;
    h.Histogram.h_sum <- h.Histogram.h_sum +. v;
    if v < h.Histogram.h_min then h.Histogram.h_min <- v;
    if v > h.Histogram.h_max then h.Histogram.h_max <- v;
    let b = Histogram.bucket_of v in
    h.Histogram.h_buckets.(b) <- h.Histogram.h_buckets.(b) + 1
  end

let with_span ?(cat = "qcr") ?(args = []) name f =
  if not !on then f ()
  else begin
    let start = now () in
    let my_depth = !depth in
    depth := my_depth + 1;
    let record () =
      depth := my_depth;
      let stop = now () in
      recorded :=
        {
          span_name = name;
          span_cat = cat;
          span_start = start;
          span_dur = Stdlib.max 0.0 (stop -. start);
          span_depth = my_depth;
          span_args = args;
        }
        :: !recorded
    in
    Fun.protect ~finally:record f
  end

(* ---------- inspection ---------- *)

let spans () =
  List.stable_sort
    (fun a b ->
      match compare a.span_start b.span_start with
      | 0 -> compare a.span_depth b.span_depth
      | c -> c)
    (List.rev !recorded)

type snapshot = {
  snap_counters : (string * int) list;
  snap_histograms : (string * Histogram.summary) list;
}

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot () =
  let cs =
    Hashtbl.fold
      (fun name c acc -> if Counter.value c = 0 then acc else (name, Counter.value c) :: acc)
      counters []
  in
  let hs =
    Hashtbl.fold
      (fun name h acc ->
        if h.Histogram.h_count = 0 then acc else (name, Histogram.summary h) :: acc)
      histograms []
  in
  { snap_counters = List.sort by_name cs; snap_histograms = List.sort by_name hs }

let merge_snapshots a b =
  let merge_assoc combine xs ys =
    let tbl = Hashtbl.create 32 in
    List.iter (fun (k, v) -> Hashtbl.replace tbl k v) xs;
    List.iter
      (fun (k, v) ->
        match Hashtbl.find_opt tbl k with
        | Some prev -> Hashtbl.replace tbl k (combine prev v)
        | None -> Hashtbl.add tbl k v)
      ys;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort by_name
  in
  {
    snap_counters = merge_assoc ( + ) a.snap_counters b.snap_counters;
    snap_histograms = merge_assoc Histogram.merge a.snap_histograms b.snap_histograms;
  }
