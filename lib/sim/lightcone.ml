module Graph = Qcr_graph.Graph
module Circuit = Qcr_circuit.Circuit
module Noise = Qcr_arch.Noise
module Obs = Qcr_obs.Obs

let c_evaluations = Obs.counter "lightcone.evaluations"

(* Number of triangles through edge (u, v) = |N(u) ∩ N(v)|, by merging the
   two sorted adjacency rows.  O(deg u + deg v) per edge, so the whole
   energy sum is O(sum of endpoint degrees) — independent of 2^n. *)
let triangles_through g u v =
  let ru, du = Graph.adj_row g u and rv, dv = Graph.adj_row g v in
  let i = ref 0 and j = ref 0 and count = ref 0 in
  while !i < du && !j < dv do
    let a = Array.unsafe_get ru !i and b = Array.unsafe_get rv !j in
    if a = b then begin
      incr count;
      incr i;
      incr j
    end
    else if a < b then incr i
    else incr j
  done;
  !count

(* Closed-form p=1 expected cut of one edge (Wang, Hadfield, Jiang &
   Rieffel, PRA 97 022304 (2018), Thm 1): for the state
   e^{-i beta B} e^{-i gamma C} |+>^n with C = sum (1 - Z_u Z_v)/2,

     <C_uv> = 1/2
            + (1/4) sin(4 beta) sin(gamma) (cos^d gamma + cos^e gamma)
            - (1/4) sin^2(2 beta) cos^{d+e-2f}(gamma) (1 - cos^f(2 gamma))

   with d = deg(u)-1, e = deg(v)-1, and f the triangle count through the
   edge.  Everything outside the edge's one-hop lightcone commutes out of
   the expectation, which is why the cost is per-edge-local.  The repo's
   separator applies phase exp(i gamma (|E| - cut(b))) — equal to
   e^{-i gamma C} up to a global phase — and its mixer Rx(2 beta) is
   exactly e^{-i beta X}, so the formula transfers unchanged. *)
let edge_cut_expectation ~gamma ~beta ~deg_u ~deg_v ~triangles =
  let d = deg_u - 1 and e = deg_v - 1 and f = triangles in
  let cg = cos gamma in
  0.5
  +. (0.25 *. sin (4.0 *. beta) *. sin gamma
     *. ((cg ** float_of_int d) +. (cg ** float_of_int e)))
  -. 0.25
     *. (sin (2.0 *. beta) ** 2.0)
     *. (cg ** float_of_int ((d + e) - (2 * f)))
     *. (1.0 -. (cos (2.0 *. gamma) ** float_of_int f))

let expected_cut graph ~gamma ~beta =
  let total = ref 0.0 in
  Graph.iter_edges
    (fun u v ->
      total :=
        !total
        +. edge_cut_expectation ~gamma ~beta ~deg_u:(Graph.degree graph u)
             ~deg_v:(Graph.degree graph v)
             ~triangles:(triangles_through graph u v))
    graph;
  !total

let energy graph ~gamma ~beta = -.expected_cut graph ~gamma ~beta

type evaluation = { energy : float; ideal_energy : float; fidelity : float }

(* Mirrors Qaoa.evaluate's noise treatment without the 2^n distribution:
   the depolarizing channel mixes the ideal state with the maximally mixed
   one, under which every edge is cut with probability 1/2, so the noisy
   expected cut is fid * ideal + (1 - fid) * |E| / 2.  Readout error is
   not modeled (it has no per-edge-local closed form). *)
let evaluate ?noise ~graph ~compiled () =
  Obs.incr c_evaluations;
  let gamma, beta = Qaoa.angles_of_compiled compiled in
  let ideal = energy graph ~gamma ~beta in
  let fidelity =
    match noise with
    | Some model ->
        let gate_log = Circuit.log_fidelity model compiled in
        let idle_log =
          Noise.decoherence_log_fidelity ~depth:(Circuit.depth2q compiled)
            ~qubits:(Graph.vertex_count graph)
        in
        exp (gate_log +. idle_log)
    | None -> 1.0
  in
  let mixed = -.(float_of_int (Graph.edge_count graph) /. 2.0) in
  {
    energy = (fidelity *. ideal) +. ((1.0 -. fidelity) *. mixed);
    ideal_energy = ideal;
    fidelity;
  }
