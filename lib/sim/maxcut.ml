module Graph = Qcr_graph.Graph

let cut_value g bits =
  let cut = ref 0 in
  Graph.iter_edges
    (fun u v -> if (bits lsr u) land 1 <> (bits lsr v) land 1 then incr cut)
    g;
  !cut

let best_cut_brute_force g =
  let n = Graph.vertex_count g in
  if n > 24 then invalid_arg "Maxcut.best_cut_brute_force: too many vertices";
  let best = ref 0 in
  for bits = 0 to (1 lsl n) - 1 do
    best := max !best (cut_value g bits)
  done;
  !best

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

(* Cut value of every bitstring in one incremental sweep: with q the
   lowest set bit of b and rest = b without it, flipping q from 0 to 1
   cuts the edges to unset neighbors and un-cuts those to set ones, so
   cut(b) = cut(rest) + deg(q) - 2*|N(q) ∩ rest|.  O(2^n) small-popcount
   steps instead of O(2^n * |E|) edge scans; the table is the fused
   diagonal kernel's index and is meant to be cached per problem graph. *)
let cut_table g =
  let n = Graph.vertex_count g in
  if n > 24 then invalid_arg "Maxcut.cut_table: too many vertices";
  let adj = Array.make (max n 1) 0 in
  Graph.iter_edges
    (fun u v ->
      adj.(u) <- adj.(u) lor (1 lsl v);
      adj.(v) <- adj.(v) lor (1 lsl u))
    g;
  let deg = Array.init (max n 1) (fun v -> if v < n then Graph.degree g v else 0) in
  let size = 1 lsl n in
  let table = Array.make size 0 in
  for b = 1 to size - 1 do
    let q = ref 0 in
    while (b lsr !q) land 1 = 0 do
      incr q
    done;
    let rest = b land (b - 1) in
    table.(b) <- table.(rest) + deg.(!q) - (2 * popcount (rest land adj.(!q)))
  done;
  table

let expected_cut_of_table table dist =
  let total = ref 0.0 in
  Array.iteri
    (fun bits p -> if p <> 0.0 then total := !total +. (p *. float_of_int table.(bits)))
    dist;
  !total

let expectation_value_of_table table dist = -.expected_cut_of_table table dist

let expected_cut g dist =
  let total = ref 0.0 in
  Array.iteri (fun bits p -> total := !total +. (p *. float_of_int (cut_value g bits))) dist;
  !total

let expectation_value g dist = -.expected_cut g dist
