(** Dense state-vector simulator (up to ~22 qubits).

    Substrate for the real-machine experiments of §7.4: QAOA energies,
    output distributions, TVD — and for the compiled-vs-logical
    equivalence tests that certify the compiler preserves semantics.

    States with at least {!par_threshold} amplitudes run their O(2^n)
    kernels chunked across the default [Qcr_par.Pool] (sized by
    [QCR_DOMAINS]).  Every parallel kernel is elementwise, so amplitudes
    are bit-identical to the sequential sweep for any pool size. *)

type t

val par_threshold : unit -> int
(** Amplitude count (2^n) at which kernels go parallel; default [2^14]. *)

val set_par_threshold : int -> unit
(** Override the parallel threshold (clamped to >= 1).  Tests lower it to
    exercise the parallel path on small states. *)

val create : int -> t
(** |0...0> on [n] qubits.  [n] must be <= 24. *)

val create_plus : int -> t
(** |+...+> on [n] qubits: the state after a full Hadamard layer on |0...0>,
    built with one fill instead of [n] gate sweeps (bit-identical to the
    cascade). *)

val prob : t -> int -> float
(** Probability of basis state [i]: [|amp i|^2] without building the
    amplitude pair, for allocation-free sweeps over the state. *)

val reset : t -> unit
(** Return the state to |0...0> in place.  Reusing one buffer across many
    short simulations (e.g. noise trajectories) avoids re-allocating the
    two [2^n] float arrays each run. *)

val qubit_count : t -> int

val apply : t -> Qcr_circuit.Gate.t -> unit
(** Apply one gate in place.  [Measure]/[Barrier] are no-ops (measurement
    is modelled by reading the final distribution). *)

val run : Qcr_circuit.Circuit.t -> t
(** Fresh simulation of a whole circuit. *)

val apply_indexed_phases :
  t -> index:int array -> phase_re:float array -> phase_im:float array -> unit
(** Fused diagonal kernel: multiply amplitude [i] by the unit phase
    [(phase_re.(index.(i)), phase_im.(index.(i)))] in a single sweep.
    [index] must have length [2^n]; used to apply a whole QAOA cost layer
    at once (see {!Qaoa.fused_state}). *)

(** {2 Fused circuit execution}

    Runs of adjacent single-qubit gates on the same wire are composed into
    one 2x2 unitary before touching the state, so k rotations cost a single
    O(2^n) sweep.  Exact up to float round-off (single-qubit gates on
    distinct wires commute). *)

type mat2
(** A 2x2 complex matrix (a fused run of single-qubit gates). *)

type op = Op_1q of int * mat2 | Op_gate of Qcr_circuit.Gate.t

val fuse_ops : n:int -> Qcr_circuit.Gate.t list -> op list
(** Compile a gate list on [n] wires into fused ops.  Pending single-qubit
    runs flush when a multi-qubit gate touches their wire, at [Barrier],
    and at the end. *)

val apply_op : t -> op -> unit

val run_fused : Qcr_circuit.Circuit.t -> t
(** [run] through [fuse_ops]; same state as {!run} within float round-off. *)

val amplitude : t -> int -> float * float
(** (re, im) of a basis state. *)

val probabilities : t -> float array
(** Probability per basis state; sums to 1 up to float error. *)

val fidelity : t -> t -> float
(** |<a|b>|^2. *)

val norm : t -> float

val sample : Qcr_util.Prng.t -> t -> int
(** Draw one basis state from the output distribution. *)

val extract_logical :
  t -> final:Qcr_circuit.Mapping.t -> t
(** Project a compiled-circuit state on physical wires down to the logical
    wires: logical bit [l] is read from physical wire
    [Mapping.phys_of_log final l]; all dummy wires must be |0> (they only
    ever participate in SWAPs), which is checked. *)
