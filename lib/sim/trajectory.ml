module Gate = Qcr_circuit.Gate
module Circuit = Qcr_circuit.Circuit
module Mapping = Qcr_circuit.Mapping
module Noise = Qcr_arch.Noise
module Program = Qcr_circuit.Program
module Prng = Qcr_util.Prng
module Obs = Qcr_obs.Obs

let c_trajectories = Obs.counter "trajectory.trajectories"

let c_injections = Obs.counter "trajectory.pauli_injections"

let logical_distribution sv ~final =
  let n_phys = Statevector.qubit_count sv in
  let n_log = Mapping.logical_count final in
  let out = Array.make (1 lsl n_log) 0.0 in
  let probs = Statevector.probabilities sv in
  Array.iteri
    (fun i p ->
      if p > 0.0 then begin
        let j = ref 0 in
        for l = 0 to n_log - 1 do
          if (i lsr Mapping.phys_of_log final l) land 1 = 1 then j := !j lor (1 lsl l)
        done;
        ignore n_phys;
        out.(!j) <- out.(!j) +. p
      end)
    probs;
  out

(* Apply one uniformly random non-identity Pauli pair on wires (a, b):
   pick from the 15 non-identity elements of {I,X,Y,Z}^2.  Y = i X Z; the
   global phase is irrelevant, so Y is applied as X then Z. *)
let inject_pauli rng sv a b =
  Obs.incr c_injections;
  let apply_single wire = function
    | 0 -> ()
    | 1 -> Statevector.apply sv (Gate.X wire)
    | 2 ->
        (* Y (up to global phase) *)
        Statevector.apply sv (Gate.Rz (wire, Float.pi));
        Statevector.apply sv (Gate.X wire)
    | _ ->
        (* Z *)
        Statevector.apply sv (Gate.Rz (wire, Float.pi))
  in
  let k = 1 + Prng.int rng 15 in
  apply_single a (k land 3);
  apply_single b ((k lsr 2) land 3)

(* Error injection only follows two-qubit gates, so the circuit's
   single-qubit runs fuse exactly as in the noiseless path; the fused op
   list is compiled once per circuit and replayed per trajectory. *)
let run_noisy rng ~noise ~n ops =
  let sv = Statevector.create n in
  List.iter
    (fun op ->
      Statevector.apply_op sv op;
      match op with
      | Statevector.Op_gate g -> (
          match Gate.qubits g with
          | [ a; b ] when Gate.is_two_qubit g ->
              (* one error opportunity per CX of the gate's decomposition *)
              let e = Noise.cx_error noise a b in
              for _ = 1 to Gate.cx_cost g do
                if Prng.float rng 1.0 < e then inject_pauli rng sv a b
              done
          | _ -> ())
      | Statevector.Op_1q _ -> ())
    ops;
  sv

let distribution ?(seed = 19) ?(trajectories = 200) ~noise ~compiled ~final () =
  if trajectories < 1 then invalid_arg "Trajectory.distribution: trajectories < 1";
  Obs.with_span ~cat:"sim"
    ~args:[ ("trajectories", string_of_int trajectories) ]
    "trajectory.distribution"
  @@ fun () ->
  Obs.add c_trajectories trajectories;
  let rng = Prng.create seed in
  let n_log = Mapping.logical_count final in
  let n = Circuit.qubit_count compiled in
  let ops = Statevector.fuse_ops ~n (Circuit.gates compiled) in
  let acc = Array.make (1 lsl n_log) 0.0 in
  for _ = 1 to trajectories do
    let sv = run_noisy rng ~noise ~n ops in
    let d = logical_distribution sv ~final in
    Array.iteri (fun i p -> acc.(i) <- acc.(i) +. p) d
  done;
  let averaged = Array.map (fun p -> p /. float_of_int trajectories) acc in
  Channel.with_readout noise ~final averaged

let tvd_vs_ideal ?seed ?trajectories ~noise ~graph ~compiled ~final () =
  let gamma, beta = Qaoa.angles_of_compiled compiled in
  let ideal =
    Statevector.probabilities (Qaoa.fused_state (Qaoa.cost_layer_for graph) ~gamma ~beta)
  in
  let noisy = distribution ?seed ?trajectories ~noise ~compiled ~final () in
  Channel.tvd noisy ideal
