module Gate = Qcr_circuit.Gate
module Circuit = Qcr_circuit.Circuit
module Mapping = Qcr_circuit.Mapping
module Noise = Qcr_arch.Noise
module Program = Qcr_circuit.Program
module Prng = Qcr_util.Prng
module Obs = Qcr_obs.Obs

let c_trajectories = Obs.counter "trajectory.trajectories"

let c_injections = Obs.counter "trajectory.pauli_injections"

(* Fold the physical-state probabilities straight into [into] (length
   [2^n_log]) without materializing the 2^n_phys probability array: the
   Monte-Carlo loop calls this once per trajectory, so the saved
   major-heap allocation matters under multi-domain sampling. *)
let accumulate_logical sv ~final ~into =
  let n_phys = Statevector.qubit_count sv in
  let n_log = Mapping.logical_count final in
  let phys_of_log = Array.init n_log (Mapping.phys_of_log final) in
  for i = 0 to (1 lsl n_phys) - 1 do
    let p = Statevector.prob sv i in
    if p > 0.0 then begin
      let j = ref 0 in
      for l = 0 to n_log - 1 do
        if (i lsr phys_of_log.(l)) land 1 = 1 then j := !j lor (1 lsl l)
      done;
      into.(!j) <- into.(!j) +. p
    end
  done

let logical_distribution sv ~final =
  let out = Array.make (1 lsl Mapping.logical_count final) 0.0 in
  accumulate_logical sv ~final ~into:out;
  out

(* Apply one uniformly random non-identity Pauli pair on wires (a, b):
   pick from the 15 non-identity elements of {I,X,Y,Z}^2.  Y = i X Z; the
   global phase is irrelevant, so Y is applied as X then Z. *)
let inject_pauli rng sv a b =
  Obs.incr c_injections;
  let apply_single wire = function
    | 0 -> ()
    | 1 -> Statevector.apply sv (Gate.X wire)
    | 2 ->
        (* Y (up to global phase) *)
        Statevector.apply sv (Gate.Rz (wire, Float.pi));
        Statevector.apply sv (Gate.X wire)
    | _ ->
        (* Z *)
        Statevector.apply sv (Gate.Rz (wire, Float.pi))
  in
  let k = 1 + Prng.int rng 15 in
  apply_single a (k land 3);
  apply_single b ((k lsr 2) land 3)

(* Error injection only follows two-qubit gates, so the circuit's
   single-qubit runs fuse exactly as in the noiseless path; the fused op
   list is compiled once per circuit and replayed per trajectory. *)
let run_noisy_into sv rng ~noise ops =
  Statevector.reset sv;
  List.iter
    (fun op ->
      Statevector.apply_op sv op;
      match op with
      | Statevector.Op_gate g -> (
          match Gate.qubits g with
          | [ a; b ] when Gate.is_two_qubit g ->
              (* one error opportunity per CX of the gate's decomposition *)
              let e = Noise.cx_error noise a b in
              for _ = 1 to Gate.cx_cost g do
                if Prng.float rng 1.0 < e then inject_pauli rng sv a b
              done
          | _ -> ())
      | Statevector.Op_1q _ -> ())
    ops

(* Trajectories per pool chunk.  Fixed (never derived from the pool
   size) so the chunk partition — and with it the order float partial
   sums combine in — is identical for any [QCR_DOMAINS].  Small enough
   that pools larger than the physical core count still balance. *)
let traj_chunk = 4

let distribution ?(seed = 19) ?(trajectories = 200) ~noise ~compiled ~final () =
  if trajectories < 1 then invalid_arg "Trajectory.distribution: trajectories < 1";
  Obs.with_span ~cat:"sim"
    ~args:[ ("trajectories", string_of_int trajectories) ]
    "trajectory.distribution"
  @@ fun () ->
  Obs.add c_trajectories trajectories;
  (* One child stream per trajectory, pre-split sequentially from the
     seed: trajectory k sees the same randomness no matter which domain
     runs it. *)
  let rngs = Prng.split_n (Prng.create seed) trajectories in
  let n_log = Mapping.logical_count final in
  let n = Circuit.qubit_count compiled in
  let ops = Statevector.fuse_ops ~n (Circuit.gates compiled) in
  let dist_size = 1 lsl n_log in
  let acc =
    Qcr_par.Pool.map_reduce (Qcr_par.Pool.default ()) ~chunk:traj_chunk ~lo:0
      ~hi:trajectories
      ~map:(fun lo hi ->
        let part = Array.make dist_size 0.0 in
        (* One scratch state per chunk, reset between trajectories. *)
        let sv = Statevector.create n in
        for k = lo to hi - 1 do
          run_noisy_into sv rngs.(k) ~noise ops;
          accumulate_logical sv ~final ~into:part
        done;
        part)
      ~reduce:(fun a b ->
        Array.iteri (fun i p -> a.(i) <- a.(i) +. p) b;
        a)
      ~init:(Array.make dist_size 0.0)
  in
  let averaged = Array.map (fun p -> p /. float_of_int trajectories) acc in
  Channel.with_readout noise ~final averaged

let tvd_vs_ideal ?seed ?trajectories ~noise ~graph ~compiled ~final () =
  let gamma, beta = Qaoa.angles_of_compiled compiled in
  let ideal =
    Statevector.probabilities (Qaoa.fused_state (Qaoa.cost_layer_for graph) ~gamma ~beta)
  in
  let noisy = distribution ?seed ?trajectories ~noise ~compiled ~final () in
  Channel.tvd noisy ideal
