module Gate = Qcr_circuit.Gate
module Circuit = Qcr_circuit.Circuit
module Mapping = Qcr_circuit.Mapping
module Prng = Qcr_util.Prng
module Pool = Qcr_par.Pool

type t = { n : int; re : float array; im : float array }

(* Amplitude-count threshold above which the O(2^n) kernels fan out over
   the default domain pool.  Every parallel kernel is elementwise (each
   output index is computed from its own inputs only), so results are
   bit-identical to the sequential sweep for any pool size. *)
let threshold = ref (1 lsl 14)

let par_threshold () = !threshold

let set_par_threshold n = threshold := Stdlib.max 1 n

(* Run [body lo hi] over [0, size), chunked across the pool when the
   state is large enough for the fan-out to pay for itself. *)
let par_range size body =
  if size >= !threshold then Pool.for_range (Pool.default ()) ~lo:0 ~hi:size body
  else body 0 size

let create n =
  if n < 0 || n > 24 then invalid_arg "Statevector.create: supports 0..24 qubits";
  let size = 1 lsl n in
  let re = Array.make size 0.0 and im = Array.make size 0.0 in
  re.(0) <- 1.0;
  { n; re; im }

(* Return [t] to |0...0> in place.  Lets trajectory-style loops reuse one
   state buffer instead of allocating two fresh [2^n] float arrays per
   run, which keeps the Monte-Carlo hot path off the major heap. *)
let reset t =
  let re = t.re and im = t.im in
  par_range (1 lsl t.n) (fun lo hi ->
      for i = lo to hi - 1 do
        re.(i) <- 0.0;
        im.(i) <- 0.0
      done);
  re.(0) <- 1.0

let qubit_count t = t.n

let amplitude t i = (t.re.(i), t.im.(i))

let prob t i =
  let re = t.re.(i) and im = t.im.(i) in
  (re *. re) +. (im *. im)

let inv_sqrt2 = 1.0 /. sqrt 2.0

(* |+>^n directly: one fill instead of n Hadamard sweeps.  The amplitude
   is accumulated by repeated multiplication so it is bit-identical to
   applying the H cascade to |0...0>. *)
let create_plus n =
  if n < 0 || n > 24 then invalid_arg "Statevector.create_plus: supports 0..24 qubits";
  let size = 1 lsl n in
  let amp = ref 1.0 in
  for _ = 1 to n do
    amp := !amp *. inv_sqrt2
  done;
  { n; re = Array.make size !amp; im = Array.make size 0.0 }

(* Diagonal kernel: multiply amplitude i by the unit phase
   (phase_re.(index.(i)), phase_im.(index.(i))).  One sweep applies an
   arbitrary diagonal whose distinct phases are tabulated, e.g. a whole
   QAOA cost layer. *)
let apply_indexed_phases t ~index ~phase_re ~phase_im =
  let size = 1 lsl t.n in
  if Array.length index <> size then
    invalid_arg "Statevector.apply_indexed_phases: index size mismatch";
  let re = t.re and im = t.im in
  par_range size (fun lo hi ->
      for i = lo to hi - 1 do
        let k = index.(i) in
        let pr = phase_re.(k) and pi = phase_im.(k) in
        let xr = re.(i) and xi = im.(i) in
        re.(i) <- (pr *. xr) -. (pi *. xi);
        im.(i) <- (pr *. xi) +. (pi *. xr)
      done)

(* Single-qubit unitary [[a b];[c d]] with complex entries (ar+i*ai ...).
   The lower-half indices i with bit q clear come in contiguous blocks of
   [bit] separated by strides of [2*bit]; sequentially, walk them
   directly.  Above the parallel threshold, pair [p] of [size/2] maps to
   i = ((p lsr q) lsl (q+1)) lor (p land (bit-1)) — pairs are disjoint,
   so chunks of the pair range can run on any domain. *)
let apply_1q t q (ar, ai) (br, bi) (cr, ci) (dr, di) =
  let size = 1 lsl t.n in
  let bit = 1 lsl q in
  let re = t.re and im = t.im in
  let update i =
    let j = i lor bit in
    let xr = re.(i) and xi = im.(i) in
    let yr = re.(j) and yi = im.(j) in
    re.(i) <- (ar *. xr) -. (ai *. xi) +. (br *. yr) -. (bi *. yi);
    im.(i) <- (ar *. xi) +. (ai *. xr) +. (br *. yi) +. (bi *. yr);
    re.(j) <- (cr *. xr) -. (ci *. xi) +. (dr *. yr) -. (di *. yi);
    im.(j) <- (cr *. xi) +. (ci *. xr) +. (dr *. yi) +. (di *. yr)
  in
  if size >= !threshold then
    Pool.for_range (Pool.default ()) ~lo:0 ~hi:(size lsr 1) (fun lo hi ->
        for p = lo to hi - 1 do
          update (((p lsr q) lsl (q + 1)) lor (p land (bit - 1)))
        done)
  else begin
    let base = ref 0 in
    while !base < size do
      for i = !base to !base + bit - 1 do
        update i
      done;
      base := !base + (bit lsl 1)
    done
  end

let phase_on_mask t ~mask ~value (pr, pi) =
  let size = 1 lsl t.n in
  let re = t.re and im = t.im in
  par_range size (fun lo hi ->
      for i = lo to hi - 1 do
        if i land mask = value then begin
          let xr = re.(i) and xi = im.(i) in
          re.(i) <- (pr *. xr) -. (pi *. xi);
          im.(i) <- (pr *. xi) +. (pi *. xr)
        end
      done)

(* The pair-swapping kernels are guarded so that of each index pair
   (i, j) only one index passes the test: the partner index is touched
   exclusively from that iteration, never from its own, so chunked
   parallel execution stays race-free. *)
let swap_amps t pa pb =
  let size = 1 lsl t.n in
  let re = t.re and im = t.im in
  par_range size (fun lo hi ->
      for i = lo to hi - 1 do
        let ba = (i lsr pa) land 1 and bb = (i lsr pb) land 1 in
        if ba = 1 && bb = 0 then begin
          let j = i lxor ((1 lsl pa) lor (1 lsl pb)) in
          let xr = re.(i) and xi = im.(i) in
          re.(i) <- re.(j);
          im.(i) <- im.(j);
          re.(j) <- xr;
          im.(j) <- xi
        end
      done)

let cx t control target =
  let size = 1 lsl t.n in
  let re = t.re and im = t.im in
  let cbit = 1 lsl control and tbit = 1 lsl target in
  par_range size (fun lo hi ->
      for i = lo to hi - 1 do
        if i land cbit <> 0 && i land tbit = 0 then begin
          let j = i lor tbit in
          let xr = re.(i) and xi = im.(i) in
          re.(i) <- re.(j);
          im.(i) <- im.(j);
          re.(j) <- xr;
          im.(j) <- xi
        end
      done)

let rec apply t g =
  match g with
  | Gate.H q ->
      apply_1q t q (inv_sqrt2, 0.0) (inv_sqrt2, 0.0) (inv_sqrt2, 0.0) (-.inv_sqrt2, 0.0)
  | Gate.X q -> apply_1q t q (0.0, 0.0) (1.0, 0.0) (1.0, 0.0) (0.0, 0.0)
  | Gate.Rx (q, theta) ->
      let c = cos (theta /. 2.0) and s = sin (theta /. 2.0) in
      apply_1q t q (c, 0.0) (0.0, -.s) (0.0, -.s) (c, 0.0)
  | Gate.Rz (q, theta) ->
      let c = cos (theta /. 2.0) and s = sin (theta /. 2.0) in
      apply_1q t q (c, -.s) (0.0, 0.0) (0.0, 0.0) (c, s)
  | Gate.Cx (a, b) -> cx t a b
  | Gate.Cz (a, b) ->
      let mask = (1 lsl a) lor (1 lsl b) in
      phase_on_mask t ~mask ~value:mask (-1.0, 0.0)
  | Gate.Cphase (a, b, theta) ->
      let mask = (1 lsl a) lor (1 lsl b) in
      phase_on_mask t ~mask ~value:mask (cos theta, sin theta)
  | Gate.Rzz (a, b, theta) ->
      (* exp(-i theta/2 Z Z): phase e^{-i theta/2} on equal bits, e^{+i
         theta/2} on differing bits *)
      let size = 1 lsl t.n in
      let re = t.re and im = t.im in
      let c = cos (theta /. 2.0) and s = sin (theta /. 2.0) in
      par_range size (fun lo hi ->
          for i = lo to hi - 1 do
            let ba = (i lsr a) land 1 and bb = (i lsr b) land 1 in
            let pr, pi = if ba = bb then (c, -.s) else (c, s) in
            let xr = re.(i) and xi = im.(i) in
            re.(i) <- (pr *. xr) -. (pi *. xi);
            im.(i) <- (pr *. xi) +. (pi *. xr)
          done)
  | Gate.Swap (a, b) -> swap_amps t a b
  | Gate.Swap_interact (a, b, theta) ->
      apply t (Gate.Cphase (a, b, theta));
      apply t (Gate.Swap (a, b))
  | Gate.Swap_rzz (a, b, theta) ->
      apply t (Gate.Rzz (a, b, theta));
      apply t (Gate.Swap (a, b))
  | Gate.Measure _ | Gate.Barrier -> ()

let c_runs = Qcr_obs.Obs.counter "statevector.runs"

let run circuit =
  Qcr_obs.Obs.incr c_runs;
  let t = create (Circuit.qubit_count circuit) in
  List.iter (apply t) (Circuit.gates circuit);
  t

(* Fused execution: runs of single-qubit gates on the same wire are
   composed into one 2x2 unitary, so k consecutive rotations cost a single
   O(2^n) sweep.  Single-qubit gates on distinct wires act on disjoint
   tensor factors and commute exactly, which lets a whole Rz layer merge
   into the following Rx layer wire by wire. *)
type mat2 = {
  m00r : float;
  m00i : float;
  m01r : float;
  m01i : float;
  m10r : float;
  m10i : float;
  m11r : float;
  m11i : float;
}

let mat2_of_gate = function
  | Gate.H q ->
      Some
        ( q,
          {
            m00r = inv_sqrt2;
            m00i = 0.0;
            m01r = inv_sqrt2;
            m01i = 0.0;
            m10r = inv_sqrt2;
            m10i = 0.0;
            m11r = -.inv_sqrt2;
            m11i = 0.0;
          } )
  | Gate.X q ->
      Some
        ( q,
          {
            m00r = 0.0;
            m00i = 0.0;
            m01r = 1.0;
            m01i = 0.0;
            m10r = 1.0;
            m10i = 0.0;
            m11r = 0.0;
            m11i = 0.0;
          } )
  | Gate.Rx (q, theta) ->
      let c = cos (theta /. 2.0) and s = sin (theta /. 2.0) in
      Some
        ( q,
          {
            m00r = c;
            m00i = 0.0;
            m01r = 0.0;
            m01i = -.s;
            m10r = 0.0;
            m10i = -.s;
            m11r = c;
            m11i = 0.0;
          } )
  | Gate.Rz (q, theta) ->
      let c = cos (theta /. 2.0) and s = sin (theta /. 2.0) in
      Some
        ( q,
          {
            m00r = c;
            m00i = -.s;
            m01r = 0.0;
            m01i = 0.0;
            m10r = 0.0;
            m10i = 0.0;
            m11r = c;
            m11i = s;
          } )
  | _ -> None

(* b * a as matrices: a is applied to the state first. *)
let mat2_mul b a =
  let mul xr xi yr yi = ((xr *. yr) -. (xi *. yi), (xr *. yi) +. (xi *. yr)) in
  let add (xr, xi) (yr, yi) = (xr +. yr, xi +. yi) in
  let e00 = add (mul b.m00r b.m00i a.m00r a.m00i) (mul b.m01r b.m01i a.m10r a.m10i) in
  let e01 = add (mul b.m00r b.m00i a.m01r a.m01i) (mul b.m01r b.m01i a.m11r a.m11i) in
  let e10 = add (mul b.m10r b.m10i a.m00r a.m00i) (mul b.m11r b.m11i a.m10r a.m10i) in
  let e11 = add (mul b.m10r b.m10i a.m01r a.m01i) (mul b.m11r b.m11i a.m11r a.m11i) in
  {
    m00r = fst e00;
    m00i = snd e00;
    m01r = fst e01;
    m01i = snd e01;
    m10r = fst e10;
    m10i = snd e10;
    m11r = fst e11;
    m11i = snd e11;
  }

type op = Op_1q of int * mat2 | Op_gate of Gate.t

(* Compile a gate list into fused ops.  Pending per-wire matrices are
   flushed (lowest wire first) when a multi-qubit gate touches the wire,
   at a Barrier, and at the end of the list. *)
let fuse_ops ~n gates =
  let pending : mat2 option array = Array.make n None in
  let ops = ref [] in
  let flush q =
    match pending.(q) with
    | None -> ()
    | Some m ->
        ops := Op_1q (q, m) :: !ops;
        pending.(q) <- None
  in
  let flush_all () =
    for q = 0 to n - 1 do
      flush q
    done
  in
  List.iter
    (fun g ->
      match mat2_of_gate g with
      | Some (q, m) ->
          pending.(q) <-
            Some (match pending.(q) with None -> m | Some earlier -> mat2_mul m earlier)
      | None -> (
          match g with
          | Gate.Barrier -> flush_all ()
          | _ ->
              List.iter flush (List.sort compare (Gate.qubits g));
              ops := Op_gate g :: !ops))
    gates;
  flush_all ();
  List.rev !ops

let apply_op t = function
  | Op_1q (q, m) ->
      apply_1q t q (m.m00r, m.m00i) (m.m01r, m.m01i) (m.m10r, m.m10i) (m.m11r, m.m11i)
  | Op_gate g -> apply t g

let run_fused circuit =
  let n = Circuit.qubit_count circuit in
  let t = create n in
  List.iter (apply_op t) (fuse_ops ~n (Circuit.gates circuit));
  t

let probabilities t =
  let size = 1 lsl t.n in
  let out = Array.make size 0.0 in
  par_range size (fun lo hi ->
      for i = lo to hi - 1 do
        out.(i) <- (t.re.(i) *. t.re.(i)) +. (t.im.(i) *. t.im.(i))
      done);
  out

let norm t = Array.fold_left ( +. ) 0.0 (probabilities t)

let fidelity a b =
  if a.n <> b.n then invalid_arg "Statevector.fidelity: size mismatch";
  let dr = ref 0.0 and di = ref 0.0 in
  for i = 0 to (1 lsl a.n) - 1 do
    (* <a|b> = sum conj(a_i) b_i *)
    dr := !dr +. ((a.re.(i) *. b.re.(i)) +. (a.im.(i) *. b.im.(i)));
    di := !di +. ((a.re.(i) *. b.im.(i)) -. (a.im.(i) *. b.re.(i)))
  done;
  (!dr *. !dr) +. (!di *. !di)

let sample rng t =
  let probs = probabilities t in
  let target = Prng.float rng 1.0 in
  let acc = ref 0.0 and found = ref (Array.length probs - 1) in
  (try
     Array.iteri
       (fun i p ->
         acc := !acc +. p;
         if !acc >= target then begin
           found := i;
           raise Exit
         end)
       probs
   with Exit -> ());
  !found

let extract_logical t ~final =
  let n_log = Mapping.logical_count final in
  let out = create n_log in
  out.re.(0) <- 0.0;
  let size = 1 lsl t.n in
  let leaked = ref 0.0 in
  for i = 0 to size - 1 do
    let p = (t.re.(i) *. t.re.(i)) +. (t.im.(i) *. t.im.(i)) in
    if p > 0.0 then begin
      (* dummy wires must be 0 *)
      let ok = ref true in
      for phys = 0 to t.n - 1 do
        if Mapping.is_dummy final (Mapping.log_of_phys final phys) && (i lsr phys) land 1 = 1
        then ok := false
      done;
      if !ok then begin
        let j = ref 0 in
        for l = 0 to n_log - 1 do
          if (i lsr Mapping.phys_of_log final l) land 1 = 1 then j := !j lor (1 lsl l)
        done;
        out.re.(!j) <- t.re.(i);
        out.im.(!j) <- t.im.(i)
      end
      else leaked := !leaked +. p
    end
  done;
  if !leaked > 1e-9 then failwith "Statevector.extract_logical: dummy wires not |0>";
  out
