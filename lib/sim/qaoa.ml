module Graph = Qcr_graph.Graph
module Circuit = Qcr_circuit.Circuit
module Gate = Qcr_circuit.Gate
module Program = Qcr_circuit.Program
module Mapping = Qcr_circuit.Mapping
module Noise = Qcr_arch.Noise
module Prng = Qcr_util.Prng
module Obs = Qcr_obs.Obs

let c_fused_states = Obs.counter "qaoa.fused_states"

let c_evaluations = Obs.counter "qaoa.evaluations"

let c_shots = Obs.counter "qaoa.shots_sampled"

type evaluation = {
  distribution : float array;
  energy : float;
  fidelity : float;
}

(* Recover the QAOA angles embedded in a compiled circuit: the first
   Cphase/Swap_interact carries 2*gamma, the first Rx carries 2*beta. *)
let angles_of_compiled compiled =
  let gamma = ref None and beta = ref None in
  List.iter
    (fun g ->
      match g with
      | Gate.Cphase (_, _, t) | Gate.Swap_interact (_, _, t) ->
          if !gamma = None then gamma := Some (t /. 2.0)
      | Gate.Rx (_, t) -> if !beta = None then beta := Some (t /. 2.0)
      | _ -> ())
    (Circuit.gates compiled);
  (Option.value ~default:0.0 !gamma, Option.value ~default:0.0 !beta)

(* Fused diagonal cost layer: the p=1 Max-Cut phase separator — CPHASE(2γ)
   per edge plus the per-qubit Rz(-γ·deg) corrections of
   Program.epilogue — is diagonal, and its total phase on basis state b
   collapses to exp(i γ (|E| - cut(b))).  Precomputing cut(b) once per
   problem graph turns the |E| separate O(2^n) phase_on_mask sweeps per
   evaluation into a single indexed sweep, amortized across every
   optimizer iteration. *)
type cost_layer = {
  layer_graph : Graph.t;
  layer_edges : int; (* snapshot to invalidate the cache if the graph mutates *)
  cut : int array; (* cut value per basis state, length 2^n *)
}

let cost_layer graph =
  { layer_graph = graph; layer_edges = Graph.edge_count graph; cut = Maxcut.cut_table graph }

(* One-slot cache: optimizer drivers evaluate the same graph hundreds of
   times in a row, so physical identity plus an edge-count guard is
   enough.  Atomic so concurrent evaluations on different domains at
   worst recompute the table, never observe a torn layer. *)
let layer_cache = Atomic.make None

let cost_layer_for graph =
  match Atomic.get layer_cache with
  | Some layer when layer.layer_graph == graph && layer.layer_edges = Graph.edge_count graph
    ->
      layer
  | _ ->
      let layer = cost_layer graph in
      Atomic.set layer_cache (Some layer);
      layer

(* The exact state Statevector.run produces for the p=1 QAOA logical
   circuit (H layer, diagonal separator, Rx mixer), via the fused kernel. *)
let fused_state layer ~gamma ~beta =
  Obs.incr c_fused_states;
  let n = Graph.vertex_count layer.layer_graph in
  let sv = Statevector.create_plus n in
  let m = layer.layer_edges in
  let phase_re = Array.init (m + 1) (fun k -> cos (gamma *. float_of_int (m - k)))
  and phase_im = Array.init (m + 1) (fun k -> sin (gamma *. float_of_int (m - k))) in
  Statevector.apply_indexed_phases sv ~index:layer.cut ~phase_re ~phase_im;
  for q = 0 to n - 1 do
    Statevector.apply sv (Gate.Rx (q, 2.0 *. beta))
  done;
  sv

let evaluate ?noise ?shots ?rng ?cost ~graph ~compiled ~final () =
  Obs.incr c_evaluations;
  (match shots with Some s -> Obs.add c_shots s | None -> ());
  let gamma, beta = angles_of_compiled compiled in
  let layer = match cost with Some layer -> layer | None -> cost_layer_for graph in
  let ideal = fused_state layer ~gamma ~beta in
  let probs = Statevector.probabilities ideal in
  let fidelity =
    match noise with
    | Some model ->
        let gate_log = Circuit.log_fidelity model compiled in
        let idle_log =
          Noise.decoherence_log_fidelity ~depth:(Circuit.depth2q compiled)
            ~qubits:(Graph.vertex_count graph)
        in
        exp (gate_log +. idle_log)
    | None -> 1.0
  in
  let dist = Channel.depolarize ~fidelity probs in
  let dist =
    match noise with
    | Some model -> Channel.with_readout model ~final dist
    | None -> dist
  in
  let dist =
    match (shots, rng) with
    | Some s, Some r -> Channel.sample_counts r ~shots:s dist
    | _ -> dist
  in
  { distribution = dist; energy = Maxcut.expectation_value_of_table layer.cut dist; fidelity }

type driver_result = {
  energies : float array;
  best_gamma : float;
  best_beta : float;
  best_energy : float;
  optimum_cut : int;
}

let run_driver ?(rounds = 30) ?(shots = 8000) ?(seed = 11) ?noise ~graph ~compile () =
  Obs.with_span ~cat:"sim"
    ~args:
      [
        ("n", string_of_int (Graph.vertex_count graph));
        ("rounds", string_of_int rounds);
      ]
    "qaoa.run_driver"
  @@ fun () ->
  let rng = Prng.create seed in
  let cost = cost_layer_for graph in
  let objective angles =
    let gamma = angles.(0) and beta = angles.(1) in
    let program = Program.make graph (Program.Qaoa_maxcut { gamma; beta }) in
    let compiled, final = compile program in
    let e = evaluate ?noise ~shots ~rng ~cost ~graph ~compiled ~final () in
    e.energy
  in
  (* Seed the simplex from a coarse angle grid (as one would on hardware:
     a handful of cheap scans before the optimizer takes over), so the
     local search starts inside the productive p=1 angle basin. *)
  let gammas = [ 0.1; 0.3; 0.5 ] and betas = [ 0.15; 0.35 ] in
  let init =
    List.concat_map (fun g -> List.map (fun b -> [| g; b |]) betas) gammas
    |> List.map (fun p -> (objective p, p))
    |> List.fold_left (fun (bv, bp) (v, p) -> if v < bv then (v, p) else (bv, bp)) (infinity, [| 0.4; 0.35 |])
    |> snd
  in
  let best_point, best_value, trace =
    Optimizer.nelder_mead ~max_rounds:rounds ~init_step:0.15 ~f:objective ~init ()
  in
  {
    energies = trace.Optimizer.round_best;
    best_gamma = best_point.(0);
    best_beta = best_point.(1);
    best_energy = best_value;
    optimum_cut = Array.fold_left max 0 cost.cut;
  }
