(** Monte-Carlo Pauli-trajectory noise simulation.

    The channel model used for the large experiments ({!Channel}) collapses
    all gate noise into one depolarizing mixture.  For small devices this
    module simulates noise properly: each trajectory runs the *compiled*
    circuit and, after every two-qubit gate, injects a uniformly random
    non-identity two-qubit Pauli on its wires with the link's error
    probability (per CX of the gate's cost); averaging trajectory output
    distributions converges to the true Pauli-noise channel.  Readout
    errors are applied to the averaged distribution.

    Used in tests and the evaluation to validate the cheap channel
    approximation (they agree on ordering and roughly on magnitude). *)

val traj_chunk : int
(** Trajectories per pool chunk in {!distribution}.  A fixed constant
    (never derived from the pool size) so the chunk partition — and the
    order partial sums combine in — is the same for every [QCR_DOMAINS]. *)

val logical_distribution :
  Statevector.t -> final:Qcr_circuit.Mapping.t -> float array
(** Marginalize a physical-wire state onto the logical wires through the
    final mapping, tracing out dummy wires (which noise may excite). *)

val distribution :
  ?seed:int ->
  ?trajectories:int ->
  noise:Qcr_arch.Noise.t ->
  compiled:Qcr_circuit.Circuit.t ->
  final:Qcr_circuit.Mapping.t ->
  unit ->
  float array
(** Average logical output distribution over [trajectories] (default 200)
    noisy runs.  Each trajectory draws from its own child PRNG stream
    ([Prng.split_n] of the seed) and the trajectories fan out across the
    default [Qcr_par.Pool] in fixed-size chunks whose partial sums
    combine in chunk order, so the result is deterministic for a fixed
    [seed] — bit-identical for any [QCR_DOMAINS] value. *)

val tvd_vs_ideal :
  ?seed:int ->
  ?trajectories:int ->
  noise:Qcr_arch.Noise.t ->
  graph:Qcr_graph.Graph.t ->
  compiled:Qcr_circuit.Circuit.t ->
  final:Qcr_circuit.Mapping.t ->
  unit ->
  float
(** Convenience: TVD between the trajectory-noise output and the ideal
    logical distribution of the same circuit. *)
