(** End-to-end QAOA driver (paper §7.4): compiled circuit -> simulator ->
    noise channel -> expected Max-Cut energy -> classical optimizer loop.

    [run_driver] mirrors the paper's real-machine experiment: the circuit
    structure (two-qubit blocks, SWAPs) is compiled once; only the rotation
    angles change between optimizer rounds, so each evaluation rebuilds the
    gate parameters on the fixed structure. *)

val angles_of_compiled : Qcr_circuit.Circuit.t -> float * float
(** Recover (gamma, beta) from a compiled QAOA circuit's first interaction
    and mixer gates (used by the evaluation helpers). *)

type evaluation = {
  distribution : float array;  (** noisy output distribution over 2^n *)
  energy : float;              (** negated expected cut (smaller better) *)
  fidelity : float;            (** exp of the compiled circuit's log-fidelity *)
}

type cost_layer = {
  layer_graph : Qcr_graph.Graph.t;
  layer_edges : int;
  cut : int array;  (** {!Maxcut.cut_table} of [layer_graph] *)
}
(** Precomputed fused diagonal cost layer for one problem graph.  The p=1
    Max-Cut phase separator (per-edge CPHASE(2γ) plus the Rz corrections)
    is diagonal with phase [exp(i γ (|E| - cut(b)))] on basis state [b],
    so with [cut] tabulated any γ applies in a single sweep. *)

val cost_layer : Qcr_graph.Graph.t -> cost_layer

val cost_layer_for : Qcr_graph.Graph.t -> cost_layer
(** Like {!cost_layer} with a one-slot cache keyed on physical graph
    identity (guarded by edge count), so optimizer loops that re-evaluate
    one graph hundreds of times build the table once. *)

val fused_state : cost_layer -> gamma:float -> beta:float -> Statevector.t
(** The ideal p=1 QAOA state (H layer, phase separator, Rx mixer) — the
    same state [Statevector.run] produces for the logical circuit, within
    1e-9 per amplitude, in O(2^n) + n sweeps instead of |E| + 3n. *)

val evaluate :
  ?noise:Qcr_arch.Noise.t ->
  ?shots:int ->
  ?rng:Qcr_util.Prng.t ->
  ?cost:cost_layer ->
  graph:Qcr_graph.Graph.t ->
  compiled:Qcr_circuit.Circuit.t ->
  final:Qcr_circuit.Mapping.t ->
  unit ->
  evaluation
(** Simulate a compiled QAOA circuit.  The simulation runs the *logical*
    equivalent (ideal fused-kernel state for [graph] + the compiled
    angles) — semantics equality is certified separately in tests — with
    the compiled circuit determining the depolarizing fidelity.  With
    [shots] the distribution carries shot noise.  [cost] supplies a
    precomputed {!cost_layer} (defaults to {!cost_layer_for}). *)

type driver_result = {
  energies : float array;      (** best-so-far energy after each round *)
  best_gamma : float;
  best_beta : float;
  best_energy : float;
  optimum_cut : int;           (** exact max cut (from the cut table), for reference *)
}

val run_driver :
  ?rounds:int ->
  ?shots:int ->
  ?seed:int ->
  ?noise:Qcr_arch.Noise.t ->
  graph:Qcr_graph.Graph.t ->
  compile:
    (Qcr_circuit.Program.t ->
    Qcr_circuit.Circuit.t * Qcr_circuit.Mapping.t) ->
  unit ->
  driver_result
(** Full optimization loop: [compile] maps a parameterized program to a
    compiled circuit + final mapping (called once per evaluation with
    fresh angles; structure is deterministic).  Uses Nelder–Mead
    (COBYLA substitute). *)
