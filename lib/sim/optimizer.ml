type trace = { round_best : float array; evaluations : int }

module Obs = Qcr_obs.Obs

let c_runs = Obs.counter "optimizer.runs"

let c_rounds = Obs.counter "optimizer.rounds"

let c_evaluations = Obs.counter "optimizer.evaluations"

(* Standard Nelder-Mead coefficients. *)
let alpha = 1.0 (* reflection *)
let gamma = 2.0 (* expansion *)
let rho = 0.5 (* contraction *)
let sigma = 0.5 (* shrink *)

let nelder_mead ?(max_rounds = 30) ?(init_step = 0.3) ~f ~init () =
  let dim = Array.length init in
  if dim = 0 then invalid_arg "Optimizer.nelder_mead: empty parameter vector";
  Obs.with_span ~cat:"sim"
    ~args:[ ("dim", string_of_int dim); ("max_rounds", string_of_int max_rounds) ]
    "optimizer.nelder_mead"
  @@ fun () ->
  let evaluations = ref 0 in
  let eval x =
    incr evaluations;
    f x
  in
  (* simplex of dim+1 points *)
  let points =
    Array.init (dim + 1) (fun i ->
        let p = Array.copy init in
        if i > 0 then p.(i - 1) <- p.(i - 1) +. init_step;
        p)
  in
  let values = Array.map eval points in
  let order () =
    let idx = Array.init (dim + 1) (fun i -> i) in
    Array.sort (fun a b -> compare values.(a) values.(b)) idx;
    idx
  in
  let round_best = Array.make max_rounds infinity in
  let best_so_far = ref values.(0) in
  Array.iter (fun v -> if v < !best_so_far then best_so_far := v) values;
  for round = 0 to max_rounds - 1 do
    let idx = order () in
    let best = idx.(0) and worst = idx.(dim) and second_worst = idx.(dim - 1) in
    (* centroid of all but worst *)
    let centroid = Array.make dim 0.0 in
    Array.iteri
      (fun rank i ->
        if rank < dim then
          Array.iteri (fun d x -> centroid.(d) <- centroid.(d) +. (x /. float_of_int dim)) points.(i)
        else ignore rank)
      idx;
    (* r = centroid + alpha * (centroid - worst) *)
    let reflected =
      Array.init dim (fun d -> centroid.(d) +. (alpha *. (centroid.(d) -. points.(worst).(d))))
    in
    let fr = eval reflected in
    if fr < values.(best) then begin
      let expanded =
        Array.init dim (fun d -> centroid.(d) +. (gamma *. (centroid.(d) -. points.(worst).(d))))
      in
      let fe = eval expanded in
      if fe < fr then begin
        points.(worst) <- expanded;
        values.(worst) <- fe
      end
      else begin
        points.(worst) <- reflected;
        values.(worst) <- fr
      end
    end
    else if fr < values.(second_worst) then begin
      points.(worst) <- reflected;
      values.(worst) <- fr
    end
    else begin
      let contracted =
        Array.init dim (fun d -> centroid.(d) +. (rho *. (points.(worst).(d) -. centroid.(d))))
      in
      let fc = eval contracted in
      if fc < values.(worst) then begin
        points.(worst) <- contracted;
        values.(worst) <- fc
      end
      else
        (* shrink toward best *)
        Array.iteri
          (fun rank i ->
            if rank > 0 then begin
              points.(i) <-
                Array.init dim (fun d ->
                    points.(idx.(0)).(d) +. (sigma *. (points.(i).(d) -. points.(idx.(0)).(d))));
              values.(i) <- eval points.(i)
            end)
          idx
    end;
    Array.iter (fun v -> if v < !best_so_far then best_so_far := v) values;
    round_best.(round) <- !best_so_far
  done;
  let idx = order () in
  Obs.incr c_runs;
  Obs.add c_rounds max_rounds;
  Obs.add c_evaluations !evaluations;
  (points.(idx.(0)), values.(idx.(0)), { round_best; evaluations = !evaluations })
