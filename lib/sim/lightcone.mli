(** Analytic level-1 QAOA Max-Cut evaluator.

    At p=1 the expectation of each edge term depends only on the edge's
    one-hop lightcone (the two endpoint degrees and the number of
    triangles through the edge), for which a closed form is known (Wang,
    Hadfield, Jiang & Rieffel, PRA 97 022304 (2018)).  That makes the
    expected energy of a compiled QAOA circuit computable in O(|E| · avg
    degree) — no statevector — so circuit quality is reportable at
    1000-qubit scale where 2^n simulation is unthinkable.  Agreement with
    the {!Statevector} path is certified to 1e-9 by qcheck tests. *)

val triangles_through : Qcr_graph.Graph.t -> int -> int -> int
(** [triangles_through g u v] is the number of common neighbors of [u]
    and [v] — the triangle count through the edge.  O(deg u + deg v). *)

val edge_cut_expectation :
  gamma:float -> beta:float -> deg_u:int -> deg_v:int -> triangles:int -> float
(** Closed-form p=1 expected cut contribution of a single edge whose
    endpoints have the given degrees and triangle count. *)

val expected_cut : Qcr_graph.Graph.t -> gamma:float -> beta:float -> float
(** Sum of {!edge_cut_expectation} over all edges: the exact p=1 QAOA
    expected cut of the whole graph. *)

val energy : Qcr_graph.Graph.t -> gamma:float -> beta:float -> float
(** Negated {!expected_cut} — same sign convention as
    {!Maxcut.expectation_value} (smaller is better). *)

type evaluation = {
  energy : float;       (** fidelity-weighted energy (see below) *)
  ideal_energy : float; (** noiseless analytic energy *)
  fidelity : float;     (** exp of the compiled circuit's log-fidelity *)
}

val evaluate :
  ?noise:Qcr_arch.Noise.t ->
  graph:Qcr_graph.Graph.t ->
  compiled:Qcr_circuit.Circuit.t ->
  unit ->
  evaluation
(** Analytic counterpart of {!Qaoa.evaluate}: recovers (gamma, beta) from
    the compiled circuit, computes the ideal energy in closed form, and
    applies the depolarizing-channel fidelity of the compiled circuit —
    under the maximally mixed state every edge is cut with probability
    1/2, so [energy = fid * ideal + (1 - fid) * (-|E|/2)].  Readout error
    is not modeled. *)
