(** Max-Cut objective helpers (the QAOA application of §7.4). *)

val cut_value : Qcr_graph.Graph.t -> int -> int
(** [cut_value g bits]: edges of [g] whose endpoints get different bits in
    the basis-state index [bits]. *)

val best_cut_brute_force : Qcr_graph.Graph.t -> int
(** Exact optimum by enumeration (n <= 24). *)

val expected_cut : Qcr_graph.Graph.t -> float array -> float
(** Expectation of the cut value under an output distribution. *)

val expectation_value : Qcr_graph.Graph.t -> float array -> float
(** The paper's plotted quantity: the *negated* expected cut (smaller is
    better, Figs 24–25). *)

val cut_table : Qcr_graph.Graph.t -> int array
(** [cut_value g b] for every basis state [b], as one length-[2^n] table
    computed in a single incremental sweep (O(2^n) instead of
    O(2^n * |E|)).  Cache it per problem graph: it indexes the fused
    diagonal QAOA kernel and makes expectation values O(2^n). *)

val expected_cut_of_table : int array -> float array -> float
(** {!expected_cut} against a precomputed {!cut_table}. *)

val expectation_value_of_table : int array -> float array -> float
(** {!expectation_value} against a precomputed {!cut_table}. *)
