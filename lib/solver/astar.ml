module Graph = Qcr_graph.Graph
module Paths = Qcr_graph.Paths
module Mapping = Qcr_circuit.Mapping
module Bitset = Qcr_util.Bitset
module Pqueue = Qcr_util.Pqueue
module Zobrist = Qcr_util.Zobrist
module Obs = Qcr_obs.Obs
module Clock = Qcr_obs.Clock

(* Telemetry: counters accumulate locally in the hot loop and flush once
   per solve, so the search pays nothing for instrumentation beyond the
   flag checks at the flush site. *)
let c_solves = Obs.counter "astar.solves"

let c_expanded = Obs.counter "astar.expanded"

let c_heuristic = Obs.counter "astar.heuristic_evals"

let c_pushed = Obs.counter "astar.pushed"

let c_closed_hits = Obs.counter "astar.closed_hits"

let c_collisions = Obs.counter "astar.collisions"

let c_budget_cut = Obs.counter "astar.budget_cut"

let h_expanded = Obs.histogram "astar.expanded_per_solve"

type action =
  | Do_gate of int * int
  | Do_swap of int * int

type outcome = {
  depth : int;
  cycles : action list list;
  swap_total : int;
  expanded : int;
  collisions : int;
  optimal : bool;
}

type node = {
  g : int;
  swaps_so_far : int;
  l_of_p : int array; (* physical -> logical (incl. dummies) *)
  remaining : Bitset.t; (* bit u*n_log + v for u < v *)
  degree : int array; (* remaining degree per logical *)
  h1 : int; (* primary Zobrist hash of (l_of_p, remaining) *)
  h2 : int; (* independent verification hash: collision detector *)
  parent : node option;
  via : action list; (* actions of the cycle leading here *)
}

let pair_bit n_log u v =
  let lo = min u v and hi = max u v in
  (lo * n_log) + hi

let key_of node =
  let b = Buffer.create 32 in
  Array.iter (fun l -> Buffer.add_char b (Char.chr (l land 0xff))) node.l_of_p;
  Buffer.add_string b (Bitset.hash_key node.remaining);
  Buffer.contents b

let solve ?(node_budget = 2_000_000) ?time_budget ?(weight = 1.0) ?(keying = `Zobrist)
    ?clock ~problem ~coupling ~init () =
  let n_log = Graph.vertex_count problem in
  let n_phys = Graph.vertex_count coupling in
  if n_log > Mapping.logical_count init then invalid_arg "Astar.solve: mapping too small";
  if n_phys > 255 then invalid_arg "Astar.solve: solver is for small devices";
  Obs.with_span ~cat:"solver"
    ~args:[ ("n_log", string_of_int n_log); ("n_phys", string_of_int n_phys) ]
    "astar.solve"
  @@ fun () ->
  (* a clock (wall by default), not Sys.time (process CPU time); only
     sampled every 256 expansions, so the read stays off the hot loop *)
  let clock = match clock with Some c -> c | None -> Obs.current_clock () in
  let started = Clock.now clock in
  let out_of_time () =
    match time_budget with
    | None -> false
    | Some limit -> Clock.now clock -. started > limit
  in
  let dists = Paths.all_pairs coupling in
  let dist p q = Paths.distance dists p q in
  let edges = Array.of_list (Graph.edges coupling) in
  (* Zobrist feature tables: one word per (physical wire, logical value)
     mapping assignment and one per remaining problem edge, in two
     independent copies — h1 keys the closed set, h2 disambiguates h1
     collisions (and counts them). *)
  let zmap1 = Zobrist.table ~seed:0x51a11 (n_phys * n_phys)
  and zmap2 = Zobrist.table ~seed:0x51a22 (n_phys * n_phys)
  and zrem1 = Zobrist.table ~seed:0x51a33 (n_log * n_log)
  and zrem2 = Zobrist.table ~seed:0x51a44 (n_log * n_log) in
  let root_remaining = Bitset.create (n_log * n_log) in
  Graph.iter_edges (fun u v -> Bitset.add root_remaining (pair_bit n_log u v)) problem;
  let root_degree = Array.init n_log (fun v -> Graph.degree problem v) in
  let root_l_of_p = Array.init n_phys (fun p -> Mapping.log_of_phys init p) in
  let root =
    {
      g = 0;
      swaps_so_far = 0;
      l_of_p = root_l_of_p;
      remaining = root_remaining;
      degree = root_degree;
      h1 =
        Zobrist.fold_array zmap1 ~stride:n_phys root_l_of_p
        lxor Zobrist.fold_bitset zrem1 root_remaining;
      h2 =
        Zobrist.fold_array zmap2 ~stride:n_phys root_l_of_p
        lxor Zobrist.fold_bitset zrem2 root_remaining;
      parent = None;
      via = [];
    }
  in
  (* pair_cost is a pure function of (deg_u, deg_v, distance) on small
     bounded domains; memoize it so the per-remaining-edge heuristic loop
     costs two array reads instead of an O(distance) scan *)
  let cost_memo = Array.make (n_log * n_log * (n_phys + 1)) (-1) in
  let pair_cost_memo deg_u deg_v d =
    if d > n_phys then Heuristic.pair_cost ~deg_i:deg_u ~deg_j:deg_v ~dist:d
    else begin
      let idx = (((deg_u * n_log) + deg_v) * (n_phys + 1)) + d in
      let c = cost_memo.(idx) in
      if c >= 0 then c
      else begin
        let c = Heuristic.pair_cost ~deg_i:deg_u ~deg_j:deg_v ~dist:d in
        cost_memo.(idx) <- c;
        c
      end
    end
  in
  let phys_of_log = Array.make n_log (-1) in
  let h_evals = ref 0 in
  let heuristic node =
    incr h_evals;
    Array.iteri (fun p l -> if l < n_log then phys_of_log.(l) <- p) node.l_of_p;
    let best = ref 0 in
    Bitset.iter
      (fun bit ->
        let u = bit / n_log and v = bit mod n_log in
        let d = max 1 (dist phys_of_log.(u) phys_of_log.(v)) in
        let c = pair_cost_memo node.degree.(u) node.degree.(v) d in
        if c > !best then best := c)
      node.remaining;
    !best
  in
  (* Depth is the primary objective (the admissible f = g + h); among
     equal-depth candidates, fewer SWAPs so far break the tie, which keeps
     depth-optimality while curbing gratuitous parallel SWAPs. *)
  let priority node =
    let f = node.g + int_of_float (ceil (weight *. float_of_int (heuristic node))) in
    (f * 4096) + min node.swaps_so_far 4095
  in
  let queue = Pqueue.create () in
  let collisions = ref 0 in
  (* closed set, keyed by hash instead of a serialized node: h1 indexes the
     table, h2 disambiguates distinct states sharing h1 (counted as
     collisions).  Values hold the best g seen, mutable for decrease-key. *)
  let closed_z : (int, int * int ref) Hashtbl.t = Hashtbl.create 4096 in
  let closed_s : (string, int ref) Hashtbl.t = Hashtbl.create 4096 in
  let closed_hits = ref 0 in
  (* record [node] in the closed set; true when it improves on every copy
     seen so far and should be pushed *)
  let visit_raw node =
    match keying with
    | `Zobrist -> (
        (* fast path: at most one binding per h1 in practice; the find_all
           scan only runs on a genuine primary-hash collision *)
        match Hashtbl.find_opt closed_z node.h1 with
        | Some (h2, gref) when h2 = node.h2 ->
            if !gref <= node.g then false
            else begin
              gref := node.g;
              true
            end
        | None ->
            Hashtbl.add closed_z node.h1 (node.h2, ref node.g);
            true
        | Some _ -> (
            let rec scan = function
              | [] -> None
              | (h2, gref) :: _ when h2 = node.h2 -> Some gref
              | _ :: rest -> scan rest
            in
            match scan (Hashtbl.find_all closed_z node.h1) with
            | Some gref ->
                if !gref <= node.g then false
                else begin
                  gref := node.g;
                  true
                end
            | None ->
                incr collisions;
                Hashtbl.add closed_z node.h1 (node.h2, ref node.g);
                true))
    | `String -> (
        let key = key_of node in
        match Hashtbl.find_opt closed_s key with
        | Some gref ->
            if !gref <= node.g then false
            else begin
              gref := node.g;
              true
            end
        | None ->
            Hashtbl.add closed_s key (ref node.g);
            true)
  in
  let visit node =
    let fresh = visit_raw node in
    if not fresh then incr closed_hits;
    fresh
  in
  let pushed = ref 1 in
  Pqueue.push queue ~prio:(priority root) root;
  ignore (visit root);
  let expanded = ref 0 in
  let solution = ref None in
  let budget_hit = ref false in
  (* Enumerate one cycle's action sets: per coupling edge choose idle /
     swap / gate (gate only when the logical pair owes one), endpoints
     disjoint; prune non-gate-maximal leaves and the all-idle leaf. *)
  let expand node =
    let used = Array.make n_phys false in
    let children = ref [] in
    let rec go i acc =
      if i = Array.length edges then begin
        if acc <> [] then begin
          (* gate-maximality: adding a compatible executable gate never
             hurts depth, so any leaf leaving one on the table is
             dominated *)
          let maximal =
            Array.for_all
              (fun (p, q) ->
                used.(p) || used.(q)
                ||
                let a = node.l_of_p.(p) and b = node.l_of_p.(q) in
                not
                  (a < n_log && b < n_log
                  && Bitset.mem node.remaining (pair_bit n_log a b)))
              edges
          in
          if maximal then children := acc :: !children
        end
      end
      else begin
        let p, q = edges.(i) in
        if used.(p) || used.(q) then go (i + 1) acc
        else begin
          (* idle *)
          go (i + 1) acc;
          used.(p) <- true;
          used.(q) <- true;
          (* swap *)
          go (i + 1) (Do_swap (p, q) :: acc);
          (* gate *)
          let a = node.l_of_p.(p) and b = node.l_of_p.(q) in
          if a < n_log && b < n_log && Bitset.mem node.remaining (pair_bit n_log a b)
          then go (i + 1) (Do_gate (a, b) :: acc);
          used.(p) <- false;
          used.(q) <- false
        end
      end
    in
    go 0 [];
    !children
  in
  let with_hashes = keying = `Zobrist in
  let apply node actions =
    let l_of_p = Array.copy node.l_of_p in
    let remaining = Bitset.copy node.remaining in
    let degree = Array.copy node.degree in
    let h1 = ref node.h1 and h2 = ref node.h2 in
    List.iter
      (fun a ->
        match a with
        | Do_swap (p, q) ->
            let lp = l_of_p.(p) and lq = l_of_p.(q) in
            if with_hashes then begin
              h1 :=
                !h1
                lxor zmap1.((p * n_phys) + lp)
                lxor zmap1.((q * n_phys) + lq)
                lxor zmap1.((p * n_phys) + lq)
                lxor zmap1.((q * n_phys) + lp);
              h2 :=
                !h2
                lxor zmap2.((p * n_phys) + lp)
                lxor zmap2.((q * n_phys) + lq)
                lxor zmap2.((p * n_phys) + lq)
                lxor zmap2.((q * n_phys) + lp)
            end;
            l_of_p.(p) <- lq;
            l_of_p.(q) <- lp
        | Do_gate (u, v) ->
            let bit = pair_bit n_log u v in
            Bitset.remove remaining bit;
            if with_hashes then begin
              h1 := !h1 lxor zrem1.(bit);
              h2 := !h2 lxor zrem2.(bit)
            end;
            degree.(u) <- degree.(u) - 1;
            degree.(v) <- degree.(v) - 1)
      actions;
    let swaps_here =
      List.length (List.filter (function Do_swap _ -> true | Do_gate _ -> false) actions)
    in
    {
      g = node.g + 1;
      swaps_so_far = node.swaps_so_far + swaps_here;
      l_of_p;
      remaining;
      degree;
      h1 = !h1;
      h2 = !h2;
      parent = Some node;
      via = actions;
    }
  in
  (try
     while !solution = None do
       match Pqueue.pop queue with
       | None -> raise Exit
       | Some (_, node) ->
           if Bitset.is_empty node.remaining then solution := Some node
           else begin
             incr expanded;
             if !expanded > node_budget || (!expanded mod 256 = 0 && out_of_time ()) then begin
               budget_hit := true;
               raise Exit
             end;
             List.iter
               (fun actions ->
                 let child = apply node actions in
                 if visit child then begin
                   incr pushed;
                   Pqueue.push queue ~prio:(priority child) child
                 end)
               (expand node)
           end
     done
   with Exit -> ());
  Obs.incr c_solves;
  Obs.add c_expanded !expanded;
  Obs.add c_heuristic !h_evals;
  Obs.add c_pushed !pushed;
  Obs.add c_closed_hits !closed_hits;
  Obs.add c_collisions !collisions;
  if !budget_hit then Obs.incr c_budget_cut;
  Obs.observe h_expanded (float_of_int !expanded);
  match !solution with
  | None -> None
  | Some goal ->
      let rec unwind node acc =
        match node.parent with
        | None -> acc
        | Some parent -> unwind parent (node.via :: acc)
      in
      let cycles = unwind goal [] in
      let swap_total =
        List.fold_left
          (fun acc cycle ->
            acc
            + List.length (List.filter (function Do_swap _ -> true | Do_gate _ -> false) cycle))
          0 cycles
      in
      Some
        {
          depth = goal.g;
          cycles;
          swap_total;
          expanded = !expanded;
          collisions = !collisions;
          optimal = (not !budget_hit) && weight <= 1.0;
        }

let schedule_of_outcome outcome ~init =
  let mapping = Mapping.copy init in
  List.map
    (fun cycle ->
      let swaps = ref [] and touches = ref [] in
      List.iter
        (fun a ->
          match a with
          | Do_gate (u, v) ->
              touches :=
                Qcr_swapnet.Schedule.Touch (Mapping.phys_of_log mapping u, Mapping.phys_of_log mapping v)
                :: !touches
          | Do_swap (p, q) -> swaps := (p, q) :: !swaps)
        cycle;
      List.iter (fun (p, q) -> Mapping.apply_swap mapping p q) !swaps;
      !touches @ List.map (fun (p, q) -> Qcr_swapnet.Schedule.Swap (p, q)) !swaps)
    outcome.cycles
