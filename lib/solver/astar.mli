(** Depth-optimal SWAP-insertion solver (paper §4, Definition 2).

    Given a permutable-operator problem graph, a coupling graph, and an
    initial mapping, the solver searches cycle-by-cycle circuit states with
    A*; each search edge advances one cycle by scheduling a vertex-disjoint
    set of executable gates and SWAPs.  With the admissible heuristic of
    {!Heuristic} the first expanded terminal state has minimal depth.

    The solver is meant for small instances (the paper derives the 1xUnit /
    2xUnit patterns from 6- to 8-qubit cases); [node_budget] turns it into
    an anytime weighted-A* for the Table-4-sized instances where the exact
    SAT-based baselines run for hours. *)

type action =
  | Do_gate of int * int  (** logical pair executed this cycle *)
  | Do_swap of int * int  (** physical pair swapped this cycle *)

type outcome = {
  depth : int;
  cycles : action list list;  (** one action set per cycle, in time order *)
  swap_total : int;
  expanded : int;
  collisions : int;
      (** closed-set states whose primary Zobrist hash clashed with a
          distinct state (resolved by the secondary hash); 0 with
          [`String] keying *)
  optimal : bool;  (** false when the node budget cut the search *)
}

val solve :
  ?node_budget:int ->
  ?time_budget:float ->
  ?weight:float ->
  ?keying:[ `Zobrist | `String ] ->
  ?clock:Qcr_obs.Clock.t ->
  problem:Qcr_graph.Graph.t ->
  coupling:Qcr_graph.Graph.t ->
  init:Qcr_circuit.Mapping.t ->
  unit ->
  outcome option
(** [None] if a budget exhausts before any complete schedule is found.
    [node_budget] caps expansions; [time_budget] (seconds on [clock],
    sampled every 256 expansions, default unlimited) caps the search the
    way the paper caps the SAT baselines at hours/days.  [clock] defaults
    to the telemetry layer's installed clock ({!Qcr_obs.Obs.current_clock},
    wall time unless overridden), so a fake clock makes budget-cut
    behavior deterministic in tests.  [weight] (default 1.0) multiplies
    the heuristic: > 1.0 trades optimality for speed (the anytime mode
    used for the SAT-baseline comparison).  [keying] selects the
    closed-set key: incremental dual Zobrist hashes over the
    physical→logical mapping and remaining-edge bitset (default; O(1) per
    search edge), or the serialized-node [`String] keys kept as the
    reference implementation.

    When the telemetry sink is enabled ({!Qcr_obs.Obs.enable}), each call
    runs under an ["astar.solve"] span and flushes the [astar.*] counters
    — [expanded], [heuristic_evals], [pushed], [closed_hits],
    [collisions], and [budget_cut] (incremented whenever a node or time
    budget terminates the search early). *)

val schedule_of_outcome : outcome -> init:Qcr_circuit.Mapping.t -> Qcr_swapnet.Schedule.t
(** Convert the solved action cycles into a physical swap-network schedule
    (gates become touches at the executing physical positions). *)
