(* Fixed-size domain pool with crash-only worker supervision.

   One task is live at a time.  Submission bumps [generation] under the
   lock and broadcasts; idle workers wake, read the current task, and
   claim chunks through an atomic counter until none remain.  The caller
   participates too, then blocks until every claimed chunk has finished.
   Completion is tracked by counting finished chunks ([unfinished]); the
   domain that finishes the last chunk signals [work_done].

   Supervision: each worker runs inside a wrapper that catches anything
   escaping its loop (the [pool.worker] fault point simulates exactly
   this).  A dying worker requeues the chunk it had claimed but not yet
   started onto the task's [lost] list, marks its slot dead, and wakes
   the submitter; lost chunks are re-executed by the remaining
   participants (ultimately by the submitting caller, which never dies),
   so a task always drains and its results are identical to a crash-free
   run — provided chunk bodies are idempotent, which holds for every
   combinator here (chunks write disjoint output slots).  Dead slots are
   respawned at the next submission.

   The mutex acquire/release pairs on task completion give the caller a
   happens-before edge over every chunk's writes, so results written into
   plain arrays by workers are safely visible after submission returns. *)

module Fault = Qcr_fault.Fault

exception Worker_lost of { chunk : int }

let () =
  Printexc.register_printer (function
    | Worker_lost { chunk } -> Some (Printf.sprintf "Qcr_par.Pool.Worker_lost(chunk %d)" chunk)
    | _ -> None)

let worker_point = Fault.point "pool.worker"

type task = {
  run_chunk : int -> unit;
  n_chunks : int;
  next : int Atomic.t; (* next chunk index to claim *)
  unfinished : int Atomic.t; (* chunks not yet completed *)
  failed : (exn * Printexc.raw_backtrace) option Atomic.t; (* first failure *)
  lost : int list ref; (* chunks claimed by a worker that died; pool lock *)
}

type slot = {
  mutable handle : unit Domain.t option;
  mutable dead : bool; (* set by the dying worker, under the pool lock *)
}

type t = {
  domains : int; (* total participants incl. the caller *)
  mutable slots : slot array;
  mutable current : task option; (* lock *)
  mutable generation : int; (* lock *)
  mutable stopping : bool; (* lock *)
  mutable alive : bool; (* false after shutdown: run inline *)
  mutable deaths : int; (* lock: workers that crashed, cumulative *)
  mutable respawns : int; (* lock: workers respawned, cumulative *)
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
}

(* True while this domain is executing task chunks (worker domains during
   a task, and the caller for the whole submission).  Nested submissions
   from such a context run inline. *)
let in_task : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

(* True on worker domains only: restricts fault injection to workers, so
   a [pool.worker:crash] spec kills domains the supervisor can replace,
   never the submitting caller. *)
let is_worker : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

(* The chunk this domain has claimed but not yet finished running; the
   dying worker's wrapper reads it to requeue in-flight work. *)
let claimed : (task * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let record_failure task e =
  let bt = Printexc.get_raw_backtrace () in
  ignore (Atomic.compare_and_set task.failed None (Some (e, bt)))

(* Run one claimed chunk.  The claim record is set before the fault
   probe so that an injected worker crash always happens with the chunk
   recorded and not yet started — the wrapper requeues it untouched.
   Exceptions from the chunk body itself are task failures, not worker
   deaths: they are recorded and the chunk still counts as finished. *)
let run_one pool task c =
  let cl = Domain.DLS.get claimed in
  cl := Some (task, c);
  if !(Domain.DLS.get is_worker) then Fault.fire worker_point;
  (try task.run_chunk c with e -> record_failure task e);
  cl := None;
  if Atomic.fetch_and_add task.unfinished (-1) = 1 then begin
    (* last chunk: wake the submitter *)
    Mutex.lock pool.lock;
    Condition.broadcast pool.work_done;
    Mutex.unlock pool.lock
  end

(* Claim and run chunks until the claim counter runs dry, then drain any
   chunks requeued by dead workers; called by workers and by the
   submitting caller alike. *)
let execute pool task =
  let flag = Domain.DLS.get in_task in
  flag := true;
  let restore () = flag := false in
  Fun.protect ~finally:restore @@ fun () ->
  let rec claim () =
    let c = Atomic.fetch_and_add task.next 1 in
    if c < task.n_chunks then begin
      run_one pool task c;
      claim ()
    end
  in
  claim ();
  let rec drain () =
    Mutex.lock pool.lock;
    match !(task.lost) with
    | c :: rest ->
        task.lost := rest;
        Mutex.unlock pool.lock;
        run_one pool task c;
        drain ()
    | [] -> Mutex.unlock pool.lock
  in
  drain ()

let worker_loop pool () =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.lock;
    while (not pool.stopping) && pool.generation = !seen do
      Condition.wait pool.work_ready pool.lock
    done;
    if pool.stopping then begin
      Mutex.unlock pool.lock;
      running := false
    end
    else begin
      seen := pool.generation;
      let task = pool.current in
      Mutex.unlock pool.lock;
      match task with Some task -> execute pool task | None -> ()
    end
  done

(* Crash-only wrapper: anything escaping the loop means this domain is
   done for.  Requeue the in-flight chunk (if any), self-report the
   death, wake the submitter so it can pick the chunk up, and return —
   the domain then terminates cleanly and [supervise] replaces it. *)
let worker_body pool slot () =
  Domain.DLS.get is_worker := true;
  try worker_loop pool ()
  with _ ->
    let cl = Domain.DLS.get claimed in
    Mutex.lock pool.lock;
    (match !cl with
    | Some (task, c) ->
        cl := None;
        task.lost := c :: !(task.lost)
    | None -> ());
    slot.dead <- true;
    pool.deaths <- pool.deaths + 1;
    Condition.broadcast pool.work_done;
    Mutex.unlock pool.lock

let create ~domains =
  let domains = max 1 domains in
  let pool =
    {
      domains;
      slots = [||];
      current = None;
      generation = 0;
      stopping = false;
      alive = true;
      deaths = 0;
      respawns = 0;
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
    }
  in
  pool.slots <-
    Array.init (domains - 1) (fun _ ->
        let slot = { handle = None; dead = false } in
        slot.handle <- Some (Domain.spawn (worker_body pool slot));
        slot);
  pool

let size t = t.domains

let worker_deaths t =
  Mutex.lock t.lock;
  let v = t.deaths in
  Mutex.unlock t.lock;
  v

let respawns t =
  Mutex.lock t.lock;
  let v = t.respawns in
  Mutex.unlock t.lock;
  v

(* Replace dead workers.  Called between tasks on the driver domain (the
   single-driver contract), so slots mutate with no task in flight. *)
let supervise t =
  if t.alive then begin
    Mutex.lock t.lock;
    let dead =
      Array.to_list t.slots |> List.filter (fun s -> s.dead)
    in
    List.iter (fun s -> s.dead <- false) dead;
    t.respawns <- t.respawns + List.length dead;
    Mutex.unlock t.lock;
    List.iter
      (fun slot ->
        Option.iter Domain.join slot.handle;
        slot.handle <- Some (Domain.spawn (worker_body t slot)))
      dead
  end

let shutdown t =
  if t.alive then begin
    Mutex.lock t.lock;
    t.stopping <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    Array.iter (fun slot -> Option.iter Domain.join slot.handle) t.slots;
    t.slots <- [||];
    t.alive <- false
  end

let run_inline ~n_chunks run_chunk =
  for c = 0 to n_chunks - 1 do
    run_chunk c
  done

(* Submit a task and help run it.  Inline when the pool cannot help
   (size 1, shut down, single chunk) or must not (nested submission). *)
let run_task pool ~n_chunks run_chunk =
  if n_chunks > 0 then
    if
      pool.domains = 1 || (not pool.alive) || n_chunks = 1
      || !(Domain.DLS.get in_task)
    then run_inline ~n_chunks run_chunk
    else begin
      supervise pool;
      let task =
        {
          run_chunk;
          n_chunks;
          next = Atomic.make 0;
          unfinished = Atomic.make n_chunks;
          failed = Atomic.make None;
          lost = ref [];
        }
      in
      Mutex.lock pool.lock;
      pool.current <- Some task;
      pool.generation <- pool.generation + 1;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.lock;
      execute pool task;
      (* Wait for completion, re-executing any chunk a dying worker
         requeued: the caller is the participant of last resort, so the
         task drains even if every worker dies. *)
      Mutex.lock pool.lock;
      let rec wait () =
        if Atomic.get task.unfinished > 0 then
          match !(task.lost) with
          | c :: rest ->
              task.lost := rest;
              Mutex.unlock pool.lock;
              let flag = Domain.DLS.get in_task in
              flag := true;
              Fun.protect
                ~finally:(fun () -> flag := false)
                (fun () -> run_one pool task c);
              Mutex.lock pool.lock;
              wait ()
          | [] ->
              Condition.wait pool.work_done pool.lock;
              wait ()
      in
      wait ();
      pool.current <- None;
      Mutex.unlock pool.lock;
      match Atomic.get task.failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

(* ---------- loop combinators ---------- *)

let default_chunks pool n = min n (4 * pool.domains)

let for_range pool ?chunks ~lo ~hi body =
  let n = hi - lo in
  if n > 0 then begin
    let n_chunks =
      match chunks with
      | Some c -> max 1 (min c n)
      | None -> max 1 (default_chunks pool n)
    in
    let base = n / n_chunks and extra = n mod n_chunks in
    run_task pool ~n_chunks (fun c ->
        let start = lo + (c * base) + min c extra in
        let len = base + if c < extra then 1 else 0 in
        body start (start + len))
  end

let parallel_for pool ?chunks ~lo ~hi f =
  for_range pool ?chunks ~lo ~hi (fun sub_lo sub_hi ->
      for i = sub_lo to sub_hi - 1 do
        f i
      done)

let map pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for pool ~lo:0 ~hi:n (fun i -> out.(i) <- Some (f arr.(i)));
    Array.mapi
      (fun i slot ->
        match slot with Some v -> v | None -> raise (Worker_lost { chunk = i }))
      out
  end

let map_list pool f xs = Array.to_list (map pool f (Array.of_list xs))

let map_reduce pool ~chunk ~lo ~hi ~map:map_f ~reduce ~init =
  let n = hi - lo in
  if n <= 0 then init
  else begin
    let chunk = max 1 chunk in
    let n_chunks = (n + chunk - 1) / chunk in
    let results = Array.make n_chunks None in
    run_task pool ~n_chunks (fun c ->
        let sub_lo = lo + (c * chunk) in
        let sub_hi = min hi (sub_lo + chunk) in
        results.(c) <- Some (map_f sub_lo sub_hi));
    (* fold strictly in chunk order: bit-identical for any pool size *)
    Array.fold_left
      (fun acc r -> match r with Some v -> reduce acc v | None -> acc)
      init results
  end

(* ---------- the shared default pool ---------- *)

let env_domains () =
  match Sys.getenv_opt "QCR_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> Some (min v 64)
      | _ -> None)

let override = ref None

let global = ref None

let global_lock = Mutex.create ()

let default_domain_count () =
  match env_domains () with
  | Some v -> v
  | None -> (
      match !override with
      | Some v -> v
      | None -> max 1 (min 8 (Domain.recommended_domain_count ())))

let default () =
  Mutex.lock global_lock;
  let pool =
    match !global with
    | Some p -> p
    | None ->
        let p = create ~domains:(default_domain_count ()) in
        global := Some p;
        p
  in
  Mutex.unlock global_lock;
  pool

let set_default_domains n =
  let n = max 1 n in
  Mutex.lock global_lock;
  let old = !global in
  override := Some n;
  global := None;
  Mutex.unlock global_lock;
  Option.iter shutdown old;
  Mutex.lock global_lock;
  if !global = None then global := Some (create ~domains:n);
  Mutex.unlock global_lock

(* ---------- telemetry integration ----------

   The pool owns the "am I inside a parallel region?" answer, so it
   installs the sink-control guard (Qcr_obs cannot depend on this
   library).  Pool gauges are registered as probes reading the shared
   default pool; they report 0 until the pool first exists rather than
   forcing its creation. *)

let () =
  Qcr_obs.Obs.set_parallel_guard (fun () ->
      !(Domain.DLS.get in_task) || !(Domain.DLS.get is_worker));
  let with_default f =
    Mutex.lock global_lock;
    let p = !global in
    Mutex.unlock global_lock;
    match p with None -> 0.0 | Some p -> f p
  in
  Qcr_obs.Registry.register_probe "pool.domains"
    (fun () -> with_default (fun p -> float_of_int p.domains));
  Qcr_obs.Registry.register_probe "pool.worker_deaths"
    (fun () -> with_default (fun p -> float_of_int (worker_deaths p)));
  Qcr_obs.Registry.register_probe "pool.respawns"
    (fun () -> with_default (fun p -> float_of_int (respawns p)));
  Qcr_obs.Registry.register_probe "pool.task_in_flight" (fun () ->
      with_default (fun p ->
          Mutex.lock p.lock;
          let busy = not (Option.is_none p.current) in
          Mutex.unlock p.lock;
          if busy then 1.0 else 0.0))
