(* Fixed-size domain pool.

   One task is live at a time.  Submission bumps [generation] under the
   lock and broadcasts; idle workers wake, read the current task, and
   claim chunks through an atomic counter until none remain.  The caller
   participates too, then blocks until every claimed chunk has finished.
   Completion is tracked by counting finished chunks ([unfinished]); the
   domain that finishes the last chunk signals [work_done].

   The mutex acquire/release pairs on task completion give the caller a
   happens-before edge over every chunk's writes, so results written into
   plain arrays by workers are safely visible after submission returns. *)

type task = {
  run_chunk : int -> unit;
  n_chunks : int;
  next : int Atomic.t; (* next chunk index to claim *)
  unfinished : int Atomic.t; (* chunks not yet completed *)
  failed : (exn * Printexc.raw_backtrace) option Atomic.t; (* first failure *)
}

type t = {
  domains : int; (* total participants incl. the caller *)
  mutable workers : unit Domain.t list;
  mutable current : task option; (* lock *)
  mutable generation : int; (* lock *)
  mutable stopping : bool; (* lock *)
  mutable alive : bool; (* false after shutdown: run inline *)
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
}

(* True while this domain is executing task chunks (worker domains during
   a task, and the caller for the whole submission).  Nested submissions
   from such a context run inline. *)
let in_task : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let record_failure task e =
  let bt = Printexc.get_raw_backtrace () in
  ignore (Atomic.compare_and_set task.failed None (Some (e, bt)))

(* Claim and run chunks until the claim counter runs dry; called by
   workers and by the submitting caller alike. *)
let execute pool task =
  let flag = Domain.DLS.get in_task in
  flag := true;
  let rec claim () =
    let c = Atomic.fetch_and_add task.next 1 in
    if c < task.n_chunks then begin
      (try task.run_chunk c with e -> record_failure task e);
      if Atomic.fetch_and_add task.unfinished (-1) = 1 then begin
        (* last chunk: wake the submitter *)
        Mutex.lock pool.lock;
        Condition.broadcast pool.work_done;
        Mutex.unlock pool.lock
      end;
      claim ()
    end
  in
  claim ();
  flag := false

let worker_loop pool () =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.lock;
    while (not pool.stopping) && pool.generation = !seen do
      Condition.wait pool.work_ready pool.lock
    done;
    if pool.stopping then begin
      Mutex.unlock pool.lock;
      running := false
    end
    else begin
      seen := pool.generation;
      let task = pool.current in
      Mutex.unlock pool.lock;
      match task with Some task -> execute pool task | None -> ()
    end
  done

let create ~domains =
  let domains = max 1 domains in
  let pool =
    {
      domains;
      workers = [];
      current = None;
      generation = 0;
      stopping = false;
      alive = true;
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
    }
  in
  pool.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (worker_loop pool));
  pool

let size t = t.domains

let shutdown t =
  if t.alive then begin
    Mutex.lock t.lock;
    t.stopping <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    List.iter Domain.join t.workers;
    t.workers <- [];
    t.alive <- false
  end

let run_inline ~n_chunks run_chunk =
  for c = 0 to n_chunks - 1 do
    run_chunk c
  done

(* Submit a task and help run it.  Inline when the pool cannot help
   (size 1, shut down, single chunk) or must not (nested submission). *)
let run_task pool ~n_chunks run_chunk =
  if n_chunks > 0 then
    if
      pool.domains = 1 || (not pool.alive) || n_chunks = 1
      || !(Domain.DLS.get in_task)
    then run_inline ~n_chunks run_chunk
    else begin
      let task =
        {
          run_chunk;
          n_chunks;
          next = Atomic.make 0;
          unfinished = Atomic.make n_chunks;
          failed = Atomic.make None;
        }
      in
      Mutex.lock pool.lock;
      pool.current <- Some task;
      pool.generation <- pool.generation + 1;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.lock;
      execute pool task;
      Mutex.lock pool.lock;
      while Atomic.get task.unfinished > 0 do
        Condition.wait pool.work_done pool.lock
      done;
      pool.current <- None;
      Mutex.unlock pool.lock;
      match Atomic.get task.failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

(* ---------- loop combinators ---------- *)

let default_chunks pool n = min n (4 * pool.domains)

let for_range pool ?chunks ~lo ~hi body =
  let n = hi - lo in
  if n > 0 then begin
    let n_chunks =
      match chunks with
      | Some c -> max 1 (min c n)
      | None -> max 1 (default_chunks pool n)
    in
    let base = n / n_chunks and extra = n mod n_chunks in
    run_task pool ~n_chunks (fun c ->
        let start = lo + (c * base) + min c extra in
        let len = base + if c < extra then 1 else 0 in
        body start (start + len))
  end

let parallel_for pool ?chunks ~lo ~hi f =
  for_range pool ?chunks ~lo ~hi (fun sub_lo sub_hi ->
      for i = sub_lo to sub_hi - 1 do
        f i
      done)

let map pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for pool ~lo:0 ~hi:n (fun i -> out.(i) <- Some (f arr.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_list pool f xs = Array.to_list (map pool f (Array.of_list xs))

let map_reduce pool ~chunk ~lo ~hi ~map:map_f ~reduce ~init =
  let n = hi - lo in
  if n <= 0 then init
  else begin
    let chunk = max 1 chunk in
    let n_chunks = (n + chunk - 1) / chunk in
    let results = Array.make n_chunks None in
    run_task pool ~n_chunks (fun c ->
        let sub_lo = lo + (c * chunk) in
        let sub_hi = min hi (sub_lo + chunk) in
        results.(c) <- Some (map_f sub_lo sub_hi));
    (* fold strictly in chunk order: bit-identical for any pool size *)
    Array.fold_left
      (fun acc r -> match r with Some v -> reduce acc v | None -> acc)
      init results
  end

(* ---------- the shared default pool ---------- *)

let env_domains () =
  match Sys.getenv_opt "QCR_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> Some (min v 64)
      | _ -> None)

let override = ref None

let global = ref None

let global_lock = Mutex.create ()

let default_domain_count () =
  match env_domains () with
  | Some v -> v
  | None -> (
      match !override with
      | Some v -> v
      | None -> max 1 (min 8 (Domain.recommended_domain_count ())))

let default () =
  Mutex.lock global_lock;
  let pool =
    match !global with
    | Some p -> p
    | None ->
        let p = create ~domains:(default_domain_count ()) in
        global := Some p;
        p
  in
  Mutex.unlock global_lock;
  pool

let set_default_domains n =
  let n = max 1 n in
  Mutex.lock global_lock;
  let old = !global in
  override := Some n;
  global := None;
  Mutex.unlock global_lock;
  Option.iter shutdown old;
  Mutex.lock global_lock;
  if !global = None then global := Some (create ~domains:n);
  Mutex.unlock global_lock
