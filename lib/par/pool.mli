(** Fixed-size domain pool for data-parallel loops (OCaml 5 multicore).

    A pool owns [size - 1] worker domains plus the calling domain; work
    submitted with {!for_range} / {!parallel_for} / {!map} /
    {!map_reduce} is split into chunks that the participants claim with an
    atomic counter.  The pool is dependency-free: plain [Domain],
    [Atomic], [Mutex] and [Condition] from the standard library.

    {b Determinism.}  Elementwise operations ([parallel_for], [for_range],
    [map]) write disjoint outputs, so their results never depend on the
    pool size.  {!map_reduce} takes an explicit [chunk] length and always
    folds the per-chunk results {e left to right in chunk order}, so
    floating-point reductions are bit-identical for any pool size —
    including 1 — as long as [chunk] is held fixed.

    {b Nesting.}  Submitting work from inside a running task (from a
    worker domain, or re-entrantly from the caller) runs the nested work
    inline and sequentially on the current domain; nested parallelism
    never deadlocks and never changes results.

    {b Concurrency contract.}  One task runs at a time; submit work from
    one domain (the pool owner) only.  This matches the compiler/simulator
    call pattern: a single driver fanning loops out.

    {b Supervision.}  Workers are crash-only: anything that escapes a
    worker's loop (notably the [pool.worker] {!Qcr_fault.Fault} injection
    point) kills that domain.  The dying worker requeues the chunk it had
    claimed but not started, the remaining participants — ultimately the
    submitting caller, which never dies — re-execute it, and the dead
    slot is respawned at the next submission; because chunks write
    disjoint outputs, results are identical to a crash-free run. *)

type t

exception Worker_lost of { chunk : int }
(** A task chunk's result is missing because the domain that owned it
    died outside the supervised window.  {!map} raises it instead of
    asserting when an output slot was never written; supervision makes
    this unreachable in practice, but the error stays typed for the
    non-supervised paths. *)

val create : domains:int -> t
(** [create ~domains] spawns [max 1 domains - 1] worker domains.  The
    caller participates in every task, so [domains] is the total
    parallelism.  [domains = 1] spawns nothing and runs all work inline. *)

val size : t -> int
(** Total participating domains (workers + caller), >= 1. *)

val shutdown : t -> unit
(** Stop and join the workers.  The pool remains usable afterwards but
    runs everything inline.  Idempotent. *)

(** {1 Supervision} *)

val supervise : t -> unit
(** Join and respawn every worker domain that has died.  Runs
    automatically at each submission; call it explicitly to heal the pool
    eagerly (e.g. from a serving loop's idle path).  Driver domain only,
    with no task in flight. *)

val worker_deaths : t -> int
(** Cumulative count of worker domains that crashed. *)

val respawns : t -> int
(** Cumulative count of worker domains respawned by supervision. *)

(** {1 The default pool}

    Sized by the [QCR_DOMAINS] environment variable when set to a positive
    integer, otherwise by [Domain.recommended_domain_count] (clamped to
    8).  Created lazily on first use. *)

val default_domain_count : unit -> int
(** The size the default pool gets on first use:
    [QCR_DOMAINS] > override from {!set_default_domains} > hardware
    count. *)

val default : unit -> t
(** The shared global pool (created on first call). *)

val set_default_domains : int -> unit
(** Replace the default pool with one of the given size (shutting the old
    one down).  Used by the [--domains] CLI flag and by tests that compare
    pool sizes; call it only when no task is in flight. *)

(** {1 Data-parallel loops} *)

val for_range : t -> ?chunks:int -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [for_range pool ~lo ~hi body] partitions [\[lo, hi)] into [chunks]
    subranges (default: enough for load balance) and calls [body sub_lo
    sub_hi] on each, in parallel.  Subranges are disjoint and cover the
    interval exactly.  Any exception raised by [body] is re-raised in the
    caller after the task drains. *)

val parallel_for : t -> ?chunks:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for pool ~lo ~hi f] calls [f i] for every [lo <= i < hi],
    in parallel.  Elementwise: safe whenever distinct [i] touch disjoint
    state. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; output order matches input order. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] (via {!map}); output order matches input order. *)

val map_reduce :
  t ->
  chunk:int ->
  lo:int ->
  hi:int ->
  map:(int -> int -> 'acc) ->
  reduce:('acc -> 'acc -> 'acc) ->
  init:'acc ->
  'acc
(** [map_reduce pool ~chunk ~lo ~hi ~map ~reduce ~init] splits [\[lo, hi)]
    into fixed-length chunks ([chunk] items each, last one short), runs
    [map sub_lo sub_hi] on each in parallel, and folds the chunk results
    sequentially in chunk order: [reduce (... (reduce init r0) ...) rk].
    Because the partition depends only on [chunk] (never on the pool
    size), the result is bit-identical for any pool size. *)
