(* Bechamel micro-benchmark suite: one Test.make per reproduced table or
   figure, each timing a representative (small) slice of the experiment so
   the whole suite stays fast while still tracking compiler performance
   regressions per experiment. *)

module Arch = Qcr_arch.Arch
module Generate = Qcr_graph.Generate
module Graph = Qcr_graph.Graph
module Mapping = Qcr_circuit.Mapping
module Program = Qcr_circuit.Program
module Pipeline = Qcr_core.Pipeline
module Suite = Qcr_workloads.Suite
module Hamiltonian = Qcr_workloads.Hamiltonian
module Prng = Qcr_util.Prng
open Bechamel
open Toolkit

let instance n density = List.hd (Suite.random_instances ~cases:1 ~n ~density ())

let compile_test name kind n density compiler =
  Test.make ~name
    (Staged.stage (fun () ->
         let inst = instance n density in
         let program = Suite.program_of inst in
         let arch = Arch.smallest_for kind n in
         ignore (compiler arch program)))

let tests () =
  [
    (* Fig 17: the three arms *)
    compile_test "fig17/greedy-hh64" Arch.Heavy_hex 64 0.3 (fun a p ->
        Pipeline.run_exn (Pipeline.Request.make ~mode:Pipeline.Request.Greedy a p));
    compile_test "fig17/solver-hh64" Arch.Heavy_hex 64 0.3 (fun a p ->
        Pipeline.run_exn (Pipeline.Request.make ~mode:Pipeline.Request.Ata a p));
    compile_test "fig17/ours-hh64" Arch.Heavy_hex 64 0.3 (fun a p -> Pipeline.run_exn (Pipeline.Request.make a p));
    (* Figs 20-21: heavy-hex vs baselines *)
    compile_test "fig20_21/ours-hh64" Arch.Heavy_hex 64 0.5 (fun a p -> Pipeline.run_exn (Pipeline.Request.make a p));
    compile_test "fig20_21/qaim-hh64" Arch.Heavy_hex 64 0.5 (fun a p ->
        Qcr_baselines.Qaim_like.compile a p);
    (* Figs 22-23: Sycamore *)
    compile_test "fig22_23/ours-syc64" Arch.Sycamore 64 0.3 (fun a p -> Pipeline.run_exn (Pipeline.Request.make a p));
    compile_test "fig22_23/pauli-syc64" Arch.Sycamore 64 0.3 (fun a p ->
        Qcr_baselines.Paulihedral_like.compile a p);
    (* Table 1: 2QAN arm *)
    compile_test "tab1/2qan-hh64" Arch.Heavy_hex 64 0.3 (fun a p ->
        Qcr_baselines.Twoqan_like.compile ~anneal_moves:3000 a p);
    (* Table 2 slice: a denser instance *)
    compile_test "tab2/ours-hh128" Arch.Heavy_hex 128 0.5 (fun a p -> Pipeline.run_exn (Pipeline.Request.make a p));
    (* Table 3: a 2-local Trotter step *)
    Test.make ~name:"tab3/ours-ising64"
      (Staged.stage (fun () ->
           let arch = Arch.smallest_for Arch.Heavy_hex 64 in
           ignore (Pipeline.run_exn (Pipeline.Request.make arch (Hamiltonian.trotter_step (Hamiltonian.nnn_1d_ising 64))))));
    (* Table 4: the optimal solver on a tiny instance *)
    Test.make ~name:"tab4/astar-line5"
      (Staged.stage (fun () ->
           let problem = Graph.complete 5 in
           let coupling = Generate.path 5 in
           let init = Mapping.identity ~logical:5 ~physical:5 in
           ignore (Qcr_solver.Astar.solve ~problem ~coupling ~init ())));
    (* Figs 24-25 / TVD: one QAOA energy evaluation *)
    Test.make ~name:"fig24_25/qaoa-eval-10q"
      (Staged.stage (fun () ->
           let graph = Generate.erdos_renyi (Prng.create 41) ~n:10 ~density:0.3 in
           let arch = Arch.mumbai_like () in
           let program = Program.make graph (Program.Qaoa_maxcut { gamma = 0.4; beta = 0.35 }) in
           let r = Pipeline.run_exn (Pipeline.Request.make arch program) in
           ignore
             (Qcr_sim.Qaoa.evaluate ~graph ~compiled:r.Pipeline.circuit ~final:r.Pipeline.final ())));
    (* Fig 26: the compile-time curve's smallest point *)
    compile_test "fig26/ours-hh128" Arch.Heavy_hex 128 0.3 (fun a p -> Pipeline.run_exn (Pipeline.Request.make a p));
  ]

let run () =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 200) () in
  let instances = Instance.[ monotonic_clock ] in
  let raw =
    List.map
      (fun test -> (Test.Elt.name (List.hd (Test.elements test)), Benchmark.all cfg instances test))
      (List.map (fun t -> t) (tests ()))
  in
  Printf.printf "\n=== Bechamel timing suite (one Test per table/figure) ===\n";
  Printf.printf "%-26s %14s\n" "benchmark" "time/run";
  List.iter
    (fun (name, results) ->
      Hashtbl.iter
        (fun _ result ->
          let analyzed =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
              Instance.monotonic_clock result
          in
          match Analyze.OLS.estimates analyzed with
          | Some [ est ] -> Printf.printf "%-26s %11.3f ms\n" name (est /. 1e6)
          | _ -> Printf.printf "%-26s %14s\n" name "n/a")
        results)
    raw
