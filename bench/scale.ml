(* Thousand-qubit compile-time scaling benchmark (`bench scale`).

   Compiles the scale suite (the Qcr_workloads.Suite scale functions)
   across the
   cross-size matrix — arms {greedy, swapnet, ours} x devices {grid,
   heavy-hex, Sycamore} x sizes {27, 100, 256, (576,) 1024} — with the
   telemetry sink ON, so every case records its per-phase span breakdown
   (placement / routing / finalize) alongside wall time.  Per
   (arm, device, workload) series it fits the growth exponent of wall
   time against device size by log-log least squares, and for the
   output-bound swapnet arm also against emitted CX count (a rigid swap
   network emits Theta(n^2) gates on a grid, so linearity in output size,
   not in n, is the meaningful no-quadratic-overhead statement).

   The 1024-qubit dense-ER grid QAOA case — the slowest case of the
   pre-optimization tree — is included as a dedicated showcase row, and
   its compiled circuit is scored with the analytic Qcr_sim.Lightcone
   evaluator (fidelity-weighted p=1 energy under a sampled noise model),
   which no statevector could do at this width.

   Emits BENCH_scale.json (schema qcr-bench-scale/v1).  With [--check]
   the run is compared against the committed baseline in
   bench/baselines/BENCH_scale.json: circuit structure (depth/cx/swaps)
   must match exactly (the compiler is deterministic), wall time may not
   exceed max(5x baseline, 1 s) per case, and fitted exponents may not
   exceed the baseline by more than 0.3; any violation exits nonzero, so
   CI can gate on quadratic regressions. *)

module Arch = Qcr_arch.Arch
module Noise = Qcr_arch.Noise
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Program = Qcr_circuit.Program
module Pipeline = Qcr_core.Pipeline
module Suite = Qcr_workloads.Suite
module Lightcone = Qcr_sim.Lightcone
module Prng = Qcr_util.Prng
module Obs = Qcr_obs.Obs

(* ---------- minimal JSON emitter + parser (no external dependency) ---------- *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Int of int
  | Bool of bool

let rec emit b = function
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "%S:" k);
          emit b v)
        fields;
      Buffer.add_char b '}'
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          emit b v)
        items;
      Buffer.add_char b ']'
  | Str s -> Buffer.add_string b (Printf.sprintf "%S" s)
  | Num f -> Buffer.add_string b (Printf.sprintf "%.6g" f)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Bool v -> Buffer.add_string b (if v then "true" else "false")

let write_json path json =
  let b = Buffer.create 4096 in
  emit b json;
  Buffer.add_char b '\n';
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

(* Recursive-descent parser for the subset this benchmark itself emits
   (escaped quote and backslash only, numbers via float_of_string).
   Only used by [--check] to read the committed baseline back. *)
exception Parse_error of string

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < len then
      match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail (Printf.sprintf "expected %c" c);
    advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | c -> Buffer.add_char b c);
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin advance (); Obj [] end
        else begin
          let rec fields acc =
            let k = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); skip_ws (); fields ((k, v) :: acc)
            | '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin advance (); Arr [] end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); items (v :: acc)
            | ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (items [])
        end
    | '"' -> Str (parse_string ())
    | 't' -> pos := !pos + 4; Bool true
    | 'f' -> pos := !pos + 5; Bool false
    | _ ->
        let start = !pos in
        let is_num c = (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E' in
        while !pos < len && is_num s.[!pos] do advance () done;
        if !pos = start then fail "unexpected character";
        let tok = String.sub s start (!pos - start) in
        (try
           if String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E'
           then Num (float_of_string tok)
           else Int (int_of_string tok)
         with _ -> fail "bad number")
  in
  let v = parse_value () in
  skip_ws ();
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Some (Num f) -> f
  | Some (Int i) -> float_of_int i
  | _ -> nan

let to_int = function Some (Int i) -> i | Some (Num f) -> int_of_float f | _ -> min_int

let to_string_opt = function Some (Str s) -> Some s | _ -> None

let to_list = function Some (Arr l) -> l | _ -> []

(* ---------- the case matrix ---------- *)

type case_row = {
  arm : string;
  device : string;
  workload : string; (* workload family: qaoa3 / ising / lattice / qaoa-dense *)
  n : int; (* requested size (the matrix column) *)
  n_phys : int;
  n_log : int;
  edges : int;
  wall_ms : float;
  cpu_ms : float;
  depth : int;
  cx : int;
  swaps : int;
  phases : (string * float) list; (* span name -> total ms *)
  counters : (string * int) list;
}

let kind_of_device = function
  | "grid" -> Arch.Grid
  | "heavyhex" -> Arch.Heavy_hex
  | "sycamore" -> Arch.Sycamore
  | d -> invalid_arg ("Scale: unknown device " ^ d)

let instance_of_workload ~n = function
  | "qaoa3" -> Suite.scale_qaoa ~n
  | "ising" -> Suite.scale_ising ~n
  | "lattice" -> Suite.scale_lattice ~n
  | "qaoa-dense" ->
      (* the pre-optimization tree's worst case: dense Erdos-Renyi *)
      {
        Suite.label = Printf.sprintf "qaoa-dense-%d" n;
        seed = 42;
        graph = Generate.erdos_renyi (Prng.create 42) ~n ~density:0.3;
      }
  | w -> invalid_arg ("Scale: unknown workload " ^ w)

let compile_of_arm = function
  | "greedy" -> fun arch program -> Pipeline.run_exn (Pipeline.Request.make ~mode:Pipeline.Request.Greedy arch program)
  | "swapnet" -> fun arch program -> Pipeline.run_exn (Pipeline.Request.make ~mode:Pipeline.Request.Ata arch program)
  | "ours" -> fun arch program -> Pipeline.run_exn (Pipeline.Request.make arch program)
  | a -> invalid_arg ("Scale: unknown arm " ^ a)

(* Per-phase wall attribution: root pipeline sub-spans summed by name.
   The sink stays ON during the timed run — that is the point of this
   benchmark (per-phase numbers for the timed case), and the span count
   is O(1) per compile so the overhead is noise. *)
let phase_totals () =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      let name = sp.Obs.span_name in
      if
        String.length name >= 9
        && (String.sub name 0 9 = "pipeline." || String.sub name 0 8 = "swapnet.")
      then
        Hashtbl.replace tbl name
          ((try Hashtbl.find tbl name with Not_found -> 0.0) +. (sp.Obs.span_dur *. 1000.0)))
    (Obs.spans ());
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let run_case ~arm ~device ~workload ~n =
  let arch = Arch.smallest_for (kind_of_device device) n in
  let inst = instance_of_workload ~n workload in
  let n_log = Graph.vertex_count inst.Suite.graph in
  if n_log > Arch.qubit_count arch then None
  else begin
    let program = Suite.scale_program_of inst in
    let compile = compile_of_arm arm in
    Obs.enable ();
    Obs.reset ();
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let c0 = Sys.time () in
    let r = compile arch program in
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let cpu_ms = (Sys.time () -. c0) *. 1000.0 in
    let phases = phase_totals () in
    let counters = (Obs.snapshot ()).Obs.snap_counters in
    Obs.reset ();
    Printf.printf
      "  %-7s %-8s %-11s n=%-5d phys=%-5d wall %8.1f ms  depth %6d  cx %8d\n%!" arm device
      workload n (Arch.qubit_count arch) wall_ms r.Pipeline.depth r.Pipeline.cx;
    Some
      {
        arm;
        device;
        workload;
        n;
        n_phys = Arch.qubit_count arch;
        n_log;
        edges = Graph.edge_count inst.Suite.graph;
        wall_ms;
        cpu_ms;
        depth = r.Pipeline.depth;
        cx = r.Pipeline.cx;
        swaps = r.Pipeline.swap_count;
        phases;
        counters;
      }
  end

(* ---------- growth-exponent fitting ---------- *)

(* Least-squares slope of ln(y) against ln(x): y ~ C * x^slope. *)
let loglog_slope pts =
  let pts = List.filter (fun (x, y) -> x > 0.0 && y > 0.0) pts in
  let k = float_of_int (List.length pts) in
  if List.length pts < 2 then nan
  else begin
    let lx = List.map (fun (x, _) -> log x) pts and ly = List.map (fun (_, y) -> log y) pts in
    let sx = List.fold_left ( +. ) 0.0 lx and sy = List.fold_left ( +. ) 0.0 ly in
    let sxx = List.fold_left (fun a x -> a +. (x *. x)) 0.0 lx in
    let sxy = List.fold_left2 (fun a x y -> a +. (x *. y)) 0.0 lx ly in
    ((k *. sxy) -. (sx *. sy)) /. ((k *. sxx) -. (sx *. sx))
  end

type fit_row = {
  fit_arm : string;
  fit_device : string;
  fit_workload : string;
  fit_sizes : int list;
  exponent : float; (* wall vs device size *)
  output_exponent : float; (* wall vs emitted CX count (output size) *)
}

let fit_exponents rows =
  let keys =
    List.sort_uniq compare (List.map (fun r -> (r.arm, r.device, r.workload)) rows)
  in
  List.filter_map
    (fun (arm, device, workload) ->
      let series =
        List.filter (fun r -> r.arm = arm && r.device = device && r.workload = workload) rows
      in
      if List.length series < 2 then None
      else
        Some
          {
            fit_arm = arm;
            fit_device = device;
            fit_workload = workload;
            fit_sizes = List.map (fun r -> r.n) series;
            exponent =
              loglog_slope (List.map (fun r -> (float_of_int r.n_phys, r.wall_ms)) series);
            output_exponent =
              loglog_slope (List.map (fun r -> (float_of_int r.cx, r.wall_ms)) series);
          })
    keys

(* ---------- lightcone showcase ---------- *)

let lightcone_report ~n =
  let arch = Arch.smallest_for Arch.Grid n in
  let inst = Suite.scale_qaoa ~n in
  let program = Suite.scale_program_of inst in
  let noise = Noise.sampled ~seed:9 arch in
  let r = Pipeline.run_exn (Pipeline.Request.make ~noise ~mode:Pipeline.Request.Greedy arch program) in
  let e = Lightcone.evaluate ~noise ~graph:inst.Suite.graph ~compiled:r.Pipeline.circuit () in
  let gamma, beta = Qcr_sim.Qaoa.angles_of_compiled r.Pipeline.circuit in
  Printf.printf
    "  lightcone n=%d: ideal %.4f  fidelity %.3e  noisy %.4f  (gamma %.2f beta %.2f)\n%!" n
    e.Lightcone.ideal_energy e.Lightcone.fidelity e.Lightcone.energy gamma beta;
  Obj
    [
      ("device", Str "grid");
      ("workload", Str inst.Suite.label);
      ("n", Int n);
      ("edges", Int (Graph.edge_count inst.Suite.graph));
      ("gamma", Num gamma);
      ("beta", Num beta);
      ("ideal_energy", Num e.Lightcone.ideal_energy);
      ("energy", Num e.Lightcone.energy);
      ("fidelity", Num e.Lightcone.fidelity);
      ("depth", Int r.Pipeline.depth);
      ("cx", Int r.Pipeline.cx);
    ]

(* ---------- JSON assembly ---------- *)

let case_json r =
  Obj
    [
      ("arm", Str r.arm);
      ("device", Str r.device);
      ("workload", Str r.workload);
      ("n", Int r.n);
      ("n_phys", Int r.n_phys);
      ("n_log", Int r.n_log);
      ("edges", Int r.edges);
      ("wall_ms", Num r.wall_ms);
      ("cpu_ms", Num r.cpu_ms);
      ("depth", Int r.depth);
      ("cx", Int r.cx);
      ("swaps", Int r.swaps);
      ("phases", Obj (List.map (fun (k, v) -> (k, Num v)) r.phases));
      ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) r.counters));
    ]

let fit_json f =
  Obj
    [
      ("arm", Str f.fit_arm);
      ("device", Str f.fit_device);
      ("workload", Str f.fit_workload);
      ("sizes", Arr (List.map (fun n -> Int n) f.fit_sizes));
      ("exponent", Num f.exponent);
      ("output_exponent", Num f.output_exponent);
    ]

let output_file = "BENCH_scale.json"

let baseline_file = Filename.concat (Filename.concat "bench" "baselines") "BENCH_scale.json"

(* ---------- baseline comparison (--check) ---------- *)

let case_key j =
  match
    ( to_string_opt (member "arm" j),
      to_string_opt (member "device" j),
      to_string_opt (member "workload" j),
      to_int (member "n" j) )
  with
  | Some a, Some d, Some w, n when n > min_int -> Some (a, d, w, n)
  | _ -> None

let check_against_baseline current =
  if not (Sys.file_exists baseline_file) then begin
    Printf.printf "  check: no baseline at %s (skipping)\n%!" baseline_file;
    true
  end
  else begin
    let baseline = parse_json (Common.read_file baseline_file) in
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
    let base_cases =
      List.filter_map (fun j -> Option.map (fun k -> (k, j)) (case_key j))
        (to_list (member "cases" baseline))
    in
    List.iter
      (fun j ->
        match case_key j with
        | None -> ()
        | Some ((arm, device, workload, n) as key) -> (
            match List.assoc_opt key base_cases with
            | None -> () (* new case: nothing to compare *)
            | Some b ->
                let label = Printf.sprintf "%s/%s/%s/%d" arm device workload n in
                List.iter
                  (fun field ->
                    let cur = to_int (member field j) and ref_ = to_int (member field b) in
                    if cur <> ref_ then
                      fail "%s: %s changed %d -> %d (compiler output must be deterministic)"
                        label field ref_ cur)
                  [ "depth"; "cx"; "swaps" ];
                let cur_wall = to_float (member "wall_ms" j)
                and base_wall = to_float (member "wall_ms" b) in
                let ceiling = Float.max (5.0 *. base_wall) 1000.0 in
                if cur_wall > ceiling then
                  fail "%s: wall %.1f ms exceeds ceiling %.1f ms (baseline %.1f ms)" label
                    cur_wall ceiling base_wall))
      (to_list (member "cases" current));
    let base_fits =
      List.filter_map
        (fun j ->
          match
            ( to_string_opt (member "arm" j),
              to_string_opt (member "device" j),
              to_string_opt (member "workload" j) )
          with
          | Some a, Some d, Some w -> Some ((a, d, w), j)
          | _ -> None)
        (to_list (member "exponents" baseline))
    in
    List.iter
      (fun j ->
        match
          ( to_string_opt (member "arm" j),
            to_string_opt (member "device" j),
            to_string_opt (member "workload" j) )
        with
        | Some a, Some d, Some w -> (
            match List.assoc_opt (a, d, w) base_fits with
            | None -> ()
            | Some b ->
                (* the swapnet arm emits Theta(n^2) gates by construction;
                   its meaningful exponent is wall vs output size *)
                let field = if a = "swapnet" then "output_exponent" else "exponent" in
                let cur = to_float (member field j) and ref_ = to_float (member field b) in
                if Float.is_nan cur || cur > ref_ +. 0.3 then
                  fail "%s/%s/%s: %s %.2f exceeds baseline %.2f + 0.3" a d w field cur ref_)
        | _ -> ())
      (to_list (member "exponents" current));
    List.iter (fun f -> Printf.printf "  CHECK FAILED: %s\n%!" f) (List.rev !failures);
    if !failures = [] then Printf.printf "  check: OK against %s\n%!" baseline_file;
    !failures = []
  end

(* ---------- driver ---------- *)

let run ?(check = false) scale =
  Common.heading "Compile-time scaling: arms x devices x sizes (BENCH_scale.json)";
  let sizes, devices, workloads, arms, with_dense, lightcone_n =
    match scale with
    | Common.Quick ->
        ([ 27; 100; 256 ], [ "grid" ], [ "qaoa3" ], [ "greedy"; "swapnet" ], false, 256)
    | Common.Default ->
        ( [ 27; 100; 256; 1024 ],
          [ "grid"; "heavyhex"; "sycamore" ],
          [ "qaoa3"; "ising" ],
          [ "greedy"; "swapnet"; "ours" ],
          true,
          1024 )
    | Common.Full ->
        ( [ 27; 100; 256; 576; 1024 ],
          [ "grid"; "heavyhex"; "sycamore" ],
          [ "qaoa3"; "ising"; "lattice" ],
          [ "greedy"; "swapnet"; "ours" ],
          true,
          1024 )
  in
  let was_enabled = Obs.enabled () in
  let rows =
    List.concat_map
      (fun arm ->
        List.concat_map
          (fun device ->
            List.concat_map
              (fun workload ->
                List.filter_map (fun n -> run_case ~arm ~device ~workload ~n) sizes)
              workloads)
          devices)
      arms
  in
  (* dense showcase: the pre-optimization tree's 14.6 s worst case *)
  let dense_rows =
    if with_dense then
      List.filter_map (fun n -> run_case ~arm:"greedy" ~device:"grid" ~workload:"qaoa-dense" ~n)
        [ 1024 ]
    else []
  in
  let rows = rows @ dense_rows in
  let fits = fit_exponents rows in
  List.iter
    (fun f ->
      Printf.printf "  exponent %-7s %-8s %-11s wall~n^%.2f  wall~cx^%.2f\n%!" f.fit_arm
        f.fit_device f.fit_workload f.exponent f.output_exponent)
    fits;
  let lightcone = lightcone_report ~n:lightcone_n in
  if not was_enabled then Obs.disable ();
  let scale_name =
    match scale with Common.Quick -> "quick" | Common.Default -> "default" | Common.Full -> "full"
  in
  let doc =
    Obj
      [
        ("schema", Str "qcr-bench-scale/v1");
        ("generated_by", Str "dune exec bench/main.exe -- scale");
        ("scale", Str scale_name);
        ("domains", Int (Qcr_par.Pool.default_domain_count ()));
        ("cases", Arr (List.map case_json rows));
        ("exponents", Arr (List.map fit_json fits));
        ("lightcone", lightcone);
      ]
  in
  write_json output_file doc;
  Printf.printf "  wrote %s\n%!" output_file;
  if check then
    if not (check_against_baseline doc) then begin
      Printf.eprintf "scale: baseline check failed\n%!";
      exit 1
    end
