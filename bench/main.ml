(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation (see DESIGN.md's per-experiment index).

     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- fig17        # one experiment
     dune exec bench/main.exe -- all --quick  # fast smoke run
     dune exec bench/main.exe -- all --full   # paper-scale instance counts *)

open Cmdliner

let experiments =
  [
    ("fig17", Experiments.fig17);
    ("fig20-21", Experiments.fig20_21);
    ("fig22-23", Experiments.fig22_23);
    ("tab1", Experiments.tab1);
    ("tab2", Experiments.tab2);
    ("tab3", Experiments.tab3);
    ("tab4", Experiments.tab4);
    ("fig24", Experiments.fig24);
    ("fig25", Experiments.fig25);
    ("tvd", Experiments.tvd);
    ("fig26", Experiments.fig26);
    ("ablation", Experiments.ablation);
    ("hotpaths", Hotpaths.run);
    ("service", Service_bench.run);
    ("serve", Serve_bench.run);
    ("chaos", Chaos.run);
    ("obs", Obs_bench.run);
  ]

let scale_term =
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Smoke-test sizes.") in
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale instance counts (slow).") in
  let combine quick full =
    if quick then Common.Quick else if full then Common.Full else Common.Default
  in
  Term.(const combine $ quick $ full)

let run_experiment name scale =
  match List.assoc_opt name experiments with
  | Some f ->
      let t0 = Unix.gettimeofday () in
      f scale;
      Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t0)
  | None -> Printf.eprintf "unknown experiment %S\n" name

let run_all scale ~with_bechamel =
  List.iter (fun (name, _) -> run_experiment name scale) experiments;
  if with_bechamel then Bechamel_suite.run ()

let all_cmd =
  let bechamel_flag =
    Arg.(value & flag & info [ "no-bechamel" ] ~doc:"Skip the bechamel timing suite.")
  in
  let run scale no_bechamel = run_all scale ~with_bechamel:(not no_bechamel) in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment.")
    Term.(const run $ scale_term $ bechamel_flag)

let single_cmds =
  List.map
    (fun (exp_name, _) ->
      let runner = run_experiment exp_name in
      Cmd.v
        (Cmd.info exp_name ~doc:(Printf.sprintf "Reproduce %s." exp_name))
        Term.(const runner $ scale_term))
    experiments

let bechamel_cmd =
  Cmd.v
    (Cmd.info "bechamel" ~doc:"Run only the bechamel timing suite.")
    Term.(const (fun () -> Bechamel_suite.run ()) $ const ())

(* scale gets its own command (not the experiments table) because it
   carries an extra flag: --check gates on the committed baseline. *)
let scale_cmd =
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Compare against bench/baselines/BENCH_scale.json; exit 1 on regression.")
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:"Compile-time scaling matrix at 100-1024 qubits (BENCH_scale.json).")
    Term.(const (fun scale check -> Scale.run ~check scale) $ scale_term $ check)

let () =
  let default = Term.(const (fun scale -> run_all scale ~with_bechamel:true) $ scale_term) in
  let info = Cmd.info "qcr-bench" ~doc:"Reproduce the paper's tables and figures." in
  exit (Cmd.eval (Cmd.group ~default info (all_cmd :: bechamel_cmd :: scale_cmd :: single_cmds)))
