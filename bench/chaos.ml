(* Chaos soak: run a mixed batch through one [Qcr_service.Service] for
   several rounds with faults armed at every injection point the serving
   stack declares — crashing compile tiers, corrupting cache entries on
   both sides, killing pool workers — and assert the robustness
   invariants the service promises:

     1. no exception escapes the service boundary,
     2. replies come back in request order, every round,
     3. every full-quality reply (compiled at the requested tier) is
        bit-identical to the fault-free reference run.

   A second phase soaks the disk-backed cache store: segments are
   physically damaged (flipped bytes, truncated tails) and the
   [cache.load]/[cache.flush] fault points armed between warm restarts,
   asserting damaged records are evicted and recompiled — never served,
   never fatal — and that flushes self-heal the directory.

   A final phase certifies crash recovery for real: the CLI binary runs
   as a child process with a job journal, is SIGKILLed at seeded
   instants mid-burst, and is restarted over the same directories —
   every acked admission must be served bit-identically after the
   restart, deduped to its original job id by its idempotency key.

   The report goes to BENCH_chaos.json: invariant verdicts, outcome
   counts, service resilience stats (retries, breaker trips, corrupt
   evictions), the per-point fault table, pool supervision counts and
   the persist-soak verdicts.  Any violated invariant exits non-zero,
   so CI can gate on it. *)

module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Prng = Qcr_util.Prng
module Digest64 = Qcr_util.Digest64
module Json = Qcr_obs.Json
module Fault = Qcr_fault.Fault
module Pool = Qcr_par.Pool
module Service = Qcr_service.Service
module Protocol = Qcr_service.Protocol
module Cache_store = Qcr_service.Cache_store
module Compile_request = Qcr_service.Compile_request
module Compile_reply = Qcr_service.Compile_reply

let output_file = "BENCH_chaos.json"

(* Same mixed-request shape as the service benchmark: all device
   families, all modes, some noise models, duplicates for cache
   pressure. *)
let request i =
  let n = 8 + (i mod 5) in
  let kinds = [| Arch.Line; Arch.Grid; Arch.Heavy_hex; Arch.Hexagon |] in
  let kind = kinds.(i mod Array.length kinds) in
  let modes =
    [| Compile_request.Ours; Compile_request.Greedy; Compile_request.Ata; Compile_request.Portfolio |]
  in
  let mode = modes.(i mod Array.length modes) in
  let graph =
    Generate.erdos_renyi (Prng.create (100 + i)) ~n ~density:(min 1.0 (3.0 /. float_of_int (n - 1)))
  in
  Compile_request.make
    ~id:(Printf.sprintf "chaos-%d" i)
    ~arch_size:(if mode = Compile_request.Portfolio then 18 else n)
    ~mode
    ?noise_seed:(if i mod 3 = 0 then Some (7 + i) else None)
    ~arch_kind:kind ~qubits:n ~edges:(Graph.edges graph) ()

(* Content digest of one reply, ignoring id/timing/cache flag — what
   "bit-identical" means across runs. *)
let reply_digest r =
  Digest64.of_string
    (Json.to_string
       (Compile_reply.strip_volatile
          (Compile_reply.to_json { r with Compile_reply.id = ""; cached = false })))

let full_quality (r : Compile_reply.t) =
  match r.Compile_reply.outcome with
  | Compile_reply.Compiled { mode; _ } -> mode = r.Compile_reply.requested_mode
  | Compile_reply.Failed _ -> false

(* The soak spec.  service.tier crashes often enough to exercise retries
   and trip breakers; both cache sides corrupt entries so digest
   validation must evict; pool.worker dies on its first task of each
   arming, exercising respawn.  All streams derive from seed=11. *)
let soak_spec =
  "seed=11,service.tier:crash:p=0.25,cache.get:corrupt:p=0.2,cache.put:corrupt:p=0.15,pool.worker:crash:nth=1"

(* ---------- persist soak: the disk-backed store under damage ----------

   Fill a cache directory from a fault-free run, then for [rounds] rounds
   alternate physical damage (a flipped byte or a truncated tail in a
   segment file) with injected [cache.load]/[cache.flush] faults, reopen
   the directory in a fresh service each round (a process restart), and
   replay the batch.  Invariants:

     - damaged records are evicted and recompiled, never served: every
       full-quality reply stays bit-identical to the reference,
     - nothing escapes: physical corruption, injected load corruption
       and injected flush crashes all surface as counters and [Error]s,
     - the store self-heals: each round's flush re-appends what damage
       removed, and a final clean reopen serves the whole batch from
       the warm cache. *)
let persist_soak ~rounds batch expected =
  Common.with_temp_dir "qcr-chaos-persist" @@ fun dir ->
  Fault.disarm ();
  let open_store () =
    match Cache_store.open_dir dir with Ok s -> s | Error e -> failwith ("open_dir: " ^ e)
  in
  let seed_service = Service.create ~store:(open_store ()) () in
  ignore (Service.run_batch seed_service batch);
  (match Service.flush seed_service with
  | Ok _ -> ()
  | Error e -> failwith ("seed flush: " ^ e));
  let n_requests = List.length batch in
  let rng = Prng.create 1107 in
  let escaped = ref [] in
  let mismatches = ref 0 in
  let ok_compared = ref 0 in
  let corrupt_total = ref 0 in
  let recompiles = ref 0 in
  let flush_errors = ref 0 in
  let damage round =
    let segs =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".qcs")
      |> List.sort compare
    in
    match segs with
    | [] -> ()
    | segs -> (
        let seg = Filename.concat dir (List.nth segs (Prng.int rng (List.length segs))) in
        let data = Common.read_file seg in
        match round mod 3 with
        | 1 when String.length data > 0 ->
            (* flip one byte anywhere: body or digest damage fails the
               digest check; key damage fails the service-side key
               check; header damage abandons the segment tail *)
            let b = Bytes.of_string data in
            let i = Prng.int rng (Bytes.length b) in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
            Common.write_file seg (Bytes.to_string b)
        | 0 -> Common.write_file seg (String.sub data 0 (String.length data * 3 / 5))
        | _ -> () (* injected faults only this round *))
  in
  for round = 1 to rounds do
    match
      damage round;
      if round mod 2 = 0 then begin
        let spec_str =
          Printf.sprintf "seed=%d,cache.load:corrupt:p=0.2,cache.flush:crash:nth=%d"
            (1200 + round)
            (1 + (round mod 5))
        in
        match Fault.spec_of_string spec_str with
        | Ok s -> Fault.arm s
        | Error e -> failwith e
      end
      else Fault.disarm ();
      let service = Service.create ~store:(open_store ()) () in
      let replies = Service.run_batch service batch in
      List.iter
        (fun (r : Compile_reply.t) ->
          if full_quality r then begin
            incr ok_compared;
            match Hashtbl.find_opt expected r.Compile_reply.key with
            | Some d when d = reply_digest r -> ()
            | Some _ | None -> incr mismatches
          end)
        replies;
      let st = Service.stats service in
      corrupt_total := !corrupt_total + st.Service.cache_corrupt;
      recompiles := !recompiles + st.Service.cache_misses;
      (* self-heal: re-append whatever the damage removed; an injected
         flush crash must surface as [Error], never corrupt state, and
         the disarmed retry must succeed *)
      (match Service.flush service with
      | Ok _ -> ()
      | Error _ -> (
          incr flush_errors;
          Fault.disarm ();
          match Service.flush service with
          | Ok _ -> ()
          | Error e -> failwith ("flush retry: " ^ e)))
    with
    | () -> ()
    | exception e ->
        escaped := Printf.sprintf "persist round %d: %s" round (Printexc.to_string e) :: !escaped
  done;
  Fault.disarm ();
  (* convergence: a clean reopen serves the whole batch warm *)
  let final_service = Service.create ~store:(open_store ()) () in
  let final_replies = Service.run_batch final_service batch in
  let final_st = Service.stats final_service in
  let final_identical =
    List.for_all
      (fun (r : Compile_reply.t) ->
        (not (full_quality r))
        || Hashtbl.find_opt expected r.Compile_reply.key = Some (reply_digest r))
      final_replies
  in
  let healed = final_st.Service.cache_hits = n_requests && final_identical in
  let no_escape = !escaped = [] in
  let bit_identical = !mismatches = 0 in
  let observed = !corrupt_total > 0 in
  Printf.printf
    "  persist: %d rounds | corrupt=%d recompiles=%d flush-errors=%d mismatches=%d healed=%b\n%!"
    rounds !corrupt_total !recompiles !flush_errors !mismatches healed;
  ( no_escape && bit_identical && observed && healed,
    Json.Obj
      [
        ("rounds", Json.Num (float_of_int rounds));
        ( "invariants",
          Json.Obj
            [
              ("no_escaped_exceptions", Json.Bool no_escape);
              ("ok_replies_bit_identical", Json.Bool bit_identical);
              ("corruption_observed", Json.Bool observed);
              ("self_heals", Json.Bool healed);
            ] );
        ("escaped", Json.Arr (List.rev_map (fun e -> Json.Str e) !escaped));
        ("ok_replies_compared", Json.Num (float_of_int !ok_compared));
        ("corrupt_evictions", Json.Num (float_of_int !corrupt_total));
        ("recompiles", Json.Num (float_of_int !recompiles));
        ("flush_errors", Json.Num (float_of_int !flush_errors));
      ] )

(* ---------- serve soak: the TCP front-end under socket faults ----------

   A real [Qcr_net.Server] on a loopback port, with faults armed at the
   socket injection points: reads corrupt (mangled request bytes arrive
   as typed malformed replies, or as broken frames), the write path
   hard-closes mid-frame once (a disconnect exactly as a client sees
   one), accepts are delayed, and the compile tiers behind the service
   keep crashing.  Clients follow the contract the README documents:
   reconnect on any transport error and resubmit, treat typed error
   replies as retriable.  Invariants:

     - the server never dies: it answers a clean health check after the
       soak, and its drain exits without an escaped exception,
     - starvation-freedom (the fairness the round-robin scheduler
       promises): every client finishes its whole workload within a
       bounded number of attempts even while faults keep firing,
     - every full-quality reply stays bit-identical to the fault-free
       reference. *)

let serve_spec =
  "seed=23,net.read:corrupt:p=0.05,net.write:crash:nth=7,net.accept:delay=0.001:every=3,service.tier:crash:p=0.1"

let strip_v = function
  | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "v") fields)
  | j -> j

let serve_soak ~rounds batch expected =
  Fault.disarm ();
  (* portfolio compiles fan out over the default domain pool, whose
     single-driver contract belongs to this driver domain — the server
     domain serves the pool-free tiers *)
  let batch =
    List.filter
      (fun (r : Compile_request.t) -> r.Compile_request.mode <> Compile_request.Portfolio)
      batch
  in
  let service =
    Service.create ~retries:2 ~backoff_s:0.0 ~breaker_threshold:3 ~breaker_cooldown_s:0.01 ()
  in
  let port = Atomic.make 0 in
  let stopping = Atomic.make false in
  let config = { Qcr_net.Server.default_config with port = 0; tick_s = 0.002 } in
  let dom =
    Domain.spawn (fun () ->
        Qcr_net.Server.serve ~config
          ~on_listen:(fun p -> Atomic.set port p)
          ~stop:(fun () -> Atomic.get stopping)
          service)
  in
  while Atomic.get port = 0 do
    Unix.sleepf 0.001
  done;
  let port = Atomic.get port in
  let n_clients = 4 in
  let reconnects = ref 0 and resubmits = ref 0 and gave_up = ref 0 in
  let mismatches = ref 0 and ok_compared = ref 0 and completed = ref 0 in
  let conns = Array.make n_clients None in
  let conn i =
    match conns.(i) with
    | Some c -> c
    | None ->
        let c = Qcr_net.Client.connect ~port () in
        conns.(i) <- Some c;
        c
  in
  let drop i =
    (match conns.(i) with Some c -> Qcr_net.Client.close c | None -> ());
    conns.(i) <- None
  in
  (* [true] iff this reply settles [req].  Corruption on the read path
     can mangle a request into a different — still valid — one, so a
     compiled reply only counts when its content-addressed key matches
     the key computed from the request we actually sent; an
     [Invalid_request] can only be a mangled frame (the batch is
     well-formed) and is likewise retried. *)
  let settles (req : Compile_request.t) j =
    match Compile_reply.of_json (strip_v j) with
    | Error _ -> false
    | Ok r ->
        if r.Compile_reply.id <> req.Compile_request.id then false
        else (
          match r.Compile_reply.outcome with
          | Compile_reply.Compiled _
            when r.Compile_reply.key = Compile_request.cache_key req ->
              incr completed;
              if full_quality r then begin
                incr ok_compared;
                match Hashtbl.find_opt expected r.Compile_reply.key with
                | Some d when d = reply_digest r -> ()
                | _ -> incr mismatches
              end;
              true
          | Compile_reply.Compiled _ -> false
          | Compile_reply.Failed (Qcr_core.Pipeline.Invalid_request _) -> false
          | Compile_reply.Failed _ ->
              (* a genuine typed failure (tier crashes exhausted the
                 retries or tripped a breaker): served, not comparable *)
              incr completed;
              true)
  in
  (* One request, at-least-once: resubmit until a reply settles it.
     Every retry reconnects — a corrupted frame can smuggle extra reply
     lines into the stream, and a fresh connection is the only way to
     guarantee the next reply answers the next request.  The attempt
     bound turns a starved client into a failed invariant instead of a
     hung soak. *)
  let do_request i req =
    let rec attempt n =
      if n > 100 then incr gave_up
      else
        let retry () =
          drop i;
          incr reconnects;
          incr resubmits;
          attempt (n + 1)
        in
        match
          Qcr_net.Client.request ~timeout_s:10.0 (conn i)
            (Protocol.encode (Protocol.Op.Compile req))
        with
        | exception _ -> retry ()
        | Error _ -> retry ()
        | Ok j -> if settles req j then () else retry ()
    in
    attempt 1
  in
  let work = Array.of_list batch in
  let t0 = Unix.gettimeofday () in
  let spec =
    match Fault.spec_of_string serve_spec with
    | Ok s -> s
    | Error e -> failwith ("serve soak spec: " ^ e)
  in
  for _round = 1 to rounds do
    (* re-arming each round resets the nth=1-style counters, so the
       mid-frame write crash fires every round *)
    Fault.arm spec;
    (* interleave clients request-by-request so the round-robin
       scheduler sees competing connections *)
    Array.iteri (fun k req -> do_request (k mod n_clients) req) work
  done;
  Fault.disarm ();
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  (* the server must still answer a clean op after the soak *)
  Array.iteri (fun i _ -> drop i) conns;
  let alive =
    match
      Qcr_net.Client.request ~timeout_s:10.0 (conn 0) (Protocol.encode Protocol.Op.Health)
    with
    | Ok j -> ( match Json.member "status" j with Some (Json.Str "ok") -> true | _ -> false)
    | Error _ | (exception _) -> false
  in
  Array.iteri (fun i _ -> drop i) conns;
  Atomic.set stopping true;
  let drained = match Domain.join dom with () -> true | exception _ -> false in
  let expected_total = rounds * Array.length work in
  let all_served = !gave_up = 0 && !completed = expected_total in
  let bit_identical = !mismatches = 0 in
  let ok = alive && drained && all_served && bit_identical in
  Printf.printf
    "  serve: %d rounds x %d requests x %d clients in %.1f ms | reconnects=%d resubmits=%d \
     served=%d/%d mismatches=%d alive=%b\n\
     %!"
    rounds (Array.length work) n_clients wall_ms !reconnects !resubmits !completed expected_total
    !mismatches alive;
  ( ok,
    Json.Obj
      [
        ("spec", Json.Str serve_spec);
        ("rounds", Json.Num (float_of_int rounds));
        ("clients", Json.Num (float_of_int n_clients));
        ("requests_per_round", Json.Num (float_of_int (Array.length work)));
        ("wall_ms", Json.Num wall_ms);
        ( "invariants",
          Json.Obj
            [
              ("server_alive_after_soak", Json.Bool alive);
              ("drain_clean", Json.Bool drained);
              ("every_client_served", Json.Bool all_served);
              ("ok_replies_bit_identical", Json.Bool bit_identical);
            ] );
        ("reconnects", Json.Num (float_of_int !reconnects));
        ("resubmits", Json.Num (float_of_int !resubmits));
        ("served", Json.Num (float_of_int !completed));
        ("gave_up", Json.Num (float_of_int !gave_up));
        ("ok_replies_compared", Json.Num (float_of_int !ok_compared));
        ("mismatches", Json.Num (float_of_int !mismatches));
      ] )

(* ---------- recovery soak: kill -9 against the journaled CLI ----------

   The real binary as a child process: [qcr serve --listen 127.0.0.1:0
   --journal-dir J --cache-dir C], SIGKILLed at a seeded instant
   mid-burst, restarted over the same directories.  Every job whose
   admission was acked before the kill must be served after the restart
   — deduped to its original job id by its idempotency key, its reply
   bit-identical to the fault-free reference — and admitted-but-
   unfinished jobs must be recomputed.  This is the crash the
   in-process soaks cannot model: the process is gone mid-write, and
   only the journal and the cache directory survive. *)

let find_cli () =
  match Sys.getenv_opt "QCR_CLI" with
  | Some p when Sys.file_exists p -> Some p
  | _ ->
      let p =
        List.fold_left Filename.concat
          (Filename.dirname Sys.executable_name)
          [ Filename.parent_dir_name; "bin"; "qcr_cli.exe" ]
      in
      if Sys.file_exists p then Some p else None

type incarnation = { pid : int; port : int; out : Unix.file_descr }

let start_server ~cli ~journal_dir ~cache_dir =
  let out_r, out_w = Unix.pipe () in
  let argv =
    [|
      cli; "serve"; "--listen"; "127.0.0.1:0"; "--journal-dir"; journal_dir; "--cache-dir";
      cache_dir;
    |]
  in
  let pid = Unix.create_process cli argv Unix.stdin out_w Unix.stderr in
  Unix.close out_w;
  (* the child prints "listening on 127.0.0.1:PORT" once bound *)
  let buf = Buffer.create 128 in
  let scratch = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. 30.0 in
  let parse_port () =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.find_map (fun line ->
           if String.length line > 13 && String.sub line 0 13 = "listening on " then
             Option.bind (String.rindex_opt line ':') (fun i ->
                 int_of_string_opt (String.sub line (i + 1) (String.length line - i - 1)))
           else None)
  in
  let rec wait_port () =
    match parse_port () with
    | Some p -> p
    | None ->
        if Unix.gettimeofday () > deadline then failwith "recovery: server never listened";
        (match Unix.select [ out_r ] [] [] 1.0 with
        | [], _, _ -> ()
        | _ -> (
            match Unix.read out_r scratch 0 (Bytes.length scratch) with
            | 0 -> failwith "recovery: server exited before listening"
            | n -> Buffer.add_subbytes buf scratch 0 n));
        wait_port ()
  in
  let port = wait_port () in
  { pid; port; out = out_r }

let stop_server ~signal inc =
  (try Unix.kill inc.pid signal with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] inc.pid);
  try Unix.close inc.out with Unix.Unix_error _ -> ()

let recovery_soak ~rounds batch expected =
  Fault.disarm ();
  match find_cli () with
  | None ->
      Printf.printf "  recovery: bin/qcr_cli.exe not built — skipped (run dune build first)\n%!";
      (true, Json.Obj [ ("skipped", Json.Bool true); ("invariants", Json.Obj []) ])
  | Some cli ->
      Common.with_temp_dir "qcr-chaos-recovery" @@ fun root ->
      let journal_dir = Filename.concat root "journal" in
      let cache_dir = Filename.concat root "cache" in
      let work = Array.of_list batch in
      let n = Array.length work in
      let rng = Prng.create 4242 in
      let mismatches = ref 0 and unserved = ref 0 and unstable_ids = ref 0 in
      let acked_total = ref 0 and recovered_total = ref 0 and ids_checked = ref 0 in
      let t0 = Unix.gettimeofday () in
      for round = 1 to rounds do
        (* incarnation A: burst every submit in one write, read a seeded
           number of acks, then kill -9 with the rest in flight *)
        let inc = start_server ~cli ~journal_dir ~cache_dir in
        let idem i = Printf.sprintf "rec-%d-%d" round i in
        let acks = Hashtbl.create 16 in
        let c = Qcr_net.Client.connect ~port:inc.port () in
        Array.to_list work
        |> List.mapi (fun i r ->
               Json.to_string (Protocol.encode (Protocol.Op.Submit (r, Some (idem i)))))
        |> String.concat "\n"
        |> Qcr_net.Client.send_line c;
        let k = 1 + Prng.int rng n in
        (try
           for i = 0 to k - 1 do
             match Qcr_net.Client.recv ~timeout_s:10.0 c with
             | Ok j -> (
                 match Json.member "job" j with
                 | Some (Json.Str id) -> Hashtbl.replace acks i id
                 | _ -> ())
             | Error _ -> ()
           done
         with _ -> ());
        (* even rounds linger briefly so some outcomes reach the journal
           and the restored-as-done path is exercised too *)
        if round mod 2 = 0 then Unix.sleepf (0.002 *. float_of_int (Prng.int rng 8));
        stop_server ~signal:Sys.sigkill inc;
        Qcr_net.Client.close c;
        acked_total := !acked_total + Hashtbl.length acks;
        (* incarnation B: replay the journal over the same directories,
           then re-drive every request through the idempotent client *)
        let inc2 = start_server ~cli ~journal_dir ~cache_dir in
        (match
           let c2 = Qcr_net.Client.connect ~port:inc2.port () in
           Fun.protect
             ~finally:(fun () -> Qcr_net.Client.close c2)
             (fun () ->
               Qcr_net.Client.request ~timeout_s:10.0 c2 (Protocol.encode Protocol.Op.Jobs))
         with
        | Ok j -> (
            match Option.bind (Json.member "counts" j) (Json.member "recovered") with
            | Some (Json.Num r) -> recovered_total := !recovered_total + int_of_float r
            | _ -> ())
        | Error _ | (exception _) -> ());
        Array.iteri
          (fun i r ->
            match Qcr_net.Client.submit_idempotent ~port:inc2.port ~idem:(idem i) r with
            | Error _ -> incr unserved
            | Ok fin ->
                (* an acked admission is durable: the resubmit must land
                   on the id the dead incarnation acked *)
                (match (Hashtbl.find_opt acks i, Json.member "job" fin) with
                | Some id, Some (Json.Str id') ->
                    incr ids_checked;
                    if id <> id' then incr unstable_ids
                | _ -> ());
                (match Option.bind (Json.member "reply" fin) (fun rj ->
                         Result.to_option (Compile_reply.of_json (strip_v rj)))
                 with
                | Some rep -> (
                    match Hashtbl.find_opt expected rep.Compile_reply.key with
                    | Some d when d = reply_digest rep -> ()
                    | _ -> incr mismatches)
                | None -> incr mismatches))
          work;
        (* the last incarnation drains cleanly; the others die hard so
           the next round replays them too *)
        stop_server ~signal:(if round = rounds then Sys.sigterm else Sys.sigkill) inc2
      done;
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let served_ok = !unserved = 0 in
      let bit_identical = !mismatches = 0 in
      let ids_stable = !unstable_ids = 0 in
      let recovered_obs = !recovered_total > 0 in
      let ok = served_ok && bit_identical && ids_stable && recovered_obs in
      Printf.printf
        "  recovery: %d rounds x %d jobs, kill -9 each | acked=%d ids-stable=%d/%d recovered=%d \
         unserved=%d mismatches=%d\n\
         %!"
        rounds n !acked_total
        (!ids_checked - !unstable_ids)
        !ids_checked !recovered_total !unserved !mismatches;
      ( ok,
        Json.Obj
          [
            ("rounds", Json.Num (float_of_int rounds));
            ("jobs_per_round", Json.Num (float_of_int n));
            ("wall_ms", Json.Num wall_ms);
            ( "invariants",
              Json.Obj
                [
                  ("every_job_served_after_kill", Json.Bool served_ok);
                  ("replies_bit_identical", Json.Bool bit_identical);
                  ("acked_ids_stable_across_restart", Json.Bool ids_stable);
                  ("recovery_observed", Json.Bool recovered_obs);
                ] );
            ("acked", Json.Num (float_of_int !acked_total));
            ("acked_ids_checked", Json.Num (float_of_int !ids_checked));
            ("recovered", Json.Num (float_of_int !recovered_total));
            ("unserved", Json.Num (float_of_int !unserved));
            ("mismatches", Json.Num (float_of_int !mismatches));
          ] )

let run scale =
  Common.heading "Chaos soak: batch service under injected faults (BENCH_chaos.json)";
  let unique, dup_factor, rounds =
    match scale with
    | Common.Quick -> (4, 2, 2)
    | Common.Default -> (8, 2, 4)
    | Common.Full -> (12, 3, 8)
  in
  let base = List.init unique request in
  let batch = List.concat (List.init dup_factor (fun _ -> base)) in
  let n_requests = List.length batch in
  (* Reference: fault-free, deadline-free — fully deterministic. *)
  Fault.disarm ();
  let reference = Service.run_batch (Service.create ()) batch in
  let expected = Hashtbl.create 16 in
  List.iter
    (fun (r : Compile_reply.t) ->
      if full_quality r then Hashtbl.replace expected r.Compile_reply.key (reply_digest r))
    reference;
  (* Soak: same batch, same service, [rounds] rounds under faults.  Fast
     retries keep the soak tight; a low breaker threshold makes trips
     observable at this scale. *)
  let spec =
    match Fault.spec_of_string soak_spec with
    | Ok s -> s
    | Error e -> failwith ("chaos soak spec: " ^ e)
  in
  Fault.arm spec;
  let pool = Pool.default () in
  let deaths0 = Pool.worker_deaths pool and respawns0 = Pool.respawns pool in
  let service =
    Service.create ~retries:2 ~backoff_s:0.0 ~breaker_threshold:3 ~breaker_cooldown_s:0.01 ()
  in
  let escaped = ref [] in
  let order_ok = ref true in
  let mismatches = ref 0 in
  let ok_compared = ref 0 in
  let outcomes = Hashtbl.create 4 in
  let count_outcome r =
    let cls =
      match r.Compile_reply.outcome with
      | Compile_reply.Compiled _ when full_quality r -> "ok"
      | Compile_reply.Compiled _ -> "degraded"
      | Compile_reply.Failed (Qcr_core.Pipeline.Timeout _) -> "timeout"
      | Compile_reply.Failed (Qcr_core.Pipeline.Invalid_request _) -> "invalid"
      | Compile_reply.Failed (Qcr_core.Pipeline.Internal _) -> "internal"
      | Compile_reply.Failed (Qcr_core.Pipeline.Overloaded _) -> "overloaded"
      | Compile_reply.Failed Qcr_core.Pipeline.Canceled -> "canceled"
    in
    Hashtbl.replace outcomes cls (1 + Option.value ~default:0 (Hashtbl.find_opt outcomes cls))
  in
  let t0 = Unix.gettimeofday () in
  for round = 1 to rounds do
    match Service.run_batch service batch with
    | exception e -> escaped := Printf.sprintf "round %d: %s" round (Printexc.to_string e) :: !escaped
    | replies ->
        if
          List.length replies <> n_requests
          || not
               (List.for_all2
                  (fun (req : Compile_request.t) (r : Compile_reply.t) ->
                    req.Compile_request.id = r.Compile_reply.id)
                  batch replies)
        then order_ok := false;
        List.iter
          (fun (r : Compile_reply.t) ->
            count_outcome r;
            if full_quality r then begin
              incr ok_compared;
              match Hashtbl.find_opt expected r.Compile_reply.key with
              | Some d when d = reply_digest r -> ()
              | Some _ -> incr mismatches
              | None -> incr mismatches
            end)
          replies
  done;
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let fault_table = Fault.snapshot () in
  Fault.disarm ();
  let deaths = Pool.worker_deaths pool - deaths0 and respawns = Pool.respawns pool - respawns0 in
  let st = Service.stats service in
  let no_escape = !escaped = [] in
  let bit_identical = !mismatches = 0 in
  let persist_ok, persist_row = persist_soak ~rounds batch expected in
  let serve_ok, serve_row = serve_soak ~rounds batch expected in
  let recovery_ok, recovery_row = recovery_soak ~rounds batch expected in
  let ok = no_escape && !order_ok && bit_identical && persist_ok && serve_ok && recovery_ok in
  Printf.printf
    "  %d rounds x %d requests in %.1f ms | escapes=%d order_ok=%b ok-replies=%d mismatches=%d\n%!"
    rounds n_requests wall_ms (List.length !escaped) !order_ok !ok_compared !mismatches;
  Printf.printf "  retries=%d breaker-trips=%d corrupt-evictions=%d | pool deaths=%d respawns=%d\n%!"
    st.Service.retries st.Service.breaker_trips st.Service.cache_corrupt deaths respawns;
  List.iter
    (fun (name, hits, fired) -> Printf.printf "  point %-14s hits=%-5d fired=%d\n%!" name hits fired)
    fault_table;
  Json.to_file output_file
    (Json.Obj
       [
         ("schema", Json.Str "qcr-bench-chaos/v4");
         ("generated_by", Json.Str "dune exec bench/main.exe -- chaos");
         ( "scale",
           Json.Str
             (match scale with
             | Common.Quick -> "quick"
             | Common.Default -> "default"
             | Common.Full -> "full") );
         ("domains", Json.Num (float_of_int (Pool.default_domain_count ())));
         ("spec", Json.Str soak_spec);
         ("rounds", Json.Num (float_of_int rounds));
         ("batch_size", Json.Num (float_of_int n_requests));
         ("wall_ms", Json.Num wall_ms);
         ( "invariants",
           Json.Obj
             [
               ("no_escaped_exceptions", Json.Bool no_escape);
               ("replies_in_request_order", Json.Bool !order_ok);
               ("ok_replies_bit_identical", Json.Bool bit_identical);
             ] );
         ("escaped", Json.Arr (List.rev_map (fun e -> Json.Str e) !escaped));
         ("ok_replies_compared", Json.Num (float_of_int !ok_compared));
         ( "outcomes",
           Json.Obj
             (Hashtbl.fold (fun k v acc -> (k, Json.Num (float_of_int v)) :: acc) outcomes []
             |> List.sort compare) );
         ("stats", Service.stats_to_json ~breakers:(Service.breaker_states service) st);
         ( "faults",
           Json.Arr
             (List.map
                (fun (name, hits, fired) ->
                  Json.Obj
                    [
                      ("point", Json.Str name);
                      ("hits", Json.Num (float_of_int hits));
                      ("fired", Json.Num (float_of_int fired));
                    ])
                fault_table) );
         ( "pool",
           Json.Obj
             [
               ("worker_deaths", Json.Num (float_of_int deaths));
               ("respawns", Json.Num (float_of_int respawns));
             ] );
         ("persist", persist_row);
         ("serve", serve_row);
         ("recovery", recovery_row);
       ]);
  Printf.printf "  wrote %s\n%!" output_file;
  if not ok then begin
    Printf.eprintf "  CHAOS INVARIANT VIOLATED (see %s)\n%!" output_file;
    exit 1
  end
