(* One function per table/figure of the paper's evaluation (§7).  Each
   prints the same rows/series the paper reports; EXPERIMENTS.md records
   the paper-vs-measured comparison. *)

module Arch = Qcr_arch.Arch
module Noise = Qcr_arch.Noise
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Mapping = Qcr_circuit.Mapping
module Program = Qcr_circuit.Program
module Pipeline = Qcr_core.Pipeline
module Config = Qcr_core.Config
module Astar = Qcr_solver.Astar
module Suite = Qcr_workloads.Suite
module Hamiltonian = Qcr_workloads.Hamiltonian
module Tablefmt = Qcr_util.Tablefmt
module Prng = Qcr_util.Prng
module Qaoa = Qcr_sim.Qaoa
module Channel = Qcr_sim.Channel
module Sv = Qcr_sim.Statevector
open Common

(* ------------------------------------------------------------------ *)
(* Fig 17: greedy vs solver-guided (ATA) vs ours, normalized to greedy. *)

let fig17 scale =
  heading "Fig 17: pure-greedy vs solver(ATA) vs ours (normalized to greedy)";
  let sizes = match scale with Quick -> [ 64 ] | Default -> [ 64; 256; 1024 ] | Full -> [ 64; 256; 1024 ] in
  List.iter
    (fun kind ->
      let depth_table =
        Tablefmt.create [ "graph"; "greedy"; "solver"; "ours"; "(depth, normalized)" ]
      in
      let gate_table =
        Tablefmt.create [ "graph"; "greedy"; "solver"; "ours"; "(gate count, normalized)" ]
      in
      List.iter
        (fun n ->
          List.iter
            (fun density ->
              let cases = scale_cases scale ~at_n:n in
              let instances = Suite.random_instances ~cases ~n ~density () in
              let g = measure greedy_arm kind instances in
              let s = measure ata_arm kind instances in
              let o = measure ours kind instances in
              let label = Printf.sprintf "%d-%g" n density in
              let norm x base = Tablefmt.cell_ratio (x /. base) in
              Tablefmt.add_row depth_table
                [ label; "1.00"; norm s.mean_depth g.mean_depth; norm o.mean_depth g.mean_depth ];
              Tablefmt.add_row gate_table
                [ label; "1.00"; norm s.mean_cx g.mean_cx; norm o.mean_cx g.mean_cx ])
            [ 0.1; 0.3 ])
        sizes;
      Printf.printf "\n-- %s --\n" (kind_label kind);
      Tablefmt.print depth_table;
      print_newline ();
      Tablefmt.print gate_table)
    [ Arch.Heavy_hex; Arch.Sycamore ]

(* ------------------------------------------------------------------ *)
(* Figs 20-23: ours vs QAIM vs Paulihedral on heavy-hex / Sycamore. *)

let fig20_23 kind scale =
  heading
    (Printf.sprintf
       "Figs %s: depth and gate count on %s (ours vs QAIM_IC vs Paulihedral)"
       (match kind with Arch.Heavy_hex -> "20-21" | _ -> "22-23")
       (kind_label kind));
  let sizes = match scale with Quick -> [ 64 ] | _ -> [ 64; 128; 256 ] in
  List.iter
    (fun graph_type ->
      let depth_table =
        Tablefmt.create [ "graph"; "Ours"; "QAIM_IC"; "Paulihedral"; "(depth)" ]
      in
      let gate_table =
        Tablefmt.create [ "graph"; "Ours"; "QAIM_IC"; "Paulihedral"; "(gate count)" ]
      in
      List.iter
        (fun n ->
          List.iter
            (fun density ->
              let cases = scale_cases scale ~at_n:n in
              let instances =
                match graph_type with
                | `Random -> Suite.random_instances ~cases ~n ~density ()
                | `Regular -> Suite.regular_instances ~cases ~n ~density ()
              in
              let o = measure ours kind instances in
              let q = measure qaim kind instances in
              let p = measure paulihedral kind instances in
              let label =
                Printf.sprintf "%s-%d-%g"
                  (match graph_type with `Random -> "rand" | `Regular -> "reg")
                  n density
              in
              Tablefmt.add_row depth_table
                [ label; cell_mean o.mean_depth; cell_mean q.mean_depth; cell_mean p.mean_depth ];
              Tablefmt.add_row gate_table
                [ label; cell_mean o.mean_cx; cell_mean q.mean_cx; cell_mean p.mean_cx ])
            [ 0.3; 0.5 ])
        sizes;
      Printf.printf "\n-- %s graphs --\n"
        (match graph_type with `Random -> "random" | `Regular -> "regular");
      Tablefmt.print depth_table;
      print_newline ();
      Tablefmt.print gate_table)
    [ `Random; `Regular ]

let fig20_21 scale = fig20_23 Arch.Heavy_hex scale

let fig22_23 scale = fig20_23 Arch.Sycamore scale

(* ------------------------------------------------------------------ *)
(* Table 1: ours vs 2QAN vs QAIM.  2QAN's quadratic placement times out
   beyond 128 qubits on heavy-hex (and 64 on Sycamore) exactly as in the
   paper, so those cells print "-". *)

let tab1 scale =
  heading "Table 1: ours vs 2QAN vs QAIM (random graphs)";
  let table =
    Tablefmt.create
      [ "arch"; "graph"; "Ours D"; "2QAN D"; "QAIM D"; "Ours CX"; "2QAN CX"; "QAIM CX" ]
  in
  let sizes = match scale with Quick -> [ 64 ] | _ -> [ 64; 128; 256 ] in
  List.iter
    (fun kind ->
      let twoqan_limit = match kind with Arch.Heavy_hex -> 128 | _ -> 64 in
      List.iter
        (fun n ->
          List.iter
            (fun density ->
              let cases = scale_cases scale ~at_n:n in
              let instances = Suite.random_instances ~cases ~n ~density () in
              let o = measure ours kind instances in
              let q = measure qaim kind instances in
              let t =
                if n <= twoqan_limit then Some (measure twoqan kind instances) else None
              in
              let cell f = function Some p -> cell_mean (f p) | None -> "-" in
              Tablefmt.add_row table
                [
                  kind_label kind;
                  Printf.sprintf "%d-%g" n density;
                  cell_mean o.mean_depth;
                  cell (fun p -> p.mean_depth) t;
                  cell_mean q.mean_depth;
                  cell_mean o.mean_cx;
                  cell (fun p -> p.mean_cx) t;
                  cell_mean q.mean_cx;
                ])
            [ 0.3; 0.5 ])
        sizes)
    [ Arch.Heavy_hex; Arch.Sycamore ];
  Tablefmt.print table

(* ------------------------------------------------------------------ *)
(* Table 2: 1024-qubit graphs, ours vs Paulihedral. *)

let tab2 scale =
  heading "Table 2: 1024-qubit graphs (ours vs Paulihedral)";
  let n = match scale with Quick -> 128 | _ -> 1024 in
  let table =
    Tablefmt.create [ "arch"; "graph"; "Ours D"; "Pauli D"; "Ours CX"; "Pauli CX" ]
  in
  let workloads =
    [
      (Printf.sprintf "%d-0.3" n, Suite.random_instances ~cases:1 ~n ~density:0.3 ());
      (Printf.sprintf "%d-0.5" n, Suite.random_instances ~cases:1 ~n ~density:0.5 ());
      (Printf.sprintf "%d-%d" n (n * 5 / 16), Suite.regular_by_degree ~cases:1 ~n ~degree:(n * 5 / 16) ());
      (Printf.sprintf "%d-%d" n (n * 15 / 32), Suite.regular_by_degree ~cases:1 ~n ~degree:(n * 15 / 32) ());
    ]
  in
  List.iter
    (fun kind ->
      List.iter
        (fun (label, instances) ->
          let o = measure ours kind instances in
          let p = measure paulihedral kind instances in
          Tablefmt.add_row table
            [
              kind_label kind;
              label;
              cell_mean o.mean_depth;
              cell_mean p.mean_depth;
              cell_mean o.mean_cx;
              cell_mean p.mean_cx;
            ])
        workloads)
    [ Arch.Heavy_hex; Arch.Sycamore ];
  Tablefmt.print table

(* ------------------------------------------------------------------ *)
(* Table 3: 2-local Hamiltonian simulation at 64-qubit heavy-hex. *)

let tab3 _scale =
  heading "Table 3: 2-local Hamiltonians on heavy-hex (ours vs 2QAN)";
  let arch = Arch.smallest_for Arch.Heavy_hex 64 in
  let table =
    Tablefmt.create [ "benchmark"; "Ours D"; "2QAN D"; "Ours CX"; "2QAN CX" ]
  in
  let run name graph =
    let program = Hamiltonian.trotter_step graph in
    let o = Pipeline.run_exn (Pipeline.Request.make arch program) in
    let t = Qcr_baselines.Twoqan_like.compile arch program in
    Tablefmt.add_row table
      [
        name;
        string_of_int o.Pipeline.depth;
        string_of_int t.Pipeline.depth;
        string_of_int o.Pipeline.cx;
        string_of_int t.Pipeline.cx;
      ]
  in
  run "1D-Ising" (Hamiltonian.nnn_1d_ising 64);
  run "2D-XY" (Hamiltonian.nnn_2d_xy ~rows:8 ~cols:8);
  run "3D-Heisenberg" (Hamiltonian.nnn_3d_heisenberg ~dim:4);
  Tablefmt.print table

(* ------------------------------------------------------------------ *)
(* Table 4: ours vs the depth-optimal solver (OLSQ/SATMAP substitute) on
   small 2D-grid instances. *)

let tab4 scale =
  heading "Table 4: ours vs SAT-style optimal solver on 2D grid (tiny graphs)";
  let table =
    Tablefmt.create
      [ "graph"; "Ours D"; "solver D"; "Ours CX"; "solver CX"; "Ours s"; "solver s"; "opt?" ]
  in
  let cases = match scale with Quick -> [ (10, 0.2) ] | _ -> [ (10, 0.2); (10, 0.3); (12, 0.2); (12, 0.3); (15, 0.2) ] in
  List.iter
    (fun (n, density) ->
      let rng = Prng.create ((n * 100) + int_of_float (density *. 10.0)) in
      let graph = Generate.erdos_renyi rng ~n ~density in
      let program = Program.make graph Program.Bare_cz in
      let arch = Arch.smallest_for Arch.Grid n in
      let o = Pipeline.run_exn (Pipeline.Request.make arch program) in
      let n_phys = Arch.qubit_count arch in
      let init = Mapping.identity ~logical:n ~physical:n_phys in
      let t0 = Unix.gettimeofday () in
      let outcome =
        Astar.solve ~node_budget:40_000 ~time_budget:20.0 ~weight:1.5 ~problem:graph
          ~coupling:(Arch.graph arch) ~init ()
      in
      let solver_seconds = Unix.gettimeofday () -. t0 in
      let row =
        match outcome with
        | Some s ->
            [
              Printf.sprintf "%d-%g" n density;
              string_of_int o.Pipeline.depth;
              string_of_int s.Astar.depth;
              string_of_int o.Pipeline.cx;
              (* solver gate count: 2 CX per program edge + 3 per swap *)
              string_of_int ((2 * Graph.edge_count graph) + (3 * s.Astar.swap_total));
              Printf.sprintf "%.3f" o.Pipeline.compile_seconds;
              Printf.sprintf "%.2f" solver_seconds;
              (if s.Astar.optimal then "yes" else "anytime");
            ]
        | None ->
            [
              Printf.sprintf "%d-%g" n density;
              string_of_int o.Pipeline.depth;
              "-";
              string_of_int o.Pipeline.cx;
              "-";
              Printf.sprintf "%.3f" o.Pipeline.compile_seconds;
              Printf.sprintf "%.2f" solver_seconds;
              "budget";
            ]
      in
      Tablefmt.add_row table row)
    cases;
  Tablefmt.print table

(* ------------------------------------------------------------------ *)
(* Figs 24-25 + §7.4: QAOA on the Mumbai-like noisy device. *)

let qaoa_figure ~n ~rounds =
  let graph = Generate.erdos_renyi (Prng.create (31 + n)) ~n ~density:0.3 in
  let arch = Arch.mumbai_like () in
  let noise = Noise.sampled ~seed:9 arch in
  let compile_ours p =
    let r = Pipeline.run_exn (Pipeline.Request.make ~noise arch p) in
    (r.Pipeline.circuit, r.Pipeline.final)
  in
  let compile_baseline p =
    let r = Qcr_baselines.Twoqan_like.compile ~noise ~anneal_moves:3000 arch p in
    (r.Pipeline.circuit, r.Pipeline.final)
  in
  let o = Qaoa.run_driver ~rounds ~noise ~graph ~compile:compile_ours () in
  let b = Qaoa.run_driver ~rounds ~noise ~graph ~compile:compile_baseline () in
  let table = Tablefmt.create [ "round"; "Ours"; "Baseline"; "(expectation value)" ] in
  Array.iteri
    (fun i e ->
      Tablefmt.add_row table
        [ string_of_int (i + 1); Tablefmt.cell_float e; Tablefmt.cell_float b.Qaoa.energies.(i) ])
    o.Qaoa.energies;
  Tablefmt.print table;
  print_newline ();
  print_string
    (Qcr_util.Asciiplot.series ~names:[ "ours"; "baseline" ]
       [ o.Qaoa.energies; b.Qaoa.energies ]);
  Printf.printf "best: ours %.3f | baseline %.3f | ideal floor %d\n" o.Qaoa.best_energy
    b.Qaoa.best_energy (-o.Qaoa.optimum_cut);
  (o, b, graph, noise, compile_ours, compile_baseline)

let fig24 scale =
  heading "Fig 24: full QAOA on Mumbai-like device, 10-qubit random graph (density 0.3)";
  let rounds = match scale with Quick -> 8 | _ -> 30 in
  ignore (qaoa_figure ~n:10 ~rounds)

let fig25 scale =
  heading "Fig 25: full QAOA on Mumbai-like device, 20-qubit random graph (density 0.3)";
  let rounds = match scale with Quick -> 4 | _ -> 25 in
  ignore (qaoa_figure ~n:20 ~rounds)

let tvd scale =
  heading "TVD (§7.4): compiled-circuit output vs ideal distribution";
  let table = Tablefmt.create [ "benchmark"; "Ours"; "2QAN" ] in
  let sizes = match scale with Quick -> [ 10 ] | _ -> [ 10; 20 ] in
  List.iter
    (fun n ->
      let graph = Generate.erdos_renyi (Prng.create (31 + n)) ~n ~density:0.3 in
      let arch = Arch.mumbai_like () in
      let noise = Noise.sampled ~seed:9 arch in
      let program = Program.make graph (Program.Qaoa_maxcut { gamma = 0.4; beta = 0.35 }) in
      let ideal = Sv.probabilities (Sv.run (Program.logical_circuit program)) in
      (* shot sampling over 2^20 bins saturates TVD for any circuit, so
         the distance is taken on the exact channel output *)
      let tvd_of compiled final =
        let e = Qaoa.evaluate ~noise ~graph ~compiled ~final () in
        Channel.tvd e.Qaoa.distribution ideal
      in
      let o = Pipeline.run_exn (Pipeline.Request.make ~noise arch program) in
      let b = Qcr_baselines.Twoqan_like.compile ~noise ~anneal_moves:3000 arch program in
      Tablefmt.add_row table
        [
          Printf.sprintf "random %d-0.3" n;
          Printf.sprintf "%.2f" (tvd_of o.Pipeline.circuit o.Pipeline.final);
          Printf.sprintf "%.2f" (tvd_of b.Pipeline.circuit b.Pipeline.final);
        ])
    sizes;
  Tablefmt.print table

(* ------------------------------------------------------------------ *)
(* Fig 26: compilation time scaling. *)

let fig26 scale =
  heading "Fig 26: compilation time vs problem size (heavy-hex, density 0.3)";
  let sizes =
    match scale with
    | Quick -> [ 64; 128 ]
    | Default | Full -> [ 64; 128; 256; 384; 512; 768; 1024 ]
  in
  let table = Tablefmt.create [ "qubits"; "compile (s)"; "depth"; "CX" ] in
  let times = ref [] in
  List.iter
    (fun n ->
      let inst = List.hd (Suite.random_instances ~cases:1 ~n ~density:0.3 ()) in
      let program = Suite.program_of inst in
      let arch = Arch.smallest_for Arch.Heavy_hex n in
      let r = Pipeline.run_exn (Pipeline.Request.make arch program) in
      times := r.Pipeline.compile_seconds :: !times;
      Tablefmt.add_row table
        [
          string_of_int n;
          Printf.sprintf "%.2f" r.Pipeline.compile_seconds;
          string_of_int r.Pipeline.depth;
          string_of_int r.Pipeline.cx;
        ])
    sizes;
  Tablefmt.print table;
  print_newline ();
  print_string
    (Qcr_util.Asciiplot.series ~height:10 ~names:[ "compile seconds" ]
       [ Array.of_list (List.rev !times) ])

(* ------------------------------------------------------------------ *)
(* Ablations (§5.4-flavoured): which design choices carry the result. *)

let ablation scale =
  heading "Ablation: compiler design choices (heavy-hex, random 0.3)";
  let sizes = match scale with Quick -> [ 64 ] | _ -> [ 64; 256 ] in
  let table = Tablefmt.create [ "config"; "n"; "depth"; "CX"; "compile (s)" ] in
  let configs =
    [
      ("full (default)", Config.default);
      ("conflict-graph MIS sched", { Config.default with Config.use_coloring = true });
      ("single-swap (no matching)", { Config.default with Config.use_matching = false });
      ("no selector", { Config.default with Config.use_selector = false });
      ("no region detection", { Config.default with Config.use_regions = false });
      ("crosstalk-aware", { Config.default with Config.crosstalk_aware = true });
    ]
  in
  List.iter
    (fun n ->
      let cases = scale_cases scale ~at_n:n in
      let instances = Suite.random_instances ~cases ~n ~density:0.3 () in
      List.iter
        (fun (name, config) ->
          let arm =
            { arm_name = name; compile = (fun a p -> Pipeline.run_exn (Pipeline.Request.make ~config a p)) }
          in
          let m = measure arm Arch.Heavy_hex instances in
          Tablefmt.add_row table
            [
              name;
              string_of_int n;
              cell_mean m.mean_depth;
              cell_mean m.mean_cx;
              Printf.sprintf "%.2f" m.mean_seconds;
            ])
        configs;
      (* reference: a generic SABRE-style router with no regularity or
         parallel-SWAP machinery *)
      if n <= 128 then begin
        let arm =
          {
            arm_name = "generic SABRE-style";
            compile = (fun a p -> Qcr_baselines.Sabre_like.compile a p);
          }
        in
        let m = measure arm Arch.Heavy_hex instances in
        Tablefmt.add_row table
          [
            "generic SABRE-style (ref)";
            string_of_int n;
            cell_mean m.mean_depth;
            cell_mean m.mean_cx;
            Printf.sprintf "%.2f" m.mean_seconds;
          ]
      end)
    sizes;
  Tablefmt.print table
