(* Compilation-service benchmark: push a batch of mixed requests (sizes,
   devices, modes, with duplicates) through one [Qcr_service.Service]
   twice — a cold pass that fills the content-addressed compile cache and
   a warm pass served from it — and record throughput and hit rate to
   BENCH_service.json.  The replies digest witnesses determinism: it must
   be identical across passes and for every QCR_DOMAINS value.  The
   committed baseline lives in bench/baselines/BENCH_service.json and is
   generated with [QCR_DOMAINS=1]. *)

module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Prng = Qcr_util.Prng
module Digest64 = Qcr_util.Digest64
module Json = Qcr_obs.Json
module Service = Qcr_service.Service
module Compile_request = Qcr_service.Compile_request
module Compile_reply = Qcr_service.Compile_reply

let output_file = "BENCH_service.json"

(* Round-robin over device families and modes so the batch exercises
   every compile path.  Portfolio requests target a >16-qubit device so
   the A* arm (exponential in the coupling width) stays out of the race
   and the benchmark finishes in seconds. *)
let request i =
  let n = 8 + (i mod 5) in
  let kinds = [| Arch.Line; Arch.Grid; Arch.Heavy_hex; Arch.Hexagon |] in
  let kind = kinds.(i mod Array.length kinds) in
  let modes =
    [| Compile_request.Ours; Compile_request.Greedy; Compile_request.Ata; Compile_request.Portfolio |]
  in
  let mode = modes.(i mod Array.length modes) in
  let graph =
    Generate.erdos_renyi (Prng.create (100 + i)) ~n ~density:(min 1.0 (3.0 /. float_of_int (n - 1)))
  in
  Compile_request.make
    ~id:(Printf.sprintf "bench-%d" i)
    ~arch_size:(if mode = Compile_request.Portfolio then 18 else n)
    ~mode
    ?noise_seed:(if i mod 3 = 0 then Some (7 + i) else None)
    ~arch_kind:kind ~qubits:n ~edges:(Graph.edges graph) ()

let replies_digest replies =
  List.fold_left
    (fun d r ->
      Digest64.add_string d
        (Json.to_string (Compile_reply.strip_volatile (Compile_reply.to_json r))))
    Digest64.empty replies
  |> Digest64.to_hex

(* Cross-pass comparison additionally ignores the cache flag: the warm
   pass serves the same content from the cache. *)
let semantic_digest replies =
  List.fold_left
    (fun d r ->
      Digest64.add_string d
        (Json.to_string
           (Compile_reply.strip_volatile
              (Compile_reply.to_json { r with Compile_reply.cached = false }))))
    Digest64.empty replies
  |> Digest64.to_hex

let stats_fields (s : Service.stats) = Service.stats_to_json s

let run scale =
  Common.heading "Compilation service: cold vs warm batch (BENCH_service.json)";
  let unique, dup_factor =
    match scale with Common.Quick -> (4, 2) | Common.Default -> (12, 3) | Common.Full -> (24, 4)
  in
  let base = List.init unique request in
  let batch = List.concat (List.init dup_factor (fun _ -> base)) in
  let n_requests = List.length batch in
  let service = Service.create () in
  let timed_pass label =
    let before = Service.stats service in
    let t0 = Unix.gettimeofday () in
    let replies = Service.run_batch service batch in
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let delta = Service.stats_sub (Service.stats service) before in
    let hit_rate = float_of_int delta.Service.cache_hits /. float_of_int (max 1 n_requests) in
    Printf.printf
      "  %s pass: %3d requests in %8.2f ms  %8.1f req/s  hits %3d (%.0f%%)  misses %3d\n%!" label
      n_requests wall_ms
      (float_of_int n_requests /. (wall_ms /. 1000.0))
      delta.Service.cache_hits (100.0 *. hit_rate) delta.Service.cache_misses;
    ( replies,
      Json.Obj
        [
          ("label", Json.Str label);
          ("requests", Json.Num (float_of_int n_requests));
          ("wall_ms", Json.Num wall_ms);
          ("req_per_s", Json.Num (float_of_int n_requests /. (wall_ms /. 1000.0)));
          ("hit_rate", Json.Num hit_rate);
          ("stats", stats_fields delta);
        ] )
  in
  let cold_replies, cold_row = timed_pass "cold" in
  let warm_replies, warm_row = timed_pass "warm" in
  let identical = semantic_digest cold_replies = semantic_digest warm_replies in
  if not identical then Printf.printf "  WARNING: warm replies differ from cold replies\n%!";
  (* untimed counter pass on a fresh service, so the timed passes above
     ran with the telemetry sink off (comparable to the baseline) *)
  let _, counters =
    Common.counted (fun () -> ignore (Service.run_batch (Service.create ()) batch))
  in
  Json.to_file output_file
    (Json.Obj
       [
         ("schema", Json.Str "qcr-bench-service/v1");
         ("generated_by", Json.Str "dune exec bench/main.exe -- service");
         ( "scale",
           Json.Str
             (match scale with
             | Common.Quick -> "quick"
             | Common.Default -> "default"
             | Common.Full -> "full") );
         ("domains", Json.Num (float_of_int (Qcr_par.Pool.default_domain_count ())));
         ("unique_requests", Json.Num (float_of_int unique));
         ("batch_size", Json.Num (float_of_int n_requests));
         ("passes", Json.Arr [ cold_row; warm_row ]);
         ("cold_equals_warm", Json.Bool identical);
         ("replies_digest", Json.Str (replies_digest warm_replies));
         ( "counters",
           Json.Obj
             (List.map
                (fun (name, v) -> (name, Json.Num (float_of_int v)))
                counters.Qcr_obs.Obs.snap_counters) );
       ]);
  Printf.printf "  wrote %s\n%!" output_file
