(* Compilation-service benchmark, three sections into BENCH_service.json:

   - cold/warm: push a batch of mixed requests (sizes, devices, modes,
     with duplicates) through one [Qcr_service.Service] twice — a cold
     pass that fills the content-addressed compile cache and a warm pass
     served from it — recording throughput and hit rate.  The replies
     digest witnesses determinism: it must be identical across passes
     and for every QCR_DOMAINS value.
   - contention: hammer a raw [Qcr_util.Sharded_cache] from explicit
     domain pools, crossing shards {1, 16} with domains {1, 4}; the
     single-shard rows are the old single-lock cache's behaviour, so the
     16-shard/4-domain speedup over 1-shard/4-domain is the win the
     sharding buys under load.
   - restart: fill a store-backed service, flush, reopen the same
     directory in a fresh service and replay — measuring cold vs
     warm-restart p99 submit latency and asserting the warm pass is
     all hits and bit-identical.

   The committed baseline lives in bench/baselines/BENCH_service.json
   and is generated with [QCR_DOMAINS=1]. *)

module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Prng = Qcr_util.Prng
module Digest64 = Qcr_util.Digest64
module Json = Qcr_obs.Json
module Service = Qcr_service.Service
module Cache_store = Qcr_service.Cache_store
module Compile_request = Qcr_service.Compile_request
module Compile_reply = Qcr_service.Compile_reply
module Sharded_cache = Qcr_util.Sharded_cache
module Pool = Qcr_par.Pool

let output_file = "BENCH_service.json"

(* Round-robin over device families and modes so the batch exercises
   every compile path.  Portfolio requests target a >16-qubit device so
   the A* arm (exponential in the coupling width) stays out of the race
   and the benchmark finishes in seconds. *)
let request i =
  let n = 8 + (i mod 5) in
  let kinds = [| Arch.Line; Arch.Grid; Arch.Heavy_hex; Arch.Hexagon |] in
  let kind = kinds.(i mod Array.length kinds) in
  let modes =
    [| Compile_request.Ours; Compile_request.Greedy; Compile_request.Ata; Compile_request.Portfolio |]
  in
  let mode = modes.(i mod Array.length modes) in
  let graph =
    Generate.erdos_renyi (Prng.create (100 + i)) ~n ~density:(min 1.0 (3.0 /. float_of_int (n - 1)))
  in
  Compile_request.make
    ~id:(Printf.sprintf "bench-%d" i)
    ~arch_size:(if mode = Compile_request.Portfolio then 18 else n)
    ~mode
    ?noise_seed:(if i mod 3 = 0 then Some (7 + i) else None)
    ~arch_kind:kind ~qubits:n ~edges:(Graph.edges graph) ()

let replies_digest replies =
  List.fold_left
    (fun d r ->
      Digest64.add_string d
        (Json.to_string (Compile_reply.strip_volatile (Compile_reply.to_json r))))
    Digest64.empty replies
  |> Digest64.to_hex

(* Cross-pass comparison additionally ignores the cache flag: the warm
   pass serves the same content from the cache. *)
let semantic_digest replies =
  List.fold_left
    (fun d r ->
      Digest64.add_string d
        (Json.to_string
           (Compile_reply.strip_volatile
              (Compile_reply.to_json { r with Compile_reply.cached = false }))))
    Digest64.empty replies
  |> Digest64.to_hex

let stats_fields (s : Service.stats) = Service.stats_to_json s

(* ---------- contention: sharded vs single-lock under domain pools ---------- *)

(* A find-heavy synthetic load (1 add per 64 finds over 256 hot keys —
   the shape of warm serving traffic) against the cache itself, no
   compilation, so wall time is pure lock-and-lookup cost. *)
let contention_keys = Array.init 256 (fun i -> Printf.sprintf "bench-key-%032d" i)

let hammer cache ~ops ~lo =
  for i = lo to lo + ops - 1 do
    let key = contention_keys.(((i * 7) + (i lsr 5)) mod Array.length contention_keys) in
    if i mod 64 = 63 then Sharded_cache.add cache key key
    else ignore (Sharded_cache.find cache key)
  done

let contention_row ~shards ~domains ~ops =
  let cache =
    Sharded_cache.create ~shards ~weight:String.length ~capacity:(Array.length contention_keys) ()
  in
  Array.iter (fun key -> Sharded_cache.add cache key key) contention_keys;
  let pool = Pool.create ~domains in
  (* one warm-up chunk so domain spawn cost stays out of the timing *)
  Pool.for_range pool ~chunks:domains ~lo:0 ~hi:domains (fun lo hi ->
      ignore (lo, hi));
  let t0 = Unix.gettimeofday () in
  Pool.for_range pool ~chunks:domains ~lo:0 ~hi:ops (fun lo hi ->
      hammer cache ~ops:(hi - lo) ~lo);
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  Pool.shutdown pool;
  let ops_per_s = float_of_int ops /. (wall_ms /. 1000.0) in
  Printf.printf "  contention: shards=%2d domains=%d  %9d ops in %8.2f ms  %12.0f ops/s\n%!"
    shards domains ops wall_ms ops_per_s;
  ( (shards, domains, ops_per_s),
    Json.Obj
      [
        ("shards", Json.Num (float_of_int shards));
        ("domains", Json.Num (float_of_int domains));
        ("ops", Json.Num (float_of_int ops));
        ("wall_ms", Json.Num wall_ms);
        ("ops_per_s", Json.Num ops_per_s);
      ] )

(* ---------- restart: cold start vs warm restart from disk ---------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let timed_submits service batch =
  let lat =
    List.map
      (fun req ->
        let t0 = Unix.gettimeofday () in
        let reply = Service.submit service req in
        ((Unix.gettimeofday () -. t0) *. 1000.0, reply))
      batch
  in
  let samples = Array.of_list (List.map fst lat) in
  Array.sort compare samples;
  (samples, List.map snd lat)

let restart_section batch =
  Common.with_temp_dir "qcr-bench-restart" @@ fun dir ->
  let store ()  =
    match Cache_store.open_dir dir with Ok s -> s | Error e -> failwith e
  in
  let n_requests = List.length batch in
  let cold_service = Service.create ~store:(store ()) () in
  let cold_lat, cold_replies = timed_submits cold_service batch in
  let persisted = match Service.flush cold_service with Ok n -> n | Error e -> failwith e in
  (* a fresh handle on the same directory: this is the process restart *)
  let warm_store = store () in
  let loaded = Cache_store.persisted warm_store in
  let warm_service = Service.create ~store:warm_store () in
  let warm_lat, warm_replies = timed_submits warm_service batch in
  let warm_stats = Service.stats warm_service in
  let hit_rate = float_of_int warm_stats.Service.cache_hits /. float_of_int (max 1 n_requests) in
  let identical = semantic_digest cold_replies = semantic_digest warm_replies in
  if not identical then
    Printf.printf "  WARNING: warm-restart replies differ from the run that filled the cache\n%!";
  let cold_p99 = percentile cold_lat 0.99 and warm_p99 = percentile warm_lat 0.99 in
  Printf.printf
    "  restart: persisted %d, loaded %d | cold p99 %8.3f ms  warm-restart p99 %8.3f ms  hits \
     %.0f%%\n\
     %!"
    persisted loaded cold_p99 warm_p99 (100.0 *. hit_rate);
  Json.Obj
    [
      ("requests", Json.Num (float_of_int n_requests));
      ("persisted", Json.Num (float_of_int persisted));
      ("loaded", Json.Num (float_of_int loaded));
      ("cold_p50_ms", Json.Num (percentile cold_lat 0.50));
      ("cold_p99_ms", Json.Num cold_p99);
      ("warm_p50_ms", Json.Num (percentile warm_lat 0.50));
      ("warm_p99_ms", Json.Num warm_p99);
      ("warm_hit_rate", Json.Num hit_rate);
      ("bit_identical", Json.Bool identical);
    ]

let run scale =
  Common.heading "Compilation service: cold vs warm batch (BENCH_service.json)";
  let unique, dup_factor =
    match scale with Common.Quick -> (4, 2) | Common.Default -> (12, 3) | Common.Full -> (24, 4)
  in
  let base = List.init unique request in
  let batch = List.concat (List.init dup_factor (fun _ -> base)) in
  let n_requests = List.length batch in
  let service = Service.create () in
  let timed_pass label =
    let before = Service.stats service in
    let t0 = Unix.gettimeofday () in
    let replies = Service.run_batch service batch in
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let delta = Service.stats_sub (Service.stats service) before in
    let hit_rate = float_of_int delta.Service.cache_hits /. float_of_int (max 1 n_requests) in
    Printf.printf
      "  %s pass: %3d requests in %8.2f ms  %8.1f req/s  hits %3d (%.0f%%)  misses %3d\n%!" label
      n_requests wall_ms
      (float_of_int n_requests /. (wall_ms /. 1000.0))
      delta.Service.cache_hits (100.0 *. hit_rate) delta.Service.cache_misses;
    ( replies,
      Json.Obj
        [
          ("label", Json.Str label);
          ("requests", Json.Num (float_of_int n_requests));
          ("wall_ms", Json.Num wall_ms);
          ("req_per_s", Json.Num (float_of_int n_requests /. (wall_ms /. 1000.0)));
          ("hit_rate", Json.Num hit_rate);
          ("stats", stats_fields delta);
        ] )
  in
  let cold_replies, cold_row = timed_pass "cold" in
  let warm_replies, warm_row = timed_pass "warm" in
  let identical = semantic_digest cold_replies = semantic_digest warm_replies in
  if not identical then Printf.printf "  WARNING: warm replies differ from cold replies\n%!";
  let contention_ops =
    match scale with Common.Quick -> 100_000 | Common.Default -> 1_000_000 | Common.Full -> 4_000_000
  in
  let contention =
    List.map
      (fun (shards, domains) -> contention_row ~shards ~domains ~ops:contention_ops)
      [ (1, 1); (16, 1); (1, 4); (16, 4) ]
  in
  let ops_at shards domains =
    List.fold_left
      (fun acc ((s, d, ops_per_s), _) -> if s = shards && d = domains then ops_per_s else acc)
      0.0 contention
  in
  let speedup_4d = ops_at 16 4 /. ops_at 1 4 in
  Printf.printf "  contention: sharded vs single-lock speedup at 4 domains: %.2fx\n%!" speedup_4d;
  let restart = restart_section base in
  (* untimed counter pass on a fresh service, so the timed passes above
     ran with the telemetry sink off (comparable to the baseline) *)
  let _, counters =
    Common.counted (fun () -> ignore (Service.run_batch (Service.create ()) batch))
  in
  Json.to_file output_file
    (Json.Obj
       [
         ("schema", Json.Str "qcr-bench-service/v2");
         ("generated_by", Json.Str "dune exec bench/main.exe -- service");
         ( "scale",
           Json.Str
             (match scale with
             | Common.Quick -> "quick"
             | Common.Default -> "default"
             | Common.Full -> "full") );
         ("domains", Json.Num (float_of_int (Qcr_par.Pool.default_domain_count ())));
         ("unique_requests", Json.Num (float_of_int unique));
         ("batch_size", Json.Num (float_of_int n_requests));
         ("passes", Json.Arr [ cold_row; warm_row ]);
         ("cold_equals_warm", Json.Bool identical);
         ("replies_digest", Json.Str (replies_digest warm_replies));
         ("contention", Json.Arr (List.map snd contention));
         ("sharded_speedup_4d", Json.Num speedup_4d);
         ("restart", restart);
         ( "counters",
           Json.Obj
             (List.map
                (fun (name, v) -> (name, Json.Num (float_of_int v)))
                counters.Qcr_obs.Obs.snap_counters) );
       ]);
  Printf.printf "  wrote %s\n%!" output_file
