(* Shared infrastructure for the benchmark harness: compiler arms,
   instance averaging, and table helpers. *)

module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Program = Qcr_circuit.Program
module Pipeline = Qcr_core.Pipeline
module Suite = Qcr_workloads.Suite
module Stats = Qcr_util.Stats
module Tablefmt = Qcr_util.Tablefmt
module Obs = Qcr_obs.Obs

type scale = Quick | Default | Full

(* Run [f] once with the telemetry sink enabled on fresh counter state and
   return its result with the counter snapshot.  Timed benchmark passes
   keep the sink disabled (so wall times stay comparable to the committed
   baselines); this separate untimed pass collects the counters that the
   BENCH_*.json "counters" sections record. *)
let counted f =
  let was_enabled = Obs.enabled () in
  Obs.enable ();
  Obs.reset ();
  let result = f () in
  let snap = Obs.snapshot () in
  if not was_enabled then Obs.disable ();
  Obs.reset ();
  (result, snap)

let scale_cases scale ~at_n =
  match scale with
  | Quick -> 1
  | Full -> 10
  | Default -> if at_n >= 1024 then 1 else if at_n >= 256 then 2 else 3

type arm = {
  arm_name : string;
  compile : Arch.t -> Program.t -> Pipeline.result;
}

let ours = { arm_name = "Ours"; compile = (fun a p -> Pipeline.run_exn (Pipeline.Request.make a p)) }

let greedy_arm = { arm_name = "greedy"; compile = (fun a p -> Pipeline.run_exn (Pipeline.Request.make ~mode:Pipeline.Request.Greedy a p)) }

let ata_arm = { arm_name = "solver"; compile = (fun a p -> Pipeline.run_exn (Pipeline.Request.make ~mode:Pipeline.Request.Ata a p)) }

let qaim = { arm_name = "QAIM_IC"; compile = (fun a p -> Qcr_baselines.Qaim_like.compile a p) }

let paulihedral =
  { arm_name = "Paulihedral"; compile = (fun a p -> Qcr_baselines.Paulihedral_like.compile a p) }

let twoqan =
  { arm_name = "2QAN"; compile = (fun a p -> Qcr_baselines.Twoqan_like.compile a p) }

type point = {
  mean_depth : float;
  mean_cx : float;
  mean_seconds : float;
}

(* Average an arm over a list of problem instances on the smallest fitting
   device of [kind].  Instances compile independently, so they fan out
   over the domain pool; [Pool.map] preserves instance order and the
   means below are computed from the ordered array, so the numbers are
   identical for any pool size. *)
let measure arm kind instances =
  let results =
    Qcr_par.Pool.map
      (Qcr_par.Pool.default ())
      (fun inst ->
        let program = Suite.program_of inst in
        let arch = Arch.smallest_for kind (Graph.vertex_count inst.Suite.graph) in
        arm.compile arch program)
      (Array.of_list instances)
  in
  {
    mean_depth = Stats.mean (Array.map (fun r -> float_of_int r.Pipeline.depth) results);
    mean_cx = Stats.mean (Array.map (fun r -> float_of_int r.Pipeline.cx) results);
    mean_seconds = Stats.mean (Array.map (fun r -> r.Pipeline.compile_seconds) results);
  }

let kind_label = function
  | Arch.Heavy_hex -> "Heavy-hex"
  | Arch.Sycamore -> "Sycamore"
  | Arch.Grid -> "2D-grid"
  | Arch.Grid3d -> "3D-grid"
  | Arch.Hexagon -> "Hexagon"
  | Arch.Line -> "Line"
  | Arch.Custom -> "Custom"

let heading title =
  Printf.printf "\n=== %s ===\n" title

let cell_mean x = Printf.sprintf "%.0f" x

(* Filesystem helpers for benchmarks that exercise the disk-backed cache
   store: scratch directories under the system temp dir, torn down even
   when the benchmark raises. *)
let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_temp_dir name f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d" name (Unix.getpid ()))
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc content)
