(* TCP serving benchmark, into BENCH_serve.json: a real [Qcr_net.Server]
   on a loopback ephemeral port, hammered by 8 concurrent clients
   multiplexed over [Unix.select] from the driver domain (the server
   event loop runs in its own domain and owns the service).

   Three passes over the same per-client request schedule:

   - cold-sync: every client keeps one synchronous [compile] op in
     flight; all keys are distinct, so every reply is a cache miss.
     Per-request latency is measured client-side, send to reply.
   - warm-sync: the same schedule again — now served from the compile
     cache, which is where the p50/p99 gap shows the cache paying off.
   - async: every client fires its whole schedule as one [submit] burst,
     then collects terminal replies with pipelined [wait]s — the
     throughput shape of the job API.
   - journaled: the async pass again, against a second server over the
     same warm service with a job journal attached — every admission now
     also costs one durable append, and the report carries the
     throughput delta ([journal_overhead_pct], budgeted at 5%).

   Every reply (sync and embedded async) is compared bit-for-bit against
   a private in-process [Service] fed the same requests, so the report's
   [bit_identical] flag witnesses that the network front-end adds no
   semantic noise.  The committed baseline lives in
   bench/baselines/BENCH_serve.json and is generated with
   [QCR_DOMAINS=1].

   The schedule avoids [Portfolio] mode deliberately: portfolio compiles
   fan out over the default domain pool, whose single-driver contract
   belongs to the benchmark driver, not the server domain. *)

module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Prng = Qcr_util.Prng
module Digest64 = Qcr_util.Digest64
module Json = Qcr_obs.Json
module Service = Qcr_service.Service
module Protocol = Qcr_service.Protocol
module Request = Qcr_service.Compile_request
module Reply = Qcr_service.Compile_reply
module Server = Qcr_net.Server
module Client = Qcr_net.Client

let output_file = "BENCH_serve.json"
let n_clients = 8

(* Mixed shapes and modes over the three pool-free compile paths. *)
let request i =
  let n = 8 + (i mod 5) in
  let kinds = [| Arch.Line; Arch.Grid; Arch.Heavy_hex; Arch.Hexagon |] in
  let modes = [| Request.Ours; Request.Greedy; Request.Ata |] in
  let graph =
    Generate.erdos_renyi (Prng.create (300 + i)) ~n ~density:(min 1.0 (3.0 /. float_of_int (n - 1)))
  in
  Request.make
    ~id:(Printf.sprintf "serve-%d" i)
    ~mode:modes.(i mod Array.length modes)
    ?noise_seed:(if i mod 3 = 0 then Some (7 + i) else None)
    ~arch_kind:kinds.(i mod Array.length kinds)
    ~qubits:n ~edges:(Graph.edges graph) ()

(* Reply content modulo transport: no version stamp, no volatile
   timings, no cache flag. *)
let normalize j =
  match Reply.strip_volatile j with
  | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "v" && k <> "cached") fields)
  | other -> other

let digest_of_bodies bodies =
  Array.fold_left (fun d body -> Digest64.add_string d body) Digest64.empty bodies
  |> Digest64.to_hex

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let fail_fmt fmt = Printf.ksprintf failwith fmt

let recv_or_fail client =
  match Client.recv ~timeout_s:60.0 client with
  | Ok j -> j
  | Error e -> fail_fmt "serve bench: recv failed: %s" e

let str_field j k =
  match Json.member k j with
  | Some (Json.Str s) -> s
  | _ -> fail_fmt "serve bench: missing field %S in %s" k (Json.to_string j)

(* Drive all clients concurrently: each keeps one sync compile in
   flight; [select] wakes the driver whenever any reply lands.  Bodies
   are recorded under the request's global index so the digest is
   schedule-order, not completion-order. *)
let sync_pass ~label ~port ~schedule bodies =
  let per_client = Array.length schedule.(0) in
  let clients = Array.init n_clients (fun _ -> Client.connect ~port ()) in
  Fun.protect
    ~finally:(fun () -> Array.iter Client.close clients)
    (fun () ->
      let next = Array.make n_clients 0 in
      let sent_at = Array.make n_clients 0.0 in
      let latencies = ref [] in
      let outstanding = ref 0 in
      let send_next i =
        let k = next.(i) in
        if k < per_client then begin
          next.(i) <- k + 1;
          sent_at.(i) <- Unix.gettimeofday ();
          incr outstanding;
          Client.send clients.(i) (Protocol.encode (Protocol.Op.Compile (snd schedule.(i).(k))))
        end
      in
      let t0 = Unix.gettimeofday () in
      Array.iteri (fun i _ -> send_next i) clients;
      while !outstanding > 0 do
        let fds = Array.to_list (Array.map Client.fd clients) in
        (match Unix.select fds [] [] 10.0 with
        | [], _, _ -> fail_fmt "serve bench: no reply within 10s (%s pass)" label
        | _ -> ());
        Array.iteri
          (fun i c ->
            match Client.try_recv_line c with
            | None -> ()
            | Some line ->
                let j =
                  match Json.of_string line with
                  | Ok j -> j
                  | Error e -> fail_fmt "serve bench: bad reply line: %s" e
                in
                latencies := ((Unix.gettimeofday () -. sent_at.(i)) *. 1000.0) :: !latencies;
                decr outstanding;
                let idx, _ = schedule.(i).(next.(i) - 1) in
                bodies.(idx) <- Json.to_string (normalize j);
                send_next i)
          clients
      done;
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let samples = Array.of_list !latencies in
      Array.sort compare samples;
      let total = Array.length samples in
      let p50 = percentile samples 0.50 and p99 = percentile samples 0.99 in
      let req_per_s = float_of_int total /. (wall_ms /. 1000.0) in
      Printf.printf
        "  %-9s %3d requests x %d clients in %8.2f ms  %8.1f req/s  p50 %7.3f ms  p99 %7.3f ms\n%!"
        label total n_clients wall_ms req_per_s p50 p99;
      Json.Obj
        [
          ("label", Json.Str label);
          ("requests", Json.Num (float_of_int total));
          ("wall_ms", Json.Num wall_ms);
          ("req_per_s", Json.Num req_per_s);
          ("p50_ms", Json.Num p50);
          ("p99_ms", Json.Num p99);
        ])

(* The async shape: burst all submits per client in one write, then
   pipeline a wait per job and collect terminal replies. *)
let async_pass ?(label = "async") ~port ~schedule bodies =
  let per_client = Array.length schedule.(0) in
  let clients = Array.init n_clients (fun _ -> Client.connect ~port ()) in
  Fun.protect
    ~finally:(fun () -> Array.iter Client.close clients)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      Array.iteri
        (fun i c ->
          Array.to_list schedule.(i)
          |> List.map (fun (_, r) -> Json.to_string (Protocol.encode (Protocol.Op.Submit (r, None))))
          |> String.concat "\n" |> Client.send_line c)
        clients;
      let ids =
        Array.map
          (fun c ->
            Array.init per_client (fun _ ->
                let j = recv_or_fail c in
                if str_field j "state" <> "queued" then
                  fail_fmt "serve bench: submit not admitted: %s" (Json.to_string j);
                str_field j "job"))
          clients
      in
      Array.iteri
        (fun i c ->
          Array.to_list ids.(i)
          |> List.map (fun id -> Json.to_string (Protocol.encode (Protocol.Op.Wait id)))
          |> String.concat "\n" |> Client.send_line c)
        clients;
      let total = n_clients * per_client in
      Array.iteri
        (fun i c ->
          (* terminal replies arrive in completion order; route each by
             the request id embedded in the reply *)
          let index_of_rid = Hashtbl.create per_client in
          Array.iter
            (fun (idx, (r : Request.t)) -> Hashtbl.replace index_of_rid r.Request.id idx)
            schedule.(i);
          for _ = 1 to per_client do
            let j = recv_or_fail c in
            if str_field j "state" <> "done" then
              fail_fmt "serve bench: job did not complete: %s" (Json.to_string j);
            match Json.member "reply" j with
            | Some reply ->
                let idx = Hashtbl.find index_of_rid (str_field reply "id") in
                bodies.(idx) <- Json.to_string (normalize reply)
            | None -> fail_fmt "serve bench: terminal wait without a reply: %s" (Json.to_string j)
          done)
        clients;
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let req_per_s = float_of_int total /. (wall_ms /. 1000.0) in
      Printf.printf "  %-9s %3d jobs     x %d clients in %8.2f ms  %8.1f req/s  (submit+wait)\n%!"
        label total n_clients wall_ms req_per_s;
      Json.Obj
        [
          ("label", Json.Str label);
          ("requests", Json.Num (float_of_int total));
          ("wall_ms", Json.Num wall_ms);
          ("req_per_s", Json.Num req_per_s);
        ])

let run scale =
  Common.heading "TCP serving: concurrent clients against Qcr_net.Server (BENCH_serve.json)";
  let per_client =
    match scale with Common.Quick -> 4 | Common.Default -> 12 | Common.Full -> 24
  in
  let total = n_clients * per_client in
  (* schedule.(i).(k) = (global index, request) for client i, slot k *)
  let schedule =
    Array.init n_clients (fun i ->
        Array.init per_client (fun k ->
            let idx = (i * per_client) + k in
            (idx, request idx)))
  in
  (* the in-process reference the wire replies must match bit-for-bit *)
  let reference =
    let direct = Service.create () in
    Array.init total (fun idx ->
        Json.to_string (normalize (Reply.to_json (Service.submit direct (request idx)))))
  in
  let reference_digest = digest_of_bodies reference in
  let service = Service.create () in
  let port = Atomic.make 0 in
  let stopping = Atomic.make false in
  let config = { Server.default_config with port = 0; tick_s = 0.002; max_queue = total } in
  let dom =
    Domain.spawn (fun () ->
        Server.serve ~config
          ~on_listen:(fun p -> Atomic.set port p)
          ~stop:(fun () -> Atomic.get stopping)
          service)
  in
  while Atomic.get port = 0 do
    Unix.sleepf 0.001
  done;
  let port = Atomic.get port in
  let pass_digest name pass_fn =
    let bodies = Array.make total "" in
    let row = pass_fn bodies in
    let d = digest_of_bodies bodies in
    if d <> reference_digest then
      Printf.printf "  WARNING: %s replies differ from the in-process service\n%!" name;
    (row, d = reference_digest)
  in
  let cold_row, cold_ok = pass_digest "cold-sync" (sync_pass ~label:"cold-sync" ~port ~schedule) in
  let warm_row, warm_ok = pass_digest "warm-sync" (sync_pass ~label:"warm-sync" ~port ~schedule) in
  let async_row, async_ok = pass_digest "async" (async_pass ~port ~schedule) in
  (* server-side verdicts over the wire, then stop: drain must hold the
     final stats *)
  let stats =
    let c = Client.connect ~port () in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        match Client.request ~timeout_s:30.0 c (Protocol.encode Protocol.Op.Stats) with
        | Ok j -> j
        | Error e -> fail_fmt "serve bench: stats failed: %s" e)
  in
  Atomic.set stopping true;
  Domain.join dom;
  (* fourth pass: the same warm service behind a journaled server, so
     every admission now also costs one durable append.  The delta
     against the unjournaled async pass is the price of durability. *)
  let num_of row k =
    match Json.member k row with Some (Json.Num n) -> n | _ -> fail_fmt "missing %s" k
  in
  let journal_row, journal_ok, journal_appends =
    Common.with_temp_dir "qcr-bench-serve-journal" (fun dir ->
        let journal =
          match Qcr_net.Journal.open_dir dir with
          | Ok j -> j
          | Error e -> fail_fmt "serve bench: journal: %s" e
        in
        let port = Atomic.make 0 in
        let stopping = Atomic.make false in
        let dom =
          Domain.spawn (fun () ->
              Server.serve ~config ~journal
                ~on_listen:(fun p -> Atomic.set port p)
                ~stop:(fun () -> Atomic.get stopping)
                service)
        in
        while Atomic.get port = 0 do
          Unix.sleepf 0.001
        done;
        let bodies = Array.make total "" in
        let row = async_pass ~label:"journaled" ~port:(Atomic.get port) ~schedule bodies in
        Atomic.set stopping true;
        Domain.join dom;
        let appends = Qcr_net.Journal.appends journal in
        Qcr_net.Journal.close journal;
        let d = digest_of_bodies bodies in
        if d <> reference_digest then
          Printf.printf "  WARNING: journaled replies differ from the in-process service\n%!";
        (row, d = reference_digest, appends))
  in
  let journal_overhead_pct =
    100.0 *. (1.0 -. (num_of journal_row "req_per_s" /. num_of async_row "req_per_s"))
  in
  if journal_appends < 2 * total then
    fail_fmt "serve bench: journal recorded %d appends for %d jobs" journal_appends total;
  Printf.printf "  journal: %d appends, throughput overhead %+.1f%% vs async%s\n%!"
    journal_appends journal_overhead_pct
    (if journal_overhead_pct > 5.0 then "  (WARNING: above the 5%% budget)" else "");
  let jobs_row = Option.value ~default:Json.Null (Json.member "jobs" stats) in
  let svc = Service.stats service in
  (* warm-sync, async and journaled passes replay cold-sync's keys *)
  let hit_rate = float_of_int svc.Service.cache_hits /. float_of_int (max 1 (3 * total)) in
  let bit_identical = cold_ok && warm_ok && async_ok && journal_ok in
  Printf.printf "  cache: %d hits %d misses (warm+async hit rate %.0f%%) | bit_identical=%b\n%!"
    svc.Service.cache_hits svc.Service.cache_misses (100.0 *. hit_rate) bit_identical;
  Json.to_file output_file
    (Json.Obj
       [
         ("schema", Json.Str "qcr-bench-serve/v2");
         ("generated_by", Json.Str "dune exec bench/main.exe -- serve");
         ( "scale",
           Json.Str
             (match scale with
             | Common.Quick -> "quick"
             | Common.Default -> "default"
             | Common.Full -> "full") );
         ("domains", Json.Num (float_of_int (Qcr_par.Pool.default_domain_count ())));
         ("protocol_version", Json.Num (float_of_int Protocol.version));
         ("clients", Json.Num (float_of_int n_clients));
         ("requests_per_client", Json.Num (float_of_int per_client));
         ("total_requests", Json.Num (float_of_int total));
         ("passes", Json.Arr [ cold_row; warm_row; async_row; journal_row ]);
         ("journal_appends", Json.Num (float_of_int journal_appends));
         ("journal_overhead_pct", Json.Num journal_overhead_pct);
         ("warm_hit_rate", Json.Num hit_rate);
         ("bit_identical", Json.Bool bit_identical);
         ("replies_digest", Json.Str reference_digest);
         ("jobs", jobs_row);
       ]);
  Printf.printf "  wrote %s\n%!" output_file;
  if not bit_identical then begin
    Printf.eprintf "  SERVE BENCH: wire replies diverged from the in-process service\n%!";
    exit 1
  end
