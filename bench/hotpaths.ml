(* Hot-path regression benchmark: times the inner loops the evaluation
   leans on — the QAOA cost-layer simulation (per-edge phase_on_mask sweeps
   vs the fused diagonal kernel), the depth-optimal A* solver (string-keyed
   vs Zobrist-keyed closed set), and the Monte-Carlo trajectory sampler
   (sequential vs fanned over the domain pool) — on fixed seeds, and emits
   machine-readable BENCH_hotpaths.json so future changes have a perf
   trajectory to compare against.  Schema v3 records the pool size
   ([domains]), the statevector parallel threshold, and wall vs CPU time
   per case.  The committed baseline lives in
   bench/baselines/BENCH_hotpaths.json and is generated with
   [QCR_DOMAINS=1]. *)

module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Mapping = Qcr_circuit.Mapping
module Program = Qcr_circuit.Program
module Statevector = Qcr_sim.Statevector
module Maxcut = Qcr_sim.Maxcut
module Qaoa = Qcr_sim.Qaoa
module Astar = Qcr_solver.Astar
module Prng = Qcr_util.Prng
module Obs = Qcr_obs.Obs

(* ---------- minimal JSON emitter (no external dependency) ---------- *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Int of int
  | Bool of bool

let rec emit b = function
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "%S:" k);
          emit b v)
        fields;
      Buffer.add_char b '}'
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          emit b v)
        items;
      Buffer.add_char b ']'
  | Str s -> Buffer.add_string b (Printf.sprintf "%S" s)
  | Num f -> Buffer.add_string b (Printf.sprintf "%.6g" f)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Bool v -> Buffer.add_string b (if v then "true" else "false")

let write_json path json =
  let b = Buffer.create 4096 in
  emit b json;
  Buffer.add_char b '\n';
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

let counters_json (snap : Obs.snapshot) =
  Obj (List.map (fun (name, v) -> (name, Int v)) snap.Obs.snap_counters)

(* Wall time shows the parallel speedup; CPU time ([Sys.time], summed
   over every domain) shows the total work, so cpu/wall ~ the effective
   parallelism of the case. *)
let time_ms f =
  let t0 = Unix.gettimeofday () in
  let c0 = Sys.time () in
  let r = f () in
  let cpu_ms = (Sys.time () -. c0) *. 1000.0 in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0, cpu_ms)

(* minimum over [reps] runs: the work is deterministic, so min filters
   scheduler/GC noise; the reported CPU time belongs to the best-wall run *)
let best_ms reps f =
  let best = ref infinity and best_cpu = ref infinity and result = ref None in
  for _ = 1 to reps do
    Gc.full_major ();
    let r, ms, cpu = time_ms f in
    if ms < !best then begin
      best := ms;
      best_cpu := cpu
    end;
    result := Some r
  done;
  (Option.get !result, !best, !best_cpu)

(* ---------- QAOA cost layer: per-edge sweeps vs fused kernel ---------- *)

let qaoa_angles iters i =
  let t = float_of_int i /. float_of_int (max 1 iters) in
  (0.1 +. (0.8 *. t), 0.2 +. (0.5 *. t))

(* the seed implementation of the evaluation hot loop: rebuild the logical
   circuit and run one O(2^n) sweep per H/Cphase/Rz/Rx gate, then score
   the cut edge by edge *)
let per_edge_path graph iters =
  let acc = ref 0.0 in
  for i = 0 to iters - 1 do
    let gamma, beta = qaoa_angles iters i in
    let program = Program.make graph (Program.Qaoa_maxcut { gamma; beta }) in
    let sv = Statevector.run (Program.logical_circuit program) in
    acc := !acc +. Maxcut.expectation_value graph (Statevector.probabilities sv)
  done;
  !acc

(* the fused path: cut table built once per graph (counted inside the
   timed region, amortized over the iterations exactly as in the driver),
   then one indexed sweep per gamma plus the mixer *)
let fused_path graph iters =
  let layer = Qaoa.cost_layer graph in
  let acc = ref 0.0 in
  for i = 0 to iters - 1 do
    let gamma, beta = qaoa_angles iters i in
    let sv = Qaoa.fused_state layer ~gamma ~beta in
    acc := !acc +. Maxcut.expectation_value_of_table layer.Qaoa.cut (Statevector.probabilities sv)
  done;
  !acc

let qaoa_case ~reps ~n ~graph_seed ~iters =
  (* density chosen so |E| ~ 2n (n=16 -> ~32 edges) *)
  let density = min 1.0 (4.0 /. float_of_int (n - 1)) in
  let graph = Generate.erdos_renyi (Prng.create graph_seed) ~n ~density in
  let edges = Graph.edge_count graph in
  let e_ref, per_edge_ms, per_edge_cpu_ms = best_ms reps (fun () -> per_edge_path graph iters) in
  let e_fused, fused_ms, fused_cpu_ms = best_ms reps (fun () -> fused_path graph iters) in
  (* correctness evidence: both paths must produce the same state *)
  let gamma, beta = qaoa_angles iters (iters - 1) in
  let program = Program.make graph (Program.Qaoa_maxcut { gamma; beta }) in
  let sv_ref = Statevector.run (Program.logical_circuit program) in
  let sv_fused = Qaoa.fused_state (Qaoa.cost_layer graph) ~gamma ~beta in
  let max_amp_diff = ref 0.0 in
  for b = 0 to (1 lsl n) - 1 do
    let rr, ri = Statevector.amplitude sv_ref b and fr, fi = Statevector.amplitude sv_fused b in
    max_amp_diff := max !max_amp_diff (max (abs_float (rr -. fr)) (abs_float (ri -. fi)))
  done;
  let speedup = per_edge_ms /. fused_ms in
  (* untimed counter-collection pass: the timed runs above executed with
     the telemetry sink disabled, so their wall times stay baseline-
     comparable; this pass records how much work each path does *)
  let _, counters = Common.counted (fun () -> fused_path graph iters) in
  Printf.printf "  qaoa n=%-2d |E|=%-3d iters=%-3d  per-edge %8.2f ms  fused %7.2f ms  %5.1fx  max|Δamp| %.1e\n%!"
    n edges iters per_edge_ms fused_ms speedup !max_amp_diff;
  ( Obj
      [
        ("n", Int n);
        ("edges", Int edges);
        ("graph_seed", Int graph_seed);
        ("iterations", Int iters);
        ("per_edge_ms", Num per_edge_ms);
        ("per_edge_cpu_ms", Num per_edge_cpu_ms);
        ("fused_ms", Num fused_ms);
        ("fused_cpu_ms", Num fused_cpu_ms);
        ("speedup", Num speedup);
        ("energy_abs_diff", Num (abs_float (e_ref -. e_fused)));
        ("max_amplitude_diff", Num !max_amp_diff);
        ("final_energy", Num (e_fused /. float_of_int iters));
        ("counters", counters_json counters);
      ],
    counters )

(* ---------- A* solver: string-keyed vs Zobrist-keyed closed set ---------- *)

let astar_case ~reps ~name ~problem ~coupling =
  let init =
    Mapping.identity
      ~logical:(Graph.vertex_count problem)
      ~physical:(Graph.vertex_count coupling)
  in
  let solve keying () =
    match Astar.solve ~keying ~problem ~coupling ~init () with
    | Some o -> o
    | None -> failwith (name ^ ": solver found no solution")
  in
  let o_s, string_ms, string_cpu_ms = best_ms reps (solve `String) in
  let o_z, zobrist_ms, zobrist_cpu_ms = best_ms reps (solve `Zobrist) in
  let agree = o_s.Astar.depth = o_z.Astar.depth && o_s.Astar.swap_total = o_z.Astar.swap_total in
  (* untimed pass with the sink on: search-effort counters (expansions,
     heuristic evaluations, closed-set hits) become diffable like timings *)
  let _, counters = Common.counted (fun () -> solve `Zobrist ()) in
  Printf.printf
    "  astar %-18s string %8.2f ms  zobrist %8.2f ms  %5.2fx  expanded %d/%d  collisions %d  %s\n%!"
    name string_ms zobrist_ms (string_ms /. zobrist_ms) o_s.Astar.expanded o_z.Astar.expanded
    o_z.Astar.collisions
    (if agree then "agree" else "MISMATCH");
  ( Obj
      [
        ("case", Str name);
        ("n_log", Int (Graph.vertex_count problem));
        ("n_phys", Int (Graph.vertex_count coupling));
        ("string_ms", Num string_ms);
        ("string_cpu_ms", Num string_cpu_ms);
        ("zobrist_ms", Num zobrist_ms);
        ("zobrist_cpu_ms", Num zobrist_cpu_ms);
        ("speedup", Num (string_ms /. zobrist_ms));
        ("expanded_string", Int o_s.Astar.expanded);
        ("expanded_zobrist", Int o_z.Astar.expanded);
        ("collisions", Int o_z.Astar.collisions);
        ("depth", Int o_z.Astar.depth);
        ("swap_total", Int o_z.Astar.swap_total);
        ("agree", Bool agree);
        ("counters", counters_json counters);
      ],
    counters )

(* ---------- trajectory sampling: sequential vs domain-pool fan-out ----------

   The simulation-heavy case: each trajectory replays the compiled
   circuit through the dense simulator with Pauli injections, and the
   trajectories are independent — exactly the fan-out the domain pool is
   for.  The sequential arm forces a one-domain pool; the parallel arm
   uses the ambient pool ([QCR_DOMAINS]).  Both produce bit-identical
   distributions (per-trajectory PRNG streams are pre-split and the
   partial sums combine in fixed chunk order), which the digest fields
   witness. *)

let trajectory_case ~reps ~n ~seed ~trajectories =
  let density = min 1.0 (4.0 /. float_of_int (n - 1)) in
  let graph = Generate.erdos_renyi (Prng.create seed) ~n ~density in
  let program = Program.make graph (Program.Qaoa_maxcut { gamma = 0.4; beta = 0.35 }) in
  let arch = Arch.smallest_for Arch.Line n in
  let noise = Qcr_arch.Noise.sampled ~seed:9 arch in
  let r = Qcr_core.Pipeline.run_exn (Qcr_core.Pipeline.Request.make ~noise arch program) in
  let sample () =
    Qcr_sim.Trajectory.distribution ~seed:(seed + 1) ~trajectories ~noise
      ~compiled:r.Qcr_core.Pipeline.circuit ~final:r.Qcr_core.Pipeline.final ()
  in
  let ambient = Qcr_par.Pool.default_domain_count () in
  let d_par, par_ms, par_cpu_ms = best_ms reps sample in
  Qcr_par.Pool.set_default_domains 1;
  let d_seq, seq_ms, seq_cpu_ms = best_ms reps sample in
  Qcr_par.Pool.set_default_domains ambient;
  let identical = d_par = d_seq in
  (* order-sensitive digest: any cross-domain divergence shows up *)
  let digest =
    fst
      (Array.fold_left
         (fun (acc, i) p -> (acc +. (float_of_int (i + 1) *. p), i + 1))
         (0.0, 0) d_par)
  in
  let speedup = seq_ms /. par_ms in
  let _, counters = Common.counted (fun () -> ignore (sample ())) in
  Printf.printf
    "  traj n=%-2d traj=%-3d  seq %8.2f ms  par(%d) %8.2f ms  %5.2fx  cpu/wall %4.2f  %s\n%!"
    n trajectories seq_ms ambient par_ms speedup (par_cpu_ms /. par_ms)
    (if identical then "identical" else "MISMATCH");
  ( Obj
      [
        ("n", Int n);
        ("seed", Int seed);
        ("trajectories", Int trajectories);
        ("depth", Int r.Qcr_core.Pipeline.depth);
        ("cx", Int r.Qcr_core.Pipeline.cx);
        ("seq_ms", Num seq_ms);
        ("seq_cpu_ms", Num seq_cpu_ms);
        ("par_ms", Num par_ms);
        ("par_cpu_ms", Num par_cpu_ms);
        ("speedup", Num speedup);
        ("identical", Bool identical);
        ("digest", Num digest);
        ("counters", counters_json counters);
      ],
    counters )

let biclique_2x3 () =
  let coupling = Graph.of_edges 6 [ (0, 1); (1, 2); (3, 4); (4, 5); (0, 3); (1, 4); (2, 5) ] in
  let problem = Graph.create 6 in
  List.iter
    (fun (u, v) -> Graph.add_edge problem u v)
    [ (0, 3); (0, 4); (0, 5); (1, 3); (1, 4); (1, 5); (2, 3); (2, 4); (2, 5) ];
  (problem, coupling)

let heavyhex_random ~n ~seed ~density =
  let coupling = Arch.graph (Arch.smallest_for Arch.Heavy_hex n) in
  let problem = Generate.erdos_renyi (Prng.create seed) ~n ~density in
  (problem, coupling)

let output_file = "BENCH_hotpaths.json"

let run scale =
  Common.heading
    "Hot paths: fused QAOA kernel, Zobrist A*, parallel trajectories (BENCH_hotpaths.json)";
  let reps, qaoa_sizes, astar_line_sizes, with_large, traj_cases =
    match scale with
    | Common.Quick -> (1, [ (10, 10) ], [ 4; 5 ], false, [ (10, 24) ])
    | Common.Default ->
        ( 3,
          [ (12, 30); (14, 30); (16, 40) ],
          [ 4; 5; 6 ],
          true,
          (* (10, 128) is the scaling showcase: the 2^10 state stays
             cache-resident per domain, so the speedup approaches the
             physical core count; the larger states add memory-bandwidth
             pressure and scale sublinearly. *)
          [ (10, 128); (12, 48); (14, 64) ] )
    | Common.Full ->
        ( 5,
          [ (12, 60); (14, 60); (16, 60); (18, 30) ],
          [ 4; 5; 6 ],
          true,
          [ (12, 96); (14, 96); (16, 64) ] )
  in
  let qaoa_rows, qaoa_snaps =
    (* seed 15 draws |E| = 32 exactly at n = 16 (the acceptance point) *)
    List.split (List.map (fun (n, iters) -> qaoa_case ~reps ~n ~graph_seed:15 ~iters) qaoa_sizes)
  in
  let astar_rows, astar_snaps =
    (* let-bound stages so rows print in the same order they land in the
       JSON ([@]'s operands evaluate right to left) *)
    let line_rows =
      List.map
        (fun n ->
          astar_case ~reps
            ~name:(Printf.sprintf "line%d-clique" n)
            ~problem:(Graph.complete n) ~coupling:(Generate.path n))
        astar_line_sizes
    in
    let grid_row =
      let problem, coupling = biclique_2x3 () in
      astar_case ~reps ~name:"grid2x3-biclique" ~problem ~coupling
    in
    let large_rows =
      if with_large then begin
        let problem, coupling = heavyhex_random ~n:6 ~seed:23 ~density:0.6 in
        [ astar_case ~reps ~name:"heavyhex-n6-random" ~problem ~coupling ]
      end
      else []
    in
    List.split (line_rows @ (grid_row :: large_rows))
  in
  let traj_rows, traj_snaps =
    (* two extra reps: wall-clock parallel speedup is noisier than the
       single-domain kernels, and min-of-reps needs more samples to
       filter scheduler interference *)
    List.split
      (List.map
         (fun (n, trajectories) -> trajectory_case ~reps:(reps + 2) ~n ~seed:15 ~trajectories)
         traj_cases)
  in
  (* run-wide counter totals, alongside the per-case sections *)
  let total_counters =
    List.fold_left Obs.merge_snapshots
      { Obs.snap_counters = []; snap_histograms = [] }
      (qaoa_snaps @ astar_snaps @ traj_snaps)
  in
  let scale_name =
    match scale with Common.Quick -> "quick" | Common.Default -> "default" | Common.Full -> "full"
  in
  write_json output_file
    (Obj
       [
         ("schema", Str "qcr-bench-hotpaths/v3");
         ("generated_by", Str "dune exec bench/main.exe -- hotpaths");
         ("scale", Str scale_name);
         ("domains", Int (Qcr_par.Pool.default_domain_count ()));
         ("par_threshold", Int (Statevector.par_threshold ()));
         ("traj_chunk", Int Qcr_sim.Trajectory.traj_chunk);
         ("qaoa_cost_layer", Arr qaoa_rows);
         ("astar", Arr astar_rows);
         ("trajectory", Arr traj_rows);
         ("counters", counters_json total_counters);
       ]);
  Printf.printf "  wrote %s\n%!" output_file
