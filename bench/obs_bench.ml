(* Telemetry overhead benchmark: proves the enabled-path cost of the
   observability stack stays inside its budget on the hot paths, and
   emits BENCH_obs.json so the budget is machine-checkable in CI.

   Two macro cases time the same deterministic workload with the sink
   disabled and enabled — a full pipeline compile (spans + counters per
   phase) and a warm service batch (cache hits, meters, per-tier
   quantile sketches) — and report the enabled/disabled ratio.  The
   true overhead is a lower bound of any noisy measurement, so each
   case takes the minimum overhead over [attempts] independent trials,
   each trial itself min-of-[reps] per side.  A micro section reports
   ns/op for the individual instruments (counter incr, span, meter
   observe) on both sides of the gate.

   The committed baseline lives in bench/baselines/BENCH_obs.json and
   is generated with [QCR_DOMAINS=1].  [within_budget] gates CI: the
   run exits 1 when a macro case exceeds [budget_pct]. *)

module Arch = Qcr_arch.Arch
module Generate = Qcr_graph.Generate
module Program = Qcr_circuit.Program
module Pipeline = Qcr_core.Pipeline
module Prng = Qcr_util.Prng
module Obs = Qcr_obs.Obs
module Registry = Qcr_obs.Registry
module Json = Qcr_obs.Json
module Service = Qcr_service.Service
module Compile_request = Qcr_service.Compile_request

let output_file = "BENCH_obs.json"

let budget_pct = 5.0

(* min over [reps] runs, Gc'd between runs: the workloads are
   deterministic, so min filters scheduler and GC noise *)
let best_ms reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    if ms < !best then best := ms
  done;
  !best

(* One trial: the workload with the sink off, then on.  Span buffers
   are cleared inside the enabled thunk — exactly what the serve loop
   does per request — so memory stays bounded and the clear cost is
   charged to the enabled side where it belongs. *)
let trial reps f =
  Obs.disable ();
  Obs.reset ();
  let off_ms = best_ms reps f in
  Obs.enable ();
  Obs.reset ();
  let on_ms =
    best_ms reps (fun () ->
        let r = f () in
        Obs.clear_spans ();
        r)
  in
  Obs.disable ();
  Obs.reset ();
  (off_ms, on_ms)

let macro_case ~attempts ~reps ~name f =
  let best = ref None in
  for _ = 1 to attempts do
    let off_ms, on_ms = trial reps f in
    let pct = ((on_ms /. off_ms) -. 1.0) *. 100.0 in
    match !best with
    | Some (_, _, best_pct) when best_pct <= pct -> ()
    | _ -> best := Some (off_ms, on_ms, pct)
  done;
  let off_ms, on_ms, pct = Option.get !best in
  let ok = pct <= budget_pct in
  Printf.printf "  %-14s off %8.3f ms  on %8.3f ms  overhead %+6.2f%%  %s\n%!" name off_ms
    on_ms pct
    (if ok then "ok" else "OVER BUDGET");
  ( Json.Obj
      [
        ("case", Json.Str name);
        ("disabled_ms", Json.Num off_ms);
        ("enabled_ms", Json.Num on_ms);
        ("overhead_pct", Json.Num pct);
        ("within_budget", Json.Bool ok);
      ],
    ok )

(* ---------- micro: ns/op per instrument, both sides of the gate ---------- *)

let ns_per_op iters f =
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let micro_case ~iters ~span_iters ~name ~enabled f =
  if enabled then Obs.enable () else Obs.disable ();
  Obs.reset ();
  (* span bodies allocate a record per call when enabled; fewer iters
     keep the buffer (cleared after) small *)
  let n = if String.length name >= 4 && String.sub name 0 4 = "span" then span_iters else iters in
  let ns = ns_per_op n f in
  Obs.disable ();
  Obs.reset ();
  Printf.printf "  %-18s %-8s %8.1f ns/op\n%!" name
    (if enabled then "enabled" else "disabled")
    ns;
  Json.Obj
    [
      ("op", Json.Str name);
      ("enabled", Json.Bool enabled);
      ("ns_per_op", Json.Num ns);
    ]

let run scale =
  Common.heading "Telemetry overhead: sink off vs on (BENCH_obs.json)";
  let attempts, reps, n, warm_batch, iters, span_iters =
    match scale with
    | Common.Quick -> (2, 2, 16, 8, 50_000, 10_000)
    | Common.Default -> (3, 3, 24, 16, 500_000, 50_000)
    | Common.Full -> (4, 5, 32, 24, 2_000_000, 100_000)
  in
  let was_enabled = Obs.enabled () in

  (* macro: pipeline compile — spans and counters on every phase *)
  let graph = Generate.erdos_renyi (Prng.create 15) ~n ~density:0.3 in
  let program = Program.make graph (Program.Qaoa_maxcut { gamma = 0.4; beta = 0.35 }) in
  let arch = Arch.smallest_for Arch.Heavy_hex n in
  let compile_row, compile_ok =
    macro_case ~attempts ~reps ~name:"compile" (fun () -> Pipeline.run_exn (Pipeline.Request.make arch program))
  in

  (* macro: warm service batch — cache-hit path with request meters,
     per-tier sketches and eventless bookkeeping.  The cache is warmed
     outside the timed region so every timed pass is pure hit traffic. *)
  let reqs =
    List.init warm_batch (fun i ->
        let nq = 8 + (i mod 4) in
        let g = Generate.erdos_renyi (Prng.create (100 + i)) ~n:nq ~density:0.4 in
        Compile_request.make
          ~id:(Printf.sprintf "warm-%d" i)
          ~arch_kind:Arch.Line ~qubits:nq
          ~edges:(Qcr_graph.Graph.edges g)
          ())
  in
  let service = Service.create () in
  ignore (Service.run_batch service reqs);
  let service_row, service_ok =
    macro_case ~attempts ~reps ~name:"service_warm" (fun () -> Service.run_batch service reqs)
  in

  (* micro: the instruments in isolation *)
  let c = Obs.counter "bench.obs.counter" in
  let h = Obs.histogram "bench.obs.hist" in
  let m = Registry.meter "bench.obs.meter" in
  (* let-bound so rows print in list order (list literals evaluate
     right to left) *)
  let micro_side enabled =
    let counter =
      micro_case ~iters ~span_iters ~name:"counter_incr" ~enabled (fun () -> Obs.incr c)
    in
    let hist =
      micro_case ~iters ~span_iters ~name:"histogram_observe" ~enabled (fun () ->
          Obs.observe h 1.25)
    in
    let meter =
      micro_case ~iters ~span_iters ~name:"meter_observe" ~enabled (fun () ->
          Registry.observe m 1.25)
    in
    let span =
      micro_case ~iters ~span_iters ~name:"span" ~enabled (fun () ->
          Obs.with_span "bench.obs.span" (fun () -> ()))
    in
    [ counter; hist; meter; span ]
  in
  let micro_off = micro_side false in
  let micro_on = micro_side true in
  let micro = micro_off @ micro_on in
  Obs.clear_spans ();
  if was_enabled then Obs.enable ();

  let within = compile_ok && service_ok in
  let scale_name =
    match scale with Common.Quick -> "quick" | Common.Default -> "default" | Common.Full -> "full"
  in
  Json.to_file output_file
    (Json.Obj
       [
         ("schema", Json.Str "qcr-bench-obs/v1");
         ("generated_by", Json.Str "dune exec bench/main.exe -- obs");
         ("scale", Json.Str scale_name);
         ("domains", Json.Num (float_of_int (Qcr_par.Pool.default_domain_count ())));
         ("budget_pct", Json.Num budget_pct);
         ("within_budget", Json.Bool within);
         ("macro", Json.Arr [ compile_row; service_row ]);
         ("micro", Json.Arr micro);
       ]);
  Printf.printf "  wrote %s\n%!" output_file;
  if not within then begin
    Printf.eprintf "  TELEMETRY OVERHEAD OVER BUDGET (> %.0f%%, see %s)\n%!" budget_pct
      output_file;
    exit 1
  end
