(* End-to-end QAOA Max-Cut on a noisy Mumbai-like 27-qubit device
   (paper §7.4, Figs 24-25): compile with our pipeline and with the
   2QAN-like baseline, run the angle-optimization loop, and print the
   expectation-value convergence plus TVD.

   Run with:  dune exec examples/maxcut_qaoa.exe *)

module Arch = Qcr_arch.Arch
module Noise = Qcr_arch.Noise
module Generate = Qcr_graph.Generate
module Program = Qcr_circuit.Program
module Pipeline = Qcr_core.Pipeline
module Twoqan = Qcr_baselines.Twoqan_like
module Qaoa = Qcr_sim.Qaoa
module Channel = Qcr_sim.Channel
module Sv = Qcr_sim.Statevector
module Tablefmt = Qcr_util.Tablefmt
module Prng = Qcr_util.Prng

let () =
  let n = 10 in
  let graph = Generate.erdos_renyi (Prng.create 31) ~n ~density:0.3 in
  let arch = Arch.mumbai_like () in
  let noise = Noise.sampled ~seed:9 arch in
  Printf.printf "QAOA Max-Cut, %d-qubit random graph (density 0.3) on %s\n\n" n (Arch.name arch);

  let compile_ours p =
    let r = Pipeline.run_exn (Pipeline.Request.make ~noise arch p) in
    (r.Pipeline.circuit, r.Pipeline.final)
  in
  let compile_baseline p =
    let r = Twoqan.compile ~noise ~anneal_moves:3000 arch p in
    (r.Pipeline.circuit, r.Pipeline.final)
  in

  let rounds = 25 in
  let ours = Qaoa.run_driver ~rounds ~noise ~graph ~compile:compile_ours () in
  let base = Qaoa.run_driver ~rounds ~noise ~graph ~compile:compile_baseline () in

  let table = Tablefmt.create [ "round"; "ours"; "baseline (2QAN-like)" ] in
  Array.iteri
    (fun i e ->
      if i mod 4 = 0 || i = rounds - 1 then
        Tablefmt.add_row table
          [
            string_of_int (i + 1);
            Tablefmt.cell_float e;
            Tablefmt.cell_float base.Qaoa.energies.(i);
          ])
    ours.Qaoa.energies;
  Tablefmt.print table;
  Printf.printf "\nbrute-force max cut = %d (so the ideal energy floor is %d)\n"
    ours.Qaoa.optimum_cut (-ours.Qaoa.optimum_cut);
  Printf.printf "best energy: ours %.3f at (gamma=%.2f, beta=%.2f) | baseline %.3f\n"
    ours.Qaoa.best_energy ours.Qaoa.best_gamma ours.Qaoa.best_beta base.Qaoa.best_energy;

  (* TVD of each compiled circuit's noisy output vs the ideal distribution *)
  let program = Program.make graph (Program.Qaoa_maxcut { gamma = ours.Qaoa.best_gamma; beta = ours.Qaoa.best_beta }) in
  let ideal = Sv.probabilities (Sv.run (Program.logical_circuit program)) in
  let tvd_of compile =
    let compiled, final = compile program in
    let e = Qaoa.evaluate ~noise ~graph ~compiled ~final () in
    Channel.tvd e.Qaoa.distribution ideal
  in
  Printf.printf "TVD vs ideal: ours %.3f | baseline %.3f (smaller is better)\n"
    (tvd_of compile_ours) (tvd_of compile_baseline)
