(* 2-local Hamiltonian simulation (paper §7.5, Table 3): compile one
   Trotter step of the NNN 1D-Ising, 2D-XY and 3D-Heisenberg interaction
   graphs on a 64-qubit heavy-hex device, ours vs the 2QAN-like baseline.

   Run with:  dune exec examples/hamiltonian_sim.exe *)

module Arch = Qcr_arch.Arch
module Hamiltonian = Qcr_workloads.Hamiltonian
module Pipeline = Qcr_core.Pipeline
module Twoqan = Qcr_baselines.Twoqan_like
module Tablefmt = Qcr_util.Tablefmt

let () =
  let arch = Arch.smallest_for Arch.Heavy_hex 64 in
  Printf.printf "2-local Hamiltonian Trotter steps on %s\n\n" (Arch.name arch);
  let table =
    Tablefmt.create [ "benchmark"; "ours depth"; "2QAN depth"; "ours CX"; "2QAN CX" ]
  in
  let run name graph =
    let program = Hamiltonian.trotter_step graph in
    let ours = Pipeline.run_exn (Pipeline.Request.make arch program) in
    let twoqan = Twoqan.compile ~anneal_moves:20000 arch program in
    Tablefmt.add_row table
      [
        name;
        string_of_int ours.Pipeline.depth;
        string_of_int twoqan.Pipeline.depth;
        string_of_int ours.Pipeline.cx;
        string_of_int twoqan.Pipeline.cx;
      ]
  in
  run "1D-Ising (NNN, 64)" (Hamiltonian.nnn_1d_ising 64);
  run "2D-XY (NNN, 8x8)" (Hamiltonian.nnn_2d_xy ~rows:8 ~cols:8);
  run "3D-Heisenberg (NNN, 4^3)" (Hamiltonian.nnn_3d_heisenberg ~dim:4);
  Tablefmt.print table
