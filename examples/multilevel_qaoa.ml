(* Multilevel (p = 2) QAOA compilation with an independent certificate.

   Each QAOA level is an independently-compiled permutable block; level 2
   starts from level 1's final mapping — no position-restoring SWAPs are
   needed because the next block is again order-free.

   Run with:  dune exec examples/multilevel_qaoa.exe *)

module Arch = Qcr_arch.Arch
module Generate = Qcr_graph.Generate
module Circuit = Qcr_circuit.Circuit
module Pipeline = Qcr_core.Pipeline
module Multilevel = Qcr_core.Multilevel
module Sv = Qcr_sim.Statevector
module Maxcut = Qcr_sim.Maxcut
module Tablefmt = Qcr_util.Tablefmt
module Prng = Qcr_util.Prng

let () =
  let graph = Generate.erdos_renyi (Prng.create 5) ~n:12 ~density:0.35 in
  let arch = Arch.smallest_for Arch.Heavy_hex 12 in
  Printf.printf "p-level QAOA on %s, 12-qubit random graph\n\n" (Arch.name arch);

  let table = Tablefmt.create [ "p"; "depth"; "CX"; "ideal energy" ] in
  let angle_sets =
    [
      [| (0.45, 0.35) |];
      [| (0.45, 0.35); (0.25, 0.2) |];
      [| (0.5, 0.4); (0.35, 0.25); (0.2, 0.12) |];
    ]
  in
  List.iter
    (fun angles ->
      let r = Multilevel.compile arch graph ~angles in
      (* ideal energy from the reference circuit *)
      let sv = Sv.run (Multilevel.logical_circuit graph ~angles) in
      let energy = Maxcut.expectation_value graph (Sv.probabilities sv) in
      Tablefmt.add_row table
        [
          string_of_int (Array.length angles);
          string_of_int r.Pipeline.depth;
          string_of_int r.Pipeline.cx;
          Printf.sprintf "%.3f" energy;
        ])
    angle_sets;
  Tablefmt.print table;
  Printf.printf "\nbrute-force max cut: %d\n" (Maxcut.best_cut_brute_force graph);

  (* certify the p=1 compilation from first principles (scales past the
     simulator; see Qcr_core.Checker) *)
  let program =
    Qcr_circuit.Program.make graph
      (Qcr_circuit.Program.Qaoa_maxcut { gamma = 0.45; beta = 0.35 })
  in
  let r = Pipeline.run_exn (Pipeline.Request.make arch program) in
  (match Qcr_core.Checker.certify ~arch ~program r with
  | Ok () -> print_endline "certificate: compilation verified (coupling, mapping, edge set, metrics)"
  | Error vs -> List.iter print_endline vs);
  ignore (Circuit.gate_count r.Pipeline.circuit)
