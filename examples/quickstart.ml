(* Quickstart: compile a small QAOA circuit onto an IBM heavy-hex device.

   Run with:  dune exec examples/quickstart.exe *)

module Arch = Qcr_arch.Arch
module Noise = Qcr_arch.Noise
module Generate = Qcr_graph.Generate
module Graph = Qcr_graph.Graph
module Program = Qcr_circuit.Program
module Circuit = Qcr_circuit.Circuit
module Qasm = Qcr_circuit.Qasm
module Pipeline = Qcr_core.Pipeline
module Prng = Qcr_util.Prng

let () =
  (* 1. An input problem graph: each edge is a permutable two-qubit
     operator (paper Fig 2).  Here: a random Max-Cut instance. *)
  let rng = Prng.create 2023 in
  let problem = Generate.erdos_renyi rng ~n:12 ~density:0.4 in
  Printf.printf "problem: %d vertices, %d edges (density %.2f)\n"
    (Graph.vertex_count problem) (Graph.edge_count problem) (Graph.density problem);

  (* 2. A QAOA program over that graph. *)
  let program = Program.make problem (Program.Qaoa_maxcut { gamma = 0.4; beta = 0.35 }) in

  (* 3. A hardware target: the smallest heavy-hex device that fits,
     with sampled calibration noise. *)
  let arch = Arch.smallest_for Arch.Heavy_hex 12 in
  let noise = Noise.sampled arch in
  Printf.printf "target: %s (%d physical qubits)\n" (Arch.name arch) (Arch.qubit_count arch);

  (* 4. Compile with the full hybrid pipeline ("ours"). *)
  let r = Pipeline.run_exn (Pipeline.Request.make ~noise arch program) in
  Printf.printf "compiled: depth=%d  cx=%d  swaps=%d  est. success=%.3f  (%.3fs)\n"
    r.Pipeline.depth r.Pipeline.cx r.Pipeline.swap_count
    (exp r.Pipeline.log_fidelity) r.Pipeline.compile_seconds;
  (match r.Pipeline.strategy with
  | Pipeline.Pure_greedy -> print_endline "selector chose: pure greedy"
  | Pipeline.Pure_ata -> print_endline "selector chose: rigid all-to-all pattern"
  | Pipeline.Hybrid c -> Printf.printf "selector chose: greedy prefix of %d cycles + ATA\n" c);

  (* 5. Compare against rigidly following the clique pattern and against
     pure greedy (paper Fig 17). *)
  let ata = Pipeline.run_exn (Pipeline.Request.make ~noise ~mode:Pipeline.Request.Ata arch program) in
  let greedy = Pipeline.run_exn (Pipeline.Request.make ~noise ~mode:Pipeline.Request.Greedy arch program) in
  Printf.printf "for reference:  ata depth=%d cx=%d | greedy depth=%d cx=%d\n"
    ata.Pipeline.depth ata.Pipeline.cx greedy.Pipeline.depth greedy.Pipeline.cx;

  (* 6. Export OpenQASM. *)
  let path = Filename.temp_file "qcr_quickstart" ".qasm" in
  Qasm.write_file path r.Pipeline.circuit;
  Printf.printf "wrote %s (%d gates)\n" path (Circuit.gate_count r.Pipeline.circuit)
