(* Scalability demo (paper Fig 26 + the all-to-all patterns of §3):
   generate structured ATA schedules for every architecture family and
   compile a large QAOA instance, reporting near-linear compile time.

   Run with:  dune exec examples/scaling.exe *)

module Arch = Qcr_arch.Arch
module Schedule = Qcr_swapnet.Schedule
module Ata = Qcr_swapnet.Ata
module Pipeline = Qcr_core.Pipeline
module Suite = Qcr_workloads.Suite
module Program = Qcr_circuit.Program
module Tablefmt = Qcr_util.Tablefmt

let () =
  print_endline "structured all-to-all schedules (machine-checked in tests):";
  let table = Tablefmt.create [ "architecture"; "qubits"; "ATA cycles"; "cycles/qubit"; "touches" ] in
  List.iter
    (fun kind ->
      let arch = Arch.smallest_for kind 256 in
      let sched = Ata.schedule arch in
      let n = Arch.qubit_count arch in
      Tablefmt.add_row table
        [
          Arch.name arch;
          string_of_int n;
          string_of_int (Schedule.cycle_count sched);
          Printf.sprintf "%.1f" (float_of_int (Schedule.cycle_count sched) /. float_of_int n);
          string_of_int (Schedule.touch_count sched);
        ])
    [ Arch.Line; Arch.Grid; Arch.Grid3d; Arch.Sycamore; Arch.Hexagon; Arch.Heavy_hex ];
  Tablefmt.print table;

  print_endline "\ncompile-time scaling on heavy-hex (density 0.3):";
  let table = Tablefmt.create [ "qubits"; "depth"; "CX"; "compile (s)" ] in
  List.iter
    (fun n ->
      let inst = List.hd (Suite.random_instances ~cases:1 ~n ~density:0.3 ()) in
      let program = Suite.program_of inst in
      let arch = Arch.smallest_for Arch.Heavy_hex n in
      let r = Pipeline.run_exn (Pipeline.Request.make arch program) in
      ignore (Program.qubit_count program);
      Tablefmt.add_row table
        [
          string_of_int n;
          string_of_int r.Pipeline.depth;
          string_of_int r.Pipeline.cx;
          Printf.sprintf "%.2f" r.Pipeline.compile_seconds;
        ])
    [ 64; 128; 256; 512 ];
  Tablefmt.print table
