module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Circuit = Qcr_circuit.Circuit
module Gate = Qcr_circuit.Gate
module Program = Qcr_circuit.Program
module Mapping = Qcr_circuit.Mapping
module Pipeline = Qcr_core.Pipeline
module Paulihedral = Qcr_baselines.Paulihedral_like
module Qaim = Qcr_baselines.Qaim_like
module Twoqan = Qcr_baselines.Twoqan_like
module Sabre = Qcr_baselines.Sabre_like
module Sv = Qcr_sim.Statevector
module Prng = Qcr_util.Prng

let qaoa_program g = Program.make g (Program.Qaoa_maxcut { gamma = 0.37; beta = 0.61 })

let check_equivalent arch (r : Pipeline.result) program =
  Alcotest.(check bool) "coupling respected" true
    (Circuit.validate_coupling arch r.Pipeline.circuit = Ok ());
  let sv_log = Sv.extract_logical (Sv.run r.Pipeline.circuit) ~final:r.Pipeline.final in
  let reference = Sv.run (Program.logical_circuit program) in
  Alcotest.(check bool) "unitary equivalence" true
    (Sv.fidelity sv_log reference > 1.0 -. 1e-7)

let cases () =
  let rng = Prng.create 21 in
  [
    ("line-5", Arch.line 5, qaoa_program (Generate.erdos_renyi rng ~n:5 ~density:0.6));
    ("grid-3x3", Arch.grid ~rows:3 ~cols:3, qaoa_program (Generate.erdos_renyi rng ~n:9 ~density:0.35));
    ("heavyhex-2x3", Arch.heavy_hex ~rows:2 ~row_len:3, qaoa_program (Generate.cycle 7));
  ]

let test_paulihedral_correct () =
  List.iter
    (fun (name, arch, program) ->
      let r = Paulihedral.compile arch program in
      Alcotest.(check bool) (name ^ " has gates") true (r.Pipeline.cx > 0);
      check_equivalent arch r program)
    (cases ())

let test_qaim_correct () =
  List.iter
    (fun (name, arch, program) ->
      let r = Qaim.compile arch program in
      Alcotest.(check bool) (name ^ " has gates") true (r.Pipeline.cx > 0);
      check_equivalent arch r program)
    (cases ())

let test_twoqan_correct () =
  List.iter
    (fun (name, arch, program) ->
      let r = Twoqan.compile ~anneal_moves:2000 arch program in
      Alcotest.(check bool) (name ^ " has gates") true (r.Pipeline.cx > 0);
      check_equivalent arch r program)
    (cases ())

let test_sabre_correct () =
  List.iter
    (fun (name, arch, program) ->
      let r = Sabre.compile arch program in
      Alcotest.(check bool) (name ^ " has gates") true (r.Pipeline.cx > 0);
      check_equivalent arch r program)
    (cases ())

let test_sabre_depth_worse_than_ours () =
  (* the generic router serializes SWAP decisions; our parallel matching
     must win on depth *)
  let rng = Prng.create 52 in
  let g = Generate.erdos_renyi rng ~n:32 ~density:0.3 in
  let arch = Arch.smallest_for Arch.Heavy_hex 32 in
  let program = Program.make g Program.Bare_cz in
  let ours = Pipeline.run_exn (Pipeline.Request.make arch program) in
  let sabre = Sabre.compile arch program in
  Alcotest.(check bool) "ours shallower" true (ours.Pipeline.depth <= sabre.Pipeline.depth)

let test_twoqan_placement_improves () =
  (* annealed placement should not be worse than identity on the
     quadratic objective *)
  let rng = Prng.create 33 in
  let g = Generate.erdos_renyi rng ~n:16 ~density:0.3 in
  let arch = Arch.grid ~rows:4 ~cols:4 in
  let program = Program.make g Program.Bare_cz in
  let identity = Mapping.identity ~logical:16 ~physical:16 in
  let annealed = Twoqan.anneal_placement ~moves:20000 arch program in
  Alcotest.(check bool) "anneal no worse" true
    (Twoqan.placement_cost arch program annealed
    <= Twoqan.placement_cost arch program identity)

let test_ours_beats_baselines_on_dense () =
  (* headline shape: on a dense instance our compiler produces no more
     depth/gates than the per-term Paulihedral-style router *)
  let rng = Prng.create 40 in
  let g = Generate.erdos_renyi rng ~n:16 ~density:0.5 in
  let arch = Arch.grid ~rows:4 ~cols:4 in
  let program = Program.make g Program.Bare_cz in
  let ours = Pipeline.run_exn (Pipeline.Request.make arch program) in
  let pauli = Paulihedral.compile arch program in
  Alcotest.(check bool) "depth no worse" true (ours.Pipeline.depth <= pauli.Pipeline.depth);
  Alcotest.(check bool) "cx no worse" true (ours.Pipeline.cx <= pauli.Pipeline.cx)

let test_baselines_deterministic () =
  let rng = Prng.create 61 in
  let g = Generate.erdos_renyi rng ~n:9 ~density:0.4 in
  let arch = Arch.grid ~rows:3 ~cols:3 in
  let program = Program.make g Program.Bare_cz in
  let a = Qaim.compile arch program and b = Qaim.compile arch program in
  Alcotest.(check int) "qaim deterministic" a.Pipeline.cx b.Pipeline.cx;
  let c = Paulihedral.compile arch program and d = Paulihedral.compile arch program in
  Alcotest.(check int) "paulihedral deterministic" c.Pipeline.cx d.Pipeline.cx;
  let e = Twoqan.compile ~seed:5 ~anneal_moves:500 arch program in
  let f = Twoqan.compile ~seed:5 ~anneal_moves:500 arch program in
  Alcotest.(check int) "2qan deterministic" e.Pipeline.cx f.Pipeline.cx

let suite =
  [
    Alcotest.test_case "paulihedral-like correct" `Slow test_paulihedral_correct;
    Alcotest.test_case "qaim-like correct" `Slow test_qaim_correct;
    Alcotest.test_case "2qan-like correct" `Slow test_twoqan_correct;
    Alcotest.test_case "sabre-like correct" `Slow test_sabre_correct;
    Alcotest.test_case "sabre depth worse" `Quick test_sabre_depth_worse_than_ours;
    Alcotest.test_case "2qan placement improves" `Quick test_twoqan_placement_improves;
    Alcotest.test_case "ours <= paulihedral (dense)" `Quick test_ours_beats_baselines_on_dense;
    Alcotest.test_case "baselines deterministic" `Quick test_baselines_deterministic;
  ]
