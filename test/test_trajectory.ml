module Arch = Qcr_arch.Arch
module Noise = Qcr_arch.Noise
module Generate = Qcr_graph.Generate
module Program = Qcr_circuit.Program
module Mapping = Qcr_circuit.Mapping
module Pipeline = Qcr_core.Pipeline
module Sv = Qcr_sim.Statevector
module Channel = Qcr_sim.Channel
module Trajectory = Qcr_sim.Trajectory
module Qaoa = Qcr_sim.Qaoa

let setup ~n ~density =
  let graph = Generate.erdos_renyi (Qcr_util.Prng.create (70 + n)) ~n ~density in
  let arch = Arch.smallest_for Arch.Heavy_hex n in
  let program = Program.make graph (Program.Qaoa_maxcut { gamma = 0.5; beta = 0.3 }) in
  let r = Pipeline.run_exn (Pipeline.Request.make arch program) in
  (graph, arch, program, r)

let test_zero_noise_matches_ideal () =
  let graph, arch, program, r = setup ~n:6 ~density:0.5 in
  ignore graph;
  let noise = Noise.ideal arch in
  let d =
    Trajectory.distribution ~trajectories:3 ~noise ~compiled:r.Pipeline.circuit
      ~final:r.Pipeline.final ()
  in
  let ideal = Sv.probabilities (Sv.run (Program.logical_circuit program)) in
  Alcotest.(check bool) "zero noise = ideal" true (Channel.tvd d ideal < 1e-9)

let test_distribution_normalized () =
  let _, arch, _, r = setup ~n:6 ~density:0.4 in
  let noise = Noise.uniform arch ~cx_error:0.02 in
  let d =
    Trajectory.distribution ~trajectories:50 ~noise ~compiled:r.Pipeline.circuit
      ~final:r.Pipeline.final ()
  in
  let total = Array.fold_left ( +. ) 0.0 d in
  Alcotest.(check bool) "normalized" true (abs_float (total -. 1.0) < 1e-9)

let test_noise_monotone () =
  let graph, arch, _, r = setup ~n:6 ~density:0.4 in
  let tvd e =
    Trajectory.tvd_vs_ideal ~trajectories:120 ~noise:(Noise.uniform arch ~cx_error:e) ~graph
      ~compiled:r.Pipeline.circuit ~final:r.Pipeline.final ()
  in
  Alcotest.(check bool) "more error, more tvd" true (tvd 0.002 < tvd 0.05)

let test_validates_channel_approximation () =
  (* the cheap depolarizing channel and the trajectory model must agree on
     the ORDER of two circuits with clearly different fidelities *)
  let graph, arch, _, r = setup ~n:8 ~density:0.4 in
  let noise = Noise.uniform arch ~cx_error:0.02 in
  let ideal_dist =
    Sv.probabilities
      (Sv.run (Program.logical_circuit (Program.make graph (Program.Qaoa_maxcut { gamma = 0.5; beta = 0.3 }))))
  in
  (* a deliberately worse circuit: the same compilation with a wasteful
     detour (extra swap ping-pong) *)
  let worse = Qcr_circuit.Circuit.create (Qcr_circuit.Circuit.qubit_count r.Pipeline.circuit) in
  List.iter (Qcr_circuit.Circuit.add worse) (Qcr_circuit.Circuit.gates r.Pipeline.circuit);
  (* ping-pong on a link carrying two real logical qubits, so the extra
     error opportunities hit the logical state *)
  let p = Mapping.phys_of_log r.Pipeline.final 0 in
  let q =
    List.find
      (fun w -> not (Mapping.is_dummy r.Pipeline.final (Mapping.log_of_phys r.Pipeline.final w)))
      (Qcr_graph.Graph.neighbors (Arch.graph arch) p)
  in
  for _ = 1 to 6 do
    Qcr_circuit.Circuit.add worse (Qcr_circuit.Gate.Swap (p, q));
    Qcr_circuit.Circuit.add worse (Qcr_circuit.Gate.Swap (p, q))
  done;
  let t_good =
    Trajectory.tvd_vs_ideal ~trajectories:150 ~noise ~graph ~compiled:r.Pipeline.circuit
      ~final:r.Pipeline.final ()
  in
  let t_bad =
    Trajectory.tvd_vs_ideal ~trajectories:150 ~noise ~graph ~compiled:worse
      ~final:r.Pipeline.final ()
  in
  Alcotest.(check bool) "trajectory orders circuits" true (t_good < t_bad);
  (* channel approximation gives the same ordering *)
  let channel_tvd compiled =
    let e = Qaoa.evaluate ~noise ~graph ~compiled ~final:r.Pipeline.final () in
    Channel.tvd e.Qaoa.distribution ideal_dist
  in
  Alcotest.(check bool) "channel orders circuits the same way" true
    (channel_tvd r.Pipeline.circuit < channel_tvd worse)

let test_logical_distribution_traces_dummies () =
  (* excite a dummy wire; the logical marginal must still normalize *)
  let c = Qcr_circuit.Circuit.create 3 in
  Qcr_circuit.Circuit.add c (Qcr_circuit.Gate.H 0);
  Qcr_circuit.Circuit.add c (Qcr_circuit.Gate.X 2);
  let final = Mapping.identity ~logical:2 ~physical:3 in
  let d = Trajectory.logical_distribution (Sv.run c) ~final in
  Alcotest.(check int) "logical size" 4 (Array.length d);
  Alcotest.(check (float 1e-9)) "normalized" 1.0 (Array.fold_left ( +. ) 0.0 d);
  Alcotest.(check (float 1e-9)) "H marginal" 0.5 (d.(0) +. d.(2))

let suite =
  [
    Alcotest.test_case "zero noise = ideal" `Quick test_zero_noise_matches_ideal;
    Alcotest.test_case "normalized" `Quick test_distribution_normalized;
    Alcotest.test_case "noise monotone" `Quick test_noise_monotone;
    Alcotest.test_case "validates channel approx" `Slow test_validates_channel_approximation;
    Alcotest.test_case "traces dummies" `Quick test_logical_distribution_traces_dummies;
  ]
