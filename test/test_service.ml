(* The compilation service: content-addressed caching, batch semantics,
   typed errors, and the deadline-degradation ladder (driven by a
   scripted clock, so every timing decision in the test is exact). *)

module Clock = Qcr_obs.Clock
module Json = Qcr_obs.Json
module Pool = Qcr_par.Pool
module Program = Qcr_circuit.Program
module Pipeline = Qcr_core.Pipeline
module Request = Qcr_service.Compile_request
module Reply = Qcr_service.Compile_reply
module Service = Qcr_service.Service

let triangle = [ (0, 1); (1, 2); (0, 2) ]

(* Distinct [gamma] values give distinct cache keys over the same shape. *)
let req ?mode ?deadline_s ?id ?trace gamma =
  Request.make ?id ?mode ?deadline_s ?trace
    ~interaction:(Program.Qaoa_maxcut { gamma; beta = 0.25 })
    ~arch_kind:Qcr_arch.Arch.Line ~qubits:4 ~edges:triangle ()

let reply_body r = Json.to_string (Reply.strip_volatile (Reply.to_json { r with Reply.cached = false }))

let test_submit_caches () =
  let s = Service.create () in
  let r1 = Service.submit s (req 0.4 ~id:"first") in
  let r2 = Service.submit s (req 0.4 ~id:"second") in
  Alcotest.(check bool) "first is cold" false r1.Reply.cached;
  Alcotest.(check bool) "second is a hit" true r2.Reply.cached;
  Alcotest.(check string) "ids follow the request" "second" r2.Reply.id;
  Alcotest.(check string) "same key" r1.Reply.key r2.Reply.key;
  let content r = reply_body { r with Reply.id = "" } in
  Alcotest.(check string) "hit is bit-identical" (content r1) (content r2);
  let st = Service.stats s in
  Alcotest.(check int) "requests" 2 st.Service.requests;
  Alcotest.(check int) "hits" 1 st.Service.cache_hits;
  Alcotest.(check int) "misses" 1 st.Service.cache_misses;
  Alcotest.(check int) "served_ok" 1 st.Service.served_ok

let test_cache_key_canonical () =
  let base = req 0.4 in
  let shuffled = { base with Request.edges = [ (2, 0); (2, 1); (1, 0); (0, 1) ] } in
  Alcotest.(check string) "edge order/orientation/duplicates do not matter"
    (Request.cache_key base) (Request.cache_key shuffled);
  let renamed = { base with Request.id = "other" } in
  let dead = { base with Request.deadline_s = Some 3.0 } in
  Alcotest.(check string) "id excluded" (Request.cache_key base) (Request.cache_key renamed);
  Alcotest.(check string) "deadline excluded" (Request.cache_key base) (Request.cache_key dead);
  let hotter = req 0.5 in
  let seeded = { base with Request.noise_seed = Some 7 } in
  let tuned = { base with Request.alpha = Some 0.9 } in
  Alcotest.(check bool) "interaction matters" true (Request.cache_key base <> Request.cache_key hotter);
  Alcotest.(check bool) "noise seed matters" true (Request.cache_key base <> Request.cache_key seeded);
  Alcotest.(check bool) "alpha matters" true (Request.cache_key base <> Request.cache_key tuned)

let test_lru_eviction () =
  let s = Service.create ~cache_capacity:1 () in
  ignore (Service.submit s (req 0.1));
  ignore (Service.submit s (req 0.2));
  (* 0.1 was evicted by 0.2, so it compiles again *)
  let r = Service.submit s (req 0.1) in
  Alcotest.(check bool) "evicted entry recompiles" false r.Reply.cached;
  Alcotest.(check int) "three misses" 3 (Service.stats s).Service.cache_misses

let test_invalid_request_is_typed () =
  let s = Service.create () in
  let bad = Request.make ~arch_kind:Qcr_arch.Arch.Line ~qubits:3 ~edges:[ (0, 5) ] () in
  let r = Service.submit s bad in
  (match r.Reply.outcome with
  | Reply.Failed (Pipeline.Invalid_request _) -> ()
  | _ -> Alcotest.fail "expected a typed Invalid_request reply");
  Alcotest.(check string) "status" "error" (Reply.status_name r);
  Alcotest.(check int) "counted as error" 1 (Service.stats s).Service.errors;
  Alcotest.(check int) "not a cache miss" 0 (Service.stats s).Service.cache_misses

let test_batch_dedup_and_order () =
  let s = Service.create () in
  let batch = [ req 0.1 ~id:"a"; req 0.2 ~id:"b"; req 0.1 ~id:"c"; req 0.2 ~id:"d" ] in
  let replies = Service.run_batch s batch in
  Alcotest.(check (list string)) "request order preserved" [ "a"; "b"; "c"; "d" ]
    (List.map (fun r -> r.Reply.id) replies);
  Alcotest.(check (list bool)) "first occurrence cold, duplicates cached"
    [ false; false; true; true ]
    (List.map (fun r -> r.Reply.cached) replies);
  let st = Service.stats s in
  Alcotest.(check int) "two misses" 2 st.Service.cache_misses;
  Alcotest.(check int) "two hits" 2 st.Service.cache_hits;
  (* a second pass over the same batch is served entirely from cache *)
  let again = Service.run_batch s batch in
  Alcotest.(check bool) "second pass all cached" true
    (List.for_all (fun r -> r.Reply.cached) again);
  Alcotest.(check (list string)) "second pass bit-identical"
    (List.map reply_body replies) (List.map reply_body again)

(* Drive the degradation ladder with a scripted clock: [on_attempt] sets
   the per-reading advancement to the simulated cost of the tier about to
   run, so the service's own [t_start]/[t_end] readings observe exactly
   that cost and feed it to the admission model. *)
let test_deadline_degradation () =
  let tick = ref 0.0 and step = ref 0.0 in
  let clock =
    Clock.make ~name:"scripted" (fun () ->
        let v = !tick in
        tick := v +. !step;
        v)
  in
  let sim_cost = function
    | Request.Ours -> 10.0
    | Request.Greedy -> 0.1
    | Request.Ata | Request.Portfolio -> 50.0
  in
  let s = Service.create ~clock ~on_attempt:(fun mode -> step := sim_cost mode) () in
  (* Warm the per-tier cost model: one greedy and one full compile, no
     deadline, distinct content so neither is a cache hit. *)
  ignore (Service.submit s (req 0.11 ~mode:Request.Greedy));
  step := 0.0;
  ignore (Service.submit s (req 0.22 ~mode:Request.Ours));
  step := 0.0;
  (* 1 s budget: ours (predicted 10 s) is skipped, greedy (0.1 s) fits. *)
  let degraded = Service.submit s (req 0.33 ~mode:Request.Ours ~deadline_s:1.0) in
  step := 0.0;
  (match degraded.Reply.outcome with
  | Reply.Compiled { mode = Request.Greedy; _ } -> ()
  | _ -> Alcotest.fail "expected degradation to the greedy tier");
  Alcotest.(check string) "status" "degraded" (Reply.status_name degraded);
  Alcotest.(check bool) "marked degraded" true (Reply.degraded degraded);
  (* 0.05 s budget: no tier fits; the reply is a typed timeout. *)
  let late = Service.submit s (req 0.44 ~mode:Request.Ours ~deadline_s:0.05) in
  step := 0.0;
  (match late.Reply.outcome with
  | Reply.Failed (Pipeline.Timeout { deadline_s }) ->
      Alcotest.(check (float 1e-9)) "deadline echoed" 0.05 deadline_s
  | _ -> Alcotest.fail "expected a typed Timeout reply");
  let st = Service.stats s in
  Alcotest.(check int) "one degraded" 1 st.Service.degraded;
  Alcotest.(check int) "one timeout" 1 st.Service.timeouts;
  (* degraded replies are not cached: resubmitting the degraded content
     misses again rather than replaying a deadline-shaped answer *)
  let misses_before = (Service.stats s).Service.cache_misses in
  ignore (Service.submit s (req 0.33 ~mode:Request.Ours ~deadline_s:1.0));
  step := 0.0;
  Alcotest.(check int) "degraded reply was not cached" (misses_before + 1)
    (Service.stats s).Service.cache_misses

let test_wire_roundtrip () =
  let reqs = [ req 0.4 ~id:"x"; req 0.5 ~id:"y" ~mode:Request.Greedy ] in
  (match Service.requests_of_json (Service.requests_to_json reqs) with
  | Ok back ->
      Alcotest.(check (list string)) "batch file round-trips" [ "x"; "y" ]
        (List.map (fun r -> r.Request.id) back);
      Alcotest.(check bool) "records equal" true (back = reqs)
  | Error e -> Alcotest.fail e);
  (match Service.requests_of_json (Json.Arr (List.map Request.to_json reqs)) with
  | Ok back -> Alcotest.(check int) "bare array accepted" 2 (List.length back)
  | Error e -> Alcotest.fail e);
  match
    Service.requests_of_json
      (Json.Obj [ ("schema", Json.Str "bogus/v9"); ("requests", Json.Arr []) ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus schema accepted"

let test_batch_stable_across_pool_sizes () =
  let batch =
    [
      req 0.1 ~id:"a";
      req 0.2 ~id:"b" ~mode:Request.Greedy;
      req 0.3 ~id:"c" ~mode:Request.Ata;
      req 0.1 ~id:"d";
      req 0.2 ~id:"e" ~mode:Request.Greedy;
    ]
  in
  let run_at domains =
    let old = Pool.default_domain_count () in
    Pool.set_default_domains domains;
    Fun.protect
      ~finally:(fun () -> Pool.set_default_domains old)
      (fun () ->
        List.map
          (fun r -> Json.to_string (Reply.strip_volatile (Reply.to_json r)))
          (Service.run_batch (Service.create ()) batch))
  in
  Alcotest.(check (list string)) "replies (including cache flags) identical at 1 and 4 domains"
    (run_at 1) (run_at 4)

(* ---------- per-request tracing ---------- *)

let phase_triple p = (p.Reply.p_phase, p.Reply.p_detail, p.Reply.p_outcome)

let test_trace_phase_breakdown () =
  let s = Service.create () in
  (* tracing is opt-in: the default reply carries no trace at all *)
  let plain = Service.submit s (req 0.4 ~id:"plain") in
  Alcotest.(check bool) "no trace unless requested" true (plain.Reply.trace = None);
  (* a traced miss records the cache probe and the winning compile tier *)
  let miss = Service.submit s (req 0.5 ~id:"cold" ~trace:true) in
  (match miss.Reply.trace with
  | Some phases ->
      Alcotest.(check (list (triple string string string))) "miss phases"
        [ ("cache", "miss", "miss"); ("compile", "ours", "ok") ]
        (List.map phase_triple phases);
      List.iter
        (fun p -> Alcotest.(check int) "no retries" 0 p.Reply.p_retries)
        phases
  | None -> Alcotest.fail "traced request must carry a trace");
  (* a traced hit is a single cache phase *)
  let hit = Service.submit s (req 0.5 ~id:"warm" ~trace:true) in
  (match hit.Reply.trace with
  | Some phases ->
      Alcotest.(check (list (triple string string string))) "hit phases"
        [ ("cache", "hit", "hit") ]
        (List.map phase_triple phases)
  | None -> Alcotest.fail "traced hit must carry a trace");
  (* validation failures trace too *)
  let bad =
    { (req 0.6 ~trace:true) with Request.edges = [ (0, 9) ] }
  in
  (match (Service.submit s bad).Reply.trace with
  | Some phases ->
      Alcotest.(check (list (triple string string string))) "invalid phases"
        [ ("validate", "request", "invalid_request") ]
        (List.map phase_triple phases)
  | None -> Alcotest.fail "traced invalid request must carry a trace");
  (* the trace survives the wire format *)
  match Reply.of_json (Reply.to_json miss) with
  | Ok back -> Alcotest.(check bool) "trace round-trips" true (back.Reply.trace = miss.Reply.trace)
  | Error e -> Alcotest.fail e

let test_trace_stable_across_pool_sizes () =
  (* phase sequences are part of the reply contract: with the volatile
     ms fields stripped, traced batches are bit-identical whatever the
     pool size *)
  let batch =
    [
      req 0.1 ~id:"a" ~trace:true;
      req 0.2 ~id:"b" ~mode:Request.Greedy ~trace:true;
      req 0.3 ~id:"c" ~mode:Request.Ata ~trace:true;
      req 0.1 ~id:"d" ~trace:true;
    ]
  in
  let run_at domains =
    let old = Pool.default_domain_count () in
    Pool.set_default_domains domains;
    Fun.protect
      ~finally:(fun () -> Pool.set_default_domains old)
      (fun () ->
        List.map
          (fun r -> Json.to_string (Reply.strip_volatile (Reply.to_json r)))
          (Service.run_batch (Service.create ()) batch))
  in
  let at1 = run_at 1 in
  Alcotest.(check (list string)) "traced replies identical at 1 and 4 domains" at1 (run_at 4);
  (* the stripped wire form must not leak any per-run timing *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "no ms fields survive stripping" false
        (let nl = String.length "\"ms\"" and tl = String.length s in
         let rec scan i = i + nl <= tl && (String.sub s i nl = "\"ms\"" || scan (i + 1)) in
         scan 0))
    at1

let suite =
  [
    Alcotest.test_case "submit caches repeats" `Quick test_submit_caches;
    Alcotest.test_case "cache key canonical" `Quick test_cache_key_canonical;
    Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
    Alcotest.test_case "invalid request typed" `Quick test_invalid_request_is_typed;
    Alcotest.test_case "batch dedup and order" `Quick test_batch_dedup_and_order;
    Alcotest.test_case "deadline degradation" `Quick test_deadline_degradation;
    Alcotest.test_case "wire round-trip" `Quick test_wire_roundtrip;
    Alcotest.test_case "batch stable across pool sizes" `Quick test_batch_stable_across_pool_sizes;
    Alcotest.test_case "trace phase breakdown" `Quick test_trace_phase_breakdown;
    Alcotest.test_case "traced batch stable across pool sizes" `Quick
      test_trace_stable_across_pool_sizes;
  ]
