module Arch = Qcr_arch.Arch
module Noise = Qcr_arch.Noise
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Circuit = Qcr_circuit.Circuit
module Gate = Qcr_circuit.Gate
module Program = Qcr_circuit.Program
module Mapping = Qcr_circuit.Mapping
module Config = Qcr_core.Config
module Predict = Qcr_core.Predict
module Selector = Qcr_core.Selector
module Greedy = Qcr_core.Greedy
module Pipeline = Qcr_core.Pipeline
module Sv = Qcr_sim.Statevector
module Prng = Qcr_util.Prng

(* ------------------------------------------------------------------ *)
(* Semantic equivalence: the compiled circuit, projected through its final
   mapping, must implement exactly the logical circuit. *)

let check_equivalent arch (r : Pipeline.result) program =
  Alcotest.(check bool) "coupling respected" true
    (Circuit.validate_coupling arch r.Pipeline.circuit = Ok ());
  let sv_phys = Sv.run r.Pipeline.circuit in
  let sv_log = Sv.extract_logical sv_phys ~final:r.Pipeline.final in
  let reference = Sv.run (Program.logical_circuit program) in
  let f = Sv.fidelity sv_log reference in
  Alcotest.(check bool)
    (Printf.sprintf "unitary equivalence (fidelity %.6f)" f)
    true (f > 1.0 -. 1e-7)

let qaoa_program g = Program.make g (Program.Qaoa_maxcut { gamma = 0.37; beta = 0.61 })

let equivalence_cases () =
  let rng = Prng.create 77 in
  [
    ("line-5 path", Arch.line 5, qaoa_program (Generate.path 5));
    ("line-5 clique", Arch.line 5, qaoa_program (Graph.complete 5));
    ("grid-3x3 random", Arch.grid ~rows:3 ~cols:3, qaoa_program (Generate.erdos_renyi rng ~n:9 ~density:0.4));
    ("grid-2x3 clique", Arch.grid ~rows:2 ~cols:3, qaoa_program (Graph.complete 6));
    ("sycamore-2x3", Arch.sycamore ~rows:2 ~cols:3, qaoa_program (Generate.cycle 6));
    ("heavyhex-2x3", Arch.heavy_hex ~rows:2 ~row_len:3, qaoa_program (Generate.erdos_renyi rng ~n:7 ~density:0.4));
    ("hexagon-4x2 rzz", Arch.hexagon ~rows:4 ~cols:2,
     Program.make (Generate.cycle 8) (Program.Two_local { theta = 0.45 }));
    ("grid3d-2x2x2", Arch.grid3d ~nx:2 ~ny:2 ~nz:2, qaoa_program (Generate.cycle 8));
  ]

let test_compile_equivalence () =
  List.iter
    (fun (name, arch, program) ->
      let r = Pipeline.run_exn (Pipeline.Request.make arch program) in
      Alcotest.(check bool) (name ^ " compiles") true (r.Pipeline.cx >= 0);
      check_equivalent arch r program)
    (equivalence_cases ())

let test_compile_ata_equivalence () =
  List.iter
    (fun (name, arch, program) ->
      let r = Pipeline.run_exn (Pipeline.Request.make ~mode:Pipeline.Request.Ata arch program) in
      Alcotest.(check bool) (name ^ " ata compiles") true (r.Pipeline.cx >= 0);
      check_equivalent arch r program)
    (equivalence_cases ())

let test_compile_greedy_equivalence () =
  List.iter
    (fun (name, arch, program) ->
      let r = Pipeline.run_exn (Pipeline.Request.make ~mode:Pipeline.Request.Greedy arch program) in
      Alcotest.(check bool) (name ^ " greedy compiles") true (r.Pipeline.cx >= 0);
      check_equivalent arch r program)
    (equivalence_cases ())

(* ------------------------------------------------------------------ *)

let test_all_gates_emitted () =
  let rng = Prng.create 3 in
  let g = Generate.erdos_renyi rng ~n:16 ~density:0.4 in
  let arch = Arch.grid ~rows:4 ~cols:4 in
  let program = Program.make g Program.Bare_cz in
  let r = Pipeline.run_exn (Pipeline.Request.make arch program) in
  let interactions =
    List.length
      (List.filter
         (function Gate.Cz _ | Gate.Swap_interact _ -> true | _ -> false)
         (Circuit.gates r.Pipeline.circuit))
  in
  (* every program edge appears exactly once (merged or not) *)
  Alcotest.(check int) "all edges emitted once" (Graph.edge_count g) interactions

let test_cx_accounting () =
  let g = Generate.cycle 9 in
  let arch = Arch.grid ~rows:3 ~cols:3 in
  let r = Pipeline.run_exn (Pipeline.Request.make arch (qaoa_program g)) in
  let manual = Circuit.cx_count r.Pipeline.circuit in
  Alcotest.(check int) "result.cx = circuit cx" manual r.Pipeline.cx;
  Alcotest.(check int) "depth agrees" (Circuit.depth2q r.Pipeline.circuit) r.Pipeline.depth

(* Theorem 6.1: ours is never worse than the rigid ATA circuit under F. *)
let test_selector_never_worse_than_ata () =
  let rng = Prng.create 15 in
  List.iter
    (fun density ->
      let g = Generate.erdos_renyi rng ~n:16 ~density in
      let arch = Arch.grid ~rows:4 ~cols:4 in
      let program = Program.make g Program.Bare_cz in
      let ours = Pipeline.run_exn (Pipeline.Request.make arch program) in
      let ata = Pipeline.run_exn (Pipeline.Request.make ~mode:Pipeline.Request.Ata arch program) in
      let alpha = Config.default.Config.alpha in
      let f_of (r : Pipeline.result) =
        Selector.score ~alpha ~ref_depth:(max ata.Pipeline.depth 1)
          ~ref_cx:(max ata.Pipeline.cx 1) ~ref_log_fid:0.0
          {
            Selector.checkpoint_cycle = 0;
            depth = r.Pipeline.depth;
            cx = r.Pipeline.cx;
            log_fid = 0.0;
          }
      in
      Alcotest.(check bool)
        (Printf.sprintf "ours <= ata at density %g" density)
        true
        (f_of ours <= f_of ata +. 1e-9))
    [ 0.1; 0.3; 0.6; 1.0 ]

let test_predict_estimate_clique () =
  let arch = Arch.grid ~rows:3 ~cols:3 in
  let remaining = Graph.complete 9 in
  let mapping = Mapping.identity ~logical:9 ~physical:9 in
  let e = Predict.estimate ~arch ~remaining ~mapping () in
  Alcotest.(check int) "gates" 36 e.Predict.gates;
  Alcotest.(check bool) "cycles positive" true (e.Predict.cycles > 0)

let test_predict_empty () =
  let arch = Arch.grid ~rows:3 ~cols:3 in
  let e =
    Predict.estimate ~arch ~remaining:(Graph.create 9)
      ~mapping:(Mapping.identity ~logical:9 ~physical:9) ()
  in
  Alcotest.(check int) "no gates" 0 e.Predict.gates;
  Alcotest.(check int) "no cycles" 0 e.Predict.cycles

let test_predict_regions_tighter () =
  (* two tiny separated components: region prediction should beat whole-
     device prediction in cycles *)
  let arch = Arch.grid ~rows:6 ~cols:6 in
  let remaining = Graph.create 36 in
  Graph.add_edge remaining 0 1;
  Graph.add_edge remaining 1 6;
  Graph.add_edge remaining 28 29;
  Graph.add_edge remaining 29 35;
  let mapping = Mapping.identity ~logical:36 ~physical:36 in
  let with_regions = Predict.estimate ~use_regions:true ~arch ~remaining ~mapping () in
  let without = Predict.estimate ~use_regions:false ~arch ~remaining ~mapping () in
  Alcotest.(check bool) "regions never worse" true
    (with_regions.Predict.cycles <= without.Predict.cycles)

let test_predict_materialize_completes () =
  let rng = Prng.create 8 in
  let arch = Arch.grid ~rows:4 ~cols:4 in
  let g = Generate.erdos_renyi rng ~n:16 ~density:0.3 in
  let program = Program.make g Program.Bare_cz in
  let mapping = Mapping.identity ~logical:16 ~physical:16 in
  let c = Predict.materialize ~arch ~program ~remaining:(Graph.copy g) ~mapping () in
  let emitted =
    List.length (List.filter (function Gate.Cz _ -> true | _ -> false) (Circuit.gates c))
  in
  Alcotest.(check int) "all edges materialized" (Graph.edge_count g) emitted;
  Alcotest.(check bool) "valid on device" true (Circuit.validate_coupling arch c = Ok ())

let test_greedy_engine_stepwise () =
  let g = Generate.cycle 9 in
  let arch = Arch.grid ~rows:3 ~cols:3 in
  let program = Program.make g Program.Bare_cz in
  let init = Mapping.identity ~logical:9 ~physical:9 in
  let engine = Greedy.create ~arch ~program ~init () in
  Alcotest.(check bool) "not finished" false (Greedy.finished engine);
  Alcotest.(check int) "9 remaining" 9 (Greedy.remaining_gate_count engine);
  Greedy.run_to_completion engine;
  Alcotest.(check bool) "finished" true (Greedy.finished engine);
  Alcotest.(check int) "none remaining" 0 (Greedy.remaining_gate_count engine)

let test_greedy_dense_terminates () =
  (* noise-aware matching used to ping-pong; the stall rule must converge *)
  let arch = Arch.grid ~rows:4 ~cols:4 in
  let noise = Noise.sampled ~seed:2 arch in
  let program = Program.make (Graph.complete 16) Program.Bare_cz in
  let r = Pipeline.run_exn (Pipeline.Request.make ~noise ~mode:Pipeline.Request.Greedy arch program) in
  Alcotest.(check bool) "terminates with all gates" true (r.Pipeline.cx > 0)

let test_config_ablations_run () =
  let rng = Prng.create 99 in
  let g = Generate.erdos_renyi rng ~n:12 ~density:0.3 in
  let arch = Arch.grid ~rows:4 ~cols:3 in
  let program = Program.make g Program.Bare_cz in
  List.iter
    (fun config ->
      let r = Pipeline.run_exn (Pipeline.Request.make ~config arch program) in
      check_equivalent arch r program)
    [
      { Config.default with Config.use_coloring = false };
      { Config.default with Config.use_matching = false };
      { Config.default with Config.use_selector = false };
      { Config.default with Config.use_regions = false };
      { Config.default with Config.crosstalk_aware = true };
    ]

let test_initial_mapping_respected () =
  let g = Generate.path 4 in
  let arch = Arch.line 6 in
  let program = qaoa_program g in
  let rng = Prng.create 4 in
  let init = Mapping.random rng ~logical:4 ~physical:6 in
  let r = Pipeline.run_exn (Pipeline.Request.make ~init arch program) in
  Alcotest.(check bool) "initial stored" true (Mapping.equal r.Pipeline.initial init);
  check_equivalent arch r program

let test_compile_deterministic () =
  let rng = Prng.create 55 in
  let g = Generate.erdos_renyi rng ~n:16 ~density:0.4 in
  let arch = Arch.smallest_for Arch.Heavy_hex 16 in
  let program = Program.make g Program.Bare_cz in
  let a = Pipeline.run_exn (Pipeline.Request.make arch program) in
  let b = Pipeline.run_exn (Pipeline.Request.make arch program) in
  Alcotest.(check int) "same depth" a.Pipeline.depth b.Pipeline.depth;
  Alcotest.(check int) "same cx" a.Pipeline.cx b.Pipeline.cx

let test_selector_scoring () =
  let c1 = { Selector.checkpoint_cycle = 0; depth = 100; cx = 1000; log_fid = 0.0 } in
  let c2 = { Selector.checkpoint_cycle = 5; depth = 50; cx = 900; log_fid = 0.0 } in
  match Selector.best ~alpha:0.5 ~greedy_depth:100 ~greedy_cx:1000 ~greedy_log_fid:0.0 [ c1; c2 ] with
  | `Hybrid c -> Alcotest.(check int) "picks the dominating hybrid" 5 c.Selector.checkpoint_cycle
  | `Greedy -> Alcotest.fail "should pick the better hybrid"

let test_selector_prefers_greedy_on_tie () =
  let c1 = { Selector.checkpoint_cycle = 0; depth = 100; cx = 1000; log_fid = 0.0 } in
  match Selector.best ~alpha:0.5 ~greedy_depth:100 ~greedy_cx:1000 ~greedy_log_fid:0.0 [ c1 ] with
  | `Greedy -> ()
  | `Hybrid _ -> Alcotest.fail "tie must favor greedy"

(* Every portfolio arm — not just the winner — must certify against the
   checker, and the winner must actually be one of the arms. *)
let test_portfolio_certified () =
  let rng = Prng.create 21 in
  let g = Generate.erdos_renyi rng ~n:8 ~density:0.4 in
  let arch = Arch.smallest_for Arch.Line 8 in
  let program = Program.make g Program.Bare_cz in
  let p = Pipeline.run_portfolio_exn (Pipeline.Request.make arch program) in
  Alcotest.(check bool) "has at least the three always-on arms" true
    (List.length p.Pipeline.arms >= 3);
  Alcotest.(check bool) "astar arm joins on small devices" true
    (List.mem_assoc "astar" p.Pipeline.arms);
  List.iter
    (fun (name, (r : Pipeline.result)) ->
      match Qcr_core.Checker.certify ~arch ~program r with
      | Ok () -> ()
      | Error violations ->
          Alcotest.failf "arm %s fails certification: %s" name
            (String.concat "; " violations))
    p.Pipeline.arms;
  Alcotest.(check bool) "winner is one of the arms" true
    (List.mem_assoc p.Pipeline.winner_arm p.Pipeline.arms);
  let winner_by_name = List.assoc p.Pipeline.winner_arm p.Pipeline.arms in
  Alcotest.(check int) "winner depth matches its arm" winner_by_name.Pipeline.depth
    p.Pipeline.winner.Pipeline.depth;
  (* the portfolio is deterministic: same input, same winner *)
  let p' = Pipeline.run_portfolio_exn (Pipeline.Request.make arch program) in
  Alcotest.(check string) "deterministic winner" p.Pipeline.winner_arm p'.Pipeline.winner_arm;
  Alcotest.(check int) "deterministic depth" p.Pipeline.winner.Pipeline.depth
    p'.Pipeline.winner.Pipeline.depth

let test_portfolio_skips_astar_on_large_devices () =
  let rng = Prng.create 8 in
  let g = Generate.erdos_renyi rng ~n:24 ~density:0.2 in
  let arch = Arch.smallest_for Arch.Heavy_hex 24 in
  let program = Program.make g Program.Bare_cz in
  let p = Pipeline.run_portfolio_exn (Pipeline.Request.make arch program) in
  Alcotest.(check bool) "astar arm absent beyond 16 qubits" false
    (List.mem_assoc "astar" p.Pipeline.arms);
  Alcotest.(check bool) "winner still certifies" true
    (Qcr_core.Checker.certify ~arch ~program p.Pipeline.winner = Ok ())

let suite =
  [
    Alcotest.test_case "compile equivalence" `Slow test_compile_equivalence;
    Alcotest.test_case "ata equivalence" `Slow test_compile_ata_equivalence;
    Alcotest.test_case "greedy equivalence" `Slow test_compile_greedy_equivalence;
    Alcotest.test_case "all gates emitted" `Quick test_all_gates_emitted;
    Alcotest.test_case "cx accounting" `Quick test_cx_accounting;
    Alcotest.test_case "ours <= ata (Thm 6.1)" `Quick test_selector_never_worse_than_ata;
    Alcotest.test_case "predict clique" `Quick test_predict_estimate_clique;
    Alcotest.test_case "predict empty" `Quick test_predict_empty;
    Alcotest.test_case "predict regions tighter" `Quick test_predict_regions_tighter;
    Alcotest.test_case "materialize completes" `Quick test_predict_materialize_completes;
    Alcotest.test_case "greedy engine stepwise" `Quick test_greedy_engine_stepwise;
    Alcotest.test_case "greedy dense terminates" `Quick test_greedy_dense_terminates;
    Alcotest.test_case "ablation configs run" `Slow test_config_ablations_run;
    Alcotest.test_case "initial mapping respected" `Quick test_initial_mapping_respected;
    Alcotest.test_case "compile deterministic" `Quick test_compile_deterministic;
    Alcotest.test_case "selector scoring" `Quick test_selector_scoring;
    Alcotest.test_case "selector tie" `Quick test_selector_prefers_greedy_on_tie;
    Alcotest.test_case "portfolio certified" `Quick test_portfolio_certified;
    Alcotest.test_case "portfolio skips astar on large devices" `Quick
      test_portfolio_skips_astar_on_large_devices;
  ]
