(* Cross-module integration tests: full compile -> simulate -> evaluate
   loops and invariants spanning several subsystems. *)

module Arch = Qcr_arch.Arch
module Noise = Qcr_arch.Noise
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Circuit = Qcr_circuit.Circuit
module Gate = Qcr_circuit.Gate
module Program = Qcr_circuit.Program
module Mapping = Qcr_circuit.Mapping
module Pipeline = Qcr_core.Pipeline
module Qaoa = Qcr_sim.Qaoa
module Sv = Qcr_sim.Statevector
module Channel = Qcr_sim.Channel
module Prng = Qcr_util.Prng

(* Property: for random programs on random small devices, every compiler
   emits exactly the program's interaction gates (counting merged forms)
   and the result respects the device coupling. *)
let prop_compiles_are_complete =
  QCheck.Test.make ~name:"compiled circuits carry exactly the program edges" ~count:25
    QCheck.(pair (int_bound 10000) (int_range 5 12))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Generate.erdos_renyi rng ~n ~density:0.4 in
      let kind =
        match seed mod 3 with 0 -> Arch.Grid | 1 -> Arch.Heavy_hex | _ -> Arch.Sycamore
      in
      let arch = Arch.smallest_for kind n in
      let program = Program.make g Program.Bare_cz in
      let count_interactions c =
        List.length
          (List.filter
             (function Gate.Cz _ | Gate.Swap_interact _ -> true | _ -> false)
             (Circuit.gates c))
      in
      List.for_all
        (fun r ->
          count_interactions r.Pipeline.circuit = Graph.edge_count g
          && Circuit.validate_coupling arch r.Pipeline.circuit = Ok ())
        [ Pipeline.run_exn (Pipeline.Request.make arch program); Pipeline.run_exn (Pipeline.Request.make ~mode:Pipeline.Request.Ata arch program);
          Pipeline.run_exn (Pipeline.Request.make ~mode:Pipeline.Request.Greedy arch program) ])

(* Full QAOA loop on an ideal device converges to an energy strictly
   better than random guessing. *)
let test_qaoa_loop_beats_random () =
  let graph = Generate.cycle 8 in
  let arch = Arch.smallest_for Arch.Grid 8 in
  let compile p =
    let r = Pipeline.run_exn (Pipeline.Request.make arch p) in
    (r.Pipeline.circuit, r.Pipeline.final)
  in
  let d = Qaoa.run_driver ~rounds:12 ~graph ~compile () in
  (* random guessing scores -|E|/2 = -4; p=1 QAOA must beat it *)
  Alcotest.(check bool) "beats random" true (d.Qaoa.best_energy < -4.2);
  Alcotest.(check int) "knows the optimum" 8 d.Qaoa.optimum_cut

let test_noise_monotonicity () =
  (* more gate error => larger TVD against the ideal distribution *)
  let graph = Generate.cycle 6 in
  let arch = Arch.smallest_for Arch.Grid 6 in
  let program = Program.make graph (Program.Qaoa_maxcut { gamma = 0.5; beta = 0.3 }) in
  let ideal_r = Pipeline.run_exn (Pipeline.Request.make arch program) in
  let ideal = Sv.probabilities (Sv.run (Program.logical_circuit program)) in
  let tvd_at error =
    let noise = Noise.uniform arch ~cx_error:error in
    let e =
      Qaoa.evaluate ~noise ~graph ~compiled:ideal_r.Pipeline.circuit
        ~final:ideal_r.Pipeline.final ()
    in
    Channel.tvd e.Qaoa.distribution ideal
  in
  let low = tvd_at 0.001 and high = tvd_at 0.02 in
  Alcotest.(check bool) "monotone in error" true (low < high)

let test_merged_gates_roundtrip_sim () =
  (* compile a QAOA program whose realization merges interactions and
     swaps; simulating the merged circuit must match the logical one *)
  let graph = Graph.complete 5 in
  let arch = Arch.line 5 in
  let program = Program.make graph (Program.Qaoa_maxcut { gamma = 0.23; beta = 0.71 }) in
  let r = Pipeline.run_exn (Pipeline.Request.make ~mode:Pipeline.Request.Ata arch program) in
  let has_merged =
    List.exists
      (function Gate.Swap_interact _ -> true | _ -> false)
      (Circuit.gates r.Pipeline.circuit)
  in
  Alcotest.(check bool) "pattern produced merged gates" true has_merged;
  let sv_log = Sv.extract_logical (Sv.run r.Pipeline.circuit) ~final:r.Pipeline.final in
  let reference = Sv.run (Program.logical_circuit program) in
  Alcotest.(check bool) "merged circuit equivalent" true
    (Sv.fidelity sv_log reference > 1.0 -. 1e-7)

let test_solver_schedule_realizes () =
  (* A* schedule -> realize against a sparse program -> equivalent circuit *)
  let problem = Generate.cycle 5 in
  let coupling = Generate.path 5 in
  let init = Mapping.identity ~logical:5 ~physical:5 in
  match Qcr_solver.Astar.solve ~problem ~coupling ~init () with
  | None -> Alcotest.fail "solver failed"
  | Some o ->
      let sched = Qcr_solver.Astar.schedule_of_outcome o ~init in
      let program = Program.make problem (Program.Qaoa_maxcut { gamma = 0.3; beta = 0.4 }) in
      let mapping = Mapping.identity ~logical:5 ~physical:5 in
      let r = Qcr_swapnet.Schedule.realize ~program ~mapping ~n_phys:5 sched in
      Alcotest.(check int) "all edges realized" 5 (List.length r.Qcr_swapnet.Schedule.emitted)

let test_cli_style_workflow () =
  (* the full bin/qcr_cli compile flow as a library call chain *)
  let rng = Prng.create 2023 in
  let graph = Generate.erdos_renyi rng ~n:14 ~density:0.35 in
  let program = Program.make graph (Program.Qaoa_maxcut { gamma = 0.4; beta = 0.35 }) in
  let arch = Arch.smallest_for Arch.Heavy_hex 14 in
  let noise = Noise.sampled arch in
  let r = Pipeline.run_exn (Pipeline.Request.make ~noise arch program) in
  Alcotest.(check bool) "fidelity in (0,1]" true
    (exp r.Pipeline.log_fidelity > 0.0 && exp r.Pipeline.log_fidelity <= 1.0);
  let qasm = Qcr_circuit.Qasm.to_string r.Pipeline.circuit in
  Alcotest.(check bool) "qasm nonempty" true (String.length qasm > 100)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_compiles_are_complete;
    Alcotest.test_case "qaoa loop beats random" `Slow test_qaoa_loop_beats_random;
    Alcotest.test_case "noise monotonicity" `Quick test_noise_monotonicity;
    Alcotest.test_case "merged gates roundtrip" `Quick test_merged_gates_roundtrip_sim;
    Alcotest.test_case "solver schedule realizes" `Quick test_solver_schedule_realizes;
    Alcotest.test_case "cli-style workflow" `Quick test_cli_style_workflow;
  ]
